// Batch evaluation for serving-style workloads: a bounded worker pool
// drives one Engine through a query slice under a context.

package streach

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// BatchOptions configures EvaluateBatch.
type BatchOptions struct {
	// Workers bounds the worker pool; values ≤ 0 select GOMAXPROCS. The
	// pool never exceeds the number of queries.
	Workers int
	// ContinueOnError keeps evaluating the remaining queries after a
	// query fails instead of cancelling the batch; the first error is
	// still returned.
	ContinueOnError bool
}

// EvaluateBatch evaluates every query in qs against e with a bounded worker
// pool. results[i] answers qs[i]; its Evaluated field reports whether the
// query ran (cancellation or a failure leaves the remainder unevaluated
// unless ContinueOnError is set). The first query error, or the context's
// error when the batch was cancelled, is returned alongside the partial
// results.
//
// Registry engines evaluate read-only queries fully in parallel — each
// query threads its own I/O accountant through the traversal and the
// buffer pool is latched per page shard — so batch throughput scales with
// Workers up to GOMAXPROCS. Every Result still carries its exact per-query
// I/O delta; the deltas of successfully evaluated queries sum to the
// engine's cumulative IOTotals and, for engines sharing a BufferPool, to
// the pool's global counters (a query that errors or is cancelled
// mid-evaluation charges the totals but returns no delta).
func EvaluateBatch(ctx context.Context, e Engine, qs []Query, opts BatchOptions) ([]Result, error) {
	results := make([]Result, len(qs))
	for i := range results {
		// Unevaluated slots must not read as "arrived at tick 0": the
		// sentinel matches what evaluated negative queries report.
		results[i].Arrival, results[i].Hops = -1, -1
	}
	if len(qs) == 0 {
		return results, ctx.Err()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			if !opts.ContinueOnError {
				cancel()
			}
		})
	}

	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r, err := e.Reachable(ctx, qs[i])
				if err != nil {
					if ctx.Err() != nil && !opts.ContinueOnError {
						fail(ctx.Err())
						return
					}
					fail(fmt.Errorf("streach: batch query %d (%v): %w", i, qs[i], err))
					if !opts.ContinueOnError {
						return
					}
					continue
				}
				results[i] = r
			}
		}()
	}

feed:
	for i := range qs {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	if firstErr != nil {
		return results, firstErr
	}
	return results, ctx.Err()
}
