// Benchmarks: one testing.B entry point per paper table/figure (driving the
// same runners as cmd/reachbench, at reduced scale so `go test -bench=.`
// stays laptop-friendly) plus microbenchmarks for the core building blocks.
//
// To regenerate the paper artifacts at full scale-down size, use
// `go run ./cmd/reachbench -exp all`.
package streach_test

import (
	"context"
	"sync"
	"testing"

	"streach"
	"streach/internal/bench"
)

// benchOpts shrinks the experiment suite for testing.B iteration.
var benchOpts = bench.Options{
	RWPSizes: []int{60, 90, 120},
	VNSizes:  []int{30, 45, 60},
	Ticks:    600,
	Queries:  10,
	Seed:     1,
}

var (
	labOnce sync.Once
	lab     *bench.Lab
)

// benchLab returns a shared Lab so dataset generation cost is paid once,
// not inside timing loops.
func benchLab() *bench.Lab {
	labOnce.Do(func() {
		lab = bench.NewLab(benchOpts)
	})
	return lab
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	l := benchLab()
	run := l.ByID(id)
	if run == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := run(); len(tbl.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

func BenchmarkTable1Complexity(b *testing.B)       { runExperiment(b, "table1") }
func BenchmarkTable2DatasetSizes(b *testing.B)     { runExperiment(b, "table2") }
func BenchmarkFig8aSpatialResolution(b *testing.B) { runExperiment(b, "fig8a") }
func BenchmarkFig8bTemporalResolution(b *testing.B) {
	runExperiment(b, "fig8b")
}
func BenchmarkFig9GridConstruction(b *testing.B) { runExperiment(b, "fig9") }
func BenchmarkSPJvsReachGrid(b *testing.B)       { runExperiment(b, "spj") }
func BenchmarkFig10ContactNetworkSize(b *testing.B) {
	runExperiment(b, "fig10")
}
func BenchmarkFig11DNConstruction(b *testing.B)    { runExperiment(b, "fig11") }
func BenchmarkTable4ResolutionDegree(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkFig12PartitionDepth(b *testing.B)    { runExperiment(b, "fig12") }
func BenchmarkFig13TraversalStrategies(b *testing.B) {
	runExperiment(b, "fig13")
}
func BenchmarkFig14GridVsGraph(b *testing.B) { runExperiment(b, "fig14") }
func BenchmarkFig15CPUTime(b *testing.B)     { runExperiment(b, "fig15") }
func BenchmarkTable5aGrailVsReachGraphMemory(b *testing.B) {
	runExperiment(b, "table5a")
}
func BenchmarkTable5bGrailVsReachGraphDisk(b *testing.B) {
	runExperiment(b, "table5b")
}
func BenchmarkBackendsSweep(b *testing.B) { runExperiment(b, "backends") }

// --- microbenchmarks over the public API ---

var (
	microOnce  sync.Once
	microDS    *streach.Dataset
	microCN    *streach.ContactNetwork
	microGrid  *streach.ReachGrid
	microGraph *streach.ReachGraph
	microWork  []streach.Query
)

func microSetup(b *testing.B) {
	b.Helper()
	microOnce.Do(func() {
		microDS = streach.GenerateRandomWaypoint(streach.RWPOptions{
			NumObjects: 150, NumTicks: 1000, Seed: 2,
		})
		microCN = microDS.Contacts()
		var err error
		microGrid, err = streach.BuildReachGrid(microDS, streach.ReachGridOptions{})
		if err != nil {
			panic(err)
		}
		microGraph, err = streach.BuildReachGraphFromContacts(microCN, streach.ReachGraphOptions{})
		if err != nil {
			panic(err)
		}
		microWork = streach.RandomQueries(streach.WorkloadOptions{
			NumObjects: microDS.NumObjects(), NumTicks: microDS.NumTicks(),
			Count: 64, Seed: 3,
		})
	})
}

func BenchmarkContactExtraction(b *testing.B) {
	microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if microDS.Contacts().NumContacts() == 0 {
			b.Fatal("no contacts")
		}
	}
}

func BenchmarkBuildReachGrid(b *testing.B) {
	microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := streach.BuildReachGrid(microDS, streach.ReachGridOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildReachGraph(b *testing.B) {
	microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := streach.BuildReachGraphFromContacts(microCN, streach.ReachGraphOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReachGridQuery(b *testing.B) {
	microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := microGrid.Reachable(microWork[i%len(microWork)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReachGraphQueryBMBFS(b *testing.B) {
	microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := microGraph.Reachable(microWork[i%len(microWork)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReachGraphQueryEDFS(b *testing.B) {
	microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := microGraph.ReachableStrategy(microWork[i%len(microWork)], streach.EDFS); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOracleQuery(b *testing.B) {
	microSetup(b)
	oracle := microCN.Oracle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle.Reachable(microWork[i%len(microWork)])
	}
}

func BenchmarkEngineQuery(b *testing.B) {
	microSetup(b)
	e, err := streach.Open("reachgraph", microCN, streach.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Reachable(ctx, microWork[i%len(microWork)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateBatch(b *testing.B) {
	microSetup(b)
	e, err := streach.Open("reachgraph-mem", microCN, streach.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := streach.EvaluateBatch(ctx, e, microWork, streach.BatchOptions{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
