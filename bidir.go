// Bidirectional cross-segment point queries and parallel frontier sweeps.
//
// The forward planner (planReach) expands the reachable set of the source
// slab by slab until the destination's slab answers natively. On long
// intervals that frontier saturates: once most objects are infected, every
// further slab sweep expands nearly the whole population even though the
// answer may be decidable from the destination's side in a handful of
// contacts. The bidirectional planner maintains two frontiers — the
// forward reachable set of the source grown oldest-first, and the backward
// deliverer set of the destination grown newest-first (planReverseSet) —
// and on every step expands whichever is currently smaller, terminating as
// soon as they intersect. Meet semantics are exact under the hold-forever
// propagation model: when the planner tests F ∩ B, F is the holder set at
// the forward boundary T_f (start of the first unconsumed slab) and B the
// deliverer set from the backward boundary T_b (just past the last
// unconsumed slab), with T_f <= T_b; a common object holds the item at T_f,
// still holds it at T_b, and delivers from there to the destination by the
// interval end — forward arrival <= backward departure at the meeting
// object. Conversely, when the two boundaries close the gap (T_f == T_b)
// without an intersection, no holder delivers, so the negative answer is
// exact too.
//
// Orthogonally, large frontier sweeps are parallelized: when a frontier
// outgrows parallelSweepMinFrontier and the engine was opened with
// Options.QueryParallelism > 1, the seed set is partitioned across a
// bounded worker group. Workers share the immutable slab cores (per-call
// traversal state comes from the epoch-stamped visit pools) but each
// charges a private I/O accountant; the merge step concatenates and
// re-sorts the partial frontiers and sums the worker accountants into the
// query's, preserving the engine invariant that per-query I/O deltas sum
// exactly to the pool totals. Below the threshold the sweep stays on the
// serial path, keeping steady-state point queries allocation-free.

package streach

import (
	"context"
	"fmt"
	"sync"

	"streach/internal/pagefile"
)

// parallelSweepMinFrontier is the frontier size below which a sweep stays
// serial even when the engine has a parallelism budget: partitioning a
// small seed set costs more in goroutine handoff and merge work than the
// sweep itself, and the serial path is what keeps steady-state point
// queries at zero heap allocations.
const parallelSweepMinFrontier = 128

// sweepFrontier expands the forward frontier over one slab, fanning the
// seeds out across par workers when the frontier is large enough (see
// parallelSweep); otherwise it is exactly core.appendFrontier.
func sweepFrontier(ctx context.Context, core frontierCore, dst, seeds []ObjectID, iv Interval, par int, acct *pagefile.Stats) ([]ObjectID, int, error) {
	if par <= 1 || len(seeds) < parallelSweepMinFrontier {
		return core.appendFrontier(ctx, dst, seeds, iv, acct)
	}
	return parallelSweep(ctx, core.appendFrontier, dst, seeds, iv, par, acct)
}

// sweepReverseFrontier is sweepFrontier for the backward walk.
func sweepReverseFrontier(ctx context.Context, core reverseFrontierCore, dst, seeds []ObjectID, iv Interval, par int, acct *pagefile.Stats) ([]ObjectID, int, error) {
	if par <= 1 || len(seeds) < parallelSweepMinFrontier {
		return core.appendReverseFrontier(ctx, dst, seeds, iv, acct)
	}
	return parallelSweep(ctx, core.appendReverseFrontier, dst, seeds, iv, par, acct)
}

// parallelSweep partitions the seeds into up to par contiguous chunks and
// runs sweep on each concurrently. Reachability from a seed union is the
// union of per-seed reachability (propagation is monotone and seeds are
// independent), so concatenating the partial frontiers and normalizing
// yields exactly the serial answer. Each worker threads a private
// accountant; the partial counters are summed into acct after the join —
// even for workers that failed, since their page reads were already
// charged to the store's cumulative totals.
func parallelSweep(ctx context.Context, sweep func(ctx context.Context, dst, seeds []ObjectID, iv Interval, acct *pagefile.Stats) ([]ObjectID, int, error), dst, seeds []ObjectID, iv Interval, par int, acct *pagefile.Stats) ([]ObjectID, int, error) {
	workers := par
	if workers > len(seeds) {
		workers = len(seeds)
	}
	chunk := (len(seeds) + workers - 1) / workers
	type partial struct {
		objs []ObjectID
		n    int
		io   pagefile.Stats
		err  error
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(seeds) {
			hi = len(seeds)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(p *partial, sub []ObjectID) {
			defer wg.Done()
			p.objs, p.n, p.err = sweep(ctx, nil, sub, iv, &p.io)
		}(&parts[w], seeds[lo:hi])
	}
	wg.Wait()
	expanded := 0
	var firstErr error
	for w := range parts {
		p := &parts[w]
		expanded += p.n
		if acct != nil {
			acct.Add(p.io)
		}
		if p.err != nil && firstErr == nil {
			firstErr = p.err
		}
		if firstErr == nil {
			dst = append(dst, p.objs...)
		}
	}
	if firstErr != nil {
		return dst, expanded, firstErr
	}
	return sortDedupObjects(dst), expanded, nil
}

// intersectSorted reports whether two ascending slices share an element.
func intersectSorted(a, b []ObjectID) bool {
	i, k := 0, 0
	for i < len(a) && k < len(b) {
		switch {
		case a[i] == b[k]:
			return true
		case a[i] < b[k]:
			i++
		default:
			k++
		}
	}
	return false
}

// planReachBidir is the bidirectional cross-segment point-query planner.
// It grows the source's forward frontier F oldest-first and the
// destination's backward (deliverer) frontier B newest-first, always
// expanding the smaller of the two, and answers true as soon as they
// intersect; see the package comment above for why the meet test and the
// negative case are both exact. When a single unconsumed slab remains and
// the backward frontier is still the bare destination, the slab's native
// point query answers instead — on short intervals this degenerates to the
// forward planner's terminal step (BM-BFS with destination early-exit), so
// bidirectional planning never regresses the short-interval fast path.
func planReachBidir(ctx context.Context, slabs []segSlab, numObjects, numTicks int, q Query, par int, acct *pagefile.Stats) (bool, int, error) {
	if err := validatePlanIDs(numObjects, q.Src, q.Dst); err != nil {
		return false, 0, err
	}
	iv := q.Interval.Intersect(Interval{Lo: 0, Hi: Tick(numTicks - 1)})
	if numTicks == 0 || iv.Len() == 0 {
		return false, 0, nil
	}
	if q.Src == q.Dst {
		return true, 0, nil
	}
	fwd := planPool.Get()
	defer planPool.Put(fwd)
	bwd := planPool.Get()
	defer planPool.Put(bwd)
	first, last := overlappingSlabs(slabs, iv)
	fwd.a = append(fwd.a[:0], q.Src)
	bwd.a = append(bwd.a[:0], q.Dst)
	F, B := fwd.a, bwd.a
	fi, bi := first, last
	expanded := 0
	for {
		if err := ctx.Err(); err != nil {
			return false, expanded, err
		}
		if intersectSorted(F, B) {
			return true, expanded, nil
		}
		if fi > bi {
			// The forward and backward boundaries coincide and the
			// frontiers are disjoint: no holder delivers. Exact negative.
			return false, expanded, nil
		}
		if fi == bi && len(B) == 1 && B[0] == q.Dst {
			// One unconsumed slab, unexpanded backward frontier: answer
			// with the slab's native point query (destination early-exit).
			_, local := localInterval(slabs[fi].span, iv)
			if local.Len() == 0 {
				return false, expanded, nil
			}
			ok, n, err := slabs[fi].core.reachFrom(ctx, F, q.Dst, local, acct)
			return ok, expanded + n, err
		}
		if len(F) <= len(B) {
			w, local := localInterval(slabs[fi].span, iv)
			if w.Len() > 0 {
				fr, n, err := sweepFrontier(ctx, slabs[fi].core, fwd.b[:0], F, local, par, acct)
				fwd.b = fr
				expanded += n
				if err != nil {
					return false, expanded, err
				}
				fwd.a, fwd.b = fwd.b, fwd.a
				F = fwd.a
			}
			fi++
		} else {
			br, n, err := planReverseSet(ctx, slabs, bi, bi, bwd.b[:0], B, iv, par, acct)
			bwd.b = br
			expanded += n
			if err != nil {
				return false, expanded, err
			}
			bwd.a, bwd.b = bwd.b, bwd.a
			B = bwd.a
			bi--
		}
	}
}

// bidirBases lists the segmentation-capable backends with a native reverse
// traversal; each is registered under "bidir:<name>". ReachGrid is absent:
// its guided expansion follows trajectories forward in time and has no
// backward analogue.
var bidirBases = []struct {
	name         string
	diskResident bool
}{
	{"reachgraph", true},
	{"reachgraph-mem", false},
	{"oracle", false},
}

func init() {
	for _, b := range bidirBases {
		base := b.name
		register(BackendInfo{
			Name: "bidir:" + base,
			Description: fmt.Sprintf(
				"meet-in-the-middle bidirectional point queries over time-sliced %s segments", base),
			DiskResident: b.diskResident,
		}, func(src Source, opts Options) (engineCore, error) {
			core, err := buildSegmentedCore(base, src, opts)
			if err != nil {
				return nil, err
			}
			for _, s := range core.slabs {
				if _, ok := s.core.(reverseFrontierCore); !ok {
					return nil, fmt.Errorf("streach: backend %q has no reverse frontier entry points", base)
				}
			}
			core.bidir = true
			return core, nil
		})
	}
}
