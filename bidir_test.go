package streach_test

import (
	"context"
	"testing"

	"streach"
	"streach/internal/contact"
)

// bidir_test.go pins the bidirectional planner: meet semantics where the
// forward and backward frontiers touch exactly at a slab boundary tick,
// odd slab widths against the oracle, and LiveEngine routing with dirty
// delta slabs.

var bidirBackends = []string{"bidir:oracle", "bidir:reachgraph", "bidir:reachgraph-mem"}

// TestBidirMeetAtSlabBoundary is the meet-semantics regression: contact
// chains whose every hand-off sits on a slab edge, so the two frontiers
// meet exactly at a boundary tick. The forward chain transfers in
// ascending time order (every prefix delivers); the reversed chain places
// the same contacts in descending time order, so the item always misses
// its next carrier — the planner must prove the negative at the same
// boundary ticks. Both chains run all (src, dst) pairs over all
// edge-aligned intervals against the unsegmented oracle.
func TestBidirMeetAtSlabBoundary(t *testing.T) {
	chains := map[string][]contact.Contact{
		"forward": slabEdgeContacts,
		// Time-mirrored hand-offs: 3–4 happens before 2–3, and so on. An
		// item starting at 0 reaches 1 at tick 23 but every onward contact
		// is already in the past; the backward frontier of 4 likewise
		// collapses to {3, 4} by tick 7. The frontiers stay disjoint and
		// close their gap exactly at the slab 1/2 edge.
		"reversed": {
			{A: 3, B: 4, Validity: contact.Interval{Lo: 7, Hi: 7}},
			{A: 2, B: 3, Validity: contact.Interval{Lo: 8, Hi: 8}},
			{A: 1, B: 2, Validity: contact.Interval{Lo: 15, Hi: 16}},
			{A: 0, B: 1, Validity: contact.Interval{Lo: 23, Hi: 23}},
		},
	}
	ctx := context.Background()
	for label, chain := range chains {
		src := streach.WrapContactNetwork(contact.FromContacts(slabEdgeObjects, slabEdgeNumTicks, chain))
		oracle, err := streach.Open("oracle", src, streach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range bidirBackends {
			e, err := streach.Open(name, src, streach.Options{SegmentTicks: slabEdgeTicks})
			if err != nil {
				t.Fatalf("open %q: %v", name, err)
			}
			assertSlabEdgeConformance(t, ctx, e, oracle, label+"/"+name)
		}
	}
}

// TestBidirOddSlabWidths runs the bidirectional backends against the
// oracle on a random-waypoint feed for slab widths that do not divide the
// time domain — the last slab is ragged, so the backward walk starts on a
// short slab and the meet tick rarely aligns with anything.
func TestBidirOddSlabWidths(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 40, NumTicks: 300, Seed: 77,
	})
	oracle := ds.Contacts().Oracle()
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(),
		NumTicks:   ds.NumTicks(),
		Count:      60,
		MinLen:     5,
		MaxLen:     ds.NumTicks(),
		Seed:       19,
	})
	ctx := context.Background()
	for _, width := range []int{7, 33, 64} {
		for _, name := range bidirBackends {
			e, err := streach.Open(name, ds, streach.Options{SegmentTicks: width})
			if err != nil {
				t.Fatalf("open %q width %d: %v", name, width, err)
			}
			for _, q := range work {
				r, err := e.Reachable(ctx, q)
				if err != nil {
					t.Fatalf("%s width %d %v: %v", name, width, q, err)
				}
				if want := oracle.Reachable(q); r.Reachable != want {
					t.Fatalf("%s width %d disagrees with oracle on %v: got %v, want %v",
						name, width, q, r.Reachable, want)
				}
			}
		}
	}
}

// TestBidirLiveEngineDirtyDeltas opens live engines under the bidir:
// prefix and feeds them entirely through late events: the clock advances
// first (sealing every slab empty), then the contacts arrive out of order
// behind the frontier, with a slice of them retracted again. Every sealed
// slab is then served through its dirty delta overlay — the worst case for
// backward planning, since the overlay core replaces the sealed index.
// Answers must match the oracle over the engine's own snapshot both before
// and after compaction folds the deltas into fresh sealed segments.
func TestBidirLiveEngineDirtyDeltas(t *testing.T) {
	const numObjects, numTicks, width = 14, 96, 16
	var events []streach.ContactEvent
	for tk := 0; tk < numTicks; tk++ {
		for k := 0; k < 3; k++ {
			a := streach.ObjectID((tk*3 + k*5) % numObjects)
			b := streach.ObjectID((tk + k*7 + 1) % numObjects)
			if a != b {
				events = append(events, streach.ContactEvent{Tick: streach.Tick(tk), A: a, B: b})
			}
		}
	}
	// Deterministic shuffle so the late adds land across slabs out of order.
	for i := len(events) - 1; i > 0; i-- {
		j := (i*2654435761 + 17) % (i + 1)
		events[i], events[j] = events[j], events[i]
	}
	ctx := context.Background()
	env := streach.NewEnv(1000, 1000)
	for _, base := range []string{"bidir:oracle", "bidir:reachgraph", "bidir:reachgraph-mem"} {
		le, err := streach.NewLiveEngine(base, numObjects, env, 50, streach.Options{SegmentTicks: width})
		if err != nil {
			t.Fatalf("%s: %v", base, err)
		}
		if want := "live:" + base; le.Name() != want {
			t.Errorf("Name = %q, want %q", le.Name(), want)
		}
		if err := le.AdvanceTo(numTicks - 1); err != nil {
			t.Fatal(err)
		}
		if _, err := le.Ingest(events); err != nil {
			t.Fatal(err)
		}
		// Retract a slice of what just landed.
		var retractions []streach.ContactEvent
		for i := 0; i < len(events); i += 7 {
			ev := events[i]
			ev.Retract = true
			retractions = append(retractions, ev)
		}
		if rep, err := le.Ingest(retractions); err != nil {
			t.Fatal(err)
		} else if rep.Retracted == 0 {
			t.Fatalf("%s: no retraction applied", base)
		}
		dirty := 0
		for _, st := range le.SegmentStats() {
			if st.DeltaEvents > 0 {
				dirty++
			}
		}
		if dirty == 0 {
			t.Fatalf("%s: expected dirty delta slabs, all clean", base)
		}
		check := func(stage string) {
			oracle := le.Snapshot().Oracle()
			work := streach.RandomQueries(streach.WorkloadOptions{
				NumObjects: numObjects, NumTicks: numTicks,
				Count: 80, MinLen: 4, MaxLen: numTicks, Seed: 5,
			})
			for _, q := range work {
				r, err := le.Reachable(ctx, q)
				if err != nil {
					t.Fatalf("%s %s %v: %v", base, stage, q, err)
				}
				if want := oracle.Reachable(q); r.Reachable != want {
					t.Fatalf("%s %s disagrees with oracle on %v: got %v, want %v",
						base, stage, q, r.Reachable, want)
				}
			}
		}
		check("dirty")
		if n, err := le.Compact(); err != nil {
			t.Fatal(err)
		} else if n != dirty {
			t.Fatalf("%s: compacted %d segments, want %d", base, n, dirty)
		}
		check("compacted")
	}
}
