// Bridges between the facade types and the module's internal packages, used
// by internal/bench to drive the public Engine registry over datasets and
// contact networks it already holds. The internal parameter types make
// these constructors uncallable from outside the module.

package streach

import (
	"streach/internal/contact"
	"streach/internal/trajectory"
)

// WrapDataset adapts an internal trajectory dataset to the facade type.
func WrapDataset(d *trajectory.Dataset) *Dataset { return &Dataset{d: d} }

// WrapContactNetwork adapts an internal contact network to the facade type.
func WrapContactNetwork(n *contact.Network) *ContactNetwork { return &ContactNetwork{net: n} }
