// Command reachbench regenerates the tables and figures of the paper's
// evaluation section (§6) on laptop-scale datasets.
//
// Usage:
//
//	reachbench -exp all                # every artifact, paper order
//	reachbench -exp fig13,table5b      # selected artifacts
//	reachbench -list                   # available experiment ids
//	reachbench -exp fig14 -queries 200 -ticks 4000 -scale large
//	reachbench -exp backends -backends reachgrid,reachgraph,grail
//	reachbench -exp concurrency -json BENCH_pr.json -scale tiny
//
// Each experiment prints a table whose rows mirror the series of the paper
// artifact, with a footnote quoting the paper-reported numbers for
// comparison. Query evaluators are drawn from the public backend registry
// (streach.Backends); the "backends" and "concurrency" experiments sweep
// every registered backend, restricted by the -backends flag.
//
// -json additionally writes the concurrency sweep as a machine-readable
// report (schema streach-bench/v1) to the given path — the format CI
// validates and archives as the perf trajectory (BENCH_*.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"streach"
	"streach/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		expAlias = flag.String("experiment", "", "alias for -exp")
		list     = flag.Bool("list", false, "list available experiment ids and exit")
		queries  = flag.Int("queries", 0, "random queries per measurement point (default 60)")
		ticks    = flag.Int("ticks", 0, "time-domain length in ticks (default 2000)")
		seed     = flag.Int64("seed", 1, "generator seed")
		scale    = flag.String("scale", "small", "dataset scale: tiny | small | medium | large")
		backends = flag.String("backends", "", "comma-separated registry backends for the 'backends'/'concurrency' experiments (default: all)")
		workers  = flag.String("workers", "", "comma-separated worker counts for the 'concurrency' experiment (default 1,2,4,8)")
		topk     = flag.Int("topk", 0, "k of the 'semantics' experiment's top-k decay queries (default 10)")
		decay    = flag.Float64("decay", 0, "per-transfer decay weight of the 'semantics' experiment, in (0, 1] (default 0.85)")
		jsonOut  = flag.String("json", "", "write the machine-readable sweeps as a streach-bench/v1 JSON report to this path")
	)
	flag.Parse()
	if *expAlias != "" {
		*exp = *expAlias
	}

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		fmt.Println("\nregistered backends:")
		for _, info := range streach.BackendInfos() {
			fmt.Printf("  %-16s %s\n", info.Name, info.Description)
		}
		return
	}

	if *decay != 0 && !(*decay > 0 && *decay <= 1) {
		fmt.Fprintf(os.Stderr, "reachbench: -decay %v outside (0, 1]\n", *decay)
		os.Exit(2)
	}
	if *topk < 0 {
		fmt.Fprintf(os.Stderr, "reachbench: -topk %d must be positive\n", *topk)
		os.Exit(2)
	}
	opts := bench.Options{Queries: *queries, Ticks: *ticks, Seed: *seed, TopK: *topk, Decay: *decay}
	if *backends != "" {
		opts.Backends = strings.Split(*backends, ",")
		for i := range opts.Backends {
			opts.Backends[i] = strings.TrimSpace(opts.Backends[i])
			if _, ok := streach.LookupBackend(opts.Backends[i]); !ok {
				fmt.Fprintf(os.Stderr, "reachbench: unknown backend %q (available: %s)\n",
					opts.Backends[i], strings.Join(streach.Backends(), ", "))
				os.Exit(2)
			}
		}
	}
	if *workers != "" {
		for _, part := range strings.Split(*workers, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || w < 1 {
				fmt.Fprintf(os.Stderr, "reachbench: bad -workers entry %q\n", part)
				os.Exit(2)
			}
			opts.Workers = append(opts.Workers, w)
		}
	}
	switch *scale {
	case "tiny":
		// CI smoke preset: seconds, not minutes.
		opts.RWPSizes = []int{48}
		opts.VNSizes = []int{24}
		if opts.Ticks == 0 {
			opts.Ticks = 240
		}
		if opts.Queries == 0 {
			opts.Queries = 12
		}
	case "small":
		// Defaults.
	case "medium":
		opts.RWPSizes = []int{200, 400, 800}
		opts.VNSizes = []int{100, 200, 400}
		if opts.Ticks == 0 {
			opts.Ticks = 4000
		}
	case "large":
		opts.RWPSizes = []int{500, 1000, 2000}
		opts.VNSizes = []int{250, 500, 1000}
		if opts.Ticks == 0 {
			opts.Ticks = 8000
		}
		if opts.Queries == 0 {
			opts.Queries = 100
		}
	default:
		fmt.Fprintf(os.Stderr, "reachbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	lab := bench.NewLab(opts)

	ids := bench.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	start := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		run := lab.ByID(id)
		if run == nil {
			fmt.Fprintf(os.Stderr, "reachbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		t0 := time.Now()
		table := run()
		table.Render(os.Stdout)
		fmt.Printf("  [%s took %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
	if *jsonOut != "" {
		// Collect the machine-readable experiments among the ones that
		// ran; with none selected the concurrency sweep is the default
		// report (the historical BENCH_*.json contents).
		var recs []bench.Record
		ranConc, ranStream, ranCodec, ranSem, ranCompact, ranBidir, ranShard, ranFiltered := false, false, false, false, false, false, false, false
		for _, id := range ids {
			switch strings.ToLower(strings.TrimSpace(id)) {
			case "concurrency":
				ranConc = true
			case "all":
				ranConc, ranStream, ranCodec, ranSem, ranCompact, ranBidir, ranShard, ranFiltered = true, true, true, true, true, true, true, true
			case "streaming":
				ranStream = true
			case "ablation-codec":
				ranCodec = true
			case "semantics":
				ranSem = true
			case "filtered":
				ranFiltered = true
			case "compaction":
				ranCompact = true
			case "bidir":
				ranBidir = true
			case "sharding":
				ranShard = true
			}
		}
		if !ranConc && !ranStream && !ranCodec && !ranSem && !ranCompact && !ranBidir && !ranShard && !ranFiltered {
			ranConc = true
		}
		if ranConc {
			recs = append(recs, lab.ConcurrencyRecords()...)
		}
		if ranStream {
			recs = append(recs, lab.StreamingRecords()...)
		}
		if ranCodec {
			recs = append(recs, lab.CodecRecords()...)
		}
		if ranSem {
			recs = append(recs, lab.SemanticsRecords()...)
		}
		if ranFiltered {
			recs = append(recs, lab.FilteredRecords()...)
		}
		if ranCompact {
			recs = append(recs, lab.CompactionRecords()...)
		}
		if ranBidir {
			recs = append(recs, lab.BidirRecords()...)
		}
		if ranShard {
			recs = append(recs, lab.ShardRecords()...)
		}
		if err := bench.WriteJSONFile(*jsonOut, recs); err != nil {
			fmt.Fprintf(os.Stderr, "reachbench: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", len(recs), *jsonOut)
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))
}
