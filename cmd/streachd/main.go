// Streachd is the reachability query daemon: it builds (or live-feeds) an
// engine over a synthetic contact dataset and serves the HTTP/JSON API of
// internal/serve — point reachability, streamed reachable sets, earliest
// arrival, top-k, live ingest, stats and Prometheus metrics — with a
// query-result cache and admission control in front of the engine.
//
// Frozen mode (default) indexes a random-waypoint dataset with the chosen
// backend and serves it read-only:
//
//	streachd -backend reachgraph -objects 400 -ticks 1000
//
// Live mode (-live <base backend>) starts a LiveEngine and replays the
// generated dataset as the initial feed; /v1/ingest then appends further
// instants while queries continue:
//
//	streachd -live reachgraph-mem -objects 400 -ticks 1000 -segment-ticks 128
//
// SIGTERM/SIGINT drains gracefully: in-flight queries finish, new work is
// rejected with 503 shutting_down, and the process exits within -grace.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streach"
	"streach/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8317", "listen address")
		backend = flag.String("backend", "reachgraph", "frozen-mode backend (see -list)")
		liveStr = flag.String("live", "", "serve a LiveEngine over this base backend (oracle, reachgraph, reachgraph-mem, or bidir:<base> for bidirectional point queries); replays the generated dataset as the initial feed and enables /v1/ingest")
		objects = flag.Int("objects", 400, "dataset objects")
		ticks   = flag.Int("ticks", 1000, "dataset ticks (live mode: preloaded feed instants)")
		seed    = flag.Int64("seed", 42, "dataset seed")

		shards      = flag.Int("shards", 0, "partition the engine into this many shards (0: unsharded); wraps the backend as shard:<K>[:partitioner]:<base>")
		partitioner = flag.String("partitioner", "", "shard partitioner: hash | spatial (default hash)")

		segmentTicks = flag.Int("segment-ticks", 0, "time-slab width for segmented/live engines (0: default)")
		poolPages    = flag.Int("pool-pages", 0, "buffer-pool pages for disk-resident backends (0: default)")
		parallelism  = flag.Int("parallelism", 0, "intra-query workers for large frontier sweeps on segmented/bidir/live engines (0 or 1: serial)")

		ingestHorizon = flag.Int("ingest-horizon", 0, "live mode: reject ingest adds at or past frontier+horizon ticks (0: 4 segment widths, negative: unbounded)")
		compactEvents = flag.Int("compact-events", 0, "live mode: re-seal a dirty segment once its delta log holds this many late/retraction events (0: manual compaction only)")

		cacheEntries = flag.Int("cache", 0, "query-result cache entries (0: 4096, negative: off)")
		maxInFlight  = flag.Int("max-inflight", 0, "concurrent query evaluations (0: 2×GOMAXPROCS)")
		maxQueue     = flag.Int("max-queue", 0, "admission wait-queue depth (0: 64)")
		clientQPS    = flag.Float64("client-qps", 0, "per-client sustained query rate (0: no quotas)")
		clientBurst  = flag.Int("client-burst", 0, "per-client burst size (0: 2×client-qps)")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "server-side per-query timeout (0: none)")
		grace        = flag.Duration("grace", 10*time.Second, "shutdown drain deadline")
		list         = flag.Bool("list", false, "list backends and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range streach.Backends() {
			fmt.Println(name)
		}
		return
	}

	log.SetPrefix("streachd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: *objects,
		NumTicks:   *ticks,
		Seed:       *seed,
	})
	if *shards > 0 {
		prefix := fmt.Sprintf("shard:%d:", *shards)
		if *partitioner != "" {
			prefix = fmt.Sprintf("shard:%d:%s:", *shards, *partitioner)
		}
		*backend = prefix + *backend
		if *liveStr != "" {
			*liveStr = prefix + *liveStr
		}
	}
	opts := streach.Options{
		SegmentTicks:     *segmentTicks,
		PoolPages:        *poolPages,
		QueryParallelism: *parallelism,
		IngestHorizon:    *ingestHorizon,
		CompactEvents:    *compactEvents,
		Seed:             *seed,
	}

	var eng streach.Engine
	if *liveStr != "" {
		live, err := streach.NewLiveEngine(*liveStr, ds.NumObjects(), ds.Env(), ds.ContactDist(), opts)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		positions := make([]streach.Point, ds.NumObjects())
		for tk := 0; tk < ds.NumTicks(); tk++ {
			for o := range positions {
				positions[o] = ds.Position(streach.ObjectID(o), streach.Tick(tk))
			}
			if err := live.AddInstant(positions); err != nil {
				log.Fatalf("preload tick %d: %v", tk, err)
			}
		}
		log.Printf("preloaded %d feed instants in %v (%d sealed segments)",
			ds.NumTicks(), time.Since(start).Round(time.Millisecond), live.NumSealedSegments())
		eng = live
	} else {
		start := time.Now()
		e, err := streach.Open(*backend, ds, opts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("indexed %s with %s in %v (%d index bytes)",
			ds.Name(), *backend, time.Since(start).Round(time.Millisecond), e.IndexBytes())
		eng = e
	}

	srv := serve.New(eng, serve.Config{
		Dataset:      ds.Name(),
		CacheEntries: *cacheEntries,
		MaxInFlight:  *maxInFlight,
		MaxQueue:     *maxQueue,
		ClientQPS:    *clientQPS,
		ClientBurst:  *clientBurst,
		QueryTimeout: *queryTimeout,
	})
	srv.SetEnv(ds.Env())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %s (%d objects × %d ticks) on http://%s", eng.Name(),
		ds.NumObjects(), ds.NumTicks(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := srv.Serve(ctx, ln, *grace); err != nil {
		log.Print(err)
		os.Exit(1)
	}
	log.Print("drained, exiting")
}
