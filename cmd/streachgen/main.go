// Command streachgen generates and inspects synthetic contact datasets.
//
// Usage:
//
//	streachgen -kind rwp -objects 500 -ticks 2000 -seed 7          # summary
//	streachgen -kind vn -objects 200 -contacts                     # + contact stats
//	streachgen -kind taxi -csv /tmp/vnr.csv                        # trajectory CSV
//	streachgen -kind rwp -backend reachgraph -queries 100          # serve a workload
//	streachgen -kind clustered -clusters 12 -roam 0.002            # sharding preset
//	streachgen -kind rwp -lifetime 5 -backend reachgraph           # non-immediate net
//
// The CSV format is one row per (object, tick): object,tick,x,y. With
// -backend, the named registry backend (see -backend list) is opened over
// the generated dataset and a random workload is batch-evaluated through
// it, reporting per-query I/O and latency.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"streach"
)

func main() {
	var (
		kind        = flag.String("kind", "rwp", "dataset kind: rwp | vn | taxi | clustered")
		objects     = flag.Int("objects", 200, "number of moving objects")
		ticks       = flag.Int("ticks", 1000, "time-domain length in ticks (rwp/vn/clustered)")
		minutes     = flag.Int("minutes", 120, "trace length in minutes (taxi)")
		clusters    = flag.Int("clusters", 0, "home regions (clustered; 0 = default)")
		roam        = flag.Float64("roam", 0, "per-waypoint roaming probability (clustered; 0 = default)")
		seed        = flag.Int64("seed", 1, "generator seed")
		contactsFlg = flag.Bool("contacts", false, "extract and summarize the contact network")
		csvPath     = flag.String("csv", "", "write trajectories as CSV to this path")
		backend     = flag.String("backend", "", "registry backend to serve -queries through ('list' to enumerate)")
		queriesFlg  = flag.Int("queries", 0, "random queries to evaluate against -backend")
		workers     = flag.Int("workers", 0, "batch worker-pool bound (default GOMAXPROCS)")
		lifetime    = flag.Int("lifetime", -1, "non-immediate item lifetime in ticks (§7); -1 = immediate contacts")
	)
	flag.Parse()

	if *backend == "list" {
		for _, info := range streach.BackendInfos() {
			fmt.Printf("%-16s %s\n", info.Name, info.Description)
		}
		return
	}

	var ds *streach.Dataset
	switch *kind {
	case "rwp":
		ds = streach.GenerateRandomWaypoint(streach.RWPOptions{
			NumObjects: *objects, NumTicks: *ticks, Seed: *seed,
		})
	case "vn":
		ds = streach.GenerateVehicles(streach.VNOptions{
			NumObjects: *objects, NumTicks: *ticks, Seed: *seed,
		})
	case "taxi":
		ds = streach.GenerateTaxiDay(streach.TaxiOptions{
			NumObjects: *objects, NumMinutes: *minutes, Seed: *seed,
		})
	case "clustered":
		ds = streach.GenerateClustered(streach.ClusteredOptions{
			NumObjects: *objects, NumTicks: *ticks,
			NumClusters: *clusters, RoamProb: *roam, Seed: *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "streachgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	env := ds.Env()
	fmt.Printf("dataset    %s\n", ds.Name())
	fmt.Printf("objects    %d\n", ds.NumObjects())
	fmt.Printf("ticks      %d\n", ds.NumTicks())
	fmt.Printf("env        %.0f m × %.0f m\n", env.Width(), env.Height())
	fmt.Printf("contact dT %.0f m\n", ds.ContactDist())
	fmt.Printf("raw size   %d bytes\n", ds.SizeBytes())

	// With -lifetime ≥ 0 the non-immediate contacts are extracted and folded
	// into an undirected network; -contacts and -backend both run over that
	// projection instead of the immediate contact network.
	var nonimm *streach.ContactNetwork
	if *lifetime >= 0 {
		nonimm = ds.NonImmediateContacts(*lifetime)
		fmt.Printf("lifetime   %d ticks (non-immediate projection)\n", *lifetime)
	}

	if *contactsFlg {
		cn := nonimm
		if cn == nil {
			cn = ds.Contacts()
		}
		fmt.Printf("contacts   %d\n", cn.NumContacts())
		var longest, total int
		for _, c := range cn.All() {
			n := c.Validity.Len()
			total += n
			if n > longest {
				longest = n
			}
		}
		if cn.NumContacts() > 0 {
			fmt.Printf("mean validity  %.1f ticks\n", float64(total)/float64(cn.NumContacts()))
			fmt.Printf("max validity   %d ticks\n", longest)
		}
	}

	if *csvPath != "" {
		if err := writeCSV(ds, *csvPath); err != nil {
			fmt.Fprintf(os.Stderr, "streachgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("csv        %s\n", *csvPath)
	}

	if *backend != "" {
		var src streach.Source = ds
		if nonimm != nil {
			src = nonimm
		}
		if err := serve(src, ds.NumObjects(), ds.NumTicks(), *backend, *queriesFlg, *workers, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "streachgen: %v\n", err)
			os.Exit(1)
		}
	}
}

// serve opens the named backend over src and batch-evaluates a random
// workload through it, summarizing the typed per-query results.
func serve(src streach.Source, numObjects, numTicks int, backend string, count, workers int, seed int64) error {
	if count <= 0 {
		count = 50
	}
	e, err := streach.Open(backend, src, streach.Options{})
	if err != nil {
		return err
	}
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: numObjects,
		NumTicks:   numTicks,
		Count:      count,
		Seed:       seed + 13,
	})
	start := time.Now()
	results, err := streach.EvaluateBatch(context.Background(), e, work,
		streach.BatchOptions{Workers: workers})
	if err != nil {
		return err
	}
	wall := time.Since(start)

	var positive, expanded int
	var io float64
	var lat time.Duration
	for _, r := range results {
		if r.Reachable {
			positive++
		}
		io += r.IO.Normalized
		lat += r.Latency
		expanded += r.Expanded
	}
	n := len(results)
	fmt.Printf("\nbackend    %s\n", e.Name())
	if e.IndexBytes() > 0 {
		fmt.Printf("index      %d KiB on disk\n", e.IndexBytes()/1024)
	}
	fmt.Printf("queries    %d (%d positive)\n", n, positive)
	fmt.Printf("IO/query   %.1f normalized\n", io/float64(n))
	fmt.Printf("lat/query  %s (batch wall %s)\n",
		(lat / time.Duration(n)).Round(time.Microsecond), wall.Round(time.Millisecond))
	fmt.Printf("expanded   %.1f per query\n", float64(expanded)/float64(n))
	return nil
}

func writeCSV(ds *streach.Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "object,tick,x,y")
	for o := 0; o < ds.NumObjects(); o++ {
		for t := 0; t < ds.NumTicks(); t++ {
			p := ds.Position(streach.ObjectID(o), streach.Tick(t))
			fmt.Fprintf(w, "%d,%d,%.2f,%.2f\n", o, t, p.X, p.Y)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
