// Streachload is the load generator for streachd: it discovers the served
// dataset's dimensions from /v1/stats, synthesizes a random point-query
// workload, and drives the daemon in a closed loop (-clients workers
// back-to-back) or an open loop (-qps target pacing with intended-start
// latency accounting, so coordinated omission does not hide queueing).
// With -ingest-qps it simultaneously streams synthetic feed instants into
// /v1/ingest, measuring query service while the engine ingests. The §7
// extension knobs (-min-duration, -prob, -prob-threshold) attach contact
// predicates and probabilistic semantics to the reachability traffic and
// stamp the emitted records accordingly.
//
// Latencies land in an HDR-style log-bucketed histogram (1µs resolution
// floor, ~5% bucket growth to 60s) from which p50/p95/p99 are read.
// Results are emitted as streach-bench/v1 records (experiment "serving"),
// one per swept client count:
//
//	streachload -addr 127.0.0.1:8317 -sweep 1,8,64 -duration 5s -json BENCH_serving.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streach/internal/bench"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8317", "streachd address (host:port)")
		clients    = flag.Int("clients", 8, "closed-loop worker count")
		sweep      = flag.String("sweep", "", "comma-separated client counts to sweep (overrides -clients)")
		qps        = flag.Float64("qps", 0, "open-loop target query rate (0: closed loop)")
		duration   = flag.Duration("duration", 10*time.Second, "measured duration per point")
		warmup     = flag.Duration("warmup", time.Second, "warmup before measurement (not recorded)")
		window     = flag.Int("window", 250, "query interval length in ticks")
		arrivals   = flag.Float64("arrival-frac", 0, "fraction of queries sent to /v1/earliest-arrival")
		minDur     = flag.Int("min-duration", 0, "contact-duration floor (ticks) attached to reachability queries (0: unfiltered)")
		prob       = flag.Float64("prob", 0, "per-contact transmission probability attached to reachability queries (0: deterministic)")
		probThresh = flag.Float64("prob-threshold", 0, "reachability threshold τ attached to probabilistic queries (requires -prob)")
		noCache    = flag.Bool("no-cache", false, "bypass the server's result cache")
		ingestQPS  = flag.Float64("ingest-qps", 0, "feed instants per second to POST to /v1/ingest while measuring")
		lateFrac   = flag.Float64("late-frac", 0, "fraction of ingest posts sent as v2 out-of-order contact events at a past tick (a quarter of those adds are later retracted)")
		strategy   = flag.String("strategy", "auto", `strategy label on emitted records: "forward", "bidir", or "auto" (derive from the server's backend name)`)
		seed       = flag.Int64("seed", 1, "workload seed")
		jsonPath   = flag.String("json", "", "write a streach-bench/v1 report here")
		timeoutStr = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	)
	flag.Parse()

	log.SetPrefix("streachload: ")
	log.SetFlags(0)

	base := "http://" + *addr
	client := &http.Client{Timeout: *timeoutStr}

	st, err := fetchStats(client, base)
	if err != nil {
		log.Fatalf("GET /v1/stats: %v (is streachd running on %s?)", err, *addr)
	}
	log.Printf("target: %s serving %s via %s — %d objects × %d ticks, live=%v",
		base, st.Dataset, st.Backend, st.Engine.NumObjects, st.Engine.NumTicks, st.Live)

	// Sweeping bidir:* against forward backends is the point of the label:
	// "auto" reads the direction off the served backend's name, so a sweep
	// script only has to change -addr (or the daemon's -backend).
	strat := *strategy
	switch strat {
	case "auto":
		strat = "forward"
		if strings.Contains(st.Backend, "bidir:") {
			strat = "bidir"
		}
	case "forward", "bidir":
	default:
		log.Fatalf(`bad -strategy %q (want "forward", "bidir" or "auto")`, strat)
	}

	// τ is meaningless without a per-contact probability (the server 400s the
	// combination), so fill in a conventional default rather than fail late.
	if *probThresh > 0 && *prob == 0 {
		log.Printf("-prob-threshold %v without -prob: defaulting -prob to 0.9", *probThresh)
		*prob = 0.9
	}
	// The earliest-arrival endpoint strict-decodes its body and carries no
	// semantics fields, so the extension knobs only compose with pure
	// reachability traffic.
	if (*minDur > 0 || *prob > 0) && *arrivals > 0 {
		log.Fatal("-min-duration/-prob do not combine with -arrival-frac (earliest-arrival carries no semantics fields)")
	}

	counts := []int{*clients}
	if *sweep != "" {
		counts = counts[:0]
		for _, part := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				log.Fatalf("bad -sweep entry %q", part)
			}
			counts = append(counts, n)
		}
	}

	var records []bench.Record
	for _, n := range counts {
		rec := runPoint(client, base, st, pointConfig{
			clients:     n,
			qps:         *qps,
			duration:    *duration,
			warmup:      *warmup,
			window:      *window,
			arrivalFrac: *arrivals,
			minDuration: *minDur,
			prob:        *prob,
			probThresh:  *probThresh,
			noCache:     *noCache,
			ingestQPS:   *ingestQPS,
			lateFrac:    *lateFrac,
			strategy:    strat,
			seed:        *seed,
		})
		records = append(records, rec)
		log.Printf("clients=%d: %.0f q/s, p50=%.0fµs p95=%.0fµs p99=%.0fµs (%d queries, %d shed, %d errors)",
			n, rec.QueriesPerSec, rec.P50LatencyUS, rec.P95LatencyUS, rec.P99LatencyUS,
			rec.Queries, shedCount.Load(), errCount.Load())
	}

	// Speedup column relative to the smallest swept client count, mirroring
	// the concurrency experiment's convention.
	if base := records[0].QueriesPerSec; base > 0 {
		for i := range records {
			records[i].SpeedupVs1Worker = records[i].QueriesPerSec / base
		}
	}

	if *jsonPath != "" {
		if err := bench.WriteJSONFile(*jsonPath, records); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *jsonPath)
	}
	if errCount.Load() > 0 {
		os.Exit(1)
	}
}

// errCount is transport failures and unexpected statuses; shedCount is
// intentional admission rejections (429 quota, 503 overload), which are
// the server working as designed and do not fail the run.
var (
	errCount  atomic.Int64
	shedCount atomic.Int64
)

type pointConfig struct {
	clients     int
	qps         float64
	duration    time.Duration
	warmup      time.Duration
	window      int
	arrivalFrac float64
	minDuration int
	prob        float64
	probThresh  float64
	noCache     bool
	ingestQPS   float64
	lateFrac    float64
	strategy    string
	seed        int64
}

// runPoint measures one client-count point: warmup, then cfg.duration of
// recorded traffic, with the optional ingest stream running throughout.
func runPoint(client *http.Client, base string, st *statsDoc, cfg pointConfig) bench.Record {
	// Snapshot the server's expanded-contacts histograms so this point's
	// per-query expansion cost can be read as a delta (earlier sweep points
	// and the warmup of other tools already moved the counters).
	initial, err := fetchStats(client, base)
	if err != nil {
		initial = st
	}
	stopIngest := make(chan struct{})
	ingestDone := make(chan ingestReport, 1)
	if cfg.ingestQPS > 0 {
		go func() { ingestDone <- runIngest(client, base, st, cfg.ingestQPS, cfg.lateFrac, cfg.seed, stopIngest) }()
	}

	hist := newHDRHistogram()
	var queries atomic.Int64
	var recording atomic.Bool
	stopWork := make(chan struct{})

	// Each worker owns a seeded RNG so sweeps are reproducible.
	work := func(workerID int, paced <-chan time.Time) {
		rng := rand.New(rand.NewSource(cfg.seed + int64(workerID)*7919))
		for {
			var intended time.Time
			if paced != nil {
				t, ok := <-paced
				if !ok {
					return
				}
				intended = t
			} else {
				select {
				case <-stopWork:
					return
				default:
				}
				intended = time.Now()
			}
			body, path := randomQuery(rng, st, cfg)
			code := postQuery(client, base+path, body)
			lat := time.Since(intended)
			if recording.Load() {
				switch code {
				case 200:
					queries.Add(1)
					hist.observe(lat)
				case 429, 503:
					shedCount.Add(1)
				default:
					errCount.Add(1)
				}
			}
		}
	}

	var paced chan time.Time
	var pacerStop chan struct{}
	if cfg.qps > 0 {
		// Open loop: the pacer stamps intended start times; a queue of
		// slack absorbs scheduler jitter without losing the intent times.
		paced = make(chan time.Time, 4*cfg.clients)
		pacerStop = make(chan struct{})
		go func() {
			interval := time.Duration(float64(time.Second) / cfg.qps)
			tk := time.NewTicker(interval)
			defer tk.Stop()
			for {
				select {
				case t := <-tk.C:
					select {
					case paced <- t:
					default: // workers saturated: drop the tick, the gap shows in throughput
					}
				case <-pacerStop:
					close(paced)
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			work(id, paced)
		}(w)
	}

	time.Sleep(cfg.warmup)
	recording.Store(true)
	start := time.Now()
	time.Sleep(cfg.duration)
	recording.Store(false)
	elapsed := time.Since(start)

	if pacerStop != nil {
		close(pacerStop)
	}
	close(stopWork)
	wg.Wait()

	var ing ingestReport
	close(stopIngest)
	if cfg.ingestQPS > 0 {
		ing = <-ingestDone
	}

	final, err := fetchStats(client, base)
	if err != nil {
		final = st
	}

	n := queries.Load()
	rec := bench.Record{
		Experiment:    "serving",
		Backend:       st.Backend,
		Dataset:       st.Dataset,
		Workers:       cfg.clients,
		Queries:       int(n),
		QueriesPerSec: float64(n) / elapsed.Seconds(),
		P50LatencyUS:  hist.quantileUS(0.50),
		P95LatencyUS:  hist.quantileUS(0.95),
		P99LatencyUS:  hist.quantileUS(0.99),
		CacheHitRate:  final.Cache.HitRate,
		Strategy:      cfg.strategy,
	}
	if cfg.minDuration > 0 {
		rec.Filtered = true
		rec.MinDuration = cfg.minDuration
	}
	if cfg.prob > 0 {
		rec.Prob = cfg.prob
		rec.ProbThreshold = cfg.probThresh
	}
	if final.Engine.Shards > 0 {
		rec.Shards = final.Engine.Shards
		rec.Partitioner = final.Engine.Partitioner
		rec.CrossShardRatio = final.Engine.CrossShardRatio
	}
	// Mean contact expansions per fresh evaluation across the query
	// endpoints this point exercised (cache hits expand nothing and are not
	// in the server's histogram, so the mean is undiluted).
	var dCount, dTotal int64
	for name, ex := range final.ExpandedContacts {
		prev := initial.ExpandedContacts[name]
		dCount += ex.Count - prev.Count
		dTotal += ex.Total - prev.Total
	}
	if dCount > 0 {
		rec.ExpandedPerQuery = float64(dTotal) / float64(dCount)
	}
	if ing.instants > 0 {
		rec.AppendsPerSec = float64(ing.instants) / ing.elapsed.Seconds()
		rec.SealedSegments = final.Engine.SealedSegments
	}
	if ing.late > 0 {
		rec.LateRate = cfg.lateFrac
		rec.LateEvents = int64(ing.late)
	}
	return rec
}

// randomQuery synthesizes one request within the served time domain.
func randomQuery(rng *rand.Rand, st *statsDoc, cfg pointConfig) (body []byte, path string) {
	numObjects, numTicks := st.Engine.NumObjects, st.Engine.NumTicks
	src := rng.Intn(numObjects)
	dst := rng.Intn(numObjects)
	w := cfg.window
	if w >= numTicks {
		w = numTicks - 1
	}
	lo := 0
	if numTicks-w > 1 {
		lo = rng.Intn(numTicks - w)
	}
	req := map[string]any{"src": src, "dst": dst, "from": lo, "to": lo + w}
	if cfg.noCache {
		req["no_cache"] = true
	}
	path = "/v1/reachable"
	if cfg.arrivalFrac > 0 && rng.Float64() < cfg.arrivalFrac {
		path = "/v1/earliest-arrival"
	} else {
		// Extension semantics attach to reachability bodies only; the
		// earliest-arrival decoder rejects unknown fields (and main refuses
		// the flag combination anyway).
		if cfg.minDuration > 0 {
			req["min_duration"] = cfg.minDuration
		}
		if cfg.prob > 0 {
			req["prob"] = cfg.prob
		}
		if cfg.probThresh > 0 {
			req["prob_threshold"] = cfg.probThresh
		}
	}
	body, _ = json.Marshal(req)
	return body, path
}

func postQuery(client *http.Client, url string, body []byte) int {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		logSampledError("POST %s: %v", url, err)
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 && resp.StatusCode != 429 && resp.StatusCode != 503 {
		logSampledError("POST %s: status %d", url, resp.StatusCode)
	}
	return resp.StatusCode
}

// logSampledError reports the first few failures verbatim so a failing run
// is diagnosable without drowning the sweep output.
var loggedErrors atomic.Int64

func logSampledError(format string, args ...any) {
	if loggedErrors.Add(1) <= 5 {
		log.Printf(format, args...)
	}
}

type ingestReport struct {
	instants int
	late     int
	elapsed  time.Duration
}

// runIngest streams synthetic feed ticks at rate posts/sec until stop
// closes. Positions are uniform in the served environment, so the contact
// density stays plausible for the dataset. With lateFrac > 0, that
// fraction of posts instead carries a v2 contact event at a random past
// tick — exercising the delta-log path under live query load — and about
// a quarter of those late adds are retracted again a few posts later.
func runIngest(client *http.Client, base string, st *statsDoc, rate, lateFrac float64, seed int64, stop <-chan struct{}) ingestReport {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	w, h := st.EnvWidth, st.EnvHeight
	if w <= 0 {
		w = 1000
	}
	if h <= 0 {
		h = 1000
	}
	interval := time.Duration(float64(time.Second) / rate)
	tk := time.NewTicker(interval)
	defer tk.Stop()
	start := time.Now()
	var sent, late int
	// Late adds remembered for retraction, deduplicated so no contact
	// instant is ever retracted twice (the server 409s a blind retract).
	type lateAdd struct{ tick, a, b int }
	var toRetract []lateAdd
	remembered := make(map[lateAdd]bool)
	report := func() ingestReport {
		return ingestReport{instants: sent, late: late, elapsed: time.Since(start)}
	}
	for {
		select {
		case <-stop:
			return report()
		case <-tk.C:
		}
		var body []byte
		isLate := lateFrac > 0 && rng.Float64() < lateFrac && st.Engine.NumTicks+sent > 1
		if isLate {
			ev := map[string]any{}
			if len(toRetract) > 0 && rng.Float64() < 0.25 {
				r := toRetract[0]
				toRetract = toRetract[1:]
				ev = map[string]any{"tick": r.tick, "a": r.a, "b": r.b, "retract": true}
			} else {
				a := rng.Intn(st.Engine.NumObjects)
				b := rng.Intn(st.Engine.NumObjects)
				for b == a {
					b = rng.Intn(st.Engine.NumObjects)
				}
				add := lateAdd{tick: rng.Intn(st.Engine.NumTicks + sent), a: a, b: b}
				ev = map[string]any{"tick": add.tick, "a": add.a, "b": add.b}
				if !remembered[add] {
					remembered[add] = true
					toRetract = append(toRetract, add)
				}
			}
			body, _ = json.Marshal(map[string]any{"events": []any{ev}})
		} else {
			instant := make([][2]float64, st.Engine.NumObjects)
			for o := range instant {
				instant[o] = [2]float64{rng.Float64() * w, rng.Float64() * h}
			}
			body, _ = json.Marshal(map[string]any{"instants": [][][2]float64{instant}})
		}
		resp, err := client.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			errCount.Add(1)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		code := resp.StatusCode
		resp.Body.Close()
		switch code {
		case 200:
			if isLate {
				late++
			} else {
				sent++
			}
		case 429, 503:
			// Admission shed the append; the feed instant is simply lost
			// this round, which is what backpressure on a feed means.
			shedCount.Add(1)
		case 501:
			log.Print("server is frozen (501 on /v1/ingest); stopping the ingest stream")
			return report()
		default:
			logSampledError("POST /v1/ingest: status %d", code)
			errCount.Add(1)
		}
	}
}

// --- HDR-style histogram ---

// hdrHistogram is a log-bucketed latency histogram: bucket i covers
// [floor·g^i, floor·g^i+1) with g ≈ 1.05, from 1µs to 60s — constant
// relative error like HDR, with a fixed footprint.
type hdrHistogram struct {
	buckets []atomic.Int64
	count   atomic.Int64
}

const (
	hdrFloorUS = 1.0
	hdrGrowth  = 1.05
	hdrCeilUS  = 60e6
)

var hdrBucketCount = int(math.Ceil(math.Log(hdrCeilUS/hdrFloorUS)/math.Log(hdrGrowth))) + 1

func newHDRHistogram() *hdrHistogram {
	return &hdrHistogram{buckets: make([]atomic.Int64, hdrBucketCount+1)}
}

func (h *hdrHistogram) observe(d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	i := 0
	if us > hdrFloorUS {
		i = int(math.Log(us/hdrFloorUS) / math.Log(hdrGrowth))
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
}

// quantileUS reads the q-quantile in microseconds (upper bucket bound).
func (h *hdrHistogram) quantileUS(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum > rank {
			return hdrFloorUS * math.Pow(hdrGrowth, float64(i+1))
		}
	}
	return hdrCeilUS
}

// --- /v1/stats client ---

// statsDoc mirrors the fields of streachd's /v1/stats the generator needs.
type statsDoc struct {
	Backend   string  `json:"backend"`
	Dataset   string  `json:"dataset"`
	Live      bool    `json:"live"`
	EnvWidth  float64 `json:"env_width"`
	EnvHeight float64 `json:"env_height"`
	Engine    struct {
		NumObjects      int     `json:"num_objects"`
		NumTicks        int     `json:"num_ticks"`
		SealedSegments  int     `json:"sealed_segments"`
		Shards          int     `json:"shards"`
		Partitioner     string  `json:"partitioner"`
		CrossShardRatio float64 `json:"cross_shard_ratio"`
	} `json:"engine"`
	Cache struct {
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
	ExpandedContacts map[string]expandedDoc `json:"expanded_contacts"`
}

// expandedDoc mirrors one endpoint's expanded-contacts summary (the bucket
// list is not needed here).
type expandedDoc struct {
	Count int64 `json:"count"`
	Total int64 `json:"total"`
}

func fetchStats(client *http.Client, base string) (*statsDoc, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var st statsDoc
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	if st.Engine.NumObjects <= 0 || st.Engine.NumTicks <= 0 {
		return nil, fmt.Errorf("stats report %d objects × %d ticks", st.Engine.NumObjects, st.Engine.NumTicks)
	}
	return &st, nil
}
