package streach_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"streach"
)

// TestConcurrencyConformance hammers every registered backend with
// EvaluateBatch at Workers=GOMAXPROCS (run under -race in CI) and asserts
// that parallel evaluation stays exact: answers match the oracle, every
// per-query I/O delta is sane, the deltas sum to the engine's cumulative
// totals, and the totals of all engines sharing one buffer pool sum to the
// pool's global atomic counters.
func TestConcurrencyConformance(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 40, NumTicks: 320, Seed: 19,
	})
	oracle := ds.Contacts().Oracle()
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(),
		NumTicks:   ds.NumTicks(),
		Count:      80,
		MinLen:     10,
		MaxLen:     ds.NumTicks() / 2,
		Seed:       23,
	})
	want := make([]bool, len(work))
	for i, q := range work {
		want[i] = oracle.Reachable(q)
	}

	pool := streach.NewBufferPool(128)
	ctx := context.Background()
	var sumAcrossEngines streach.IOStats

	for _, name := range streach.Backends() {
		e, err := streach.Open(name, ds, streach.Options{Pool: pool})
		if err != nil {
			t.Fatalf("open %q: %v", name, err)
		}
		results, err := streach.EvaluateBatch(ctx, e, work, streach.BatchOptions{
			Workers: runtime.GOMAXPROCS(0),
		})
		if err != nil {
			t.Fatalf("%q batch: %v", name, err)
		}
		var sum streach.IOStats
		for i, r := range results {
			if !r.Evaluated {
				t.Fatalf("%q: query %d not evaluated", name, i)
			}
			if r.Reachable != want[i] {
				t.Fatalf("%q disagrees with oracle on %v under concurrency", name, work[i])
			}
			if r.IO.RandomReads < 0 || r.IO.SequentialReads < 0 || r.IO.BufferHits < 0 {
				t.Fatalf("%q: negative I/O delta %+v", name, r.IO)
			}
			sum.RandomReads += r.IO.RandomReads
			sum.SequentialReads += r.IO.SequentialReads
			sum.BufferHits += r.IO.BufferHits
		}
		totals := e.IOTotals()
		if sum.RandomReads != totals.RandomReads ||
			sum.SequentialReads != totals.SequentialReads ||
			sum.BufferHits != totals.BufferHits {
			t.Fatalf("%q: per-query delta sum %+v != engine totals %+v", name, sum, totals)
		}
		sumAcrossEngines.RandomReads += totals.RandomReads
		sumAcrossEngines.SequentialReads += totals.SequentialReads
		sumAcrossEngines.BufferHits += totals.BufferHits
	}

	ps := pool.Stats()
	if ps.Hits != sumAcrossEngines.BufferHits {
		t.Fatalf("pool hits %d != summed engine buffer hits %d", ps.Hits, sumAcrossEngines.BufferHits)
	}
	if ps.Misses != sumAcrossEngines.RandomReads+sumAcrossEngines.SequentialReads {
		t.Fatalf("pool misses %d != summed engine reads %d",
			ps.Misses, sumAcrossEngines.RandomReads+sumAcrossEngines.SequentialReads)
	}
	if ps.Hits == 0 {
		t.Fatal("no pool hits over the whole sweep; pool is not being shared")
	}
}

// TestConcurrentSetQueries runs point and set queries concurrently on one
// engine and checks set answers against the oracle — the set fallback path
// shares the engine with in-flight point queries.
func TestConcurrentSetQueries(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 35, NumTicks: 250, Seed: 29,
	})
	oracle := ds.Contacts().Oracle()
	e, err := streach.Open("reachgrid", ds, streach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			src := streach.ObjectID(w % ds.NumObjects())
			iv := streach.NewInterval(streach.Tick(10*w), streach.Tick(10*w)+100)
			sr, err := e.ReachableSet(ctx, src, iv)
			if err != nil {
				done <- err
				return
			}
			want := oracle.ReachableSet(src, iv)
			got := append([]streach.ObjectID(nil), sr.Objects...)
			sortIDs(want)
			sortIDs(got)
			if !equalIDs(got, want) {
				t.Errorf("worker %d: set %v, oracle %v", w, got, want)
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchThroughputScales asserts the acceptance bar of the concurrency
// refactor: for every memory-resident backend, a 4-worker batch is at least
// 1.5× faster than the same batch on 1 worker. Skipped on small machines
// and under the race detector, where relative timing is meaningless; CI
// runs it on 4-vCPU runners.
func TestBatchThroughputScales(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts throughput ratios")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need ≥4 CPUs for a meaningful speedup bound, have %d", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 120, NumTicks: 600, Seed: 31,
	})
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(),
		NumTicks:   ds.NumTicks(),
		Count:      240,
		MinLen:     150,
		MaxLen:     300,
		Seed:       37,
	})
	ctx := context.Background()
	run := func(e streach.Engine, workers int) time.Duration {
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ { // best-of-3 damps scheduler noise
			start := time.Now()
			if _, err := streach.EvaluateBatch(ctx, e, work, streach.BatchOptions{Workers: workers}); err != nil {
				t.Fatal(err)
			}
			if el := time.Since(start); best == 0 || el < best {
				best = el
			}
		}
		return best
	}
	for _, name := range []string{"reachgraph-mem", "grail-mem", "oracle"} {
		e, err := streach.Open(name, ds, streach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		run(e, 4) // warm-up: JIT-free, but page in data structures
		serial := run(e, 1)
		parallel := run(e, 4)
		speedup := float64(serial) / float64(parallel)
		t.Logf("%s: 1 worker %v, 4 workers %v, speedup %.2f×", name, serial, parallel, speedup)
		if speedup <= 1.5 {
			t.Errorf("%s: 4-worker speedup %.2f× ≤ 1.5×", name, speedup)
		}
	}
}
