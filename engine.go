// The unified engine API: every query evaluator in the package — the two
// paper indexes, the baselines of §6 and the ground-truth oracle — is
// obtainable from a backend registry under a stable name and satisfies one
// Engine interface. Engines answer queries with typed Results carrying the
// per-query I/O delta, wall latency and expansion counters, replacing the
// mutable IOStats()/ResetStats() measurement pattern for serving-style use.

package streach

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"streach/internal/dn"
	"streach/internal/grail"
	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/reachgraph"
	"streach/internal/reachgrid"
	"streach/internal/trajectory"
)

// Engine is the uniform query interface every registered backend satisfies.
// Engines are safe for concurrent use and evaluate read-only queries fully
// in parallel: every query threads its own I/O accountant through the
// traversal, and the shared buffer pool uses page-sharded latches with
// atomic counters, so no query ever serializes behind another. Per-query
// I/O deltas stay exact under concurrency (each query models its own disk
// arm); the deltas of successfully evaluated queries sum to the engine's
// cumulative IOTotals.
type Engine interface {
	// Name returns the registry name the engine was opened under.
	Name() string
	// Reachable answers the reachability query q. The context is checked
	// before evaluation begins and observed inside the expansion loops of
	// the traversal backends, so cancelling it aborts a long-running
	// evaluation promptly with ctx.Err().
	Reachable(ctx context.Context, q Query) (Result, error)
	// ReachableSet returns every object reachable from src during iv
	// (including src when the interval overlaps the time domain). The
	// returned slice is sorted ascending and free of duplicates for every
	// backend. Backends without a native set primitive answer with one
	// point query per candidate object, honouring ctx between candidates.
	ReachableSet(ctx context.Context, src ObjectID, iv Interval) (SetResult, error)
	// EarliestArrival returns the first tick in iv at which dst holds an
	// item initiated by src at the interval start — the |T'p| of Theorems
	// 4.1/5.4 surfaced as a query. Backends without a native arrival
	// evaluation fall back to the brute-force oracle over the engine's
	// source contacts (ArrivalResult.Native reports which path answered).
	EarliestArrival(ctx context.Context, src, dst ObjectID, iv Interval) (ArrivalResult, error)
	// TopKReachable returns the k objects (src excluded) reachable from
	// src during iv that receive the item with the highest decayed weight
	// decay^transfers, ranked by weight, then arrival tick, then ID.
	// Backends that cannot track transfer counts natively fall back to the
	// oracle (TopKResult.Native).
	TopKReachable(ctx context.Context, src ObjectID, iv Interval, k int, decay float64) (TopKResult, error)
	// IndexBytes returns the on-disk size of the engine's index; zero for
	// memory-resident backends.
	IndexBytes() int64
	// Stats returns a consistent point-in-time snapshot of the engine's
	// observable state — cumulative I/O, buffer-pool counters, index
	// footprint, time-domain dimensions and segment counts — the one struct
	// a serving layer reads instead of poking individual accessors. The
	// snapshot is safe to take while queries run; all counters are atomic.
	Stats() EngineStats
	// IOTotals returns the engine's cumulative simulated disk traffic
	// (zero for memory-resident backends). Totals are concurrency-safe;
	// the IO deltas of successfully evaluated queries sum to them exactly
	// (queries that error or are cancelled mid-evaluation charge the
	// totals but return no delta).
	IOTotals() IOStats
}

// Result is the typed answer to one reachability query.
type Result struct {
	// Query echoes the evaluated query.
	Query Query
	// Reachable is the boolean answer.
	Reachable bool
	// IO is the simulated disk traffic this query alone charged (zero for
	// memory-resident backends).
	IO IOStats
	// Latency is the wall time spent evaluating the query.
	Latency time.Duration
	// Expanded counts the evaluation frontier: objects infected by
	// propagation-style backends, vertex visits by graph traversals.
	Expanded int
	// Evaluated reports whether the query ran; EvaluateBatch leaves it
	// false for queries skipped after cancellation or a failure.
	Evaluated bool
	// Arrival is the earliest tick at which Dst holds the item. It is
	// computed only when Query.Semantics routes the query through the
	// semantics layer; -1 otherwise, and for negative queries.
	Arrival Tick
	// Hops is the minimal number of inter-object transfers among delivery
	// chains arriving by the Arrival tick, when the evaluator tracks
	// transfer counts (hop-bounded queries on hop-counting backends); -1
	// otherwise. Probabilistic queries instead report the full-interval
	// minimum — the transfer count of the best path, which may arrive
	// after the Arrival tick.
	Hops int
	// Native reports whether the semantics layer answered natively in the
	// backend's traversal core; false means the oracle fallback evaluated
	// the query. Plain boolean queries are always native.
	Native bool
	// Prob is the delivery probability under Query.Semantics.Prob: the
	// best single-path probability p^Hops for exact evaluations, or the
	// sampled two-terminal reliability estimate when MCTrials requested the
	// Monte-Carlo fallback. Zero for non-probabilistic queries and for
	// unreachable destinations.
	Prob float64
}

// SetResult is the typed answer to one reachable-set query.
type SetResult struct {
	// Src and Interval echo the evaluated query.
	Src      ObjectID
	Interval Interval
	// Objects is the reachable set, src included (empty when the interval
	// misses the time domain), sorted ascending and deduplicated.
	Objects []ObjectID
	// IO, Latency mirror Result.
	IO      IOStats
	Latency time.Duration
	// Expanded is the size of the reachable set.
	Expanded int
}

// Errors returned by Open.
var (
	// ErrUnknownBackend reports a name absent from the registry.
	ErrUnknownBackend = errors.New("streach: unknown backend")
	// ErrNeedsTrajectories reports a trajectory-indexing backend opened
	// from a bare contact network.
	ErrNeedsTrajectories = errors.New("streach: backend indexes trajectories; open it from a *Dataset")
)

// Source is a data source an engine can be opened from: a *Dataset (full
// trajectory archive) or a *ContactNetwork (pre-extracted contacts, e.g. a
// ContactStream snapshot). Graph-based backends accept either; ReachGrid
// and SPJ index raw trajectories and need a *Dataset.
type Source interface {
	sourceDataset() *Dataset
	sourceContacts() *ContactNetwork
}

func (ds *Dataset) sourceDataset() *Dataset         { return ds }
func (ds *Dataset) sourceContacts() *ContactNetwork { return ds.Contacts() }

func (cn *ContactNetwork) sourceDataset() *Dataset         { return nil }
func (cn *ContactNetwork) sourceContacts() *ContactNetwork { return cn }

// BufferPool is a concurrency-safe LRU page cache for the simulated disk.
// One pool can back several engines over the same dataset (pages are keyed
// by store identity), giving all readers a common page budget; its global
// hit/miss/eviction counters are atomic.
type BufferPool = pagefile.BufferPool

// PoolStats is a snapshot of a BufferPool's global counters.
type PoolStats = pagefile.PoolStats

// NewBufferPool returns a pool holding at most pages cached pages, for
// sharing across the engines of one dataset via Options.Pool.
func NewBufferPool(pages int) *BufferPool { return pagefile.NewBufferPool(pages) }

// Options configures Open. The zero value selects the paper's empirical
// optima for every backend; fields irrelevant to the opened backend are
// ignored.
type Options struct {
	// PoolPages sizes the private buffer pool of the simulated disk
	// (disk-resident backends). Ignored when Pool is set.
	PoolPages int
	// Pool, when non-nil, is a buffer pool shared across engines: every
	// disk-resident backend opened with the same Pool draws on one common
	// page budget (the serving configuration — one cache per dataset, many
	// concurrent readers).
	Pool *BufferPool

	// CellSize is the ReachGrid spatial resolution RS in metres
	// (reachgrid, spj).
	CellSize float64
	// BucketTicks is the ReachGrid temporal resolution RT in instants
	// (reachgrid, spj).
	BucketTicks int

	// PartitionDepth is the ReachGraph partition depth dp.
	PartitionDepth int
	// Resolutions lists the ReachGraph long-edge levels (ascending powers
	// of two); nil selects {2, 4, 8, 16, 32}.
	Resolutions []int

	// GrailPasses is the GRAIL label count d; zero selects 5.
	GrailPasses int
	// Seed seeds GRAIL's randomized labelling.
	Seed int64

	// SegmentTicks is the time-slab width of the segmented backends
	// ("segmented:<name>") and of LiveEngine: the time axis is split into
	// slabs of this many instants, each carrying its own index segment.
	// Zero selects segment.DefaultWidth (128). Ignored by unsegmented
	// backends.
	SegmentTicks int

	// IngestHorizon bounds how far past the current frontier a LiveEngine
	// contact event may land (LiveEngine.Ingest): an add at tick t is
	// rejected with ErrIngestHorizon when t >= frontier + IngestHorizon.
	// Zero selects 4 slab widths; negative disables the bound. Ignored by
	// frozen backends.
	IngestHorizon int

	// CompactEvents is the LiveEngine delta-log compaction threshold: when
	// an ingest leaves a sealed segment with at least this many pending
	// late/retraction events, the segment is re-sealed (compacted) before
	// Ingest returns. Zero disables the policy — dirty segments then only
	// compact on an explicit LiveEngine.Compact call. Ignored by frozen
	// backends.
	CompactEvents int

	// QueryParallelism is the intra-query worker budget of the segmented
	// planners ("segmented:*", "bidir:*" and LiveEngine): when a carried
	// frontier outgrows an internal threshold, its next sweep is
	// partitioned across up to this many workers, each charging a private
	// I/O accountant that is summed into the query's on merge. Zero or one
	// keeps every sweep serial (the allocation-free steady-state path);
	// values above one only ever engage on large frontiers. Ignored by
	// unsegmented backends.
	QueryParallelism int

	// PageFormat selects the on-page record layout of the disk-resident
	// indexes (reachgrid, spj, reachgraph and their segmented variants).
	// Zero selects the default PageFormatVarint; PageFormatFixed rebuilds
	// the v1 fixed-width layout. Both formats answer queries identically —
	// the varint-delta layout just occupies fewer pages.
	PageFormat PageFormat
}

// PageFormat identifies an on-page record layout; see Options.PageFormat.
type PageFormat = pagefile.Format

// The available page formats.
const (
	// PageFormatFixed is the v1 layout: fixed-width 32/64-bit fields.
	PageFormatFixed = pagefile.FormatFixed
	// PageFormatVarint is the v2 layout (the default): varint counts and
	// ticks, delta-compressed ID postings, prediction-XOR'd positions.
	PageFormatVarint = pagefile.FormatVarint
)

// BackendInfo describes one registered backend.
type BackendInfo struct {
	// Name is the registry name accepted by Open.
	Name string
	// Description is a one-line summary.
	Description string
	// DiskResident reports whether queries charge simulated disk I/O.
	DiskResident bool
	// NeedsTrajectories reports whether Open requires a *Dataset source.
	NeedsTrajectories bool
}

// backendSpec is a registry entry.
type backendSpec struct {
	info BackendInfo
	open func(src Source, opts Options) (engineCore, error)
	// ownPool marks backends that manage buffer pools themselves (the
	// shard coordinators, which give each disk-resident child a private
	// pool unless the caller shares one); Open then skips the usual
	// pool materialization.
	ownPool bool
}

// defaultResolutions are the paper's optimal long-edge levels (§6.2.1.4).
func defaultResolutions(res []int) []int {
	if res == nil {
		return []int{2, 4, 8, 16, 32}
	}
	return res
}

func grailPasses(opts Options) int {
	if opts.GrailPasses <= 0 {
		return 5
	}
	return opts.GrailPasses
}

// registry holds every backend under its canonical name; aliases maps
// accepted alternate spellings onto canonical names.
var (
	registry = map[string]backendSpec{}
	aliases  = map[string]string{
		"reachgraph-bmbfs": "reachgraph",
		"grail-disk":       "grail",
	}
)

func register(info BackendInfo, open func(Source, Options) (engineCore, error)) {
	registry[info.Name] = backendSpec{info: info, open: open}
}

func init() {
	register(BackendInfo{
		Name:              "reachgrid",
		Description:       "spatiotemporal grid with guided on-the-fly expansion (§4)",
		DiskResident:      true,
		NeedsTrajectories: true,
	}, func(src Source, opts Options) (engineCore, error) {
		ix, err := buildGridIndex(src, opts)
		if err != nil {
			return nil, err
		}
		return gridCore{ix}, nil
	})
	register(BackendInfo{
		Name:              "spj",
		Description:       "naive spatiotemporal-join pipeline over the ReachGrid layout (§6.1.2)",
		DiskResident:      true,
		NeedsTrajectories: true,
	}, func(src Source, opts Options) (engineCore, error) {
		ix, err := buildGridIndex(src, opts)
		if err != nil {
			return nil, err
		}
		return spjCore{ix}, nil
	})
	for _, s := range []Strategy{BMBFS, BBFS, EBFS, EDFS} {
		name := "reachgraph"
		if s != BMBFS {
			name += "-" + strings.ToLower(strings.ReplaceAll(s.String(), "-", ""))
		}
		strat := s
		register(BackendInfo{
			Name:         name,
			Description:  fmt.Sprintf("disk-partitioned contact-network DAG, %s traversal (§5)", strat),
			DiskResident: true,
		}, func(src Source, opts Options) (engineCore, error) {
			ix, err := reachgraph.Build(dn.Build(src.sourceContacts().net), reachgraph.Params{
				PartitionDepth: opts.PartitionDepth,
				Resolutions:    opts.Resolutions,
				PoolPages:      opts.PoolPages,
				Pool:           opts.Pool,
				Format:         opts.PageFormat,
			})
			if err != nil {
				return nil, err
			}
			return graphCore{ix: ix, strategy: strat}, nil
		})
	}
	register(BackendInfo{
		Name:        "reachgraph-mem",
		Description: "memory-resident ReachGraph, BM-BFS traversal (§6.4)",
	}, func(src Source, opts Options) (engineCore, error) {
		m, err := reachgraph.NewMem(dn.Build(src.sourceContacts().net), defaultResolutions(opts.Resolutions))
		if err != nil {
			return nil, err
		}
		return graphMemCore{m: m}, nil
	})
	register(BackendInfo{
		Name:         "grail",
		Description:  "GRAIL interval labelling, disk-resident adaptation (§6.4)",
		DiskResident: true,
	}, func(src Source, opts Options) (engineCore, error) {
		dk, err := grail.NewDisk(dn.Build(src.sourceContacts().net), grailPasses(opts), opts.Seed, opts.PoolPages, opts.Pool)
		if err != nil {
			return nil, err
		}
		return grailDiskCore{dk}, nil
	})
	register(BackendInfo{
		Name:        "grail-mem",
		Description: "GRAIL interval labelling, memory-resident (§6.4)",
	}, func(src Source, opts Options) (engineCore, error) {
		m, err := grail.NewMem(dn.Build(src.sourceContacts().net), grailPasses(opts), opts.Seed)
		if err != nil {
			return nil, err
		}
		return grailMemCore{m: m}, nil
	})
	register(BackendInfo{
		Name:        "oracle",
		Description: "brute-force propagation simulation, the ground truth (§3.2)",
	}, func(src Source, opts Options) (engineCore, error) {
		return oracleCore{o: queries.NewOracle(src.sourceContacts().net)}, nil
	})
}

func buildGridIndex(src Source, opts Options) (*reachgrid.Index, error) {
	return reachgrid.Build(src.sourceDataset().d, reachgrid.Params{
		CellSize:    opts.CellSize,
		BucketTicks: opts.BucketTicks,
		PoolPages:   opts.PoolPages,
		Pool:        opts.Pool,
		Format:      opts.PageFormat,
	})
}

// Backends lists the registered backend names in sorted order.
func Backends() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BackendInfos describes every registered backend, sorted by name.
func BackendInfos() []BackendInfo {
	infos := make([]BackendInfo, 0, len(registry))
	for _, name := range Backends() {
		infos = append(infos, registry[name].info)
	}
	return infos
}

// LookupBackend resolves a backend name or registered alias to its
// BackendInfo, reporting whether Open would accept the name.
func LookupBackend(name string) (BackendInfo, bool) {
	spec, ok := lookupSpec(name)
	return spec.info, ok
}

func lookupSpec(name string) (backendSpec, bool) {
	canonical := strings.ToLower(strings.TrimSpace(name))
	if alias, ok := aliases[canonical]; ok {
		canonical = alias
	}
	if spec, ok := registry[canonical]; ok {
		return spec, ok
	}
	// "shard:<K>[:partitioner]:<base>" and "uncertain:<base>" names compose
	// dynamically: any shard count or uncertain wrapper over any registered
	// contact-sourced base resolves even without a pre-registered entry.
	if spec, ok := shardSpec(canonical); ok {
		return spec, ok
	}
	return uncertainSpec(canonical)
}

// Open builds the named backend over src and returns it as an Engine.
// Backend selection is by registry name (see Backends); src is a *Dataset
// or, for graph-based backends, optionally a pre-extracted *ContactNetwork
// such as a ContactStream snapshot.
func Open(name string, src Source, opts Options) (Engine, error) {
	spec, ok := lookupSpec(name)
	if !ok {
		return nil, fmt.Errorf("%w %q (available: %s)",
			ErrUnknownBackend, name, strings.Join(Backends(), ", "))
	}
	if src == nil {
		return nil, fmt.Errorf("streach: open %q: nil source", spec.info.Name)
	}
	if spec.info.NeedsTrajectories && src.sourceDataset() == nil {
		return nil, fmt.Errorf("open %q: %w", spec.info.Name, ErrNeedsTrajectories)
	}
	// Materialize the buffer pool at the Open level so the engine can
	// snapshot its counters (Engine.Stats): disk-resident backends that
	// would otherwise build a private pool get the same 64-page default,
	// now visible to the engine wrapper. Backends that manage their own
	// pools (shard coordinators) are left alone — a pool materialized here
	// would force all shards onto one budget.
	if !spec.ownPool {
		opts = withSharedSlabPool(opts, spec.info.DiskResident)
	}
	core, err := spec.open(src, opts)
	if err != nil {
		return nil, fmt.Errorf("streach: open %q: %w", spec.info.Name, err)
	}
	// Engines start with zeroed counters and a cold buffer pool:
	// construction traffic is not query traffic. With a shared pool only
	// this engine's pages are evicted.
	core.resetIO()
	core.dropCache()
	numObjects, numTicks := sourceDims(src)
	eng := &engine{
		name:       spec.info.Name,
		core:       core,
		numObjects: numObjects,
		numTicks:   numTicks,
		src:        src,
		pool:       opts.Pool,
	}
	if sc, ok := core.(*segmentedCore); ok {
		// Segmented engines additionally expose per-segment statistics
		// (the Segmented interface).
		return &segmentedEngine{engine: eng, seg: sc}, nil
	}
	if sh, ok := core.(*shardCore); ok {
		// Shard coordinators additionally expose per-shard statistics
		// (the Sharded interface).
		return &shardEngine{engine: eng, sh: sh}, nil
	}
	return eng, nil
}

func sourceDims(src Source) (numObjects, numTicks int) {
	if ds := src.sourceDataset(); ds != nil {
		return ds.NumObjects(), ds.NumTicks()
	}
	cn := src.sourceContacts()
	return cn.NumObjects(), cn.NumTicks()
}

// engineCore is the minimal backend surface the uniform engine wraps.
// Implementations must be safe for concurrent calls: all traversal state is
// per-call and page reads are charged to the caller's accountant.
type engineCore interface {
	// reach answers q, returning the expansion counter alongside and
	// charging page reads to acct. ctx is observed inside the expansion
	// loops of the traversal backends.
	reach(ctx context.Context, q Query, acct *pagefile.Stats) (ok bool, expanded int, err error)
	// reachSet returns the native reachable set (any order, duplicates
	// allowed — the engine wrapper normalizes), or errNoNativeSet when
	// the backend has no set primitive.
	reachSet(ctx context.Context, src ObjectID, iv Interval, acct *pagefile.Stats) ([]ObjectID, error)
	// ioTotals snapshots the cumulative I/O counters; zero for
	// memory-resident backends.
	ioTotals() pagefile.Stats
	// resetIO zeroes the cumulative counters; no-op for memory-resident
	// backends.
	resetIO()
	// indexBytes is the simulated on-disk index size.
	indexBytes() int64
	// dropCache evicts the engine's pages from the buffer pool; no-op for
	// memory-resident backends.
	dropCache()
}

// errNoNativeSet makes the engine fall back to per-object point queries.
var errNoNativeSet = errors.New("streach: backend has no native set primitive")

// sortDedupObjects is the normalization every ReachableSet answer goes
// through, making set results identical across backends.
func sortDedupObjects(objs []ObjectID) []ObjectID {
	return trajectory.SortDedupObjects(objs)
}

// engine adapts an engineCore to the Engine interface, measuring each query
// through its own I/O accountant. There is no engine-level lock: cores are
// concurrency-safe and queries run fully in parallel.
type engine struct {
	name string
	core engineCore

	numObjects int
	numTicks   int

	// src is retained for the semantics oracle fallback: backends without
	// a native implementation of a requested query semantics answer
	// through a brute-force oracle over the source contacts, built lazily
	// on first use (fb is never built for backends that evaluate every
	// semantics natively).
	src    Source
	fbOnce sync.Once
	fb     *queries.Oracle

	// pool is the buffer pool the engine's disk-resident index draws on
	// (the caller's shared Options.Pool or the private pool Open
	// materialized); nil for memory-resident backends.
	pool *BufferPool
}

func (e *engine) Name() string { return e.name }

func (e *engine) IndexBytes() int64 { return e.core.indexBytes() }

func (e *engine) IOTotals() IOStats {
	return statsOf(e.core.ioTotals())
}

// acctPool recycles per-query I/O accountants: the accountant's address
// escapes into the engineCore interface call, so a stack local would cost
// one heap allocation per query — the only one left on the memory
// backends' hot path.
var acctPool = sync.Pool{New: func() any { return new(pagefile.Stats) }}

func (e *engine) Reachable(ctx context.Context, q Query) (Result, error) {
	// A query that queued behind slow ones must not start evaluating after
	// its context was cancelled.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if q.Semantics.Active() {
		return evalReachableSem(ctx, e, q)
	}
	acct := acctPool.Get().(*pagefile.Stats)
	defer acctPool.Put(acct)
	acct.Reset()
	start := time.Now()
	ok, expanded, err := e.core.reach(ctx, q, acct)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Query:     q,
		Reachable: ok,
		IO:        statsOf(*acct),
		Latency:   time.Since(start),
		Expanded:  expanded,
		Evaluated: true,
		Arrival:   -1,
		Hops:      -1,
		Native:    true,
	}, nil
}

func (e *engine) ReachableSet(ctx context.Context, src ObjectID, iv Interval) (SetResult, error) {
	if err := ctx.Err(); err != nil {
		return SetResult{}, err
	}
	acct := acctPool.Get().(*pagefile.Stats)
	defer acctPool.Put(acct)
	acct.Reset()
	start := time.Now()
	objs, err := e.core.reachSet(ctx, src, iv, acct)
	if errors.Is(err, errNoNativeSet) {
		objs, err = e.setViaPointQueries(ctx, src, iv, acct)
	}
	if err != nil {
		return SetResult{}, err
	}
	objs = sortDedupObjects(objs)
	return SetResult{
		Src:      src,
		Interval: iv,
		Objects:  objs,
		IO:       statsOf(*acct),
		Latency:  time.Since(start),
		Expanded: len(objs),
	}, nil
}

// setViaPointQueries answers a reachable-set query with one point query per
// candidate destination, mirroring the semantics of the native set
// primitives: src is included exactly when the interval overlaps the time
// domain. All point queries charge the one accountant of the set query.
func (e *engine) setViaPointQueries(ctx context.Context, src ObjectID, iv Interval, acct *pagefile.Stats) ([]ObjectID, error) {
	if int(src) < 0 || int(src) >= e.numObjects {
		return nil, fmt.Errorf("streach: source %d outside [0, %d)", src, e.numObjects)
	}
	if iv.Intersect(Interval{Lo: 0, Hi: Tick(e.numTicks - 1)}).Len() == 0 {
		return nil, nil
	}
	out := []ObjectID{src}
	for o := 0; o < e.numObjects; o++ {
		if ObjectID(o) == src {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ok, _, err := e.core.reach(ctx, Query{Src: src, Dst: ObjectID(o), Interval: iv}, acct)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, ObjectID(o))
		}
	}
	return out, nil
}

// --- backend cores ---

// memCore supplies the no-op I/O surface shared by memory-resident cores.
type memCore struct{}

func (memCore) ioTotals() pagefile.Stats { return pagefile.Stats{} }
func (memCore) resetIO()                 {}
func (memCore) indexBytes() int64        { return 0 }
func (memCore) dropCache()               {}

type gridCore struct{ ix *reachgrid.Index }

func (c gridCore) reach(ctx context.Context, q Query, acct *pagefile.Stats) (bool, int, error) {
	return c.ix.ReachCounted(ctx, q, acct)
}
func (c gridCore) reachSet(ctx context.Context, src ObjectID, iv Interval, acct *pagefile.Stats) ([]ObjectID, error) {
	return c.ix.ReachableSet(ctx, src, iv, acct)
}
func (c gridCore) ioTotals() pagefile.Stats { return c.ix.Counters() }
func (c gridCore) resetIO()                 { c.ix.ResetCounters() }
func (c gridCore) indexBytes() int64        { return c.ix.Store().SizeBytes() }
func (c gridCore) dropCache()               { c.ix.Store().DropCache() }

type spjCore struct{ ix *reachgrid.Index }

func (c spjCore) reach(ctx context.Context, q Query, acct *pagefile.Stats) (bool, int, error) {
	return c.ix.SPJReachCounted(ctx, q, acct)
}
func (c spjCore) reachSet(context.Context, ObjectID, Interval, *pagefile.Stats) ([]ObjectID, error) {
	return nil, errNoNativeSet
}
func (c spjCore) ioTotals() pagefile.Stats { return c.ix.Counters() }
func (c spjCore) resetIO()                 { c.ix.ResetCounters() }
func (c spjCore) indexBytes() int64        { return c.ix.Store().SizeBytes() }
func (c spjCore) dropCache()               { c.ix.Store().DropCache() }

type graphCore struct {
	ix       *reachgraph.Index
	strategy Strategy
}

func (c graphCore) reach(ctx context.Context, q Query, acct *pagefile.Stats) (bool, int, error) {
	return c.ix.ReachStrategyCounted(ctx, q, c.strategy, acct)
}
func (c graphCore) reachSet(context.Context, ObjectID, Interval, *pagefile.Stats) ([]ObjectID, error) {
	return nil, errNoNativeSet
}
func (c graphCore) ioTotals() pagefile.Stats { return c.ix.Counters() }
func (c graphCore) resetIO()                 { c.ix.ResetCounters() }
func (c graphCore) indexBytes() int64        { return c.ix.Store().SizeBytes() }
func (c graphCore) dropCache()               { c.ix.DropCache() }

type graphMemCore struct {
	memCore
	m *reachgraph.Mem
}

func (c graphMemCore) reach(ctx context.Context, q Query, _ *pagefile.Stats) (bool, int, error) {
	return c.m.ReachStrategyCounted(ctx, q, BMBFS)
}
func (c graphMemCore) reachSet(context.Context, ObjectID, Interval, *pagefile.Stats) ([]ObjectID, error) {
	return nil, errNoNativeSet
}

type grailDiskCore struct{ dk *grail.Disk }

func (c grailDiskCore) reach(ctx context.Context, q Query, acct *pagefile.Stats) (bool, int, error) {
	return c.dk.ReachCounted(ctx, q, acct)
}
func (c grailDiskCore) reachSet(context.Context, ObjectID, Interval, *pagefile.Stats) ([]ObjectID, error) {
	return nil, errNoNativeSet
}
func (c grailDiskCore) ioTotals() pagefile.Stats { return c.dk.Counters() }
func (c grailDiskCore) resetIO()                 { c.dk.ResetCounters() }
func (c grailDiskCore) indexBytes() int64        { return c.dk.Store().SizeBytes() }
func (c grailDiskCore) dropCache()               { c.dk.Store().DropCache() }

type grailMemCore struct {
	memCore
	m *grail.Mem
}

func (c grailMemCore) reach(ctx context.Context, q Query, _ *pagefile.Stats) (bool, int, error) {
	return c.m.ReachCounted(ctx, q)
}
func (c grailMemCore) reachSet(context.Context, ObjectID, Interval, *pagefile.Stats) ([]ObjectID, error) {
	return nil, errNoNativeSet
}

type oracleCore struct {
	memCore
	o *queries.Oracle
}

func (c oracleCore) reach(_ context.Context, q Query, _ *pagefile.Stats) (bool, int, error) {
	ok, expanded := c.o.ReachableCounted(q)
	return ok, expanded, nil
}
func (c oracleCore) reachSet(_ context.Context, src ObjectID, iv Interval, _ *pagefile.Stats) ([]ObjectID, error) {
	return c.o.ReachableSet(src, iv), nil
}
