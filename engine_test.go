package streach_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"streach"
)

// conformanceSource builds one small dataset shared by the registry tests.
func conformanceSource(t testing.TB) *streach.Dataset {
	t.Helper()
	return streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 45, NumTicks: 400, Seed: 101,
	})
}

// TestBackendRegistry pins the registry surface: every paper evaluator is
// registered, aliases resolve, and unknown or ill-sourced opens fail with
// the typed errors.
func TestBackendRegistry(t *testing.T) {
	want := []string{
		"grail", "grail-mem", "oracle", "reachgrid", "reachgraph",
		"reachgraph-bbfs", "reachgraph-ebfs", "reachgraph-edfs",
		"reachgraph-mem", "spj",
	}
	have := map[string]bool{}
	for _, name := range streach.Backends() {
		have[name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("backend %q not registered (have %v)", name, streach.Backends())
		}
	}
	if len(streach.BackendInfos()) != len(streach.Backends()) {
		t.Error("BackendInfos and Backends disagree on length")
	}

	ds := conformanceSource(t)
	if _, err := streach.Open("no-such-index", ds, streach.Options{}); !errors.Is(err, streach.ErrUnknownBackend) {
		t.Errorf("unknown backend: got %v, want ErrUnknownBackend", err)
	}
	if _, err := streach.Open("reachgrid", ds.Contacts(), streach.Options{}); !errors.Is(err, streach.ErrNeedsTrajectories) {
		t.Errorf("reachgrid from contacts: got %v, want ErrNeedsTrajectories", err)
	}
	e, err := streach.Open("ReachGraph-BMBFS", ds, streach.Options{})
	if err != nil {
		t.Fatalf("alias open: %v", err)
	}
	if e.Name() != "reachgraph" {
		t.Errorf("alias resolved to %q, want reachgraph", e.Name())
	}
}

// TestCrossBackendConformance runs a seeded random workload through every
// registered backend and asserts agreement with the oracle, for both point
// and set queries.
func TestCrossBackendConformance(t *testing.T) {
	ds := conformanceSource(t)
	oracle := ds.Contacts().Oracle()
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(),
		NumTicks:   ds.NumTicks(),
		Count:      50,
		MinLen:     10,
		MaxLen:     ds.NumTicks() / 2,
		Seed:       77,
	})
	ctx := context.Background()

	var positives int
	for _, q := range work {
		if oracle.Reachable(q) {
			positives++
		}
	}
	if positives == 0 || positives == len(work) {
		t.Fatalf("degenerate workload: %d/%d positive", positives, len(work))
	}

	for _, name := range streach.Backends() {
		e, err := streach.Open(name, ds, streach.Options{})
		if err != nil {
			t.Fatalf("open %q: %v", name, err)
		}
		if e.Name() != name {
			t.Errorf("%q: Name() = %q", name, e.Name())
		}
		var charged bool
		for _, q := range work {
			r, err := e.Reachable(ctx, q)
			if err != nil {
				t.Fatalf("%q %v: %v", name, q, err)
			}
			if want := oracle.Reachable(q); r.Reachable != want {
				t.Fatalf("%q disagrees with oracle on %v: got %v, want %v", name, q, r.Reachable, want)
			}
			if !r.Evaluated {
				t.Fatalf("%q %v: result not marked evaluated", name, q)
			}
			if r.IO.Normalized > 0 {
				charged = true
			}
			if r.IO.RandomReads < 0 || r.IO.SequentialReads < 0 {
				t.Fatalf("%q %v: negative I/O delta %+v", name, q, r.IO)
			}
		}
		isDisk := false
		for _, info := range streach.BackendInfos() {
			if info.Name == name {
				isDisk = info.DiskResident
			}
		}
		if isDisk && !charged {
			t.Errorf("%q is disk-resident but charged no I/O over %d queries", name, len(work))
		}
		if !isDisk && charged {
			t.Errorf("%q is memory-resident but charged I/O", name)
		}

		// Set queries: native primitives and point-query fallbacks must
		// both match ground truth, and every backend must return the set
		// already sorted ascending with no duplicates (the Engine
		// contract) — the comparison below is order-sensitive on purpose.
		for src := streach.ObjectID(0); src < 4; src++ {
			iv := streach.NewInterval(streach.Tick(20*src), streach.Tick(20*src)+120)
			want := oracle.ReachableSet(src, iv)
			sr, err := e.ReachableSet(ctx, src, iv)
			if err != nil {
				t.Fatalf("%q set %d %v: %v", name, src, iv, err)
			}
			for i := 1; i < len(sr.Objects); i++ {
				if sr.Objects[i] <= sr.Objects[i-1] {
					t.Fatalf("%q set %d %v not strictly ascending at %d: %v",
						name, src, iv, i, sr.Objects)
				}
			}
			sortIDs(want)
			if !equalIDs(sr.Objects, want) {
				t.Fatalf("%q set %d %v: got %v, want %v", name, src, iv, sr.Objects, want)
			}
			if sr.Expanded != len(sr.Objects) {
				t.Errorf("%q set %d: Expanded=%d, |Objects|=%d", name, src, sr.Expanded, len(sr.Objects))
			}
		}
	}
}

// TestOpenFromContactNetwork exercises the ContactStream.Snapshot →
// Open("reachgraph", snapshot) round trip: graph-based backends open from a
// pre-extracted network, trajectory-indexing ones refuse.
func TestOpenFromContactNetwork(t *testing.T) {
	ds := conformanceSource(t)
	stream, err := streach.NewContactStream(ds.NumObjects(), ds.Env(), ds.ContactDist())
	if err != nil {
		t.Fatal(err)
	}
	positions := make([]streach.Point, ds.NumObjects())
	for tk := 0; tk < ds.NumTicks(); tk++ {
		for o := range positions {
			positions[o] = ds.Position(streach.ObjectID(o), streach.Tick(tk))
		}
		if err := stream.AddInstant(positions); err != nil {
			t.Fatal(err)
		}
	}
	snap := stream.Snapshot()

	oracle := ds.Contacts().Oracle()
	ctx := context.Background()
	for _, name := range []string{"reachgraph", "grail", "grail-mem", "oracle"} {
		e, err := streach.Open(name, snap, streach.Options{})
		if err != nil {
			t.Fatalf("open %q from snapshot: %v", name, err)
		}
		for _, q := range streach.RandomQueries(streach.WorkloadOptions{
			NumObjects: ds.NumObjects(), NumTicks: ds.NumTicks(),
			Count: 25, MinLen: 10, MaxLen: 200, Seed: 55,
		}) {
			r, err := e.Reachable(ctx, q)
			if err != nil {
				t.Fatalf("%q %v: %v", name, q, err)
			}
			if want := oracle.Reachable(q); r.Reachable != want {
				t.Fatalf("%q on snapshot disagrees with oracle on %v", name, q)
			}
		}
	}
	for _, name := range []string{"reachgrid", "spj"} {
		if _, err := streach.Open(name, snap, streach.Options{}); !errors.Is(err, streach.ErrNeedsTrajectories) {
			t.Errorf("open %q from snapshot: got %v, want ErrNeedsTrajectories", name, err)
		}
	}
}

// TestEvaluateBatch checks that the batch evaluator matches sequential
// evaluation and reports per-query I/O deltas.
func TestEvaluateBatch(t *testing.T) {
	ds := conformanceSource(t)
	e, err := streach.Open("reachgrid", ds, streach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(), NumTicks: ds.NumTicks(),
		Count: 40, MinLen: 10, MaxLen: 200, Seed: 91,
	})
	oracle := ds.Contacts().Oracle()

	results, err := streach.EvaluateBatch(context.Background(), e, work, streach.BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(work) {
		t.Fatalf("got %d results for %d queries", len(results), len(work))
	}
	var io float64
	for i, r := range results {
		if !r.Evaluated {
			t.Fatalf("query %d not evaluated", i)
		}
		if r.Query != work[i] {
			t.Fatalf("result %d echoes %v, want %v", i, r.Query, work[i])
		}
		if r.Reachable != oracle.Reachable(work[i]) {
			t.Fatalf("batch disagrees with oracle on %v", work[i])
		}
		io += r.IO.Normalized
	}
	if io == 0 {
		t.Error("batch over a disk-resident engine charged no I/O")
	}
}

// blockingEngine is a stub Engine whose queries block until the context is
// cancelled, for exercising batch cancellation without timing flakiness.
type blockingEngine struct {
	started chan struct{}
}

func (b *blockingEngine) Name() string               { return "blocking" }
func (b *blockingEngine) IndexBytes() int64          { return 0 }
func (b *blockingEngine) IOTotals() streach.IOStats  { return streach.IOStats{} }
func (b *blockingEngine) Stats() streach.EngineStats { return streach.EngineStats{Backend: "blocking"} }
func (b *blockingEngine) Reachable(ctx context.Context, q streach.Query) (streach.Result, error) {
	select {
	case b.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return streach.Result{}, ctx.Err()
}
func (b *blockingEngine) ReachableSet(ctx context.Context, src streach.ObjectID, iv streach.Interval) (streach.SetResult, error) {
	return streach.SetResult{}, ctx.Err()
}
func (b *blockingEngine) EarliestArrival(ctx context.Context, src, dst streach.ObjectID, iv streach.Interval) (streach.ArrivalResult, error) {
	return streach.ArrivalResult{}, ctx.Err()
}
func (b *blockingEngine) TopKReachable(ctx context.Context, src streach.ObjectID, iv streach.Interval, k int, decay float64) (streach.TopKResult, error) {
	return streach.TopKResult{}, ctx.Err()
}

// TestEvaluateBatchCancellation cancels a batch mid-flight and expects a
// prompt return with the context error and unevaluated remainders.
func TestEvaluateBatchCancellation(t *testing.T) {
	qs := make([]streach.Query, 16)
	for i := range qs {
		qs[i] = streach.Query{Src: 0, Dst: 1, Interval: streach.NewInterval(0, 10)}
	}
	be := &blockingEngine{started: make(chan struct{}, 1)}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-be.started // at least one query is in flight
		cancel()
	}()
	done := make(chan struct{})
	var results []streach.Result
	var err error
	go func() {
		results, err = streach.EvaluateBatch(ctx, be, qs, streach.BatchOptions{Workers: 3})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("EvaluateBatch did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got error %v, want context.Canceled", err)
	}
	if len(results) != len(qs) {
		t.Fatalf("got %d results, want %d", len(results), len(qs))
	}
	for i, r := range results {
		if r.Evaluated {
			t.Errorf("query %d marked evaluated after cancellation", i)
		}
	}

	// A pre-cancelled context evaluates nothing.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	results, err = streach.EvaluateBatch(pre, be, qs, streach.BatchOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: got %v, want context.Canceled", err)
	}
	for i, r := range results {
		if r.Evaluated {
			t.Errorf("pre-cancelled: query %d evaluated", i)
		}
	}
}

// failingEngine fails every query, for the ContinueOnError path.
type failingEngine struct{ calls int }

func (f *failingEngine) Name() string               { return "failing" }
func (f *failingEngine) IndexBytes() int64          { return 0 }
func (f *failingEngine) IOTotals() streach.IOStats  { return streach.IOStats{} }
func (f *failingEngine) Stats() streach.EngineStats { return streach.EngineStats{Backend: "failing"} }
func (f *failingEngine) Reachable(ctx context.Context, q streach.Query) (streach.Result, error) {
	f.calls++
	if q.Src == 2 {
		return streach.Result{}, errors.New("boom")
	}
	return streach.Result{Query: q, Evaluated: true}, nil
}
func (f *failingEngine) ReachableSet(ctx context.Context, src streach.ObjectID, iv streach.Interval) (streach.SetResult, error) {
	return streach.SetResult{}, errors.New("boom")
}
func (f *failingEngine) EarliestArrival(ctx context.Context, src, dst streach.ObjectID, iv streach.Interval) (streach.ArrivalResult, error) {
	return streach.ArrivalResult{}, errors.New("boom")
}
func (f *failingEngine) TopKReachable(ctx context.Context, src streach.ObjectID, iv streach.Interval, k int, decay float64) (streach.TopKResult, error) {
	return streach.TopKResult{}, errors.New("boom")
}

// TestEvaluateBatchContinueOnError keeps going past failures and still
// reports the first error.
func TestEvaluateBatchContinueOnError(t *testing.T) {
	qs := make([]streach.Query, 8)
	for i := range qs {
		qs[i] = streach.Query{Src: streach.ObjectID(i % 4), Dst: 7, Interval: streach.NewInterval(0, 10)}
	}
	fe := &failingEngine{}
	results, err := streach.EvaluateBatch(context.Background(), fe, qs, streach.BatchOptions{
		Workers: 1, ContinueOnError: true,
	})
	if err == nil {
		t.Fatal("want first error, got nil")
	}
	if fe.calls != len(qs) {
		t.Fatalf("evaluated %d queries, want all %d", fe.calls, len(qs))
	}
	var evaluated int
	for _, r := range results {
		if r.Evaluated {
			evaluated++
		}
	}
	if evaluated != 6 { // 2 of 8 queries have Src == 2
		t.Fatalf("evaluated %d, want 6", evaluated)
	}
}

// TestResultIODeltas pins the per-query delta semantics: deltas sum to the
// engine's cumulative traffic and repeated identical queries report their
// own (cache-dependent) costs.
func TestResultIODeltas(t *testing.T) {
	ds := conformanceSource(t)
	e, err := streach.Open("reachgraph", ds, streach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := streach.Query{Src: 1, Dst: 9, Interval: streach.NewInterval(20, 220)}
	first, err := e.Reachable(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if first.IO.RandomReads+first.IO.SequentialReads == 0 {
		t.Error("first disk query reported a zero I/O delta")
	}
	second, err := e.Reachable(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	// The second run hits the buffer pool; its delta must not exceed the
	// cold run's.
	if second.IO.Normalized > first.IO.Normalized {
		t.Errorf("warm query charged %.1f IOs > cold %.1f", second.IO.Normalized, first.IO.Normalized)
	}
	if second.Latency < 0 || first.Latency <= 0 {
		t.Errorf("implausible latencies: first %v, second %v", first.Latency, second.Latency)
	}
}
