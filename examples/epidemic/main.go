// Epidemic: the public-health scenario from the paper's introduction.
//
// A set of individuals is known to carry a contagious virus. Batch forward
// reachability queries over the contact network identify everyone who could
// have been directly or indirectly contaminated within a time window — the
// candidates for timely medication.
//
// The example contrasts the guided ReachGrid expansion with the naive SPJ
// pipeline for the same batch, reporting the simulated I/O saved.
package main

import (
	"fmt"
	"log"
	"sort"

	"streach"
)

func main() {
	// A township of 800 pedestrians tracked for 3000 instants (~5 hours).
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 800,
		NumTicks:   3000,
		Seed:       11,
	})
	grid, err := streach.BuildReachGrid(ds, streach.ReachGridOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Three index cases, reported at tick 400; exposure horizon of 100
	// instants (~10 minutes — beyond that the infection wavefront covers
	// the whole township and screening everyone is the only answer).
	carriers := []streach.ObjectID{42, 310, 777}
	window := streach.NewInterval(400, 500)

	exposed := map[streach.ObjectID]bool{}
	for _, carrier := range carriers {
		set, err := grid.ReachableSet(carrier, window)
		if err != nil {
			log.Fatal(err)
		}
		for _, o := range set {
			exposed[o] = true
		}
		fmt.Printf("carrier %3d exposes %3d individuals during %v\n",
			carrier, len(set)-1, window)
	}

	all := make([]int, 0, len(exposed))
	for o := range exposed {
		all = append(all, int(o))
	}
	sort.Ints(all)
	fmt.Printf("\n%d of %d individuals need screening\n", len(all), ds.NumObjects())
	fmt.Printf("first 20 case IDs: %v\n", all[:min(20, len(all))])

	// Cost comparison for one representative contact-tracing query batch.
	victim := streach.ObjectID(all[len(all)/2])
	q := streach.Query{Src: carriers[0], Dst: victim, Interval: window}

	grid.ResetStats()
	if _, err := grid.Reachable(q); err != nil {
		log.Fatal(err)
	}
	guided := grid.IOStats().Normalized

	grid.ResetStats()
	if _, err := grid.ReachableNaive(q); err != nil {
		log.Fatal(err)
	}
	naive := grid.IOStats().Normalized

	fmt.Printf("\ntracing %v:\n", q)
	fmt.Printf("  guided ReachGrid expansion: %8.1f normalized IOs\n", guided)
	fmt.Printf("  naive SPJ pipeline:         %8.1f normalized IOs\n", naive)
	fmt.Printf("  saved: %.0f%%\n", 100*(1-guided/naive))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
