// Epidemic: the public-health scenario from the paper's introduction.
//
// A set of individuals is known to carry a contagious virus. Batch forward
// reachability queries over the contact network identify everyone who could
// have been directly or indirectly contaminated within a time window — the
// candidates for timely medication.
//
// The example contrasts the guided ReachGrid expansion with the naive SPJ
// pipeline on the same query, reading both backends from the registry and
// comparing their per-query I/O deltas.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"streach"
)

func main() {
	// A township of 800 pedestrians tracked for 3000 instants (~5 hours).
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 800,
		NumTicks:   3000,
		Seed:       11,
	})
	ctx := context.Background()
	grid, err := streach.Open("reachgrid", ds, streach.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Three index cases, reported at tick 400; exposure horizon of 100
	// instants (~10 minutes — beyond that the infection wavefront covers
	// the whole township and screening everyone is the only answer).
	carriers := []streach.ObjectID{42, 310, 777}
	window := streach.NewInterval(400, 500)

	exposed := map[streach.ObjectID]bool{}
	for _, carrier := range carriers {
		set, err := grid.ReachableSet(ctx, carrier, window)
		if err != nil {
			log.Fatal(err)
		}
		for _, o := range set.Objects {
			exposed[o] = true
		}
		fmt.Printf("carrier %3d exposes %3d individuals during %v (%.1f IOs, %v)\n",
			carrier, len(set.Objects)-1, window, set.IO.Normalized, set.Latency.Round(set.Latency/100+1))
	}

	all := make([]int, 0, len(exposed))
	for o := range exposed {
		all = append(all, int(o))
	}
	sort.Ints(all)
	fmt.Printf("\n%d of %d individuals need screening\n", len(all), ds.NumObjects())
	fmt.Printf("first 20 case IDs: %v\n", all[:min(20, len(all))])

	// Cost comparison for one representative contact-tracing query: the
	// guided expansion vs the naive join-everything pipeline, each cost
	// read off the query's own Result — no counter resets needed. The two
	// backends build the same grid layout (same Options), so the measured
	// difference is purely the query algorithm.
	victim := streach.ObjectID(all[len(all)/2])
	q := streach.Query{Src: carriers[0], Dst: victim, Interval: window}

	guided, err := grid.Reachable(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	spj, err := streach.Open("spj", ds, streach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	naive, err := spj.Reachable(ctx, q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntracing %v:\n", q)
	fmt.Printf("  guided ReachGrid expansion: %8.1f normalized IOs (%d objects expanded)\n",
		guided.IO.Normalized, guided.Expanded)
	fmt.Printf("  naive SPJ pipeline:         %8.1f normalized IOs (%d objects expanded)\n",
		naive.IO.Normalized, naive.Expanded)
	fmt.Printf("  saved: %.0f%%\n", 100*(1-guided.IO.Normalized/naive.IO.Normalized))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
