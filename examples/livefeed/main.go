// Livefeed: incremental contact-network maintenance (§6.2.1.2).
//
// A location feed arrives one instant at a time — there is no complete
// trajectory archive to batch-index. The stream ingests positions as they
// come; every few minutes an analyst snapshots the network built so far,
// indexes it, and answers the queries that have queued up, while the stream
// keeps running.
package main

import (
	"fmt"
	"log"

	"streach"
)

func main() {
	// The "live" source: a generated dataset we replay instant by instant.
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 300,
		NumTicks:   1200,
		Seed:       41,
	})
	stream, err := streach.NewContactStream(ds.NumObjects(), ds.Env(), ds.ContactDist())
	if err != nil {
		log.Fatal(err)
	}

	positions := make([]streach.Point, ds.NumObjects())
	feed := func(upto int) {
		for tk := stream.NumTicks(); tk < upto; tk++ {
			for o := range positions {
				positions[o] = ds.Position(streach.ObjectID(o), streach.Tick(tk))
			}
			if err := stream.AddInstant(positions); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Analysts check in at three points of the day.
	oracle := ds.Contacts().Oracle() // ground truth over the full archive
	for _, checkpoint := range []int{400, 800, 1200} {
		feed(checkpoint)
		snap := stream.Snapshot()
		graph, err := streach.BuildReachGraphFromContacts(snap, streach.ReachGraphOptions{})
		if err != nil {
			log.Fatal(err)
		}
		// Queries about the recent past — the last ~30 minutes of feed.
		lo := streach.Tick(checkpoint - 300)
		queries := streach.RandomQueries(streach.WorkloadOptions{
			NumObjects: ds.NumObjects(),
			NumTicks:   checkpoint,
			Count:      200,
			MinLen:     100,
			MaxLen:     250,
			Seed:       int64(checkpoint),
		})
		var answered, positive int
		for _, q := range queries {
			if q.Interval.Lo < lo {
				continue
			}
			got, err := graph.Reachable(q)
			if err != nil {
				log.Fatal(err)
			}
			if got != oracle.Reachable(q) {
				log.Fatalf("snapshot graph disagrees with ground truth on %v", q)
			}
			answered++
			if got {
				positive++
			}
		}
		fmt.Printf("tick %4d: snapshot has %6d contacts; answered %3d queries (%3d positive), all verified\n",
			checkpoint, snap.NumContacts(), answered, positive)
	}
}
