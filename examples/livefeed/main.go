// Livefeed: serving reachability queries over a live location feed.
//
// A location feed arrives one instant at a time — there is no complete
// trajectory archive to batch-index. A LiveEngine ingests positions as
// they come: appends land in a mutable in-memory tail segment, and every
// time the current time slab closes it is sealed into an immutable
// ReachGraph segment (LSM-style). Analysts query at any moment — while
// ingestion continues — and the cross-segment planner answers over sealed
// segments plus the tail, so no index is ever rebuilt over history.
//
// Contrast with the previous generation of this example, which had to
// snapshot the stream and rebuild a full index at every checkpoint; the
// snapshot path (ContactStream → Open) still works and is shown at the
// end for validation against ground truth.
package main

import (
	"context"
	"fmt"
	"log"

	"streach"
)

func main() {
	// The "live" source: a generated dataset we replay instant by instant.
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 300,
		NumTicks:   1200,
		Seed:       41,
	})
	live, err := streach.NewLiveEngine("reachgraph", ds.NumObjects(), ds.Env(), ds.ContactDist(),
		streach.Options{SegmentTicks: 200})
	if err != nil {
		log.Fatal(err)
	}

	positions := make([]streach.Point, ds.NumObjects())
	feed := func(upto int) {
		for tk := live.NumTicks(); tk < upto; tk++ {
			for o := range positions {
				positions[o] = ds.Position(streach.ObjectID(o), streach.Tick(tk))
			}
			if err := live.AddInstant(positions); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Analysts check in at three points of the day; the engine answers
	// immediately — no snapshot, no rebuild.
	ctx := context.Background()
	oracle := ds.Contacts().Oracle() // ground truth over the full archive
	for _, checkpoint := range []int{400, 800, 1200} {
		feed(checkpoint)
		// Queries about the recent past — the last ~30 minutes of feed.
		lo := streach.Tick(checkpoint - 300)
		all := streach.RandomQueries(streach.WorkloadOptions{
			NumObjects: ds.NumObjects(),
			NumTicks:   checkpoint,
			Count:      200,
			MinLen:     100,
			MaxLen:     250,
			Seed:       int64(checkpoint),
		})
		recent := all[:0]
		for _, q := range all {
			if q.Interval.Lo >= lo {
				recent = append(recent, q)
			}
		}
		results, err := streach.EvaluateBatch(ctx, live, recent, streach.BatchOptions{})
		if err != nil {
			log.Fatal(err)
		}
		var positive int
		for _, r := range results {
			if r.Reachable != oracle.Reachable(r.Query) {
				log.Fatalf("live engine disagrees with ground truth on %v", r.Query)
			}
			if r.Reachable {
				positive++
			}
		}
		fmt.Printf("tick %4d: %d sealed segments + tail; answered %3d queries (%3d positive), all verified\n",
			checkpoint, live.NumSealedSegments(), len(results), positive)
	}

	// The per-segment view: spans, accumulated I/O, on-disk size.
	if seg, ok := streach.Engine(live).(streach.Segmented); ok {
		for i, s := range seg.SegmentStats() {
			fmt.Printf("  segment %d: span %v, %.1f IOs served, %d KiB\n",
				i, s.Span, s.IO.Normalized, s.IndexBytes/1024)
		}
	}

	// The snapshot path still exists for batch tooling: a ContactStream
	// snapshot is a registry Source.
	snap := live.Snapshot()
	batch, err := streach.Open("reachgraph", snap, streach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	q := streach.Query{Src: 3, Dst: 11, Interval: streach.NewInterval(900, 1150)}
	rLive, err := live.Reachable(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	rBatch, err := batch.Reachable(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spot check %v: live=%v batch=%v oracle=%v\n",
		q, rLive.Reachable, rBatch.Reachable, oracle.Reachable(q))
}
