// Livefeed: incremental contact-network maintenance (§6.2.1.2).
//
// A location feed arrives one instant at a time — there is no complete
// trajectory archive to batch-index. The stream ingests positions as they
// come; every few minutes an analyst snapshots the network built so far,
// opens a ReachGraph backend directly over the snapshot (a ContactNetwork
// is a registry Source — no trajectory archive needed), and answers the
// queries that have queued up, while the stream keeps running.
package main

import (
	"context"
	"fmt"
	"log"

	"streach"
)

func main() {
	// The "live" source: a generated dataset we replay instant by instant.
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 300,
		NumTicks:   1200,
		Seed:       41,
	})
	stream, err := streach.NewContactStream(ds.NumObjects(), ds.Env(), ds.ContactDist())
	if err != nil {
		log.Fatal(err)
	}

	positions := make([]streach.Point, ds.NumObjects())
	feed := func(upto int) {
		for tk := stream.NumTicks(); tk < upto; tk++ {
			for o := range positions {
				positions[o] = ds.Position(streach.ObjectID(o), streach.Tick(tk))
			}
			if err := stream.AddInstant(positions); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Analysts check in at three points of the day.
	ctx := context.Background()
	oracle := ds.Contacts().Oracle() // ground truth over the full archive
	for _, checkpoint := range []int{400, 800, 1200} {
		feed(checkpoint)
		snap := stream.Snapshot()
		graph, err := streach.Open("reachgraph", snap, streach.Options{})
		if err != nil {
			log.Fatal(err)
		}
		// Queries about the recent past — the last ~30 minutes of feed.
		lo := streach.Tick(checkpoint - 300)
		all := streach.RandomQueries(streach.WorkloadOptions{
			NumObjects: ds.NumObjects(),
			NumTicks:   checkpoint,
			Count:      200,
			MinLen:     100,
			MaxLen:     250,
			Seed:       int64(checkpoint),
		})
		recent := all[:0]
		for _, q := range all {
			if q.Interval.Lo >= lo {
				recent = append(recent, q)
			}
		}
		results, err := streach.EvaluateBatch(ctx, graph, recent, streach.BatchOptions{})
		if err != nil {
			log.Fatal(err)
		}
		var positive int
		for _, r := range results {
			if r.Reachable != oracle.Reachable(r.Query) {
				log.Fatalf("snapshot graph disagrees with ground truth on %v", r.Query)
			}
			if r.Reachable {
				positive++
			}
		}
		fmt.Printf("tick %4d: snapshot has %6d contacts; answered %3d queries (%3d positive), all verified\n",
			checkpoint, snap.NumContacts(), len(results), positive)
	}
}
