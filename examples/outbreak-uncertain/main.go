// Outbreak-uncertain: probabilistic propagation (§7, U-ReachGraph).
//
// Most viral diseases transmit per contact with some probability rather
// than certainty. This example assigns each contact a transmission
// probability that decays with contact distance, then asks which
// individuals are reachable from patient zero above a probability
// threshold — and compares the answer with the deterministic (p = 1)
// semantics.
package main

import (
	"context"
	"fmt"
	"log"

	"streach"
)

func main() {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 400,
		NumTicks:   1500,
		Seed:       31,
	})
	cn := ds.Contacts()
	ctx := context.Background()

	// Deterministic baseline: everything transmits. The ground-truth
	// engine comes from the registry like any other backend.
	certain, err := streach.Open("oracle", cn, streach.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Uncertain network: longer contacts transmit more reliably —
	// p = 1 − 0.6^(validity length).
	un, err := cn.Uncertain(func(c streach.Contact) float64 {
		p := 1.0
		decay := 1.0
		for i := 0; i < c.Validity.Len() && i < 8; i++ {
			decay *= 0.6
		}
		p -= decay
		if p < 0.05 {
			p = 0.05
		}
		return p
	})
	if err != nil {
		log.Fatal(err)
	}

	patientZero := streach.ObjectID(123)
	window := streach.NewInterval(200, 420)

	det, err := certain.ReachableSet(ctx, patientZero, window)
	if err != nil {
		log.Fatal(err)
	}
	detSet := det.Objects
	probs, err := un.BestProbAll(patientZero, window)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("patient zero %d, window %v\n", patientZero, window)
	fmt.Printf("deterministic semantics: %d reachable\n", len(detSet))
	for _, pT := range []float64{0.9, 0.5, 0.1, 0.01} {
		count := 0
		for o, p := range probs {
			if streach.ObjectID(o) != patientZero && p >= pT {
				count++
			}
		}
		fmt.Printf("P ≥ %-5.2f               : %d reachable\n", pT, count)
	}

	// Every probabilistically reachable object must be deterministically
	// reachable (uncertainty only removes paths).
	detMember := map[streach.ObjectID]bool{}
	for _, o := range detSet {
		detMember[o] = true
	}
	for o, p := range probs {
		if p > 0 && !detMember[streach.ObjectID(o)] {
			log.Fatalf("object %d has P=%v but is not deterministically reachable", o, p)
		}
	}
	fmt.Println("\nconsistency with deterministic semantics verified")

	// Threshold query for a specific pair, as U-ReachGraph §7 defines it.
	target := detSet[len(detSet)/2]
	p, err := un.BestProb(patientZero, target, window)
	if err != nil {
		log.Fatal(err)
	}
	ok, err := un.Reachable(patientZero, target, window, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best transmission probability %d → %d: %.3f (≥ 0.25: %v)\n",
		patientZero, target, p, ok)
}
