// Quickstart: generate a small contact dataset, build both indexes, and
// answer a handful of reachability queries, cross-checking the two indexes
// against the brute-force oracle.
package main

import (
	"fmt"
	"log"

	"streach"
)

func main() {
	// 500 pedestrians with Bluetooth-range (25 m) contacts, sampled every
	// 6 seconds for 2000 instants (~3.3 hours).
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 500,
		NumTicks:   2000,
		Seed:       1,
	})
	fmt.Printf("dataset %s: %d objects × %d ticks, dT = %.0f m\n",
		ds.Name(), ds.NumObjects(), ds.NumTicks(), ds.ContactDist())

	// Extract the contact network once; both the ReachGraph index and the
	// reference oracle are derived from it.
	cn := ds.Contacts()
	fmt.Printf("contact network: %d contacts\n", cn.NumContacts())

	grid, err := streach.BuildReachGrid(ds, streach.ReachGridOptions{})
	if err != nil {
		log.Fatal(err)
	}
	graph, err := streach.BuildReachGraphFromContacts(cn, streach.ReachGraphOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ReachGrid index: %d KiB on disk\n", grid.IndexBytes()/1024)
	fmt.Printf("ReachGraph index: %d KiB on disk\n", graph.IndexBytes()/1024)

	oracle := cn.Oracle()
	queries := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(),
		NumTicks:   ds.NumTicks(),
		Count:      10,
		Seed:       7,
	})

	fmt.Println("\nquery                         grid   graph  oracle")
	for _, q := range queries {
		g1, err := grid.Reachable(q)
		if err != nil {
			log.Fatal(err)
		}
		g2, err := graph.Reachable(q)
		if err != nil {
			log.Fatal(err)
		}
		truth := oracle.Reachable(q)
		fmt.Printf("%-28s  %-5v  %-5v  %-5v\n", q, g1, g2, truth)
		if g1 != truth || g2 != truth {
			log.Fatalf("index disagrees with ground truth on %v", q)
		}
	}

	gs, hs := grid.IOStats(), graph.IOStats()
	fmt.Printf("\nReachGrid : %.1f normalized IOs (%d random, %d sequential)\n",
		gs.Normalized, gs.RandomReads, gs.SequentialReads)
	fmt.Printf("ReachGraph: %.1f normalized IOs (%d random, %d sequential)\n",
		hs.Normalized, hs.RandomReads, hs.SequentialReads)
}
