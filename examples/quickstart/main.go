// Quickstart: generate a small contact dataset, open both paper indexes
// from the backend registry, and answer a handful of reachability queries,
// cross-checking the indexes against the brute-force oracle. Backends are
// selected by name — swap the strings to try any of streach.Backends().
package main

import (
	"context"
	"fmt"
	"log"

	"streach"
)

func main() {
	// 500 pedestrians with Bluetooth-range (25 m) contacts, sampled every
	// 6 seconds for 2000 instants (~3.3 hours).
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 500,
		NumTicks:   2000,
		Seed:       1,
	})
	fmt.Printf("dataset %s: %d objects × %d ticks, dT = %.0f m\n",
		ds.Name(), ds.NumObjects(), ds.NumTicks(), ds.ContactDist())
	fmt.Printf("contact network: %d contacts\n", ds.Contacts().NumContacts())
	fmt.Printf("registered backends: %v\n", streach.Backends())

	ctx := context.Background()
	engines := make([]streach.Engine, 0, 3)
	for _, name := range []string{"reachgrid", "reachgraph", "oracle"} {
		e, err := streach.Open(name, ds, streach.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if e.IndexBytes() > 0 {
			fmt.Printf("%-10s index: %d KiB on disk\n", e.Name(), e.IndexBytes()/1024)
		}
		engines = append(engines, e)
	}

	queries := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(),
		NumTicks:   ds.NumTicks(),
		Count:      10,
		Seed:       7,
	})

	fmt.Println("\nquery                         grid   graph  oracle")
	totals := make([]float64, len(engines))
	for _, q := range queries {
		answers := make([]streach.Result, len(engines))
		for i, e := range engines {
			r, err := e.Reachable(ctx, q)
			if err != nil {
				log.Fatal(err)
			}
			answers[i] = r
			totals[i] += r.IO.Normalized
		}
		fmt.Printf("%-28s  %-5v  %-5v  %-5v\n", q,
			answers[0].Reachable, answers[1].Reachable, answers[2].Reachable)
		for i, r := range answers {
			if r.Reachable != answers[2].Reachable {
				log.Fatalf("%s disagrees with ground truth on %v", engines[i].Name(), q)
			}
		}
	}

	fmt.Println()
	for i, e := range engines[:2] {
		fmt.Printf("%-10s: %.1f normalized IOs over the batch\n", e.Name(), totals[i])
	}
}
