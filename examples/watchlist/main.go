// Watchlist: the law-enforcement scenario from the paper's introduction.
//
// A set of monitored individuals is on a watch list. For each sighting
// window, investigators need everyone who could have met a watched person —
// directly or through intermediaries. That is *backward* reachability:
// find all u such that the watched person is reachable FROM u. The example
// evaluates the candidate batch with EvaluateBatch over the ReachGraph
// backend — the serving-style path, with per-query I/O deltas and context
// cancellation — and verifies a sample against the oracle backend.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"streach"
)

func main() {
	// 300 vehicles on a synthetic road network, DSRC-range contacts.
	ds := streach.GenerateVehicles(streach.VNOptions{
		NumObjects: 300,
		NumTicks:   1500,
		Seed:       23,
	})
	graph, err := streach.Open("reachgraph", ds, streach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := streach.Open("oracle", ds, streach.Options{})
	if err != nil {
		log.Fatal(err)
	}

	watch := []streach.ObjectID{17, 204}
	window := streach.NewInterval(300, 360)

	// The whole investigation gets a deadline; a cancelled context stops
	// the batch between queries.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	for _, suspect := range watch {
		// Backward reachability: test every candidate as a source toward
		// the suspect (the paper's "reachable from/to any individual in
		// O" batch).
		batch := make([]streach.Query, 0, ds.NumObjects()-1)
		for o := 0; o < ds.NumObjects(); o++ {
			if cand := streach.ObjectID(o); cand != suspect {
				batch = append(batch, streach.Query{Src: cand, Dst: suspect, Interval: window})
			}
		}
		results, err := streach.EvaluateBatch(ctx, graph, batch, streach.BatchOptions{Workers: 4})
		if err != nil {
			log.Fatal(err)
		}
		var met []streach.Result
		var io float64
		for _, r := range results {
			io += r.IO.Normalized
			if r.Reachable {
				met = append(met, r)
			}
		}
		fmt.Printf("suspect %3d: %3d vehicles could have fed information during %v (batch: %.1f IOs)\n",
			suspect, len(met), window, io)

		// Verify a sample of the batch against ground truth.
		verified := 0
		for i, r := range met {
			if i%25 != 0 {
				continue
			}
			truth, err := oracle.Reachable(ctx, r.Query)
			if err != nil {
				log.Fatal(err)
			}
			if !truth.Reachable {
				log.Fatalf("false positive: %v", r.Query)
			}
			verified++
		}
		fmt.Printf("             %d spot-checked against the oracle\n", verified)
	}
}
