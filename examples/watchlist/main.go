// Watchlist: the law-enforcement scenario from the paper's introduction.
//
// A set of monitored individuals is on a watch list. For each sighting
// window, investigators need everyone who could have met a watched person —
// directly or through intermediaries. That is *backward* reachability:
// find all u such that the watched person is reachable FROM u. The example
// evaluates the batch with ReachGraph's bidirectional traversal and
// verifies the result set against the oracle.
package main

import (
	"fmt"
	"log"

	"streach"
)

func main() {
	// 300 vehicles on a synthetic road network, DSRC-range contacts.
	ds := streach.GenerateVehicles(streach.VNOptions{
		NumObjects: 300,
		NumTicks:   1500,
		Seed:       23,
	})
	cn := ds.Contacts()
	graph, err := streach.BuildReachGraphFromContacts(cn, streach.ReachGraphOptions{})
	if err != nil {
		log.Fatal(err)
	}
	oracle := cn.Oracle()

	watch := []streach.ObjectID{17, 204}
	window := streach.NewInterval(300, 360)

	for _, suspect := range watch {
		// Backward reachability: test every candidate as a source toward
		// the suspect (the paper's "reachable from/to any individual in
		// O" batch).
		var met []streach.ObjectID
		for o := 0; o < ds.NumObjects(); o++ {
			cand := streach.ObjectID(o)
			if cand == suspect {
				continue
			}
			ok, err := graph.Reachable(streach.Query{Src: cand, Dst: suspect, Interval: window})
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				met = append(met, cand)
			}
		}
		fmt.Printf("suspect %3d: %3d vehicles could have fed information during %v\n",
			suspect, len(met), window)

		// Verify a sample of the batch against ground truth.
		verified := 0
		for i, cand := range met {
			if i%25 != 0 {
				continue
			}
			if !oracle.Reachable(streach.Query{Src: cand, Dst: suspect, Interval: window}) {
				log.Fatalf("false positive: %d ⤳ %d", cand, suspect)
			}
			verified++
		}
		fmt.Printf("             %d spot-checked against the oracle\n", verified)
	}

	st := graph.IOStats()
	fmt.Printf("\nbatch cost: %.1f normalized IOs (%d random + %d sequential, %d buffer hits)\n",
		st.Normalized, st.RandomReads, st.SequentialReads, st.BufferHits)
}
