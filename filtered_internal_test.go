package streach

import (
	"context"
	"math"
	"testing"

	"streach/internal/contact"
	"streach/internal/pagefile"
)

// filtered_internal_test.go pins the two places predicate filtering is
// easiest to get wrong — slab boundaries (a contact clipped by a segment
// edge must be judged by its full validity) and shard cuts (a cross-cut
// contact duplicated on both shards must be filtered identically on each)
// — plus the cross-validation of the facade's p^minHops probabilistic
// answers against the exact −log p Dijkstra of the uncertain store.

func cnOf(numObjects, numTicks int, cs []contact.Contact) *ContactNetwork {
	return &ContactNetwork{net: contact.FromContacts(numObjects, numTicks, cs)}
}

// TestSlabBoundaryMinDuration: a 21-tick contact spans the slab boundary
// at tick 37, so each slab sees only a short residual ([30,36] and
// [37,50]). A min-duration bound of 15 must still pass it — Window stamps
// the original duration into the sidecar — even when the query interval
// stays inside one slab.
func TestSlabBoundaryMinDuration(t *testing.T) {
	cn := cnOf(3, 80, []contact.Contact{
		{A: 0, B: 1, Validity: Interval{Lo: 30, Hi: 50}},
		{A: 1, B: 2, Validity: Interval{Lo: 55, Hi: 56}},
	})
	ctx := context.Background()
	for _, name := range []string{"segmented:oracle", "segmented:reachgraph-mem", "oracle", "uncertain:oracle"} {
		e, err := Open(name, cn, Options{SegmentTicks: 37})
		if err != nil {
			t.Fatal(err)
		}
		// Query entirely inside the first slab: the local residual [30,36]
		// is 7 ticks, far below the bound, but the contact's true duration
		// is 21.
		r, err := e.Reachable(ctx, Query{Src: 0, Dst: 1, Interval: NewInterval(33, 36),
			Semantics: Semantics{MinDuration: 15}})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Reachable {
			t.Errorf("%s: slab-clipped 21-tick contact failed MinDuration 15", name)
		}
		// Across the boundary.
		r, err = e.Reachable(ctx, Query{Src: 0, Dst: 1, Interval: NewInterval(33, 45),
			Semantics: Semantics{MinDuration: 15}})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Reachable {
			t.Errorf("%s: cross-boundary query failed MinDuration 15", name)
		}
		// The genuinely short second leg must still be cut.
		r, err = e.Reachable(ctx, Query{Src: 0, Dst: 2, Interval: NewInterval(30, 60),
			Semantics: Semantics{MinDuration: 15}})
		if err != nil {
			t.Fatal(err)
		}
		if r.Reachable {
			t.Errorf("%s: 2-tick contact passed MinDuration 15", name)
		}
		// A bound the short leg meets restores the path.
		r, err = e.Reachable(ctx, Query{Src: 0, Dst: 2, Interval: NewInterval(30, 60),
			Semantics: Semantics{MinDuration: 2}})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Reachable {
			t.Errorf("%s: both contacts meet MinDuration 2 yet unreachable", name)
		}
	}
	// The segmented oracle filters inside its slabs, not via fallback.
	e, err := Open("segmented:oracle", cn, Options{SegmentTicks: 37})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Reachable(ctx, Query{Src: 0, Dst: 1, Interval: NewInterval(33, 45),
		Semantics: Semantics{MinDuration: 15}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Native {
		t.Error("segmented:oracle answered a min-duration query via fallback")
	}
}

// TestShardCutFiltered: object pairs split across a 2-way hash cut
// duplicate their cross-cut contacts onto both shards; a per-contact
// predicate must keep or drop both replicas in lockstep, so every filtered
// answer matches the unsharded oracle.
func TestShardCutFiltered(t *testing.T) {
	cn := cnOf(4, 70, []contact.Contact{
		{A: 0, B: 1, Validity: Interval{Lo: 5, Hi: 24}},  // 20 ticks, crosses the 0|1 cut
		{A: 1, B: 2, Validity: Interval{Lo: 30, Hi: 33}}, // 4 ticks
		{A: 2, B: 3, Validity: Interval{Lo: 40, Hi: 59}}, // 20 ticks
	})
	ctx := context.Background()
	sharded, err := Open("shard:2:oracle", cn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Open("oracle", cn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	iv := NewInterval(0, 69)
	for _, sem := range []Semantics{{}, {MinDuration: 10}, {MinDuration: 3}, {MinDuration: 30}} {
		for src := ObjectID(0); src < 4; src++ {
			for dst := ObjectID(0); dst < 4; dst++ {
				q := Query{Src: src, Dst: dst, Interval: iv, Semantics: sem}
				sr, err := sharded.Reachable(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				pr, err := plain.Reachable(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				if sr.Reachable != pr.Reachable {
					t.Fatalf("sem %+v %d→%d: sharded %v, oracle %v", sem, src, dst, sr.Reachable, pr.Reachable)
				}
			}
		}
	}
	// The duration bound of 10 admits only the two long contacts: 0→2 dies
	// at the short middle leg on whichever shard holds it.
	r, err := sharded.Reachable(ctx, Query{Src: 0, Dst: 2, Interval: iv, Semantics: Semantics{MinDuration: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Reachable {
		t.Error("short cross-leg passed the duration bound on a shard")
	}
	if !r.Native {
		t.Error("shard:2:oracle answered a hop-agnostic filtered query via fallback")
	}
}

// TestUncertainDijkstraCrossValidation: the facade's probabilistic answers
// (best-path probability p^minHops from the profile evaluation) must agree
// query-by-query with the paper's −log p Dijkstra run over the same
// decoded contact store — the two formulations of §7's maximum path
// probability.
func TestUncertainDijkstraCrossValidation(t *testing.T) {
	ds := GenerateRandomWaypoint(RWPOptions{NumObjects: 30, NumTicks: 120, Seed: 7})
	e, err := Open("uncertain:oracle", ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	core := e.(*engine).core.(*uncertainCore)
	work := RandomQueries(WorkloadOptions{
		NumObjects: ds.NumObjects(), NumTicks: ds.NumTicks(),
		Count: 12, MinLen: 20, MaxLen: 100, Seed: 3,
	})
	sems := []Semantics{
		{Prob: 0.7, ProbThreshold: 0.25},
		{Prob: 0.5},
		{Prob: 0.9, ProbThreshold: 0.5, MinDuration: 2},
		{Prob: 0.6, MaxHops: 3},
	}
	ctx := context.Background()
	acct := new(pagefile.Stats)
	for qi, q := range work {
		for si, sem := range sems {
			pq := q
			pq.Semantics = sem
			res, err := e.Reachable(ctx, pq)
			if err != nil {
				t.Fatal(err)
			}
			pr, err := core.probPath(pq, acct)
			if err != nil {
				t.Fatal(err)
			}
			if res.Reachable != pr.OK {
				t.Fatalf("q%d sem%d %v: facade reachable=%v, Dijkstra OK=%v", qi, si, pq, res.Reachable, pr.OK)
			}
			if !pr.OK {
				continue
			}
			if math.Abs(res.Prob-pr.Prob) > 1e-9 {
				t.Fatalf("q%d sem%d: facade Prob %v, Dijkstra %v", qi, si, res.Prob, pr.Prob)
			}
			// With p < 1 minimal cost is minimal transfers, so the hop
			// counts coincide too.
			if sem.Prob < 1 && res.Hops != pr.Hops {
				t.Fatalf("q%d sem%d: facade hops %d, Dijkstra %d", qi, si, res.Hops, pr.Hops)
			}
		}
	}
}

// TestUncertainStoreAccounting: the uncertain wrapper's contact store is
// real simulated disk — semantic queries charge blob reads, the store
// contributes to the index footprint, and both page formats answer
// identically.
func TestUncertainStoreAccounting(t *testing.T) {
	ds := GenerateRandomWaypoint(RWPOptions{NumObjects: 25, NumTicks: 150, Seed: 13})
	ctx := context.Background()
	iv := NewInterval(10, 130)
	var answers [2][]bool
	for fi, format := range []PageFormat{PageFormatFixed, PageFormatVarint} {
		e, err := Open("uncertain:oracle", ds, Options{PageFormat: format})
		if err != nil {
			t.Fatal(err)
		}
		if e.IndexBytes() <= 0 {
			t.Fatalf("format %v: uncertain store reports no index bytes", format)
		}
		var io float64
		for src := ObjectID(0); src < 5; src++ {
			for dst := ObjectID(5); dst < 15; dst++ {
				r, err := e.Reachable(ctx, Query{Src: src, Dst: dst, Interval: iv,
					Semantics: Semantics{MinDuration: 2, Prob: 0.8, ProbThreshold: 0.4}})
				if err != nil {
					t.Fatal(err)
				}
				answers[fi] = append(answers[fi], r.Reachable)
				io += r.IO.Normalized
			}
		}
		if io == 0 {
			t.Fatalf("format %v: filtered probabilistic queries charged no store I/O", format)
		}
	}
	for i := range answers[0] {
		if answers[0][i] != answers[1][i] {
			t.Fatalf("query %d: fixed/varint formats disagree", i)
		}
	}
}
