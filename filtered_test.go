package streach_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"streach"
)

// filtered_test.go validates the §7 extensions across the whole registry:
// predicate-filtered propagation (min-duration, max-weight, compiled
// filters) and probabilistic reachability (best-path probability under a
// threshold, Monte-Carlo estimation) must agree with a brute-force
// reference on every backend, natively or through the explicit fallback.

// filterSem mirrors queries.Filter.Match for the reference: duration and
// weight bounds conjoin, an unweighted contact always passes the weight
// bound.
func filterSem(c streach.Contact, sem streach.Semantics) bool {
	if sem.MinDuration > 0 && int(c.Duration()) < sem.MinDuration {
		return false
	}
	if sem.MaxWeight > 0 && c.Weight != 0 && float64(c.Weight) > sem.MaxWeight {
		return false
	}
	return true
}

// relaxProjected computes the reference profile over an explicit contact
// list (a predicate projection of some network) by per-tick relaxation.
func relaxProjected(numObjects, numTicks int, kept []streach.Contact, src streach.ObjectID, iv streach.Interval, budget int) refProfile {
	p := refProfile{hops: make([]int, numObjects), arrival: make([]streach.Tick, numObjects)}
	for i := range p.hops {
		p.hops[i] = -1
		p.arrival[i] = -1
	}
	lo, hi := iv.Lo, iv.Hi
	if lo < 0 {
		lo = 0
	}
	if hi > streach.Tick(numTicks-1) {
		hi = streach.Tick(numTicks - 1)
	}
	if hi < lo {
		return p
	}
	if budget <= 0 {
		budget = int(^uint(0) >> 2)
	}
	p.hops[src], p.arrival[src] = 0, lo
	for t := lo; t <= hi; t++ {
		var pairs [][2]streach.ObjectID
		for _, c := range kept {
			if c.Validity.Contains(t) {
				pairs = append(pairs, [2]streach.ObjectID{c.A, c.B})
			}
		}
		for changed := true; changed; {
			changed = false
			relax := func(a, b streach.ObjectID) {
				if p.hops[a] < 0 || p.hops[a] >= budget {
					return
				}
				if p.hops[b] >= 0 && p.hops[b] <= p.hops[a]+1 {
					return
				}
				if p.hops[b] < 0 {
					p.arrival[b] = t
				}
				p.hops[b] = p.hops[a] + 1
				changed = true
			}
			for _, pr := range pairs {
				relax(pr[0], pr[1])
				relax(pr[1], pr[0])
			}
		}
	}
	return p
}

// referenceFiltered computes the reference profile over the predicate
// projection of the network: drop failing contacts, relax the rest.
func referenceFiltered(cn *streach.ContactNetwork, src streach.ObjectID, iv streach.Interval, budget int, sem streach.Semantics) refProfile {
	var kept []streach.Contact
	for _, c := range cn.All() {
		if filterSem(c, sem) {
			kept = append(kept, c)
		}
	}
	return relaxProjected(cn.NumObjects(), cn.NumTicks(), kept, src, iv, budget)
}

// TestFilteredConformance sweeps every backend with min-duration and
// max-weight predicates: answers must match the reference projection
// whether the backend filters natively or through the oracle fallback.
func TestFilteredConformance(t *testing.T) {
	ds := semanticsDataset(t)
	cn := ds.Contacts()
	names, opts := semanticsBackends()
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(), NumTicks: ds.NumTicks(),
		Count: 8, MinLen: 30, MaxLen: 120, Seed: 17,
	})
	// A weight bound at the median extracted weight cuts roughly half the
	// contacts without emptying the network.
	var wsum float64
	for _, c := range cn.All() {
		wsum += float64(c.Weight)
	}
	midWeight := wsum / float64(cn.NumContacts())
	sems := []streach.Semantics{
		{MinDuration: 2},
		{MinDuration: 5},
		{MaxWeight: midWeight},
		{MinDuration: 3, MaxWeight: midWeight},
		{MinDuration: 2, MaxHops: 2},
	}
	ctx := context.Background()
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			e, err := streach.Open(name, ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range work {
				for si, sem := range sems {
					fq := q
					fq.Semantics = sem
					r, err := e.Reachable(ctx, fq)
					if err != nil {
						t.Fatalf("q%d sem%d: %v", qi, si, err)
					}
					ref := referenceFiltered(cn, q.Src, q.Interval, sem.MaxHops, sem)
					want := ref.hops[q.Dst] >= 0 || q.Src == q.Dst
					if r.Reachable != want {
						t.Fatalf("q%d %v sem %+v: got %v, reference %v (native=%v)",
							qi, q, sem, r.Reachable, want, r.Native)
					}
					if r.Reachable && q.Src != q.Dst && r.Arrival != ref.arrival[q.Dst] {
						t.Fatalf("q%d %v sem %+v: arrival %d, reference %d",
							qi, q, sem, r.Arrival, ref.arrival[q.Dst])
					}
				}
			}
		})
	}
}

// TestProbabilisticConformance sweeps every backend with uniform-p
// probabilistic queries: Reachable must reflect the τ-folded transfer
// budget and Prob must equal the best-path probability p^minHops.
func TestProbabilisticConformance(t *testing.T) {
	ds := semanticsDataset(t)
	cn := ds.Contacts()
	names, opts := semanticsBackends()
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(), NumTicks: ds.NumTicks(),
		Count: 6, MinLen: 30, MaxLen: 120, Seed: 23,
	})
	sems := []streach.Semantics{
		{Prob: 0.7},
		{Prob: 0.7, ProbThreshold: 0.3},
		{Prob: 0.5, ProbThreshold: 0.2},
		{Prob: 0.5, ProbThreshold: 0.2, MinDuration: 2},
		{Prob: 1, ProbThreshold: 0.9},
		{Prob: 0.6, MaxHops: 3},
	}
	ctx := context.Background()
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			e, err := streach.Open(name, ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range work {
				for si, sem := range sems {
					pq := q
					pq.Semantics = sem
					r, err := e.Reachable(ctx, pq)
					if err != nil {
						t.Fatalf("q%d sem%d: %v", qi, si, err)
					}
					budget := int(sem.EffectiveBudget())
					ref := referenceFiltered(cn, q.Src, q.Interval, budget, sem)
					wantHops := ref.hops[q.Dst]
					if q.Src == q.Dst {
						wantHops = 0
					}
					if r.Reachable != (wantHops >= 0) {
						t.Fatalf("q%d %v sem %+v: got %v, reference hops %d (native=%v)",
							qi, q, sem, r.Reachable, wantHops, r.Native)
					}
					if !r.Reachable {
						if r.Prob != 0 {
							t.Fatalf("q%d sem%d: unreachable with Prob %v", qi, si, r.Prob)
						}
						continue
					}
					// The profile reports the minimal transfer count under
					// the folded budget; the best path probability follows.
					if r.Hops < 0 {
						t.Fatalf("q%d sem%d: probabilistic result without hops", qi, si)
					}
					want := math.Pow(sem.Prob, float64(r.Hops))
					if diff := math.Abs(r.Prob - want); diff > 1e-12 {
						t.Fatalf("q%d sem%d: Prob %v, want %v (hops %d)", qi, si, r.Prob, want, r.Hops)
					}
					if sem.ProbThreshold > 0 && r.Prob < sem.ProbThreshold-1e-12 {
						t.Fatalf("q%d sem%d: Prob %v below threshold %v yet reachable",
							qi, si, r.Prob, sem.ProbThreshold)
					}
				}
			}
		})
	}
}

// TestRegisteredFilterConformance runs a compiled per-contact predicate
// (registered via RegisterContactFilter) through a native backend and a
// fallback backend and checks both against the reference projection.
func TestRegisteredFilterConformance(t *testing.T) {
	streach.RegisterContactFilter("test:low-ids", func(c streach.Contact) bool {
		return c.A < 20 && c.B < 20
	})
	ds := semanticsDataset(t)
	cn := ds.Contacts()
	ctx := context.Background()
	iv := streach.NewInterval(10, 150)
	for _, name := range []string{"oracle", "uncertain:reachgraph", "reachgraph-mem", "segmented:oracle", "shard:2:oracle"} {
		e, err := streach.Open(name, ds, streach.Options{SegmentTicks: 37})
		if err != nil {
			t.Fatal(err)
		}
		var kept []streach.Contact
		for _, c := range cn.All() {
			if c.A < 20 && c.B < 20 {
				kept = append(kept, c)
			}
		}
		for src := streach.ObjectID(0); src < 4; src++ {
			ref := relaxProjected(cn.NumObjects(), cn.NumTicks(), kept, src, iv, 0)
			for dst := streach.ObjectID(0); dst < streach.ObjectID(ds.NumObjects()); dst += 5 {
				r, err := e.Reachable(ctx, streach.Query{Src: src, Dst: dst, Interval: iv,
					Semantics: streach.Semantics{FilterID: "test:low-ids"}})
				if err != nil {
					t.Fatal(err)
				}
				want := ref.hops[dst] >= 0 || src == dst
				if r.Reachable != want {
					t.Fatalf("%s src=%d dst=%d: got %v, reference %v", name, src, dst, r.Reachable, want)
				}
			}
		}
	}
	// An unregistered ID is a validation error, not an empty answer.
	e, err := streach.Open("oracle", ds, streach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Reachable(ctx, streach.Query{Src: 0, Dst: 1, Interval: iv,
		Semantics: streach.Semantics{FilterID: "test:never-registered"}}); err == nil ||
		!strings.Contains(err.Error(), "unregistered") {
		t.Fatalf("unregistered filter ID: err=%v, want unregistered-filter error", err)
	}
}

// TestSemanticsValidation pins the parameter validation of the extended
// Semantics surface: inconsistent probabilistic parameters and unknown
// filters are errors on every entry point.
func TestSemanticsValidation(t *testing.T) {
	ds := semanticsDataset(t)
	e, err := streach.Open("oracle", ds, streach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	iv := streach.NewInterval(0, 50)
	bad := []streach.Semantics{
		{Prob: -0.1},
		{Prob: 1.5},
		{Prob: math.NaN()},
		{ProbThreshold: 0.5},                  // threshold without probability
		{Prob: 0.5, ProbThreshold: 1.5},       // threshold outside (0, 1]
		{Prob: 0.5, ProbThreshold: -0.5},      // ditto, negative
		{MCTrials: 100},                       // trials without probability
		{Prob: 0.5, MCTrials: -1},             // negative trials
		{MinDuration: -1},                     // negative duration bound
		{MaxWeight: -2},                       // negative weight bound
		{MaxWeight: math.NaN()},               // NaN weight bound
		{FilterID: "test:does-not-exist-abc"}, // unknown compiled filter
	}
	for i, sem := range bad {
		if _, err := e.Reachable(ctx, streach.Query{Src: 0, Dst: 1, Interval: iv, Semantics: sem}); err == nil {
			t.Errorf("case %d %+v: no validation error", i, sem)
		}
	}
}

// TestMonteCarloFacade exercises the MCTrials divert through the engine
// facade: estimates are seeded-deterministic, bounded, threshold-compared
// and explicitly non-native.
func TestMonteCarloFacade(t *testing.T) {
	ds := semanticsDataset(t)
	cn := ds.Contacts()
	ctx := context.Background()
	iv := streach.NewInterval(10, 150)
	for _, name := range []string{"oracle", "reachgraph", "uncertain:oracle"} {
		e, err := streach.Open(name, ds, streach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		q := streach.Query{Src: 0, Dst: 9, Interval: iv,
			Semantics: streach.Semantics{Prob: 0.6, ProbThreshold: 0.05, MCTrials: 2000, MCSeed: 99}}
		r, err := e.Reachable(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if r.Native {
			t.Fatalf("%s: Monte-Carlo estimate flagged native", name)
		}
		if r.Prob < 0 || r.Prob > 1 {
			t.Fatalf("%s: estimate %v outside [0, 1]", name, r.Prob)
		}
		if want := r.Prob >= 0.05; r.Reachable != want {
			t.Fatalf("%s: Reachable=%v with estimate %v against threshold 0.05", name, r.Reachable, want)
		}
		again, err := e.Reachable(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if again.Prob != r.Prob {
			t.Fatalf("%s: seeded estimate not reproducible: %v then %v", name, r.Prob, again.Prob)
		}
		// The estimator must agree with certainty: p=1 makes the estimate
		// the plain boolean answer.
		cq := q
		cq.Semantics = streach.Semantics{Prob: 1, MCTrials: 50, MCSeed: 1}
		cr, err := e.Reachable(ctx, cq)
		if err != nil {
			t.Fatal(err)
		}
		plain := cn.Oracle().Reachable(streach.Query{Src: q.Src, Dst: q.Dst, Interval: iv})
		if cr.Reachable != plain || (plain && cr.Prob != 1) {
			t.Fatalf("%s: certain estimate (%v, %v), oracle %v", name, cr.Reachable, cr.Prob, plain)
		}
	}
}

// TestLiveEngineFiltered replays a dataset into LiveEngines and runs
// filtered and probabilistic queries against the ingested feed: the live
// overlay, tail and sealed slabs must filter identically to the reference
// projection of a frozen extraction.
func TestLiveEngineFiltered(t *testing.T) {
	ds := semanticsDataset(t)
	cn := ds.Contacts()
	ctx := context.Background()
	for _, base := range []string{"oracle", "reachgraph-mem"} {
		base := base
		t.Run(base, func(t *testing.T) {
			le, err := streach.NewLiveEngine(base, ds.NumObjects(), ds.Env(), ds.ContactDist(), streach.Options{SegmentTicks: 37})
			if err != nil {
				t.Fatal(err)
			}
			positions := make([]streach.Point, ds.NumObjects())
			for tk := 0; tk < ds.NumTicks(); tk++ {
				for o := range positions {
					positions[o] = ds.Position(streach.ObjectID(o), streach.Tick(tk))
				}
				if err := le.AddInstant(positions); err != nil {
					t.Fatal(err)
				}
			}
			iv := streach.NewInterval(15, 140)
			sems := []streach.Semantics{
				{MinDuration: 3},
				{Prob: 0.7, ProbThreshold: 0.3},
				{MinDuration: 2, Prob: 0.5, ProbThreshold: 0.2},
			}
			for _, sem := range sems {
				budget := int(sem.EffectiveBudget())
				for src := streach.ObjectID(0); src < 3; src++ {
					ref := referenceFiltered(cn, src, iv, budget, sem)
					for dst := streach.ObjectID(0); dst < streach.ObjectID(ds.NumObjects()); dst += 7 {
						r, err := le.Reachable(ctx, streach.Query{Src: src, Dst: dst, Interval: iv, Semantics: sem})
						if err != nil {
							t.Fatal(err)
						}
						want := ref.hops[dst] >= 0 || src == dst
						if r.Reachable != want {
							t.Fatalf("sem %+v src=%d dst=%d: got %v, reference %v", sem, src, dst, r.Reachable, want)
						}
						if r.Reachable && sem.Prob > 0 {
							if wantProb := math.Pow(sem.Prob, float64(r.Hops)); math.Abs(r.Prob-wantProb) > 1e-12 {
								t.Fatalf("sem %+v src=%d dst=%d: Prob %v, want %v", sem, src, dst, r.Prob, wantProb)
							}
						}
					}
				}
			}
		})
	}
}
