package streach_test

import (
	"context"
	"testing"

	"streach"
)

// TestCrossBackendConformanceBothFormats reruns the conformance workload
// with the page format pinned explicitly to each version: disk-resident
// backends (segmented variants included) must agree with the oracle on
// both the fixed-width v1 layout and the varint-delta v2 layout, and the
// v2 indexes must be smaller.
func TestCrossBackendConformanceBothFormats(t *testing.T) {
	ds := conformanceSource(t)
	oracle := ds.Contacts().Oracle()
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(),
		NumTicks:   ds.NumTicks(),
		Count:      40,
		MinLen:     10,
		MaxLen:     ds.NumTicks() / 2,
		Seed:       31,
	})
	ctx := context.Background()

	// The shard rows sweep the scatter-gather coordinator across both
	// partitioners at K ∈ {1, 2, 4}: every per-shard child index must
	// round-trip both page layouts and the coordinator must still agree
	// with the oracle across the cut.
	diskBackends := []string{"reachgrid", "spj", "reachgraph", "reachgraph-bbfs",
		"segmented:reachgrid", "segmented:reachgraph", "bidir:reachgraph",
		"shard:1:reachgraph", "shard:2:reachgraph", "shard:4:reachgraph",
		"shard:1:spatial:reachgraph", "shard:2:spatial:reachgraph", "shard:4:spatial:reachgraph",
		"uncertain:reachgraph"}
	sizes := map[string]map[streach.PageFormat]int64{}
	for _, name := range diskBackends {
		sizes[name] = map[streach.PageFormat]int64{}
		for _, format := range []streach.PageFormat{streach.PageFormatFixed, streach.PageFormatVarint} {
			e, err := streach.Open(name, ds, streach.Options{PageFormat: format})
			if err != nil {
				t.Fatalf("open %q (%v): %v", name, format, err)
			}
			for _, q := range work {
				r, err := e.Reachable(ctx, q)
				if err != nil {
					t.Fatalf("%q (%v) %v: %v", name, format, q, err)
				}
				if want := oracle.Reachable(q); r.Reachable != want {
					t.Fatalf("%q (%v) disagrees with oracle on %v: got %v, want %v",
						name, format, q, r.Reachable, want)
				}
			}
			sr, err := e.ReachableSet(ctx, work[0].Src, work[0].Interval)
			if err != nil {
				t.Fatalf("%q (%v) set: %v", name, format, err)
			}
			want := oracle.ReachableSet(work[0].Src, work[0].Interval)
			if len(sr.Objects) != len(want) {
				t.Fatalf("%q (%v) set size %d, oracle %d", name, format, len(sr.Objects), len(want))
			}
			for i := range want {
				if sr.Objects[i] != want[i] {
					t.Fatalf("%q (%v) set differs at %d", name, format, i)
				}
			}
			sizes[name][format] = e.IndexBytes()
		}
	}
	for name, byFormat := range sizes {
		fixed, varint := byFormat[streach.PageFormatFixed], byFormat[streach.PageFormatVarint]
		if varint >= fixed {
			t.Errorf("%q: varint layout (%d B) not smaller than fixed (%d B)", name, varint, fixed)
		} else {
			t.Logf("%q: %d B fixed → %d B varint (%.0f%%)", name, fixed, varint, 100*float64(varint)/float64(fixed))
		}
	}
}
