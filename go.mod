module streach

go 1.24
