// GRAIL baseline (§6): randomized interval labelling over the reduced
// contact-network DAG, exported through the facade in both its
// memory-resident form and the disk-resident adaptation of §6.4. The same
// engines are registered in the backend registry as "grail-mem" and
// "grail".

package streach

import (
	"streach/internal/dn"
	"streach/internal/grail"
)

// GrailOptions configures BuildGrail. Zero values select five label passes
// and the memory-resident engine.
type GrailOptions struct {
	// Passes is the label count d (independent randomized DFS passes).
	Passes int
	// Seed seeds the randomized labelling.
	Seed int64
	// Disk lays the labelled vertices on the simulated disk in generation
	// order (the §6.4 adaptation); queries then charge IOStats.
	Disk bool
	// PoolPages sizes the buffer pool of the simulated disk (Disk only).
	PoolPages int
}

// Grail is a GRAIL query engine over one contact network.
type Grail struct {
	mem  *grail.Mem
	disk *grail.Disk
}

// BuildGrail labels cn's reduced graph and returns a GRAIL engine.
func BuildGrail(cn *ContactNetwork, opts GrailOptions) (*Grail, error) {
	g := dn.Build(cn.net)
	d := opts.Passes
	if d <= 0 {
		d = 5
	}
	if opts.Disk {
		dk, err := grail.NewDisk(g, d, opts.Seed, opts.PoolPages, nil)
		if err != nil {
			return nil, err
		}
		return &Grail{disk: dk}, nil
	}
	m, err := grail.NewMem(g, d, opts.Seed)
	if err != nil {
		return nil, err
	}
	return &Grail{mem: m}, nil
}

// Reachable answers q by label-pruned DFS.
func (g *Grail) Reachable(q Query) (bool, error) {
	if g.disk != nil {
		return g.disk.Reach(q)
	}
	return g.mem.Reach(q)
}

// IOStats returns the accumulated disk traffic (zero for the
// memory-resident engine).
func (g *Grail) IOStats() IOStats {
	if g.disk == nil {
		return IOStats{}
	}
	return statsOf(g.disk.Counters())
}

// ResetStats zeroes the I/O counters and drops the buffer pool (no-op for
// the memory-resident engine).
func (g *Grail) ResetStats() {
	if g.disk != nil {
		g.disk.ResetCounters()
		g.disk.Store().DropCache()
	}
}

// IndexBytes returns the on-disk size of the labelled vertex file (zero for
// the memory-resident engine).
func (g *Grail) IndexBytes() int64 {
	if g.disk == nil {
		return 0
	}
	return g.disk.Store().SizeBytes()
}
