package streach_test

import (
	"context"
	"testing"

	"streach"
)

// The hot-path microbenchmarks run the standard workload through the
// rewritten traversal cores on the RWP48 dataset (the bench-smoke tiny
// preset: 48 objects, 240 ticks). They report allocations: the memory
// backends must sit at 0 allocs/op in steady state (pinned by
// TestHotpathSteadyStateAllocs below), the disk backends allocate only
// for record decoding.

func hotpathDataset() *streach.Dataset {
	return streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 48, NumTicks: 240, Seed: 48,
	})
}

func hotpathWorkload(ds *streach.Dataset) []streach.Query {
	return streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(),
		NumTicks:   ds.NumTicks(),
		Count:      32,
		MinLen:     20,
		MaxLen:     ds.NumTicks() / 2,
		Seed:       7,
	})
}

func benchmarkHotpath(b *testing.B, backend string, opts streach.Options) {
	ds := hotpathDataset()
	e, err := streach.Open(backend, ds, opts)
	if err != nil {
		b.Fatal(err)
	}
	work := hotpathWorkload(ds)
	ctx := context.Background()
	for _, q := range work { // warm: pool pages, scratch high-water marks
		if _, err := e.Reachable(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Reachable(ctx, work[i%len(work)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotpathReachGraphBMBFS(b *testing.B) {
	benchmarkHotpath(b, "reachgraph", streach.Options{})
}

func BenchmarkHotpathReachGraphMemBMBFS(b *testing.B) {
	benchmarkHotpath(b, "reachgraph-mem", streach.Options{})
}

func BenchmarkHotpathReachGridSweep(b *testing.B) {
	benchmarkHotpath(b, "reachgrid", streach.Options{})
}

func BenchmarkHotpathGrailMem(b *testing.B) {
	benchmarkHotpath(b, "grail-mem", streach.Options{})
}

func BenchmarkHotpathSegmentedPlanner(b *testing.B) {
	benchmarkHotpath(b, "segmented:reachgraph", streach.Options{SegmentTicks: 60})
}

func BenchmarkHotpathSegmentedPlannerMem(b *testing.B) {
	benchmarkHotpath(b, "segmented:reachgraph-mem", streach.Options{SegmentTicks: 60})
}

// The bidirectional planner benchmarks pit "bidir:*" against the forward
// planner on the same dataset. Long-interval queries are where the
// backward frontier pays: the forward frontier saturates while the
// destination's deliverer set stays small.

func hotpathLongWorkload(ds *streach.Dataset) []streach.Query {
	return streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(),
		NumTicks:   ds.NumTicks(),
		Count:      32,
		MinLen:     3 * ds.NumTicks() / 4,
		MaxLen:     ds.NumTicks(),
		Seed:       7,
	})
}

func benchmarkLongInterval(b *testing.B, backend string, opts streach.Options) {
	ds := hotpathDataset()
	e, err := streach.Open(backend, ds, opts)
	if err != nil {
		b.Fatal(err)
	}
	work := hotpathLongWorkload(ds)
	ctx := context.Background()
	for _, q := range work {
		if _, err := e.Reachable(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Reachable(ctx, work[i%len(work)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBidirReachGraph(b *testing.B) {
	benchmarkLongInterval(b, "bidir:reachgraph", streach.Options{SegmentTicks: 60})
}

func BenchmarkBidirReachGraphMem(b *testing.B) {
	benchmarkLongInterval(b, "bidir:reachgraph-mem", streach.Options{SegmentTicks: 60})
}

func BenchmarkBidirForwardBaseline(b *testing.B) {
	benchmarkLongInterval(b, "segmented:reachgraph", streach.Options{SegmentTicks: 60})
}

// The parallel-sweep benchmarks need frontiers above the engagement
// threshold, so they run a larger population than the hotpath dataset.
func parallelSweepDataset() *streach.Dataset {
	return streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 256, NumTicks: 240, Seed: 56,
	})
}

func benchmarkParallelSweep(b *testing.B, parallelism int) {
	ds := parallelSweepDataset()
	e, err := streach.Open("segmented:reachgraph-mem", ds, streach.Options{
		SegmentTicks:     40,
		QueryParallelism: parallelism,
	})
	if err != nil {
		b.Fatal(err)
	}
	work := hotpathLongWorkload(ds)
	ctx := context.Background()
	for _, q := range work {
		if _, err := e.Reachable(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Reachable(ctx, work[i%len(work)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelSweepSerial(b *testing.B) { benchmarkParallelSweep(b, 1) }

func BenchmarkParallelSweepWorkers4(b *testing.B) { benchmarkParallelSweep(b, 4) }

// The sharding benchmarks measure the scatter-gather planner against the
// single-engine baseline on large reachable-set queries — the workload the
// partitioned design targets (point queries keep their serial fast path at
// K=1 and pay hand-off rounds at K>1).

func benchmarkShardSet(b *testing.B, backend string, parallelism int) {
	ds := parallelSweepDataset()
	e, err := streach.Open(backend, ds, streach.Options{QueryParallelism: parallelism})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	iv := streach.NewInterval(0, streach.Tick(3*ds.NumTicks()/4))
	for src := streach.ObjectID(0); src < 4; src++ { // warm
		if _, err := e.ReachableSet(ctx, src, iv); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ReachableSet(ctx, streach.ObjectID(i%ds.NumObjects()), iv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardSetBaseline1(b *testing.B) { benchmarkShardSet(b, "shard:1:reachgraph", 0) }

func BenchmarkShardSetHash4(b *testing.B) { benchmarkShardSet(b, "shard:4:reachgraph", 0) }

func BenchmarkShardSetSpatial4(b *testing.B) { benchmarkShardSet(b, "shard:4:spatial:reachgraph", 0) }

// The clustered benchmarks run the workload the partitioned design is
// built for: objects orbit home regions, so a spatial cut keeps almost
// every contact — and every query's expansion — shard-local. The win on a
// single core is resource locality, not parallelism: each shard owns a
// private buffer pool and decoded-record cache sized like the monolith's,
// and its region-local working set fits where the monolith's union of all
// regions cycles, so the sharded engine answers from warm records while
// the single engine re-reads and re-decodes pages on every query.
func clusteredBenchDataset() *streach.Dataset {
	return streach.GenerateClustered(streach.ClusteredOptions{
		NumObjects: 384, NumTicks: 288, NumClusters: 12, RoamProb: 0.002, Seed: 57,
	})
}

func benchmarkShardClustered(b *testing.B, backend string) {
	ds := clusteredBenchDataset()
	e, err := streach.Open(backend, ds, streach.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	iv := streach.NewInterval(0, streach.Tick(ds.NumTicks()/3))
	for src := streach.ObjectID(0); src < 8; src++ { // warm
		if _, err := e.ReachableSet(ctx, src, iv); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ReachableSet(ctx, streach.ObjectID(i*7%ds.NumObjects()), iv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardClusteredBaseline1(b *testing.B) {
	benchmarkShardClustered(b, "shard:1:reachgraph")
}

func BenchmarkShardClusteredSpatial4(b *testing.B) {
	benchmarkShardClustered(b, "shard:4:spatial:reachgraph")
}

func BenchmarkShardPointHash4(b *testing.B) {
	ds := parallelSweepDataset()
	e, err := streach.Open("shard:4:reachgraph", ds, streach.Options{})
	if err != nil {
		b.Fatal(err)
	}
	work := hotpathLongWorkload(ds)
	ctx := context.Background()
	for _, q := range work {
		if _, err := e.Reachable(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Reachable(ctx, work[i%len(work)]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHotpathSteadyStateAllocs asserts the tentpole claim directly: once
// the pooled scratch is warm, point queries on the memory backends perform
// zero heap allocations per evaluation — visited sets, frontier queues and
// object sets all come from the per-engine pools. The bidir planner is
// held to the same bar on its serial path (RWP48 frontiers stay below the
// parallel-sweep threshold).
func TestHotpathSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation counts only hold un-instrumented")
	}
	ds := hotpathDataset()
	work := hotpathWorkload(ds)
	ctx := context.Background()
	// "shard:1:reachgraph-mem" pins the K=1 serial fast path: the
	// coordinator must delegate to its single child without touching the
	// scatter-gather scratch.
	for _, backend := range []string{"reachgraph-mem", "grail-mem", "bidir:reachgraph-mem", "shard:1:reachgraph-mem"} {
		e, err := streach.Open(backend, ds, streach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		run := func() {
			for _, q := range work {
				if _, err := e.Reachable(ctx, q); err != nil {
					t.Fatal(err)
				}
			}
		}
		run() // warm the scratch pools to their high-water marks
		if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
			t.Errorf("%s: %.1f allocs per %d-query batch in steady state, want 0",
				backend, allocs, len(work))
		}
	}
}
