// Ablations. Fig12b reproduces the second half of the paper's §6.2.1.4
// optimization — the number of long-edge resolutions (1..7, optimum 6 =
// DN1 ∪ DN2 ∪ … ∪ DN32). The remaining ablations quantify design choices
// DESIGN.md calls out that the paper fixes silently: the buffer-pool size
// and the bidirectional/multi-resolution split of BM-BFS. All evaluators
// come from the registry; a configuration is a backend name plus Options.
package bench

import (
	"fmt"

	"streach"
)

// resolutionSets returns the HN configurations "DN1 only", "+DN2", …
// matching the paper's 1..7 resolution counts (we stop at DN64; beyond the
// typical query interval no level is ever taken).
func resolutionSets() [][]int {
	full := []int{2, 4, 8, 16, 32, 64}
	sets := [][]int{{}} // DN1 only (explicit empty ≠ nil, which means defaults)
	for i := range full {
		sets = append(sets, full[:i+1])
	}
	return sets
}

// Fig12b sweeps the number of ReachGraph resolutions (§6.2.1.4).
func (l *Lab) Fig12b() *Table {
	t := &Table{
		ID:      "fig12b",
		Title:   "ReachGraph I/O vs number of resolutions (§6.2.1.4)",
		Columns: []string{"Dataset", "HN levels", "IO/query"},
	}
	for _, d := range l.comparePair() {
		work := l.Workload(d, 0)
		for _, res := range resolutionSets() {
			io := l.graphQueryCost(d, "reachgraph", streach.Options{Resolutions: res}, work)
			label := "DN1 only"
			if len(res) > 0 {
				label = fmt.Sprintf("DN1..DN%d", res[len(res)-1])
			}
			t.AddRow(d.Name, label, fmt.Sprintf("%.1f", io))
		}
	}
	t.AddNote("paper: optimum at 6 resolutions (DN1..DN32); the curve exposes the trade the")
	t.AddNote("paper describes in §5.1.2.2 — every level enlarges the vertex records (and thus")
	t.AddNote("every partition read), while jumps only pay off when traversals would otherwise")
	t.AddNote("visit many scattered partitions; at laptop-scale fan-outs (~12 vs the paper's")
	t.AddNote("221-322) the storage side dominates and the optimum sits at fewer levels")
	return t
}

// AblationPool sweeps the buffer-pool size for both indexes — the memory
// budget the paper fixes at 4 GB for 190-760 GB datasets (~1-2%).
func (l *Lab) AblationPool() *Table {
	t := &Table{
		ID:      "ablation-pool",
		Title:   "Buffer-pool size ablation (design choice; no paper artifact)",
		Columns: []string{"Dataset", "Pool pages", "ReachGraph IO/q"},
	}
	for _, d := range l.comparePair() {
		work := l.Workload(d, 0)
		for _, pool := range []int{1, 16, 64, 256, 1024} {
			io := l.graphQueryCost(d, "reachgraph", streach.Options{PoolPages: pool}, work)
			t.AddRow(d.Name, fmt.Sprint(pool), fmt.Sprintf("%.1f", io))
		}
	}
	t.AddNote("diminishing returns past the per-query working set; the suite default (64 pages)")
	t.AddNote("keeps the pool ≈1%% of the store, matching the paper's memory-to-data ratio")
	return t
}

// AblationBidirectional isolates the two BM-BFS ingredients: bidirectional
// meet (B-BFS vs E-BFS) and multi-resolution jumps (BM-BFS vs B-BFS).
func (l *Lab) AblationBidirectional() *Table {
	t := &Table{
		ID:      "ablation-bidir",
		Title:   "BM-BFS ingredient ablation (design choice; complements Fig. 13)",
		Columns: []string{"Dataset", "E-BFS IO/q", "+bidirectional (B-BFS)", "+multi-res (BM-BFS)"},
	}
	for _, d := range l.comparePair() {
		work := l.Workload(d, 0)
		row := []string{d.Name}
		for _, backend := range []string{"reachgraph-ebfs", "reachgraph-bbfs", "reachgraph"} {
			io := l.graphQueryCost(d, backend, streach.Options{}, work)
			row = append(row, fmt.Sprintf("%.1f", io))
		}
		t.AddRow(row...)
	}
	t.AddNote("the bidirectional member-meet contributes most of the saving; long edges add")
	t.AddNote("on top as graphs grow (their fan-out at our scale is ~12 vs the paper's 221-322)")
	return t
}
