// Package bench regenerates every table and figure of the paper's
// evaluation (§6) on density-preserving scale-downs of its datasets. Each
// experiment returns a Table whose rows mirror the series the paper plots;
// cmd/reachbench renders them as text and the root bench_test.go drives
// them under testing.B.
//
// Scale note: the paper ran 10k–40k objects over four months of trace on a
// disk array. The Lab defaults reproduce the papers' object densities
// (objects per contact disc), which is what determines contact-network
// structure, at laptop scale. Shapes — who wins, by what factor, where
// crossovers fall — are the reproduction target, not absolute values; the
// table footnotes quote the paper-reported numbers for comparison.
//
// Cross-backend experiments select evaluators from the public backend
// registry by name (streach.Open) and measure them through the typed
// per-query Results; only experiments probing internal structure (graph
// reduction, construction time, parameter encodings) touch the internal
// packages directly.
package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"streach"
	"streach/internal/contact"
	"streach/internal/dn"
	"streach/internal/mobility"
	"streach/internal/queries"
	"streach/internal/trajectory"
)

// Options scales the experiment suite.
type Options struct {
	// RWPSizes are the random-waypoint object counts standing in for
	// RWP10k/20k/40k. Default {400, 800, 1600}.
	RWPSizes []int
	// VNSizes are the vehicle counts standing in for VN1k/2k/4k.
	// Default {100, 200, 400}.
	VNSizes []int
	// Ticks is the time-domain length standing in for the four-month
	// traces. Default 2000.
	Ticks int
	// TaxiObjects and TaxiMinutes size the VNR stand-in. Defaults 100
	// and 120 (interpolated ×12 to 1440 five-second ticks).
	TaxiObjects int
	TaxiMinutes int
	// Queries is the number of random queries per measurement point
	// (the paper uses 400). Default 50.
	Queries int
	// Seed fixes all generators.
	Seed int64
	// Backends restricts the cross-backend experiments ("backends",
	// "concurrency") to the named registry backends. Default: every
	// registered backend.
	Backends []string
	// Workers lists the EvaluateBatch pool sizes the "concurrency"
	// experiment sweeps. Default {1, 2, 4, 8}.
	Workers []int
	// TopK and Decay parametrize the "semantics" experiment's top-k
	// transfer-decay queries. Defaults 10 and 0.85.
	TopK  int
	Decay float64
}

func (o *Options) applyDefaults() {
	if len(o.RWPSizes) == 0 {
		o.RWPSizes = []int{400, 800, 1600}
	}
	if len(o.VNSizes) == 0 {
		o.VNSizes = []int{100, 200, 400}
	}
	if o.Ticks <= 0 {
		o.Ticks = 2000
	}
	if o.TaxiObjects <= 0 {
		o.TaxiObjects = 100
	}
	if o.TaxiMinutes <= 0 {
		o.TaxiMinutes = 120
	}
	if o.Queries <= 0 {
		o.Queries = 50
	}
	if len(o.Backends) == 0 {
		o.Backends = streach.Backends()
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4, 8}
	}
	if o.TopK <= 0 {
		o.TopK = 10
	}
	if !(o.Decay > 0 && o.Decay <= 1) {
		o.Decay = 0.85
	}
}

// Table is one regenerated paper artifact.
type Table struct {
	ID      string // e.g. "fig13"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Lab caches datasets and derived structures across experiments.
type Lab struct {
	opts Options

	datasets     map[string]*trajectory.Dataset
	contacts     map[string]*contact.Network
	graphs       map[string]*dn.Graph
	pub          map[string]*streach.Dataset
	clusteredDS  *streach.Dataset // memoized sharding preset
	concRecs     []Record         // memoized concurrency sweep
	streamRecs   []Record         // memoized streaming sweep
	compactRecs  []Record         // memoized compaction sweep
	codecRecs    []Record         // memoized codec ablation
	semRecs      []Record         // memoized semantics sweep
	filteredRecs []Record         // memoized filtered/probabilistic sweep
	bidirRecs    []Record         // memoized bidirectional-search sweep
	shardRecs    []Record         // memoized sharding sweep
}

// NewLab returns a Lab with the given options (zero value = defaults).
func NewLab(opts Options) *Lab {
	opts.applyDefaults()
	return &Lab{
		opts:     opts,
		datasets: map[string]*trajectory.Dataset{},
		contacts: map[string]*contact.Network{},
		graphs:   map[string]*dn.Graph{},
		pub:      map[string]*streach.Dataset{},
	}
}

// Options returns the effective (defaulted) options.
func (l *Lab) Options() Options { return l.opts }

// RWP returns the cached n-object random-waypoint dataset.
func (l *Lab) RWP(n int) *trajectory.Dataset {
	return l.dataset(fmt.Sprintf("rwp%d", n), func() *trajectory.Dataset {
		return mobility.RandomWaypoint(mobility.RWPConfig{
			NumObjects: n, NumTicks: l.opts.Ticks, Seed: l.opts.Seed + int64(n),
		})
	})
}

// VN returns the cached n-object road-network vehicle dataset.
func (l *Lab) VN(n int) *trajectory.Dataset {
	return l.dataset(fmt.Sprintf("vn%d", n), func() *trajectory.Dataset {
		return mobility.NetworkVehicles(mobility.VNConfig{
			NumObjects: n, NumTicks: l.opts.Ticks, Seed: l.opts.Seed + 1000 + int64(n),
		})
	})
}

// Taxi returns the cached VNR stand-in dataset.
func (l *Lab) Taxi() *trajectory.Dataset {
	return l.dataset("vnr", func() *trajectory.Dataset {
		return mobility.TaxiDay(mobility.TaxiConfig{
			NumObjects: l.opts.TaxiObjects, NumMinutes: l.opts.TaxiMinutes,
			Seed: l.opts.Seed + 2000,
		})
	})
}

func (l *Lab) dataset(key string, build func() *trajectory.Dataset) *trajectory.Dataset {
	if d, ok := l.datasets[key]; ok {
		return d
	}
	d := build()
	l.datasets[key] = d
	return d
}

// Contacts returns the cached contact network of d.
func (l *Lab) Contacts(d *trajectory.Dataset) *contact.Network {
	if n, ok := l.contacts[d.Name]; ok {
		return n
	}
	n := contact.Extract(d)
	l.contacts[d.Name] = n
	return n
}

// Pub returns the cached facade wrapper of d, the Source handed to
// streach.Open for trajectory-indexing backends.
func (l *Lab) Pub(d *trajectory.Dataset) *streach.Dataset {
	if p, ok := l.pub[d.Name]; ok {
		return p
	}
	p := streach.WrapDataset(d)
	l.pub[d.Name] = p
	return p
}

// PubContacts wraps the cached contact network of d as an Open Source for
// graph-based backends, sharing the Lab's one extraction per dataset.
func (l *Lab) PubContacts(d *trajectory.Dataset) *streach.ContactNetwork {
	return streach.WrapContactNetwork(l.Contacts(d))
}

// OpenBackend opens a registry backend over the right cached source for d.
// Each open builds its own index (graph backends re-reduce the cached
// contact network, ~100-200ms at default scale); construction cost is
// deliberately outside every measurement, and a fresh engine per
// configuration is what keeps measurement points cold.
func (l *Lab) OpenBackend(name string, d *trajectory.Dataset, opts streach.Options) streach.Engine {
	var src streach.Source = l.PubContacts(d)
	if info, ok := streach.LookupBackend(name); ok && info.NeedsTrajectories {
		src = l.Pub(d)
	}
	e, err := streach.Open(name, src, opts)
	if err != nil {
		panic(fmt.Sprintf("bench: open %s over %s: %v", name, d.Name, err))
	}
	return e
}

// engineCost drives work through e and returns the mean normalized I/O,
// wall time and expansion count per query, read off the typed per-query
// Results.
func engineCost(e streach.Engine, work []queries.Query) (ioPerQ float64, timePerQ time.Duration, expandedPerQ float64) {
	ctx := context.Background()
	var io, expanded float64
	var dur time.Duration
	for _, q := range work {
		r, err := e.Reachable(ctx, q)
		if err != nil {
			panic(fmt.Sprintf("bench: %s on %v: %v", e.Name(), q, err))
		}
		io += r.IO.Normalized
		expanded += float64(r.Expanded)
		dur += r.Latency
	}
	n := float64(len(work))
	return io / n, dur / time.Duration(len(work)), expanded / n
}

// BackendSweep runs the standard workload through every selected registry
// backend on the middle RWP and VN datasets — the registry's one-stop
// comparison table, selected by backend name (Options.Backends).
func (l *Lab) BackendSweep() *Table {
	t := &Table{
		ID:      "backends",
		Title:   "All registered backends, one workload (registry sweep)",
		Columns: []string{"Backend", "Dataset", "IO/q", "Time/q", "Expanded/q", "Index"},
	}
	for _, d := range l.comparePair() {
		work := l.Workload(d, 0)
		for _, name := range l.opts.Backends {
			e := l.OpenBackend(name, d, streach.Options{})
			io, dur, exp := engineCost(e, work)
			t.AddRow(e.Name(), d.Name, fmt.Sprintf("%.1f", io), fmtDur(dur),
				fmt.Sprintf("%.1f", exp), fmtBytes(e.IndexBytes()))
		}
	}
	t.AddNote("every engine satisfies streach.Engine and was opened by name via streach.Open;")
	t.AddNote("IO/q and Time/q are means of the per-query Result deltas over the standard workload")
	return t
}

// Graph returns the cached reduced graph of d, augmented bidirectionally at
// the paper's optimal resolutions {2 … 32}.
func (l *Lab) Graph(d *trajectory.Dataset) *dn.Graph {
	if g, ok := l.graphs[d.Name]; ok {
		return g
	}
	g := dn.Build(l.Contacts(d))
	if err := g.AugmentBidirectional([]int{2, 4, 8, 16, 32}); err != nil {
		panic(fmt.Sprintf("bench: augment %s: %v", d.Name, err))
	}
	l.graphs[d.Name] = g
	return g
}

// Workload returns the paper's random workload over d: interval lengths
// uniform in [150, 350] unless overridden by fixed > 0, which pins the
// length (Figure 14's 100/300/500 series).
func (l *Lab) Workload(d *trajectory.Dataset, fixed int) []queries.Query {
	cfg := queries.WorkloadConfig{
		NumObjects: d.NumObjects(),
		NumTicks:   d.NumTicks(),
		Count:      l.opts.Queries,
		Seed:       l.opts.Seed + 77,
	}
	if fixed > 0 {
		cfg.MinLen, cfg.MaxLen = fixed, fixed
	}
	return queries.RandomWorkload(cfg)
}

// WavefrontTicks returns the scale-preserving query interval length for d.
// The paper's standard intervals (150-350 instants, midpoint 250) let an
// infection wavefront cover about 30% of the environment's side on RWP10k
// (250 ticks at 2 m/s and 6 s/tick = 3 km of 10 km). Shrinking the
// environment to keep object density constant therefore requires shrinking
// the interval proportionally — otherwise the wavefront saturates the space
// and every spatial index degenerates to a full scan. Experiments whose
// outcome depends on spatial locality (SPJ, Figure 14) use this length and
// say so in their notes.
func WavefrontTicks(d *trajectory.Dataset) int {
	l := int(0.3 * d.Env.Width() / meanStep(d))
	if l < 30 {
		l = 30
	}
	if l > d.NumTicks()/2 {
		l = d.NumTicks() / 2
	}
	return l
}

// meanStep estimates the mean per-tick displacement from a sample of the
// dataset's trajectories.
func meanStep(d *trajectory.Dataset) float64 {
	var sum float64
	var n int
	for i := 0; i < len(d.Trajs) && i < 32; i++ {
		pos := d.Trajs[i].Pos
		for t := 1; t < len(pos) && t < 512; t++ {
			sum += pos[t].Dist(pos[t-1])
			n++
		}
	}
	if n == 0 || sum == 0 {
		return 12 // RWP default: 2 m/s at 6 s/tick
	}
	return sum / float64(n)
}

// timed returns f's wall-clock duration. The store is memory-backed, so
// wall time is CPU time for the simulated-disk engines.
func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// fmtDur renders a duration with ms precision.
func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

// fmtBytes renders a byte count in human units.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// All runs every experiment in paper order.
func (l *Lab) All() []*Table {
	return []*Table{
		l.Table1(),
		l.Table2(),
		l.Fig8a(),
		l.Fig8b(),
		l.Fig9(),
		l.SPJ(),
		l.Fig10(),
		l.Fig11(),
		l.Table4(),
		l.Fig12(),
		l.Fig12b(),
		l.Fig13(),
		l.Fig14(),
		l.Fig15(),
		l.Table5a(),
		l.Table5b(),
		l.BackendSweep(),
		l.Concurrency(),
		l.Streaming(),
		l.Compaction(),
		l.Semantics(),
		l.Filtered(),
		l.Bidir(),
		l.Sharding(),
		l.AblationPool(),
		l.AblationBidirectional(),
		l.AblationCodec(),
	}
}

// ByID returns the experiment runner for a table/figure id, or nil.
func (l *Lab) ByID(id string) func() *Table {
	switch strings.ToLower(id) {
	case "table1":
		return l.Table1
	case "table2":
		return l.Table2
	case "table4":
		return l.Table4
	case "table5a":
		return l.Table5a
	case "table5b":
		return l.Table5b
	case "fig8a":
		return l.Fig8a
	case "fig8b":
		return l.Fig8b
	case "fig9":
		return l.Fig9
	case "fig10":
		return l.Fig10
	case "fig11":
		return l.Fig11
	case "fig12":
		return l.Fig12
	case "fig12b":
		return l.Fig12b
	case "ablation-pool":
		return l.AblationPool
	case "ablation-bidir":
		return l.AblationBidirectional
	case "ablation-codec":
		return l.AblationCodec
	case "fig13":
		return l.Fig13
	case "fig14":
		return l.Fig14
	case "fig15":
		return l.Fig15
	case "spj":
		return l.SPJ
	case "backends":
		return l.BackendSweep
	case "concurrency":
		return l.Concurrency
	case "streaming":
		return l.Streaming
	case "compaction":
		return l.Compaction
	case "semantics":
		return l.Semantics
	case "filtered":
		return l.Filtered
	case "bidir":
		return l.Bidir
	case "sharding":
		return l.Sharding
	}
	return nil
}

// IDs lists the available experiment ids in paper order.
func IDs() []string {
	return []string{
		"table1", "table2", "fig8a", "fig8b", "fig9", "spj",
		"fig10", "fig11", "table4", "fig12", "fig12b", "fig13", "fig14", "fig15",
		"table5a", "table5b", "backends", "concurrency", "streaming", "compaction", "semantics",
		"filtered", "bidir", "sharding", "ablation-pool", "ablation-bidir", "ablation-codec",
	}
}
