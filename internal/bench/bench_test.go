package bench

import (
	"strings"
	"testing"
)

// tinyLab keeps experiment smoke tests fast.
func tinyLab() *Lab {
	return NewLab(Options{
		RWPSizes:    []int{20, 25, 30},
		VNSizes:     []int{10, 15, 20},
		Ticks:       200,
		Queries:     4,
		Seed:        1,
		TaxiObjects: 15,
		TaxiMinutes: 20,
	})
}

func TestIDsAllResolvable(t *testing.T) {
	l := tinyLab()
	for _, id := range IDs() {
		if l.ByID(id) == nil {
			t.Errorf("IDs lists %q but ByID cannot resolve it", id)
		}
	}
	if l.ByID("nope") != nil {
		t.Error("ByID resolved an unknown id")
	}
	if l.ByID("FIG13") == nil {
		t.Error("ByID should be case-insensitive")
	}
}

// TestEveryExperimentProducesRows smoke-runs the whole suite at tiny scale:
// every runner must return a table with at least one row and matching
// column widths.
func TestEveryExperimentProducesRows(t *testing.T) {
	l := tinyLab()
	for _, tbl := range l.All() {
		if tbl.ID == "" || tbl.Title == "" {
			t.Errorf("table %+v missing identity", tbl)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: no rows", tbl.ID)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Errorf("%s: row %v has %d cells, want %d", tbl.ID, row, len(row), len(tbl.Columns))
			}
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"A", "Blong"},
	}
	tbl.AddRow("aa", "b")
	tbl.AddNote("hello %d", 7)
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== x — demo ==", "A   Blong", "aa  b", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestLabCaching(t *testing.T) {
	l := tinyLab()
	if l.RWP(20) != l.RWP(20) {
		t.Error("dataset not cached")
	}
	d := l.RWP(20)
	if l.Contacts(d) != l.Contacts(d) {
		t.Error("contacts not cached")
	}
	if l.Graph(d) != l.Graph(d) {
		t.Error("graph not cached")
	}
}

func TestWavefrontTicksSanity(t *testing.T) {
	l := tinyLab()
	rwp := l.RWP(30)
	w := WavefrontTicks(rwp)
	if w < 30 || w > rwp.NumTicks()/2 {
		t.Fatalf("WavefrontTicks(RWP) = %d outside [30, %d]", w, rwp.NumTicks()/2)
	}
	vn := l.VN(20)
	wv := WavefrontTicks(vn)
	if wv < 30 || wv > vn.NumTicks()/2 {
		t.Fatalf("WavefrontTicks(VN) = %d outside [30, %d]", wv, vn.NumTicks()/2)
	}
	// Vehicles move faster, so the same-side environment needs fewer ticks;
	// both must stay within the clamps checked above.
	if meanStep(vn) <= meanStep(rwp) {
		t.Fatalf("mean step: VN %.1f should exceed RWP %.1f", meanStep(vn), meanStep(rwp))
	}
}

func TestPrefixDataset(t *testing.T) {
	l := tinyLab()
	d := l.RWP(20)
	sub := prefixDataset(d, 50)
	if sub.NumTicks() != 50 || sub.NumObjects() != d.NumObjects() {
		t.Fatalf("prefix shape: %d ticks × %d objects", sub.NumTicks(), sub.NumObjects())
	}
	if full := prefixDataset(d, d.NumTicks()+10); full != d {
		t.Error("prefix beyond domain should return the original dataset")
	}
}
