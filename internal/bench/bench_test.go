package bench

import (
	"strings"
	"testing"
)

// tinyLab keeps experiment smoke tests fast.
func tinyLab() *Lab {
	return NewLab(Options{
		RWPSizes:    []int{20, 25, 30},
		VNSizes:     []int{10, 15, 20},
		Ticks:       200,
		Queries:     4,
		Seed:        1,
		TaxiObjects: 15,
		TaxiMinutes: 20,
	})
}

func TestIDsAllResolvable(t *testing.T) {
	l := tinyLab()
	for _, id := range IDs() {
		if l.ByID(id) == nil {
			t.Errorf("IDs lists %q but ByID cannot resolve it", id)
		}
	}
	if l.ByID("nope") != nil {
		t.Error("ByID resolved an unknown id")
	}
	if l.ByID("FIG13") == nil {
		t.Error("ByID should be case-insensitive")
	}
}

// TestEveryExperimentProducesRows smoke-runs the whole suite at tiny scale:
// every runner must return a table with at least one row and matching
// column widths.
func TestEveryExperimentProducesRows(t *testing.T) {
	l := tinyLab()
	for _, tbl := range l.All() {
		if tbl.ID == "" || tbl.Title == "" {
			t.Errorf("table %+v missing identity", tbl)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: no rows", tbl.ID)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Errorf("%s: row %v has %d cells, want %d", tbl.ID, row, len(row), len(tbl.Columns))
			}
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"A", "Blong"},
	}
	tbl.AddRow("aa", "b")
	tbl.AddNote("hello %d", 7)
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== x — demo ==", "A   Blong", "aa  b", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestLabCaching(t *testing.T) {
	l := tinyLab()
	if l.RWP(20) != l.RWP(20) {
		t.Error("dataset not cached")
	}
	d := l.RWP(20)
	if l.Contacts(d) != l.Contacts(d) {
		t.Error("contacts not cached")
	}
	if l.Graph(d) != l.Graph(d) {
		t.Error("graph not cached")
	}
}

func TestWavefrontTicksSanity(t *testing.T) {
	l := tinyLab()
	rwp := l.RWP(30)
	w := WavefrontTicks(rwp)
	if w < 30 || w > rwp.NumTicks()/2 {
		t.Fatalf("WavefrontTicks(RWP) = %d outside [30, %d]", w, rwp.NumTicks()/2)
	}
	vn := l.VN(20)
	wv := WavefrontTicks(vn)
	if wv < 30 || wv > vn.NumTicks()/2 {
		t.Fatalf("WavefrontTicks(VN) = %d outside [30, %d]", wv, vn.NumTicks()/2)
	}
	// Vehicles move faster, so the same-side environment needs fewer ticks;
	// both must stay within the clamps checked above.
	if meanStep(vn) <= meanStep(rwp) {
		t.Fatalf("mean step: VN %.1f should exceed RWP %.1f", meanStep(vn), meanStep(rwp))
	}
}

// TestConcurrencyRecordsAndJSONRoundTrip validates the machine-readable
// pipeline end to end: the concurrency sweep emits one record per
// (backend, workers) point, WriteJSON produces a schema-tagged document,
// and ReadReport accepts it back while rejecting malformed input.
func TestConcurrencyRecordsAndJSONRoundTrip(t *testing.T) {
	l := NewLab(Options{
		RWPSizes: []int{20},
		VNSizes:  []int{10},
		Ticks:    150,
		Queries:  3,
		Seed:     1,
		Backends: []string{"oracle", "reachgraph", "grail-mem"},
		Workers:  []int{1, 2},
	})
	recs := l.ConcurrencyRecords()
	if len(recs) != 3*2 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	for _, rec := range recs {
		if rec.Experiment != "concurrency" || rec.QueriesPerSec <= 0 {
			t.Fatalf("bad record: %+v", rec)
		}
		if rec.Workers == 1 && rec.SpeedupVs1Worker != 1.0 {
			t.Errorf("%s: 1-worker speedup %.2f, want 1.0", rec.Backend, rec.SpeedupVs1Worker)
		}
		// Disk backend on a warm pool: traffic is pages read or pool hits.
		if rec.Backend == "reachgraph" && rec.PagesRead == 0 && rec.CacheHitRate == 0 {
			t.Errorf("disk backend shows no disk traffic at all: %+v", rec)
		}
		if rec.Backend != "reachgraph" && (rec.PagesRead != 0 || rec.CacheHitRate != 0) {
			t.Errorf("memory backend charged disk traffic: %+v", rec)
		}
	}

	var sb strings.Builder
	if err := WriteJSON(&sb, recs); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadReport(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadReport rejected WriteJSON output: %v\n%s", err, sb.String())
	}
	if rep.Schema != SchemaVersion || len(rep.Records) != len(recs) {
		t.Fatalf("round trip lost data: %+v", rep)
	}
	if rep.Records[0] != recs[0] {
		t.Fatalf("record round trip mismatch: %+v vs %+v", rep.Records[0], recs[0])
	}

	for _, bad := range []string{
		"",
		"{",
		`{"schema":"other/v9","records":[]}`,
		`{"schema":"` + SchemaVersion + `","records":[]}`,
		`{"schema":"` + SchemaVersion + `","records":[{"experiment":"x"}]}`,
	} {
		if _, err := ReadReport(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadReport accepted malformed input %q", bad)
		}
	}
}

func TestPrefixDataset(t *testing.T) {
	l := tinyLab()
	d := l.RWP(20)
	sub := prefixDataset(d, 50)
	if sub.NumTicks() != 50 || sub.NumObjects() != d.NumObjects() {
		t.Fatalf("prefix shape: %d ticks × %d objects", sub.NumTicks(), sub.NumObjects())
	}
	if full := prefixDataset(d, d.NumTicks()+10); full != d {
		t.Error("prefix beyond domain should return the original dataset")
	}
}

// TestCodecRecordsPagesReadDrop pins the codec ablation's headline (and
// the hot-path acceptance gate): the varint-delta format must read at
// least 25% fewer pages per workload than the fixed-width baseline on
// both disk indexes, and the records must round-trip the JSON schema.
func TestCodecRecordsPagesReadDrop(t *testing.T) {
	l := tinyLab()
	recs := l.CodecRecords()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4 (2 backends × 2 formats)", len(recs))
	}
	pages := map[string]map[string]int64{}
	for _, rec := range recs {
		if rec.Experiment != "ablation-codec" || rec.PageFormat == "" {
			t.Fatalf("bad record: %+v", rec)
		}
		if rec.BytesPerPage <= 0 || rec.IndexPages <= 0 {
			t.Fatalf("record missing page metrics: %+v", rec)
		}
		if pages[rec.Backend] == nil {
			pages[rec.Backend] = map[string]int64{}
		}
		pages[rec.Backend][rec.PageFormat] = rec.PagesRead
	}
	for backend, byFormat := range pages {
		fixed, varint := byFormat["fixed"], byFormat["varint-delta"]
		if fixed <= 0 || varint <= 0 {
			t.Fatalf("%s: missing a format point: %v", backend, byFormat)
		}
		if varint*4 > fixed*3 {
			t.Errorf("%s: varint-delta reads %d pages vs %d fixed — less than the 25%% drop gate",
				backend, varint, fixed)
		}
	}

	var sb strings.Builder
	if err := WriteJSON(&sb, recs); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadReport(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadReport rejected codec records: %v", err)
	}
	if rep.Records[0] != recs[0] {
		t.Fatalf("record round trip mismatch: %+v vs %+v", rep.Records[0], recs[0])
	}
}
