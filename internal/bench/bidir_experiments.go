// The bidirectional-search experiment: meet-in-the-middle point queries
// ("bidir:*") against the forward slab planner ("segmented:*") on
// long-interval workloads — the regime where a forward frontier saturates
// the population while the destination's deliverer set stays small. Its
// records (strategy, expanded_per_query, latency percentiles) feed the
// machine-readable perf trajectory (BENCH_bidir.json) validated by CI.
package bench

import (
	"context"
	"fmt"
	"time"

	"streach"
)

// bidirPairs are the (forward, bidirectional) backend pairs the experiment
// sweeps; each pair shares one index family so the only variable is the
// search direction.
var bidirPairs = []struct{ forward, bidir string }{
	{"segmented:reachgraph", "bidir:reachgraph"},
	{"segmented:reachgraph-mem", "bidir:reachgraph-mem"},
}

// BidirRecords runs a long-interval point-query workload through each
// forward/bidirectional backend pair and returns one Record per (backend,
// strategy) point. Intervals are pinned to three quarters of the time
// domain — short intervals are uninteresting here, since the bidirectional
// planner collapses to the native slab traversal when the two frontiers
// start in the same slab. The sweep runs once per Lab.
func (l *Lab) BidirRecords() []Record {
	if l.bidirRecs != nil {
		return l.bidirRecs
	}
	d := l.RWP(l.opts.RWPSizes[len(l.opts.RWPSizes)/2])
	work := l.Workload(d, 3*d.NumTicks()/4)
	opts := streach.Options{SegmentTicks: d.NumTicks() / 8}
	ctx := context.Background()

	var recs []Record
	for _, pair := range bidirPairs {
		for _, point := range []struct{ backend, strategy string }{
			{pair.forward, "forward"}, {pair.bidir, "bidir"},
		} {
			e := l.OpenBackend(point.backend, d, opts)
			var pages, hits int64
			var normalized, expanded float64
			var lats []time.Duration
			start := time.Now()
			for _, q := range work {
				t0 := time.Now()
				r, err := e.Reachable(ctx, q)
				if err != nil {
					panic(fmt.Sprintf("bench: bidir %s %v: %v", point.backend, q, err))
				}
				lats = append(lats, time.Since(t0))
				pages += r.IO.RandomReads + r.IO.SequentialReads
				hits += r.IO.BufferHits
				normalized += r.IO.Normalized
				expanded += float64(r.Expanded)
			}
			elapsed := time.Since(start)
			p50, p95 := latencyPercentiles(lats)
			hitRate := 0.0
			if hits+pages > 0 {
				hitRate = float64(hits) / float64(hits+pages)
			}
			recs = append(recs, Record{
				Experiment:           "bidir",
				Backend:              point.backend,
				Dataset:              d.Name,
				Workers:              1,
				Queries:              len(work),
				QueriesPerSec:        float64(len(work)) / elapsed.Seconds(),
				P50LatencyUS:         p50,
				P95LatencyUS:         p95,
				PagesRead:            pages,
				NormalizedIOPerQuery: normalized / float64(len(work)),
				CacheHitRate:         hitRate,
				Strategy:             point.strategy,
				ExpandedPerQuery:     expanded / float64(len(work)),
			})
		}
	}
	l.bidirRecs = recs
	return recs
}

// Bidir renders the bidirectional-search experiment as a table (the
// human-readable view of BidirRecords).
func (l *Lab) Bidir() *Table {
	t := &Table{
		ID:      "bidir",
		Title:   "Bidirectional vs forward temporal search, long intervals",
		Columns: []string{"Backend", "Dataset", "Strategy", "Expanded/q", "IO/q", "p50", "p95"},
	}
	recs := l.BidirRecords()
	forward := map[string]Record{} // bidir backend → its forward baseline
	for _, pair := range bidirPairs {
		for _, rec := range recs {
			if rec.Backend == pair.forward {
				forward[pair.bidir] = rec
			}
		}
	}
	for _, rec := range recs {
		t.AddRow(
			rec.Backend, rec.Dataset, rec.Strategy,
			fmt.Sprintf("%.1f", rec.ExpandedPerQuery),
			fmt.Sprintf("%.1f", rec.NormalizedIOPerQuery),
			fmt.Sprintf("%.0fµs", rec.P50LatencyUS),
			fmt.Sprintf("%.0fµs", rec.P95LatencyUS),
		)
	}
	for _, rec := range recs {
		base, ok := forward[rec.Backend]
		if !ok || base.ExpandedPerQuery == 0 {
			continue
		}
		t.AddNote("%s: %.0f%% fewer contact expansions per query than %s (%.1f vs %.1f)",
			rec.Backend, 100*(1-rec.ExpandedPerQuery/base.ExpandedPerQuery), base.Backend,
			rec.ExpandedPerQuery, base.ExpandedPerQuery)
	}
	t.AddNote("intervals pinned to 3/4 of the time domain; the planner expands whichever")
	t.AddNote("frontier is smaller and stops as soon as the two intersect (or provably cannot)")
	return t
}
