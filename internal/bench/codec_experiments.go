// The codec ablation: fixed-width vs varint-delta page formats on the two
// disk-resident paper indexes. It quantifies the hot-path claim of the
// compressed-codec work — delta postings and prediction-XOR positions cut
// the pages a query reads, not just the bytes an index stores — and its
// records (page_format, bytes_per_page, pages_read) feed the
// machine-readable perf trajectory (BENCH_hotpath.json) validated by CI.
package bench

import (
	"context"
	"fmt"
	"time"

	"streach/internal/dn"
	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/reachgraph"
	"streach/internal/reachgrid"
	"streach/internal/trajectory"
)

// codecFormats are the ablation's page-format dimension.
var codecFormats = []pagefile.Format{pagefile.FormatFixed, pagefile.FormatVarint}

// codecRunner abstracts the two indexes behind one counted point query.
type codecRunner struct {
	name  string
	store *pagefile.Store
	reach func(ctx context.Context, q queries.Query, acct *pagefile.Stats) (bool, error)
}

func (l *Lab) codecRunners(d *trajectory.Dataset, format pagefile.Format) []codecRunner {
	grid, err := reachgrid.Build(d, reachgrid.Params{Format: format})
	if err != nil {
		panic(fmt.Sprintf("bench: codec grid build %s: %v", d.Name, err))
	}
	graph, err := reachgraph.Build(dn.Build(l.Contacts(d)), reachgraph.Params{Format: format})
	if err != nil {
		panic(fmt.Sprintf("bench: codec graph build %s: %v", d.Name, err))
	}
	return []codecRunner{
		{name: "reachgrid", store: grid.Store(), reach: func(ctx context.Context, q queries.Query, acct *pagefile.Stats) (bool, error) {
			ok, _, err := grid.ReachCounted(ctx, q, acct)
			return ok, err
		}},
		{name: "reachgraph", store: graph.Store(), reach: func(ctx context.Context, q queries.Query, acct *pagefile.Stats) (bool, error) {
			ok, _, err := graph.ReachStrategyCounted(ctx, q, reachgraph.BMBFS, acct)
			return ok, err
		}},
	}
}

// CodecRecords runs the standard workload through reachgrid and reachgraph
// built in each page format and returns one Record per (backend, format)
// point: total pages read, normalized I/O per query, latency percentiles
// and the index's page utilization. A fresh index per point keeps the
// comparison cold-for-cold; the sweep runs once per Lab.
func (l *Lab) CodecRecords() []Record {
	if l.codecRecs != nil {
		return l.codecRecs
	}
	d := l.RWP(l.opts.RWPSizes[len(l.opts.RWPSizes)/2])
	work := l.Workload(d, 0)
	ctx := context.Background()

	var recs []Record
	for _, format := range codecFormats {
		for _, r := range l.codecRunners(d, format) {
			var pages, hits int64
			var normalized float64
			var lats []time.Duration
			start := time.Now()
			for _, q := range work {
				var acct pagefile.Stats
				t0 := time.Now()
				if _, err := r.reach(ctx, q, &acct); err != nil {
					panic(fmt.Sprintf("bench: codec %s (%s) %v: %v", r.name, format, q, err))
				}
				lats = append(lats, time.Since(t0))
				pages += acct.RandomReads + acct.SequentialReads
				hits += acct.BufferHits
				normalized += acct.Normalized()
			}
			elapsed := time.Since(start)
			p50, p95 := latencyPercentiles(lats)
			hitRate := 0.0
			if hits+pages > 0 {
				hitRate = float64(hits) / float64(hits+pages)
			}
			numPages := r.store.NumPages()
			recs = append(recs, Record{
				Experiment:           "ablation-codec",
				Backend:              r.name,
				Dataset:              d.Name,
				Workers:              1,
				Queries:              len(work),
				QueriesPerSec:        float64(len(work)) / elapsed.Seconds(),
				P50LatencyUS:         p50,
				P95LatencyUS:         p95,
				PagesRead:            pages,
				NormalizedIOPerQuery: normalized / float64(len(work)),
				CacheHitRate:         hitRate,
				PageFormat:           format.String(),
				BytesPerPage:         float64(r.store.PayloadBytes()) / float64(numPages),
				IndexPages:           numPages,
			})
		}
	}
	l.codecRecs = recs
	return recs
}

// AblationCodec renders the codec ablation as a table (the human-readable
// view of CodecRecords).
func (l *Lab) AblationCodec() *Table {
	t := &Table{
		ID:      "ablation-codec",
		Title:   "Page-format ablation: fixed-width vs varint-delta codec",
		Columns: []string{"Backend", "Dataset", "Format", "Index pages", "B/page", "Pages read", "IO/q", "p50"},
	}
	recs := l.CodecRecords()
	baseline := map[string]Record{} // backend → fixed-format record
	for _, rec := range recs {
		if rec.PageFormat == pagefile.FormatFixed.String() {
			baseline[rec.Backend] = rec
		}
	}
	for _, rec := range recs {
		t.AddRow(
			rec.Backend, rec.Dataset, rec.PageFormat,
			fmt.Sprint(rec.IndexPages),
			fmt.Sprintf("%.0f", rec.BytesPerPage),
			fmt.Sprint(rec.PagesRead),
			fmt.Sprintf("%.1f", rec.NormalizedIOPerQuery),
			fmt.Sprintf("%.0fµs", rec.P50LatencyUS),
		)
	}
	for backend, base := range baseline {
		for _, rec := range recs {
			if rec.Backend == backend && rec.PageFormat != base.PageFormat {
				t.AddNote("%s: varint-delta reads %.0f%% fewer pages per workload than fixed (%d vs %d)",
					backend, 100*(1-float64(rec.PagesRead)/float64(base.PagesRead)), rec.PagesRead, base.PagesRead)
			}
		}
	}
	t.AddNote("same workload, fresh cold index per point; postings are delta varints and grid")
	t.AddNote("positions prediction-XOR'd; blobs pack sub-page, so byte savings become page savings")
	return t
}
