// The compaction experiment: out-of-order feed absorption under three
// delta-log policies. A LiveEngine ingests the position feed in tick
// order while a fraction of contact events arrives late — uniformly 8–56
// ticks behind the frontier, a quarter of them retracted again — so
// sealed slabs accumulate delta logs that the query path must overlay.
// The policies differ only in when those deltas are folded back into
// re-sealed slabs: never ("none"), automatically once a slab's log
// reaches a threshold ("threshold"), or by periodic explicit Compact
// calls ("manual"). Query latency over the growing engine plus the
// end-of-run delta depth show what each policy costs and leaves behind.
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"streach"
)

const (
	compactSegmentTicks = 32 // slab width: several slabs even at tiny scale
	compactLateRate     = 0.2
	compactThreshold    = 4  // "threshold" policy: auto-compact at this delta depth
	compactManualEvery  = 64 // "manual" policy: Compact() period in ticks
	compactRetractFrac  = 0.25
	compactRetractDelay = 8 // ticks between a late add and its retraction
)

// compactConfig is one measured point of the compaction experiment.
type compactConfig struct {
	backend string
	rate    float64 // fraction of ticks that also deliver a late event
	policy  string  // "none" | "threshold" | "manual"
}

// compactConfigs builds the sweep: the primary live backend across a
// clean feed and all three policies at the standard late rate, plus every
// other live-capable backend at (rate, threshold) for cross-backend
// comparison.
func (l *Lab) compactConfigs() []compactConfig {
	capable := l.liveCapable()
	primary := capable[0]
	for _, name := range capable {
		if name == "reachgraph-mem" {
			primary = name
		}
	}
	cfgs := []compactConfig{
		{primary, 0, "none"},
		{primary, compactLateRate, "none"},
		{primary, compactLateRate, "threshold"},
		{primary, compactLateRate, "manual"},
	}
	for _, name := range capable {
		if name != primary {
			cfgs = append(cfgs, compactConfig{name, compactLateRate, "threshold"})
		}
	}
	return cfgs
}

// CompactionRecords runs the out-of-order ingest sweep once per Lab.
func (l *Lab) CompactionRecords() []Record {
	if l.compactRecs != nil {
		return l.compactRecs
	}
	d := l.RWP(l.opts.RWPSizes[len(l.opts.RWPSizes)/2])
	numObjects, numTicks := d.NumObjects(), d.NumTicks()
	pub := l.Pub(d)
	work := l.Workload(d, 0)

	var recs []Record
	for _, cfg := range l.compactConfigs() {
		opts := streach.Options{SegmentTicks: compactSegmentTicks, IngestHorizon: -1}
		if cfg.policy == "threshold" {
			opts.CompactEvents = compactThreshold
		}
		le, err := streach.NewLiveEngine(cfg.backend, numObjects, pub.Env(), pub.ContactDist(), opts)
		if err != nil {
			panic(fmt.Sprintf("bench: compaction open %s: %v", cfg.backend, err))
		}
		rng := rand.New(rand.NewSource(l.opts.Seed + 909))
		ctx := context.Background()
		positions := make([]streach.Point, numObjects)
		var appendDur, queryDur time.Duration
		var lats []time.Duration
		// Late adds scheduled for retraction a few ticks from now.
		type delayed struct {
			at int
			ev streach.ContactEvent
		}
		var retractions []delayed
		qi := 0
		for tk := 0; tk < numTicks; tk++ {
			for o := range positions {
				positions[o] = pub.Position(streach.ObjectID(o), streach.Tick(tk))
			}
			t0 := time.Now()
			if err := le.AddInstant(positions); err != nil {
				panic(fmt.Sprintf("bench: compaction append %s@%d: %v", cfg.backend, tk, err))
			}
			if cfg.rate > 0 && rng.Float64() < cfg.rate {
				late := streach.ContactEvent{
					Tick: streach.Tick(max(tk-8-rng.Intn(49), 0)),
					A:    streach.ObjectID(rng.Intn(numObjects)),
				}
				late.B = streach.ObjectID((int(late.A) + 1 + rng.Intn(numObjects-1)) % numObjects)
				if _, err := le.Ingest([]streach.ContactEvent{late}); err != nil {
					panic(fmt.Sprintf("bench: compaction late event %s@%d: %v", cfg.backend, tk, err))
				}
				if rng.Float64() < compactRetractFrac {
					ret := late
					ret.Retract = true
					retractions = append(retractions, delayed{at: tk + compactRetractDelay, ev: ret})
				}
			}
			for len(retractions) > 0 && retractions[0].at <= tk {
				if _, err := le.Ingest([]streach.ContactEvent{retractions[0].ev}); err != nil {
					panic(fmt.Sprintf("bench: compaction retraction %s@%d: %v", cfg.backend, tk, err))
				}
				retractions = retractions[1:]
			}
			if cfg.policy == "manual" && tk > 0 && tk%compactManualEvery == 0 {
				if _, err := le.Compact(); err != nil {
					panic(fmt.Sprintf("bench: compaction Compact %s@%d: %v", cfg.backend, tk, err))
				}
			}
			appendDur += time.Since(t0)
			if tk < streamWarmTicks || tk%streamQueryEvery != 0 {
				continue
			}
			q := work[qi%len(work)]
			qi++
			if int(q.Interval.Hi) >= tk {
				span := streach.Tick(q.Interval.Hi - q.Interval.Lo)
				q.Interval.Hi = streach.Tick(tk - 1)
				q.Interval.Lo = q.Interval.Hi - span
				if q.Interval.Lo < 0 {
					q.Interval.Lo = 0
				}
			}
			t0 = time.Now()
			r, err := le.Reachable(ctx, q)
			if err != nil {
				panic(fmt.Sprintf("bench: compaction query %s %v: %v", cfg.backend, q, err))
			}
			queryDur += time.Since(t0)
			lats = append(lats, r.Latency)
		}
		if len(lats) == 0 {
			q := work[0]
			q.Interval = streach.NewInterval(0, streach.Tick(numTicks-1))
			t0 := time.Now()
			r, err := le.Reachable(ctx, q)
			if err != nil {
				panic(fmt.Sprintf("bench: compaction query %s %v: %v", cfg.backend, q, err))
			}
			queryDur += time.Since(t0)
			lats = append(lats, r.Latency)
		}
		if queryDur <= 0 {
			queryDur = time.Nanosecond
		}
		if appendDur <= 0 {
			appendDur = time.Nanosecond
		}
		st := le.Stats()
		p50, p95 := latencyPercentiles(lats)
		recs = append(recs, Record{
			Experiment:       "compaction",
			Backend:          le.Name(),
			Dataset:          d.Name,
			Workers:          1,
			Queries:          len(lats),
			QueriesPerSec:    float64(len(lats)) / queryDur.Seconds(),
			P50LatencyUS:     p50,
			P95LatencyUS:     p95,
			AppendsPerSec:    float64(numTicks) / appendDur.Seconds(),
			SealedSegments:   le.NumSealedSegments(),
			LateRate:         cfg.rate,
			LateEvents:       st.LateEvents,
			Compactions:      st.Compactions,
			DeltaDepth:       st.DeltaEvents,
			CompactionPolicy: cfg.policy,
		})
	}
	l.compactRecs = recs
	return recs
}

// Compaction renders the out-of-order ingest sweep as a table (the
// human-readable view of CompactionRecords).
func (l *Lab) Compaction() *Table {
	t := &Table{
		ID:      "compaction",
		Title:   "Out-of-order ingest: delta-log policies (LiveEngine, late adds + retractions)",
		Columns: []string{"Backend", "Policy", "Late", "LateEv", "Compactions", "DeltaDepth", "Appends/s", "p50", "p95"},
	}
	for _, rec := range l.CompactionRecords() {
		t.AddRow(
			rec.Backend, rec.CompactionPolicy,
			fmt.Sprintf("%.0f%%", rec.LateRate*100),
			fmt.Sprint(rec.LateEvents),
			fmt.Sprint(rec.Compactions),
			fmt.Sprint(rec.DeltaDepth),
			fmt.Sprintf("%.0f", rec.AppendsPerSec),
			fmt.Sprintf("%.0fµs", rec.P50LatencyUS),
			fmt.Sprintf("%.0fµs", rec.P95LatencyUS),
		)
	}
	t.AddNote("a fraction of contact events arrives 8-56 ticks behind the frontier (a quarter")
	t.AddNote("retracted again); sealed slabs absorb them as delta logs that queries overlay.")
	t.AddNote("policies: none = deltas accumulate; threshold = a slab auto-re-seals at depth 4;")
	t.AddNote("manual = explicit Compact() every 64 ticks. DeltaDepth is what the run left behind")
	return t
}
