// Cross-index experiments: Figure 14 (ReachGrid vs ReachGraph I/O),
// Figure 15 (CPU time) and Table 5 (GRAIL vs ReachGraph, memory- and
// disk-resident). Every evaluator is selected from the public backend
// registry by name, so adding a column is adding a string.
package bench

import (
	"fmt"

	"streach"
	"streach/internal/trajectory"
)

// comparePair returns one RWP and one VN dataset (the paper uses RWP20k and
// VN2k, the middle sizes).
func (l *Lab) comparePair() []*trajectory.Dataset {
	return []*trajectory.Dataset{
		l.RWP(l.opts.RWPSizes[len(l.opts.RWPSizes)/2]),
		l.VN(l.opts.VNSizes[len(l.opts.VNSizes)/2]),
	}
}

// Fig14 compares per-query I/O of the two indexes at fixed interval
// lengths scaled from the paper's 100/300/500.
func (l *Lab) Fig14() *Table {
	t := &Table{
		ID:      "fig14",
		Title:   "ReachGrid vs ReachGraph I/O by query interval (Fig. 14)",
		Columns: []string{"Dataset", "|Tp|", "ReachGrid IO/q", "ReachGraph IO/q"},
	}
	for _, d := range l.comparePair() {
		w := WavefrontTicks(d)
		for _, length := range []int{w / 3, w, 5 * w / 3} {
			// Fresh engines per measurement point: each |Tp| series starts
			// with a cold buffer pool, as the paper's per-point runs do.
			grid := l.OpenBackend("reachgrid", d, l.gridParams(d))
			graph := l.OpenBackend("reachgraph", d, streach.Options{})
			work := l.Workload(d, length)
			gridIO, _, _ := engineCost(grid, work)
			graphIO, _, _ := engineCost(graph, work)
			t.AddRow(d.Name, fmt.Sprint(length),
				fmt.Sprintf("%.1f", gridIO), fmt.Sprintf("%.1f", graphIO))
		}
	}
	t.AddNote("paper: ReachGrid comparable at small |Tp|, ReachGraph ahead as |Tp| grows;")
	t.AddNote("on VN (road-constrained, non-uniform) ReachGraph wins by ~63%% on average (Fig. 14);")
	t.AddNote("the 100/300/500-instant series is wavefront-scaled to this environment size")
	return t
}

// Fig15 compares CPU time per query. The store is memory-backed, so wall
// time is compute time with zero disk latency — the paper's "time ignoring
// retrievals from disk".
func (l *Lab) Fig15() *Table {
	t := &Table{
		ID:      "fig15",
		Title:   "CPU time per query (Fig. 15)",
		Columns: []string{"Dataset", "ReachGrid", "ReachGraph"},
	}
	for _, d := range l.comparePair() {
		grid := l.OpenBackend("reachgrid", d, l.gridParams(d))
		graph := l.OpenBackend("reachgraph", d, streach.Options{})
		work := l.Workload(d, 0)
		_, gridT, _ := engineCost(grid, work)
		_, graphT, _ := engineCost(graph, work)
		t.AddRow(d.Name, fmtDur(gridT), fmtDur(graphT))
	}
	t.AddNote("paper: ReachGraph has far lower CPU time — precomputation replaces query-time spatiotemporal joins (Fig. 15)")
	return t
}

// Table5a compares GRAIL and ReachGraph runtime on memory-resident data.
func (l *Lab) Table5a() *Table {
	t := &Table{
		ID:      "table5a",
		Title:   "GRAIL vs ReachGraph, memory-resident runtime (Table 5a)",
		Columns: []string{"Dataset", "GRAIL", "ReachGraph"},
	}
	for _, d := range l.comparePair() {
		gr := l.OpenBackend("grail-mem", d, streach.Options{Seed: l.opts.Seed + 9})
		rg := l.OpenBackend("reachgraph-mem", d, streach.Options{})
		work := l.Workload(d, 0)
		_, grailT, _ := engineCost(gr, work)
		_, rgT, _ := engineCost(rg, work)
		t.AddRow(d.Name, fmtDur(grailT), fmtDur(rgT))
	}
	t.AddNote("paper (Table 5a): comparable in memory — GRAIL 3.5 ms vs RG 9.0 ms on VN2k, 60 ms vs 39 ms on RWP20k")
	return t
}

// Table5b compares GRAIL and ReachGraph I/O on disk-resident data.
func (l *Lab) Table5b() *Table {
	t := &Table{
		ID:      "table5b",
		Title:   "GRAIL vs ReachGraph, disk-resident I/O (Table 5b)",
		Columns: []string{"Dataset", "GRAIL IO/q", "ReachGraph IO/q", "Saved"},
	}
	for _, d := range l.comparePair() {
		gd := l.OpenBackend("grail", d, streach.Options{Seed: l.opts.Seed + 9})
		rg := l.OpenBackend("reachgraph", d, streach.Options{})
		work := l.Workload(d, 0)
		grailIO, _, _ := engineCost(gd, work)
		rgIO, _, _ := engineCost(rg, work)
		t.AddRow(d.Name, fmt.Sprintf("%.1f", grailIO), fmt.Sprintf("%.1f", rgIO),
			fmt.Sprintf("%.0f%%", 100*(1-rgIO/grailIO)))
	}
	t.AddNote("paper (Table 5b): ReachGraph saves 76%% on VN2k (213→49 IOs) and 88%% on RWP20k (6790→570)")
	return t
}
