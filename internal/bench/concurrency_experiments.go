// The concurrency experiment: workers × backends batch throughput. This is
// the serving-side counterpart of the paper's I/O experiments — engines are
// lock-free readers over a shared buffer pool, so batch throughput must
// scale with the worker count (near-linearly for memory-resident backends,
// and clearly above 1× for disk-resident ones once the pool is warm). Its
// records feed the machine-readable perf trajectory (BENCH_*.json).
package bench

import (
	"context"
	"fmt"
	"time"

	"streach"
)

// ConcurrencyRecords runs the standard workload through every selected
// backend at each worker count and returns one Record per (backend,
// workers) point. The engine (and its buffer pool) is opened once per
// backend and warmed with one untimed pass, so the sweep measures steady
// serving throughput, not cold-cache construction effects. The sweep runs
// once per Lab; the table view and the JSON reporter share its records.
func (l *Lab) ConcurrencyRecords() []Record {
	if l.concRecs != nil {
		return l.concRecs
	}
	d := l.RWP(l.opts.RWPSizes[len(l.opts.RWPSizes)/2])
	// Replicate the standard workload so every timed run has enough
	// queries to amortize pool startup and scheduler noise.
	base := l.Workload(d, 0)
	batch := append([]streach.Query(nil), base...)
	for len(batch) < 4*len(base) {
		batch = append(batch, base...)
	}
	ctx := context.Background()

	var recs []Record
	for _, name := range l.opts.Backends {
		e := l.OpenBackend(name, d, streach.Options{})
		// Warm pass: fills the buffer pool and faults in every structure.
		if _, err := streach.EvaluateBatch(ctx, e, batch, streach.BatchOptions{Workers: 1}); err != nil {
			panic(fmt.Sprintf("bench: concurrency warm-up %s: %v", name, err))
		}
		backendRecs := make([]Record, 0, len(l.opts.Workers))
		for _, workers := range l.opts.Workers {
			backendRecs = append(backendRecs, l.measureBatch(e, d.Name, batch, workers))
		}
		// Normalize speedups against the lowest worker count measured
		// (the 1-worker run when present), independent of sweep order.
		base := backendRecs[0]
		for _, rec := range backendRecs[1:] {
			if rec.Workers < base.Workers {
				base = rec
			}
		}
		for i := range backendRecs {
			backendRecs[i].SpeedupVs1Worker = backendRecs[i].QueriesPerSec / base.QueriesPerSec
		}
		recs = append(recs, backendRecs...)
	}
	l.concRecs = recs
	return recs
}

// measureBatch times one EvaluateBatch run and distils it into a Record.
func (l *Lab) measureBatch(e streach.Engine, dataset string, batch []streach.Query, workers int) Record {
	start := time.Now()
	results, err := streach.EvaluateBatch(context.Background(), e, batch, streach.BatchOptions{Workers: workers})
	elapsed := time.Since(start)
	if err != nil {
		panic(fmt.Sprintf("bench: concurrency batch %s x%d: %v", e.Name(), workers, err))
	}
	lats := make([]time.Duration, 0, len(results))
	var pages, hits int64
	var normalized float64
	for _, r := range results {
		lats = append(lats, r.Latency)
		pages += r.IO.RandomReads + r.IO.SequentialReads
		hits += r.IO.BufferHits
		normalized += r.IO.Normalized
	}
	p50, p95 := latencyPercentiles(lats)
	hitRate := 0.0
	if hits+pages > 0 {
		hitRate = float64(hits) / float64(hits+pages)
	}
	return Record{
		Experiment:           "concurrency",
		Backend:              e.Name(),
		Dataset:              dataset,
		Workers:              workers,
		Queries:              len(batch),
		QueriesPerSec:        float64(len(batch)) / elapsed.Seconds(),
		P50LatencyUS:         p50,
		P95LatencyUS:         p95,
		PagesRead:            pages,
		NormalizedIOPerQuery: normalized / float64(len(batch)),
		CacheHitRate:         hitRate,
	}
}

// Concurrency renders the workers × backends sweep as a table (the
// human-readable view of ConcurrencyRecords).
func (l *Lab) Concurrency() *Table {
	t := &Table{
		ID:      "concurrency",
		Title:   "Batch throughput vs workers (lock-free engines, warm pool)",
		Columns: []string{"Backend", "Dataset", "Workers", "q/s", "p50", "p95", "Speedup", "Hit rate"},
	}
	for _, rec := range l.ConcurrencyRecords() {
		t.AddRow(
			rec.Backend, rec.Dataset, fmt.Sprint(rec.Workers),
			fmt.Sprintf("%.0f", rec.QueriesPerSec),
			fmt.Sprintf("%.0fµs", rec.P50LatencyUS),
			fmt.Sprintf("%.0fµs", rec.P95LatencyUS),
			fmt.Sprintf("%.2fx", rec.SpeedupVs1Worker),
			fmt.Sprintf("%.0f%%", 100*rec.CacheHitRate),
		)
	}
	t.AddNote("one engine per backend, pool warmed by an untimed pass; speedup is q/s vs the")
	t.AddNote("same backend at 1 worker — memory backends should approach the worker count,")
	t.AddNote("disk backends stay >1x on a warm pool (page-sharded latches, no global lock)")
	return t
}
