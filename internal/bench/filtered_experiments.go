// The filtered experiment: §7's extension queries under a contact-tracing
// preset — a k-hop exposure ring restricted to sustained contacts
// (min-duration filter) with a probabilistic τ sweep on top. As in the
// semantics experiment, every answer is validated against the oracle under
// the same semantics before it is counted, so the records double as a
// conformance certificate for the filtered/probabilistic propagation path.
//
// The probabilistic rows additionally cross-check the seeded Monte-Carlo
// estimator against the exact evaluation: the sampled two-terminal
// reliability is an upper bound on the exact best-path probability
// (p^minHops), so any shortfall below it is pure sampling error. The
// largest shortfall observed lands in MaxProbShortfall, which CI gates.
package bench

import (
	"context"
	"fmt"
	"time"

	"streach"
)

// filteredPreset is the contact-tracing parameterization the experiment
// sweeps: exposure rings of at most ExposureHops transfers over contacts of
// at least MinDuration ticks, with per-contact transmission probability
// Prob thresholded at each τ of TauSweep.
var filteredPreset = struct {
	ExposureHops int
	MinDuration  int
	Prob         float64
	TauSweep     []float64
	MCTrials     int
	MCSeed       int64
}{
	ExposureHops: 3,
	MinDuration:  2,
	Prob:         0.8,
	TauSweep:     []float64{0.1, 0.3, 0.5},
	MCTrials:     400,
	MCSeed:       17,
}

// filteredBackends is the representative slice the experiment measures: the
// ground-truth oracle, a trajectory index, the uncertain contact store, and
// the segmented planner — one of each propagation architecture. Backends
// missing from the registry (never, today) are skipped.
var filteredBackends = []string{"oracle", "reachgrid", "uncertain:reachgraph", "segmented:oracle"}

// FilteredRecords measures the contact-tracing preset per backend on the
// middle RWP dataset, validating every answer against the oracle under
// identical semantics. The sweep runs once per Lab.
func (l *Lab) FilteredRecords() []Record {
	if l.filteredRecs != nil {
		return l.filteredRecs
	}
	d := l.RWP(l.opts.RWPSizes[len(l.opts.RWPSizes)/2])
	work := l.Workload(d, 0)
	ctx := context.Background()
	oracle := l.OpenBackend("oracle", d, streach.Options{})
	p := filteredPreset

	// The semantics blocks of the sweep: one pure filtered row, then the
	// full preset at each τ.
	type variant struct {
		label string
		sem   streach.Semantics
	}
	variants := []variant{{
		label: "filtered",
		sem:   streach.Semantics{MaxHops: p.ExposureHops, MinDuration: p.MinDuration},
	}}
	for _, tau := range p.TauSweep {
		variants = append(variants, variant{
			label: "probabilistic",
			sem: streach.Semantics{
				MaxHops:       p.ExposureHops,
				MinDuration:   p.MinDuration,
				Prob:          p.Prob,
				ProbThreshold: tau,
			},
		})
	}

	var recs []Record
	for _, name := range filteredBackends {
		if _, ok := streach.LookupBackend(name); !ok {
			continue
		}
		e := l.OpenBackend(name, d, streach.Options{})
		for _, v := range variants {
			var lats []time.Duration
			var pages, hits int64
			var normalized, maxShortfall float64
			native := true
			for _, q := range work {
				fq := q
				fq.Semantics = v.sem
				r, err := e.Reachable(ctx, fq)
				if err != nil {
					panic(fmt.Sprintf("bench: filtered %s on %v: %v", name, fq, err))
				}
				ref, err := oracle.Reachable(ctx, fq)
				if err != nil {
					panic(fmt.Sprintf("bench: filtered oracle on %v: %v", fq, err))
				}
				if r.Reachable != ref.Reachable || r.Prob != ref.Prob {
					panic(fmt.Sprintf("bench: filtered conformance: %s on %v: (reachable=%v, prob=%v) vs oracle (%v, %v)",
						name, fq, r.Reachable, r.Prob, ref.Reachable, ref.Prob))
				}
				if v.sem.Prob > 0 && name == filteredBackends[0] {
					// Monte-Carlo cross-check on the ground-truth row only:
					// the estimator routes through the fallback oracle on
					// every backend, so one row covers it.
					mq := fq
					mq.Semantics.MCTrials = p.MCTrials
					mq.Semantics.MCSeed = p.MCSeed
					mr, err := e.Reachable(ctx, mq)
					if err != nil {
						panic(fmt.Sprintf("bench: monte-carlo on %v: %v", mq, err))
					}
					if r.Reachable && r.Prob-mr.Prob > maxShortfall {
						maxShortfall = r.Prob - mr.Prob
					}
				}
				lats = append(lats, r.Latency)
				pages += r.IO.RandomReads + r.IO.SequentialReads
				hits += r.IO.BufferHits
				normalized += r.IO.Normalized
				native = native && r.Native
			}
			rec := semRecord(name, d.Name, v.label, native, lats, pages, hits, normalized)
			rec.Experiment = "filtered"
			rec.Filtered = true
			rec.MinDuration = v.sem.MinDuration
			rec.Prob = v.sem.Prob
			rec.ProbThreshold = v.sem.ProbThreshold
			if v.sem.Prob > 0 && name == filteredBackends[0] {
				rec.MCTrials = p.MCTrials
				rec.MaxProbShortfall = maxShortfall
			}
			recs = append(recs, rec)
		}
	}
	l.filteredRecs = recs
	return recs
}

// Filtered renders the contact-tracing sweep as a table (the human-readable
// view of FilteredRecords).
func (l *Lab) Filtered() *Table {
	t := &Table{
		ID:      "filtered",
		Title:   "Filtered + probabilistic reachability: contact-tracing preset across backends",
		Columns: []string{"Backend", "Dataset", "Kind", "τ", "Native", "Queries", "q/s", "p50", "IO/q", "MC shortfall"},
	}
	for _, rec := range l.FilteredRecords() {
		tau, shortfall := "-", "-"
		if rec.ProbThreshold > 0 {
			tau = fmt.Sprintf("%.2f", rec.ProbThreshold)
		}
		if rec.MCTrials > 0 {
			shortfall = fmt.Sprintf("%.3f", rec.MaxProbShortfall)
		}
		t.AddRow(
			rec.Backend, rec.Dataset, rec.Semantics, tau,
			fmt.Sprint(rec.NativeSemantics),
			fmt.Sprint(rec.Queries),
			fmt.Sprintf("%.0f", rec.QueriesPerSec),
			fmt.Sprintf("%.0fµs", rec.P50LatencyUS),
			fmt.Sprintf("%.1f", rec.NormalizedIOPerQuery),
			shortfall,
		)
	}
	t.AddNote("preset: %d-hop exposure rings over contacts ≥ %d ticks, p=%.1f per contact, τ swept",
		filteredPreset.ExposureHops, filteredPreset.MinDuration, filteredPreset.Prob)
	t.AddNote("every answer (reachable bit AND best-path probability) validated against the oracle;")
	t.AddNote("MC shortfall is max(exact − monte-carlo estimate): reliability bounds best-path")
	t.AddNote("probability from above, so the shortfall is pure sampling error (CI gates on it)")
	return t
}
