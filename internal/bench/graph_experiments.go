// ReachGraph experiments: Figure 10 (contact network size + reduction
// ratios), Figure 11 (DN construction time), Table 4 (multi-resolution
// degree), Figure 12 (partition depth) and Figure 13 (traversal
// strategies). Query measurements open "reachgraph*" registry backends —
// traversal strategy selection is a backend-name string; the structural
// figures (10, 11, Table 4) inspect the internal reduced graph directly.
package bench

import (
	"fmt"

	"streach"
	"streach/internal/dn"
	"streach/internal/queries"
	"streach/internal/trajectory"
)

// Fig10 reports |V| and |E| of the reduced graph DN while growing |T|,
// together with the §6.2.1.1 reduction ratios against the raw TEN.
func (l *Lab) Fig10() *Table {
	t := &Table{
		ID:      "fig10",
		Title:   "Contact network size vs |T| (Fig. 10) and TEN reduction (§6.2.1.1)",
		Columns: []string{"Dataset", "|T|", "DN |V|", "DN |E|", "TEN |V|", "TEN |E|", "V saved", "E saved"},
	}
	lengths := []int{l.opts.Ticks / 4, l.opts.Ticks / 2, l.opts.Ticks}
	for _, base := range []*trajectory.Dataset{
		l.RWP(l.opts.RWPSizes[len(l.opts.RWPSizes)-1]),
		l.VN(l.opts.VNSizes[len(l.opts.VNSizes)-1]),
	} {
		for _, ticks := range lengths {
			sub := prefixDataset(base, ticks)
			net := l.Contacts(sub)
			g := dn.Build(net)
			ten := net.TEN()
			st := g.Stats()
			t.AddRow(base.Name, fmt.Sprint(ticks),
				fmt.Sprint(st.Vertices), fmt.Sprint(st.Edges),
				fmt.Sprint(ten.Vertices), fmt.Sprint(ten.Edges),
				fmt.Sprintf("%.0f%%", 100*(1-float64(st.Vertices)/float64(ten.Vertices))),
				fmt.Sprintf("%.0f%%", 100*(1-float64(st.Edges)/float64(ten.Edges))))
		}
	}
	t.AddNote("paper: |V|,|E| grow with |T| and |O| (Fig. 10); reduction saves 81%%/80%% (RWP) and 64%%/61%% (VN) vertices/edges")
	return t
}

// Fig11 measures DN construction time while growing |T|.
func (l *Lab) Fig11() *Table {
	t := &Table{
		ID:      "fig11",
		Title:   "Contact network (DN) construction time vs |T| (Fig. 11)",
		Columns: []string{"Dataset", "|T|", "Build time"},
	}
	lengths := []int{l.opts.Ticks / 4, l.opts.Ticks / 2, l.opts.Ticks}
	for _, base := range []*trajectory.Dataset{
		l.RWP(l.opts.RWPSizes[len(l.opts.RWPSizes)-1]),
		l.VN(l.opts.VNSizes[len(l.opts.VNSizes)-1]),
	} {
		for _, ticks := range lengths {
			sub := prefixDataset(base, ticks)
			net := l.Contacts(sub)
			dur := timed(func() { dn.Build(net) })
			t.AddRow(base.Name, fmt.Sprint(ticks), fmtDur(dur))
		}
	}
	t.AddNote("paper: < 14 days over the full four-month traces, linear in |O| and |T| (Fig. 11)")
	return t
}

// Table4 reports the average vertex degree of the contact network at
// resolutions DN2 … DN32 for the largest VN and RWP datasets plus VNR.
func (l *Lab) Table4() *Table {
	t := &Table{
		ID:      "table4",
		Title:   "Average vertex degree at resolution DNi (Table 4)",
		Columns: []string{"Resolution", "VN", "RWP", "VNR"},
	}
	vn := l.Graph(l.VN(l.opts.VNSizes[len(l.opts.VNSizes)-1]))
	rwp := l.Graph(l.RWP(l.opts.RWPSizes[len(l.opts.RWPSizes)-1]))
	vnr := l.Graph(l.Taxi())
	for _, L := range []int{2, 4, 8, 16, 32} {
		cell := func(g *dn.Graph) string {
			avg, nodes := g.AvgDegree(L)
			if nodes == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", avg)
		}
		t.AddRow(fmt.Sprintf("DN%d", L), cell(vn), cell(rwp), cell(vnr))
	}
	t.AddNote("paper (Table 4): degree grows with resolution; VN4k 2.9→221, RWP40k 3.0→322, VNR much sparser (1.5→9.0)")
	return t
}

// graphQueryCost opens a ReachGraph-family registry backend with the given
// options and returns the mean normalized I/O per query.
func (l *Lab) graphQueryCost(d *trajectory.Dataset, backend string,
	opts streach.Options, work []queries.Query) float64 {

	io, _, _ := engineCost(l.OpenBackend(backend, d, opts), work)
	return io
}

// Fig12 sweeps the partition depth dp.
func (l *Lab) Fig12() *Table {
	t := &Table{
		ID:      "fig12",
		Title:   "ReachGraph I/O vs partition depth (Fig. 12)",
		Columns: []string{"Dataset", "Depth", "IO/query"},
	}
	for _, d := range l.comparePair() {
		work := l.Workload(d, 0)
		for _, depth := range []int{1, 2, 4, 8, 16, 32, 64} {
			io := l.graphQueryCost(d, "reachgraph",
				streach.Options{PartitionDepth: depth}, work)
			t.AddRow(d.Name, fmt.Sprint(depth), fmt.Sprintf("%.1f", io))
		}
	}
	t.AddNote("paper: deeper partitions buffer future vertices until partitions grow too large; optimum dp=32 (Fig. 12)")
	return t
}

// Fig13 compares the traversal strategies.
func (l *Lab) Fig13() *Table {
	t := &Table{
		ID:      "fig13",
		Title:   "ReachGraph traversal strategies (Fig. 13)",
		Columns: []string{"Dataset", "BM-BFS IO/q", "B-BFS IO/q", "E-DFS IO/q"},
	}
	for _, d := range l.comparePair() {
		work := l.Workload(d, 0)
		row := []string{d.Name}
		for _, backend := range []string{"reachgraph", "reachgraph-bbfs", "reachgraph-edfs"} {
			io := l.graphQueryCost(d, backend, streach.Options{}, work)
			row = append(row, fmt.Sprintf("%.1f", io))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: BM-BFS beats E-DFS by >80%% and B-BFS by >15%% on RWP20k and VN2k (Fig. 13)")
	return t
}
