// ReachGrid experiments: Table 2 (dataset sizes), Figure 8 (resolution
// optimization), Figure 9 (construction time) and the §6.1.2 SPJ
// comparison. Query measurements open the "reachgrid" and "spj" registry
// backends; only the construction-time figure builds the index directly.
package bench

import (
	"fmt"

	"streach"
	"streach/internal/reachgrid"
	"streach/internal/trajectory"
)

// Table1 prints the complexity comparison of the paper's Table 1. It is
// analytic — no measurement — and included so every paper artifact has a
// regenerator.
func (l *Lab) Table1() *Table {
	t := &Table{
		ID:      "table1",
		Title:   "Complexity comparison (analytic, Table 1)",
		Columns: []string{"", "GRAIL", "ReachGraph", "ReachGrid"},
	}
	t.AddRow("Query Time", "O(|O|·|Tp|·nr)", "O(|O|·|T'p| / (np·bp))", "O(|O|·|T'p| / (nc·bc))")
	t.AddRow("Construction Time", "O(d·|O|·|T|)", "O(|O|·|T|)", "O(|O|·|T|)")
	t.AddNote("|T'p| ≤ |Tp| is the smallest deciding prefix of the query interval;")
	t.AddNote("nc/np are objects per cell/partition, bc/bp cells/partitions per block,")
	t.AddNote("d the GRAIL label count, nr the mean per-instant reachable set size.")
	return t
}

// Table2 reports the raw volume of every generated dataset, the scale-down
// counterpart of the paper's Table 2 (RWP10k = 190 GB … VN4k = 92 GB).
func (l *Lab) Table2() *Table {
	t := &Table{
		ID:      "table2",
		Title:   "Data collection size (Table 2)",
		Columns: []string{"Dataset", "Objects", "Ticks", "Size"},
	}
	add := func(d *trajectory.Dataset) {
		t.AddRow(d.Name, fmt.Sprint(d.NumObjects()), fmt.Sprint(d.NumTicks()), fmtBytes(d.SizeBytes()))
	}
	for _, n := range l.opts.RWPSizes {
		add(l.RWP(n))
	}
	for _, n := range l.opts.VNSizes {
		add(l.VN(n))
	}
	add(l.Taxi())
	t.AddNote("paper: RWP10k/20k/40k = 190/380/760 GB, VN1k/2k/4k = 23/46/92 GB; sizes scale linearly with |O|·|T| there as here")
	return t
}

// gridQueryCost opens a "reachgrid" backend at the given resolutions and
// returns the mean normalized I/O per query of the wavefront-scaled
// workload (the regime in which resolution trade-offs are visible; see
// WavefrontTicks).
func (l *Lab) gridQueryCost(d *trajectory.Dataset, cellSize float64, bucketTicks int) float64 {
	e := l.OpenBackend("reachgrid", d, streach.Options{CellSize: cellSize, BucketTicks: bucketTicks})
	io, _, _ := engineCost(e, l.Workload(d, WavefrontTicks(d)))
	return io
}

// Fig8a sweeps the spatial resolution at fixed temporal resolution 20.
func (l *Lab) Fig8a() *Table {
	t := &Table{
		ID:      "fig8a",
		Title:   "ReachGrid I/O vs spatial grid resolution (Fig. 8a)",
		Columns: []string{"Dataset", "Cell size", "IO/query"},
	}
	for _, n := range l.opts.RWPSizes[len(l.opts.RWPSizes)-1:] {
		d := l.RWP(n)
		w := d.Env.Width()
		for _, frac := range []float64{64, 32, 16, 8, 4, 2, 1} {
			cell := w / frac
			io := l.gridQueryCost(d, cell, 20)
			t.AddRow(d.Name, fmt.Sprintf("%.0f m (W/%.0f)", cell, frac), fmt.Sprintf("%.1f", io))
		}
	}
	t.AddNote("paper: U-shaped curve with optimum RS=1024 m on RWP (Fig. 8a); the sweep")
	t.AddNote("spans too-fine grids (cell churn, random reads) to too-coarse (irrelevant segments)")
	return t
}

// Fig8b sweeps the temporal resolution at fixed spatial resolution W/8.
func (l *Lab) Fig8b() *Table {
	t := &Table{
		ID:      "fig8b",
		Title:   "ReachGrid I/O vs temporal grid resolution (Fig. 8b)",
		Columns: []string{"Dataset", "Bucket ticks", "IO/query"},
	}
	for _, n := range l.opts.RWPSizes[len(l.opts.RWPSizes)-1:] {
		d := l.RWP(n)
		for _, rt := range []int{5, 10, 20, 40, 80} {
			io := l.gridQueryCost(d, d.Env.Width()/4, rt)
			t.AddRow(d.Name, fmt.Sprint(rt), fmt.Sprintf("%.1f", io))
		}
	}
	t.AddNote("paper: optimum RT=20 on both dataset families (Fig. 8b)")
	return t
}

// Fig9 measures ReachGrid construction time while growing |T|.
func (l *Lab) Fig9() *Table {
	t := &Table{
		ID:      "fig9",
		Title:   "ReachGrid construction time vs |T| (Fig. 9)",
		Columns: []string{"Dataset", "|T|", "Build time"},
	}
	lengths := []int{l.opts.Ticks / 4, l.opts.Ticks / 2, l.opts.Ticks}
	for _, mk := range []func() *trajectory.Dataset{
		func() *trajectory.Dataset { return l.RWP(l.opts.RWPSizes[len(l.opts.RWPSizes)-1]) },
		func() *trajectory.Dataset { return l.VN(l.opts.VNSizes[len(l.opts.VNSizes)-1]) },
	} {
		full := mk()
		for _, ticks := range lengths {
			sub := prefixDataset(full, ticks)
			dur := timed(func() {
				if _, err := reachgrid.Build(sub, reachgrid.Params{}); err != nil {
					panic(err)
				}
			})
			t.AddRow(full.Name, fmt.Sprint(ticks), fmtDur(dur))
		}
	}
	t.AddNote("paper: construction < 4.3 h on 1.7–2M instants; grows ~linearly in |T| and |O| (Fig. 9)")
	return t
}

// SPJ compares guided ReachGrid expansion against the naïve
// join-everything pipeline (§6.1.2). Intervals are wavefront-scaled (see
// WavefrontTicks); the rows across dataset sizes show the gap widening with
// data volume, the effect behind the paper's ≥96% at 10k-40k objects.
func (l *Lab) SPJ() *Table {
	t := &Table{
		ID:      "spj",
		Title:   "ReachGrid vs naive SPJ (§6.1.2)",
		Columns: []string{"Dataset", "|Tp|", "ReachGrid IO/q", "SPJ IO/q", "Saved"},
	}
	var sets []*trajectory.Dataset
	for _, n := range l.opts.RWPSizes {
		sets = append(sets, l.RWP(n))
	}
	sets = append(sets, l.VN(l.opts.VNSizes[len(l.opts.VNSizes)-1]))
	for _, d := range sets {
		// The two backends share build parameters, so the data placement
		// is identical and the difference measured is purely the guided
		// expansion.
		opts := l.gridParams(d)
		grid := l.OpenBackend("reachgrid", d, opts)
		spj := l.OpenBackend("spj", d, opts)
		length := WavefrontTicks(d)
		work := l.Workload(d, length)
		guided, _, _ := engineCost(grid, work)
		naive, _, _ := engineCost(spj, work)
		t.AddRow(d.Name, fmt.Sprint(length), fmt.Sprintf("%.1f", guided),
			fmt.Sprintf("%.1f", naive), fmt.Sprintf("%.0f%%", 100*(1-guided/naive)))
	}
	t.AddNote("paper: ReachGrid outperforms SPJ by at least 96%% on all RWP and VN datasets;")
	t.AddNote("the margin needs the paper's data volume — SPJ costs scale with |O| while guided")
	t.AddNote("expansion scales with the infection wavefront (see the widening Saved column)")
	return t
}

// gridParams returns the ReachGrid resolutions the Figure 8 sweeps select
// at laptop scale: coarse cells that keep tens of objects per cell (the
// paper's 1024 m cells hold ~100 objects of RWP10k) and the paper's RT=20.
func (l *Lab) gridParams(d *trajectory.Dataset) streach.Options {
	return streach.Options{CellSize: d.Env.Width() / 4, BucketTicks: 20}
}

// prefixDataset restricts d to its first `ticks` instants (the growing-|T|
// experiments of Figures 9–11 share one generated trace).
func prefixDataset(d *trajectory.Dataset, ticks int) *trajectory.Dataset {
	if ticks >= d.NumTicks() {
		return d
	}
	sub := &trajectory.Dataset{
		Name:        fmt.Sprintf("%s[:%d]", d.Name, ticks),
		Env:         d.Env,
		TickSeconds: d.TickSeconds,
		ContactDist: d.ContactDist,
	}
	for i := range d.Trajs {
		tr := &d.Trajs[i]
		seg := tr.Slice(0, trajectory.Tick(ticks-1))
		sub.Trajs = append(sub.Trajs, trajectory.Trajectory{
			Object: tr.Object,
			Start:  seg.Start,
			Pos:    seg.Pos,
		})
	}
	return sub
}
