// Machine-readable benchmark output. Experiments that feed the perf
// trajectory (BENCH_*.json files and CI artifacts) emit flat Records; a
// Report wraps them with a schema tag and environment stamp so downstream
// tooling can validate and compare runs across commits.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"
)

// SchemaVersion tags every Report; consumers must reject unknown schemas.
const SchemaVersion = "streach-bench/v1"

// Record is one measurement point of a machine-readable experiment: one
// backend on one dataset at one worker count.
type Record struct {
	// Experiment is the experiment id (e.g. "concurrency").
	Experiment string `json:"experiment"`
	// Backend is the registry backend name.
	Backend string `json:"backend"`
	// Dataset names the dataset (e.g. "RWP400").
	Dataset string `json:"dataset"`
	// Workers is the EvaluateBatch pool size of this point.
	Workers int `json:"workers"`
	// Queries is the batch size evaluated.
	Queries int `json:"queries"`
	// QueriesPerSec is batch throughput: Queries / wall time.
	QueriesPerSec float64 `json:"queries_per_sec"`
	// P50LatencyUS and P95LatencyUS are per-query latency percentiles in
	// microseconds.
	P50LatencyUS float64 `json:"p50_latency_us"`
	P95LatencyUS float64 `json:"p95_latency_us"`
	// P99LatencyUS is the tail percentile of serving experiments, where
	// queueing makes the tail the story; zero for batch experiments.
	P99LatencyUS float64 `json:"p99_latency_us,omitempty"`
	// PagesRead is the number of pages fetched from the simulated disk
	// (pool misses); zero for memory-resident backends.
	PagesRead int64 `json:"pages_read"`
	// NormalizedIOPerQuery is the paper's I/O metric averaged per query.
	NormalizedIOPerQuery float64 `json:"normalized_io_per_query"`
	// CacheHitRate is buffer-pool hits / (hits + pages read).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// AppendsPerSec is the streaming experiment's ingest throughput:
	// feed instants appended per second of append wall time (zero for
	// batch experiments).
	AppendsPerSec float64 `json:"appends_per_sec,omitempty"`
	// SealedSegments is the number of immutable segments the streaming
	// engine had sealed by the end of the run (zero for batch
	// experiments).
	SealedSegments int `json:"sealed_segments,omitempty"`
	// SpeedupVs1Worker is this point's throughput over the same backend's
	// throughput at the lowest worker count swept (the 1-worker run when
	// the sweep includes one; that record reports 1.0).
	SpeedupVs1Worker float64 `json:"speedup_vs_1_worker"`
	// PageFormat is the on-page record layout of this point ("fixed" or
	// "varint-delta"); set by the codec ablation, empty elsewhere.
	PageFormat string `json:"page_format,omitempty"`
	// BytesPerPage is the mean payload bytes stored per 4 KiB page of the
	// index (page utilization under sub-page blob packing); set by the
	// codec ablation, zero elsewhere.
	BytesPerPage float64 `json:"bytes_per_page,omitempty"`
	// IndexPages is the index's on-disk footprint in pages; set by the
	// codec ablation, zero elsewhere.
	IndexPages int64 `json:"index_pages,omitempty"`
	// LateRate is the fraction of feed events delivered behind the frontier
	// (out of order); set by the compaction experiment and by streachload
	// runs with -late-frac, zero elsewhere.
	LateRate float64 `json:"late_rate,omitempty"`
	// LateEvents is the number of late adds actually absorbed into sealed
	// segments' delta logs during the run.
	LateEvents int64 `json:"late_events,omitempty"`
	// Compactions is the number of dirty segments re-sealed with their
	// deltas folded in during the run.
	Compactions int64 `json:"compactions,omitempty"`
	// DeltaDepth is the number of delta-log events still pending against
	// sealed segments at the end of the run (what compaction left behind).
	DeltaDepth int `json:"delta_depth,omitempty"`
	// CompactionPolicy names how the compaction experiment folded deltas:
	// "none" (let them accumulate), "threshold" (auto at CompactEvents), or
	// "manual" (periodic Compact calls); empty elsewhere.
	CompactionPolicy string `json:"compaction_policy,omitempty"`
	// Strategy labels the temporal search direction of the point: "forward"
	// (the slab planner's default sweep) or "bidir" (meet-in-the-middle
	// bidirectional search); set by the bidir experiment and by streachload,
	// empty elsewhere.
	Strategy string `json:"strategy,omitempty"`
	// ExpandedPerQuery is the mean contact-list entries expanded per query —
	// the work metric the bidirectional planner is built to shrink; set by
	// the bidir experiment and by streachload when the server reports it,
	// zero elsewhere.
	ExpandedPerQuery float64 `json:"expanded_per_query,omitempty"`
	// Semantics is the query class of a semantics-experiment point
	// ("earliest-arrival", "top-k", "filtered", "probabilistic" or
	// "monte-carlo"); empty elsewhere.
	Semantics string `json:"semantics,omitempty"`
	// Filtered reports whether the point's queries carried per-contact
	// predicates (duration/weight bounds or a registered filter); set by
	// the filtered experiment and by streachload's -min-duration.
	Filtered bool `json:"filtered,omitempty"`
	// MinDuration is the contact-duration floor (ticks) of a filtered
	// point; zero when no duration bound applied.
	MinDuration int `json:"min_duration,omitempty"`
	// Prob is the per-contact transmission probability of a probabilistic
	// point; zero for deterministic points.
	Prob float64 `json:"prob,omitempty"`
	// ProbThreshold is the reachability threshold τ of a probabilistic
	// point; set by the filtered experiment's τ sweep and by streachload's
	// -prob-threshold, zero elsewhere.
	ProbThreshold float64 `json:"prob_threshold,omitempty"`
	// MCTrials is the Monte-Carlo sample count of a monte-carlo point;
	// zero for exact evaluation.
	MCTrials int `json:"mc_trials,omitempty"`
	// MaxProbShortfall is the largest amount by which a Monte-Carlo
	// reliability estimate fell below the exact best-path probability
	// across the point's queries. Reliability is an upper bound on the
	// best single-path probability, so the shortfall measures pure
	// sampling error and must stay near zero; CI gates on it.
	MaxProbShortfall float64 `json:"max_prob_shortfall,omitempty"`
	// NativeSemantics reports whether every query of a semantics point was
	// answered in the backend's own traversal core (false: the explicit
	// oracle fallback); meaningful only when Semantics is set.
	NativeSemantics bool `json:"native_semantics,omitempty"`
	// Shards is the partition count of a sharded point; zero when the
	// engine is unsharded.
	Shards int `json:"shards,omitempty"`
	// Partitioner names the object-to-shard assignment of a sharded point
	// ("hash" or "spatial"); empty when unsharded.
	Partitioner string `json:"partitioner,omitempty"`
	// CrossShardRatio is the fraction of frontier contacts whose endpoints
	// live on different shards — the scatter-gather locality metric the
	// spatial partitioner is built to shrink; meaningful only when Shards
	// is set.
	CrossShardRatio float64 `json:"cross_shard_ratio,omitempty"`
	// ShardBuildMS is the wall time to cut the dataset and build every
	// per-shard index, in milliseconds; set by the sharding experiment,
	// zero elsewhere.
	ShardBuildMS float64 `json:"shard_build_ms,omitempty"`
}

// Report is the JSON document wrapping an experiment's records.
type Report struct {
	Schema      string   `json:"schema"`
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Records     []Record `json:"records"`
}

// WriteJSON writes recs as an indented Report document.
func WriteJSON(w io.Writer, recs []Record) error {
	rep := Report{
		Schema:      SchemaVersion,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Records:     recs,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteJSONFile writes recs to path, creating or truncating it.
func WriteJSONFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport parses and validates a Report document (the consumer side of
// the CI artifact pipeline).
func ReadReport(r io.Reader) (*Report, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: malformed report: %w", err)
	}
	if rep.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: unknown schema %q (want %q)", rep.Schema, SchemaVersion)
	}
	if len(rep.Records) == 0 {
		return nil, fmt.Errorf("bench: report has no records")
	}
	for i, rec := range rep.Records {
		if rec.Experiment == "" || rec.Backend == "" || rec.Dataset == "" {
			return nil, fmt.Errorf("bench: record %d missing identity: %+v", i, rec)
		}
		if rec.QueriesPerSec <= 0 || rec.Queries <= 0 {
			return nil, fmt.Errorf("bench: record %d has non-positive throughput: %+v", i, rec)
		}
	}
	return &rep, nil
}

// latencyPercentiles returns the p50 and p95 of ds in microseconds.
func latencyPercentiles(ds []time.Duration) (p50, p95 float64) {
	if len(ds) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i] < sorted[k] })
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(time.Microsecond)
	}
	return at(0.50), at(0.95)
}
