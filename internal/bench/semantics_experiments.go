// The semantics experiment: earliest-arrival and top-k transfer-decay
// queries across the registry backends, with cross-backend conformance
// against the oracle baked in — every answer a backend produces is checked
// against the ground-truth engine before it is counted, so the records
// double as a conformance certificate. Records carry the semantics kind
// and whether the backend evaluated natively or through the oracle
// fallback, feeding the machine-readable perf trajectory (BENCH_*.json).
package bench

import (
	"context"
	"fmt"
	"time"

	"streach"
)

// semanticsKinds are the query classes the experiment sweeps.
const (
	semKindArrival = "earliest-arrival"
	semKindTopK    = "top-k"
)

// SemanticsRecords measures earliest-arrival and top-k decay queries per
// selected backend on the middle RWP dataset, validating every answer
// against the oracle engine. The sweep runs once per Lab.
func (l *Lab) SemanticsRecords() []Record {
	if l.semRecs != nil {
		return l.semRecs
	}
	d := l.RWP(l.opts.RWPSizes[len(l.opts.RWPSizes)/2])
	work := l.Workload(d, 0)
	ctx := context.Background()
	oracle := l.OpenBackend("oracle", d, streach.Options{})

	// Top-k sources: the first few workload sources over a fixed interval.
	topkIv := streach.NewInterval(0, streach.Tick(d.NumTicks()-1))
	if n := WavefrontTicks(d); n < d.NumTicks() {
		topkIv = streach.NewInterval(0, streach.Tick(n-1))
	}

	var recs []Record
	for _, name := range l.opts.Backends {
		e := l.OpenBackend(name, d, streach.Options{})

		// Earliest arrival over the standard workload.
		var lats []time.Duration
		var pages, hits int64
		var normalized float64
		native := true
		for _, q := range work {
			r, err := e.EarliestArrival(ctx, q.Src, q.Dst, q.Interval)
			if err != nil {
				panic(fmt.Sprintf("bench: semantics %s on %v: %v", name, q, err))
			}
			ref, err := oracle.EarliestArrival(ctx, q.Src, q.Dst, q.Interval)
			if err != nil {
				panic(fmt.Sprintf("bench: semantics oracle on %v: %v", q, err))
			}
			if r.Reachable != ref.Reachable || (r.Reachable && r.Arrival != ref.Arrival) {
				panic(fmt.Sprintf("bench: semantics conformance: %s on %v: (reachable=%v, arrival=%d) vs oracle (%v, %d)",
					name, q, r.Reachable, r.Arrival, ref.Reachable, ref.Arrival))
			}
			lats = append(lats, r.Latency)
			pages += r.IO.RandomReads + r.IO.SequentialReads
			hits += r.IO.BufferHits
			normalized += r.IO.Normalized
			native = native && r.Native
		}
		recs = append(recs, semRecord(name, d.Name, semKindArrival, native, lats, pages, hits, normalized))

		// Top-k decay from a handful of sources.
		lats, pages, hits, normalized = nil, 0, 0, 0
		native = true
		srcs := len(work)
		if srcs > 8 {
			srcs = 8
		}
		for i := 0; i < srcs; i++ {
			src := work[i].Src
			r, err := e.TopKReachable(ctx, src, topkIv, l.opts.TopK, l.opts.Decay)
			if err != nil {
				panic(fmt.Sprintf("bench: top-k %s src=%d: %v", name, src, err))
			}
			ref, err := oracle.TopKReachable(ctx, src, topkIv, l.opts.TopK, l.opts.Decay)
			if err != nil {
				panic(fmt.Sprintf("bench: top-k oracle src=%d: %v", src, err))
			}
			if len(r.Items) != len(ref.Items) {
				panic(fmt.Sprintf("bench: top-k conformance: %s src=%d: %d items vs oracle %d",
					name, src, len(r.Items), len(ref.Items)))
			}
			for k := range ref.Items {
				if r.Items[k] != ref.Items[k] {
					panic(fmt.Sprintf("bench: top-k conformance: %s src=%d item %d: %+v vs oracle %+v",
						name, src, k, r.Items[k], ref.Items[k]))
				}
			}
			lats = append(lats, r.Latency)
			pages += r.IO.RandomReads + r.IO.SequentialReads
			hits += r.IO.BufferHits
			normalized += r.IO.Normalized
			native = native && r.Native
		}
		recs = append(recs, semRecord(name, d.Name, semKindTopK, native, lats, pages, hits, normalized))
	}
	l.semRecs = recs
	return recs
}

// semRecord assembles one semantics measurement point.
func semRecord(backend, dataset, kind string, native bool, lats []time.Duration, pages, hits int64, normalized float64) Record {
	var total time.Duration
	for _, d := range lats {
		total += d
	}
	if total <= 0 {
		total = time.Nanosecond
	}
	p50, p95 := latencyPercentiles(lats)
	hitRate := 0.0
	if hits+pages > 0 {
		hitRate = float64(hits) / float64(hits+pages)
	}
	return Record{
		Experiment:           "semantics",
		Backend:              backend,
		Dataset:              dataset,
		Workers:              1,
		Queries:              len(lats),
		QueriesPerSec:        float64(len(lats)) / total.Seconds(),
		P50LatencyUS:         p50,
		P95LatencyUS:         p95,
		PagesRead:            pages,
		NormalizedIOPerQuery: normalized / float64(len(lats)),
		CacheHitRate:         hitRate,
		Semantics:            kind,
		NativeSemantics:      native,
	}
}

// Semantics renders the semantics sweep as a table (the human-readable
// view of SemanticsRecords).
func (l *Lab) Semantics() *Table {
	t := &Table{
		ID:      "semantics",
		Title:   "Temporal semantics: earliest-arrival and top-k decay across backends",
		Columns: []string{"Backend", "Dataset", "Kind", "Native", "Queries", "q/s", "p50", "p95", "IO/q"},
	}
	for _, rec := range l.SemanticsRecords() {
		t.AddRow(
			rec.Backend, rec.Dataset, rec.Semantics,
			fmt.Sprint(rec.NativeSemantics),
			fmt.Sprint(rec.Queries),
			fmt.Sprintf("%.0f", rec.QueriesPerSec),
			fmt.Sprintf("%.0fµs", rec.P50LatencyUS),
			fmt.Sprintf("%.0fµs", rec.P95LatencyUS),
			fmt.Sprintf("%.1f", rec.NormalizedIOPerQuery),
		)
	}
	t.AddNote("every answer was validated against the oracle engine before being counted;")
	t.AddNote("native=false rows answered through the explicit oracle fallback (see README:")
	t.AddNote("ReachGraph is arrival-native but hop-agnostic; GRAIL and SPJ always fall back)")
	return t
}
