// The sharding experiment: scatter-gather coordinators ("shard:<K>:*")
// over the clustered-mobility preset, sweeping shard count and partitioner.
// Each point opens shard:<K>:<partitioner>:reachgraph over the same
// dataset, times the partition-and-build, and drives a steady-state
// large-set workload through it; its records (shards, partitioner,
// cross_shard_ratio, shard_build_ms, latency percentiles) feed the
// machine-readable perf trajectory (BENCH_shard.json) validated by CI.
package bench

import (
	"context"
	"fmt"
	"time"

	"streach"
)

// shardBase is the disk-resident index family every sharding point wraps,
// so the only variables are the shard count and the cut.
const shardBase = "reachgraph"

// shardPoints is the (K, partitioner) grid the experiment sweeps. K = 1
// is the unsharded baseline under both cuts (they coincide there, but
// both rows keep the series aligned for downstream tooling).
var shardPoints = []struct {
	shards      int
	partitioner string
}{
	{1, "hash"}, {2, "hash"}, {4, "hash"},
	{1, "spatial"}, {2, "spatial"}, {4, "spatial"},
}

// Clustered returns the cached clustered-mobility dataset the sharding
// experiment partitions: objects orbit per-cluster home discs with a
// rare roaming leg, so reachable sets stay cluster-local and a spatial
// cut can isolate almost all frontier traffic inside one shard. The
// preset is pinned (not scaled by Options) because its cluster count,
// roam rate and seed are what the CI cross-shard-ratio gate asserts on.
func (l *Lab) Clustered() *streach.Dataset {
	if l.clusteredDS == nil {
		l.clusteredDS = streach.GenerateClustered(streach.ClusteredOptions{
			NumObjects:  384,
			NumTicks:    288,
			NumClusters: 12,
			RoamProb:    0.002,
			Seed:        57,
		})
	}
	return l.clusteredDS
}

// ShardRecords sweeps shardPoints over the clustered preset and returns
// one Record per (K, partitioner) point. The workload is large
// ReachableSet queries (interval = a third of the time domain) over a
// rotating source mix; each engine gets one warm pass first so the
// measured pass sees steady-state per-shard pools and record caches —
// the serving regime the coordinator's resource split is built for. The
// sweep runs once per Lab.
func (l *Lab) ShardRecords() []Record {
	if l.shardRecs != nil {
		return l.shardRecs
	}
	ds := l.Clustered()
	iv := streach.NewInterval(0, streach.Tick(ds.NumTicks()/3))
	ctx := context.Background()
	nq := l.opts.Queries

	var recs []Record
	for _, pt := range shardPoints {
		backend := fmt.Sprintf("shard:%d:%s:%s", pt.shards, pt.partitioner, shardBase)
		var e streach.Engine
		build := timed(func() {
			var err error
			e, err = streach.Open(backend, ds, streach.Options{})
			if err != nil {
				panic(fmt.Sprintf("bench: open %s over %s: %v", backend, ds.Name(), err))
			}
		})
		src := func(i int) streach.ObjectID {
			return streach.ObjectID(i * 7 % ds.NumObjects())
		}
		for i := 0; i < nq; i++ { // warm pass
			if _, err := e.ReachableSet(ctx, src(i), iv); err != nil {
				panic(fmt.Sprintf("bench: sharding warmup %s: %v", backend, err))
			}
		}
		var pages, hits int64
		var normalized, expanded float64
		var lats []time.Duration
		start := time.Now()
		for i := 0; i < nq; i++ {
			r, err := e.ReachableSet(ctx, src(i), iv)
			if err != nil {
				panic(fmt.Sprintf("bench: sharding %s src %d: %v", backend, src(i), err))
			}
			lats = append(lats, r.Latency)
			pages += r.IO.RandomReads + r.IO.SequentialReads
			hits += r.IO.BufferHits
			normalized += r.IO.Normalized
			expanded += float64(len(r.Objects))
		}
		elapsed := time.Since(start)
		p50, p95 := latencyPercentiles(lats)
		hitRate := 0.0
		if hits+pages > 0 {
			hitRate = float64(hits) / float64(hits+pages)
		}
		st := e.Stats()
		recs = append(recs, Record{
			Experiment:           "sharding",
			Backend:              e.Name(),
			Dataset:              ds.Name(),
			Workers:              1,
			Queries:              nq,
			QueriesPerSec:        float64(nq) / elapsed.Seconds(),
			P50LatencyUS:         p50,
			P95LatencyUS:         p95,
			PagesRead:            pages,
			NormalizedIOPerQuery: normalized / float64(nq),
			CacheHitRate:         hitRate,
			ExpandedPerQuery:     expanded / float64(nq),
			Shards:               pt.shards,
			Partitioner:          pt.partitioner,
			CrossShardRatio:      st.CrossShardRatio,
			ShardBuildMS:         float64(build) / float64(time.Millisecond),
		})
	}
	l.shardRecs = recs
	return recs
}

// Sharding renders the scatter-gather sweep as a table (the
// human-readable view of ShardRecords).
func (l *Lab) Sharding() *Table {
	t := &Table{
		ID:      "sharding",
		Title:   "Sharded engines and scatter-gather, clustered mobility",
		Columns: []string{"Backend", "Part", "K", "Cross", "Build", "Set/q", "p50", "p95", "Speedup"},
	}
	recs := l.ShardRecords()
	base := map[string]float64{} // partitioner → its K=1 p50
	for _, rec := range recs {
		if rec.Shards == 1 {
			base[rec.Partitioner] = rec.P50LatencyUS
		}
	}
	var hash4, spatial4 Record
	for _, rec := range recs {
		speedup := "—"
		if b := base[rec.Partitioner]; b > 0 && rec.P50LatencyUS > 0 {
			speedup = fmt.Sprintf("%.2fx", b/rec.P50LatencyUS)
		}
		t.AddRow(
			rec.Backend, rec.Partitioner, fmt.Sprintf("%d", rec.Shards),
			fmt.Sprintf("%.3f", rec.CrossShardRatio),
			fmt.Sprintf("%.0fms", rec.ShardBuildMS),
			fmt.Sprintf("%.1f", rec.ExpandedPerQuery),
			fmt.Sprintf("%.0fµs", rec.P50LatencyUS),
			fmt.Sprintf("%.0fµs", rec.P95LatencyUS),
			speedup,
		)
		if rec.Shards == 4 {
			switch rec.Partitioner {
			case "hash":
				hash4 = rec
			case "spatial":
				spatial4 = rec
			}
		}
	}
	if hash4.Shards > 0 && spatial4.Shards > 0 {
		t.AddNote("cross-shard contact ratio at K=4: spatial %.3f vs hash %.3f — the Z-order",
			spatial4.CrossShardRatio, hash4.CrossShardRatio)
		t.AddNote("cut keeps each cluster's contacts inside one shard, so scatter rounds")
		t.AddNote("rarely hand frontier objects across the cut")
	}
	t.AddNote("speedup is each row's p50 against the same partitioner's K=1 point; the")
	t.AddNote("win is resource locality, not parallelism — each shard owns a private")
	t.AddNote("buffer pool and decoded-record cache sized to its region's working set")
	return t
}
