// The streaming experiment: append rate × query latency per backend. A
// LiveEngine ingests a position feed instant by instant — appends landing
// in the mutable tail segment, slabs sealing into immutable index segments
// as they close — while queries over the already-ingested prefix are
// interleaved throughout the run. The records feed the machine-readable
// perf trajectory (BENCH_*.json) alongside the concurrency sweep.
package bench

import (
	"context"
	"fmt"
	"time"

	"streach"
)

// streamQueryEvery interleaves one query per this many appended instants
// (after a short warm-up so early queries see a non-trivial prefix).
const (
	streamQueryEvery = 8
	streamWarmTicks  = 32
)

// liveCapable filters the selected backends down to the ones LiveEngine
// can seal slabs with; an empty intersection falls back to all of them.
func (l *Lab) liveCapable() []string {
	capable := map[string]bool{"oracle": true, "reachgraph": true, "reachgraph-mem": true}
	var out []string
	for _, name := range l.opts.Backends {
		if capable[name] {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		out = []string{"oracle", "reachgraph", "reachgraph-mem"}
	}
	return out
}

// StreamingRecords replays the middle RWP dataset as a live feed into a
// LiveEngine per live-capable backend, measuring ingest throughput
// (appends/sec, seal cost included) and the latency of queries running
// against the growing engine. The sweep runs once per Lab; the table view
// and the JSON reporter share its records.
func (l *Lab) StreamingRecords() []Record {
	if l.streamRecs != nil {
		return l.streamRecs
	}
	d := l.RWP(l.opts.RWPSizes[len(l.opts.RWPSizes)/2])
	numObjects, numTicks := d.NumObjects(), d.NumTicks()
	pub := l.Pub(d)
	work := l.Workload(d, 0)

	var recs []Record
	for _, name := range l.liveCapable() {
		le, err := streach.NewLiveEngine(name, numObjects, pub.Env(), pub.ContactDist(), streach.Options{})
		if err != nil {
			panic(fmt.Sprintf("bench: streaming open %s: %v", name, err))
		}
		ctx := context.Background()
		positions := make([]streach.Point, numObjects)
		var appendDur, queryDur time.Duration
		var lats []time.Duration
		var pages, hits int64
		var normalized float64
		qi := 0
		for tk := 0; tk < numTicks; tk++ {
			for o := range positions {
				positions[o] = pub.Position(streach.ObjectID(o), streach.Tick(tk))
			}
			t0 := time.Now()
			if err := le.AddInstant(positions); err != nil {
				panic(fmt.Sprintf("bench: streaming append %s@%d: %v", name, tk, err))
			}
			appendDur += time.Since(t0)
			if tk < streamWarmTicks || tk%streamQueryEvery != 0 {
				continue
			}
			// Clamp the workload query onto the already-ingested prefix.
			q := work[qi%len(work)]
			qi++
			if int(q.Interval.Hi) >= tk {
				span := streach.Tick(q.Interval.Hi - q.Interval.Lo)
				q.Interval.Hi = streach.Tick(tk - 1)
				q.Interval.Lo = q.Interval.Hi - span
				if q.Interval.Lo < 0 {
					q.Interval.Lo = 0
				}
			}
			t0 = time.Now()
			r, err := le.Reachable(ctx, q)
			if err != nil {
				panic(fmt.Sprintf("bench: streaming query %s %v: %v", name, q, err))
			}
			queryDur += time.Since(t0)
			lats = append(lats, r.Latency)
			pages += r.IO.RandomReads + r.IO.SequentialReads
			hits += r.IO.BufferHits
			normalized += r.IO.Normalized
		}
		if len(lats) == 0 {
			// Domains shorter than the warm-up never queried inside the
			// loop; run one query over the full ingested prefix so the
			// record's rate fields stay well-defined (JSON rejects NaN).
			q := work[0]
			q.Interval = streach.NewInterval(0, streach.Tick(numTicks-1))
			t0 := time.Now()
			r, err := le.Reachable(ctx, q)
			if err != nil {
				panic(fmt.Sprintf("bench: streaming query %s %v: %v", name, q, err))
			}
			queryDur += time.Since(t0)
			lats = append(lats, r.Latency)
			pages += r.IO.RandomReads + r.IO.SequentialReads
			hits += r.IO.BufferHits
			normalized += r.IO.Normalized
		}
		if queryDur <= 0 {
			queryDur = time.Nanosecond
		}
		if appendDur <= 0 {
			appendDur = time.Nanosecond
		}
		p50, p95 := latencyPercentiles(lats)
		hitRate := 0.0
		if hits+pages > 0 {
			hitRate = float64(hits) / float64(hits+pages)
		}
		recs = append(recs, Record{
			Experiment:           "streaming",
			Backend:              le.Name(),
			Dataset:              d.Name,
			Workers:              1,
			Queries:              len(lats),
			QueriesPerSec:        float64(len(lats)) / queryDur.Seconds(),
			P50LatencyUS:         p50,
			P95LatencyUS:         p95,
			PagesRead:            pages,
			NormalizedIOPerQuery: normalized / float64(len(lats)),
			CacheHitRate:         hitRate,
			AppendsPerSec:        float64(numTicks) / appendDur.Seconds(),
			SealedSegments:       le.NumSealedSegments(),
		})
	}
	l.streamRecs = recs
	return recs
}

// Streaming renders the live-ingest sweep as a table (the human-readable
// view of StreamingRecords).
func (l *Lab) Streaming() *Table {
	t := &Table{
		ID:      "streaming",
		Title:   "Live ingest: append rate × query latency (LiveEngine, tail + sealed segments)",
		Columns: []string{"Backend", "Dataset", "Appends/s", "Sealed", "Queries", "q/s", "p50", "p95", "IO/q"},
	}
	for _, rec := range l.StreamingRecords() {
		t.AddRow(
			rec.Backend, rec.Dataset,
			fmt.Sprintf("%.0f", rec.AppendsPerSec),
			fmt.Sprint(rec.SealedSegments),
			fmt.Sprint(rec.Queries),
			fmt.Sprintf("%.0f", rec.QueriesPerSec),
			fmt.Sprintf("%.0fµs", rec.P50LatencyUS),
			fmt.Sprintf("%.0fµs", rec.P95LatencyUS),
			fmt.Sprintf("%.1f", rec.NormalizedIOPerQuery),
		)
	}
	t.AddNote("the feed is replayed instant by instant into a LiveEngine; appends land in the")
	t.AddNote("mutable tail segment and slabs seal into immutable per-slab indexes (append cost")
	t.AddNote("includes sealing); queries interleave with ingestion over the completed prefix")
	return t
}
