// Incremental contact-network construction (§6.2.1.2): positions arrive one
// time instant at a time (e.g. from a live location feed), contacts open
// when a pair first joins and close when it parts. Network snapshots can be
// taken at any point; the builder keeps accepting instants afterwards.
package contact

import (
	"streach/internal/geo"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// Builder assembles a contact network instant by instant.
type Builder struct {
	numObjects   int
	numTicks     int
	open         map[stjoin.Pair]trajectory.Tick
	minDist      map[stjoin.Pair]float32 // closest approach of open contacts
	closed       []Contact
	pairsPerTick []int32
	active       map[stjoin.Pair]bool
}

// NewBuilder returns an empty builder for numObjects objects.
func NewBuilder(numObjects int) *Builder {
	return &Builder{
		numObjects: numObjects,
		open:       map[stjoin.Pair]trajectory.Tick{},
		minDist:    map[stjoin.Pair]float32{},
		active:     map[stjoin.Pair]bool{},
	}
}

// NumTicks returns the number of instants ingested so far.
func (b *Builder) NumTicks() int { return b.numTicks }

// NumObjects returns the number of objects the builder was created for.
func (b *Builder) NumObjects() int { return b.numObjects }

// ActivePairs returns the number of distinct contact pairs active at the
// most recently ingested instant (zero before the first instant).
func (b *Builder) ActivePairs() int { return len(b.active) }

// AddInstant ingests the contact pairs active at the next instant.
// Contacts absent from pairs that were previously open are closed with the
// previous instant as their validity end. Pair sets carry no positions, so
// contacts ingested this way have a zero Weight; AddPositions records the
// closest approach.
func (b *Builder) AddInstant(pairs []stjoin.Pair) {
	b.addInstant(pairs, nil)
}

func (b *Builder) addInstant(pairs []stjoin.Pair, dists []float32) {
	t := trajectory.Tick(b.numTicks)
	b.numTicks++
	for k := range b.active {
		delete(b.active, k)
	}
	var count int32
	for i, pr := range pairs {
		if pr.A == pr.B || b.active[pr] {
			continue
		}
		b.active[pr] = true
		count++
		wasOpen := true
		if _, isOpen := b.open[pr]; !isOpen {
			b.open[pr] = t
			wasOpen = false
		}
		if dists != nil {
			if d, seen := b.minDist[pr]; !wasOpen || !seen || dists[i] < d {
				b.minDist[pr] = dists[i]
			}
		}
	}
	b.pairsPerTick = append(b.pairsPerTick, count)
	for pr, start := range b.open {
		if !b.active[pr] {
			b.closed = append(b.closed, Contact{A: pr.A, B: pr.B,
				Validity: Interval{Lo: start, Hi: t - 1}, Weight: b.minDist[pr]})
			delete(b.open, pr)
			delete(b.minDist, pr)
		}
	}
}

// AddPositions joins the given per-object positions with joiner j and
// ingests the resulting pairs — the convenience for feeding raw location
// samples. positions[i] is object i's position at the new instant; each
// open contact remembers its closest approach as its Weight.
func (b *Builder) AddPositions(j *stjoin.Joiner, positions []geo.Point) {
	var pairs []stjoin.Pair
	var dists []float32
	j.Join(positions, func(x, y int) bool {
		pairs = append(pairs, stjoin.MakePair(trajectory.ObjectID(x), trajectory.ObjectID(y)))
		dists = append(dists, float32(positions[x].Dist(positions[y])))
		return true
	})
	b.addInstant(pairs, dists)
}

// Network snapshots the contact network over the instants ingested so far.
// Still-open contacts are closed at the last instant in the snapshot; the
// builder itself keeps them open and remains usable.
func (b *Builder) Network() *Network {
	net := &Network{
		NumObjects:   b.numObjects,
		NumTicks:     b.numTicks,
		Contacts:     append([]Contact(nil), b.closed...),
		pairsPerTick: append([]int32(nil), b.pairsPerTick...),
	}
	last := trajectory.Tick(b.numTicks) - 1
	for pr, start := range b.open {
		net.Contacts = append(net.Contacts, Contact{A: pr.A, B: pr.B,
			Validity: Interval{Lo: start, Hi: last}, Weight: b.minDist[pr]})
	}
	net.sortContacts()
	return net
}
