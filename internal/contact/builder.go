// Incremental contact-network construction (§6.2.1.2): positions arrive one
// time instant at a time (e.g. from a live location feed), contacts open
// when a pair first joins and close when it parts. Network snapshots can be
// taken at any point; the builder keeps accepting instants afterwards.
package contact

import (
	"streach/internal/geo"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// Builder assembles a contact network instant by instant.
type Builder struct {
	numObjects   int
	numTicks     int
	open         map[stjoin.Pair]trajectory.Tick
	closed       []Contact
	pairsPerTick []int32
	active       map[stjoin.Pair]bool
}

// NewBuilder returns an empty builder for numObjects objects.
func NewBuilder(numObjects int) *Builder {
	return &Builder{
		numObjects: numObjects,
		open:       map[stjoin.Pair]trajectory.Tick{},
		active:     map[stjoin.Pair]bool{},
	}
}

// NumTicks returns the number of instants ingested so far.
func (b *Builder) NumTicks() int { return b.numTicks }

// NumObjects returns the number of objects the builder was created for.
func (b *Builder) NumObjects() int { return b.numObjects }

// ActivePairs returns the number of distinct contact pairs active at the
// most recently ingested instant (zero before the first instant).
func (b *Builder) ActivePairs() int { return len(b.active) }

// AddInstant ingests the contact pairs active at the next instant.
// Contacts absent from pairs that were previously open are closed with the
// previous instant as their validity end.
func (b *Builder) AddInstant(pairs []stjoin.Pair) {
	t := trajectory.Tick(b.numTicks)
	b.numTicks++
	for k := range b.active {
		delete(b.active, k)
	}
	var count int32
	for _, pr := range pairs {
		if pr.A == pr.B || b.active[pr] {
			continue
		}
		b.active[pr] = true
		count++
		if _, isOpen := b.open[pr]; !isOpen {
			b.open[pr] = t
		}
	}
	b.pairsPerTick = append(b.pairsPerTick, count)
	for pr, start := range b.open {
		if !b.active[pr] {
			b.closed = append(b.closed, Contact{A: pr.A, B: pr.B, Validity: Interval{Lo: start, Hi: t - 1}})
			delete(b.open, pr)
		}
	}
}

// AddPositions joins the given per-object positions with joiner j and
// ingests the resulting pairs — the convenience for feeding raw location
// samples. positions[i] is object i's position at the new instant.
func (b *Builder) AddPositions(j *stjoin.Joiner, positions []geo.Point) {
	var pairs []stjoin.Pair
	j.Join(positions, func(x, y int) bool {
		pairs = append(pairs, stjoin.MakePair(trajectory.ObjectID(x), trajectory.ObjectID(y)))
		return true
	})
	b.AddInstant(pairs)
}

// Network snapshots the contact network over the instants ingested so far.
// Still-open contacts are closed at the last instant in the snapshot; the
// builder itself keeps them open and remains usable.
func (b *Builder) Network() *Network {
	net := &Network{
		NumObjects:   b.numObjects,
		NumTicks:     b.numTicks,
		Contacts:     append([]Contact(nil), b.closed...),
		pairsPerTick: append([]int32(nil), b.pairsPerTick...),
	}
	last := trajectory.Tick(b.numTicks) - 1
	for pr, start := range b.open {
		net.Contacts = append(net.Contacts, Contact{A: pr.A, B: pr.B, Validity: Interval{Lo: start, Hi: last}})
	}
	net.sortContacts()
	return net
}
