package contact

import (
	"testing"

	"streach/internal/geo"
	"streach/internal/mobility"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// TestBuilderMatchesExtract feeds a dataset instant by instant and compares
// the result with the batch extraction.
func TestBuilderMatchesExtract(t *testing.T) {
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: 40, NumTicks: 200, Seed: 131})
	want := Extract(d)

	b := NewBuilder(d.NumObjects())
	j := stjoin.NewJoiner(d.Env, d.ContactDist)
	positions := make([]geo.Point, d.NumObjects())
	for tick := trajectory.Tick(0); int(tick) < d.NumTicks(); tick++ {
		for i := range d.Trajs {
			positions[i] = d.Trajs[i].AtClamped(tick)
		}
		b.AddPositions(j, positions)
	}
	got := b.Network()

	if got.NumTicks != want.NumTicks || got.NumObjects != want.NumObjects {
		t.Fatalf("domain mismatch: got (%d, %d), want (%d, %d)",
			got.NumObjects, got.NumTicks, want.NumObjects, want.NumTicks)
	}
	if len(got.Contacts) != len(want.Contacts) {
		t.Fatalf("contact count: got %d, want %d", len(got.Contacts), len(want.Contacts))
	}
	for i := range got.Contacts {
		if got.Contacts[i] != want.Contacts[i] {
			t.Fatalf("contact %d: got %+v, want %+v", i, got.Contacts[i], want.Contacts[i])
		}
	}
	if got.ContactInstants() != want.ContactInstants() {
		t.Fatalf("contact instants: got %d, want %d", got.ContactInstants(), want.ContactInstants())
	}
}

// TestBuilderSnapshotThenContinue takes a mid-stream snapshot, keeps
// feeding, and checks both snapshots are self-consistent: the early one
// closes open contacts at its horizon, the late one matches batch
// extraction of the whole stream.
func TestBuilderSnapshotThenContinue(t *testing.T) {
	pairsAt := func(tk int) []stjoin.Pair {
		// Pair {0,1} in contact during [2, 7]; pair {1,2} during [5, 6].
		var out []stjoin.Pair
		if tk >= 2 && tk <= 7 {
			out = append(out, stjoin.Pair{A: 0, B: 1})
		}
		if tk >= 5 && tk <= 6 {
			out = append(out, stjoin.Pair{A: 1, B: 2})
		}
		return out
	}
	b := NewBuilder(3)
	for tk := 0; tk < 5; tk++ {
		b.AddInstant(pairsAt(tk))
	}
	early := b.Network()
	if early.NumTicks != 5 || len(early.Contacts) != 1 {
		t.Fatalf("early snapshot: ticks=%d contacts=%v", early.NumTicks, early.Contacts)
	}
	if got := early.Contacts[0].Validity; got != (Interval{Lo: 2, Hi: 4}) {
		t.Fatalf("early snapshot clipped validity: %v", got)
	}
	for tk := 5; tk < 10; tk++ {
		b.AddInstant(pairsAt(tk))
	}
	late := b.Network()
	if late.NumTicks != 10 || len(late.Contacts) != 2 {
		t.Fatalf("late snapshot: ticks=%d contacts=%v", late.NumTicks, late.Contacts)
	}
	if got := late.Contacts[0].Validity; got != (Interval{Lo: 2, Hi: 7}) {
		t.Fatalf("contact {0,1}: validity %v, want [2, 7]", got)
	}
	if got := late.Contacts[1].Validity; got != (Interval{Lo: 5, Hi: 6}) {
		t.Fatalf("contact {1,2}: validity %v, want [5, 6]", got)
	}
}

// TestBuilderIgnoresSelfAndDuplicatePairs hardens the ingestion path.
func TestBuilderIgnoresSelfAndDuplicatePairs(t *testing.T) {
	b := NewBuilder(2)
	b.AddInstant([]stjoin.Pair{{A: 0, B: 0}, {A: 0, B: 1}, {A: 0, B: 1}})
	net := b.Network()
	if len(net.Contacts) != 1 {
		t.Fatalf("contacts: %v", net.Contacts)
	}
	if net.ContactInstants() != 1 {
		t.Fatalf("instants: %d", net.ContactInstants())
	}
}
