// On-page contact blobs. A contact list serializes into one
// format-versioned blob (the same leading-format-byte convention as every
// index blob in streach), so disk-resident evaluators can store raw
// weighted contact logs on the simulated disk:
//
//   - The v1 fixed layout is four fixed-width int32 fields per contact
//     (A, B, Lo, Hi) — the layout from before the weight/duration sidecar
//     existed. It decodes forever; sidecar fields come back zero.
//   - The v2 varint layout delta-compresses the (Lo-sorted) contact list
//     and carries an optional weight/duration sidecar behind a flags byte:
//     blobs of unweighted networks stay byte-identical to pre-sidecar v2
//     blobs, and old blobs (flags 0) decode forever.
package contact

import (
	"fmt"
	"math"

	"streach/internal/pagefile"
	"streach/internal/trajectory"
)

// sidecarFlag marks a v2 blob carrying the per-contact weight/duration
// sidecar. Remaining flag bits are reserved and must be zero.
const sidecarFlag = 0x01

// AppendContactsBlob encodes cs onto e as one self-describing blob in the
// given page format. The list must be Network-normalized: A < B, non-empty
// validities, sorted by Validity.Lo — exactly what Network.Contacts holds
// (FromContacts normalizes arbitrary lists).
func AppendContactsBlob(e *pagefile.Encoder, cs []Contact, f pagefile.Format) {
	f = pagefile.NormalizeFormat(f)
	e.Format(f)
	if f == pagefile.FormatFixed {
		e.Uint32(uint32(len(cs)))
		for _, c := range cs {
			e.Int32(int32(c.A))
			e.Int32(int32(c.B))
			e.Int32(int32(c.Validity.Lo))
			e.Int32(int32(c.Validity.Hi))
		}
		return
	}
	var flags byte
	for _, c := range cs {
		if c.Weight != 0 || c.Dur != 0 {
			flags |= sidecarFlag
			break
		}
	}
	e.Byte(flags)
	e.Uvarint(uint64(len(cs)))
	prevLo := trajectory.Tick(0)
	prevA := trajectory.ObjectID(0)
	for _, c := range cs {
		e.Uvarint(uint64(c.Validity.Lo - prevLo)) // non-negative: Lo-sorted
		e.Varint(int64(c.A) - int64(prevA))
		e.Uvarint(uint64(c.B - c.A)) // positive: A < B
		e.Uvarint(uint64(c.Validity.Len() - 1))
		if flags&sidecarFlag != 0 {
			e.Uvarint(uint64(c.Dur))
			e.Uint32(math.Float32bits(c.Weight))
		}
		prevLo, prevA = c.Validity.Lo, c.A
	}
}

// DecodeContactsBlob reads back a blob written by AppendContactsBlob,
// dispatching on the leading format byte.
func DecodeContactsBlob(d *pagefile.Decoder) ([]Contact, error) {
	switch f := d.Format(); f {
	case pagefile.FormatFixed:
		n := int(d.Uint32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		if n < 0 || n*16 > d.Remaining() {
			return nil, fmt.Errorf("contact: implausible blob count %d with %d bytes left", n, d.Remaining())
		}
		cs := make([]Contact, 0, n)
		for i := 0; i < n; i++ {
			c := Contact{
				A: trajectory.ObjectID(d.Int32()),
				B: trajectory.ObjectID(d.Int32()),
			}
			c.Validity.Lo = trajectory.Tick(d.Int32())
			c.Validity.Hi = trajectory.Tick(d.Int32())
			cs = append(cs, c)
		}
		return cs, d.Err()
	case pagefile.FormatVarint:
		flags := d.Byte()
		if d.Err() == nil && flags&^byte(sidecarFlag) != 0 {
			return nil, fmt.Errorf("contact: unknown blob flags %#x", flags)
		}
		n := int(d.Uvarint())
		if d.Err() != nil {
			return nil, d.Err()
		}
		if n < 0 || n > d.Remaining() { // every contact costs ≥ 1 byte
			return nil, fmt.Errorf("contact: implausible blob count %d with %d bytes left", n, d.Remaining())
		}
		cs := make([]Contact, 0, n)
		prevLo := trajectory.Tick(0)
		prevA := int64(0)
		for i := 0; i < n; i++ {
			var c Contact
			c.Validity.Lo = prevLo + trajectory.Tick(d.Uvarint())
			a := prevA + d.Varint()
			c.A = trajectory.ObjectID(a)
			c.B = c.A + trajectory.ObjectID(d.Uvarint())
			c.Validity.Hi = c.Validity.Lo + trajectory.Tick(d.Uvarint())
			if flags&sidecarFlag != 0 {
				c.Dur = int32(d.Uvarint())
				c.Weight = math.Float32frombits(d.Uint32())
			}
			if d.Err() != nil {
				return nil, d.Err()
			}
			cs = append(cs, c)
			prevLo, prevA = c.Validity.Lo, a
		}
		return cs, d.Err()
	default:
		return nil, d.Err()
	}
}
