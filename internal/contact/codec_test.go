package contact

import (
	"testing"

	"streach/internal/pagefile"
	"streach/internal/trajectory"
)

func codecNetwork(contacts []Contact) *Network {
	maxObj, maxTick := 0, 0
	for _, c := range contacts {
		if int(c.A) > maxObj {
			maxObj = int(c.A)
		}
		if int(c.B) > maxObj {
			maxObj = int(c.B)
		}
		if int(c.Validity.Hi) > maxTick {
			maxTick = int(c.Validity.Hi)
		}
	}
	return FromContacts(maxObj+1, maxTick+1, contacts)
}

func TestContactsBlobRoundTrip(t *testing.T) {
	cases := map[string][]Contact{
		"empty": nil,
		"plain": {
			{A: 0, B: 1, Validity: Interval{Lo: 0, Hi: 4}},
			{A: 2, B: 5, Validity: Interval{Lo: 3, Hi: 3}},
			{A: 1, B: 2, Validity: Interval{Lo: 3, Hi: 9}},
		},
		"sidecar": {
			{A: 0, B: 1, Validity: Interval{Lo: 0, Hi: 4}, Weight: 12.5, Dur: 9},
			{A: 4, B: 7, Validity: Interval{Lo: 2, Hi: 2}, Weight: 0.25},
			{A: 1, B: 2, Validity: Interval{Lo: 8, Hi: 9}, Dur: 30},
		},
	}
	for name, contacts := range cases {
		net := codecNetwork(contacts)
		for _, f := range []pagefile.Format{pagefile.FormatFixed, pagefile.FormatVarint} {
			e := pagefile.NewEncoder(64)
			AppendContactsBlob(e, net.Contacts, f)
			got, err := DecodeContactsBlob(pagefile.NewDecoder(e.Bytes()))
			if err != nil {
				t.Fatalf("%s (%v): decode: %v", name, f, err)
			}
			if len(got) != len(net.Contacts) {
				t.Fatalf("%s (%v): %d contacts, want %d", name, f, len(got), len(net.Contacts))
			}
			for i, c := range net.Contacts {
				want := c
				if f == pagefile.FormatFixed {
					// v1 predates the sidecar: Weight/Dur decode as zero.
					want.Weight, want.Dur = 0, 0
				}
				if got[i] != want {
					t.Fatalf("%s (%v) contact %d: got %+v, want %+v", name, f, i, got[i], want)
				}
			}
		}
	}
}

// TestContactsBlobSidecarFlag pins the compatibility claim: a v2 blob of an
// unweighted contact list carries no sidecar flag, so its bytes (and any
// pre-sidecar v2 blob, which is the same byte string) decode forever.
func TestContactsBlobSidecarFlag(t *testing.T) {
	plain := codecNetwork([]Contact{{A: 0, B: 1, Validity: Interval{Lo: 1, Hi: 3}}})
	e := pagefile.NewEncoder(16)
	AppendContactsBlob(e, plain.Contacts, pagefile.FormatVarint)
	if flags := e.Bytes()[1]; flags != 0 {
		t.Fatalf("unweighted v2 blob has flags %#x, want 0", flags)
	}
	weighted := codecNetwork([]Contact{{A: 0, B: 1, Validity: Interval{Lo: 1, Hi: 3}, Weight: 2}})
	e.Reset()
	AppendContactsBlob(e, weighted.Contacts, pagefile.FormatVarint)
	if flags := e.Bytes()[1]; flags != sidecarFlag {
		t.Fatalf("weighted v2 blob has flags %#x, want %#x", flags, sidecarFlag)
	}
}

func TestContactsBlobCorrupt(t *testing.T) {
	for _, raw := range [][]byte{
		{},                 // no format byte
		{99},               // unknown format
		{2, 0x80},          // unknown flags
		{2, 0, 200},        // count beyond remaining bytes
		{1, 255, 255, 255}, // truncated fixed count
		{2, 0, 2, 1},       // truncated varint record
	} {
		if _, err := DecodeContactsBlob(pagefile.NewDecoder(raw)); err == nil {
			t.Errorf("decode(%v): want error, got none", raw)
		}
	}
}

func FuzzContactCodecRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 0, 5, 3, 4, 2, 2}, false)
	f.Add([]byte{0, 1, 0, 0, 9, 9, 1, 3, 200, 1}, true)
	f.Fuzz(func(t *testing.T, raw []byte, fixed bool) {
		// Derive a normalized contact list from the raw bytes, then demand
		// an exact round trip through both layouts.
		var contacts []Contact
		for i := 0; i+5 < len(raw); i += 6 {
			a := trajectory.ObjectID(raw[i] % 32)
			b := trajectory.ObjectID(raw[i+1] % 32)
			if a == b {
				b = a + 1
			}
			lo := trajectory.Tick(raw[i+2])
			c := Contact{
				A: a, B: b,
				Validity: Interval{Lo: lo, Hi: lo + trajectory.Tick(raw[i+3]%16)},
				Dur:      int32(raw[i+4] % 64),
			}
			if raw[i+5]%2 == 1 {
				c.Weight = float32(raw[i+5]) / 8
			}
			contacts = append(contacts, c)
		}
		net := codecNetwork(contacts)
		format := pagefile.FormatVarint
		if fixed {
			format = pagefile.FormatFixed
		}
		e := pagefile.NewEncoder(64)
		AppendContactsBlob(e, net.Contacts, format)
		got, err := DecodeContactsBlob(pagefile.NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(net.Contacts) {
			t.Fatalf("%d contacts, want %d", len(got), len(net.Contacts))
		}
		for i, c := range net.Contacts {
			want := c
			if format == pagefile.FormatFixed {
				want.Weight, want.Dur = 0, 0
			}
			if got[i] != want {
				t.Fatalf("contact %d: got %+v, want %+v", i, got[i], want)
			}
		}
		// Arbitrary bytes must fail cleanly, never panic.
		DecodeContactsBlob(pagefile.NewDecoder(raw))
	})
}
