// Package contact materializes the contact network C of §3: the set of all
// contacts between pairs of moving objects, each with a continuous validity
// interval, plus per-instant snapshot iteration (the G_t of the TEN model in
// §5.1.1) and the TEN size statistics reported in §6.2.1.1.
package contact

import (
	"fmt"
	"sort"

	"streach/internal/geo"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// Interval is a closed tick interval [Lo, Hi]. An interval with Hi < Lo is
// empty.
type Interval struct {
	Lo, Hi trajectory.Tick
}

// Len returns the number of instants in the interval (|Tp| in the paper).
func (iv Interval) Len() int {
	if iv.Hi < iv.Lo {
		return 0
	}
	return int(iv.Hi-iv.Lo) + 1
}

// Contains reports whether tick t lies inside the interval.
func (iv Interval) Contains(t trajectory.Tick) bool { return t >= iv.Lo && t <= iv.Hi }

// Overlaps reports whether the two closed intervals share an instant.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Len() > 0 && o.Len() > 0 && iv.Lo <= o.Hi && o.Lo <= iv.Hi
}

// Intersect returns the common sub-interval (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

func (iv Interval) String() string { return fmt.Sprintf("[%d, %d]", iv.Lo, iv.Hi) }

// Contact is one contact c = {A, B} with its validity interval (§3.1).
// A < B always. Two contacts between the same objects with disjoint
// validity intervals are distinct contacts, matching the paper's Figure 1
// (c1 and c4 share objects but are separate contacts).
//
// Weight and Dur are the optional per-contact sidecar of the filtered
// propagation extension (§7): Weight is the minimal pair distance observed
// over the contact's validity at extraction time (0 when the producer had
// no positions — incremental builders and event replays see only pair
// sets), and Dur preserves the length of the contact's original validity
// across Window clipping, so a min-duration predicate evaluated inside one
// time slab still sees the full contact, not the slab-local residual. A
// zero Dur means "Validity is the full validity"; use Duration to read the
// effective value.
type Contact struct {
	A, B     trajectory.ObjectID
	Validity Interval
	Weight   float32
	Dur      int32
}

// Duration returns the length in ticks of the contact's original validity:
// Dur when a Window split recorded it, the (unclipped) validity length
// otherwise.
func (c Contact) Duration() int32 {
	if c.Dur > 0 {
		return c.Dur
	}
	return int32(c.Validity.Len())
}

// Network is the contact network C of a dataset over the ticks [0, NumTicks).
type Network struct {
	NumObjects int
	NumTicks   int
	// Contacts is sorted by Validity.Lo, then A, then B.
	Contacts []Contact
	// pairsPerTick[t] counts the contacts active at tick t (used for TEN
	// statistics).
	pairsPerTick []int32
}

// Extract builds the contact network of d over all its ticks by sweeping a
// per-instant grid-hash join over time and merging consecutive co-location
// instants into validity intervals (the window trajectory self-join
// R(T) ⋈_dT R(T) of §4).
func Extract(d *trajectory.Dataset) *Network {
	numTicks := d.NumTicks()
	net := &Network{
		NumObjects:   d.NumObjects(),
		NumTicks:     numTicks,
		pairsPerTick: make([]int32, numTicks),
	}
	j := stjoin.NewJoiner(d.Env, d.ContactDist)
	open := make(map[stjoin.Pair]trajectory.Tick) // pair → validity start
	minDist := make(map[stjoin.Pair]float32)      // pair → closest approach
	active := make(map[stjoin.Pair]bool)
	pts := make([]geo.Point, 0, d.NumObjects())
	ids := make([]trajectory.ObjectID, 0, d.NumObjects())

	for t := trajectory.Tick(0); int(t) < numTicks; t++ {
		pts, ids = pts[:0], ids[:0]
		for i := range d.Trajs {
			if d.Trajs[i].Covers(t) {
				pts = append(pts, d.Trajs[i].At(t))
				ids = append(ids, d.Trajs[i].Object)
			}
		}
		for k := range active {
			delete(active, k)
		}
		j.Join(pts, func(a, b int) bool {
			pr := stjoin.MakePair(ids[a], ids[b])
			active[pr] = true
			dist := float32(pts[a].Dist(pts[b]))
			if _, isOpen := open[pr]; !isOpen {
				open[pr] = t
				minDist[pr] = dist
			} else if dist < minDist[pr] {
				minDist[pr] = dist
			}
			return true
		})
		net.pairsPerTick[t] = int32(len(active))
		// Close contacts that ended at t-1.
		for pr, start := range open {
			if !active[pr] {
				net.Contacts = append(net.Contacts, Contact{
					A: pr.A, B: pr.B,
					Validity: Interval{Lo: start, Hi: t - 1},
					Weight:   minDist[pr],
				})
				delete(open, pr)
				delete(minDist, pr)
			}
		}
	}
	last := trajectory.Tick(numTicks) - 1
	for pr, start := range open {
		net.Contacts = append(net.Contacts, Contact{
			A: pr.A, B: pr.B,
			Validity: Interval{Lo: start, Hi: last},
			Weight:   minDist[pr],
		})
	}
	net.sortContacts()
	return net
}

func (n *Network) sortContacts() {
	sort.Slice(n.Contacts, func(i, k int) bool {
		ci, ck := n.Contacts[i], n.Contacts[k]
		if ci.Validity.Lo != ck.Validity.Lo {
			return ci.Validity.Lo < ck.Validity.Lo
		}
		if ci.A != ck.A {
			return ci.A < ck.A
		}
		return ci.B < ck.B
	})
}

// FromContacts builds a Network directly from a contact list (used by tests
// and by the non-immediate extension, which synthesizes contacts rather than
// extracting them from trajectories). Contacts are copied and normalized.
func FromContacts(numObjects, numTicks int, contacts []Contact) *Network {
	net := &Network{
		NumObjects:   numObjects,
		NumTicks:     numTicks,
		pairsPerTick: make([]int32, numTicks),
	}
	for _, c := range contacts {
		if c.A > c.B {
			c.A, c.B = c.B, c.A
		}
		if c.Validity.Len() == 0 {
			continue
		}
		net.Contacts = append(net.Contacts, c)
		for t := c.Validity.Lo; t <= c.Validity.Hi; t++ {
			if t >= 0 && int(t) < numTicks {
				net.pairsPerTick[t]++
			}
		}
	}
	net.sortContacts()
	return net
}

// Window returns the sub-network over the ticks [lo, hi], re-based so the
// window starts at tick 0. Contacts overlapping the window are clipped to
// it; a contact spanning a window boundary therefore appears (split) in
// both adjacent windows, which preserves per-instant contact semantics —
// propagation over the window equals propagation over the same instants of
// the full network. This is the extraction primitive behind time-sliced
// index segments: each slab indexes Window(slabLo, slabHi).
func (n *Network) Window(lo, hi trajectory.Tick) *Network {
	if lo < 0 {
		lo = 0
	}
	if int(hi) >= n.NumTicks {
		hi = trajectory.Tick(n.NumTicks) - 1
	}
	if hi < lo {
		return &Network{NumObjects: n.NumObjects}
	}
	w := &Network{
		NumObjects:   n.NumObjects,
		NumTicks:     int(hi-lo) + 1,
		pairsPerTick: append([]int32(nil), n.pairsPerTick[lo:hi+1]...),
	}
	span := Interval{Lo: lo, Hi: hi}
	for _, c := range n.Contacts {
		v := c.Validity.Intersect(span)
		if v.Len() == 0 {
			continue
		}
		// A clipped contact records its original full duration so slab-local
		// predicate evaluation (min-duration filters) stays exact.
		dur := c.Dur
		if dur == 0 && v.Len() != c.Validity.Len() {
			dur = int32(c.Validity.Len())
		}
		w.Contacts = append(w.Contacts, Contact{
			A: c.A, B: c.B,
			Validity: Interval{Lo: v.Lo - lo, Hi: v.Hi - lo},
			Weight:   c.Weight,
			Dur:      dur,
		})
	}
	w.sortContacts()
	return w
}

// Filter returns the sub-network of the contacts satisfying keep — the
// projection primitive of predicate-filtered reachability: because a
// per-contact predicate depends only on the contact record, filtered
// propagation over n equals plain propagation over n.Filter(keep), so any
// exact evaluator becomes an exact filtered evaluator by running over the
// projection. The tick domain and object space are unchanged.
func (n *Network) Filter(keep func(Contact) bool) *Network {
	kept := make([]Contact, 0, len(n.Contacts))
	for _, c := range n.Contacts {
		if keep(c) {
			kept = append(kept, c)
		}
	}
	return FromContacts(n.NumObjects, n.NumTicks, kept)
}

// Snapshot visits every tick in [lo, hi] in increasing order with the set of
// contact pairs active at that tick (the edge set of G_t). The pairs slice
// is reused between calls; callers must not retain it. Returning false from
// visit stops the sweep.
func (n *Network) Snapshot(lo, hi trajectory.Tick, visit func(t trajectory.Tick, pairs []stjoin.Pair) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi >= trajectory.Tick(n.NumTicks) {
		hi = trajectory.Tick(n.NumTicks) - 1
	}
	if hi < lo {
		return
	}
	// Contacts are sorted by Validity.Lo: maintain an active list while
	// sweeping t. Start by locating the first contact that could overlap.
	var active []Contact
	idx := 0
	for ; idx < len(n.Contacts); idx++ {
		c := n.Contacts[idx]
		if c.Validity.Lo >= lo {
			break
		}
		if c.Validity.Hi >= lo {
			active = append(active, c)
		}
	}
	pairs := make([]stjoin.Pair, 0, 64)
	for t := lo; t <= hi; t++ {
		for idx < len(n.Contacts) && n.Contacts[idx].Validity.Lo == t {
			active = append(active, n.Contacts[idx])
			idx++
		}
		pairs = pairs[:0]
		w := 0
		for _, c := range active {
			if c.Validity.Hi >= t {
				active[w] = c
				w++
				pairs = append(pairs, stjoin.Pair{A: c.A, B: c.B})
			}
		}
		active = active[:w]
		if !visit(t, pairs) {
			return
		}
	}
}

// PairsAt returns a fresh slice of the contact pairs active at tick t.
func (n *Network) PairsAt(t trajectory.Tick) []stjoin.Pair {
	var out []stjoin.Pair
	n.Snapshot(t, t, func(_ trajectory.Tick, pairs []stjoin.Pair) bool {
		out = append([]stjoin.Pair(nil), pairs...)
		return true
	})
	return out
}

// NumContacts returns |C|.
func (n *Network) NumContacts() int { return len(n.Contacts) }

// ContactInstants returns the total number of (pair, tick) co-location
// instants, i.e. the number of contact edges in the TEN model.
func (n *Network) ContactInstants() int64 {
	var total int64
	for _, c := range n.pairsPerTick {
		total += int64(c)
	}
	return total
}

// TENStats describes the size of the Time Expanded Network representation
// of the contact network (§5.1.1): one vertex per object per instant,
// holding edges between consecutive instants of the same object, and one
// contact edge per co-location instant.
type TENStats struct {
	Vertices int64
	Edges    int64
}

// TEN returns the TEN model size, the "CN" baseline that §6.2.1.1 compares
// the reduced graph DN against.
func (n *Network) TEN() TENStats {
	v := int64(n.NumObjects) * int64(n.NumTicks)
	holding := int64(n.NumObjects) * int64(n.NumTicks-1)
	if n.NumTicks == 0 {
		holding = 0
	}
	return TENStats{
		Vertices: v,
		Edges:    holding + n.ContactInstants(),
	}
}
