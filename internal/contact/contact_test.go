package contact

import (
	"fmt"
	"math/rand"
	"testing"

	"streach/internal/geo"
	"streach/internal/mobility"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

func TestIntervalAlgebra(t *testing.T) {
	a := Interval{Lo: 2, Hi: 5}
	if a.Len() != 4 {
		t.Errorf("Len = %d, want 4", a.Len())
	}
	if !a.Contains(2) || !a.Contains(5) || a.Contains(1) || a.Contains(6) {
		t.Error("Contains boundaries wrong")
	}
	b := Interval{Lo: 5, Hi: 9}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("touching intervals must overlap (closed semantics)")
	}
	c := Interval{Lo: 6, Hi: 9}
	if a.Overlaps(c) {
		t.Error("disjoint intervals overlap")
	}
	empty := Interval{Lo: 3, Hi: 2}
	if empty.Len() != 0 || empty.Overlaps(a) || a.Overlaps(empty) {
		t.Error("empty interval misbehaves")
	}
	if got := a.Intersect(b); got != (Interval{Lo: 5, Hi: 5}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Intersect(c); got.Len() != 0 {
		t.Errorf("Intersect of disjoint = %v", got)
	}
}

func TestIntervalIntersectProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := Interval{Lo: trajectory.Tick(rng.Intn(50)), Hi: trajectory.Tick(rng.Intn(50))}
		b := Interval{Lo: trajectory.Tick(rng.Intn(50)), Hi: trajectory.Tick(rng.Intn(50))}
		got := a.Intersect(b)
		for tk := trajectory.Tick(0); tk < 50; tk++ {
			want := a.Contains(tk) && b.Contains(tk)
			if got.Contains(tk) != want {
				t.Fatalf("Intersect(%v, %v) wrong at %d", a, b, tk)
			}
		}
	}
}

// figure1Dataset reproduces the paper's Figure 1 contact pattern directly as
// a contact list: c1={o1,o2}@[0,0], c2={o2,o4}@[1,1], c3={o3,o4}@[1,2],
// c4={o1,o2}@[2,3]. (Objects renumbered to 0-based.)
func figure1Network() *Network {
	return FromContacts(4, 4, []Contact{
		{A: 0, B: 1, Validity: Interval{0, 0}},
		{A: 1, B: 3, Validity: Interval{1, 1}},
		{A: 2, B: 3, Validity: Interval{1, 2}},
		{A: 0, B: 1, Validity: Interval{2, 3}},
	})
}

func TestFromContactsAndSnapshot(t *testing.T) {
	n := figure1Network()
	if n.NumContacts() != 4 {
		t.Fatalf("NumContacts = %d", n.NumContacts())
	}
	want := map[trajectory.Tick][]stjoin.Pair{
		0: {{A: 0, B: 1}},
		1: {{A: 1, B: 3}, {A: 2, B: 3}},
		2: {{A: 2, B: 3}, {A: 0, B: 1}},
		3: {{A: 0, B: 1}},
	}
	n.Snapshot(0, 3, func(tk trajectory.Tick, pairs []stjoin.Pair) bool {
		w := want[tk]
		if len(pairs) != len(w) {
			t.Fatalf("t=%d: pairs = %v, want %v", tk, pairs, w)
		}
		seen := make(map[stjoin.Pair]bool)
		for _, p := range pairs {
			seen[p] = true
		}
		for _, p := range w {
			if !seen[p] {
				t.Fatalf("t=%d: missing pair %v", tk, p)
			}
		}
		return true
	})
}

func TestSnapshotEarlyStopAndClamping(t *testing.T) {
	n := figure1Network()
	visits := 0
	n.Snapshot(-10, 100, func(tk trajectory.Tick, _ []stjoin.Pair) bool {
		visits++
		return visits < 2
	})
	if visits != 2 {
		t.Fatalf("visits = %d, want 2 (early stop)", visits)
	}
	// Sweep starting mid-way must include contacts opened earlier.
	got := n.PairsAt(2)
	if len(got) != 2 {
		t.Fatalf("PairsAt(2) = %v", got)
	}
}

func TestTENStats(t *testing.T) {
	n := figure1Network()
	ten := n.TEN()
	if ten.Vertices != 16 {
		t.Errorf("TEN vertices = %d, want 16", ten.Vertices)
	}
	// Holding edges 4*3=12, contact instants 1+2+2+1=6.
	if ten.Edges != 18 {
		t.Errorf("TEN edges = %d, want 18", ten.Edges)
	}
	if n.ContactInstants() != 6 {
		t.Errorf("ContactInstants = %d, want 6", n.ContactInstants())
	}
}

func TestExtractSimple(t *testing.T) {
	// Two objects approach, touch during ticks 2-3, separate; a third never
	// comes close.
	mk := func(xs ...float64) []geo.Point {
		ps := make([]geo.Point, len(xs))
		for i, x := range xs {
			ps[i] = geo.Point{X: x, Y: 0}
		}
		return ps
	}
	d := &trajectory.Dataset{
		Name:        "t",
		Env:         geo.NewRect(geo.Point{X: 0, Y: -10}, geo.Point{X: 100, Y: 10}),
		TickSeconds: 1,
		ContactDist: 5,
		Trajs: []trajectory.Trajectory{
			{Object: 0, Pos: mk(0, 0, 0, 0, 0)},
			{Object: 1, Pos: mk(20, 10, 4, 3, 30)},
			{Object: 2, Pos: mk(80, 80, 80, 80, 80)},
		},
	}
	n := Extract(d)
	if n.NumContacts() != 1 {
		t.Fatalf("contacts = %+v", n.Contacts)
	}
	c := n.Contacts[0]
	if c.A != 0 || c.B != 1 || c.Validity != (Interval{Lo: 2, Hi: 3}) {
		t.Fatalf("contact = %+v", c)
	}
}

func TestExtractSplitsInterruptedContacts(t *testing.T) {
	mk := func(xs ...float64) []geo.Point {
		ps := make([]geo.Point, len(xs))
		for i, x := range xs {
			ps[i] = geo.Point{X: x, Y: 0}
		}
		return ps
	}
	d := &trajectory.Dataset{
		Name:        "t",
		Env:         geo.NewRect(geo.Point{X: 0, Y: -10}, geo.Point{X: 100, Y: 10}),
		TickSeconds: 1,
		ContactDist: 5,
		Trajs: []trajectory.Trajectory{
			{Object: 0, Pos: mk(0, 0, 0, 0, 0)},
			{Object: 1, Pos: mk(2, 50, 2, 2, 50)}, // in, out, in-in, out
		},
	}
	n := Extract(d)
	if n.NumContacts() != 2 {
		t.Fatalf("contacts = %+v", n.Contacts)
	}
	if n.Contacts[0].Validity != (Interval{Lo: 0, Hi: 0}) ||
		n.Contacts[1].Validity != (Interval{Lo: 2, Hi: 3}) {
		t.Fatalf("validities = %v, %v", n.Contacts[0].Validity, n.Contacts[1].Validity)
	}
}

func TestExtractContactRunsToEnd(t *testing.T) {
	mk := func(xs ...float64) []geo.Point {
		ps := make([]geo.Point, len(xs))
		for i, x := range xs {
			ps[i] = geo.Point{X: x, Y: 0}
		}
		return ps
	}
	d := &trajectory.Dataset{
		Name:        "t",
		Env:         geo.NewRect(geo.Point{X: 0, Y: -10}, geo.Point{X: 100, Y: 10}),
		TickSeconds: 1,
		ContactDist: 5,
		Trajs: []trajectory.Trajectory{
			{Object: 0, Pos: mk(0, 0, 0)},
			{Object: 1, Pos: mk(50, 2, 2)},
		},
	}
	n := Extract(d)
	if n.NumContacts() != 1 || n.Contacts[0].Validity != (Interval{Lo: 1, Hi: 2}) {
		t.Fatalf("contacts = %+v", n.Contacts)
	}
}

func TestExtractMatchesBruteForceOnRWP(t *testing.T) {
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: 60, NumTicks: 80, Seed: 11})
	n := Extract(d)
	// Brute-force per-instant pair sets must equal snapshot pair sets.
	for tk := trajectory.Tick(0); int(tk) < d.NumTicks(); tk += 7 {
		want := make(map[stjoin.Pair]bool)
		for i := 0; i < d.NumObjects(); i++ {
			for k := i + 1; k < d.NumObjects(); k++ {
				if d.Trajs[i].At(tk).Dist(d.Trajs[k].At(tk)) <= d.ContactDist {
					want[stjoin.Pair{A: trajectory.ObjectID(i), B: trajectory.ObjectID(k)}] = true
				}
			}
		}
		got := n.PairsAt(tk)
		if len(got) != len(want) {
			t.Fatalf("t=%d: %d pairs, want %d", tk, len(got), len(want))
		}
		for _, p := range got {
			if !want[p] {
				t.Fatalf("t=%d: unexpected pair %v", tk, p)
			}
		}
	}
}

func TestValidityIntervalsAreMaximalAndDisjoint(t *testing.T) {
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: 50, NumTicks: 60, Seed: 13})
	n := Extract(d)
	byPair := make(map[stjoin.Pair][]Interval)
	for _, c := range n.Contacts {
		byPair[stjoin.Pair{A: c.A, B: c.B}] = append(byPair[stjoin.Pair{A: c.A, B: c.B}], c.Validity)
	}
	for pr, ivs := range byPair {
		for i := 0; i < len(ivs); i++ {
			for k := i + 1; k < len(ivs); k++ {
				a, b := ivs[i], ivs[k]
				if a.Lo > b.Lo {
					a, b = b, a
				}
				if a.Hi+1 >= b.Lo {
					t.Fatalf("pair %v has mergeable/overlapping intervals %v and %v", pr, a, b)
				}
			}
		}
	}
}

func TestFromContactsNormalizes(t *testing.T) {
	n := FromContacts(3, 5, []Contact{
		{A: 2, B: 0, Validity: Interval{1, 2}}, // reversed pair
		{A: 0, B: 1, Validity: Interval{4, 3}}, // empty: dropped
	})
	if n.NumContacts() != 1 {
		t.Fatalf("contacts = %+v", n.Contacts)
	}
	if n.Contacts[0].A != 0 || n.Contacts[0].B != 2 {
		t.Fatalf("pair not normalized: %+v", n.Contacts[0])
	}
}

// TestWindowPreservesInstantSemantics checks the windowed-extraction
// primitive behind time-sliced segments: every instant of a window exposes
// exactly the contact pairs the full network exposes at the corresponding
// global instant, including contacts split at window boundaries.
func TestWindowPreservesInstantSemantics(t *testing.T) {
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: 25, NumTicks: 120, Seed: 7})
	net := Extract(d)
	for _, span := range []Interval{
		{Lo: 0, Hi: 39},
		{Lo: 40, Hi: 79},
		{Lo: 35, Hi: 84}, // straddles contacts mid-validity
		{Lo: 110, Hi: 119},
		{Lo: 100, Hi: 500}, // clamped at the domain end
	} {
		win := net.Window(span.Lo, span.Hi)
		lo := span.Lo
		hi := span.Hi
		if int(hi) >= net.NumTicks {
			hi = trajectory.Tick(net.NumTicks) - 1
		}
		if win.NumTicks != int(hi-lo)+1 || win.NumObjects != net.NumObjects {
			t.Fatalf("window %v dims: %d ticks, %d objects", span, win.NumTicks, win.NumObjects)
		}
		for tk := lo; tk <= hi; tk++ {
			want := net.PairsAt(tk)
			got := win.PairsAt(tk - lo)
			if len(want) != len(got) {
				t.Fatalf("window %v tick %d: %d pairs, want %d", span, tk, len(got), len(want))
			}
			seen := make(map[stjoin.Pair]bool, len(want))
			for _, p := range want {
				seen[p] = true
			}
			for _, p := range got {
				if !seen[p] {
					t.Fatalf("window %v tick %d: unexpected pair %v", span, tk, p)
				}
			}
		}
		if err := checkSorted(win); err != nil {
			t.Fatalf("window %v: %v", span, err)
		}
	}
	if empty := net.Window(30, 20); empty.NumTicks != 0 || len(empty.Contacts) != 0 {
		t.Fatal("inverted window should be empty")
	}
}

// checkSorted verifies the Contacts sort invariant (by Lo, then A, then B).
func checkSorted(n *Network) error {
	for i := 1; i < len(n.Contacts); i++ {
		a, b := n.Contacts[i-1], n.Contacts[i]
		if a.Validity.Lo > b.Validity.Lo ||
			(a.Validity.Lo == b.Validity.Lo && (a.A > b.A || (a.A == b.A && a.B > b.B))) {
			return fmt.Errorf("contacts %d and %d out of order", i-1, i)
		}
	}
	return nil
}
