// Contact events: the unit of real-feed ingestion. Extract and Builder
// consume positions in strict tick order; an Event instead names one
// (pair, tick) co-location instant directly — possibly late, duplicated,
// or retracting an instant ingested earlier — and ApplyEvents folds a
// batch of them into an existing network. This is the patch primitive of
// the segment delta log: a sealed slab's network plus its pending events
// yields the corrected slab, without touching the sealed index until a
// compaction rebuilds it.
package contact

import (
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// Event is one contact-instant mutation: objects A and B were within
// contact range at tick Tick (Retract false), or that observation is
// withdrawn (Retract true — a privacy delete or bad-data correction).
type Event struct {
	Tick    trajectory.Tick
	A, B    trajectory.ObjectID
	Retract bool
}

// EventCounts tallies what a batch of events did when applied.
type EventCounts struct {
	// Applied counts adds landing on an instant where the pair was not
	// already in contact; Duplicates counts adds where it was.
	Applied, Duplicates int
	// Retracted counts retractions that removed a live contact instant;
	// Misses counts retractions of instants holding no such contact.
	Retracted, Misses int
}

// ApplyEvents returns a copy of n with events folded in. Event ticks are
// local to n and must lie in [0, NumTicks); events are applied in slice
// order within each tick, so an add followed by a retraction of the same
// pair at the same tick cancels out. The second result is the effective
// subset of events — duplicates and misses removed — chosen so that
// re-applying it to n in order reproduces the same network. n itself is
// never mutated.
func (n *Network) ApplyEvents(events []Event) (*Network, []Event, EventCounts) {
	byTick := make(map[trajectory.Tick][]Event, len(events))
	for _, ev := range events {
		if ev.A > ev.B {
			ev.A, ev.B = ev.B, ev.A
		}
		byTick[ev.Tick] = append(byTick[ev.Tick], ev)
	}
	b := NewBuilder(n.NumObjects)
	var kept []Event
	var counts EventCounts
	set := make(map[stjoin.Pair]bool)
	out := make([]stjoin.Pair, 0, 64)
	n.Snapshot(0, trajectory.Tick(n.NumTicks)-1, func(t trajectory.Tick, pairs []stjoin.Pair) bool {
		evs := byTick[t]
		if len(evs) == 0 {
			b.AddInstant(pairs)
			return true
		}
		clear(set)
		for _, pr := range pairs {
			set[pr] = true
		}
		for _, ev := range evs {
			pr := stjoin.Pair{A: ev.A, B: ev.B}
			switch {
			case !ev.Retract && set[pr]:
				counts.Duplicates++
			case !ev.Retract:
				set[pr] = true
				counts.Applied++
				kept = append(kept, ev)
			case set[pr]:
				delete(set, pr)
				counts.Retracted++
				kept = append(kept, ev)
			default:
				counts.Misses++
			}
		}
		out = out[:0]
		for pr := range set {
			out = append(out, pr)
		}
		b.AddInstant(out)
		return true
	})
	return b.Network(), kept, counts
}
