package contact

import (
	"testing"
	"testing/quick"

	"streach/internal/trajectory"
)

// qi maps arbitrary int16 pairs onto small intervals so that empty,
// single-instant and overlapping cases all occur frequently.
func qi(a, b int16) Interval {
	lo := trajectory.Tick(int(a) % 64)
	hi := trajectory.Tick(int(b) % 64)
	return Interval{Lo: lo, Hi: hi}
}

func TestQuickIntersectCommutative(t *testing.T) {
	f := func(a, b, c, d int16) bool {
		x, y := qi(a, b), qi(c, d)
		got, want := x.Intersect(y), y.Intersect(x)
		// Empty intervals may differ in representation; compare emptiness
		// and bounds otherwise.
		if got.Len() == 0 && want.Len() == 0 {
			return true
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectIdempotentAndBounded(t *testing.T) {
	f := func(a, b, c, d int16) bool {
		x, y := qi(a, b), qi(c, d)
		z := x.Intersect(y)
		if z.Len() == 0 {
			return true
		}
		// The intersection is inside both operands and intersecting again
		// changes nothing.
		return z.Lo >= x.Lo && z.Hi <= x.Hi &&
			z.Lo >= y.Lo && z.Hi <= y.Hi &&
			z.Intersect(x) == z && z.Intersect(y) == z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOverlapsIffNonEmptyIntersection(t *testing.T) {
	f := func(a, b, c, d int16) bool {
		x, y := qi(a, b), qi(c, d)
		return x.Overlaps(y) == (x.Intersect(y).Len() > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickContainsConsistent(t *testing.T) {
	f := func(a, b int16, tt uint8) bool {
		x := qi(a, b)
		tk := trajectory.Tick(tt % 64)
		want := x.Len() > 0 && tk >= x.Lo && tk <= x.Hi
		if x.Contains(tk) != want {
			return false
		}
		// A contained tick means the singleton interval overlaps.
		if want && !x.Overlaps(Interval{Lo: tk, Hi: tk}) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLenMatchesIteration(t *testing.T) {
	f := func(a, b int16) bool {
		x := qi(a, b)
		n := 0
		for tk := x.Lo; tk <= x.Hi; tk++ {
			n++
			if n > 200 {
				return false
			}
		}
		if x.Hi < x.Lo {
			n = 0
		}
		return n == x.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
