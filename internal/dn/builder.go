// Incremental construction (§6.2.1.2): the paper notes that the contact
// network "can be constructed incrementally over time by acquiring the
// objects positions at new time instances and appending corresponding new
// vertices and edges". The run-merged reduction is inherently a time sweep,
// so Builder exposes exactly that: feed the contact pairs of one instant at
// a time and snapshot the graph whenever needed. Build is the batch
// convenience over it.
package dn

import (
	"streach/internal/contact"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// Builder constructs the reduced graph one time instant at a time.
type Builder struct {
	g *Graph

	parent  []int32
	size    []int32
	prevRun []NodeID

	groupOf    []int32
	groupEpoch []int64
	epoch      int64
	groups     [][]trajectory.ObjectID
	groupRoots []int32
	srcSet     []NodeID
}

// NewBuilder returns a builder for numObjects objects with an empty time
// domain.
func NewBuilder(numObjects int) *Builder {
	b := &Builder{
		g: &Graph{
			NumObjects:   numObjects,
			runsByObject: make([][]NodeID, numObjects),
		},
		parent:     make([]int32, numObjects),
		size:       make([]int32, numObjects),
		prevRun:    make([]NodeID, numObjects),
		groupOf:    make([]int32, numObjects),
		groupEpoch: make([]int64, numObjects),
		srcSet:     make([]NodeID, 0, 8),
	}
	for i := range b.prevRun {
		b.prevRun[i] = Invalid
	}
	return b
}

// NumTicks returns the number of instants fed so far.
func (b *Builder) NumTicks() int { return b.g.NumTicks }

// AddInstant appends the next time instant, whose contact graph G_t has the
// given edge set. Components unchanged since the previous instant extend
// their run; changed components open new run nodes wired to the runs their
// members came from.
func (b *Builder) AddInstant(pairs []stjoin.Pair) {
	g := b.g
	t := trajectory.Tick(g.NumTicks)
	g.NumTicks++
	n := g.NumObjects
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		b.parent[i] = int32(i)
		b.size[i] = 1
	}
	for _, pr := range pairs {
		ra, rb := b.find(int32(pr.A)), b.find(int32(pr.B))
		if ra == rb {
			continue
		}
		if b.size[ra] < b.size[rb] {
			ra, rb = rb, ra
		}
		b.parent[rb] = ra
		b.size[ra] += b.size[rb]
	}
	// Group objects by root in order of first appearance: objects are
	// scanned in ascending ID order, so groups are deterministic.
	b.epoch++
	b.groups = b.groups[:0]
	b.groupRoots = b.groupRoots[:0]
	for o := int32(0); o < int32(n); o++ {
		r := b.find(o)
		if b.groupEpoch[r] != b.epoch {
			b.groupEpoch[r] = b.epoch
			b.groupOf[r] = int32(len(b.groups))
			b.groups = append(b.groups, nil)
			b.groupRoots = append(b.groupRoots, r)
		}
		gi := b.groupOf[r]
		b.groups[gi] = append(b.groups[gi], trajectory.ObjectID(o))
	}
	for gi := range b.groups {
		members := b.groups[gi]
		r := b.prevRun[members[0]]
		if r != Invalid && len(g.Nodes[r].Members) == len(members) && sameRun(b.prevRun, members, r) {
			// The component is unchanged: extend the run.
			g.Nodes[r].End = t
			b.groups[gi] = nil // member slice stays pooled
			continue
		}
		// New run node, wired to the distinct previous runs of its members.
		id := NodeID(len(g.Nodes))
		node := Node{Start: t, End: t, Members: members}
		b.srcSet = b.srcSet[:0]
		for _, m := range members {
			pr := b.prevRun[m]
			if pr == Invalid {
				continue
			}
			dup := false
			for _, s := range b.srcSet {
				if s == pr {
					dup = true
					break
				}
			}
			if !dup {
				b.srcSet = append(b.srcSet, pr)
			}
		}
		g.Nodes = append(g.Nodes, node)
		for _, s := range b.srcSet {
			g.Nodes[s].Out = append(g.Nodes[s].Out, id)
			g.Nodes[id].In = append(g.Nodes[id].In, s)
		}
		for _, m := range members {
			b.prevRun[m] = id
			g.runsByObject[m] = append(g.runsByObject[m], id)
		}
		b.groups[gi] = nil // member slice now owned by the node
	}
}

// AppendNetwork feeds every instant of net's time domain starting at the
// builder's current tick; net's instants [from, NumTicks) are appended. It
// is the incremental-ingestion entry point: extract contacts for a new
// stretch of trajectory data, then append it.
func (b *Builder) AppendNetwork(net *contact.Network, from trajectory.Tick) {
	if int(from) >= net.NumTicks {
		return
	}
	net.Snapshot(from, trajectory.Tick(net.NumTicks-1), func(_ trajectory.Tick, pairs []stjoin.Pair) bool {
		b.AddInstant(pairs)
		return true
	})
}

// Graph finalizes and returns the reduced graph over the instants fed so
// far. The builder remains usable: more instants can be appended and Graph
// called again — the paper's incremental maintenance. Long edges are not
// carried over; call Augment (or AugmentBidirectional) on the result.
func (b *Builder) Graph() *Graph {
	// The returned graph aliases the builder's state; callers appending
	// more instants will see the same underlying nodes extended, which is
	// exactly the incremental contract. Resolutions are invalidated.
	b.g.Resolutions = nil
	b.g.longs = nil
	b.g.revLongs = nil
	return b.g
}

func (b *Builder) find(x int32) int32 {
	for b.parent[x] != x {
		b.parent[x] = b.parent[b.parent[x]]
		x = b.parent[x]
	}
	return x
}
