package dn

import (
	"testing"

	"streach/internal/contact"
	"streach/internal/mobility"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// TestBuilderIncrementalMatchesBatch feeds the network instant by instant
// and compares the result with the batch build.
func TestBuilderIncrementalMatchesBatch(t *testing.T) {
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: 35, NumTicks: 240, Seed: 137})
	net := contact.Extract(d)
	want := Build(net)

	b := NewBuilder(net.NumObjects)
	feed(b, net, 0, trajectory.Tick(net.NumTicks-1))
	compareGraphs(t, b.Graph(), want)
}

// TestBuilderResumeAfterSnapshot verifies the §6.2.1.2 incremental
// contract: take a graph snapshot mid-stream (validate it, even augment
// it), keep appending instants, and end up with the same graph as batch
// building the full network.
func TestBuilderResumeAfterSnapshot(t *testing.T) {
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: 30, NumTicks: 200, Seed: 139})
	net := contact.Extract(d)
	want := Build(net)

	b := NewBuilder(net.NumObjects)
	half := trajectory.Tick(net.NumTicks / 2)
	feed(b, net, 0, half-1)
	mid := b.Graph()
	if err := mid.Validate(); err != nil {
		t.Fatalf("mid-stream graph invalid: %v", err)
	}
	if mid.NumTicks != int(half) {
		t.Fatalf("mid-stream ticks: %d, want %d", mid.NumTicks, half)
	}
	if err := mid.Augment([]int{2, 4}); err != nil {
		t.Fatalf("mid-stream augment: %v", err)
	}
	feed(b, net, half, trajectory.Tick(net.NumTicks-1))
	got := b.Graph()
	if got.Resolutions != nil {
		t.Fatal("resuming did not invalidate long edges")
	}
	compareGraphs(t, got, want)
	if err := got.Validate(); err != nil {
		t.Fatalf("final graph invalid: %v", err)
	}
}

// TestBuilderEmptyDomains pins the degenerate cases.
func TestBuilderEmptyDomains(t *testing.T) {
	b := NewBuilder(0)
	b.AddInstant(nil)
	b.AddInstant(nil)
	g := b.Graph()
	if g.NumTicks != 2 || len(g.Nodes) != 0 {
		t.Fatalf("zero-object graph: ticks=%d nodes=%d", g.NumTicks, len(g.Nodes))
	}
	b2 := NewBuilder(3)
	if g2 := b2.Graph(); g2.NumTicks != 0 || len(g2.Nodes) != 0 {
		t.Fatalf("zero-tick graph: ticks=%d nodes=%d", g2.NumTicks, len(g2.Nodes))
	}
}

func feed(b *Builder, net *contact.Network, lo, hi trajectory.Tick) {
	net.Snapshot(lo, hi, func(_ trajectory.Tick, pairs []stjoin.Pair) bool {
		b.AddInstant(pairs)
		return true
	})
}

func compareGraphs(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumTicks != want.NumTicks || len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("shape mismatch: got (%d ticks, %d nodes), want (%d, %d)",
			got.NumTicks, len(got.Nodes), want.NumTicks, len(want.Nodes))
	}
	for id := range want.Nodes {
		a, b := &got.Nodes[id], &want.Nodes[id]
		if a.Start != b.Start || a.End != b.End {
			t.Fatalf("node %d span: got [%d,%d], want [%d,%d]", id, a.Start, a.End, b.Start, b.End)
		}
		if len(a.Members) != len(b.Members) || len(a.Out) != len(b.Out) || len(a.In) != len(b.In) {
			t.Fatalf("node %d shape mismatch", id)
		}
		for i := range a.Members {
			if a.Members[i] != b.Members[i] {
				t.Fatalf("node %d members differ", id)
			}
		}
		for i := range a.Out {
			if a.Out[i] != b.Out[i] {
				t.Fatalf("node %d out edges differ", id)
			}
		}
	}
}
