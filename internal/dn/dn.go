// Package dn builds the reduced contact-network DAG of §5.1.2 and its
// multi-resolution augmentation of §5.1.2.2.
//
// Reduction (lossless, per Properties 5.1 and 5.2):
//
//  1. Per-instant connected components of the contact graph G_t replace
//     individual object vertices: all members of a component are mutually
//     reachable at that instant (snapshot symmetry).
//  2. Maximal runs of instants over which a component keeps exactly the same
//     member set collapse into a single node carrying a span [Start, End].
//     The span plays the role of the paper's weighted "aggregated edge"
//     e(n): an item entering the group stays within it for the whole run.
//
// The result is a DAG: an edge u→v exists iff the two runs share a member
// and v starts exactly when u ends (Start(v) = End(u)+1). Every object
// belongs to exactly one node at every instant, so reachability over the DAG
// is equivalent to reachability over the full TEN (§5.1.1).
//
// Augmentation precomputes "long edges" at resolutions L = 2, 4, 8, …: a
// level-L edge u→w certifies that an item in u at boundary time ta (the
// unique multiple of L in (End(u)−L, End(u)]) reaches w at ta+L. Levels are
// composed by doubling: a 2L-edge is two aligned L-hops. A node has
// non-self level-L edges only when its span ends within L of the boundary,
// which keeps the index compact.
package dn

import (
	"fmt"
	"sort"

	"streach/internal/contact"
	"streach/internal/trajectory"
)

// NodeID identifies a node of the reduced graph. Nodes are created in
// ascending Start order, so NodeID order is a topological order of the DAG —
// the property §5.1.3 uses for disk placement.
type NodeID int32

// Invalid is the null NodeID.
const Invalid NodeID = -1

// Node is one run of a connected component: the object set Members was a
// connected component of G_t (and exactly this set) for every t in
// [Start, End].
type Node struct {
	Start, End trajectory.Tick
	Members    []trajectory.ObjectID // sorted ascending
	Out        []NodeID              // successors: share a member, Start = End+1
	In         []NodeID              // predecessors (reverse graph, stored per §5.1.3)
}

// Span returns the node's validity interval.
func (n *Node) Span() contact.Interval {
	return contact.Interval{Lo: n.Start, Hi: n.End}
}

// Graph is the reduced (and optionally augmented) contact network.
type Graph struct {
	NumObjects int
	NumTicks   int
	Nodes      []Node

	// runsByObject[o] lists the nodes containing object o in ascending
	// span order; spans of consecutive entries are adjacent and together
	// cover [0, NumTicks).
	runsByObject [][]NodeID

	// Resolutions lists the long-edge levels present, ascending (e.g.
	// [2 4 8 16 32] for the paper's optimal HN = DN1 ∪ DN2 ∪ … ∪ DN32).
	Resolutions []int
	// longs[i][node] are the level-Resolutions[i] targets of node; the
	// departure boundary is Boundary(node, L) and arrival is departure+L.
	longs []map[NodeID][]NodeID
	// revLongs[i][node] are the level-Resolutions[i] reverse sources of
	// node, aligned to RevBoundary (see reverse.go). Nil until
	// AugmentBidirectional is called.
	revLongs []map[NodeID][]NodeID
}

// Build reduces the contact network to its run-merged component DAG. It is
// the batch form of Builder, which additionally supports the paper's
// incremental construction (§6.2.1.2).
func Build(net *contact.Network) *Graph {
	b := NewBuilder(net.NumObjects)
	b.AppendNetwork(net, 0)
	g := b.Graph()
	if g.NumTicks != net.NumTicks {
		// Degenerate domains (no objects) still carry the time extent.
		g.NumTicks = net.NumTicks
	}
	return g
}

// sameRun reports whether run r (with |members| == |Members(r)|) consists of
// exactly the given members, using the invariant that prevRun maps each
// object to its unique run at the previous instant.
func sameRun(prevRun []NodeID, members []trajectory.ObjectID, r NodeID) bool {
	for _, m := range members {
		if prevRun[m] != r {
			return false
		}
	}
	return true
}

// NodeOf returns the node containing object o at tick t, or Invalid when t
// is outside the graph's time domain.
func (g *Graph) NodeOf(o trajectory.ObjectID, t trajectory.Tick) NodeID {
	if int(o) < 0 || int(o) >= len(g.runsByObject) || t < 0 || int(t) >= g.NumTicks {
		return Invalid
	}
	runs := g.runsByObject[o]
	i := sort.Search(len(runs), func(i int) bool {
		return g.Nodes[runs[i]].End >= t
	})
	if i == len(runs) {
		return Invalid
	}
	id := runs[i]
	if g.Nodes[id].Start > t {
		return Invalid
	}
	return id
}

// RunsOf returns the run nodes of object o in span order.
func (g *Graph) RunsOf(o trajectory.ObjectID) []NodeID {
	if int(o) < 0 || int(o) >= len(g.runsByObject) {
		return nil
	}
	return g.runsByObject[o]
}

// NumEdges returns the number of DN1 (forward) edges.
func (g *Graph) NumEdges() int64 {
	var e int64
	for i := range g.Nodes {
		e += int64(len(g.Nodes[i].Out))
	}
	return e
}

// Boundary returns the departure time of node id's long edges at resolution
// L: the unique multiple of L in (End−L, End]. The second return value is
// false when that boundary lies before the node's start or when the arrival
// boundary would fall outside the time domain — in both cases the node has
// no level-L edges.
func (g *Graph) Boundary(id NodeID, L int) (trajectory.Tick, bool) {
	nd := &g.Nodes[id]
	ta := nd.End - nd.End%trajectory.Tick(L)
	if ta < nd.Start {
		return 0, false
	}
	if int(ta)+L >= g.NumTicks {
		return 0, false
	}
	return ta, true
}

// levelIndex returns the index into g.longs for resolution L, or -1.
func (g *Graph) levelIndex(L int) int {
	for i, r := range g.Resolutions {
		if r == L {
			return i
		}
	}
	return -1
}

// LongOut returns the level-L targets of node id (empty when the node has
// none). The departure time is Boundary(id, L) and the arrival time is that
// plus L.
func (g *Graph) LongOut(id NodeID, L int) []NodeID {
	li := g.levelIndex(L)
	if li < 0 {
		return nil
	}
	return g.longs[li][id]
}

// Augment precomputes long edges at the given resolutions, which must be
// ascending powers of two starting at 2 (each level doubles the previous
// one, mirroring the paper's DN2 … DN32 hierarchy). Augment replaces any
// previously computed levels.
func (g *Graph) Augment(resolutions []int) error {
	for i, r := range resolutions {
		want := 2 << i
		if r != want {
			return fmt.Errorf("dn: resolutions must be 2,4,8,…; got %v", resolutions)
		}
	}
	g.Resolutions = nil
	g.longs = nil
	g.revLongs = nil
	reach := make(map[NodeID]struct{}, 64)
	for _, L := range resolutions {
		level := make(map[NodeID][]NodeID)
		for id := range g.Nodes {
			u := NodeID(id)
			ta, ok := g.Boundary(u, L)
			if !ok {
				continue
			}
			// An alive node with End ≥ ta+L only reaches itself; Boundary
			// already excludes that case (ta ≤ End < ta+L).
			for k := range reach {
				delete(reach, k)
			}
			g.composeReach(u, ta, L, reach)
			delete(reach, u) // self-reach is expressed by the span
			if len(reach) == 0 {
				continue
			}
			targets := make([]NodeID, 0, len(reach))
			for v := range reach {
				targets = append(targets, v)
			}
			sort.Slice(targets, func(i, k int) bool { return targets[i] < targets[k] })
			level[u] = targets
		}
		g.Resolutions = append(g.Resolutions, L)
		g.longs = append(g.longs, level)
	}
	return nil
}

// composeReach adds to out every node reachable from u (alive at ta) at
// time ta+L, composing two L/2 hops (or stepping DN1 edges when L == 2).
func (g *Graph) composeReach(u NodeID, ta trajectory.Tick, L int, out map[NodeID]struct{}) {
	if int(g.Nodes[u].End) >= int(ta)+L {
		out[u] = struct{}{}
		return
	}
	if L == 2 {
		// Step twice over DN1.
		g.stepInto(u, ta, func(v NodeID) {
			g.stepInto(v, ta+1, func(w NodeID) {
				out[w] = struct{}{}
			})
		})
		return
	}
	half := L / 2
	mid := make(map[NodeID]struct{}, 8)
	g.halfReach(u, ta, half, mid)
	for v := range mid {
		g.halfReach(v, ta+trajectory.Tick(half), half, out)
	}
}

// halfReach adds the nodes reachable from v (alive at tb) at tb+half, using
// the precomputed level-half edges.
func (g *Graph) halfReach(v NodeID, tb trajectory.Tick, half int, out map[NodeID]struct{}) {
	if int(g.Nodes[v].End) >= int(tb)+half {
		out[v] = struct{}{}
		return
	}
	// v dies before tb+half, so its level-half boundary is exactly tb.
	for _, w := range g.LongOut(v, half) {
		out[w] = struct{}{}
	}
}

// stepInto calls visit for every node alive at ta+1 reachable from u (alive
// at ta) in one TEN step: u itself while its span continues, or its DN1
// successors when the span ends at ta.
func (g *Graph) stepInto(u NodeID, ta trajectory.Tick, visit func(NodeID)) {
	nd := &g.Nodes[u]
	if nd.End > ta {
		visit(u)
		return
	}
	for _, v := range nd.Out {
		visit(v)
	}
}

// Stats summarizes graph size, the quantities of Figure 10 and §6.2.1.1.
type Stats struct {
	Vertices  int64
	Edges     int64   // DN1 edges
	LongEdges []int64 // per resolution, aligned with Resolutions
}

// Stats returns size statistics.
func (g *Graph) Stats() Stats {
	s := Stats{Vertices: int64(len(g.Nodes)), Edges: g.NumEdges()}
	for _, level := range g.longs {
		var n int64
		for _, ts := range level {
			n += int64(len(ts))
		}
		s.LongEdges = append(s.LongEdges, n)
	}
	return s
}

// AvgDegree returns the Table 4 metric for resolution L: the mean number of
// level-L edges over the nodes that have at least one, and the number of
// such nodes.
func (g *Graph) AvgDegree(L int) (avg float64, nodes int) {
	li := g.levelIndex(L)
	if li < 0 {
		return 0, 0
	}
	var total int64
	for _, ts := range g.longs[li] {
		if len(ts) > 0 {
			total += int64(len(ts))
			nodes++
		}
	}
	if nodes == 0 {
		return 0, 0
	}
	return float64(total) / float64(nodes), nodes
}

// Validate checks structural invariants; index builders and tests call it.
// It verifies that nodes are topologically ordered by ID, spans tile each
// object's timeline, edges connect adjacent runs sharing members, and In/Out
// are mutually consistent.
func (g *Graph) Validate() error {
	for id := range g.Nodes {
		nd := &g.Nodes[id]
		if nd.Start > nd.End {
			return fmt.Errorf("dn: node %d has inverted span [%d, %d]", id, nd.Start, nd.End)
		}
		if !sort.SliceIsSorted(nd.Members, func(i, k int) bool { return nd.Members[i] < nd.Members[k] }) {
			return fmt.Errorf("dn: node %d members unsorted", id)
		}
		for _, v := range nd.Out {
			if v <= NodeID(id) {
				return fmt.Errorf("dn: edge %d→%d violates topological ID order", id, v)
			}
			if g.Nodes[v].Start != nd.End+1 {
				return fmt.Errorf("dn: edge %d→%d spans not adjacent", id, v)
			}
			if !shareMember(nd.Members, g.Nodes[v].Members) {
				return fmt.Errorf("dn: edge %d→%d without shared member", id, v)
			}
			if !containsNode(g.Nodes[v].In, NodeID(id)) {
				return fmt.Errorf("dn: edge %d→%d missing from In list", id, v)
			}
		}
		for _, u := range nd.In {
			if !containsNode(g.Nodes[u].Out, NodeID(id)) {
				return fmt.Errorf("dn: reverse edge %d→%d missing from Out list", u, id)
			}
		}
	}
	for o, runs := range g.runsByObject {
		expect := trajectory.Tick(0)
		for _, id := range runs {
			nd := &g.Nodes[id]
			if nd.Start != expect {
				return fmt.Errorf("dn: object %d runs leave gap before tick %d", o, nd.Start)
			}
			if !containsObject(nd.Members, trajectory.ObjectID(o)) {
				return fmt.Errorf("dn: object %d not a member of its run %d", o, id)
			}
			expect = nd.End + 1
		}
		if g.NumTicks > 0 && int(expect) != g.NumTicks {
			return fmt.Errorf("dn: object %d runs end at %d, want %d", o, expect, g.NumTicks)
		}
	}
	return nil
}

func shareMember(a, b []trajectory.ObjectID) bool {
	i, k := 0, 0
	for i < len(a) && k < len(b) {
		switch {
		case a[i] == b[k]:
			return true
		case a[i] < b[k]:
			i++
		default:
			k++
		}
	}
	return false
}

func containsNode(s []NodeID, v NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsObject(s []trajectory.ObjectID, o trajectory.ObjectID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= o })
	return i < len(s) && s[i] == o
}
