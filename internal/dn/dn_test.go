package dn

import (
	"math/rand"
	"testing"

	"streach/internal/contact"
	"streach/internal/mobility"
	"streach/internal/trajectory"
)

// figure1Network reproduces the paper's Figure 1 contact pattern with
// objects renumbered to 0-based indices (o1..o4 → 0..3).
func figure1Network() *contact.Network {
	return contact.FromContacts(4, 4, []contact.Contact{
		{A: 0, B: 1, Validity: contact.Interval{Lo: 0, Hi: 0}}, // c1
		{A: 1, B: 3, Validity: contact.Interval{Lo: 1, Hi: 1}}, // c2
		{A: 2, B: 3, Validity: contact.Interval{Lo: 1, Hi: 2}}, // c3
		{A: 0, B: 1, Validity: contact.Interval{Lo: 2, Hi: 3}}, // c4
	})
}

func TestBuildFigure1(t *testing.T) {
	g := Build(figure1Network())
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// After both reduction steps the paper's example has 9 run nodes
	// (Figure 5: c0..c9 with c5 merged into c7).
	if len(g.Nodes) != 9 {
		t.Fatalf("nodes = %d, want 9", len(g.Nodes))
	}
	// The merged {o1, o2} run spans [2, 3].
	merged := g.NodeOf(0, 2)
	if merged == Invalid {
		t.Fatal("no node for object 0 at tick 2")
	}
	nd := g.Nodes[merged]
	if nd.Start != 2 || nd.End != 3 || len(nd.Members) != 2 {
		t.Fatalf("merged run = %+v", nd)
	}
	if g.NodeOf(1, 3) != merged {
		t.Error("object 1 at tick 3 should share the merged run")
	}
	// Figure 1 discussion: o4 (idx 3) is reachable from o1 (idx 0) during
	// [0,1] via {0,1}@0 → {1,2,3}@1, but not vice versa.
	src := g.NodeOf(0, 0)
	big := g.NodeOf(3, 1)
	found := false
	for _, v := range g.Nodes[src].Out {
		if v == big {
			found = true
		}
	}
	if !found {
		t.Error("missing edge {0,1}@0 → {1,2,3}@1")
	}
	back := g.NodeOf(3, 0) // {3}@[0,0]
	for _, v := range g.Nodes[back].Out {
		if v != big {
			t.Errorf("unexpected edge from {3}@0 to node %d", v)
		}
	}
	if containsObject(g.Nodes[big].Members, 0) {
		t.Error("{1,2,3}@1 must not contain object 0")
	}
}

func TestBuildEmpty(t *testing.T) {
	g := Build(contact.FromContacts(0, 0, nil))
	if len(g.Nodes) != 0 {
		t.Fatal("empty network produced nodes")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NodeOf(0, 0) != Invalid {
		t.Error("NodeOf on empty graph should be Invalid")
	}
}

func TestBuildNoContacts(t *testing.T) {
	// 3 objects, 5 ticks, no contacts: one singleton run per object.
	g := Build(contact.FromContacts(3, 5, nil))
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(g.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(g.Nodes))
	}
	for _, nd := range g.Nodes {
		if nd.Start != 0 || nd.End != 4 || len(nd.Members) != 1 {
			t.Fatalf("singleton run = %+v", nd)
		}
		if len(nd.Out) != 0 || len(nd.In) != 0 {
			t.Fatal("no edges expected")
		}
	}
}

func randomNetwork(rng *rand.Rand, numObjects, numTicks, contacts int) *contact.Network {
	var cs []contact.Contact
	for i := 0; i < contacts; i++ {
		a := trajectory.ObjectID(rng.Intn(numObjects))
		b := trajectory.ObjectID(rng.Intn(numObjects))
		if a == b {
			continue
		}
		lo := trajectory.Tick(rng.Intn(numTicks))
		hi := lo + trajectory.Tick(rng.Intn(4))
		if int(hi) >= numTicks {
			hi = trajectory.Tick(numTicks - 1)
		}
		cs = append(cs, contact.Contact{A: a, B: b, Validity: contact.Interval{Lo: lo, Hi: hi}})
	}
	return contact.FromContacts(numObjects, numTicks, cs)
}

func TestBuildInvariantsOnRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		numObjects := 2 + rng.Intn(12)
		numTicks := 1 + rng.Intn(30)
		net := randomNetwork(rng, numObjects, numTicks, rng.Intn(40))
		g := Build(net)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Property 5.1 (snapshot symmetry): each node's member set is a
		// connected component of G_t at every covered tick.
		for id := range g.Nodes {
			nd := &g.Nodes[id]
			for tk := nd.Start; tk <= nd.End; tk++ {
				comp := componentOf(net, nd.Members[0], tk)
				if len(comp) != len(nd.Members) {
					t.Fatalf("node %d at tick %d: component size %d, members %d",
						id, tk, len(comp), len(nd.Members))
				}
				for _, m := range nd.Members {
					if !comp[m] {
						t.Fatalf("node %d at tick %d: member %d outside component", id, tk, m)
					}
				}
			}
		}
		// Runs are maximal: a node's predecessor-successor structure never
		// links two nodes with identical member sets back to back.
		for id := range g.Nodes {
			for _, v := range g.Nodes[id].Out {
				if equalMembers(g.Nodes[id].Members, g.Nodes[v].Members) {
					t.Fatalf("nodes %d→%d have identical members; run not maximal", id, v)
				}
			}
		}
	}
}

// componentOf returns the connected component of object o in G_t.
func componentOf(net *contact.Network, o trajectory.ObjectID, tk trajectory.Tick) map[trajectory.ObjectID]bool {
	adj := make(map[trajectory.ObjectID][]trajectory.ObjectID)
	for _, pr := range net.PairsAt(tk) {
		adj[pr.A] = append(adj[pr.A], pr.B)
		adj[pr.B] = append(adj[pr.B], pr.A)
	}
	comp := map[trajectory.ObjectID]bool{o: true}
	stack := []trajectory.ObjectID{o}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !comp[w] {
				comp[w] = true
				stack = append(stack, w)
			}
		}
	}
	return comp
}

func equalMembers(a, b []trajectory.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNodeOfExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := randomNetwork(rng, 8, 25, 30)
	g := Build(net)
	for o := trajectory.ObjectID(0); int(o) < 8; o++ {
		for tk := trajectory.Tick(0); tk < 25; tk++ {
			id := g.NodeOf(o, tk)
			if id == Invalid {
				t.Fatalf("NodeOf(%d, %d) = Invalid", o, tk)
			}
			nd := g.Nodes[id]
			if !nd.Span().Contains(tk) || !containsObject(nd.Members, o) {
				t.Fatalf("NodeOf(%d, %d) = node %d %+v", o, tk, id, nd)
			}
		}
	}
	if g.NodeOf(0, -1) != Invalid || g.NodeOf(0, 25) != Invalid || g.NodeOf(99, 0) != Invalid {
		t.Error("out-of-range NodeOf should be Invalid")
	}
}

func TestAugmentValidatesResolutions(t *testing.T) {
	g := Build(figure1Network())
	if err := g.Augment([]int{3}); err == nil {
		t.Error("non-power-of-two resolution accepted")
	}
	if err := g.Augment([]int{4}); err == nil {
		t.Error("resolution list not starting at 2 accepted")
	}
	if err := g.Augment([]int{2, 4, 8}); err != nil {
		t.Errorf("valid resolutions rejected: %v", err)
	}
}

// bruteReach computes the set of nodes reachable from u (alive at ta) after
// exactly steps TEN steps, by stepping one tick at a time.
func bruteReach(g *Graph, u NodeID, ta trajectory.Tick, steps int) map[NodeID]bool {
	cur := map[NodeID]bool{u: true}
	for s := 0; s < steps; s++ {
		next := make(map[NodeID]bool)
		for v := range cur {
			g.stepInto(v, ta+trajectory.Tick(s), func(w NodeID) { next[w] = true })
		}
		cur = next
	}
	return cur
}

func TestLongEdgesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		net := randomNetwork(rng, 2+rng.Intn(10), 20+rng.Intn(30), rng.Intn(60))
		g := Build(net)
		if err := g.Augment([]int{2, 4, 8}); err != nil {
			t.Fatal(err)
		}
		for _, L := range g.Resolutions {
			for id := range g.Nodes {
				u := NodeID(id)
				ta, ok := g.Boundary(u, L)
				got := g.LongOut(u, L)
				if !ok {
					if len(got) != 0 {
						t.Fatalf("node %d has level-%d edges without boundary", id, L)
					}
					continue
				}
				want := bruteReach(g, u, ta, L)
				delete(want, u)
				if len(got) != len(want) {
					t.Fatalf("trial %d node %d L=%d ta=%d: got %d targets %v, want %d %v",
						trial, id, L, ta, len(got), got, len(want), want)
				}
				for _, w := range got {
					if !want[w] {
						t.Fatalf("node %d L=%d: spurious target %d", id, L, w)
					}
				}
			}
		}
	}
}

func TestBoundaryRules(t *testing.T) {
	// Construct a graph with one long-lived node: a single object, 20 ticks.
	g := Build(contact.FromContacts(1, 20, nil))
	if len(g.Nodes) != 1 {
		t.Fatal("want a single run")
	}
	// End = 19, L = 4 → boundary 16, but arrival 20 is outside [0, 19].
	if _, ok := g.Boundary(0, 4); ok {
		t.Error("boundary with out-of-domain arrival accepted")
	}
	g2 := Build(contact.FromContacts(2, 10, []contact.Contact{
		{A: 0, B: 1, Validity: contact.Interval{Lo: 3, Hi: 5}},
	}))
	// Object runs: {0}[0,2], {1}[0,2], {0,1}[3,5], {0}[6,9], {1}[6,9].
	id := g2.NodeOf(0, 3)
	nd := g2.Nodes[id]
	if nd.Start != 3 || nd.End != 5 {
		t.Fatalf("contact run = %+v", nd)
	}
	ta, ok := g2.Boundary(id, 4)
	if !ok || ta != 4 {
		t.Fatalf("Boundary = %d, %v; want 4, true", ta, ok)
	}
	// L=8: floor(5/8)*8 = 0 < Start 3 → no boundary.
	if _, ok := g2.Boundary(id, 8); ok {
		t.Error("boundary before span start accepted")
	}
}

func TestStatsAndAvgDegree(t *testing.T) {
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: 80, NumTicks: 120, Seed: 3})
	net := contact.Extract(d)
	g := Build(net)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := g.Augment([]int{2, 4, 8, 16, 32}); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.Vertices != int64(len(g.Nodes)) || s.Edges != g.NumEdges() {
		t.Error("Stats disagrees with direct counts")
	}
	if len(s.LongEdges) != 5 {
		t.Fatalf("LongEdges entries = %d", len(s.LongEdges))
	}
	// Reduction claim (§6.2.1.1): DN is much smaller than the TEN.
	ten := net.TEN()
	if s.Vertices >= ten.Vertices {
		t.Errorf("DN vertices %d not smaller than TEN %d", s.Vertices, ten.Vertices)
	}
	if s.Edges >= ten.Edges {
		t.Errorf("DN edges %d not smaller than TEN %d", s.Edges, ten.Edges)
	}
	// Table 4 trend: average degree grows with the resolution.
	prev := 0.0
	for _, L := range []int{2, 8, 32} {
		avg, nodes := g.AvgDegree(L)
		if nodes > 50 && avg < prev {
			t.Errorf("avg degree at L=%d is %.2f, below lower resolution %.2f", L, avg, prev)
		}
		prev = avg
	}
	if avg, nodes := g.AvgDegree(64); avg != 0 || nodes != 0 {
		t.Error("AvgDegree of absent resolution should be 0")
	}
}

func TestBuildDeterministic(t *testing.T) {
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: 40, NumTicks: 60, Seed: 8})
	net := contact.Extract(d)
	g1 := Build(net)
	g2 := Build(net)
	if len(g1.Nodes) != len(g2.Nodes) {
		t.Fatal("node counts differ between builds")
	}
	for i := range g1.Nodes {
		a, b := g1.Nodes[i], g2.Nodes[i]
		if a.Start != b.Start || a.End != b.End || !equalMembers(a.Members, b.Members) {
			t.Fatalf("node %d differs between builds", i)
		}
		if len(a.Out) != len(b.Out) {
			t.Fatalf("node %d out-degree differs", i)
		}
		for k := range a.Out {
			if a.Out[k] != b.Out[k] {
				t.Fatalf("node %d edge %d differs", i, k)
			}
		}
	}
}

func TestRunsOf(t *testing.T) {
	g := Build(figure1Network())
	runs := g.RunsOf(0)
	if len(runs) != 3 {
		t.Fatalf("object 0 runs = %v, want 3 runs", runs)
	}
	if g.RunsOf(99) != nil || g.RunsOf(-1) != nil {
		t.Error("out-of-range RunsOf should be nil")
	}
}

func TestStatsOnFigure1WithAugment(t *testing.T) {
	g := Build(figure1Network())
	if err := g.Augment([]int{2}); err != nil {
		t.Fatal(err)
	}
	// Verify one concrete long edge: from {0,1}@[0,0], boundary 0, targets
	// at tick 2 = nodes reachable in 2 steps: {0}@[1,1]→{0,1}@[2,3] and
	// {1,2,3}@[1,1]→{0,1}@[2,3],{2,3}@[2,2].
	src := g.NodeOf(0, 0)
	ta, ok := g.Boundary(src, 2)
	if !ok || ta != 0 {
		t.Fatalf("boundary = %d, %v", ta, ok)
	}
	targets := g.LongOut(src, 2)
	want := map[NodeID]bool{g.NodeOf(0, 2): true, g.NodeOf(2, 2): true}
	if len(targets) != len(want) {
		t.Fatalf("targets = %v, want %v", targets, want)
	}
	for _, w := range targets {
		if !want[w] {
			t.Fatalf("unexpected target %d", w)
		}
	}
}
