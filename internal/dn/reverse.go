// Time-reversed view and reverse long edges.
//
// BM-BFS (§5.2) traverses HN backward from the query destination. For the
// backward sweep to take long edges with the same completeness guarantee as
// the forward sweep, the long edges must be aligned to boundaries counted
// from the *end* of the time domain: a reverse level-L edge u ⇐ w certifies
// that an item present in u's component at time tb−L is in w's component at
// tb, where tb is w's reverse boundary. Reversing the time axis turns the
// backward traversal into a forward traversal of the reversed graph, so
// correctness of the forward rules carries over verbatim.
package dn

import (
	"sort"

	"streach/internal/contact"
	"streach/internal/trajectory"
)

// Reverse returns the time-reversed graph: node IDs are mirrored
// (id′ = n−1−id) so ascending IDs remain a topological order, spans are
// mirrored around the time domain, and In/Out edge roles swap. Members are
// shared with the receiver (the reversed view must not be mutated). Long
// edges are not carried over; call Augment on the result to compute the
// reversed graph's own long edges.
func (g *Graph) Reverse() *Graph {
	n := len(g.Nodes)
	last := trajectory.Tick(g.NumTicks - 1)
	rev := &Graph{
		NumObjects:   g.NumObjects,
		NumTicks:     g.NumTicks,
		Nodes:        make([]Node, n),
		runsByObject: make([][]NodeID, g.NumObjects),
	}
	mirror := func(id NodeID) NodeID { return NodeID(n-1) - id }
	for id := range g.Nodes {
		src := &g.Nodes[id]
		dst := &rev.Nodes[mirror(NodeID(id))]
		dst.Start = last - src.End
		dst.End = last - src.Start
		dst.Members = src.Members
		dst.Out = make([]NodeID, len(src.In))
		for i, u := range src.In {
			dst.Out[i] = mirror(u)
		}
		dst.In = make([]NodeID, len(src.Out))
		for i, v := range src.Out {
			dst.In[i] = mirror(v)
		}
	}
	for o, runs := range g.runsByObject {
		rr := make([]NodeID, len(runs))
		for i, id := range runs {
			rr[len(runs)-1-i] = mirror(id)
		}
		rev.runsByObject[o] = rr
	}
	return rev
}

// AugmentBidirectional computes forward long edges (Augment) and, in
// addition, reverse long edges at the same resolutions by augmenting the
// time-reversed graph and mapping the result back. The reverse edges feed
// the backward half of BM-BFS.
func (g *Graph) AugmentBidirectional(resolutions []int) error {
	if err := g.Augment(resolutions); err != nil {
		return err
	}
	rev := g.Reverse()
	if err := rev.Augment(resolutions); err != nil {
		return err
	}
	n := len(g.Nodes)
	mirror := func(id NodeID) NodeID { return NodeID(n-1) - id }
	g.revLongs = make([]map[NodeID][]NodeID, len(resolutions))
	for li := range resolutions {
		level := make(map[NodeID][]NodeID, len(rev.longs[li]))
		for w, targets := range rev.longs[li] {
			srcs := make([]NodeID, len(targets))
			for i, u := range targets {
				srcs[len(targets)-1-i] = mirror(u)
			}
			level[mirror(w)] = srcs
		}
		g.revLongs[li] = level
	}
	return nil
}

// LongIn returns the level-L reverse sources of node id: nodes u such that
// an item in u's component at RevBoundary(id, L) − L reaches id's component
// at RevBoundary(id, L). Empty when the node has no level-L reverse edges or
// AugmentBidirectional was not called.
func (g *Graph) LongIn(id NodeID, L int) []NodeID {
	li := g.levelIndex(L)
	if li < 0 || li >= len(g.revLongs) || g.revLongs == nil {
		return nil
	}
	return g.revLongs[li][id]
}

// RevBoundary returns the arrival time of node id's reverse level-L edges:
// the unique instant tb in [Start, Start+L) with NumTicks−1−tb a multiple of
// L. The second return value is false when tb lies after the node's end or
// when the departure tb−L would fall before the time domain — the node then
// has no level-L reverse edges.
func (g *Graph) RevBoundary(id NodeID, L int) (trajectory.Tick, bool) {
	nd := &g.Nodes[id]
	last := trajectory.Tick(g.NumTicks - 1)
	m := (last - nd.Start) - (last-nd.Start)%trajectory.Tick(L)
	tb := last - m
	if tb > nd.End {
		return 0, false
	}
	if int(tb) < L {
		return 0, false
	}
	return tb, true
}

// HasReverseLongs reports whether reverse long edges have been computed.
func (g *Graph) HasReverseLongs() bool { return g.revLongs != nil }

// ReverseReach is the backward propagation primitive over the reduced
// graph: walking DN1 in-edges in reverse time order from the runs of the
// seed objects at iv.Hi, it returns every object that, holding an item at
// iv.Lo, delivers it to some seed by iv.Hi (the deliverer set; seeds
// included when the interval overlaps the time domain), sorted ascending.
// This is forward propagation on Reverse() of the receiver, executed
// directly without materializing the mirrored graph: an in-edge u ← v means
// u is the adjacent run ending at Start(v)−1 that shares a member with v,
// so any member of u holding the item within u's span hands it to v's
// component, and by induction to a seed. A run starting at or before iv.Lo
// is not expanded further — its predecessors end before the interval.
//
// ReverseReach allocates its own scratch per call (it is the reference
// implementation; the reachgraph engines run the same walk on pooled,
// epoch-stamped state).
func (g *Graph) ReverseReach(seeds []trajectory.ObjectID, iv contact.Interval) []trajectory.ObjectID {
	iv = iv.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(g.NumTicks - 1)})
	if iv.Len() == 0 {
		return nil
	}
	visited := make([]bool, len(g.Nodes))
	var queue []NodeID
	for _, o := range seeds {
		id := g.NodeOf(o, iv.Hi)
		if id == Invalid || visited[id] {
			continue
		}
		visited[id] = true
		queue = append(queue, id)
	}
	delivers := make(map[trajectory.ObjectID]bool)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		nd := &g.Nodes[id]
		for _, m := range nd.Members {
			delivers[m] = true
		}
		if nd.Start <= iv.Lo {
			continue
		}
		for _, u := range nd.In {
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
	}
	out := make([]trajectory.ObjectID, 0, len(delivers))
	for o := range delivers {
		out = append(out, o)
	}
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out
}
