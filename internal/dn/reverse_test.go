package dn

import (
	"testing"

	"streach/internal/contact"
	"streach/internal/mobility"
	"streach/internal/trajectory"
)

func randomGraph(t testing.TB, objects, ticks int, seed int64) *Graph {
	t.Helper()
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: objects, NumTicks: ticks, Seed: seed})
	g := Build(contact.Extract(d))
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	return g
}

// TestReverseIsInvolution checks that reversing twice restores the graph.
func TestReverseIsInvolution(t *testing.T) {
	g := randomGraph(t, 30, 200, 101)
	rr := g.Reverse().Reverse()
	if len(rr.Nodes) != len(g.Nodes) {
		t.Fatalf("node count changed: %d → %d", len(g.Nodes), len(rr.Nodes))
	}
	for id := range g.Nodes {
		a, b := &g.Nodes[id], &rr.Nodes[id]
		if a.Start != b.Start || a.End != b.End {
			t.Fatalf("node %d span changed: [%d,%d] → [%d,%d]", id, a.Start, a.End, b.Start, b.End)
		}
		if len(a.Out) != len(b.Out) || len(a.In) != len(b.In) {
			t.Fatalf("node %d degree changed", id)
		}
	}
}

// TestReverseStructure checks the mirrored topology: spans mirror around
// the time domain and every edge flips direction.
func TestReverseStructure(t *testing.T) {
	g := randomGraph(t, 25, 150, 103)
	rev := g.Reverse()
	n := len(g.Nodes)
	last := trajectory.Tick(g.NumTicks - 1)
	mirror := func(id NodeID) NodeID { return NodeID(n-1) - id }
	for id := range g.Nodes {
		nd := &g.Nodes[id]
		rd := &rev.Nodes[mirror(NodeID(id))]
		if rd.Start != last-nd.End || rd.End != last-nd.Start {
			t.Fatalf("node %d: span [%d,%d] mirrored to [%d,%d]", id, nd.Start, nd.End, rd.Start, rd.End)
		}
		for _, v := range nd.Out {
			if !containsNode(rev.Nodes[mirror(v)].Out, mirror(NodeID(id))) {
				t.Fatalf("edge %d→%d not flipped in reverse", id, v)
			}
		}
	}
	// Mirrored IDs must remain a topological order.
	for id := range rev.Nodes {
		for _, v := range rev.Nodes[id].Out {
			if v <= NodeID(id) {
				t.Fatalf("reverse edge %d→%d violates topological order", id, v)
			}
		}
	}
}

// stepReachable computes the nodes alive at time ta+steps reachable from u
// (alive at ta) by brute-force DN1 stepping — the ground truth for long
// edges in both directions.
func stepReachable(g *Graph, u NodeID, ta trajectory.Tick, steps int) map[NodeID]bool {
	cur := map[NodeID]bool{u: true}
	for s := 0; s < steps; s++ {
		next := map[NodeID]bool{}
		tt := ta + trajectory.Tick(s)
		for v := range cur {
			if g.Nodes[v].End > tt {
				next[v] = true
				continue
			}
			for _, w := range g.Nodes[v].Out {
				next[w] = true
			}
		}
		cur = next
	}
	return cur
}

// TestReverseLongEdgesSound verifies every reverse level-L edge u ⇐ w
// against brute force: an item in u's component at RevBoundary(w)−L must
// reach w's component at RevBoundary(w), and the edge set must be complete
// (every such u is listed).
func TestReverseLongEdgesSound(t *testing.T) {
	g := randomGraph(t, 25, 120, 107)
	if err := g.AugmentBidirectional([]int{2, 4, 8}); err != nil {
		t.Fatal(err)
	}
	for _, L := range []int{2, 4, 8} {
		for id := range g.Nodes {
			w := NodeID(id)
			tb, ok := g.RevBoundary(w, L)
			sources := g.LongIn(w, L)
			if !ok {
				if len(sources) != 0 {
					t.Fatalf("node %d has no rev boundary at L=%d but %d sources", w, L, len(sources))
				}
				continue
			}
			dep := tb - trajectory.Tick(L)
			// Brute force: which nodes alive at dep (and dead before tb,
			// i.e. needing an explicit edge) reach w at tb?
			want := map[NodeID]bool{}
			for uid := range g.Nodes {
				u := NodeID(uid)
				nd := &g.Nodes[u]
				if nd.Start > dep || nd.End < dep {
					continue
				}
				if nd.End >= tb {
					continue // self-survival, expressed by the span
				}
				if stepReachable(g, u, dep, L)[w] {
					want[u] = true
				}
			}
			got := map[NodeID]bool{}
			for _, u := range sources {
				got[u] = true
			}
			if len(got) != len(want) {
				t.Fatalf("node %d L=%d: %d sources, want %d", w, L, len(got), len(want))
			}
			for u := range want {
				if !got[u] {
					t.Fatalf("node %d L=%d: missing source %d", w, L, u)
				}
			}
		}
	}
}

// TestRevBoundaryAlgebra pins the reverse boundary definition: it is the
// unique instant in [Start, Start+L) whose distance from the last tick is a
// multiple of L.
func TestRevBoundaryAlgebra(t *testing.T) {
	g := randomGraph(t, 20, 100, 109)
	last := trajectory.Tick(g.NumTicks - 1)
	for _, L := range []int{2, 4, 8, 16} {
		for id := range g.Nodes {
			tb, ok := g.RevBoundary(NodeID(id), L)
			nd := &g.Nodes[id]
			if !ok {
				// Must be rejected for a reason: boundary after span end
				// or departure before the time domain.
				m := (last - nd.Start) - (last-nd.Start)%trajectory.Tick(L)
				cand := last - m
				if cand <= nd.End && int(cand) >= L {
					t.Fatalf("node %d L=%d: boundary %d wrongly rejected", id, L, cand)
				}
				continue
			}
			if tb < nd.Start || tb >= nd.Start+trajectory.Tick(L) {
				t.Fatalf("node %d L=%d: boundary %d outside [%d, %d)", id, L, tb, nd.Start, nd.Start+trajectory.Tick(L))
			}
			if (last-tb)%trajectory.Tick(L) != 0 {
				t.Fatalf("node %d L=%d: boundary %d not aligned from the end", id, L, tb)
			}
			if int(tb) < L {
				t.Fatalf("node %d L=%d: departure %d before time domain", id, L, int(tb)-L)
			}
		}
	}
}

// TestAugmentBidirectionalResetOnReaugment ensures re-augmenting replaces
// old levels in both directions.
func TestAugmentBidirectionalResetOnReaugment(t *testing.T) {
	g := randomGraph(t, 15, 80, 113)
	if err := g.AugmentBidirectional([]int{2, 4}); err != nil {
		t.Fatal(err)
	}
	if !g.HasReverseLongs() {
		t.Fatal("reverse longs missing after AugmentBidirectional")
	}
	if err := g.Augment([]int{2}); err != nil {
		t.Fatal(err)
	}
	if g.HasReverseLongs() {
		t.Fatal("plain Augment kept stale reverse longs")
	}
	if got := g.LongIn(0, 2); got != nil {
		t.Fatalf("LongIn after plain Augment: %v", got)
	}
}
