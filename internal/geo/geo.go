// Package geo provides the planar geometry primitives used throughout
// streach: points, axis-aligned rectangles, distance computations and
// uniform-grid snapping.
//
// All coordinates are in metres in an abstract planar environment; the
// package is deliberately free of any geodetic concerns because the paper's
// datasets live in small (≤ 600 km²) urban extents where a planar
// approximation is exact enough for contact detection.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane, in metres.
type Point struct {
	X, Y float64
}

// Sub returns the vector p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns the vector p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. Prefer it in
// inner loops where only comparisons against a squared threshold are needed.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// Lerp linearly interpolates between p (f=0) and q (f=1).
func (p Point) Lerp(q Point, f float64) Point {
	return Point{p.X + (q.X-p.X)*f, p.Y + (q.Y-p.Y)*f}
}

func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Rect is a closed axis-aligned rectangle. A Rect with Min components larger
// than the corresponding Max components is empty.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// EmptyRect returns a rectangle that contains nothing and acts as the
// identity for Union.
func EmptyRect() Rect {
	return Rect{
		Min: Point{math.Inf(1), math.Inf(1)},
		Max: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Width returns the horizontal extent of r (0 for empty rectangles).
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.X - r.Min.X
}

// Height returns the vertical extent of r (0 for empty rectangles).
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.Y - r.Min.Y
}

// Contains reports whether p lies inside the closed rectangle r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// ExtendPoint returns the smallest rectangle covering r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return r.Union(Rect{Min: p, Max: p})
}

// Expand grows r by d on every side. ReachGrid uses this to turn the MBR of
// a seed trajectory segment into the region whose objects may contact the
// seed (paper §4.2).
func (r Rect) Expand(d float64) Rect {
	if r.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Intersects reports whether the closed rectangles r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// DistToPoint returns the minimum distance from p to the rectangle (0 when p
// is inside).
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// Clamp returns the point of r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Grid maps points of an environment rectangle onto an n×m uniform grid of
// square-ish cells. It is the shared spatial-partitioning primitive of the
// per-instant contact join and the ReachGrid index.
type Grid struct {
	env    Rect
	cellW  float64
	cellH  float64
	nx, ny int
}

// NewGrid builds a grid over env with cells of the requested size. The cell
// size is clamped so the grid has at least one and at most maxCellsPerAxis
// cells per axis; the effective cell dimensions may therefore differ
// slightly from the request (they tile env exactly).
func NewGrid(env Rect, cellSize float64) Grid {
	if env.IsEmpty() {
		env = Rect{}
	}
	if cellSize <= 0 {
		cellSize = 1
	}
	nx := int(math.Ceil(env.Width() / cellSize))
	ny := int(math.Ceil(env.Height() / cellSize))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return Grid{
		env:   env,
		cellW: env.Width() / float64(nx),
		cellH: env.Height() / float64(ny),
		nx:    nx,
		ny:    ny,
	}
}

// Env returns the environment rectangle the grid tiles.
func (g Grid) Env() Rect { return g.env }

// Dims returns the number of cells along x and y.
func (g Grid) Dims() (nx, ny int) { return g.nx, g.ny }

// NumCells returns the total number of cells.
func (g Grid) NumCells() int { return g.nx * g.ny }

// CellSize returns the effective width and height of a cell.
func (g Grid) CellSize() (w, h float64) { return g.cellW, g.cellH }

// Cell returns the (cx, cy) coordinates of the cell containing p. Points
// outside the environment are clamped to the border cells, mirroring how the
// generators keep objects inside the environment.
func (g Grid) Cell(p Point) (cx, cy int) {
	cx = g.axisCell(p.X-g.env.Min.X, g.cellW, g.nx)
	cy = g.axisCell(p.Y-g.env.Min.Y, g.cellH, g.ny)
	return cx, cy
}

func (Grid) axisCell(off, size float64, n int) int {
	if size <= 0 {
		return 0
	}
	c := int(off / size)
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// CellID returns the row-major identifier of the cell containing p.
func (g Grid) CellID(p Point) int {
	cx, cy := g.Cell(p)
	return cy*g.nx + cx
}

// IDToCell is the inverse of CellID.
func (g Grid) IDToCell(id int) (cx, cy int) { return id % g.nx, id / g.nx }

// CellRect returns the rectangle covered by cell (cx, cy).
func (g Grid) CellRect(cx, cy int) Rect {
	min := Point{g.env.Min.X + float64(cx)*g.cellW, g.env.Min.Y + float64(cy)*g.cellH}
	return Rect{Min: min, Max: Point{min.X + g.cellW, min.Y + g.cellH}}
}

// CellsIntersecting appends to dst the row-major IDs of all cells whose
// rectangle intersects r, and returns the extended slice. The rectangle is
// clipped to the environment first.
func (g Grid) CellsIntersecting(r Rect, dst []int) []int {
	if r.IsEmpty() || !r.Intersects(g.env) {
		return dst
	}
	x0 := g.axisCell(r.Min.X-g.env.Min.X, g.cellW, g.nx)
	x1 := g.axisCell(r.Max.X-g.env.Min.X, g.cellW, g.nx)
	y0 := g.axisCell(r.Min.Y-g.env.Min.Y, g.cellH, g.ny)
	y1 := g.axisCell(r.Max.Y-g.env.Min.Y, g.cellH, g.ny)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			dst = append(dst, cy*g.nx+cx)
		}
	}
	return dst
}
