package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, 1}
	if got := p.Sub(q); got != (Point{2, 3}) {
		t.Errorf("Sub = %v, want (2,3)", got)
	}
	if got := p.Add(q); got != (Point{4, 5}) {
		t.Errorf("Add = %v, want (4,5)", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v, want (6,8)", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestDist(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if d := p.Dist(q); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d2 := p.Dist2(q); d2 != 25 {
		t.Errorf("Dist2 = %v, want 25", d2)
	}
}

func TestDist2ConsistentWithDist(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a := Point{rng.Float64()*2000 - 1000, rng.Float64()*2000 - 1000}
		b := Point{rng.Float64()*2000 - 1000, rng.Float64()*2000 - 1000}
		d := a.Dist(b)
		if math.Abs(d*d-a.Dist2(b)) > 1e-6*(1+d*d) {
			t.Fatalf("Dist/Dist2 mismatch for %v, %v", a, b)
		}
	}
}

func TestLerp(t *testing.T) {
	p, q := Point{0, 0}, Point{10, 20}
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
	if got := p.Lerp(q, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp(0.5) = %v, want (5,10)", got)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Point{5, 1}, Point{2, 7})
	if r.Min != (Point{2, 1}) || r.Max != (Point{5, 7}) {
		t.Errorf("NewRect = %+v", r)
	}
	if r.Width() != 3 || r.Height() != 6 {
		t.Errorf("Width/Height = %v/%v, want 3/6", r.Width(), r.Height())
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	if e.Width() != 0 || e.Height() != 0 {
		t.Error("empty rect should have zero extent")
	}
	r := NewRect(Point{0, 0}, Point{1, 1})
	if got := e.Union(r); got != r {
		t.Errorf("empty ∪ r = %+v, want %+v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r ∪ empty = %+v, want %+v", got, r)
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Error("empty rect should intersect nothing")
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	for _, tc := range []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},   // corner: closed rectangle
		{Point{10, 10}, true}, // far corner
		{Point{10.001, 5}, false},
		{Point{-0.001, 5}, false},
	} {
		if got := r.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestRectExpand(t *testing.T) {
	r := NewRect(Point{2, 2}, Point{4, 4}).Expand(1)
	want := NewRect(Point{1, 1}, Point{5, 5})
	if r != want {
		t.Errorf("Expand = %+v, want %+v", r, want)
	}
	if !EmptyRect().Expand(5).IsEmpty() {
		t.Error("expanding an empty rect must stay empty")
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{5, 5})
	b := NewRect(Point{5, 5}, Point{9, 9}) // touching corner counts (closed)
	c := NewRect(Point{6, 6}, Point{9, 9})
	if !a.Intersects(b) {
		t.Error("touching rects should intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint rects should not intersect")
	}
}

func TestRectDistToPoint(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	if d := r.DistToPoint(Point{5, 5}); d != 0 {
		t.Errorf("inside point distance = %v, want 0", d)
	}
	if d := r.DistToPoint(Point{13, 14}); d != 5 {
		t.Errorf("corner distance = %v, want 5", d)
	}
	if d := r.DistToPoint(Point{-3, 5}); d != 3 {
		t.Errorf("edge distance = %v, want 3", d)
	}
}

func TestRectClamp(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	if got := r.Clamp(Point{-5, 3}); got != (Point{0, 3}) {
		t.Errorf("Clamp = %v, want (0,3)", got)
	}
	if got := r.Clamp(Point{4, 4}); got != (Point{4, 4}) {
		t.Errorf("Clamp of inside point = %v, want identity", got)
	}
}

func TestUnionProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := NewRect(Point{ax, ay}, Point{bx, by})
		s := NewRect(Point{cx, cy}, Point{dx, dy})
		u := r.Union(s)
		// Union contains all four defining corners.
		return u.Contains(r.Min) && u.Contains(r.Max) && u.Contains(s.Min) && u.Contains(s.Max) &&
			u == s.Union(r) // commutative
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridBasics(t *testing.T) {
	env := NewRect(Point{0, 0}, Point{100, 50})
	g := NewGrid(env, 10)
	nx, ny := g.Dims()
	if nx != 10 || ny != 5 {
		t.Fatalf("Dims = %d×%d, want 10×5", nx, ny)
	}
	if g.NumCells() != 50 {
		t.Fatalf("NumCells = %d, want 50", g.NumCells())
	}
	cx, cy := g.Cell(Point{15, 35})
	if cx != 1 || cy != 3 {
		t.Errorf("Cell = (%d,%d), want (1,3)", cx, cy)
	}
	id := g.CellID(Point{15, 35})
	if id != 31 {
		t.Errorf("CellID = %d, want 31", id)
	}
	rx, ry := g.IDToCell(id)
	if rx != cx || ry != cy {
		t.Errorf("IDToCell(%d) = (%d,%d), want (%d,%d)", id, rx, ry, cx, cy)
	}
}

func TestGridClampsOutOfRange(t *testing.T) {
	g := NewGrid(NewRect(Point{0, 0}, Point{100, 100}), 10)
	cx, cy := g.Cell(Point{-5, 150})
	if cx != 0 || cy != 9 {
		t.Errorf("out-of-range Cell = (%d,%d), want (0,9)", cx, cy)
	}
	// The far boundary belongs to the last cell.
	cx, cy = g.Cell(Point{100, 100})
	if cx != 9 || cy != 9 {
		t.Errorf("boundary Cell = (%d,%d), want (9,9)", cx, cy)
	}
}

func TestGridCellRectRoundTrip(t *testing.T) {
	g := NewGrid(NewRect(Point{0, 0}, Point{90, 90}), 9)
	for cy := 0; cy < 10; cy++ {
		for cx := 0; cx < 10; cx++ {
			r := g.CellRect(cx, cy)
			center := Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
			gx, gy := g.Cell(center)
			if gx != cx || gy != cy {
				t.Fatalf("center of cell (%d,%d) mapped to (%d,%d)", cx, cy, gx, gy)
			}
		}
	}
}

func TestGridCellsIntersecting(t *testing.T) {
	g := NewGrid(NewRect(Point{0, 0}, Point{100, 100}), 10)
	ids := g.CellsIntersecting(NewRect(Point{11, 11}, Point{29, 19}), nil)
	want := []int{11, 12}
	if len(ids) != len(want) {
		t.Fatalf("CellsIntersecting = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("CellsIntersecting = %v, want %v", ids, want)
		}
	}
	if got := g.CellsIntersecting(NewRect(Point{200, 200}, Point{300, 300}), nil); len(got) != 0 {
		t.Errorf("cells for disjoint rect = %v, want none", got)
	}
	if got := g.CellsIntersecting(EmptyRect(), nil); len(got) != 0 {
		t.Errorf("cells for empty rect = %v, want none", got)
	}
}

func TestGridCellsIntersectingCoversCellPoints(t *testing.T) {
	// Property: for random rects, every grid cell that contains a random
	// point of the rect is listed.
	rng := rand.New(rand.NewSource(42))
	g := NewGrid(NewRect(Point{0, 0}, Point{1000, 1000}), 37)
	for i := 0; i < 200; i++ {
		a := Point{rng.Float64() * 1000, rng.Float64() * 1000}
		b := Point{rng.Float64() * 1000, rng.Float64() * 1000}
		r := NewRect(a, b)
		ids := g.CellsIntersecting(r, nil)
		set := make(map[int]bool, len(ids))
		for _, id := range ids {
			set[id] = true
		}
		for j := 0; j < 20; j++ {
			p := Point{
				r.Min.X + rng.Float64()*r.Width(),
				r.Min.Y + rng.Float64()*r.Height(),
			}
			if !set[g.CellID(p)] {
				t.Fatalf("cell %d of point %v in rect %+v missing from %v",
					g.CellID(p), p, r, ids)
			}
		}
	}
}

func TestGridTinyEnvironment(t *testing.T) {
	// Degenerate environments must still produce a usable 1×1 grid.
	g := NewGrid(Rect{}, 10)
	if g.NumCells() != 1 {
		t.Fatalf("NumCells = %d, want 1", g.NumCells())
	}
	if id := g.CellID(Point{123, -456}); id != 0 {
		t.Errorf("CellID = %d, want 0", id)
	}
	g2 := NewGrid(NewRect(Point{0, 0}, Point{5, 5}), 0) // invalid cell size
	if g2.NumCells() < 1 {
		t.Error("grid with invalid cell size must have ≥ 1 cell")
	}
}
