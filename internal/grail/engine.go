// Memory- and disk-resident GRAIL query engines.
//
// Both engines answer contact-network reachability queries by reducing them
// to vertex reachability on DN (the same reduction ReachGraph uses for its
// E-DFS baseline): the query is positive iff the vertex of the source at
// the interval start reaches the vertex of the destination at the interval
// end, because consecutive runs of the destination object are linked.
//
// The disk engine models the adaptation of §6.4: "the vertices are placed
// on disk in the same order they are generated during contact network
// construction". Vertex records — labels plus DN1 out-edges — are packed
// into page-sized blobs in vertex order; an in-memory table maps a vertex
// to its blob (the moral equivalent of offset arithmetic over fixed-size
// records). Pruning needs the labels of a child, which live in the child's
// record, so the pruned DFS pays a page read per *visited* vertex and the
// labels save only the descents — the structural reason GRAIL loses to
// ReachGraph on disk (Table 5b) while staying competitive in memory
// (Table 5a).
package grail

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"streach/internal/contact"
	"streach/internal/dn"
	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/trajectory"
	"streach/internal/visit"
)

// dfsScratch is the pooled working state of the label-pruned DFS: an
// epoch-stamped visited set over the DAG's dense vertex IDs plus a
// reusable stack. Steady-state memory-engine queries allocate nothing.
type dfsScratch struct {
	visited visit.Set
	stack   visit.Deque[dn.NodeID]
	visits  int
}

func newDFSPool() *visit.Pool[dfsScratch] {
	return visit.NewPool(func() *dfsScratch { return new(dfsScratch) })
}

func (sc *dfsScratch) reset(numNodes int) {
	sc.visited.Reset(numNodes)
	sc.stack.Reset()
	sc.visits = 0
}

// Mem is the memory-resident GRAIL engine.
type Mem struct {
	g      *dn.Graph
	labels *Labels
	pool   *visit.Pool[dfsScratch]
}

// NewMem labels g with d passes and returns a memory engine.
func NewMem(g *dn.Graph, d int, seed int64) (*Mem, error) {
	labels, err := BuildLabels(g, d, seed)
	if err != nil {
		return nil, err
	}
	return &Mem{g: g, labels: labels, pool: newDFSPool()}, nil
}

// Labels exposes the labelling (for tests).
func (m *Mem) Labels() *Labels { return m.labels }

// Reach answers the reachability query by label-pruned DFS.
func (m *Mem) Reach(q queries.Query) (bool, error) {
	ok, _, err := m.ReachCounted(context.Background(), q)
	return ok, err
}

// ReachCounted is Reach plus the number of vertices the pruned DFS visited.
// The context is observed inside the DFS loop.
func (m *Mem) ReachCounted(ctx context.Context, q queries.Query) (bool, int, error) {
	u, v, done, ans, err := entryVertices(m.g, q)
	if done || err != nil {
		return ans, 0, err
	}
	if !m.labels.MayReach(u, v) {
		return false, 0, nil
	}
	sc := m.pool.Get()
	defer m.pool.Put(sc)
	sc.reset(len(m.g.Nodes))
	sc.visited.Visit(int(u))
	sc.visits = 1
	sc.stack.PushBack(u)
	for sc.stack.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return false, sc.visits, err
		}
		cur, _ := sc.stack.PopBack()
		if cur == v {
			return true, sc.visits, nil
		}
		for _, c := range m.g.Nodes[cur].Out {
			if !sc.visited.Has(int(c)) && m.labels.MayReach(c, v) {
				sc.visited.Visit(int(c))
				sc.visits++
				sc.stack.PushBack(c)
			}
		}
	}
	return false, sc.visits, nil
}

// entryVertices maps a query to its DN entry vertices and handles the
// degenerate cases shared by both engines.
func entryVertices(g *dn.Graph, q queries.Query) (u, v dn.NodeID, done, ans bool, err error) {
	if int(q.Src) < 0 || int(q.Src) >= g.NumObjects ||
		int(q.Dst) < 0 || int(q.Dst) >= g.NumObjects {
		return 0, 0, true, false, fmt.Errorf("grail: query objects outside [0, %d)", g.NumObjects)
	}
	iv := q.Interval.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(g.NumTicks - 1)})
	if iv.Len() == 0 {
		return 0, 0, true, false, nil
	}
	if q.Src == q.Dst {
		return 0, 0, true, true, nil
	}
	u = g.NodeOf(q.Src, iv.Lo)
	v = g.NodeOf(q.Dst, iv.Hi)
	if u == dn.Invalid || v == dn.Invalid {
		return 0, 0, true, false, nil
	}
	if u == v {
		return 0, 0, true, true, nil
	}
	return u, v, false, false, nil
}

// Disk is the disk-resident GRAIL engine.
type Disk struct {
	store      *pagefile.Store
	d          int
	numObjects int
	numTicks   int

	blobOf   []int32            // vertex → blob index
	blobRefs []pagefile.BlobRef // blob catalogue
	dirRefs  []pagefile.BlobRef // per-object run directory

	pool *visit.Pool[dfsScratch]
}

// diskVertex is a decoded disk record.
type diskVertex struct {
	lo, hi []int32 // d labels
	out    []dn.NodeID
}

// NewDisk labels g and lays the labelled vertices out on a simulated disk
// in vertex (generation) order. pool, when non-nil, is a buffer pool shared
// with other indexes over the same dataset; otherwise a private pool of
// poolPages pages is used (0 selects 64, negative disables caching).
func NewDisk(g *dn.Graph, d int, seed int64, poolPages int, pool *pagefile.BufferPool) (*Disk, error) {
	if len(g.Nodes) == 0 {
		return nil, errors.New("grail: empty graph")
	}
	labels, err := BuildLabels(g, d, seed)
	if err != nil {
		return nil, err
	}
	if poolPages == 0 {
		poolPages = 64
	}
	dk := &Disk{
		store:      pagefile.NewStoreWith(pool, poolPages),
		d:          d,
		numObjects: g.NumObjects,
		numTicks:   g.NumTicks,
		blobOf:     make([]int32, len(g.Nodes)),
		pool:       newDFSPool(),
	}
	enc := pagefile.NewEncoder(pagefile.PageSize)
	var pending []dn.NodeID
	flush := func() {
		if len(pending) == 0 {
			return
		}
		enc.Reset()
		enc.Uint32(uint32(len(pending)))
		for _, id := range pending {
			enc.Int32(int32(id))
			for pass := 0; pass < d; pass++ {
				lo, hi := labels.Label(pass, id)
				enc.Int32(lo)
				enc.Int32(hi)
			}
			enc.Uint32(uint32(len(g.Nodes[id].Out)))
			for _, c := range g.Nodes[id].Out {
				enc.Int32(int32(c))
			}
		}
		dk.blobRefs = append(dk.blobRefs, dk.store.AppendBlob(enc.Bytes()))
		pending = pending[:0]
	}
	// Pack vertices into page-sized blobs in generation order.
	budget := 0
	for id := range g.Nodes {
		recSize := 4 + 8*d + 4 + 4*len(g.Nodes[id].Out)
		if budget+recSize > pagefile.PageSize-64 && len(pending) > 0 {
			flush()
			budget = 0
		}
		dk.blobOf[id] = int32(len(dk.blobRefs))
		pending = append(pending, dn.NodeID(id))
		budget += recSize
	}
	flush()

	// Per-object run directory, as in reachgraph: (end, node) pairs.
	dk.dirRefs = make([]pagefile.BlobRef, g.NumObjects)
	for o := 0; o < g.NumObjects; o++ {
		runs := g.RunsOf(trajectory.ObjectID(o))
		enc.Reset()
		enc.Uint32(uint32(len(runs)))
		for _, id := range runs {
			enc.Int32(int32(g.Nodes[id].End))
			enc.Int32(int32(id))
		}
		dk.dirRefs[o] = dk.store.AppendBlob(enc.Bytes())
	}
	return dk, nil
}

// Counters returns the store's cumulative I/O totals; per-query accountants
// passed to ReachCounted sum to consecutive Counters differences.
func (dk *Disk) Counters() pagefile.Stats { return dk.store.Counters() }

// ResetCounters zeroes the cumulative totals.
func (dk *Disk) ResetCounters() { dk.store.ResetCounters() }

// Store exposes the simulated disk.
func (dk *Disk) Store() *pagefile.Store { return dk.store }

// findVertex locates object o's vertex at tick t via the on-disk directory.
func (dk *Disk) findVertex(o trajectory.ObjectID, t trajectory.Tick, acct *pagefile.Stats) (dn.NodeID, error) {
	data, err := dk.store.ReadBlob(dk.dirRefs[o], acct)
	if err != nil {
		return dn.Invalid, fmt.Errorf("grail: directory of object %d: %w", o, err)
	}
	dec := pagefile.NewDecoder(data)
	n := int(dec.Uint32())
	type run struct {
		end  trajectory.Tick
		node dn.NodeID
	}
	runs := make([]run, n)
	for i := range runs {
		runs[i] = run{trajectory.Tick(dec.Int32()), dn.NodeID(dec.Int32())}
	}
	if err := dec.Err(); err != nil {
		return dn.Invalid, err
	}
	i := sort.Search(n, func(i int) bool { return runs[i].end >= t })
	if i == n {
		return dn.Invalid, fmt.Errorf("grail: object %d has no run at tick %d", o, t)
	}
	return runs[i].node, nil
}

// fetch decodes the record of vertex id, reading its blob if the per-query
// cache misses. Every decoded vertex ID is validated against the DAG's ID
// space: IDs index the blob catalogue and the epoch-stamped visited set,
// so corrupt pages must surface as errors, never as panics.
func (dk *Disk) fetch(id dn.NodeID, cache map[dn.NodeID]*diskVertex, acct *pagefile.Stats) (*diskVertex, error) {
	if v, ok := cache[id]; ok {
		return v, nil
	}
	if id < 0 || int(id) >= len(dk.blobOf) {
		return nil, fmt.Errorf("grail: vertex %d outside [0, %d)", id, len(dk.blobOf))
	}
	data, err := dk.store.ReadBlob(dk.blobRefs[dk.blobOf[id]], acct)
	if err != nil {
		return nil, fmt.Errorf("grail: blob of vertex %d: %w", id, err)
	}
	dec := pagefile.NewDecoder(data)
	n := dec.Uint32()
	for i := uint32(0); i < n && dec.Err() == nil; i++ {
		vid := dn.NodeID(dec.Int32())
		if vid < 0 || int(vid) >= len(dk.blobOf) {
			return nil, fmt.Errorf("grail: blob names vertex %d outside [0, %d)", vid, len(dk.blobOf))
		}
		v := &diskVertex{lo: make([]int32, dk.d), hi: make([]int32, dk.d)}
		for pass := 0; pass < dk.d; pass++ {
			v.lo[pass] = dec.Int32()
			v.hi[pass] = dec.Int32()
		}
		ne := dec.Uint32()
		if dec.Err() == nil && uint64(ne) > uint64(dec.Remaining()/4) {
			dec.Failf("grail: implausible edge count %d with %d bytes left", ne, dec.Remaining())
		}
		if dec.Err() != nil {
			break
		}
		v.out = make([]dn.NodeID, ne)
		for k := range v.out {
			c := dn.NodeID(dec.Int32())
			if c < 0 || int(c) >= len(dk.blobOf) {
				return nil, fmt.Errorf("grail: blob names vertex %d outside [0, %d)", c, len(dk.blobOf))
			}
			v.out[k] = c
		}
		cache[vid] = v
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	v, ok := cache[id]
	if !ok {
		return nil, fmt.Errorf("grail: vertex %d missing from its blob", id)
	}
	return v, nil
}

// contains reports label containment u ⊇ v on decoded records.
func contains(u, v *diskVertex) bool {
	for i := range u.lo {
		if v.lo[i] < u.lo[i] || v.hi[i] > u.hi[i] {
			return false
		}
	}
	return true
}

// Reach answers q with the disk-resident label-pruned DFS, charging all
// page reads to the store's cumulative Counters through a query-scoped
// accountant.
func (dk *Disk) Reach(q queries.Query) (bool, error) {
	var acct pagefile.Stats
	ok, _, err := dk.ReachCounted(context.Background(), q, &acct)
	return ok, err
}

// ReachCounted is Reach plus the number of vertices the pruned DFS visited.
// Page reads are charged to acct (which may be nil) in addition to the
// cumulative counters; all traversal state is per-query. The context is
// observed inside the DFS loop.
func (dk *Disk) ReachCounted(ctx context.Context, q queries.Query, acct *pagefile.Stats) (bool, int, error) {
	u, v, done, ans, err := dk.entry(q, acct)
	if done || err != nil {
		return ans, 0, err
	}
	cache := make(map[dn.NodeID]*diskVertex, 64)
	uRec, err := dk.fetch(u, cache, acct)
	if err != nil {
		return false, 0, err
	}
	vRec, err := dk.fetch(v, cache, acct)
	if err != nil {
		return false, 0, err
	}
	if !contains(uRec, vRec) {
		return false, 0, nil
	}
	sc := dk.pool.Get()
	defer dk.pool.Put(sc)
	sc.reset(len(dk.blobOf))
	sc.visited.Visit(int(u))
	sc.visits = 1
	sc.stack.PushBack(u)
	for sc.stack.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return false, sc.visits, err
		}
		cur, _ := sc.stack.PopBack()
		if cur == v {
			return true, sc.visits, nil
		}
		rec, err := dk.fetch(cur, cache, acct)
		if err != nil {
			return false, sc.visits, err
		}
		for _, c := range rec.out {
			if sc.visited.Has(int(c)) {
				continue
			}
			sc.visited.Visit(int(c))
			sc.visits++
			// Pruning requires the child's labels — a disk read; the
			// saving is in never descending below a pruned child.
			cRec, err := dk.fetch(c, cache, acct)
			if err != nil {
				return false, sc.visits, err
			}
			if contains(cRec, vRec) {
				sc.stack.PushBack(c)
			}
		}
	}
	return false, sc.visits, nil
}

// entry mirrors entryVertices using the on-disk directory.
func (dk *Disk) entry(q queries.Query, acct *pagefile.Stats) (u, v dn.NodeID, done, ans bool, err error) {
	if int(q.Src) < 0 || int(q.Src) >= dk.numObjects ||
		int(q.Dst) < 0 || int(q.Dst) >= dk.numObjects {
		return 0, 0, true, false, fmt.Errorf("grail: query objects outside [0, %d)", dk.numObjects)
	}
	iv := q.Interval.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(dk.numTicks - 1)})
	if iv.Len() == 0 {
		return 0, 0, true, false, nil
	}
	if q.Src == q.Dst {
		return 0, 0, true, true, nil
	}
	if u, err = dk.findVertex(q.Src, iv.Lo, acct); err != nil {
		return 0, 0, true, false, err
	}
	if v, err = dk.findVertex(q.Dst, iv.Hi, acct); err != nil {
		return 0, 0, true, false, err
	}
	if u == v {
		return 0, 0, true, true, nil
	}
	return u, v, false, false, nil
}
