// Package grail reimplements GRAIL (Yildirim, Chaoji, Zaki; PVLDB 2010),
// the graph-reachability baseline of §6.4: randomized interval labelling
// with label-pruned DFS. The paper runs GRAIL on the reduced contact
// network DN, both memory-resident (Table 5a, runtime) and adapted to disk
// with vertices placed in generation order (Table 5b, I/O count).
//
// Labelling. For each of d passes, a depth-first traversal over the DAG —
// visiting roots and children in random order — assigns post-order ranks.
// The label of v in pass i is the interval [s_i(v), r_i(v)], where r_i is
// v's rank and s_i is the minimum rank in v's DFS subtree. If u reaches v,
// every label of u contains the corresponding label of v; the converse does
// not hold, so containment is a necessary condition used to prune a DFS.
package grail

import (
	"errors"
	"fmt"
	"math/rand"

	"streach/internal/dn"
)

// Labels is a d-pass GRAIL labelling of a DAG.
type Labels struct {
	d      int
	lo, hi [][]int32 // [pass][vertex]
}

// D returns the number of label passes.
func (l *Labels) D() int { return l.d }

// BuildLabels computes d random interval labellings of g's DN1 DAG.
func BuildLabels(g *dn.Graph, d int, seed int64) (*Labels, error) {
	if d < 1 {
		return nil, errors.New("grail: need at least one labelling pass")
	}
	n := len(g.Nodes)
	l := &Labels{d: d, lo: make([][]int32, d), hi: make([][]int32, d)}
	rng := rand.New(rand.NewSource(seed))

	roots := make([]dn.NodeID, 0, 64)
	for id := range g.Nodes {
		if len(g.Nodes[id].In) == 0 {
			roots = append(roots, dn.NodeID(id))
		}
	}
	order := make([]dn.NodeID, len(roots))
	children := make([]dn.NodeID, 0, 16)
	// Vertex states: 0 unvisited, 1 expanded (exit frame pending), 2 ranked.
	state := make([]uint8, n)

	type frame struct {
		id    dn.NodeID
		enter bool
	}

	for pass := 0; pass < d; pass++ {
		lo := make([]int32, n)
		hi := make([]int32, n)
		for i := range state {
			state[i] = 0
		}
		copy(order, roots)
		rng.Shuffle(len(order), func(i, k int) { order[i], order[k] = order[k], order[i] })

		var rank int32 = 1
		stack := make([]frame, 0, 256)
		for _, r := range order {
			stack = append(stack[:0], frame{r, true})
			for len(stack) > 0 {
				f := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if !f.enter {
					// Post-visit: all children are ranked (their exit
					// frames were pushed above this one).
					hi[f.id] = rank
					lo[f.id] = rank
					rank++
					state[f.id] = 2
					for _, c := range g.Nodes[f.id].Out {
						if lo[c] < lo[f.id] {
							lo[f.id] = lo[c]
						}
					}
					continue
				}
				if state[f.id] != 0 {
					continue
				}
				state[f.id] = 1
				stack = append(stack, frame{f.id, false})
				children = append(children[:0], g.Nodes[f.id].Out...)
				rng.Shuffle(len(children), func(i, k int) {
					children[i], children[k] = children[k], children[i]
				})
				for _, c := range children {
					if state[c] == 0 {
						stack = append(stack, frame{c, true})
					}
				}
			}
		}
		l.lo[pass] = lo
		l.hi[pass] = hi
	}
	return l, nil
}

// MayReach reports whether the labels admit a path u → v: every label of u
// contains the corresponding label of v. False means definitely
// unreachable.
func (l *Labels) MayReach(u, v dn.NodeID) bool {
	for i := 0; i < l.d; i++ {
		if l.lo[i][v] < l.lo[i][u] || l.hi[i][v] > l.hi[i][u] {
			return false
		}
	}
	return true
}

// Contains exposes one pass's containment test (for property tests).
func (l *Labels) Contains(pass int, u, v dn.NodeID) bool {
	return l.lo[pass][v] >= l.lo[pass][u] && l.hi[pass][v] <= l.hi[pass][u]
}

// Label returns the pass-i interval of v.
func (l *Labels) Label(pass int, v dn.NodeID) (lo, hi int32) {
	return l.lo[pass][v], l.hi[pass][v]
}

// Validate checks the labelling invariants: every vertex is ranked and
// every edge u→v satisfies containment.
func (l *Labels) Validate(g *dn.Graph) error {
	for pass := 0; pass < l.d; pass++ {
		for id := range g.Nodes {
			if l.hi[pass][id] <= 0 {
				return fmt.Errorf("grail: pass %d left vertex %d unranked", pass, id)
			}
			for _, c := range g.Nodes[id].Out {
				if !l.Contains(pass, dn.NodeID(id), c) {
					return fmt.Errorf("grail: pass %d edge %d→%d violates containment", pass, id, c)
				}
			}
		}
	}
	return nil
}
