package grail

import (
	"testing"

	"streach/internal/contact"
	"streach/internal/dn"
	"streach/internal/mobility"
	"streach/internal/queries"
	"streach/internal/trajectory"
)

func buildGraph(t testing.TB, objects, ticks int, seed int64) (*dn.Graph, *queries.Oracle, *trajectory.Dataset) {
	t.Helper()
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: objects, NumTicks: ticks, Seed: seed})
	net := contact.Extract(d)
	g := dn.Build(net)
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	return g, queries.NewOracle(net), d
}

func TestLabelsValidate(t *testing.T) {
	g, _, _ := buildGraph(t, 40, 300, 31)
	for _, d := range []int{1, 2, 5} {
		labels, err := BuildLabels(g, d, 42)
		if err != nil {
			t.Fatal(err)
		}
		if err := labels.Validate(g); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}

func TestBuildLabelsRejectsZeroPasses(t *testing.T) {
	g, _, _ := buildGraph(t, 5, 20, 31)
	if _, err := BuildLabels(g, 0, 1); err == nil {
		t.Fatal("d=0: want error")
	}
}

// TestContainmentSound verifies the GRAIL soundness direction: if u reaches
// v in the DAG, every label of u contains the label of v. (Checked
// transitively, not just across single edges.)
func TestContainmentSound(t *testing.T) {
	g, _, _ := buildGraph(t, 25, 150, 32)
	labels, err := BuildLabels(g, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Transitive closure over the DAG in reverse topological order.
	n := len(g.Nodes)
	reach := make([]map[dn.NodeID]bool, n)
	for id := n - 1; id >= 0; id-- {
		r := map[dn.NodeID]bool{}
		for _, c := range g.Nodes[id].Out {
			r[c] = true
			for w := range reach[c] {
				r[w] = true
			}
		}
		reach[id] = r
	}
	for u := 0; u < n; u++ {
		for v := range reach[u] {
			if !labels.MayReach(dn.NodeID(u), v) {
				t.Fatalf("u=%d reaches v=%d but labels deny it", u, v)
			}
		}
	}
}

func TestMemMatchesOracle(t *testing.T) {
	g, oracle, d := buildGraph(t, 50, 350, 33)
	m, err := NewMem(g, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	work := queries.RandomWorkload(queries.WorkloadConfig{
		NumObjects: d.NumObjects(), NumTicks: d.NumTicks(),
		Count: 120, MinLen: 10, MaxLen: 250, Seed: 13,
	})
	var pos int
	for _, q := range work {
		want := oracle.Reachable(q)
		got, err := m.Reach(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: GRAIL %v, oracle %v", q, got, want)
		}
		if want {
			pos++
		}
	}
	if pos == 0 || pos == len(work) {
		t.Fatalf("degenerate workload: %d/%d positive", pos, len(work))
	}
}

func TestDiskMatchesMem(t *testing.T) {
	g, _, d := buildGraph(t, 40, 250, 34)
	m, err := NewMem(g, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	dk, err := NewDisk(g, 2, 17, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	work := queries.RandomWorkload(queries.WorkloadConfig{
		NumObjects: d.NumObjects(), NumTicks: d.NumTicks(),
		Count: 80, MinLen: 10, MaxLen: 180, Seed: 19,
	})
	for _, q := range work {
		a, err := m.Reach(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dk.Reach(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%v: mem %v, disk %v", q, a, b)
		}
	}
	if dk.Counters().RandomReads == 0 {
		t.Error("disk engine reported no random reads")
	}
}

func TestDiskDegenerates(t *testing.T) {
	g, _, _ := buildGraph(t, 10, 60, 35)
	dk, err := NewDisk(g, 2, 1, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dk.Reach(queries.Query{Src: -2, Dst: 1, Interval: contact.Interval{Lo: 0, Hi: 5}}); err == nil {
		t.Error("bad source: want error")
	}
	got, err := dk.Reach(queries.Query{Src: 1, Dst: 1, Interval: contact.Interval{Lo: 0, Hi: 5}})
	if err != nil || !got {
		t.Errorf("self query: got (%v, %v)", got, err)
	}
	got, err = dk.Reach(queries.Query{Src: 0, Dst: 1, Interval: contact.Interval{Lo: 7, Hi: 3}})
	if err != nil || got {
		t.Errorf("empty interval: got (%v, %v)", got, err)
	}
}

func TestNewDiskEmptyGraph(t *testing.T) {
	if _, err := NewDisk(&dn.Graph{}, 2, 1, 8, nil); err == nil {
		t.Fatal("empty graph: want error")
	}
}
