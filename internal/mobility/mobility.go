// Package mobility generates the synthetic contact datasets of the paper's
// §6 at laptop scale:
//
//   - RandomWaypoint reproduces the GMSF random-waypoint traces ("RWP
//     datasets"): individuals in an open environment, mean speed 2 m/s,
//     positions sampled every 6 s, Bluetooth-range contacts (dT = 25 m).
//   - NetworkVehicles reproduces the Brinkhoff-style traces ("VN datasets"):
//     vehicles constrained to a road network, positions sampled every 5 s,
//     DSRC-range contacts (dT = 300 m).
//   - TaxiDay substitutes the paper's proprietary Beijing GPS dataset
//     ("VNR"): a day of hotspot-biased taxi trips recorded every minute and
//     linearly interpolated to 5 s, exactly as §6 describes.
//
// All generators are deterministic given their seed. Scale-down preserves
// *contact density* (objects per contact disc): the RWP datasets keep the
// paper's 100 objects/km² with dT = 25 m and the VN datasets keep ~3.3
// vehicles/km² of city area with dT = 300 m, so component structure and
// index trade-offs carry over even though absolute sizes shrink.
package mobility

import (
	"fmt"
	"math"
	"math/rand"

	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/trajectory"
)

// RWPConfig configures RandomWaypoint.
type RWPConfig struct {
	NumObjects int
	NumTicks   int
	// Env defaults to a square sized for 100 objects/km² when empty.
	Env geo.Rect
	// MinSpeed and MaxSpeed bound the per-leg uniform speed in m/s.
	// Defaults 1 and 3 give the paper's 2 m/s average.
	MinSpeed, MaxSpeed float64
	// TickSeconds defaults to 6 (GMSF sampling period used in §6).
	TickSeconds float64
	// ContactDist defaults to 25 m (Bluetooth, §6).
	ContactDist float64
	// PauseTicks is the maximum pause at each waypoint (uniform in
	// [0, PauseTicks]); random waypoint commonly includes "thinking time".
	PauseTicks int
	Seed       int64
}

func (c *RWPConfig) applyDefaults() {
	if c.NumObjects <= 0 {
		c.NumObjects = 100
	}
	if c.NumTicks <= 0 {
		c.NumTicks = 1000
	}
	if c.Env.IsEmpty() || c.Env.Width() <= 0 || c.Env.Height() <= 0 {
		// 100 objects per km², the paper's RWP density (10k / 100 km²).
		side := math.Sqrt(float64(c.NumObjects) / 100.0 * 1e6)
		c.Env = geo.NewRect(geo.Point{}, geo.Point{X: side, Y: side})
	}
	if c.MinSpeed <= 0 {
		c.MinSpeed = 1
	}
	if c.MaxSpeed < c.MinSpeed {
		c.MaxSpeed = c.MinSpeed + 2
	}
	if c.TickSeconds <= 0 {
		c.TickSeconds = 6
	}
	if c.ContactDist <= 0 {
		c.ContactDist = 25
	}
}

// RandomWaypoint generates an RWP dataset: every object repeatedly picks a
// uniform destination in the environment and a uniform speed, moves there in
// a straight line, optionally pauses, and repeats (§6, [11]).
func RandomWaypoint(cfg RWPConfig) *trajectory.Dataset {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &trajectory.Dataset{
		Name:        fmt.Sprintf("RWP%d", cfg.NumObjects),
		Env:         cfg.Env,
		TickSeconds: cfg.TickSeconds,
		ContactDist: cfg.ContactDist,
	}
	for id := 0; id < cfg.NumObjects; id++ {
		pos := make([]geo.Point, cfg.NumTicks)
		cur := randPoint(rng, cfg.Env)
		dest := randPoint(rng, cfg.Env)
		speed := uniform(rng, cfg.MinSpeed, cfg.MaxSpeed)
		pause := 0
		for t := 0; t < cfg.NumTicks; t++ {
			pos[t] = cur
			if pause > 0 {
				pause--
				continue
			}
			step := speed * cfg.TickSeconds
			// legs bounds the waypoint renewals per tick so a degenerate
			// environment (or a destination equal to the current position)
			// cannot stall the sweep.
			for legs := 0; step > 0 && legs < 64; legs++ {
				d2 := cur.Dist(dest)
				if d2 > step {
					cur = cur.Lerp(dest, step/d2)
					break
				}
				// Arrive, pick the next leg; leftover movement continues
				// toward the new destination within the same tick.
				step -= d2
				cur = dest
				dest = randPoint(rng, cfg.Env)
				speed = uniform(rng, cfg.MinSpeed, cfg.MaxSpeed)
				if cfg.PauseTicks > 0 {
					pause = rng.Intn(cfg.PauseTicks + 1)
					break
				}
			}
		}
		d.Trajs = append(d.Trajs, trajectory.Trajectory{
			Object: trajectory.ObjectID(id),
			Pos:    pos,
		})
	}
	return d
}

// ClusteredConfig configures Clustered.
type ClusteredConfig struct {
	NumObjects int
	NumTicks   int
	// Env defaults to a square sized for 100 objects/km² when empty (the
	// RWP density rule; clusters are then ~NumClusters× denser inside).
	Env geo.Rect
	// NumClusters is the number of home regions (default max(4,
	// NumObjects/64)). Objects are assigned round-robin, so cluster
	// populations differ by at most one.
	NumClusters int
	// ClusterRadius is each home region's radius; the default spaces the
	// regions on a square grid and sizes them to a third of the grid pitch,
	// so neighboring regions stay well separated.
	ClusterRadius float64
	// RoamProb is the per-waypoint probability that the next leg leaves the
	// home region for a uniform point of the whole environment — the knob
	// separating clustered mixing from RWP's uniform mixing (default 0.02).
	// A roaming object returns home on the following leg.
	RoamProb float64
	// MinSpeed and MaxSpeed bound the per-leg uniform speed in m/s
	// (defaults 1 and 3, as RWP).
	MinSpeed, MaxSpeed float64
	// TickSeconds defaults to 6, ContactDist to 25 m (both as RWP).
	TickSeconds float64
	ContactDist float64
	// PauseTicks is the maximum pause at each waypoint.
	PauseTicks int
	Seed       int64
}

func (c *ClusteredConfig) applyDefaults() {
	if c.NumObjects <= 0 {
		c.NumObjects = 100
	}
	if c.NumTicks <= 0 {
		c.NumTicks = 1000
	}
	if c.Env.IsEmpty() || c.Env.Width() <= 0 || c.Env.Height() <= 0 {
		side := math.Sqrt(float64(c.NumObjects) / 100.0 * 1e6)
		c.Env = geo.NewRect(geo.Point{}, geo.Point{X: side, Y: side})
	}
	if c.NumClusters <= 0 {
		c.NumClusters = maxInt(4, c.NumObjects/64)
	}
	if c.NumClusters > c.NumObjects {
		c.NumClusters = c.NumObjects
	}
	if c.ClusterRadius <= 0 {
		grid := int(math.Ceil(math.Sqrt(float64(c.NumClusters))))
		pitch := math.Min(c.Env.Width(), c.Env.Height()) / float64(grid)
		c.ClusterRadius = pitch / 3
	}
	if c.RoamProb <= 0 {
		c.RoamProb = 0.02
	}
	if c.MinSpeed <= 0 {
		c.MinSpeed = 1
	}
	if c.MaxSpeed < c.MinSpeed {
		c.MaxSpeed = c.MinSpeed + 2
	}
	if c.TickSeconds <= 0 {
		c.TickSeconds = 6
	}
	if c.ContactDist <= 0 {
		c.ContactDist = 25
	}
}

// clusterCenters spaces the home regions on a square grid with a
// half-pitch margin, so every region disc lies inside the environment.
func clusterCenters(env geo.Rect, k int) []geo.Point {
	grid := int(math.Ceil(math.Sqrt(float64(k))))
	px := env.Width() / float64(grid)
	py := env.Height() / float64(grid)
	centers := make([]geo.Point, 0, k)
	for i := 0; i < k; i++ {
		gx, gy := i%grid, i/grid
		centers = append(centers, geo.Point{
			X: env.Min.X + (float64(gx)+0.5)*px,
			Y: env.Min.Y + (float64(gy)+0.5)*py,
		})
	}
	return centers
}

// Clustered generates a clustered-mobility dataset: every object orbits a
// home region (random waypoints inside a disc around its cluster center),
// occasionally roaming across the environment and returning. Contacts are
// therefore overwhelmingly intra-cluster — the locality a spatial
// partitioner exploits — while the rare roamers still bridge the clusters
// over time, unlike RWP's uniform mixing where every pair meets anywhere.
func Clustered(cfg ClusteredConfig) *trajectory.Dataset {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := clusterCenters(cfg.Env, cfg.NumClusters)
	d := &trajectory.Dataset{
		Name:        fmt.Sprintf("CLU%d", cfg.NumObjects),
		Env:         cfg.Env,
		TickSeconds: cfg.TickSeconds,
		ContactDist: cfg.ContactDist,
	}
	homePoint := func(home geo.Point) geo.Point {
		// Uniform in the home disc via rejection on the bounding square.
		for {
			p := geo.Point{
				X: home.X + (rng.Float64()*2-1)*cfg.ClusterRadius,
				Y: home.Y + (rng.Float64()*2-1)*cfg.ClusterRadius,
			}
			if p.Dist(home) <= cfg.ClusterRadius {
				return p
			}
		}
	}
	for id := 0; id < cfg.NumObjects; id++ {
		home := centers[id%cfg.NumClusters]
		pos := make([]geo.Point, cfg.NumTicks)
		cur := homePoint(home)
		roaming := false
		nextDest := func() geo.Point {
			if roaming {
				// One leg out ends the trip: head back to the home region.
				roaming = false
				return homePoint(home)
			}
			if rng.Float64() < cfg.RoamProb {
				roaming = true
				return randPoint(rng, cfg.Env)
			}
			return homePoint(home)
		}
		dest := nextDest()
		speed := uniform(rng, cfg.MinSpeed, cfg.MaxSpeed)
		pause := 0
		for t := 0; t < cfg.NumTicks; t++ {
			pos[t] = cur
			if pause > 0 {
				pause--
				continue
			}
			step := speed * cfg.TickSeconds
			for legs := 0; step > 0 && legs < 64; legs++ {
				d2 := cur.Dist(dest)
				if d2 > step {
					cur = cur.Lerp(dest, step/d2)
					break
				}
				step -= d2
				cur = dest
				dest = nextDest()
				speed = uniform(rng, cfg.MinSpeed, cfg.MaxSpeed)
				if cfg.PauseTicks > 0 {
					pause = rng.Intn(cfg.PauseTicks + 1)
					break
				}
			}
		}
		d.Trajs = append(d.Trajs, trajectory.Trajectory{
			Object: trajectory.ObjectID(id),
			Pos:    pos,
		})
	}
	return d
}

// VNConfig configures NetworkVehicles.
type VNConfig struct {
	NumObjects int
	NumTicks   int
	// Env defaults to a square sized for 3.33 vehicles/km² (the paper's
	// 1k vehicles / 300 km²) when empty.
	Env geo.Rect
	// GridX and GridY are the road-network grid dimensions (default scales
	// with the environment, one intersection per ~700 m).
	GridX, GridY int
	// RemoveFrac is the fraction of side streets removed (default 0.25).
	RemoveFrac float64
	// MinSpeed/MaxSpeed bound vehicle speed in m/s (defaults 8 and 14,
	// i.e. ~30–50 km/h urban driving).
	MinSpeed, MaxSpeed float64
	// TickSeconds defaults to 5 (Brinkhoff sampling period used in §6).
	TickSeconds float64
	// ContactDist defaults to 300 m (DSRC, §6).
	ContactDist float64
	Seed        int64
}

func (c *VNConfig) applyDefaults() {
	if c.NumObjects <= 0 {
		c.NumObjects = 100
	}
	if c.NumTicks <= 0 {
		c.NumTicks = 1000
	}
	if c.Env.IsEmpty() || c.Env.Width() <= 0 || c.Env.Height() <= 0 {
		side := math.Sqrt(float64(c.NumObjects) / 3.33 * 1e6)
		c.Env = geo.NewRect(geo.Point{}, geo.Point{X: side, Y: side})
	}
	if c.GridX <= 0 {
		c.GridX = maxInt(4, int(c.Env.Width()/700))
	}
	if c.GridY <= 0 {
		c.GridY = maxInt(4, int(c.Env.Height()/700))
	}
	if c.RemoveFrac <= 0 {
		c.RemoveFrac = 0.25
	}
	if c.MinSpeed <= 0 {
		c.MinSpeed = 8
	}
	if c.MaxSpeed < c.MinSpeed {
		c.MaxSpeed = c.MinSpeed + 6
	}
	if c.TickSeconds <= 0 {
		c.TickSeconds = 5
	}
	if c.ContactDist <= 0 {
		c.ContactDist = 300
	}
}

// NetworkVehicles generates a VN dataset: vehicles start at random
// intersections and repeatedly route to random destination intersections
// along shortest paths (Brinkhoff's network-based moving-objects model).
func NetworkVehicles(cfg VNConfig) *trajectory.Dataset {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := roadnet.SyntheticCity(rng, cfg.Env, cfg.GridX, cfg.GridY, cfg.RemoveFrac)
	d := generateOnNetwork(networkGenConfig{
		name:        fmt.Sprintf("VN%d", cfg.NumObjects),
		numObjects:  cfg.NumObjects,
		numTicks:    cfg.NumTicks,
		minSpeed:    cfg.MinSpeed,
		maxSpeed:    cfg.MaxSpeed,
		tickSeconds: cfg.TickSeconds,
		contactDist: cfg.ContactDist,
		env:         cfg.Env,
		hotspots:    nil,
		hotspotProb: 0,
	}, net, rng)
	return d
}

// TaxiConfig configures TaxiDay, the Beijing-dataset substitute.
type TaxiConfig struct {
	NumObjects int
	// NumMinutes is the length of the recorded trace in minutes (default
	// 1440 = one day, as in §6).
	NumMinutes int
	// Env defaults to a 600 km²-equivalent scale-down (same density rule as
	// VN datasets).
	Env geo.Rect
	// NumHotspots is the number of popular destinations (default 6);
	// HotspotProb is the chance a trip targets a hotspot (default 0.6).
	NumHotspots int
	HotspotProb float64
	// InterpFactor densifies the 1-minute fixes; default 12 yields the
	// 5-second positions used in §6.
	InterpFactor int
	ContactDist  float64
	Seed         int64
}

func (c *TaxiConfig) applyDefaults() {
	if c.NumObjects <= 0 {
		c.NumObjects = 125 // 2500 taxis / 20, matching the scale-down ratio
	}
	if c.NumMinutes <= 0 {
		c.NumMinutes = 1440
	}
	if c.Env.IsEmpty() || c.Env.Width() <= 0 || c.Env.Height() <= 0 {
		side := math.Sqrt(float64(c.NumObjects) / (2500.0 / 600.0) * 1e6)
		c.Env = geo.NewRect(geo.Point{}, geo.Point{X: side, Y: side})
	}
	if c.NumHotspots <= 0 {
		c.NumHotspots = 6
	}
	if c.HotspotProb <= 0 {
		c.HotspotProb = 0.6
	}
	if c.InterpFactor <= 0 {
		c.InterpFactor = 12
	}
	if c.ContactDist <= 0 {
		c.ContactDist = 300
	}
}

// TaxiDay generates the VNR dataset substitute: taxis drive between
// hotspot-biased destinations on a synthetic road network; positions are
// recorded once per minute and linearly interpolated to 5-second ticks.
func TaxiDay(cfg TaxiConfig) *trajectory.Dataset {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	gx := maxInt(4, int(cfg.Env.Width()/900))
	gy := maxInt(4, int(cfg.Env.Height()/900))
	net := roadnet.SyntheticCity(rng, cfg.Env, gx, gy, 0.2)

	hotspots := make([]roadnet.NodeID, cfg.NumHotspots)
	for i := range hotspots {
		hotspots[i] = net.RandomNode(rng)
	}

	minute := generateOnNetwork(networkGenConfig{
		name:        "VNR",
		numObjects:  cfg.NumObjects,
		numTicks:    cfg.NumMinutes,
		minSpeed:    7,
		maxSpeed:    13,
		tickSeconds: 60,
		contactDist: cfg.ContactDist,
		env:         cfg.Env,
		hotspots:    hotspots,
		hotspotProb: cfg.HotspotProb,
	}, net, rng)

	out := &trajectory.Dataset{
		Name:        "VNR",
		Env:         cfg.Env,
		TickSeconds: 60.0 / float64(cfg.InterpFactor),
		ContactDist: cfg.ContactDist,
	}
	for i := range minute.Trajs {
		out.Trajs = append(out.Trajs, trajectory.Interpolate(&minute.Trajs[i], cfg.InterpFactor))
	}
	return out
}

type networkGenConfig struct {
	name        string
	numObjects  int
	numTicks    int
	minSpeed    float64
	maxSpeed    float64
	tickSeconds float64
	contactDist float64
	env         geo.Rect
	hotspots    []roadnet.NodeID
	hotspotProb float64
}

func generateOnNetwork(cfg networkGenConfig, net *roadnet.Network, rng *rand.Rand) *trajectory.Dataset {
	d := &trajectory.Dataset{
		Name:        cfg.name,
		Env:         cfg.env,
		TickSeconds: cfg.tickSeconds,
		ContactDist: cfg.contactDist,
	}
	router := roadnet.NewRouter(net)
	pickDest := func(from roadnet.NodeID) roadnet.NodeID {
		for {
			var dst roadnet.NodeID
			if len(cfg.hotspots) > 0 && rng.Float64() < cfg.hotspotProb {
				dst = cfg.hotspots[rng.Intn(len(cfg.hotspots))]
			} else {
				dst = net.RandomNode(rng)
			}
			if dst != from {
				return dst
			}
		}
	}
	for id := 0; id < cfg.numObjects; id++ {
		pos := make([]geo.Point, cfg.numTicks)
		at := net.RandomNode(rng)
		dest := pickDest(at)
		path, err := router.ShortestPath(at, dest)
		if err != nil {
			// SyntheticCity guarantees connectivity; treat failure as a bug.
			panic(fmt.Sprintf("mobility: routing failed on connected network: %v", err))
		}
		w := roadnet.NewWalker(net, path)
		speed := uniform(rng, cfg.minSpeed, cfg.maxSpeed)
		for t := 0; t < cfg.numTicks; t++ {
			pos[t] = w.Pos()
			step := speed * cfg.tickSeconds
			for step > 0 {
				step -= w.Advance(step)
				if step <= 1e-9 {
					break
				}
				// Trip finished mid-tick: begin the next one.
				at, dest = dest, pickDest(dest)
				path, err = router.ShortestPath(at, dest)
				if err != nil {
					panic(fmt.Sprintf("mobility: routing failed on connected network: %v", err))
				}
				w = roadnet.NewWalker(net, path)
				speed = uniform(rng, cfg.minSpeed, cfg.maxSpeed)
			}
		}
		d.Trajs = append(d.Trajs, trajectory.Trajectory{
			Object: trajectory.ObjectID(id),
			Pos:    pos,
		})
	}
	return d
}

func randPoint(rng *rand.Rand, r geo.Rect) geo.Point {
	return geo.Point{
		X: r.Min.X + rng.Float64()*r.Width(),
		Y: r.Min.Y + rng.Float64()*r.Height(),
	}
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
