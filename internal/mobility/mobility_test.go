package mobility

import (
	"math"
	"testing"

	"streach/internal/geo"
	"streach/internal/trajectory"
)

func TestRandomWaypointBasics(t *testing.T) {
	d := RandomWaypoint(RWPConfig{NumObjects: 20, NumTicks: 200, Seed: 1})
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.NumObjects() != 20 || d.NumTicks() != 200 {
		t.Fatalf("shape = %d×%d", d.NumObjects(), d.NumTicks())
	}
	if d.ContactDist != 25 || d.TickSeconds != 6 {
		t.Errorf("defaults wrong: dT=%v tick=%v", d.ContactDist, d.TickSeconds)
	}
	if d.Name != "RWP20" {
		t.Errorf("Name = %q", d.Name)
	}
}

func TestRandomWaypointDeterministic(t *testing.T) {
	a := RandomWaypoint(RWPConfig{NumObjects: 5, NumTicks: 50, Seed: 7})
	b := RandomWaypoint(RWPConfig{NumObjects: 5, NumTicks: 50, Seed: 7})
	c := RandomWaypoint(RWPConfig{NumObjects: 5, NumTicks: 50, Seed: 8})
	for i := range a.Trajs {
		for k := range a.Trajs[i].Pos {
			if a.Trajs[i].Pos[k] != b.Trajs[i].Pos[k] {
				t.Fatal("same seed produced different trajectories")
			}
		}
	}
	same := true
	for i := range a.Trajs {
		for k := range a.Trajs[i].Pos {
			if a.Trajs[i].Pos[k] != c.Trajs[i].Pos[k] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestRandomWaypointSpeedBounds(t *testing.T) {
	cfg := RWPConfig{NumObjects: 10, NumTicks: 300, Seed: 3, MinSpeed: 1, MaxSpeed: 3}
	d := RandomWaypoint(cfg)
	maxStep := cfg.MaxSpeed*d.TickSeconds + 1e-9
	for i := range d.Trajs {
		tr := &d.Trajs[i]
		for k := 1; k < len(tr.Pos); k++ {
			step := tr.Pos[k].Dist(tr.Pos[k-1])
			if step > maxStep {
				t.Fatalf("object %d moved %.2f m in one tick (max %.2f)", i, step, maxStep)
			}
		}
	}
}

func TestRandomWaypointDensityPreserved(t *testing.T) {
	d := RandomWaypoint(RWPConfig{NumObjects: 400, NumTicks: 1, Seed: 4})
	areaKm2 := d.Env.Width() * d.Env.Height() / 1e6
	density := float64(d.NumObjects()) / areaKm2
	if math.Abs(density-100) > 1 {
		t.Errorf("density = %.1f objects/km², want 100", density)
	}
}

func TestRandomWaypointPause(t *testing.T) {
	d := RandomWaypoint(RWPConfig{NumObjects: 10, NumTicks: 400, Seed: 5, PauseTicks: 5})
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// With pauses some consecutive samples must coincide.
	stationary := 0
	for i := range d.Trajs {
		tr := &d.Trajs[i]
		for k := 1; k < len(tr.Pos); k++ {
			if tr.Pos[k] == tr.Pos[k-1] {
				stationary++
			}
		}
	}
	if stationary == 0 {
		t.Error("PauseTicks > 0 produced no stationary steps")
	}
}

func TestNetworkVehiclesBasics(t *testing.T) {
	d := NetworkVehicles(VNConfig{NumObjects: 15, NumTicks: 150, Seed: 1})
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.NumObjects() != 15 || d.NumTicks() != 150 {
		t.Fatalf("shape = %d×%d", d.NumObjects(), d.NumTicks())
	}
	if d.ContactDist != 300 || d.TickSeconds != 5 {
		t.Errorf("defaults wrong: dT=%v tick=%v", d.ContactDist, d.TickSeconds)
	}
	if d.Name != "VN15" {
		t.Errorf("Name = %q", d.Name)
	}
}

func TestNetworkVehiclesMoveAndStayInEnv(t *testing.T) {
	d := NetworkVehicles(VNConfig{NumObjects: 10, NumTicks: 200, Seed: 2})
	moved := false
	for i := range d.Trajs {
		tr := &d.Trajs[i]
		for k := 1; k < len(tr.Pos); k++ {
			if !d.Env.Contains(tr.Pos[k]) {
				t.Fatalf("vehicle %d leaves environment", i)
			}
			if tr.Pos[k] != tr.Pos[k-1] {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("no vehicle ever moved")
	}
}

func TestNetworkVehiclesNonUniform(t *testing.T) {
	// Vehicles are constrained to roads, so a fine occupancy grid must have
	// many empty cells — the property §6.3 attributes ReachGraph's VN win to.
	d := NetworkVehicles(VNConfig{NumObjects: 40, NumTicks: 100, Seed: 3})
	g := geo.NewGrid(d.Env, d.Env.Width()/40)
	occupied := make(map[int]bool)
	for i := range d.Trajs {
		for _, p := range d.Trajs[i].Pos {
			occupied[g.CellID(p)] = true
		}
	}
	frac := float64(len(occupied)) / float64(g.NumCells())
	if frac > 0.7 {
		t.Errorf("vehicles cover %.0f%% of cells; expected strong road-induced skew", frac*100)
	}
}

func TestTaxiDayBasics(t *testing.T) {
	d := TaxiDay(TaxiConfig{NumObjects: 8, NumMinutes: 30, Seed: 1})
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// 30 one-minute fixes interpolated ×12 → (30-1)*12+1 ticks.
	if want := (30-1)*12 + 1; d.NumTicks() != want {
		t.Fatalf("NumTicks = %d, want %d", d.NumTicks(), want)
	}
	if d.TickSeconds != 5 {
		t.Errorf("TickSeconds = %v, want 5", d.TickSeconds)
	}
	if d.Name != "VNR" {
		t.Errorf("Name = %q", d.Name)
	}
}

func TestTaxiDayInterpolationIsSmooth(t *testing.T) {
	d := TaxiDay(TaxiConfig{NumObjects: 5, NumMinutes: 20, Seed: 2})
	// Max speed 13 m/s × 60 s per recorded step, spread over 12 sub-steps.
	maxStep := 13.0*60/12 + 1e-6
	for i := range d.Trajs {
		tr := &d.Trajs[i]
		for k := 1; k < len(tr.Pos); k++ {
			if s := tr.Pos[k].Dist(tr.Pos[k-1]); s > maxStep {
				t.Fatalf("taxi %d interpolated step %.1f m exceeds %.1f m", i, s, maxStep)
			}
		}
	}
}

func TestGeneratorsProduceContacts(t *testing.T) {
	// Sanity: the default densities must yield some co-located pairs,
	// otherwise every reachability query would be trivially false.
	for _, d := range []*trajectory.Dataset{
		RandomWaypoint(RWPConfig{NumObjects: 100, NumTicks: 100, Seed: 9}),
		NetworkVehicles(VNConfig{NumObjects: 40, NumTicks: 100, Seed: 9}),
	} {
		contacts := 0
		for t0 := 0; t0 < d.NumTicks(); t0 += 10 {
			for i := 0; i < d.NumObjects() && contacts == 0; i++ {
				for j := i + 1; j < d.NumObjects(); j++ {
					pi := d.Trajs[i].Pos[t0]
					pj := d.Trajs[j].Pos[t0]
					if pi.Dist(pj) <= d.ContactDist {
						contacts++
						break
					}
				}
			}
		}
		if contacts == 0 {
			t.Errorf("dataset %s produced no contacts at sampled instants", d.Name)
		}
	}
}
