// Package nonimmediate implements the second §7 extension: non-immediate
// contacts. An item deposited by object oi at time t (e.g. a virus left on
// a bus seat) can still infect object oj at time t′ ≥ t if oj comes within
// dT of the deposit position and t′ − t does not exceed the item lifetime
// Tt. A non-immediate contact is therefore *directed* and carries both an
// emission and a reception instant; [t, t′] is its validity interval.
//
// Extraction joins each object's position against the "replicated
// trajectories" of all others — every position sample is replicated for the
// Tt instants after its timestamp, exactly the adaptation §7 prescribes.
// Lifetime 0 degenerates to the ordinary immediate contact network, which
// the tests pin against the deterministic oracle.
package nonimmediate

import (
	"errors"
	"fmt"
	"sort"

	"streach/internal/contact"
	"streach/internal/geo"
	"streach/internal/queries"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// Contact is a directed non-immediate contact: From deposits the item at
// Emit; To picks it up at Receive (Emit ≤ Receive ≤ Emit + lifetime).
type Contact struct {
	From, To      trajectory.ObjectID
	Emit, Receive trajectory.Tick
}

// Extract computes all non-immediate contacts of dataset d with the given
// item lifetime (in ticks). For each reception instant t′ it joins the
// current positions against the deposit positions of the previous lifetime
// instants. Lifetime 0 yields the ordinary (bidirectional) contacts.
func Extract(d *trajectory.Dataset, lifetime int) []Contact {
	if lifetime < 0 {
		lifetime = 0
	}
	numTicks := trajectory.Tick(d.NumTicks())
	j := stjoin.NewJoiner(d.Env, d.ContactDist)
	var out []Contact

	pts := make([]geo.Point, 0, 2*d.NumObjects())
	ids := make([]trajectory.ObjectID, 0, 2*d.NumObjects())
	for recv := trajectory.Tick(0); recv < numTicks; recv++ {
		lo := recv - trajectory.Tick(lifetime)
		if lo < 0 {
			lo = 0
		}
		for emit := lo; emit <= recv; emit++ {
			pts, ids = pts[:0], ids[:0]
			// First block: deposit positions at emit; second block:
			// receiver positions at recv.
			n := 0
			for i := range d.Trajs {
				if d.Trajs[i].Covers(emit) {
					pts = append(pts, d.Trajs[i].At(emit))
					ids = append(ids, d.Trajs[i].Object)
					n++
				}
			}
			recvBase := n
			for i := range d.Trajs {
				if d.Trajs[i].Covers(recv) {
					pts = append(pts, d.Trajs[i].At(recv))
					ids = append(ids, d.Trajs[i].Object)
				}
			}
			j.Join(pts, func(a, b int) bool {
				// Keep only emitter→receiver pairs across the two blocks.
				if a >= recvBase { // both receivers
					return true
				}
				if b < recvBase { // both emitters
					return true
				}
				from, to := ids[a], ids[b]
				if from == to {
					return true
				}
				out = append(out, Contact{From: from, To: to, Emit: emit, Receive: recv})
				return true
			})
		}
	}
	sort.Slice(out, func(i, k int) bool {
		a, b := out[i], out[k]
		if a.Receive != b.Receive {
			return a.Receive < b.Receive
		}
		if a.Emit != b.Emit {
			return a.Emit < b.Emit
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return dedup(out)
}

// ProjectNetwork folds directed non-immediate contacts into an undirected
// contact network any registry backend can index: each From→To contact
// contributes its [Emit, Receive] span to the unordered pair's validity,
// and overlapping or adjacent spans merge. The projection over-approximates
// the directed semantics for positive lifetimes (the pair is connected both
// ways across the whole span); at lifetime 0 every span is a single instant
// in both directions, so the projection reproduces the immediate contact
// network of contact.Extract exactly — the round-trip the tests pin.
func ProjectNetwork(numObjects, numTicks int, cs []Contact) *contact.Network {
	type pair struct{ a, b trajectory.ObjectID }
	spans := make(map[pair][]contact.Interval)
	for _, c := range cs {
		a, b := c.From, c.To
		if a > b {
			a, b = b, a
		}
		spans[pair{a, b}] = append(spans[pair{a, b}], contact.Interval{Lo: c.Emit, Hi: c.Receive})
	}
	var out []contact.Contact
	for p, list := range spans {
		sort.Slice(list, func(i, k int) bool {
			if list[i].Lo != list[k].Lo {
				return list[i].Lo < list[k].Lo
			}
			return list[i].Hi < list[k].Hi
		})
		cur := list[0]
		for _, iv := range list[1:] {
			if iv.Lo <= cur.Hi+1 {
				if iv.Hi > cur.Hi {
					cur.Hi = iv.Hi
				}
				continue
			}
			out = append(out, contact.Contact{A: p.a, B: p.b, Validity: cur})
			cur = iv
		}
		out = append(out, contact.Contact{A: p.a, B: p.b, Validity: cur})
	}
	return contact.FromContacts(numObjects, numTicks, out)
}

func dedup(cs []Contact) []Contact {
	w := 0
	for i, c := range cs {
		if i > 0 && c == cs[i-1] {
			continue
		}
		cs[w] = c
		w++
	}
	return cs[:w]
}

// Engine evaluates reachability over a set of non-immediate contacts.
type Engine struct {
	numObjects int
	numTicks   int
	byReceive  [][]Contact // contacts grouped by reception tick
}

// NewEngine indexes the contacts by reception instant.
func NewEngine(numObjects, numTicks int, contacts []Contact) (*Engine, error) {
	if numObjects <= 0 || numTicks <= 0 {
		return nil, errors.New("nonimmediate: empty domain")
	}
	e := &Engine{
		numObjects: numObjects,
		numTicks:   numTicks,
		byReceive:  make([][]Contact, numTicks),
	}
	for _, c := range contacts {
		if c.From < 0 || int(c.From) >= numObjects || c.To < 0 || int(c.To) >= numObjects {
			return nil, fmt.Errorf("nonimmediate: contact %+v outside object domain", c)
		}
		if c.Emit > c.Receive || c.Emit < 0 || int(c.Receive) >= numTicks {
			return nil, fmt.Errorf("nonimmediate: contact %+v outside time domain", c)
		}
		e.byReceive[c.Receive] = append(e.byReceive[c.Receive], c)
	}
	return e, nil
}

// never marks an object that does not receive the item.
const never = trajectory.Tick(-1)

// InfectionTimes returns, for every object, the earliest instant in iv at
// which it holds an item initiated by src at iv.Lo, or −1 if it never does.
func (e *Engine) InfectionTimes(src trajectory.ObjectID, iv contact.Interval) ([]trajectory.Tick, error) {
	if src < 0 || int(src) >= e.numObjects {
		return nil, fmt.Errorf("nonimmediate: source %d outside [0, %d)", src, e.numObjects)
	}
	inf := make([]trajectory.Tick, e.numObjects)
	for i := range inf {
		inf[i] = never
	}
	iv = iv.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(e.numTicks - 1)})
	if iv.Len() == 0 {
		return inf, nil
	}
	inf[src] = iv.Lo
	for t := iv.Lo; t <= iv.Hi; t++ {
		group := e.byReceive[t]
		if len(group) == 0 {
			continue
		}
		// Fixpoint within the reception instant: a fresh infection at t
		// can immediately hand the item onward through a same-instant
		// contact (Emit == Receive == t).
		for changed := true; changed; {
			changed = false
			for _, c := range group {
				if inf[c.To] != never {
					continue
				}
				// The emitter must hold the item at the emission instant,
				// and the emission must fall inside the query interval.
				if ft := inf[c.From]; ft != never && ft <= c.Emit && c.Emit >= iv.Lo {
					inf[c.To] = t
					changed = true
				}
			}
		}
	}
	return inf, nil
}

// Reachable answers the reachability query under non-immediate semantics.
func (e *Engine) Reachable(q queries.Query) (bool, error) {
	if q.Dst < 0 || int(q.Dst) >= e.numObjects {
		return false, fmt.Errorf("nonimmediate: destination %d outside [0, %d)", q.Dst, e.numObjects)
	}
	if q.Src == q.Dst {
		return q.Interval.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(e.numTicks - 1)}).Len() > 0, nil
	}
	inf, err := e.InfectionTimes(q.Src, q.Interval)
	if err != nil {
		return false, err
	}
	return inf[q.Dst] != never, nil
}

// ReachableSet returns every object holding the item by the end of iv.
func (e *Engine) ReachableSet(src trajectory.ObjectID, iv contact.Interval) ([]trajectory.ObjectID, error) {
	inf, err := e.InfectionTimes(src, iv)
	if err != nil {
		return nil, err
	}
	var out []trajectory.ObjectID
	for o, t := range inf {
		if t != never {
			out = append(out, trajectory.ObjectID(o))
		}
	}
	return out, nil
}
