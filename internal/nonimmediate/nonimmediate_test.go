package nonimmediate

import (
	"testing"

	"streach/internal/contact"
	"streach/internal/geo"
	"streach/internal/mobility"
	"streach/internal/queries"
	"streach/internal/trajectory"
)

func rwp(objects, ticks int, seed int64) *trajectory.Dataset {
	return mobility.RandomWaypoint(mobility.RWPConfig{
		NumObjects: objects, NumTicks: ticks, Seed: seed,
	})
}

// TestLifetimeZeroMatchesImmediateOracle pins the degenerate case: with
// lifetime 0, non-immediate reachability equals the paper's ordinary
// semantics.
func TestLifetimeZeroMatchesImmediateOracle(t *testing.T) {
	d := rwp(40, 200, 71)
	oracle := queries.NewOracle(contact.Extract(d))
	cs := Extract(d, 0)
	e, err := NewEngine(d.NumObjects(), d.NumTicks(), cs)
	if err != nil {
		t.Fatal(err)
	}
	work := queries.RandomWorkload(queries.WorkloadConfig{
		NumObjects: d.NumObjects(), NumTicks: d.NumTicks(),
		Count: 100, MinLen: 10, MaxLen: 150, Seed: 73,
	})
	for _, q := range work {
		want := oracle.Reachable(q)
		got, err := e.Reachable(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: nonimmediate(0) %v, oracle %v", q, got, want)
		}
	}
}

// TestProjectNetworkLifetimeZeroRoundTrip pins the projection round-trip:
// folding the lifetime-0 directed contacts into an undirected network must
// reproduce the deterministic oracle of contact.Extract exactly — same
// contact records, same answers.
func TestProjectNetworkLifetimeZeroRoundTrip(t *testing.T) {
	d := rwp(35, 160, 89)
	direct := contact.Extract(d)
	projected := ProjectNetwork(d.NumObjects(), d.NumTicks(), Extract(d, 0))
	if got, want := len(projected.Contacts), len(direct.Contacts); got != want {
		t.Fatalf("projected %d contacts, direct extraction %d", got, want)
	}
	for i, dc := range direct.Contacts {
		pc := projected.Contacts[i]
		// The projection carries no distance sidecar (Weight 0 = unknown),
		// so compare the topology and validity only.
		if pc.A != dc.A || pc.B != dc.B || pc.Validity != dc.Validity {
			t.Fatalf("contact %d differs: projected %+v, direct %+v", i, pc, dc)
		}
	}
	want := queries.NewOracle(direct)
	got := queries.NewOracle(projected)
	work := queries.RandomWorkload(queries.WorkloadConfig{
		NumObjects: d.NumObjects(), NumTicks: d.NumTicks(),
		Count: 80, MinLen: 10, MaxLen: 120, Seed: 97,
	})
	for _, q := range work {
		if got.Reachable(q) != want.Reachable(q) {
			t.Fatalf("%v: projected oracle disagrees with deterministic oracle", q)
		}
	}
}

// TestProjectNetworkOverApproximates: for positive lifetimes the undirected
// projection may only add reachability over the exact directed engine,
// never remove it.
func TestProjectNetworkOverApproximates(t *testing.T) {
	d := rwp(25, 100, 101)
	cs := Extract(d, 4)
	exact, err := NewEngine(d.NumObjects(), d.NumTicks(), cs)
	if err != nil {
		t.Fatal(err)
	}
	proj := queries.NewOracle(ProjectNetwork(d.NumObjects(), d.NumTicks(), cs))
	work := queries.RandomWorkload(queries.WorkloadConfig{
		NumObjects: d.NumObjects(), NumTicks: d.NumTicks(),
		Count: 60, MinLen: 10, MaxLen: 80, Seed: 103,
	})
	for _, q := range work {
		want, err := exact.Reachable(q)
		if err != nil {
			t.Fatal(err)
		}
		if want && !proj.Reachable(q) {
			t.Fatalf("%v: directed engine reaches but projection does not", q)
		}
	}
}

// TestLifetimeMonotone verifies that a longer item lifetime never shrinks
// the reachable set.
func TestLifetimeMonotone(t *testing.T) {
	d := rwp(30, 120, 79)
	iv := contact.Interval{Lo: 0, Hi: 119}
	var prev map[trajectory.ObjectID]bool
	for _, lt := range []int{0, 3, 10} {
		e, err := NewEngine(d.NumObjects(), d.NumTicks(), Extract(d, lt))
		if err != nil {
			t.Fatal(err)
		}
		set, err := e.ReachableSet(2, iv)
		if err != nil {
			t.Fatal(err)
		}
		cur := make(map[trajectory.ObjectID]bool, len(set))
		for _, o := range set {
			cur[o] = true
		}
		for o := range prev {
			if !cur[o] {
				t.Fatalf("lifetime %d lost object %d reachable at shorter lifetime", lt, o)
			}
		}
		prev = cur
	}
}

// lineup turns x coordinates into points on the x-axis, one per tick.
func lineup(xs []float64) []geo.Point {
	pts := make([]geo.Point, len(xs))
	for i, x := range xs {
		pts[i] = geo.Point{X: x}
	}
	return pts
}

// TestBusScenario reconstructs §7's motivating example: u deposits the item
// at a location, leaves, and v arrives within the lifetime.
func TestBusScenario(t *testing.T) {
	// Object 0 sits at the "bus" (x=0) until tick 2, then leaves; object 1
	// arrives there at tick 5. They are never within dT simultaneously.
	d := &trajectory.Dataset{
		Name:        "bus",
		Env:         geo.NewRect(geo.Point{}, geo.Point{X: 1000, Y: 1000}),
		TickSeconds: 1,
		ContactDist: 10,
	}
	pos0 := []float64{0, 0, 0, 500, 500, 500, 500, 500, 500, 500}
	pos1 := []float64{900, 900, 900, 900, 900, 0, 0, 900, 900, 900}
	d.Trajs = []trajectory.Trajectory{
		{Object: 0, Pos: lineup(pos0)},
		{Object: 1, Pos: lineup(pos1)},
	}

	// Immediate contact never happens: at tick 5 object 0 is at 500.
	imm, err := NewEngine(2, 10, Extract(d, 0))
	if err != nil {
		t.Fatal(err)
	}
	q := queries.Query{Src: 0, Dst: 1, Interval: contact.Interval{Lo: 0, Hi: 9}}
	if got, _ := imm.Reachable(q); got {
		t.Fatal("immediate semantics: want unreachable")
	}
	// With lifetime ≥ 3, the deposit at tick 2 (position 0) survives until
	// object 1 arrives at tick 5.
	non, err := NewEngine(2, 10, Extract(d, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := non.Reachable(q); !got {
		t.Fatal("lifetime 3: want reachable")
	}
	// Lifetime 2 is one tick too short.
	short, err := NewEngine(2, 10, Extract(d, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := short.Reachable(q); got {
		t.Fatal("lifetime 2: want unreachable")
	}
	// Directionality: object 1's deposit at tick 5 (position 0) cannot
	// reach object 0, which never returns there.
	back := queries.Query{Src: 1, Dst: 0, Interval: contact.Interval{Lo: 0, Hi: 9}}
	if got, _ := non.Reachable(back); got {
		t.Fatal("reverse direction: want unreachable")
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(0, 10, nil); err == nil {
		t.Error("zero objects: want error")
	}
	if _, err := NewEngine(2, 10, []Contact{{From: 5, To: 0, Emit: 0, Receive: 1}}); err == nil {
		t.Error("bad object: want error")
	}
	if _, err := NewEngine(2, 10, []Contact{{From: 0, To: 1, Emit: 5, Receive: 1}}); err == nil {
		t.Error("emit after receive: want error")
	}
	e, err := NewEngine(2, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.InfectionTimes(-1, contact.Interval{Lo: 0, Hi: 5}); err == nil {
		t.Error("bad source: want error")
	}
	ok, err := e.Reachable(queries.Query{Src: 0, Dst: 0, Interval: contact.Interval{Lo: 0, Hi: 3}})
	if err != nil || !ok {
		t.Errorf("self query: got (%v, %v)", ok, err)
	}
}

func TestInfectionTimesOrdered(t *testing.T) {
	d := rwp(25, 100, 83)
	e, err := NewEngine(d.NumObjects(), d.NumTicks(), Extract(d, 2))
	if err != nil {
		t.Fatal(err)
	}
	iv := contact.Interval{Lo: 5, Hi: 95}
	inf, err := e.InfectionTimes(0, iv)
	if err != nil {
		t.Fatal(err)
	}
	if inf[0] != iv.Lo {
		t.Fatalf("source infection time %d, want %d", inf[0], iv.Lo)
	}
	infected := 0
	for o, tt := range inf {
		if tt == never {
			continue
		}
		if tt < iv.Lo || tt > iv.Hi {
			t.Fatalf("object %d infected at %d outside %v", o, tt, iv)
		}
		infected++
	}
	if infected < 2 {
		t.Fatalf("only %d objects infected; dataset too sparse for the test", infected)
	}
}
