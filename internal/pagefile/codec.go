package pagefile

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Format identifies the record layout of a blob. Every index blob begins
// with one format byte, so layouts can evolve while old pages keep
// decoding: readers dispatch on the byte they find, writers emit the byte
// of the format their builder was configured with.
type Format byte

const (
	// FormatFixed is the v1 layout: fixed-width little-endian 32/64-bit
	// fields. It is what the original builders wrote (minus the leading
	// format byte) and stays fully supported.
	FormatFixed Format = 1
	// FormatVarint is the v2 layout: varint counts and ticks,
	// delta-compressed sorted ID postings, and prediction-XOR'd float64
	// positions. It is the default: postings dominated by small deltas
	// routinely shrink 2-4x, which cuts the pages read per query.
	FormatVarint Format = 2
)

// Valid reports whether f is a known format.
func (f Format) Valid() bool { return f == FormatFixed || f == FormatVarint }

// String returns the format's bench/CLI name.
func (f Format) String() string {
	switch f {
	case FormatFixed:
		return "fixed"
	case FormatVarint:
		return "varint-delta"
	}
	return fmt.Sprintf("format(%d)", byte(f))
}

// NormalizeFormat maps the zero value to the default format (FormatVarint)
// and leaves explicit choices alone.
func NormalizeFormat(f Format) Format {
	if f == 0 {
		return FormatVarint
	}
	return f
}

// Encoder serializes index records into the byte blobs stored by a Store.
// It is a thin, allocation-friendly wrapper over little-endian encoding;
// every index layout in streach (grid cells, graph partitions, hash tables)
// uses it so that on-disk formats stay uniform and testable.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the encoder for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint32 appends a fixed-width 32-bit value.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// Int32 appends a fixed-width signed 32-bit value.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 appends a fixed-width 64-bit value.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Int64 appends a fixed-width signed 64-bit value.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Float64 appends an IEEE-754 double.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Int32Slice appends a length-prefixed slice of int32.
func (e *Encoder) Int32Slice(vs []int32) {
	e.Uint32(uint32(len(vs)))
	for _, v := range vs {
		e.Int32(v)
	}
}

// Raw appends bytes verbatim (for records pre-encoded with another
// Encoder).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Byte appends one raw byte (format tags).
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Format appends the blob's format byte; every index blob starts with one.
func (e *Encoder) Format(f Format) { e.Byte(byte(f)) }

// Uvarint appends v in LEB128 variable-width encoding (1 byte for values
// below 128 — counts, ticks and deltas are almost always that small).
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends v in zig-zag varint encoding (small magnitudes of either
// sign stay short).
func (e *Encoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Uint32Delta appends a sorted (non-decreasing) uint32 slice as a uvarint
// length, the first value, and uvarint gaps — the posting-list layout of
// the varint format. The caller must pass a non-decreasing slice.
func (e *Encoder) Uint32Delta(vs []uint32) {
	e.Uvarint(uint64(len(vs)))
	prev := uint32(0)
	for i, v := range vs {
		if i == 0 {
			e.Uvarint(uint64(v))
		} else {
			e.Uvarint(uint64(v - prev)) // non-negative by contract
		}
		prev = v
	}
}

// Int32SliceDelta appends a length-prefixed int32 slice as zig-zag varint
// deltas between consecutive elements. Any slice round-trips; sorted ID
// postings (small non-negative gaps) compress best.
func (e *Encoder) Int32SliceDelta(vs []int32) {
	e.Uvarint(uint64(len(vs)))
	prev := int32(0)
	for _, v := range vs {
		e.Varint(int64(v) - int64(prev))
		prev = v
	}
}

// Float64Xor appends v as the uvarint of bits(v) XOR bits(pred). When the
// caller predicts well (positions along a near-linear trajectory under a
// linear extrapolation predictor) the XOR has only a few noisy low bits and
// encodes in 1-3 bytes instead of 8. Decoding with the same pred is exact:
// the predictor runs on already-decoded values on both sides, so the
// reconstruction is lossless for every input.
func (e *Encoder) Float64Xor(pred, v float64) {
	e.Uvarint(math.Float64bits(v) ^ math.Float64bits(pred))
}

// Decoder reads back records written by Encoder. Decoding past the end of
// the buffer or with inconsistent lengths returns an error rather than
// panicking, so corrupted pages surface as errors (failure injection in
// tests relies on this).
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Failf marks the decoder as failed with a caller-supplied reason (layout
// level validation: implausible counts, IDs outside the dataset). Later
// reads return zero values, exactly as after an internal decode error; an
// earlier error wins.
func (d *Decoder) Failf(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("pagefile: decode past end (need %d bytes, have %d)", n, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Skip advances past n bytes (fixed-width records whose values the caller
// does not need).
func (d *Decoder) Skip(n int) { d.take(n) }

// Uint32 reads a fixed-width 32-bit value (0 after an error).
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Int32 reads a fixed-width signed 32-bit value.
func (d *Decoder) Int32() int32 { return int32(d.Uint32()) }

// Uint64 reads a fixed-width 64-bit value (0 after an error).
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int64 reads a fixed-width signed 64-bit value.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Int32Slice reads a length-prefixed slice of int32. The payload is taken
// in one bounds-checked slice and decoded with bulk little-endian reads —
// one take per slice, not one per element.
func (d *Decoder) Int32Slice() []int32 {
	n := int(d.Uint32())
	if d.err != nil {
		return nil
	}
	if n < 0 || n*4 > d.Remaining() {
		d.err = fmt.Errorf("pagefile: implausible slice length %d with %d bytes left", n, d.Remaining())
		return nil
	}
	b := d.take(4 * n)
	if b == nil {
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return vs
}

// Byte reads one raw byte (0 after an error).
func (d *Decoder) Byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Format reads and validates a blob's leading format byte. An unknown byte
// is an error: it means the blob was written by a newer layout (or is
// corrupt), and decoding it as anything else would mis-read every field.
func (d *Decoder) Format() Format {
	f := Format(d.Byte())
	if d.err == nil && !f.Valid() {
		d.err = fmt.Errorf("pagefile: unknown page format %d", byte(f))
	}
	return f
}

// Uvarint reads a LEB128-encoded unsigned value (0 after an error).
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("pagefile: truncated or overlong uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zig-zag varint (0 after an error).
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("pagefile: truncated or overlong varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Uint32Delta reads a posting list written by Encoder.Uint32Delta,
// appending onto dst (which may be nil). The whole list is decoded in one
// pass over the remaining buffer — no per-element bounds-checked take.
func (d *Decoder) Uint32Delta(dst []uint32) []uint32 {
	n := int(d.Uvarint())
	if d.err != nil {
		return dst
	}
	// Every element costs at least one byte, so a length beyond the
	// remaining bytes is corrupt without reading further.
	if n < 0 || n > d.Remaining() {
		d.err = fmt.Errorf("pagefile: implausible delta-list length %d with %d bytes left", n, d.Remaining())
		return dst
	}
	prev := uint64(0)
	for i := 0; i < n; i++ {
		gap := d.Uvarint()
		if d.err != nil {
			return dst
		}
		if i == 0 {
			prev = gap
		} else {
			prev += gap
		}
		if prev > math.MaxUint32 {
			d.err = fmt.Errorf("pagefile: delta list overflows uint32 at element %d", i)
			return dst
		}
		dst = append(dst, uint32(prev))
	}
	return dst
}

// Int32SliceDelta reads a slice written by Encoder.Int32SliceDelta.
func (d *Decoder) Int32SliceDelta() []int32 {
	n := int(d.Uvarint())
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.Remaining() {
		d.err = fmt.Errorf("pagefile: implausible delta-list length %d with %d bytes left", n, d.Remaining())
		return nil
	}
	if n == 0 {
		return nil
	}
	vs := make([]int32, 0, n)
	prev := int64(0)
	for i := 0; i < n; i++ {
		delta := d.Varint()
		if d.err != nil {
			return nil
		}
		prev += delta
		if prev < math.MinInt32 || prev > math.MaxInt32 {
			d.err = fmt.Errorf("pagefile: delta list overflows int32 at element %d", i)
			return nil
		}
		vs = append(vs, int32(prev))
	}
	return vs
}

// Float64Xor reads a value written by Encoder.Float64Xor against the same
// prediction.
func (d *Decoder) Float64Xor(pred float64) float64 {
	return math.Float64frombits(d.Uvarint() ^ math.Float64bits(pred))
}
