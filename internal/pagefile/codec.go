package pagefile

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder serializes index records into the byte blobs stored by a Store.
// It is a thin, allocation-friendly wrapper over little-endian encoding;
// every index layout in streach (grid cells, graph partitions, hash tables)
// uses it so that on-disk formats stay uniform and testable.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the encoder for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint32 appends a fixed-width 32-bit value.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// Int32 appends a fixed-width signed 32-bit value.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 appends a fixed-width 64-bit value.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Int64 appends a fixed-width signed 64-bit value.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Float64 appends an IEEE-754 double.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Int32Slice appends a length-prefixed slice of int32.
func (e *Encoder) Int32Slice(vs []int32) {
	e.Uint32(uint32(len(vs)))
	for _, v := range vs {
		e.Int32(v)
	}
}

// Raw appends bytes verbatim (for records pre-encoded with another
// Encoder).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Decoder reads back records written by Encoder. Decoding past the end of
// the buffer or with inconsistent lengths returns an error rather than
// panicking, so corrupted pages surface as errors (failure injection in
// tests relies on this).
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("pagefile: decode past end (need %d bytes, have %d)", n, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint32 reads a fixed-width 32-bit value (0 after an error).
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Int32 reads a fixed-width signed 32-bit value.
func (d *Decoder) Int32() int32 { return int32(d.Uint32()) }

// Uint64 reads a fixed-width 64-bit value (0 after an error).
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int64 reads a fixed-width signed 64-bit value.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Int32Slice reads a length-prefixed slice of int32.
func (d *Decoder) Int32Slice() []int32 {
	n := int(d.Uint32())
	if d.err != nil {
		return nil
	}
	if n < 0 || n*4 > d.Remaining() {
		d.err = fmt.Errorf("pagefile: implausible slice length %d with %d bytes left", n, d.Remaining())
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = d.Int32()
	}
	return vs
}
