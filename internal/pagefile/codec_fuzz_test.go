package pagefile

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzCodecRoundTrip drives both page formats through encode→decode with
// fuzz-chosen values, and additionally decodes a truncated and a corrupted
// copy of every encoding: whatever the bytes, decoders must either
// round-trip exactly or set Err() — never panic, never loop.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(0), uint8(0))
	f.Add(int64(42), uint8(0), uint8(3), uint8(200))
	f.Add(int64(-9), uint8(255), uint8(255), uint8(17))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, cut uint8, flip uint8) {
		rng := rand.New(rand.NewSource(seed))

		ticks := make([]uint32, int(n)%61)
		for i := range ticks {
			ticks[i] = rng.Uint32() % (1 << 20)
			if i > 0 && ticks[i] < ticks[i-1] {
				ticks[i] = ticks[i-1] // Uint32Delta needs non-decreasing
			}
		}
		ids := make([]int32, int(n)%47)
		for i := range ids {
			ids[i] = int32(rng.Uint32())
		}
		pts := make([]float64, int(n)%23)
		for i := range pts {
			pts[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(12)-6))
		}
		u64 := rng.Uint64()
		i64 := rng.Int63() - rng.Int63()

		for _, format := range []Format{FormatFixed, FormatVarint} {
			enc := NewEncoder(64)
			enc.Format(format)
			switch format {
			case FormatFixed:
				enc.Uint64(u64)
				enc.Int64(i64)
				enc.Int32Slice(ids)
				enc.Uint32(uint32(len(ticks)))
				for _, v := range ticks {
					enc.Uint32(v)
				}
				enc.Uint32(uint32(len(pts)))
				for _, p := range pts {
					enc.Float64(p)
				}
			case FormatVarint:
				enc.Uvarint(u64)
				enc.Varint(i64)
				enc.Int32SliceDelta(ids)
				enc.Uint32Delta(ticks)
				enc.Uvarint(uint64(len(pts)))
				pred := 0.0
				for i, p := range pts {
					enc.Float64Xor(pred, p)
					if i == 0 {
						pred = p
					} else {
						pred = 2*p - pts[i-1]
					}
				}
			}
			buf := enc.Bytes()

			// Clean round trip must be exact.
			dec := NewDecoder(buf)
			if got := dec.Format(); got != format {
				t.Fatalf("format byte: got %v, want %v", got, format)
			}
			switch format {
			case FormatFixed:
				checkEq(t, "u64", dec.Uint64(), u64)
				checkEq(t, "i64", dec.Int64(), i64)
				gotIDs := dec.Int32Slice()
				checkSlice(t, "ids", gotIDs, ids)
				nt := int(dec.Uint32())
				for i := 0; i < nt; i++ {
					checkEq(t, "tick", dec.Uint32(), ticks[i])
				}
				np := int(dec.Uint32())
				for i := 0; i < np; i++ {
					checkEq(t, "pt", dec.Float64(), pts[i])
				}
			case FormatVarint:
				checkEq(t, "u64", dec.Uvarint(), u64)
				checkEq(t, "i64", dec.Varint(), i64)
				gotIDs := dec.Int32SliceDelta()
				checkSlice(t, "ids", gotIDs, ids)
				gotTicks := dec.Uint32Delta(nil)
				checkSlice(t, "ticks", gotTicks, ticks)
				np := int(dec.Uvarint())
				pred := 0.0
				for i := 0; i < np; i++ {
					p := dec.Float64Xor(pred)
					checkEq(t, "pt", math.Float64bits(p), math.Float64bits(pts[i]))
					if i == 0 {
						pred = p
					} else {
						pred = 2*p - pts[i-1]
					}
				}
			}
			if err := dec.Err(); err != nil {
				t.Fatalf("%v round trip: %v", format, err)
			}
			if dec.Remaining() != 0 {
				t.Fatalf("%v round trip left %d bytes", format, dec.Remaining())
			}

			// Truncated and bit-flipped copies must decode to values or an
			// error, never panic; exercising both formats' corruption paths.
			if len(buf) > 0 {
				drainAll(NewDecoder(buf[:int(cut)%len(buf)]))
				mangled := append([]byte(nil), buf...)
				mangled[int(flip)%len(mangled)] ^= 0xFF
				drainAll(NewDecoder(mangled))
			}
		}
	})
}

// drainAll pulls every decoder primitive from d until it errors or the
// buffer empties, guarding against panics and unbounded allocation on
// corrupt input.
func drainAll(d *Decoder) {
	d.Format()
	for d.Err() == nil && d.Remaining() > 0 {
		d.Uvarint()
		d.Varint()
		d.Uint32Delta(nil)
		d.Int32SliceDelta()
		d.Int32Slice()
		d.Uint32()
		d.Float64Xor(1.5)
	}
}

func checkEq[T comparable](t *testing.T, what string, got, want T) {
	t.Helper()
	if got != want {
		t.Fatalf("%s: got %v, want %v", what, got, want)
	}
}

func checkSlice[T comparable](t *testing.T, what string, got, want []T) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: got %v, want %v", what, i, got[i], want[i])
		}
	}
}
