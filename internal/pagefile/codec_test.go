package pagefile

import (
	"math"
	"math/rand"
	"testing"
)

func TestVarintRoundTrip(t *testing.T) {
	enc := NewEncoder(64)
	uvals := []uint64{0, 1, 127, 128, 300, 1 << 20, math.MaxUint64}
	ivals := []int64{0, -1, 1, -64, 64, -300, 300, math.MinInt64, math.MaxInt64}
	for _, v := range uvals {
		enc.Uvarint(v)
	}
	for _, v := range ivals {
		enc.Varint(v)
	}
	dec := NewDecoder(enc.Bytes())
	for _, want := range uvals {
		if got := dec.Uvarint(); got != want {
			t.Fatalf("Uvarint: got %d, want %d", got, want)
		}
	}
	for _, want := range ivals {
		if got := dec.Varint(); got != want {
			t.Fatalf("Varint: got %d, want %d", got, want)
		}
	}
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
	if dec.Remaining() != 0 {
		t.Fatalf("%d bytes left over", dec.Remaining())
	}
}

func TestUint32DeltaRoundTrip(t *testing.T) {
	for _, vs := range [][]uint32{
		nil,
		{0},
		{5},
		{0, 0, 0},
		{1, 2, 3, 100, 100, 1 << 30, math.MaxUint32},
	} {
		enc := NewEncoder(64)
		enc.Uint32Delta(vs)
		dec := NewDecoder(enc.Bytes())
		got := dec.Uint32Delta(nil)
		if err := dec.Err(); err != nil {
			t.Fatalf("%v: %v", vs, err)
		}
		if len(got) != len(vs) {
			t.Fatalf("%v: got %v", vs, got)
		}
		for i := range vs {
			if got[i] != vs[i] {
				t.Fatalf("%v: got %v", vs, got)
			}
		}
	}
}

func TestInt32SliceDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := [][]int32{
		nil,
		{0},
		{-1, 1, -1},
		{math.MinInt32, math.MaxInt32, 0},
	}
	random := make([]int32, 500)
	for i := range random {
		random[i] = int32(rng.Uint32())
	}
	cases = append(cases, random)
	for _, vs := range cases {
		enc := NewEncoder(64)
		enc.Int32SliceDelta(vs)
		dec := NewDecoder(enc.Bytes())
		got := dec.Int32SliceDelta()
		if err := dec.Err(); err != nil {
			t.Fatalf("%v: %v", vs, err)
		}
		if len(got) != len(vs) {
			t.Fatalf("len %d, want %d", len(got), len(vs))
		}
		for i := range vs {
			if got[i] != vs[i] {
				t.Fatalf("element %d: got %d, want %d", i, got[i], vs[i])
			}
		}
	}
}

// TestInt32SliceDeltaCompressesSortedPostings pins the point of the format:
// a sorted dense posting list must encode well below 4 bytes per element.
func TestInt32SliceDeltaCompressesSortedPostings(t *testing.T) {
	vs := make([]int32, 1000)
	for i := range vs {
		vs[i] = int32(3 * i)
	}
	enc := NewEncoder(64)
	enc.Int32SliceDelta(vs)
	if n := enc.Len(); n > len(vs)*2 {
		t.Fatalf("sorted postings took %d bytes for %d elements", n, len(vs))
	}
}

func TestFloat64XorRoundTrip(t *testing.T) {
	vals := []float64{0, 1, -1, 3.14159, 1e-300, 1e300, math.Inf(1), math.Inf(-1)}
	enc := NewEncoder(64)
	pred := 0.0
	for _, v := range vals {
		enc.Float64Xor(pred, v)
		pred = v
	}
	dec := NewDecoder(enc.Bytes())
	pred = 0.0
	for _, want := range vals {
		got := dec.Float64Xor(pred)
		if got != want {
			t.Fatalf("got %v, want %v", got, want)
		}
		pred = got
	}
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestFloat64XorLinearPredictor pins the compression property the grid cell
// layout relies on: points along a line under the 2*b-a extrapolation
// predictor encode in a few bytes each, and reconstruction is bit-exact.
func TestFloat64XorLinearPredictor(t *testing.T) {
	pts := make([]float64, 64)
	for i := range pts {
		pts[i] = 5000.0 + 12.5*float64(i)
	}
	enc := NewEncoder(64)
	enc.Float64(pts[0])
	enc.Float64Xor(pts[0], pts[1])
	for i := 2; i < len(pts); i++ {
		enc.Float64Xor(2*pts[i-1]-pts[i-2], pts[i])
	}
	if n := enc.Len(); n > 8+len(pts)*3 {
		t.Fatalf("linear trajectory took %d bytes for %d points", n, len(pts))
	}
	dec := NewDecoder(enc.Bytes())
	got := make([]float64, len(pts))
	got[0] = dec.Float64()
	got[1] = dec.Float64Xor(got[0])
	for i := 2; i < len(pts); i++ {
		got[i] = dec.Float64Xor(2*got[i-1] - got[i-2])
	}
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatalf("point %d: got %v, want %v", i, got[i], pts[i])
		}
	}
}

func TestFormatByte(t *testing.T) {
	for _, f := range []Format{FormatFixed, FormatVarint} {
		enc := NewEncoder(4)
		enc.Format(f)
		dec := NewDecoder(enc.Bytes())
		if got := dec.Format(); got != f || dec.Err() != nil {
			t.Fatalf("format %v: got %v, err %v", f, got, dec.Err())
		}
	}
	dec := NewDecoder([]byte{0x7F})
	dec.Format()
	if dec.Err() == nil {
		t.Fatal("unknown format byte decoded without error")
	}
	if NormalizeFormat(0) != FormatVarint {
		t.Fatal("zero format must normalize to FormatVarint")
	}
	if NormalizeFormat(FormatFixed) != FormatFixed {
		t.Fatal("explicit FormatFixed must be preserved")
	}
}

func TestBulkInt32Slice(t *testing.T) {
	vs := make([]int32, 1337)
	rng := rand.New(rand.NewSource(3))
	for i := range vs {
		vs[i] = int32(rng.Uint32())
	}
	enc := NewEncoder(64)
	enc.Int32Slice(vs)
	dec := NewDecoder(enc.Bytes())
	got := dec.Int32Slice()
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("element %d: got %d, want %d", i, got[i], vs[i])
		}
	}
}

// TestDecoderTruncation feeds every strict prefix of an encoded stream to
// each decoder and checks truncation is reported, never panicked on.
func TestDecoderTruncation(t *testing.T) {
	enc := NewEncoder(64)
	enc.Uvarint(1 << 40)
	enc.Varint(-(1 << 40))
	enc.Uint32Delta([]uint32{1, 5, 500000})
	enc.Int32SliceDelta([]int32{-7, 7, 1 << 29})
	enc.Int32Slice([]int32{1, 2, 3})
	enc.Float64Xor(0, 3.7)
	full := enc.Bytes()
	for cut := 0; cut < len(full); cut++ {
		dec := NewDecoder(full[:cut])
		dec.Uvarint()
		dec.Varint()
		dec.Uint32Delta(nil)
		dec.Int32SliceDelta()
		dec.Int32Slice()
		dec.Float64Xor(0)
		if dec.Err() == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
	}
}
