package pagefile

import (
	"bytes"
	"testing"
)

// packing_stats_test.go pins the I/O accounting of v2 sub-page blob
// packing: many small blobs share one 4 KiB page (BlobRef.Off locates
// them), and reading them back must charge each *page* exactly once per
// fetch — never once per blob — with the per-stream deltas, the store
// totals and the buffer-pool counters all telling the same story.

// packSmallBlobs appends n distinct small blobs and returns their refs;
// several land on each page.
func packSmallBlobs(st *Store, n int) []BlobRef {
	refs := make([]BlobRef, n)
	for i := range refs {
		refs[i] = st.AppendBlob(bytes.Repeat([]byte{byte(i)}, 40+i%7))
	}
	return refs
}

// TestPackedSamePageReadsCountOnce reads a run of packed blobs through one
// stream on a pool-less store: the first fetch of a page is random, every
// further fetch of the *same* page (the next blob behind the head) and of
// the successor page is sequential, and the page count charged equals the
// pages fetched — not the blobs read.
func TestPackedSamePageReadsCountOnce(t *testing.T) {
	st := NewStore(-1) // no pool: every read goes to "disk"
	refs := packSmallBlobs(st, 60)
	if st.NumPages() >= int64(len(refs)) {
		t.Fatalf("packing broken: %d blobs occupy %d pages", len(refs), st.NumPages())
	}
	var acct Stats
	samePage := 0
	for i, ref := range refs {
		if i > 0 && ref.Page == refs[i-1].Page {
			samePage++
		}
		if _, err := st.ReadBlob(ref, &acct); err != nil {
			t.Fatal(err)
		}
	}
	if samePage == 0 {
		t.Fatal("test layout never co-located two blobs on a page")
	}
	if acct.RandomReads != 1 {
		t.Fatalf("ascending packed scan charged %d random reads, want 1", acct.RandomReads)
	}
	// One fetch per blob-page touch: same-page re-fetches and successor
	// pages are all sequential, and single-page blobs touch one page each.
	if want := int64(len(refs)) - 1; acct.SequentialReads != want {
		t.Fatalf("packed scan charged %d sequential reads, want %d", acct.SequentialReads, want)
	}
	if got := st.Counters(); got.RandomReads != acct.RandomReads || got.SequentialReads != acct.SequentialReads {
		t.Fatalf("store totals %+v diverge from the one stream's delta %+v", got, acct)
	}
}

// TestPackedDeltaTotalPoolInvariant is the delta==total==pool check under
// the packed layout: with a pool large enough to hold the store, each page
// is fetched from disk exactly once regardless of how many blobs it packs,
// and every later blob read on it is a buffer hit.
func TestPackedDeltaTotalPoolInvariant(t *testing.T) {
	st := NewStore(64)
	refs := packSmallBlobs(st, 60)
	base := st.Pool().Stats()

	var sum Stats
	for qi := 0; qi < 3; qi++ { // several "queries", each its own stream
		var acct Stats
		for _, ref := range refs {
			if _, err := st.ReadBlob(ref, &acct); err != nil {
				t.Fatal(err)
			}
		}
		sum.Add(acct)
	}
	totals := st.Counters()
	if sum.RandomReads != totals.RandomReads ||
		sum.SequentialReads != totals.SequentialReads ||
		sum.BufferHits != totals.BufferHits {
		t.Fatalf("stream deltas %+v do not sum to store totals %+v", sum, totals)
	}
	pool := st.Pool().Stats()
	if misses := pool.Misses - base.Misses; totals.RandomReads+totals.SequentialReads != misses {
		t.Fatalf("totals count %d page fetches, pool saw %d misses",
			totals.RandomReads+totals.SequentialReads, misses)
	}
	if hits := pool.Hits - base.Hits; totals.BufferHits != hits {
		t.Fatalf("totals count %d buffer hits, pool saw %d", totals.BufferHits, hits)
	}
	// Each physical page was fetched exactly once: 60 blob reads × 3
	// queries missed only NumPages times in total.
	if fetched := totals.RandomReads + totals.SequentialReads; fetched != st.NumPages() {
		t.Fatalf("fetched %d pages from disk, want one fetch per page (%d)", fetched, st.NumPages())
	}
}

// TestPackedEncoderBlobsRoundTrip reads packed varint-encoded blobs back
// and checks payload integrity is independent of their page offset.
func TestPackedEncoderBlobsRoundTrip(t *testing.T) {
	st := NewStore(8)
	enc := NewEncoder(64)
	var refs []BlobRef
	for i := 0; i < 40; i++ {
		enc.Reset()
		enc.Format(FormatVarint)
		enc.Uvarint(uint64(i))
		enc.Varint(int64(-i))
		refs = append(refs, st.AppendBlob(enc.Bytes()))
	}
	for i, ref := range refs {
		data, err := st.ReadBlob(ref, nil)
		if err != nil {
			t.Fatalf("blob %d (off %d): %v", i, ref.Off, err)
		}
		dec := NewDecoder(data)
		if f := dec.Format(); f != FormatVarint {
			t.Fatalf("blob %d: format %v", i, f)
		}
		if u := dec.Uvarint(); u != uint64(i) {
			t.Fatalf("blob %d: uvarint %d", i, u)
		}
		if v := dec.Varint(); v != int64(-i) {
			t.Fatalf("blob %d: varint %d", i, v)
		}
		if err := dec.Err(); err != nil {
			t.Fatal(err)
		}
	}
}
