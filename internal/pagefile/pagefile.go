// Package pagefile simulates the disk subsystem of the paper's evaluation:
// a paged store with a buffer pool and an I/O accountant that distinguishes
// random from sequential page accesses.
//
// The paper measures index performance as the number of random I/Os, with
// sequential accesses normalized to 1/20 of a random access (§6, citing
// Corral et al.). Reproducing the experiments therefore needs a disk *model*
// rather than a physical disk: Store places serialized blobs on consecutive
// 4 KiB pages, and Stats counts a page read as sequential exactly when it is
// the physical successor of the previously read page.
package pagefile

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PageSize is the size of one disk page in bytes (Table 3: 4 KiB pages).
const PageSize = 4096

// SeqCostRatio is how many sequential accesses cost as much as one random
// access (§6).
const SeqCostRatio = 20

// ErrCorruptBlob is returned when a blob fails its integrity check on read.
var ErrCorruptBlob = errors.New("pagefile: corrupt blob")

// Stats accumulates I/O counts. The zero value is ready to use.
type Stats struct {
	RandomReads     int64
	SequentialReads int64
	PagesWritten    int64
	BufferHits      int64

	lastPage int64 // physical id of the last page fetched from "disk"
	valid    bool  // whether lastPage is meaningful
}

// Normalized returns the paper's headline metric: random reads plus
// sequential reads scaled by 1/SeqCostRatio.
func (s *Stats) Normalized() float64 {
	return float64(s.RandomReads) + float64(s.SequentialReads)/SeqCostRatio
}

// Reset zeroes all counters, starting a new measurement window.
func (s *Stats) Reset() { *s = Stats{} }

func (s *Stats) recordRead(page int64) {
	if s.valid && page == s.lastPage+1 {
		s.SequentialReads++
	} else {
		s.RandomReads++
	}
	s.lastPage = page
	s.valid = true
}

// Store is an append-only simulated disk holding fixed-size pages. Blobs
// (serialized index nodes, grid cells, partitions …) are written onto runs
// of consecutive pages; reading a blob fetches its pages through the buffer
// pool and charges the Stats.
type Store struct {
	pages [][]byte
	stats Stats
	pool  *BufferPool
}

// NewStore returns an empty store whose reads go through a buffer pool of
// poolPages pages. poolPages ≤ 0 disables caching entirely.
func NewStore(poolPages int) *Store {
	st := &Store{}
	if poolPages > 0 {
		st.pool = NewBufferPool(poolPages)
	}
	return st
}

// Stats exposes the store's I/O accountant.
func (st *Store) Stats() *Stats { return &st.stats }

// NumPages returns the number of pages written so far.
func (st *Store) NumPages() int64 { return int64(len(st.pages)) }

// SizeBytes returns the total on-disk size.
func (st *Store) SizeBytes() int64 { return st.NumPages() * PageSize }

// DropCache empties the buffer pool (e.g. between measured queries) without
// touching the I/O counters.
func (st *Store) DropCache() {
	if st.pool != nil {
		st.pool.Clear()
	}
}

// BlobRef locates a blob on the store.
type BlobRef struct {
	Page  int64 // first page
	Bytes int32 // payload length in bytes
}

// Null reports whether the reference does not point at any blob.
func (r BlobRef) Null() bool { return r.Bytes == 0 && r.Page == 0 }

// blobHeader is a small per-blob integrity header: payload length plus an
// additive checksum, letting ReadBlob detect truncated or corrupted pages.
const blobHeaderSize = 8

// AppendBlob writes data onto fresh consecutive pages and returns its
// reference. An empty blob is legal and occupies one page.
func (st *Store) AppendBlob(data []byte) BlobRef {
	buf := make([]byte, blobHeaderSize+len(data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(data)))
	binary.LittleEndian.PutUint32(buf[4:8], checksum(data))
	copy(buf[blobHeaderSize:], data)

	first := int64(len(st.pages))
	for off := 0; off < len(buf) || off == 0; off += PageSize {
		end := off + PageSize
		if end > len(buf) {
			end = len(buf)
		}
		page := make([]byte, PageSize)
		copy(page, buf[off:end])
		st.pages = append(st.pages, page)
		st.stats.PagesWritten++
		if end == len(buf) {
			break
		}
	}
	return BlobRef{Page: first, Bytes: int32(len(buf))}
}

// ReadBlob fetches the blob at ref, charging the stats for pages that miss
// the buffer pool. The returned slice must not be modified.
func (st *Store) ReadBlob(ref BlobRef) ([]byte, error) {
	if ref.Bytes < blobHeaderSize {
		return nil, fmt.Errorf("%w: header too short (%d bytes)", ErrCorruptBlob, ref.Bytes)
	}
	numPages := (int64(ref.Bytes) + PageSize - 1) / PageSize
	if ref.Page < 0 || ref.Page+numPages > int64(len(st.pages)) {
		return nil, fmt.Errorf("pagefile: blob [%d, %d) outside store of %d pages",
			ref.Page, ref.Page+numPages, len(st.pages))
	}
	buf := make([]byte, 0, numPages*PageSize)
	for p := ref.Page; p < ref.Page+numPages; p++ {
		buf = append(buf, st.fetchPage(p)...)
	}
	buf = buf[:ref.Bytes]
	n := binary.LittleEndian.Uint32(buf[0:4])
	if int64(n) != int64(ref.Bytes)-blobHeaderSize {
		return nil, fmt.Errorf("%w: length mismatch (header %d, ref %d)", ErrCorruptBlob, n, ref.Bytes-blobHeaderSize)
	}
	payload := buf[blobHeaderSize:]
	if checksum(payload) != binary.LittleEndian.Uint32(buf[4:8]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptBlob)
	}
	return payload, nil
}

// fetchPage returns page p's bytes, via the buffer pool when present.
func (st *Store) fetchPage(p int64) []byte {
	if st.pool != nil {
		if data, ok := st.pool.Get(p); ok {
			st.stats.BufferHits++
			return data
		}
	}
	st.stats.recordRead(p)
	data := st.pages[p]
	if st.pool != nil {
		st.pool.Put(p, data)
	}
	return data
}

// CorruptPage flips a byte of page p. It exists for failure-injection tests.
func (st *Store) CorruptPage(p int64, offset int) error {
	if p < 0 || p >= int64(len(st.pages)) {
		return fmt.Errorf("pagefile: no page %d", p)
	}
	st.pages[p][offset%PageSize] ^= 0xFF
	// Invalidate any cached copy so the corruption is observable.
	if st.pool != nil {
		st.pool.Evict(p)
	}
	return nil
}

func checksum(data []byte) uint32 {
	// FNV-1a, inlined to keep the page format self-contained.
	h := uint32(2166136261)
	for _, b := range data {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// BufferPool is a fixed-capacity LRU page cache.
type BufferPool struct {
	capacity int
	entries  map[int64]*poolNode
	head     *poolNode // most recently used
	tail     *poolNode // least recently used
}

type poolNode struct {
	page       int64
	data       []byte
	prev, next *poolNode
}

// NewBufferPool returns a pool holding at most capacity pages.
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{capacity: capacity, entries: make(map[int64]*poolNode)}
}

// Len returns the number of cached pages.
func (bp *BufferPool) Len() int { return len(bp.entries) }

// Get returns the cached bytes of page p and marks it most recently used.
func (bp *BufferPool) Get(p int64) ([]byte, bool) {
	n, ok := bp.entries[p]
	if !ok {
		return nil, false
	}
	bp.moveToFront(n)
	return n.data, true
}

// Put caches page p, evicting the least recently used page if full.
func (bp *BufferPool) Put(p int64, data []byte) {
	if n, ok := bp.entries[p]; ok {
		n.data = data
		bp.moveToFront(n)
		return
	}
	n := &poolNode{page: p, data: data}
	bp.entries[p] = n
	bp.pushFront(n)
	if len(bp.entries) > bp.capacity {
		bp.evictTail()
	}
}

// Evict removes page p from the pool if present.
func (bp *BufferPool) Evict(p int64) {
	if n, ok := bp.entries[p]; ok {
		bp.unlink(n)
		delete(bp.entries, p)
	}
}

// Clear empties the pool.
func (bp *BufferPool) Clear() {
	bp.entries = make(map[int64]*poolNode)
	bp.head, bp.tail = nil, nil
}

func (bp *BufferPool) pushFront(n *poolNode) {
	n.prev = nil
	n.next = bp.head
	if bp.head != nil {
		bp.head.prev = n
	}
	bp.head = n
	if bp.tail == nil {
		bp.tail = n
	}
}

func (bp *BufferPool) unlink(n *poolNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		bp.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		bp.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (bp *BufferPool) moveToFront(n *poolNode) {
	if bp.head == n {
		return
	}
	bp.unlink(n)
	bp.pushFront(n)
}

func (bp *BufferPool) evictTail() {
	if bp.tail == nil {
		return
	}
	t := bp.tail
	bp.unlink(t)
	delete(bp.entries, t.page)
}
