// Package pagefile simulates the disk subsystem of the paper's evaluation:
// a paged store with a buffer pool and an I/O accountant that distinguishes
// random from sequential page accesses.
//
// The paper measures index performance as the number of random I/Os, with
// sequential accesses normalized to 1/20 of a random access (§6, citing
// Corral et al.). Reproducing the experiments therefore needs a disk *model*
// rather than a physical disk: Store places serialized blobs on consecutive
// 4 KiB pages, and a Stats accountant counts a page read as sequential
// exactly when it is the physical successor of the previously read page of
// the same access stream.
//
// # Concurrency model
//
// The layer is built for serving-style workloads where many read-only
// queries run in parallel over one or more stores:
//
//   - Stats is a per-stream accountant. Each query owns one (it models the
//     query's own disk arm, so sequential detection stays exact under
//     concurrency) and threads it through ReadBlob. A Stats must not be
//     shared between goroutines.
//   - Store keeps cumulative totals in atomic counters (Counters), charged
//     on every read alongside the caller's accountant, so per-query deltas
//     sum exactly to the store totals.
//   - BufferPool is a page-sharded LRU safe for concurrent use: pages hash
//     onto independently latched shards, and the hit/miss/eviction counters
//     are atomic. One pool can be shared by several stores (pages are keyed
//     by store identity), giving all readers of one dataset a common page
//     budget.
//
// Writes (AppendBlob) happen during index construction, before queries
// start; they are serialized against reads by the store's internal lock but
// are not designed for concurrent bulk loading.
package pagefile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the size of one disk page in bytes (Table 3: 4 KiB pages).
const PageSize = 4096

// SeqCostRatio is how many sequential accesses cost as much as one random
// access (§6).
const SeqCostRatio = 20

// ErrCorruptBlob is returned when a blob fails its integrity check on read.
var ErrCorruptBlob = errors.New("pagefile: corrupt blob")

// Stats accumulates I/O counts for one access stream (typically one query).
// The zero value is ready to use. A Stats is not safe for concurrent use;
// concurrent queries each own one and their deltas sum to Store.Counters.
type Stats struct {
	RandomReads     int64
	SequentialReads int64
	PagesWritten    int64
	BufferHits      int64

	lastPage int64 // physical id of the last page fetched from "disk"
	valid    bool  // whether lastPage is meaningful
}

// Normalized returns the paper's headline metric: random reads plus
// sequential reads scaled by 1/SeqCostRatio.
func (s Stats) Normalized() float64 {
	return float64(s.RandomReads) + float64(s.SequentialReads)/SeqCostRatio
}

// Reset zeroes all counters, starting a new measurement window.
func (s *Stats) Reset() { *s = Stats{} }

// Position returns the physical page just past the last page this stream
// fetched from disk; ok is false before the first fetch. Pool hits do not
// move the position — readers use it to decide whether scanning through a
// small gap beats seeking (sequential read-through).
func (s *Stats) Position() (page int64, ok bool) { return s.lastPage + 1, s.valid }

// Add accumulates d into s, ignoring d's stream position.
func (s *Stats) Add(d Stats) {
	s.RandomReads += d.RandomReads
	s.SequentialReads += d.SequentialReads
	s.PagesWritten += d.PagesWritten
	s.BufferHits += d.BufferHits
}

// sequential reports whether fetching page would continue this stream's
// sequential run, and records the fetch. Re-fetching the page under the
// head counts as sequential too: blobs can share a page (sub-page
// packing), and reading the neighbour of the blob just read costs no seek.
func (s *Stats) sequential(page int64) bool {
	seq := s.valid && (page == s.lastPage+1 || page == s.lastPage)
	if seq {
		s.SequentialReads++
	} else {
		s.RandomReads++
	}
	s.lastPage = page
	s.valid = true
	return seq
}

// storeIDs hands every store a process-unique identity for shared-pool keys.
var storeIDs atomic.Uint64

// Store is an append-only simulated disk holding fixed-size pages. Blobs
// (serialized index nodes, grid cells, partitions …) are written onto runs
// of consecutive pages; reading a blob fetches its pages through the buffer
// pool and charges both the caller's per-stream Stats and the store's
// atomic totals. Reads are safe for concurrent use.
type Store struct {
	id     uint64
	pool   *BufferPool
	shared bool // pool is shared with other stores; DropCache evicts only our pages

	mu       sync.RWMutex
	pages    [][]byte
	tailUsed int // bytes used in the final page (blob packing)

	randomReads     atomic.Int64
	sequentialReads atomic.Int64
	bufferHits      atomic.Int64
	pagesWritten    atomic.Int64
	payloadBytes    atomic.Int64
}

// NewStore returns an empty store whose reads go through a private buffer
// pool of poolPages pages. poolPages ≤ 0 disables caching entirely.
func NewStore(poolPages int) *Store {
	st := &Store{id: storeIDs.Add(1)}
	if poolPages > 0 {
		st.pool = NewBufferPool(poolPages)
	}
	return st
}

// NewStoreShared returns an empty store whose reads go through pool, a
// buffer pool shared with other stores (the page budget is common). A nil
// pool disables caching.
func NewStoreShared(pool *BufferPool) *Store {
	return &Store{id: storeIDs.Add(1), pool: pool, shared: pool != nil}
}

// NewStoreWith is the constructor index builders use: it selects the shared
// pool when non-nil and otherwise a private pool of poolPages pages
// (NewStore semantics).
func NewStoreWith(pool *BufferPool, poolPages int) *Store {
	if pool != nil {
		return NewStoreShared(pool)
	}
	return NewStore(poolPages)
}

// Counters returns a snapshot of the store's cumulative I/O totals. The
// snapshot carries no stream position; per-query deltas (the Stats threaded
// through ReadBlob) sum exactly to consecutive Counters differences.
func (st *Store) Counters() Stats {
	return Stats{
		RandomReads:     st.randomReads.Load(),
		SequentialReads: st.sequentialReads.Load(),
		BufferHits:      st.bufferHits.Load(),
		PagesWritten:    st.pagesWritten.Load(),
	}
}

// ResetCounters zeroes the cumulative totals, starting a new measurement
// window. In-flight reads may straddle the reset.
func (st *Store) ResetCounters() {
	st.randomReads.Store(0)
	st.sequentialReads.Store(0)
	st.bufferHits.Store(0)
	st.pagesWritten.Store(0)
}

// Pool exposes the store's buffer pool (nil when caching is disabled).
func (st *Store) Pool() *BufferPool { return st.pool }

// NumPages returns the number of pages written so far.
func (st *Store) NumPages() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return int64(len(st.pages))
}

// SizeBytes returns the total on-disk size.
func (st *Store) SizeBytes() int64 { return st.NumPages() * PageSize }

// PayloadBytes returns the bytes actually occupied by blobs (headers
// included) — SizeBytes minus page-packing slack. PayloadBytes/NumPages
// is the page utilization the codec ablation reports as bytes_per_page.
func (st *Store) PayloadBytes() int64 { return st.payloadBytes.Load() }

// DropCache evicts this store's pages from the buffer pool (e.g. between
// measured queries) without touching the I/O counters. Pages of other
// stores sharing the pool are left resident.
func (st *Store) DropCache() {
	if st.pool == nil {
		return
	}
	if st.shared {
		st.pool.EvictStore(st.id)
		return
	}
	st.pool.Clear()
}

// BlobRef locates a blob on the store.
type BlobRef struct {
	Page  int64 // first page
	Off   int32 // byte offset of the blob within its first page
	Bytes int32 // blob length in bytes (header included)
}

// Null reports whether the reference does not point at any blob.
func (r BlobRef) Null() bool { return r.Bytes == 0 && r.Page == 0 }

// blobHeader is a small per-blob integrity header: payload length plus an
// additive checksum, letting ReadBlob detect truncated or corrupted pages.
const blobHeaderSize = 8

// AppendBlob writes data onto the store and returns its reference. Blobs
// are packed: one that fits the free tail of the last page is placed
// there (page-granular footprints would otherwise swallow the codec's
// byte savings — a 200-byte posting must not cost 4 KiB); larger blobs
// start on a fresh page and run over consecutive pages. An empty blob is
// legal.
func (st *Store) AppendBlob(data []byte) BlobRef {
	buf := make([]byte, blobHeaderSize+len(data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(data)))
	binary.LittleEndian.PutUint32(buf[4:8], checksum(data))
	copy(buf[blobHeaderSize:], data)

	st.payloadBytes.Add(int64(len(buf)))
	st.mu.Lock()
	if len(st.pages) > 0 && len(buf) <= PageSize-st.tailUsed {
		// Pack into the current page's free tail.
		p := int64(len(st.pages) - 1)
		off := st.tailUsed
		copy(st.pages[p][off:], buf)
		st.tailUsed += len(buf)
		st.mu.Unlock()
		return BlobRef{Page: p, Off: int32(off), Bytes: int32(len(buf))}
	}
	first := int64(len(st.pages))
	for off := 0; off < len(buf) || off == 0; off += PageSize {
		end := off + PageSize
		if end > len(buf) {
			end = len(buf)
		}
		page := make([]byte, PageSize)
		copy(page, buf[off:end])
		st.pages = append(st.pages, page)
		st.pagesWritten.Add(1)
		st.tailUsed = end - off
		if end == len(buf) {
			break
		}
	}
	st.mu.Unlock()
	return BlobRef{Page: first, Bytes: int32(len(buf))}
}

// ReadBlob fetches the blob at ref, charging acct (and the store's atomic
// totals) for pages that miss the buffer pool. acct may be nil, in which
// case sequential runs are still detected within this one blob but not
// across calls. The returned slice must not be modified.
func (st *Store) ReadBlob(ref BlobRef, acct *Stats) ([]byte, error) {
	if ref.Bytes < blobHeaderSize {
		return nil, fmt.Errorf("%w: header too short (%d bytes)", ErrCorruptBlob, ref.Bytes)
	}
	if ref.Off < 0 || ref.Off >= PageSize {
		return nil, fmt.Errorf("pagefile: blob offset %d outside page", ref.Off)
	}
	if acct == nil {
		acct = &Stats{}
	}
	numPages := (int64(ref.Off) + int64(ref.Bytes) + PageSize - 1) / PageSize
	st.mu.RLock()
	total := int64(len(st.pages))
	st.mu.RUnlock()
	if ref.Page < 0 || ref.Page+numPages > total {
		return nil, fmt.Errorf("pagefile: blob [%d, %d) outside store of %d pages",
			ref.Page, ref.Page+numPages, total)
	}
	buf := make([]byte, 0, numPages*PageSize)
	for p := ref.Page; p < ref.Page+numPages; p++ {
		buf = append(buf, st.fetchPage(p, acct)...)
	}
	buf = buf[ref.Off : int64(ref.Off)+int64(ref.Bytes)]
	n := binary.LittleEndian.Uint32(buf[0:4])
	if int64(n) != int64(ref.Bytes)-blobHeaderSize {
		return nil, fmt.Errorf("%w: length mismatch (header %d, ref %d)", ErrCorruptBlob, n, ref.Bytes-blobHeaderSize)
	}
	payload := buf[blobHeaderSize:]
	if checksum(payload) != binary.LittleEndian.Uint32(buf[4:8]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptBlob)
	}
	return payload, nil
}

// fetchPage returns page p's bytes, via the buffer pool when present,
// charging acct and the store totals.
func (st *Store) fetchPage(p int64, acct *Stats) []byte {
	if st.pool != nil {
		if data, ok := st.pool.Get(st.id, p); ok {
			acct.BufferHits++
			st.bufferHits.Add(1)
			return data
		}
	}
	if acct.sequential(p) {
		st.sequentialReads.Add(1)
	} else {
		st.randomReads.Add(1)
	}
	st.mu.RLock()
	data := st.pages[p]
	st.mu.RUnlock()
	if st.pool != nil {
		st.pool.Put(st.id, p, data)
	}
	return data
}

// CorruptPage flips a byte of page p. It exists for failure-injection tests
// and must not race with concurrent reads of the same page.
func (st *Store) CorruptPage(p int64, offset int) error {
	st.mu.Lock()
	if p < 0 || p >= int64(len(st.pages)) {
		st.mu.Unlock()
		return fmt.Errorf("pagefile: no page %d", p)
	}
	st.pages[p][offset%PageSize] ^= 0xFF
	st.mu.Unlock()
	// Invalidate any cached copy so the corruption is observable.
	if st.pool != nil {
		st.pool.Evict(st.id, p)
	}
	return nil
}

func checksum(data []byte) uint32 {
	// FNV-1a, inlined to keep the page format self-contained.
	h := uint32(2166136261)
	for _, b := range data {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// PoolStats is a snapshot of a buffer pool's global atomic counters.
type PoolStats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Evictions counts pages displaced by the capacity limit (explicit
	// Evict/Clear/EvictStore calls are not counted).
	Evictions int64
	// Resident is the number of cached pages; Capacity the page budget.
	Resident int
	Capacity int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any access.
func (p PoolStats) HitRate() float64 {
	if p.Hits+p.Misses == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Hits+p.Misses)
}

// pageKey identifies a cached page: pools can be shared across stores, so
// the owning store is part of the key.
type pageKey struct {
	store uint64
	page  int64
}

// BufferPool is a fixed-capacity LRU page cache, safe for concurrent use.
// Pages hash onto independently latched shards (segmented LRU: recency is
// tracked per shard, the capacity bound is global) and the counters are
// atomic, so concurrent readers never serialize behind a pool-wide lock.
type BufferPool struct {
	shards []poolShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	capacity  int
}

type poolShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[pageKey]*poolNode
	head     *poolNode // most recently used
	tail     *poolNode // least recently used
}

type poolNode struct {
	key        pageKey
	data       []byte
	prev, next *poolNode
}

// maxPoolShards bounds the latch count; minShardPages keeps every shard a
// meaningful LRU — small pools use fewer (down to one) shards rather than
// degenerating into a direct-mapped cache, so the pool-size ablation still
// measures LRU behavior. The global page budget is exact in all cases.
const (
	maxPoolShards = 16
	minShardPages = 16
)

// NewBufferPool returns a pool holding at most capacity pages in total.
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	numShards := capacity / minShardPages
	if numShards > maxPoolShards {
		numShards = maxPoolShards
	}
	if numShards < 1 {
		numShards = 1
	}
	bp := &BufferPool{shards: make([]poolShard, numShards), capacity: capacity}
	per := capacity / numShards // exact: numShards ≤ capacity
	extra := capacity % numShards
	for i := range bp.shards {
		c := per
		if i < extra {
			c++
		}
		bp.shards[i] = poolShard{capacity: c, entries: make(map[pageKey]*poolNode)}
	}
	return bp
}

// Capacity returns the pool's total page budget.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// shardOf maps a page key onto its shard.
func (bp *BufferPool) shardOf(k pageKey) *poolShard {
	h := uint64(k.page)*0x9E3779B97F4A7C15 ^ k.store*0xBF58476D1CE4E5B9
	return &bp.shards[h%uint64(len(bp.shards))]
}

// Len returns the number of cached pages.
func (bp *BufferPool) Len() int {
	n := 0
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the pool's global counters.
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		Hits:      bp.hits.Load(),
		Misses:    bp.misses.Load(),
		Evictions: bp.evictions.Load(),
		Resident:  bp.Len(),
		Capacity:  bp.capacity,
	}
}

// Get returns the cached bytes of page (store, p) and marks it most
// recently used within its shard.
func (bp *BufferPool) Get(store uint64, p int64) ([]byte, bool) {
	k := pageKey{store, p}
	sh := bp.shardOf(k)
	sh.mu.Lock()
	n, ok := sh.entries[k]
	if !ok {
		sh.mu.Unlock()
		bp.misses.Add(1)
		return nil, false
	}
	sh.moveToFront(n)
	data := n.data
	sh.mu.Unlock()
	bp.hits.Add(1)
	return data, true
}

// Put caches page (store, p), evicting the least recently used page of its
// shard if the shard is at capacity.
func (bp *BufferPool) Put(store uint64, p int64, data []byte) {
	k := pageKey{store, p}
	sh := bp.shardOf(k)
	sh.mu.Lock()
	if n, ok := sh.entries[k]; ok {
		n.data = data
		sh.moveToFront(n)
		sh.mu.Unlock()
		return
	}
	n := &poolNode{key: k, data: data}
	sh.entries[k] = n
	sh.pushFront(n)
	evicted := 0
	for len(sh.entries) > sh.capacity {
		sh.evictTail()
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		bp.evictions.Add(int64(evicted))
	}
}

// Evict removes page (store, p) from the pool if present.
func (bp *BufferPool) Evict(store uint64, p int64) {
	k := pageKey{store, p}
	sh := bp.shardOf(k)
	sh.mu.Lock()
	if n, ok := sh.entries[k]; ok {
		sh.unlink(n)
		delete(sh.entries, k)
	}
	sh.mu.Unlock()
}

// EvictStore removes every cached page belonging to store.
func (bp *BufferPool) EvictStore(store uint64) {
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		for k, n := range sh.entries {
			if k.store == store {
				sh.unlink(n)
				delete(sh.entries, k)
			}
		}
		sh.mu.Unlock()
	}
}

// Clear empties the pool.
func (bp *BufferPool) Clear() {
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[pageKey]*poolNode)
		sh.head, sh.tail = nil, nil
		sh.mu.Unlock()
	}
}

func (sh *poolShard) pushFront(n *poolNode) {
	n.prev = nil
	n.next = sh.head
	if sh.head != nil {
		sh.head.prev = n
	}
	sh.head = n
	if sh.tail == nil {
		sh.tail = n
	}
}

func (sh *poolShard) unlink(n *poolNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		sh.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		sh.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (sh *poolShard) moveToFront(n *poolNode) {
	if sh.head == n {
		return
	}
	sh.unlink(n)
	sh.pushFront(n)
}

func (sh *poolShard) evictTail() {
	if sh.tail == nil {
		return
	}
	t := sh.tail
	sh.unlink(t)
	delete(sh.entries, t.key)
}
