package pagefile

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestAppendAndReadBlob(t *testing.T) {
	st := NewStore(0)
	data := []byte("hello spatiotemporal world")
	ref := st.AppendBlob(data)
	got, err := st.ReadBlob(ref)
	if err != nil {
		t.Fatalf("ReadBlob: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round-trip mismatch: %q", got)
	}
}

func TestBlobSpanningMultiplePages(t *testing.T) {
	st := NewStore(0)
	data := make([]byte, 3*PageSize+17)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	ref := st.AppendBlob(data)
	if st.NumPages() != 4 {
		t.Fatalf("NumPages = %d, want 4", st.NumPages())
	}
	got, err := st.ReadBlob(ref)
	if err != nil {
		t.Fatalf("ReadBlob: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-page round-trip mismatch")
	}
}

func TestEmptyBlob(t *testing.T) {
	st := NewStore(0)
	ref := st.AppendBlob(nil)
	got, err := st.ReadBlob(ref)
	if err != nil {
		t.Fatalf("ReadBlob: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty blob read back %d bytes", len(got))
	}
}

func TestSequentialVsRandomAccounting(t *testing.T) {
	st := NewStore(0)
	big := make([]byte, 5*PageSize)
	refBig := st.AppendBlob(big) // pages 0..5
	small := []byte("x")
	refSmall := st.AppendBlob(small) // page 6

	if _, err := st.ReadBlob(refBig); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	// First page random, remaining 5 sequential.
	if s.RandomReads != 1 || s.SequentialReads != 5 {
		t.Fatalf("big blob: random=%d sequential=%d, want 1/5", s.RandomReads, s.SequentialReads)
	}
	// Reading the next physical page continues the sequential run.
	if _, err := st.ReadBlob(refSmall); err != nil {
		t.Fatal(err)
	}
	if s.RandomReads != 1 || s.SequentialReads != 6 {
		t.Fatalf("adjacent blob: random=%d sequential=%d, want 1/6", s.RandomReads, s.SequentialReads)
	}
	// Jumping backwards is random.
	if _, err := st.ReadBlob(refBig); err != nil {
		t.Fatal(err)
	}
	if s.RandomReads != 2 {
		t.Fatalf("backward jump: random=%d, want 2", s.RandomReads)
	}
	wantNorm := 2 + 11.0/20
	if got := s.Normalized(); got != wantNorm {
		t.Fatalf("Normalized = %v, want %v", got, wantNorm)
	}
	s.Reset()
	if s.RandomReads != 0 || s.SequentialReads != 0 || s.Normalized() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestBufferPoolAvoidsIO(t *testing.T) {
	st := NewStore(16)
	ref := st.AppendBlob([]byte("cached"))
	if _, err := st.ReadBlob(ref); err != nil {
		t.Fatal(err)
	}
	first := st.Stats().RandomReads
	if _, err := st.ReadBlob(ref); err != nil {
		t.Fatal(err)
	}
	if st.Stats().RandomReads != first {
		t.Fatal("second read should hit the buffer pool")
	}
	if st.Stats().BufferHits == 0 {
		t.Fatal("expected buffer hits")
	}
	st.DropCache()
	if _, err := st.ReadBlob(ref); err != nil {
		t.Fatal(err)
	}
	if st.Stats().RandomReads == first {
		t.Fatal("read after DropCache should hit disk")
	}
}

func TestReadBlobErrors(t *testing.T) {
	st := NewStore(0)
	ref := st.AppendBlob([]byte("data"))

	if _, err := st.ReadBlob(BlobRef{Page: 99, Bytes: 32}); err == nil {
		t.Error("out-of-range blob accepted")
	}
	if _, err := st.ReadBlob(BlobRef{Page: 0, Bytes: 2}); err == nil {
		t.Error("undersized blob accepted")
	}
	// Corrupt the payload: checksum must catch it.
	if err := st.CorruptPage(ref.Page, blobHeaderSize+1); err != nil {
		t.Fatal(err)
	}
	_, err := st.ReadBlob(ref)
	if !errors.Is(err, ErrCorruptBlob) {
		t.Errorf("corrupted read returned %v, want ErrCorruptBlob", err)
	}
	if err := st.CorruptPage(12345, 0); err == nil {
		t.Error("CorruptPage of missing page should fail")
	}
}

func TestCorruptionVisibleThroughPool(t *testing.T) {
	st := NewStore(8)
	ref := st.AppendBlob([]byte("payload"))
	if _, err := st.ReadBlob(ref); err != nil {
		t.Fatal(err) // warm the cache
	}
	if err := st.CorruptPage(ref.Page, blobHeaderSize); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadBlob(ref); !errors.Is(err, ErrCorruptBlob) {
		t.Errorf("cached corruption returned %v, want ErrCorruptBlob", err)
	}
}

func TestBufferPoolLRUEviction(t *testing.T) {
	bp := NewBufferPool(2)
	bp.Put(1, []byte{1})
	bp.Put(2, []byte{2})
	if _, ok := bp.Get(1); !ok { // 1 becomes MRU
		t.Fatal("page 1 missing")
	}
	bp.Put(3, []byte{3}) // evicts 2 (LRU)
	if _, ok := bp.Get(2); ok {
		t.Fatal("page 2 should have been evicted")
	}
	if _, ok := bp.Get(1); !ok {
		t.Fatal("page 1 should survive")
	}
	if _, ok := bp.Get(3); !ok {
		t.Fatal("page 3 should be cached")
	}
	if bp.Len() != 2 {
		t.Fatalf("Len = %d, want 2", bp.Len())
	}
}

func TestBufferPoolUpdateAndEvict(t *testing.T) {
	bp := NewBufferPool(2)
	bp.Put(1, []byte{1})
	bp.Put(1, []byte{9}) // update, no growth
	if bp.Len() != 1 {
		t.Fatalf("Len after update = %d, want 1", bp.Len())
	}
	if d, _ := bp.Get(1); d[0] != 9 {
		t.Fatal("update not visible")
	}
	bp.Evict(1)
	if _, ok := bp.Get(1); ok {
		t.Fatal("evicted page still cached")
	}
	bp.Evict(42) // no-op must not panic
	bp.Clear()
	if bp.Len() != 0 {
		t.Fatal("Clear left entries")
	}
}

func TestBufferPoolStress(t *testing.T) {
	// Random ops; model with a reference map + recency list semantics
	// implicitly checked by capacity invariant.
	bp := NewBufferPool(8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		p := int64(rng.Intn(32))
		switch rng.Intn(3) {
		case 0:
			bp.Put(p, []byte{byte(p)})
		case 1:
			if d, ok := bp.Get(p); ok && d[0] != byte(p) {
				t.Fatal("wrong payload")
			}
		case 2:
			bp.Evict(p)
		}
		if bp.Len() > 8 {
			t.Fatalf("capacity exceeded: %d", bp.Len())
		}
	}
}

func TestEncoderDecoderRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.Uint32(42)
	e.Int32(-7)
	e.Uint64(1 << 40)
	e.Int64(-1 << 40)
	e.Float64(3.25)
	e.Int32Slice([]int32{1, -2, 3})

	d := NewDecoder(e.Bytes())
	if v := d.Uint32(); v != 42 {
		t.Errorf("Uint32 = %d", v)
	}
	if v := d.Int32(); v != -7 {
		t.Errorf("Int32 = %d", v)
	}
	if v := d.Uint64(); v != 1<<40 {
		t.Errorf("Uint64 = %d", v)
	}
	if v := d.Int64(); v != -1<<40 {
		t.Errorf("Int64 = %d", v)
	}
	if v := d.Float64(); v != 3.25 {
		t.Errorf("Float64 = %v", v)
	}
	s := d.Int32Slice()
	if len(s) != 3 || s[0] != 1 || s[1] != -2 || s[2] != 3 {
		t.Errorf("Int32Slice = %v", s)
	}
	if d.Err() != nil {
		t.Errorf("Err = %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d", d.Remaining())
	}
}

func TestDecoderErrors(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if d.Uint32(); d.Err() == nil {
		t.Error("short read should error")
	}
	// After the first error all reads return zero values.
	if v := d.Uint64(); v != 0 {
		t.Error("post-error read should be 0")
	}

	// Implausible slice length.
	e := NewEncoder(8)
	e.Uint32(1 << 30)
	d2 := NewDecoder(e.Bytes())
	if d2.Int32Slice(); d2.Err() == nil {
		t.Error("oversized slice length should error")
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(8)
	e.Uint32(1)
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestNullBlobRef(t *testing.T) {
	var r BlobRef
	if !r.Null() {
		t.Error("zero BlobRef should be Null")
	}
	if (BlobRef{Page: 3, Bytes: 10}).Null() {
		t.Error("real BlobRef reported Null")
	}
}
