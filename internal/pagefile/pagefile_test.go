package pagefile

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestAppendAndReadBlob(t *testing.T) {
	st := NewStore(0)
	data := []byte("hello spatiotemporal world")
	ref := st.AppendBlob(data)
	got, err := st.ReadBlob(ref, nil)
	if err != nil {
		t.Fatalf("ReadBlob: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round-trip mismatch: %q", got)
	}
}

func TestBlobSpanningMultiplePages(t *testing.T) {
	st := NewStore(0)
	data := make([]byte, 3*PageSize+17)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	ref := st.AppendBlob(data)
	if st.NumPages() != 4 {
		t.Fatalf("NumPages = %d, want 4", st.NumPages())
	}
	got, err := st.ReadBlob(ref, nil)
	if err != nil {
		t.Fatalf("ReadBlob: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-page round-trip mismatch")
	}
}

func TestEmptyBlob(t *testing.T) {
	st := NewStore(0)
	ref := st.AppendBlob(nil)
	got, err := st.ReadBlob(ref, nil)
	if err != nil {
		t.Fatalf("ReadBlob: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty blob read back %d bytes", len(got))
	}
}

func TestSequentialVsRandomAccounting(t *testing.T) {
	st := NewStore(0)
	big := make([]byte, 5*PageSize)
	refBig := st.AppendBlob(big) // pages 0..5
	small := []byte("x")
	refSmall := st.AppendBlob(small) // page 6

	var s Stats
	if _, err := st.ReadBlob(refBig, &s); err != nil {
		t.Fatal(err)
	}
	// First page random, remaining 5 sequential.
	if s.RandomReads != 1 || s.SequentialReads != 5 {
		t.Fatalf("big blob: random=%d sequential=%d, want 1/5", s.RandomReads, s.SequentialReads)
	}
	// Reading the next physical page continues the sequential run.
	if _, err := st.ReadBlob(refSmall, &s); err != nil {
		t.Fatal(err)
	}
	if s.RandomReads != 1 || s.SequentialReads != 6 {
		t.Fatalf("adjacent blob: random=%d sequential=%d, want 1/6", s.RandomReads, s.SequentialReads)
	}
	// Jumping backwards is random.
	if _, err := st.ReadBlob(refBig, &s); err != nil {
		t.Fatal(err)
	}
	if s.RandomReads != 2 {
		t.Fatalf("backward jump: random=%d, want 2", s.RandomReads)
	}
	wantNorm := 2 + 11.0/20
	if got := s.Normalized(); got != wantNorm {
		t.Fatalf("Normalized = %v, want %v", got, wantNorm)
	}
	// The store totals mirror the single stream's classification.
	if c := st.Counters(); c.RandomReads != s.RandomReads || c.SequentialReads != s.SequentialReads {
		t.Fatalf("Counters = %+v, want random=%d sequential=%d", c, s.RandomReads, s.SequentialReads)
	}
	s.Reset()
	if s.RandomReads != 0 || s.SequentialReads != 0 || s.Normalized() != 0 {
		t.Fatal("Reset did not zero counters")
	}
	st.ResetCounters()
	if c := st.Counters(); c.RandomReads != 0 || c.SequentialReads != 0 {
		t.Fatalf("ResetCounters left %+v", c)
	}
}

func TestBufferPoolAvoidsIO(t *testing.T) {
	st := NewStore(16)
	ref := st.AppendBlob([]byte("cached"))
	if _, err := st.ReadBlob(ref, nil); err != nil {
		t.Fatal(err)
	}
	first := st.Counters().RandomReads
	if _, err := st.ReadBlob(ref, nil); err != nil {
		t.Fatal(err)
	}
	if st.Counters().RandomReads != first {
		t.Fatal("second read should hit the buffer pool")
	}
	if st.Counters().BufferHits == 0 {
		t.Fatal("expected buffer hits")
	}
	st.DropCache()
	if _, err := st.ReadBlob(ref, nil); err != nil {
		t.Fatal(err)
	}
	if st.Counters().RandomReads == first {
		t.Fatal("read after DropCache should hit disk")
	}
}

func TestPerStreamDeltasSumToStoreTotals(t *testing.T) {
	st := NewStore(8)
	refs := make([]BlobRef, 20)
	for i := range refs {
		refs[i] = st.AppendBlob(bytes.Repeat([]byte{byte(i)}, 100+i*97))
	}
	st.ResetCounters()

	const workers = 8
	deltas := make([]Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				if _, err := st.ReadBlob(refs[rng.Intn(len(refs))], &deltas[w]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var sum Stats
	for i := range deltas {
		sum.Add(deltas[i])
	}
	c := st.Counters()
	if sum.RandomReads != c.RandomReads || sum.SequentialReads != c.SequentialReads || sum.BufferHits != c.BufferHits {
		t.Fatalf("per-stream sum %+v != store totals %+v", sum, c)
	}
	ps := st.Pool().Stats()
	if ps.Hits != c.BufferHits {
		t.Fatalf("pool hits %d != store buffer hits %d", ps.Hits, c.BufferHits)
	}
	if ps.Misses != c.RandomReads+c.SequentialReads {
		t.Fatalf("pool misses %d != store reads %d", ps.Misses, c.RandomReads+c.SequentialReads)
	}
}

func TestSharedPoolAcrossStores(t *testing.T) {
	pool := NewBufferPool(64)
	a := NewStoreShared(pool)
	b := NewStoreShared(pool)
	refA := a.AppendBlob([]byte("store a"))
	refB := b.AppendBlob([]byte("store b"))
	if refA.Page != refB.Page {
		t.Fatalf("both stores should start at page 0 (got %d, %d)", refA.Page, refB.Page)
	}
	if _, err := a.ReadBlob(refA, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadBlob(refB, nil); err != nil {
		t.Fatal(err)
	}
	// Same physical page number, different stores: both must be resident.
	gotA, err := a.ReadBlob(refA, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, []byte("store a")) {
		t.Fatalf("shared pool returned wrong payload: %q", gotA)
	}
	if a.Counters().BufferHits == 0 || b.Counters().RandomReads == 0 {
		t.Fatalf("unexpected counters: a=%+v b=%+v", a.Counters(), b.Counters())
	}
	// DropCache on a must not evict b's pages.
	a.DropCache()
	before := b.Counters().BufferHits
	if _, err := b.ReadBlob(refB, nil); err != nil {
		t.Fatal(err)
	}
	if b.Counters().BufferHits != before+1 {
		t.Fatal("DropCache on store a evicted store b's page")
	}
}

func TestReadBlobErrors(t *testing.T) {
	st := NewStore(0)
	ref := st.AppendBlob([]byte("data"))

	if _, err := st.ReadBlob(BlobRef{Page: 99, Bytes: 32}, nil); err == nil {
		t.Error("out-of-range blob accepted")
	}
	if _, err := st.ReadBlob(BlobRef{Page: 0, Bytes: 2}, nil); err == nil {
		t.Error("undersized blob accepted")
	}
	// Corrupt the payload: checksum must catch it.
	if err := st.CorruptPage(ref.Page, blobHeaderSize+1); err != nil {
		t.Fatal(err)
	}
	_, err := st.ReadBlob(ref, nil)
	if !errors.Is(err, ErrCorruptBlob) {
		t.Errorf("corrupted read returned %v, want ErrCorruptBlob", err)
	}
	if err := st.CorruptPage(12345, 0); err == nil {
		t.Error("CorruptPage of missing page should fail")
	}
}

func TestCorruptionVisibleThroughPool(t *testing.T) {
	st := NewStore(8)
	ref := st.AppendBlob([]byte("payload"))
	if _, err := st.ReadBlob(ref, nil); err != nil {
		t.Fatal(err) // warm the cache
	}
	if err := st.CorruptPage(ref.Page, blobHeaderSize); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadBlob(ref, nil); !errors.Is(err, ErrCorruptBlob) {
		t.Errorf("cached corruption returned %v, want ErrCorruptBlob", err)
	}
}

func TestBufferPoolLRUWithinShard(t *testing.T) {
	// Capacity 1 ⇒ one shard: global LRU semantics are exact and the
	// classic eviction order is observable.
	bp := NewBufferPool(1)
	bp.Put(1, 1, []byte{1})
	bp.Put(1, 2, []byte{2}) // evicts 1
	if _, ok := bp.Get(1, 1); ok {
		t.Fatal("page 1 should have been evicted")
	}
	if _, ok := bp.Get(1, 2); !ok {
		t.Fatal("page 2 should be cached")
	}
	if bp.Len() != 1 {
		t.Fatalf("Len = %d, want 1", bp.Len())
	}
	if ev := bp.Stats().Evictions; ev != 1 {
		t.Fatalf("Evictions = %d, want 1", ev)
	}
}

func TestBufferPoolUpdateAndEvict(t *testing.T) {
	bp := NewBufferPool(2)
	bp.Put(1, 1, []byte{1})
	bp.Put(1, 1, []byte{9}) // update, no growth
	if bp.Len() != 1 {
		t.Fatalf("Len after update = %d, want 1", bp.Len())
	}
	if d, _ := bp.Get(1, 1); d[0] != 9 {
		t.Fatal("update not visible")
	}
	bp.Evict(1, 1)
	if _, ok := bp.Get(1, 1); ok {
		t.Fatal("evicted page still cached")
	}
	bp.Evict(1, 42) // no-op must not panic
	bp.Clear()
	if bp.Len() != 0 {
		t.Fatal("Clear left entries")
	}
}

func TestBufferPoolStress(t *testing.T) {
	// Random ops; the capacity invariant must hold throughout.
	bp := NewBufferPool(8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		p := int64(rng.Intn(32))
		switch rng.Intn(3) {
		case 0:
			bp.Put(1, p, []byte{byte(p)})
		case 1:
			if d, ok := bp.Get(1, p); ok && d[0] != byte(p) {
				t.Fatal("wrong payload")
			}
		case 2:
			bp.Evict(1, p)
		}
		if bp.Len() > 8 {
			t.Fatalf("capacity exceeded: %d", bp.Len())
		}
	}
}

func TestBufferPoolConcurrentStress(t *testing.T) {
	bp := NewBufferPool(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			store := uint64(w%3) + 1
			for i := 0; i < 3000; i++ {
				p := int64(rng.Intn(64))
				switch rng.Intn(4) {
				case 0, 1:
					bp.Put(store, p, []byte{byte(p)})
				case 2:
					if d, ok := bp.Get(store, p); ok && d[0] != byte(p) {
						t.Error("wrong payload under concurrency")
						return
					}
				case 3:
					bp.Evict(store, p)
				}
			}
		}(w)
	}
	wg.Wait()
	if bp.Len() > 32 {
		t.Fatalf("capacity exceeded: %d", bp.Len())
	}
	s := bp.Stats()
	if s.Hits+s.Misses == 0 {
		t.Fatal("no pool traffic recorded")
	}
}

func TestEncoderDecoderRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.Uint32(42)
	e.Int32(-7)
	e.Uint64(1 << 40)
	e.Int64(-1 << 40)
	e.Float64(3.25)
	e.Int32Slice([]int32{1, -2, 3})

	d := NewDecoder(e.Bytes())
	if v := d.Uint32(); v != 42 {
		t.Errorf("Uint32 = %d", v)
	}
	if v := d.Int32(); v != -7 {
		t.Errorf("Int32 = %d", v)
	}
	if v := d.Uint64(); v != 1<<40 {
		t.Errorf("Uint64 = %d", v)
	}
	if v := d.Int64(); v != -1<<40 {
		t.Errorf("Int64 = %d", v)
	}
	if v := d.Float64(); v != 3.25 {
		t.Errorf("Float64 = %v", v)
	}
	s := d.Int32Slice()
	if len(s) != 3 || s[0] != 1 || s[1] != -2 || s[2] != 3 {
		t.Errorf("Int32Slice = %v", s)
	}
	if d.Err() != nil {
		t.Errorf("Err = %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d", d.Remaining())
	}
}

func TestDecoderErrors(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if d.Uint32(); d.Err() == nil {
		t.Error("short read should error")
	}
	// After the first error all reads return zero values.
	if v := d.Uint64(); v != 0 {
		t.Error("post-error read should be 0")
	}

	// Implausible slice length.
	e := NewEncoder(8)
	e.Uint32(1 << 30)
	d2 := NewDecoder(e.Bytes())
	if d2.Int32Slice(); d2.Err() == nil {
		t.Error("oversized slice length should error")
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(8)
	e.Uint32(1)
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestNullBlobRef(t *testing.T) {
	var r BlobRef
	if !r.Null() {
		t.Error("zero BlobRef should be Null")
	}
	if (BlobRef{Page: 3, Bytes: 10}).Null() {
		t.Error("real BlobRef reported Null")
	}
}
