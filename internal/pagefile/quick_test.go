package pagefile

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

// TestQuickBlobRoundTrip stores arbitrary payloads and reads them back.
func TestQuickBlobRoundTrip(t *testing.T) {
	st := NewStore(8)
	f := func(payload []byte) bool {
		ref := st.AppendBlob(payload)
		got, err := st.ReadBlob(ref, nil)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickCorruptionDetected flips one byte of a stored blob at an
// arbitrary offset; ReadBlob must fail with ErrCorruptBlob.
func TestQuickCorruptionDetected(t *testing.T) {
	f := func(payload []byte, where uint16) bool {
		if len(payload) == 0 {
			return true
		}
		st := NewStore(0) // no pool: corruption must be visible immediately
		ref := st.AppendBlob(payload)
		// Corrupt a byte inside the blob's payload region.
		page := ref.Page + int64(int(where)%int((int64(ref.Bytes)+PageSize-1)/PageSize))
		off := int(where) % PageSize
		// Stay within the blob's meaningful bytes on the last page.
		if page == ref.Page+int64(ref.Bytes-1)/PageSize {
			off = off % (int(ref.Bytes) - int(page-ref.Page)*PageSize)
		}
		if err := st.CorruptPage(page, off); err != nil {
			return false
		}
		_, err := st.ReadBlob(ref, nil)
		return errors.Is(err, ErrCorruptBlob)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickEncoderDecoderRoundTrip round-trips random record shapes.
func TestQuickEncoderDecoderRoundTrip(t *testing.T) {
	f := func(a int32, b uint32, c int64, d float64, s []int32) bool {
		e := NewEncoder(64)
		e.Int32(a)
		e.Uint32(b)
		e.Int64(c)
		e.Float64(d)
		e.Int32Slice(s)
		dec := NewDecoder(e.Bytes())
		if dec.Int32() != a || dec.Uint32() != b || dec.Int64() != c {
			return false
		}
		if got := dec.Float64(); got != d && !(got != got && d != d) { // NaN-safe
			return false
		}
		got := dec.Int32Slice()
		if dec.Err() != nil || len(got) != len(s) {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return dec.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickPoolNeverExceedsCapacity hammers a pool with arbitrary page
// sequences and checks the capacity invariant plus hit correctness.
func TestQuickPoolNeverExceedsCapacity(t *testing.T) {
	f := func(pages []uint8, capRaw uint8) bool {
		capacity := int(capRaw%7) + 1
		bp := NewBufferPool(capacity)
		shadow := map[int64][]byte{}
		for i, p := range pages {
			page := int64(p % 32)
			data := []byte{byte(i)}
			bp.Put(1, page, data)
			shadow[page] = data
			if bp.Len() > capacity {
				return false
			}
			if got, ok := bp.Get(1, page); !ok || got[0] != data[0] {
				return false // just-inserted page must be resident
			}
		}
		// Every hit must return the latest value.
		for page, want := range shadow {
			if got, ok := bp.Get(1, page); ok && !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
