package queries

import (
	"testing"

	"streach/internal/contact"
	"streach/internal/trajectory"
)

func TestEffectiveBudgetFoldsThreshold(t *testing.T) {
	cases := []struct {
		sem  Semantics
		want int32
	}{
		// No probability: plain hop budget.
		{Semantics{}, UnboundedHops},
		{Semantics{MaxHops: 3}, 3},
		// τ = p^2 allows exactly 2 transfers (epsilon must absorb the
		// float error of the exact power).
		{Semantics{Prob: 0.5, ProbThreshold: 0.25}, 2},
		{Semantics{Prob: 0.9, ProbThreshold: 0.9 * 0.9 * 0.9}, 3},
		// τ strictly between powers rounds down.
		{Semantics{Prob: 0.5, ProbThreshold: 0.3}, 1},
		// τ > p: not even one transfer survives.
		{Semantics{Prob: 0.5, ProbThreshold: 0.7}, 0},
		// The tighter of the two bounds wins, in both directions.
		{Semantics{MaxHops: 1, Prob: 0.5, ProbThreshold: 0.25}, 1},
		{Semantics{MaxHops: 9, Prob: 0.5, ProbThreshold: 0.25}, 2},
		// Certain contacts or no threshold leave the budget alone.
		{Semantics{Prob: 1, ProbThreshold: 0.5}, UnboundedHops},
		{Semantics{Prob: 0.5}, UnboundedHops},
	}
	for _, tc := range cases {
		if got := tc.sem.EffectiveBudget(); got != tc.want {
			t.Errorf("EffectiveBudget(%+v) = %d, want %d", tc.sem, got, tc.want)
		}
	}
}

func TestFilterMatch(t *testing.T) {
	RegisterFilter("test:odd-a", func(c contact.Contact) bool { return c.A%2 == 1 })
	long := contact.Contact{A: 0, B: 1, Validity: contact.Interval{Lo: 0, Hi: 9}, Weight: 5}
	clipped := contact.Contact{A: 0, B: 1, Validity: contact.Interval{Lo: 0, Hi: 1}, Dur: 10}
	short := contact.Contact{A: 1, B: 2, Validity: contact.Interval{Lo: 0, Hi: 1}, Weight: 50}

	cases := []struct {
		f    Filter
		c    contact.Contact
		want bool
	}{
		{Filter{}, short, true},
		{Filter{MinDuration: 5}, long, true},
		// A slab-clipped contact keeps its original duration via Dur.
		{Filter{MinDuration: 5}, clipped, true},
		{Filter{MinDuration: 5}, short, false},
		{Filter{MaxWeight: 10}, long, true},
		{Filter{MaxWeight: 10}, short, false},
		// Unweighted contacts (Weight 0) always pass a weight bound.
		{Filter{MaxWeight: 1}, clipped, true},
		{Filter{FilterID: "test:odd-a"}, short, true},
		{Filter{FilterID: "test:odd-a"}, long, false},
		// Unregistered predicate matches nothing rather than everything.
		{Filter{FilterID: "test:no-such"}, long, false},
		{Filter{MinDuration: 5, MaxWeight: 10, FilterID: "test:odd-a"}, long, false},
	}
	for _, tc := range cases {
		if got := tc.f.Match(tc.c); got != tc.want {
			t.Errorf("%+v.Match(%+v) = %v, want %v", tc.f, tc.c, got, tc.want)
		}
	}
	if (Filter{}).Active() {
		t.Error("zero filter is active")
	}
	if !(Filter{MinDuration: 1}).Active() {
		t.Error("min-duration filter inactive")
	}
}

func TestOracleFilteredProjection(t *testing.T) {
	// Path 0-1-2 where the 1-2 leg is a short contact: a min-duration
	// filter must cut propagation past object 1.
	net := contact.FromContacts(3, 10, []contact.Contact{
		{A: 0, B: 1, Validity: contact.Interval{Lo: 0, Hi: 5}},
		{A: 1, B: 2, Validity: contact.Interval{Lo: 6, Hi: 6}},
	})
	o := NewOracle(net)
	iv := contact.Interval{Lo: 0, Hi: 9}
	if !o.Reachable(Query{Src: 0, Dst: 2, Interval: iv}) {
		t.Fatal("unfiltered path missing")
	}
	f := Filter{MinDuration: 3}
	fo := o.Filtered(f)
	if fo.Reachable(Query{Src: 0, Dst: 2, Interval: iv}) {
		t.Fatal("min-duration filter did not cut the short contact")
	}
	if !fo.Reachable(Query{Src: 0, Dst: 1, Interval: iv}) {
		t.Fatal("filter cut a qualifying contact")
	}
	// Projections are cached per filter value; the inactive filter is the
	// oracle itself.
	if o.Filtered(f) != fo {
		t.Error("filtered projection not cached")
	}
	if o.Filtered(Filter{}) != o {
		t.Error("inactive filter did not return the receiver")
	}
}

// chainNetwork is a disjoint k-hop chain 0-1-...-k, one contact per tick.
func chainNetwork(k int) *contact.Network {
	var cs []contact.Contact
	for i := 0; i < k; i++ {
		cs = append(cs, contact.Contact{
			A: trajectory.ObjectID(i), B: trajectory.ObjectID(i + 1),
			Validity: contact.Interval{Lo: trajectory.Tick(i), Hi: trajectory.Tick(i)},
		})
	}
	return contact.FromContacts(k+1, k, cs)
}

func TestMonteCarloMatchesSinglePath(t *testing.T) {
	// On a chain there is exactly one path, so reliability equals the
	// best-path probability p^k — the estimator must converge to it.
	o := NewOracle(chainNetwork(3))
	p := 0.7
	want := p * p * p
	q := Query{Src: 0, Dst: 3, Interval: contact.Interval{Lo: 0, Hi: 2},
		Semantics: Semantics{Prob: p, MCTrials: 20000, MCSeed: 42}}
	got := o.MonteCarloReachable(q)
	if diff := got - want; diff < -0.02 || diff > 0.02 {
		t.Fatalf("MC estimate %.4f, want %.4f ± 0.02", got, want)
	}
	// Deterministic under a fixed seed.
	if again := o.MonteCarloReachable(q); again != got {
		t.Fatalf("MC not reproducible: %.6f then %.6f", got, again)
	}
	// Different seed, same distribution: still inside the tolerance.
	q.Semantics.MCSeed = 7
	if got := o.MonteCarloReachable(q); got-want < -0.02 || got-want > 0.02 {
		t.Fatalf("MC estimate %.4f at seed 7, want %.4f ± 0.02", got, want)
	}
}

func TestMonteCarloRespectsBudgetAndFilter(t *testing.T) {
	o := NewOracle(chainNetwork(3))
	// A 2-hop budget can never cross a 3-hop chain, whatever the coins say.
	got := o.MonteCarloReachable(Query{Src: 0, Dst: 3, Interval: contact.Interval{Lo: 0, Hi: 2},
		Semantics: Semantics{Prob: 1, MaxHops: 2, MCTrials: 200, MCSeed: 1}})
	if got != 0 {
		t.Fatalf("budget-violating estimate %v, want 0", got)
	}
	// p = 1 with enough hops is certain.
	got = o.MonteCarloReachable(Query{Src: 0, Dst: 3, Interval: contact.Interval{Lo: 0, Hi: 2},
		Semantics: Semantics{Prob: 1, MCTrials: 200, MCSeed: 1}})
	if got != 1 {
		t.Fatalf("certain chain estimate %v, want 1", got)
	}
	// Every chain contact is a single instant, so a min-duration filter
	// empties the network.
	got = o.MonteCarloReachable(Query{Src: 0, Dst: 3, Interval: contact.Interval{Lo: 0, Hi: 2},
		Semantics: Semantics{Prob: 0.9, MinDuration: 2, MCTrials: 200, MCSeed: 1}})
	if got != 0 {
		t.Fatalf("filtered-out estimate %v, want 0", got)
	}
	// Self queries are certain; empty intervals impossible.
	if got := o.MonteCarloReachable(Query{Src: 2, Dst: 2, Interval: contact.Interval{Lo: 0, Hi: 1},
		Semantics: Semantics{Prob: 0.1, MCTrials: 10, MCSeed: 3}}); got != 1 {
		t.Fatalf("self estimate %v, want 1", got)
	}
	if got := o.MonteCarloReachable(Query{Src: 0, Dst: 3, Interval: contact.Interval{Lo: 2, Hi: 1},
		Semantics: Semantics{Prob: 0.9, MCTrials: 10, MCSeed: 3}}); got != 0 {
		t.Fatalf("empty-interval estimate %v, want 0", got)
	}
}
