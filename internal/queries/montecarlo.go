// Seeded Monte-Carlo estimation of probabilistic reachability (§7): when a
// query carries a per-contact transmission probability p, the exact
// quantity engines report is the best single-path probability p^minHops.
// The complementary quantity — the probability that dst is infected in at
// least one realization of the uncertain network, i.e. two-terminal
// network reliability — is #P-hard exactly; the documented fallback is
// this estimator. Each trial samples a world by keeping every contact
// independently with probability p (after predicate filtering) and runs a
// plain per-instant relaxation; the estimate is the fraction of worlds in
// which dst is reached. Reliability is always ≥ the best-path probability,
// and the two coincide as p → 0 (multi-path contributions are O(p^2)
// relative), which is what the bench gate checks on small low-p presets.
package queries

import (
	"math/rand"

	"streach/internal/trajectory"
)

// MonteCarloReachable estimates the probability that q.Dst is reachable
// from q.Src within q.Interval when every contact (surviving the query's
// predicate filter) transmits independently with probability q.Semantics.
// Prob. It runs q.Semantics.MCTrials sampled worlds seeded from MCSeed and
// returns the success fraction; the hop budget applies per world (the
// probability threshold does NOT fold into the budget here — trials model
// it, the caller compares the estimate against τ).
func (o *Oracle) MonteCarloReachable(q Query) float64 {
	sem := q.Semantics
	trials := sem.MCTrials
	if trials <= 0 {
		trials = 1
	}
	p := sem.Prob
	if p > 1 {
		p = 1
	}
	if p <= 0 {
		return 0
	}
	net := o.Filtered(sem.Filter()).net
	iv := q.Interval
	if iv.Lo < 0 {
		iv.Lo = 0
	}
	if int(iv.Hi) >= net.NumTicks {
		iv.Hi = trajectory.Tick(net.NumTicks) - 1
	}
	if q.Src == q.Dst {
		return 1
	}
	if iv.Len() == 0 {
		return 0
	}

	// Precompute, once per query, the contacts overlapping the interval and
	// a per-tick index of which of them are active — each of the trials then
	// replays only coin flips and relaxation.
	type mcContact struct {
		a, b   trajectory.ObjectID
		lo, hi trajectory.Tick
	}
	var cs []mcContact
	for _, c := range net.Contacts {
		if c.Validity.Overlaps(iv) {
			cs = append(cs, mcContact{a: c.A, b: c.B, lo: c.Validity.Lo, hi: c.Validity.Hi})
		}
	}
	if len(cs) == 0 {
		return 0
	}
	ticks := iv.Len()
	atTick := make([][]int32, ticks)
	for i, c := range cs {
		lo, hi := c.lo, c.hi
		if lo < iv.Lo {
			lo = iv.Lo
		}
		if hi > iv.Hi {
			hi = iv.Hi
		}
		for t := lo; t <= hi; t++ {
			atTick[t-iv.Lo] = append(atTick[t-iv.Lo], int32(i))
		}
	}

	budget := sem.HopBudget()
	rng := rand.New(rand.NewSource(sem.MCSeed))
	alive := make([]bool, len(cs))
	hops := make([]int32, net.NumObjects)
	successes := 0
	for trial := 0; trial < trials; trial++ {
		for i := range alive {
			alive[i] = rng.Float64() < p
		}
		for i := range hops {
			hops[i] = -1
		}
		hops[q.Src] = 0
		reached := false
		for ti := 0; ti < ticks && !reached; ti++ {
			edges := atTick[ti]
			// Relax the instant's surviving edges to fixpoint: transfer
			// within a contact is instantaneous, so an item crosses whole
			// chains within one tick, each edge costing one hop.
			for changed := true; changed && !reached; {
				changed = false
				for _, ei := range edges {
					if !alive[ei] {
						continue
					}
					c := cs[ei]
					ha, hb := hops[c.a], hops[c.b]
					if ha >= 0 && ha < budget && (hb < 0 || hb > ha+1) {
						hops[c.b] = ha + 1
						changed = true
					} else if hb >= 0 && hb < budget && (ha < 0 || ha > hb+1) {
						hops[c.a] = hb + 1
						changed = true
					}
				}
				if hops[q.Dst] >= 0 {
					reached = true
				}
			}
		}
		if reached {
			successes++
		}
	}
	return float64(successes) / float64(trials)
}
