// Package queries defines reachability queries, the random workloads of §6,
// and a brute-force propagation oracle that serves as ground truth for every
// index and traversal strategy in streach.
package queries

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"streach/internal/contact"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// Query is a reachability query q : Src ⤳ Dst over Interval (§3.2).
// Semantics optionally refines the propagation model (hop bounds,
// earliest-arrival tracking); its zero value is plain boolean reachability.
type Query struct {
	Src, Dst  trajectory.ObjectID
	Interval  contact.Interval
	Semantics Semantics
}

func (q Query) String() string {
	return fmt.Sprintf("q: %d ~%v~> %d", q.Src, q.Interval, q.Dst)
}

// WorkloadConfig parametrizes RandomWorkload. The defaults reproduce §6:
// "query sources, destinations are selected randomly and query interval is
// selected as a random interval where the length of the interval is a
// random number between 150 and 350".
type WorkloadConfig struct {
	NumObjects int
	NumTicks   int
	Count      int
	MinLen     int // minimum interval length in ticks (default 150)
	MaxLen     int // maximum interval length in ticks (default 350)
	Seed       int64
}

// RandomWorkload generates Count random queries. Interval lengths are
// clamped to the dataset's time domain; Src and Dst are always distinct when
// NumObjects > 1.
func RandomWorkload(cfg WorkloadConfig) []Query {
	if cfg.MinLen <= 0 {
		cfg.MinLen = 150
	}
	if cfg.MaxLen < cfg.MinLen {
		cfg.MaxLen = 350
	}
	if cfg.MaxLen > cfg.NumTicks {
		cfg.MaxLen = cfg.NumTicks
	}
	if cfg.MinLen > cfg.MaxLen {
		cfg.MinLen = cfg.MaxLen
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Query, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		length := cfg.MinLen
		if cfg.MaxLen > cfg.MinLen {
			length += rng.Intn(cfg.MaxLen - cfg.MinLen + 1)
		}
		lo := 0
		if cfg.NumTicks > length {
			lo = rng.Intn(cfg.NumTicks - length + 1)
		}
		src := trajectory.ObjectID(rng.Intn(cfg.NumObjects))
		dst := src
		for dst == src && cfg.NumObjects > 1 {
			dst = trajectory.ObjectID(rng.Intn(cfg.NumObjects))
		}
		out = append(out, Query{
			Src: src,
			Dst: dst,
			Interval: contact.Interval{
				Lo: trajectory.Tick(lo),
				Hi: trajectory.Tick(lo + length - 1),
			},
		})
	}
	return out
}

// Oracle evaluates reachability by direct simulation of item propagation
// over the contact network: at every instant of the query interval the item
// spreads through the connected component of each carrier (transfer within a
// contact is instantaneous, and objects hold items forever). This is the
// semantics of §3.2 executed literally, with no indexing — O(|Tp|·|O|) per
// query — so every engine is validated against it.
//
// The oracle holds no query-scoped mutable state: each propagation
// allocates its own scratch, so one Oracle serves concurrent queries. (The
// filtered-projection cache behind Filtered is guarded by its own mutex.)
type Oracle struct {
	net *contact.Network

	mu       sync.Mutex
	filtered map[Filter]*Oracle
}

// NewOracle returns an oracle over net.
func NewOracle(net *contact.Network) *Oracle {
	return &Oracle{net: net}
}

// Network returns the contact network the oracle evaluates over.
func (o *Oracle) Network() *contact.Network { return o.net }

// Filtered returns an oracle over the projection of the network onto the
// contacts f accepts. Because per-contact predicates depend only on the
// contact record, every query against the filtered oracle is the exact
// filtered-propagation answer — this is how the oracle (and every
// evaluator that falls back to it) is natively predicate-capable.
// Projections are cached per filter value, so workloads that sweep queries
// under one predicate pay the projection once.
func (o *Oracle) Filtered(f Filter) *Oracle {
	if !f.Active() {
		return o
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if cached, ok := o.filtered[f]; ok {
		return cached
	}
	if o.filtered == nil {
		o.filtered = make(map[Filter]*Oracle)
	}
	fo := NewOracle(o.net.Filter(f.Match))
	o.filtered[f] = fo
	return fo
}

// Reachable answers the query against ground truth.
func (o *Oracle) Reachable(q Query) bool {
	ok, _ := o.ReachableCounted(q)
	return ok
}

// ReachableCounted is Reachable plus the number of objects infected (src
// included) before the simulation terminated.
func (o *Oracle) ReachableCounted(q Query) (bool, int) {
	reached := false
	expanded := 0
	o.propagate(q.Src, q.Interval, func(obj trajectory.ObjectID) bool {
		expanded++
		if obj == q.Dst {
			reached = true
			return false // stop early
		}
		return true
	})
	return reached, expanded
}

// ReachableSet returns all objects reachable from src during iv (including
// src itself), the batch primitive behind the paper's epidemic and
// watch-list scenarios (§1). The set is sorted ascending.
func (o *Oracle) ReachableSet(src trajectory.ObjectID, iv contact.Interval) []trajectory.ObjectID {
	return o.ReachableSetFrom([]trajectory.ObjectID{src}, iv)
}

// ReachableFromCounted answers the multi-source query: can an item held by
// any of the seeds at iv.Lo reach dst by iv.Hi? It returns the number of
// objects infected (seeds included) before the simulation terminated. This
// is the frontier primitive the cross-segment planner uses: the reachable
// set at the end of one time slab seeds the propagation of the next.
func (o *Oracle) ReachableFromCounted(seeds []trajectory.ObjectID, dst trajectory.ObjectID, iv contact.Interval) (bool, int) {
	reached := false
	expanded := 0
	o.propagateFrom(seeds, iv, nil, func(obj trajectory.ObjectID) bool {
		expanded++
		if obj == dst {
			reached = true
			return false
		}
		return true
	})
	return reached, expanded
}

// ReachableSetFrom returns all objects reachable from any seed during iv
// (seeds included when the interval overlaps the time domain), sorted
// ascending.
func (o *Oracle) ReachableSetFrom(seeds []trajectory.ObjectID, iv contact.Interval) []trajectory.ObjectID {
	var out []trajectory.ObjectID
	o.propagateFrom(seeds, iv, nil, func(obj trajectory.ObjectID) bool {
		out = append(out, obj)
		return true
	})
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out
}

// ReverseReachableSetFrom returns the deliverer set of seeds over iv: every
// object x such that an item held by x at iv.Lo reaches some seed by iv.Hi
// (seeds included when the interval overlaps the time domain). Propagation is
// symmetric in time, so this is ReachableSetFrom on the time-mirrored contact
// sequence — the backward frontier primitive of the bidirectional planner.
// The set is sorted ascending.
func (o *Oracle) ReverseReachableSetFrom(seeds []trajectory.ObjectID, iv contact.Interval) []trajectory.ObjectID {
	var out []trajectory.ObjectID
	o.reversePropagateFrom(seeds, iv, func(obj trajectory.ObjectID, _ trajectory.Tick) bool {
		out = append(out, obj)
		return true
	})
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out
}

// ReverseProfileFrom is ReverseReachableSetFrom plus each deliverer's latest
// departure tick: the last tick of iv at which the object can still pick up
// the item and have it delivered to a seed by iv.Hi (iv.Hi itself for the
// seeds). Entries are sorted by object; Hops is -1 — the reverse sweep does
// not track transfer counts.
func (o *Oracle) ReverseProfileFrom(seeds []trajectory.ObjectID, iv contact.Interval) []ProfileEntry {
	var out []ProfileEntry
	o.reversePropagateFrom(seeds, iv, func(obj trajectory.ObjectID, t trajectory.Tick) bool {
		out = append(out, ProfileEntry{Obj: obj, Hops: -1, Arrival: t})
		return true
	})
	sort.Slice(out, func(i, k int) bool { return out[i].Obj < out[k].Obj })
	return out
}

// reversePropagateFrom runs the time-mirrored simulation. With D(iv.Hi+1) =
// seeds, walking ticks descending gives D(t) = {x : component(x, t) ∩ D(t+1)
// ≠ ∅}: x's whole component at tick t becomes infected the moment x is, so x
// delivers exactly when its component contains someone who delivers from the
// next tick on. Objects hold items forever, so D only grows as t decreases;
// onDeliver fires once per object at its latest departure tick (seeds first,
// at iv.Hi). Snapshot iterates forward and reuses its pairs slice, so the
// per-tick contact lists are buffered (copied) before the descending pass.
func (o *Oracle) reversePropagateFrom(seeds []trajectory.ObjectID, iv contact.Interval,
	onDeliver func(trajectory.ObjectID, trajectory.Tick) bool) {

	n := o.net.NumObjects
	if iv.Len() == 0 {
		return
	}
	delivers := make([]bool, n)
	any := false
	for _, s := range seeds {
		if int(s) >= 0 && int(s) < n {
			delivers[s] = true
			any = true
		}
	}
	if !any {
		return
	}
	for i := 0; i < n; i++ {
		if delivers[i] && !onDeliver(trajectory.ObjectID(i), iv.Hi) {
			return
		}
	}
	type tickPairs struct {
		t     trajectory.Tick
		pairs []stjoin.Pair
	}
	var ticks []tickPairs
	o.net.Snapshot(iv.Lo, iv.Hi, func(t trajectory.Tick, pairs []stjoin.Pair) bool {
		if len(pairs) == 0 {
			return true
		}
		ticks = append(ticks, tickPairs{t, append([]stjoin.Pair(nil), pairs...)})
		return true
	})
	parent := make([]int32, n)
	size := make([]int32, n)
	for k := len(ticks) - 1; k >= 0; k-- {
		t, pairs := ticks[k].t, ticks[k].pairs
		for i := 0; i < n; i++ {
			parent[i] = int32(i)
			size[i] = 1
		}
		for _, pr := range pairs {
			ra, rb := ufFind(parent, int32(pr.A)), ufFind(parent, int32(pr.B))
			if ra == rb {
				continue
			}
			if size[ra] < size[rb] {
				ra, rb = rb, ra
			}
			parent[rb] = ra
			size[ra] += size[rb]
		}
		// A component holding a deliverer delivers as a whole.
		deliverRoot := make(map[int32]bool)
		for i := 0; i < n; i++ {
			if delivers[i] {
				deliverRoot[ufFind(parent, int32(i))] = true
			}
		}
		for i := 0; i < n; i++ {
			if !delivers[i] && deliverRoot[ufFind(parent, int32(i))] {
				delivers[i] = true
				if !onDeliver(trajectory.ObjectID(i), t) {
					return
				}
			}
		}
	}
}

// EarliestReach returns the first tick in iv at which dst holds the item, or
// false. It implements |T'p| of Theorems 4.1/5.4: the smallest prefix of the
// query interval that decides a positive query.
func (o *Oracle) EarliestReach(q Query) (trajectory.Tick, bool) {
	when := trajectory.Tick(-1)
	cur := trajectory.Tick(-1)
	o.propagate2(q.Src, q.Interval, func(t trajectory.Tick) { cur = t }, func(obj trajectory.ObjectID) bool {
		if obj == q.Dst {
			when = cur
			return false
		}
		return true
	})
	return when, when >= 0
}

// propagate runs the simulation, invoking onInfect (src first, at iv.Lo) for
// every newly infected object. onInfect returning false aborts.
func (o *Oracle) propagate(src trajectory.ObjectID, iv contact.Interval, onInfect func(trajectory.ObjectID) bool) {
	o.propagate2(src, iv, nil, onInfect)
}

func (o *Oracle) propagate2(src trajectory.ObjectID, iv contact.Interval,
	onTick func(trajectory.Tick), onInfect func(trajectory.ObjectID) bool) {
	o.propagateFrom([]trajectory.ObjectID{src}, iv, onTick, onInfect)
}

// propagateFrom is the multi-source propagation: every valid seed holds the
// item at iv.Lo. onInfect is invoked for each seed first (ascending seed
// order), then for every newly infected object. Out-of-range seeds are
// ignored.
func (o *Oracle) propagateFrom(seeds []trajectory.ObjectID, iv contact.Interval,
	onTick func(trajectory.Tick), onInfect func(trajectory.ObjectID) bool) {

	n := o.net.NumObjects
	if iv.Len() == 0 {
		return
	}
	// Per-call scratch keeps the oracle safe under concurrent queries.
	parent := make([]int32, n)
	size := make([]int32, n)
	infected := make([]bool, n)
	any := false
	for _, s := range seeds {
		if int(s) >= 0 && int(s) < n {
			infected[s] = true
			any = true
		}
	}
	if !any {
		return
	}
	if onTick != nil {
		onTick(iv.Lo)
	}
	for i := 0; i < n; i++ {
		if infected[i] && !onInfect(trajectory.ObjectID(i)) {
			return
		}
	}
	o.net.Snapshot(iv.Lo, iv.Hi, func(t trajectory.Tick, pairs []stjoin.Pair) bool {
		if len(pairs) == 0 {
			return true
		}
		if onTick != nil {
			onTick(t)
		}
		for i := 0; i < n; i++ {
			parent[i] = int32(i)
			size[i] = 1
		}
		for _, pr := range pairs {
			ra, rb := ufFind(parent, int32(pr.A)), ufFind(parent, int32(pr.B))
			if ra == rb {
				continue
			}
			if size[ra] < size[rb] {
				ra, rb = rb, ra
			}
			parent[rb] = ra
			size[ra] += size[rb]
		}
		// An infected member infects its whole component.
		infectedRoot := make(map[int32]bool)
		for i := 0; i < n; i++ {
			if infected[i] {
				infectedRoot[ufFind(parent, int32(i))] = true
			}
		}
		for i := 0; i < n; i++ {
			if !infected[i] && infectedRoot[ufFind(parent, int32(i))] {
				infected[i] = true
				if !onInfect(trajectory.ObjectID(i)) {
					return false
				}
			}
		}
		return true
	})
}

func ufFind(parent []int32, x int32) int32 {
	for parent[x] != x {
		parent[x] = parent[parent[x]]
		x = parent[x]
	}
	return x
}
