package queries

import (
	"math/rand"
	"testing"

	"streach/internal/contact"
	"streach/internal/mobility"
	"streach/internal/trajectory"
)

func figure1Network() *contact.Network {
	return contact.FromContacts(4, 4, []contact.Contact{
		{A: 0, B: 1, Validity: contact.Interval{Lo: 0, Hi: 0}},
		{A: 1, B: 3, Validity: contact.Interval{Lo: 1, Hi: 1}},
		{A: 2, B: 3, Validity: contact.Interval{Lo: 1, Hi: 2}},
		{A: 0, B: 1, Validity: contact.Interval{Lo: 2, Hi: 3}},
	})
}

func TestOracleFigure1(t *testing.T) {
	o := NewOracle(figure1Network())
	// §1: "The object o4 is reachable from o1 during time interval [0, 1]"
	// (0-based: 3 from 0); "o1 is not reachable from o4 during [0,1]".
	cases := []struct {
		q    Query
		want bool
	}{
		{Query{Src: 0, Dst: 3, Interval: contact.Interval{Lo: 0, Hi: 1}}, true},
		{Query{Src: 3, Dst: 0, Interval: contact.Interval{Lo: 0, Hi: 1}}, false},
		// §4 example: for q: o1 ⤳[2,3] o2, contact c4 suffices.
		{Query{Src: 0, Dst: 1, Interval: contact.Interval{Lo: 2, Hi: 3}}, true},
		// o3 never reaches o1 within [2,3] (no connecting contacts).
		{Query{Src: 2, Dst: 0, Interval: contact.Interval{Lo: 2, Hi: 3}}, false},
		// Within a single instant, contact chains propagate instantly.
		{Query{Src: 1, Dst: 2, Interval: contact.Interval{Lo: 1, Hi: 1}}, true},
		// Time-respecting order matters: o4→o1 succeeds over the full
		// interval (o4-o2 at 1, o2-o1 at 2).
		{Query{Src: 3, Dst: 0, Interval: contact.Interval{Lo: 0, Hi: 3}}, true},
	}
	for _, tc := range cases {
		if got := o.Reachable(tc.q); got != tc.want {
			t.Errorf("%v = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestOracleSnapshotSymmetryAndTransitivity(t *testing.T) {
	// Properties 5.1 and 5.2 on random networks.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		ticks := 5 + rng.Intn(20)
		var cs []contact.Contact
		for i := 0; i < rng.Intn(25); i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			lo := rng.Intn(ticks)
			cs = append(cs, contact.Contact{
				A: trajectory.ObjectID(a), B: trajectory.ObjectID(b),
				Validity: contact.Interval{Lo: trajectory.Tick(lo), Hi: trajectory.Tick(lo + rng.Intn(3))},
			})
		}
		net := contact.FromContacts(n, ticks, cs)
		o := NewOracle(net)
		// Snapshot symmetry: single-instant reachability is symmetric.
		for tk := 0; tk < ticks; tk++ {
			iv := contact.Interval{Lo: trajectory.Tick(tk), Hi: trajectory.Tick(tk)}
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					ab := o.Reachable(Query{Src: trajectory.ObjectID(a), Dst: trajectory.ObjectID(b), Interval: iv})
					ba := o.Reachable(Query{Src: trajectory.ObjectID(b), Dst: trajectory.ObjectID(a), Interval: iv})
					if ab != ba {
						t.Fatalf("snapshot symmetry violated at t=%d for %d,%d", tk, a, b)
					}
				}
			}
		}
		// Transitivity: a⤳b during [t1,t2] and b⤳c during [t2,t3] ⇒ a⤳c
		// during [t1,t3].
		for i := 0; i < 40; i++ {
			a := trajectory.ObjectID(rng.Intn(n))
			b := trajectory.ObjectID(rng.Intn(n))
			c := trajectory.ObjectID(rng.Intn(n))
			t1 := rng.Intn(ticks)
			t2 := t1 + rng.Intn(ticks-t1)
			t3 := t2 + rng.Intn(ticks-t2)
			ab := o.Reachable(Query{Src: a, Dst: b, Interval: contact.Interval{Lo: trajectory.Tick(t1), Hi: trajectory.Tick(t2)}})
			bc := o.Reachable(Query{Src: b, Dst: c, Interval: contact.Interval{Lo: trajectory.Tick(t2), Hi: trajectory.Tick(t3)}})
			if ab && bc {
				if !o.Reachable(Query{Src: a, Dst: c, Interval: contact.Interval{Lo: trajectory.Tick(t1), Hi: trajectory.Tick(t3)}}) {
					t.Fatalf("transitivity violated: %d⤳%d[%d,%d], %d⤳%d[%d,%d]", a, b, t1, t2, b, c, t2, t3)
				}
			}
		}
	}
}

func TestReachableSetMonotone(t *testing.T) {
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: 60, NumTicks: 120, Seed: 4})
	net := contact.Extract(d)
	o := NewOracle(net)
	src := trajectory.ObjectID(0)
	prev := 0
	for _, hi := range []trajectory.Tick{10, 40, 80, 119} {
		set := o.ReachableSet(src, contact.Interval{Lo: 0, Hi: hi})
		if len(set) < prev {
			t.Fatalf("reachable set shrank: %d → %d at hi=%d", prev, len(set), hi)
		}
		prev = len(set)
		if set[0] != src {
			t.Fatal("source must be first in its own reachable set")
		}
	}
}

func TestReachableSetConsistentWithReachable(t *testing.T) {
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: 50, NumTicks: 100, Seed: 5})
	net := contact.Extract(d)
	o := NewOracle(net)
	iv := contact.Interval{Lo: 10, Hi: 90}
	src := trajectory.ObjectID(7)
	set := make(map[trajectory.ObjectID]bool)
	for _, obj := range o.ReachableSet(src, iv) {
		set[obj] = true
	}
	for dst := 0; dst < d.NumObjects(); dst++ {
		q := Query{Src: src, Dst: trajectory.ObjectID(dst), Interval: iv}
		want := set[trajectory.ObjectID(dst)] || trajectory.ObjectID(dst) == src
		if got := o.Reachable(q); got != want && dst != int(src) {
			t.Fatalf("Reachable(%v) = %v, ReachableSet says %v", q, got, want)
		}
	}
}

func TestReverseReachableSetDuality(t *testing.T) {
	// x delivers to d over iv exactly when d is forward-reachable from x:
	// the reverse sweep is the forward sweep on the time-mirrored network.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(8)
		ticks := 6 + rng.Intn(20)
		var cs []contact.Contact
		for i := 0; i < rng.Intn(30); i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			lo := rng.Intn(ticks)
			cs = append(cs, contact.Contact{
				A: trajectory.ObjectID(a), B: trajectory.ObjectID(b),
				Validity: contact.Interval{Lo: trajectory.Tick(lo), Hi: trajectory.Tick(lo + rng.Intn(3))},
			})
		}
		net := contact.FromContacts(n, ticks, cs)
		o := NewOracle(net)
		for q := 0; q < 8; q++ {
			d := trajectory.ObjectID(rng.Intn(n))
			lo := rng.Intn(ticks)
			iv := contact.Interval{Lo: trajectory.Tick(lo), Hi: trajectory.Tick(lo + rng.Intn(ticks-lo))}
			rev := make(map[trajectory.ObjectID]bool)
			for _, obj := range o.ReverseReachableSetFrom([]trajectory.ObjectID{d}, iv) {
				rev[obj] = true
			}
			for x := 0; x < n; x++ {
				fwd := o.Reachable(Query{Src: trajectory.ObjectID(x), Dst: d, Interval: iv})
				if fwd != rev[trajectory.ObjectID(x)] {
					t.Fatalf("trial %d: duality violated for %d⤳%d over %v: forward %v, reverse %v",
						trial, x, d, iv, fwd, rev[trajectory.ObjectID(x)])
				}
			}
		}
	}
}

func TestReverseProfileDepartures(t *testing.T) {
	// The departure tick of each deliverer must be the last tick from which
	// a delivery still succeeds: reachable over [dep, hi] but not [dep+1, hi].
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: 30, NumTicks: 80, Seed: 9})
	net := contact.Extract(d)
	o := NewOracle(net)
	dst := trajectory.ObjectID(3)
	iv := contact.Interval{Lo: 5, Hi: 70}
	for _, e := range o.ReverseProfileFrom([]trajectory.ObjectID{dst}, iv) {
		if e.Arrival < iv.Lo || e.Arrival > iv.Hi {
			t.Fatalf("departure %d outside %v", e.Arrival, iv)
		}
		if !o.Reachable(Query{Src: e.Obj, Dst: dst, Interval: contact.Interval{Lo: e.Arrival, Hi: iv.Hi}}) {
			t.Fatalf("object %d cannot deliver from its own departure tick %d", e.Obj, e.Arrival)
		}
		if e.Arrival < iv.Hi && o.Reachable(Query{Src: e.Obj, Dst: dst, Interval: contact.Interval{Lo: e.Arrival + 1, Hi: iv.Hi}}) {
			t.Fatalf("object %d delivers after its supposed latest departure %d", e.Obj, e.Arrival)
		}
	}
	// Seeds always deliver to themselves, departing at iv.Hi.
	prof := o.ReverseProfileFrom([]trajectory.ObjectID{dst}, iv)
	found := false
	for _, e := range prof {
		if e.Obj == dst {
			found = true
			if e.Arrival != iv.Hi {
				t.Fatalf("seed departure = %d, want %d", e.Arrival, iv.Hi)
			}
		}
	}
	if !found {
		t.Fatal("seed missing from its own reverse profile")
	}
}

func TestEarliestReach(t *testing.T) {
	o := NewOracle(figure1Network())
	// o1 → o4 over [0,3]: earliest delivery is tick 1 (o2 hands over at 1).
	tk, ok := o.EarliestReach(Query{Src: 0, Dst: 3, Interval: contact.Interval{Lo: 0, Hi: 3}})
	if !ok || tk != 1 {
		t.Fatalf("EarliestReach = %d, %v; want 1, true", tk, ok)
	}
	// Self-query: reached at interval start.
	tk, ok = o.EarliestReach(Query{Src: 2, Dst: 2, Interval: contact.Interval{Lo: 1, Hi: 3}})
	if !ok || tk != 1 {
		t.Fatalf("self EarliestReach = %d, %v", tk, ok)
	}
	if _, ok := o.EarliestReach(Query{Src: 2, Dst: 0, Interval: contact.Interval{Lo: 2, Hi: 3}}); ok {
		t.Fatal("unreachable query reported a reach time")
	}
}

func TestOracleDegenerateInputs(t *testing.T) {
	o := NewOracle(figure1Network())
	if o.Reachable(Query{Src: 99, Dst: 0, Interval: contact.Interval{Lo: 0, Hi: 3}}) {
		t.Error("out-of-range source reachable")
	}
	if o.Reachable(Query{Src: 0, Dst: 1, Interval: contact.Interval{Lo: 3, Hi: 1}}) {
		t.Error("empty interval reachable")
	}
	if set := o.ReachableSet(0, contact.Interval{Lo: 2, Hi: 1}); set != nil {
		t.Error("empty interval produced a reachable set")
	}
}

func TestRandomWorkloadRespectsConfig(t *testing.T) {
	w := RandomWorkload(WorkloadConfig{
		NumObjects: 50, NumTicks: 1000, Count: 200, MinLen: 150, MaxLen: 350, Seed: 1,
	})
	if len(w) != 200 {
		t.Fatalf("len = %d", len(w))
	}
	for _, q := range w {
		if q.Src == q.Dst {
			t.Fatal("src == dst")
		}
		l := q.Interval.Len()
		if l < 150 || l > 350 {
			t.Fatalf("interval length %d outside [150, 350]", l)
		}
		if q.Interval.Lo < 0 || int(q.Interval.Hi) >= 1000 {
			t.Fatalf("interval %v outside domain", q.Interval)
		}
	}
}

func TestRandomWorkloadClampsToDomain(t *testing.T) {
	w := RandomWorkload(WorkloadConfig{NumObjects: 5, NumTicks: 60, Count: 50, Seed: 2})
	for _, q := range w {
		if q.Interval.Len() > 60 {
			t.Fatalf("interval %v longer than domain", q.Interval)
		}
	}
	// Deterministic for a fixed seed.
	w2 := RandomWorkload(WorkloadConfig{NumObjects: 5, NumTicks: 60, Count: 50, Seed: 2})
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("workload not deterministic")
		}
	}
}
