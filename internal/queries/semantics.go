// Temporal query semantics beyond boolean reachability: earliest-arrival
// ticks, hop (transfer) bounds, and per-transfer decay weights, after the
// query families of Strzheletska & Tsotras ("Reachability and Top-k
// Reachability Queries with Transfer Decay") and Ali et al. ("An Efficient
// Index for Contact Tracing Query").
//
// The common primitive is the propagation profile: for every object
// reachable from a seed frontier during an interval — under an optional
// transfer budget — the minimal number of inter-object transfers and the
// earliest tick the object holds the item. Within one instant the item
// still crosses a whole contact chain (transfer inside a contact is
// instantaneous, §3.2), but every contact edge on the chain costs one
// transfer, so hop counts inside an instant's contact graph are BFS
// distances from the carriers. The oracle evaluates this literally with a
// per-instant relaxation to fixpoint, serving as ground truth for the
// indexes' native implementations.
package queries

import (
	"math"
	"sort"
	"sync"

	"streach/internal/contact"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// Semantics refines the propagation model of a reachability query. The
// zero value selects plain boolean semantics, keeping the query on the
// engines' allocation-free boolean path.
type Semantics struct {
	// MaxHops bounds the number of inter-object transfers the item may
	// take; 0 means unbounded. A chain a→b→c within one instant costs two
	// transfers.
	MaxHops int
	// TrackArrival requests the earliest-arrival tick (and, where the
	// evaluator tracks them, the minimal transfer count) in the Result.
	TrackArrival bool
	// Decay is the per-transfer weight d ∈ (0, 1] of top-k ranking: an
	// item forwarded over h transfers arrives with weight d^h. Point
	// queries ignore it; TopKReachable sets it from its argument.
	Decay float64

	// MinDuration restricts propagation to contacts whose full original
	// validity spans at least this many ticks (contact-tracing exposure
	// thresholds: a transmission needs sustained proximity); 0 disables.
	MinDuration int
	// MaxWeight restricts propagation to contacts whose closest approach
	// at extraction time was at most this many metres; 0 disables. Contacts
	// without a recorded weight (incremental pair-set feeds) count as
	// distance 0 and always pass.
	MaxWeight float64
	// FilterID names a predicate registered with RegisterFilter; the query
	// propagates only over contacts the predicate accepts. Empty disables.
	FilterID string

	// Prob is the uncertain-contact extension (§7): every contact transmits
	// independently with probability Prob ∈ (0, 1]; 0 keeps propagation
	// deterministic. The best path probability Prob^hops is reported in the
	// Result.
	Prob float64
	// ProbThreshold is the reachability threshold τ ∈ (0, 1]: dst counts as
	// reachable only via a path of probability ≥ τ. Because path
	// probability is Prob^hops, τ folds into a transfer budget (see
	// EffectiveBudget) and rides the hop-tracking plumbing exactly. Only
	// meaningful with Prob set.
	ProbThreshold float64
	// MCTrials selects the seeded Monte-Carlo estimator instead of exact
	// evaluation: that many sampled propagation worlds estimate the
	// reachability probability (network reliability, an upper bound on the
	// best single-path probability). Only meaningful with Prob set; 0 keeps
	// evaluation exact.
	MCTrials int
	// MCSeed seeds the Monte-Carlo sampler for reproducibility.
	MCSeed int64
}

// Active reports whether the query needs the semantics evaluation path.
// Any nonzero extension field routes there — including out-of-range or NaN
// values (NaN != 0), so malformed parameters reach validation instead of
// silently riding the plain boolean path.
func (s Semantics) Active() bool {
	return s.MaxHops > 0 || s.TrackArrival || s.Decay != 0 ||
		s.MinDuration != 0 || s.MaxWeight != 0 || s.FilterID != "" ||
		s.Prob != 0 || s.ProbThreshold != 0 || s.MCTrials != 0
}

// HopBudget returns the transfer budget as the evaluators consume it:
// MaxHops when bounded, UnboundedHops otherwise.
func (s Semantics) HopBudget() int32 {
	if s.MaxHops > 0 && int64(s.MaxHops) < int64(UnboundedHops) {
		return int32(s.MaxHops)
	}
	return UnboundedHops
}

// EffectiveBudget folds the probability threshold into the transfer
// budget: a path of h transfers has probability Prob^h, so Prob^h ≥ τ is
// exactly h ≤ log τ / log Prob. The returned budget is the tighter of that
// bound and HopBudget — which is how probabilistic reachability rides
// every hop-tracking evaluator (the profile oracle, the guided grid sweep,
// the cross-segment planner's residual budgets) without new propagation
// code.
func (s Semantics) EffectiveBudget() int32 {
	b := s.HopBudget()
	if s.Prob > 0 && s.Prob < 1 && s.ProbThreshold > 0 && s.ProbThreshold <= 1 {
		// The epsilon absorbs float error at exact powers (τ = p^k).
		h := math.Floor(math.Log(s.ProbThreshold)/math.Log(s.Prob) + 1e-9)
		if h < 0 {
			h = 0
		}
		if h < float64(b) {
			b = int32(h)
		}
	}
	return b
}

// Filter returns the query's compiled contact predicate.
func (s Semantics) Filter() Filter {
	return Filter{MinDuration: s.MinDuration, MaxWeight: s.MaxWeight, FilterID: s.FilterID}
}

// Filter is a compiled per-contact predicate: the conjunction of the
// built-in duration/weight bounds and an optional registered predicate.
// The zero value accepts everything. Filters are comparable, so evaluators
// cache per-filter network projections keyed on the value.
type Filter struct {
	MinDuration int
	MaxWeight   float64
	FilterID    string
}

// Active reports whether the filter rejects anything.
func (f Filter) Active() bool {
	return f.MinDuration > 0 || f.MaxWeight > 0 || f.FilterID != ""
}

// Match reports whether contact c participates in filtered propagation.
// The FilterID must be registered (validate with ResolveFilter first; an
// unregistered ID matches nothing rather than silently passing).
func (f Filter) Match(c contact.Contact) bool {
	if f.MinDuration > 0 && int(c.Duration()) < f.MinDuration {
		return false
	}
	if f.MaxWeight > 0 && float64(c.Weight) > f.MaxWeight {
		return false
	}
	if f.FilterID != "" {
		fn, ok := ResolveFilter(f.FilterID)
		if !ok || !fn(c) {
			return false
		}
	}
	return true
}

// filterRegistry holds the compiled contact predicates addressable from
// query semantics by ID.
var filterRegistry sync.Map // string → func(contact.Contact) bool

// RegisterFilter registers (or replaces) a compiled contact predicate
// under id. Queries reference it via Semantics.FilterID; serving layers
// accept only registered IDs, so the predicate set is fixed at process
// setup rather than parsed from requests.
func RegisterFilter(id string, fn func(contact.Contact) bool) {
	if id == "" || fn == nil {
		panic("queries: RegisterFilter needs a non-empty id and a predicate")
	}
	filterRegistry.Store(id, fn)
}

// ResolveFilter returns the predicate registered under id.
func ResolveFilter(id string) (func(contact.Contact) bool, bool) {
	v, ok := filterRegistry.Load(id)
	if !ok {
		return nil, false
	}
	return v.(func(contact.Contact) bool), true
}

// UnboundedHops is the transfer budget meaning "no bound". It is one below
// MaxInt32 so budget+1 arithmetic cannot overflow.
const UnboundedHops = int32(math.MaxInt32 - 1)

// NoObject is the earlyDst value disabling early termination.
const NoObject = trajectory.ObjectID(-1)

// SeedState is one object of a propagation frontier together with the
// transfers already spent reaching it — the state the cross-segment
// planner carries over slab boundaries (a seed entering the next slab with
// hops h has budget-h residual transfers left).
type SeedState struct {
	Obj  trajectory.ObjectID
	Hops int32
	// Start is the tick the seed begins holding the item. Values at or
	// below the query interval's start (including the zero value) mean
	// "holds it from the interval start"; later values defer the seed's
	// activation, which is how the scatter-gather shard planner hands a
	// whole round of boundary discoveries — each at its own best-known
	// arrival — to an owner shard as one multi-seed sweep.
	Start trajectory.Tick
}

// ProfileEntry is one reachable object's propagation profile.
type ProfileEntry struct {
	Obj trajectory.ObjectID
	// Hops is the minimal number of transfers over all valid paths within
	// the interval; -1 when the evaluator does not track transfer counts
	// (hop-unbounded arrival sweeps).
	Hops int32
	// Arrival is the earliest tick at which the object holds the item
	// (seeds report the interval start).
	Arrival trajectory.Tick
}

// ProfileFrom computes the propagation profile of the seed frontier over
// iv: for every object reachable under the transfer budget (budget < 0
// means unbounded), its minimal transfer count and earliest arrival tick.
// Seeds enter holding the item at max(Start, iv.Lo) with their recorded
// hop counts (seeds beyond the budget, outside the ID space, or starting
// after iv.Hi are ignored). When earlyDst is a valid object, the
// simulation stops as soon as earlyDst is reachable — the returned profile
// is then partial but earlyDst's entry is exact. Entries are sorted by
// object ID; the int result is the number of objects reached (the
// expansion counter).
func (o *Oracle) ProfileFrom(seeds []SeedState, iv contact.Interval, budget int32, earlyDst trajectory.ObjectID) ([]ProfileEntry, int) {
	n := o.net.NumObjects
	iv = iv.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(o.net.NumTicks - 1)})
	if o.net.NumTicks == 0 || iv.Len() == 0 {
		return nil, 0
	}
	if budget < 0 || budget > UnboundedHops {
		budget = UnboundedHops
	}
	// Per-call scratch keeps the oracle safe under concurrent queries.
	hops := make([]int32, n)
	arrival := make([]trajectory.Tick, n)
	for i := range hops {
		hops[i] = -1
	}
	var reached []trajectory.ObjectID
	activate := func(s SeedState, at trajectory.Tick) {
		if hops[s.Obj] < 0 {
			arrival[s.Obj] = at
			reached = append(reached, s.Obj)
			hops[s.Obj] = s.Hops
		} else if s.Hops < hops[s.Obj] {
			hops[s.Obj] = s.Hops
		}
	}
	var deferred []SeedState // seeds activating after iv.Lo, ordered by Start
	for _, s := range seeds {
		if int(s.Obj) < 0 || int(s.Obj) >= n || s.Hops < 0 || s.Hops > budget {
			continue
		}
		if s.Start > iv.Hi {
			continue
		}
		if s.Start > iv.Lo {
			deferred = append(deferred, s)
			continue
		}
		activate(s, iv.Lo)
	}
	if len(reached) == 0 && len(deferred) == 0 {
		return nil, 0
	}
	sort.Slice(deferred, func(i, j int) bool { return deferred[i].Start < deferred[j].Start })
	di := 0
	dstReached := func() bool {
		return int(earlyDst) >= 0 && int(earlyDst) < n && hops[earlyDst] >= 0
	}
	if !dstReached() {
		o.net.Snapshot(iv.Lo, iv.Hi, func(t trajectory.Tick, pairs []stjoin.Pair) bool {
			// Seeds whose activation tick the sweep has reached join the
			// carriers before the instant relaxes (an earlier organic
			// arrival, if any, is kept by activate).
			for di < len(deferred) && deferred[di].Start <= t {
				activate(deferred[di], deferred[di].Start)
				di++
			}
			// Relax the instant's contact graph to fixpoint: hop counts
			// inside one instant are multi-source BFS distances, and
			// repeated sweeps over the (small) pair list converge to them
			// even though carriers start at different depths.
			for changed := true; changed; {
				changed = false
				for _, pr := range pairs {
					if relaxPair(hops, arrival, &reached, budget, t, pr.A, pr.B) {
						changed = true
					}
					if relaxPair(hops, arrival, &reached, budget, t, pr.B, pr.A) {
						changed = true
					}
				}
			}
			return !dstReached()
		})
	}
	// Deferred seeds the sweep never visited (it stops early on earlyDst,
	// and some snapshots skip contact-free instants) still hold the item
	// from their activation tick — with no contacts after it, holding is
	// all they do, so recording the activation is exact.
	for ; di < len(deferred); di++ {
		activate(deferred[di], deferred[di].Start)
	}
	reached = trajectory.SortDedupObjects(reached)
	entries := make([]ProfileEntry, len(reached))
	for i, obj := range reached {
		entries[i] = ProfileEntry{Obj: obj, Hops: hops[obj], Arrival: arrival[obj]}
	}
	return entries, len(reached)
}

// relaxPair propagates one directed transfer from carrier to other,
// reporting whether it improved other's hop count.
func relaxPair(hops []int32, arrival []trajectory.Tick, reached *[]trajectory.ObjectID,
	budget int32, t trajectory.Tick, from, to trajectory.ObjectID) bool {

	hf := hops[from]
	if hf < 0 || hf >= budget {
		return false
	}
	if ht := hops[to]; ht >= 0 && ht <= hf+1 {
		return false
	}
	if hops[to] < 0 {
		arrival[to] = t
		*reached = append(*reached, to)
	}
	hops[to] = hf + 1
	return true
}
