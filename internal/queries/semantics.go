// Temporal query semantics beyond boolean reachability: earliest-arrival
// ticks, hop (transfer) bounds, and per-transfer decay weights, after the
// query families of Strzheletska & Tsotras ("Reachability and Top-k
// Reachability Queries with Transfer Decay") and Ali et al. ("An Efficient
// Index for Contact Tracing Query").
//
// The common primitive is the propagation profile: for every object
// reachable from a seed frontier during an interval — under an optional
// transfer budget — the minimal number of inter-object transfers and the
// earliest tick the object holds the item. Within one instant the item
// still crosses a whole contact chain (transfer inside a contact is
// instantaneous, §3.2), but every contact edge on the chain costs one
// transfer, so hop counts inside an instant's contact graph are BFS
// distances from the carriers. The oracle evaluates this literally with a
// per-instant relaxation to fixpoint, serving as ground truth for the
// indexes' native implementations.
package queries

import (
	"math"
	"sort"

	"streach/internal/contact"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// Semantics refines the propagation model of a reachability query. The
// zero value selects plain boolean semantics, keeping the query on the
// engines' allocation-free boolean path.
type Semantics struct {
	// MaxHops bounds the number of inter-object transfers the item may
	// take; 0 means unbounded. A chain a→b→c within one instant costs two
	// transfers.
	MaxHops int
	// TrackArrival requests the earliest-arrival tick (and, where the
	// evaluator tracks them, the minimal transfer count) in the Result.
	TrackArrival bool
	// Decay is the per-transfer weight d ∈ (0, 1] of top-k ranking: an
	// item forwarded over h transfers arrives with weight d^h. Point
	// queries ignore it; TopKReachable sets it from its argument.
	Decay float64
}

// Active reports whether the query needs the semantics evaluation path.
func (s Semantics) Active() bool {
	return s.MaxHops > 0 || s.TrackArrival || s.Decay != 0
}

// HopBudget returns the transfer budget as the evaluators consume it:
// MaxHops when bounded, UnboundedHops otherwise.
func (s Semantics) HopBudget() int32 {
	if s.MaxHops > 0 && int64(s.MaxHops) < int64(UnboundedHops) {
		return int32(s.MaxHops)
	}
	return UnboundedHops
}

// UnboundedHops is the transfer budget meaning "no bound". It is one below
// MaxInt32 so budget+1 arithmetic cannot overflow.
const UnboundedHops = int32(math.MaxInt32 - 1)

// NoObject is the earlyDst value disabling early termination.
const NoObject = trajectory.ObjectID(-1)

// SeedState is one object of a propagation frontier together with the
// transfers already spent reaching it — the state the cross-segment
// planner carries over slab boundaries (a seed entering the next slab with
// hops h has budget-h residual transfers left).
type SeedState struct {
	Obj  trajectory.ObjectID
	Hops int32
	// Start is the tick the seed begins holding the item. Values at or
	// below the query interval's start (including the zero value) mean
	// "holds it from the interval start"; later values defer the seed's
	// activation, which is how the scatter-gather shard planner hands a
	// whole round of boundary discoveries — each at its own best-known
	// arrival — to an owner shard as one multi-seed sweep.
	Start trajectory.Tick
}

// ProfileEntry is one reachable object's propagation profile.
type ProfileEntry struct {
	Obj trajectory.ObjectID
	// Hops is the minimal number of transfers over all valid paths within
	// the interval; -1 when the evaluator does not track transfer counts
	// (hop-unbounded arrival sweeps).
	Hops int32
	// Arrival is the earliest tick at which the object holds the item
	// (seeds report the interval start).
	Arrival trajectory.Tick
}

// ProfileFrom computes the propagation profile of the seed frontier over
// iv: for every object reachable under the transfer budget (budget < 0
// means unbounded), its minimal transfer count and earliest arrival tick.
// Seeds enter holding the item at max(Start, iv.Lo) with their recorded
// hop counts (seeds beyond the budget, outside the ID space, or starting
// after iv.Hi are ignored). When earlyDst is a valid object, the
// simulation stops as soon as earlyDst is reachable — the returned profile
// is then partial but earlyDst's entry is exact. Entries are sorted by
// object ID; the int result is the number of objects reached (the
// expansion counter).
func (o *Oracle) ProfileFrom(seeds []SeedState, iv contact.Interval, budget int32, earlyDst trajectory.ObjectID) ([]ProfileEntry, int) {
	n := o.net.NumObjects
	iv = iv.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(o.net.NumTicks - 1)})
	if o.net.NumTicks == 0 || iv.Len() == 0 {
		return nil, 0
	}
	if budget < 0 || budget > UnboundedHops {
		budget = UnboundedHops
	}
	// Per-call scratch keeps the oracle safe under concurrent queries.
	hops := make([]int32, n)
	arrival := make([]trajectory.Tick, n)
	for i := range hops {
		hops[i] = -1
	}
	var reached []trajectory.ObjectID
	activate := func(s SeedState, at trajectory.Tick) {
		if hops[s.Obj] < 0 {
			arrival[s.Obj] = at
			reached = append(reached, s.Obj)
			hops[s.Obj] = s.Hops
		} else if s.Hops < hops[s.Obj] {
			hops[s.Obj] = s.Hops
		}
	}
	var deferred []SeedState // seeds activating after iv.Lo, ordered by Start
	for _, s := range seeds {
		if int(s.Obj) < 0 || int(s.Obj) >= n || s.Hops < 0 || s.Hops > budget {
			continue
		}
		if s.Start > iv.Hi {
			continue
		}
		if s.Start > iv.Lo {
			deferred = append(deferred, s)
			continue
		}
		activate(s, iv.Lo)
	}
	if len(reached) == 0 && len(deferred) == 0 {
		return nil, 0
	}
	sort.Slice(deferred, func(i, j int) bool { return deferred[i].Start < deferred[j].Start })
	di := 0
	dstReached := func() bool {
		return int(earlyDst) >= 0 && int(earlyDst) < n && hops[earlyDst] >= 0
	}
	if !dstReached() {
		o.net.Snapshot(iv.Lo, iv.Hi, func(t trajectory.Tick, pairs []stjoin.Pair) bool {
			// Seeds whose activation tick the sweep has reached join the
			// carriers before the instant relaxes (an earlier organic
			// arrival, if any, is kept by activate).
			for di < len(deferred) && deferred[di].Start <= t {
				activate(deferred[di], deferred[di].Start)
				di++
			}
			// Relax the instant's contact graph to fixpoint: hop counts
			// inside one instant are multi-source BFS distances, and
			// repeated sweeps over the (small) pair list converge to them
			// even though carriers start at different depths.
			for changed := true; changed; {
				changed = false
				for _, pr := range pairs {
					if relaxPair(hops, arrival, &reached, budget, t, pr.A, pr.B) {
						changed = true
					}
					if relaxPair(hops, arrival, &reached, budget, t, pr.B, pr.A) {
						changed = true
					}
				}
			}
			return !dstReached()
		})
	}
	// Deferred seeds the sweep never visited (it stops early on earlyDst,
	// and some snapshots skip contact-free instants) still hold the item
	// from their activation tick — with no contacts after it, holding is
	// all they do, so recording the activation is exact.
	for ; di < len(deferred); di++ {
		activate(deferred[di], deferred[di].Start)
	}
	reached = trajectory.SortDedupObjects(reached)
	entries := make([]ProfileEntry, len(reached))
	for i, obj := range reached {
		entries[i] = ProfileEntry{Obj: obj, Hops: hops[obj], Arrival: arrival[obj]}
	}
	return entries, len(reached)
}

// relaxPair propagates one directed transfer from carrier to other,
// reporting whether it improved other's hop count.
func relaxPair(hops []int32, arrival []trajectory.Tick, reached *[]trajectory.ObjectID,
	budget int32, t trajectory.Tick, from, to trajectory.ObjectID) bool {

	hf := hops[from]
	if hf < 0 || hf >= budget {
		return false
	}
	if ht := hops[to]; ht >= 0 && ht <= hf+1 {
		return false
	}
	if hops[to] < 0 {
		arrival[to] = t
		*reached = append(*reached, to)
	}
	hops[to] = hf + 1
	return true
}
