package reachgraph

import "testing"

// TestDN1OnlyIndex pins the empty-Resolutions semantics: no long edges,
// still correct.
func TestDN1OnlyIndex(t *testing.T) {
	f := newFixture(t, 30, 200, 71)
	ix, err := Build(f.g, Params{Resolutions: []int{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range f.workload(60, 10, 150, 73) {
		want := f.oracle.Reachable(q)
		got, err := ix.Reach(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: got %v, want %v", q, got, want)
		}
	}
}
