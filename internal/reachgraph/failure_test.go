package reachgraph

import (
	"errors"
	"testing"

	"streach/internal/pagefile"
	"streach/internal/trajectory"
)

// TestCorruptedPartitionSurfacesError damages partition pages and checks
// queries report ErrCorruptBlob rather than silently mis-answering.
func TestCorruptedPartitionSurfacesError(t *testing.T) {
	f := newFixture(t, 40, 250, 61)
	ix, err := Build(f.g, Params{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	for p := int64(0); p < ix.Store().NumPages(); p += 5 {
		if err := ix.Store().CorruptPage(p, 7); err != nil {
			t.Fatal(err)
		}
	}
	var failures int
	for _, q := range f.workload(40, 20, 200, 63) {
		_, err := ix.Reach(q)
		if err != nil {
			if !errors.Is(err, pagefile.ErrCorruptBlob) {
				t.Fatalf("%v: unexpected error type: %v", q, err)
			}
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("no query hit a corrupted page")
	}
	t.Logf("%d/40 queries surfaced corruption", failures)
}

// TestTruncatedDirectoryFails damages an object-directory blob and checks
// the entry lookup fails loudly.
func TestTruncatedDirectoryFails(t *testing.T) {
	f := newFixture(t, 20, 100, 67)
	ix, err := Build(f.g, Params{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Damage a byte inside object 0's directory blob (blobs are packed
	// sub-page, so the byte offset must come from the ref, not from page
	// arithmetic).
	ref := ix.dirRefs[0]
	if err := ix.Store().CorruptPage(ref.Page, int(ref.Off)+3); err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	for o := 0; o < 20 && !sawErr; o++ {
		if _, _, err := ix.findVertex(trajectory.ObjectID(o), 50, nil); err != nil {
			if !errors.Is(err, pagefile.ErrCorruptBlob) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("no directory lookup surfaced the corruption")
	}
}
