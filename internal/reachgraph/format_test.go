package reachgraph

import (
	"context"
	"testing"

	"streach/internal/pagefile"
	"streach/internal/trajectory"
)

// TestPageFormatsAgree builds the index in both on-page formats and checks
// that every strategy answers identically (and matches the oracle) on both,
// for point and multi-source set queries alike — the layer-level half of
// the cross-backend dual-format conformance.
func TestPageFormatsAgree(t *testing.T) {
	f := newFixture(t, 40, 300, 91)
	fixed, err := Build(f.g, Params{Format: pagefile.FormatFixed})
	if err != nil {
		t.Fatal(err)
	}
	varint, err := Build(f.g, Params{Format: pagefile.FormatVarint})
	if err != nil {
		t.Fatal(err)
	}
	if got := fixed.Format(); got != pagefile.FormatFixed {
		t.Fatalf("fixed index reports format %v", got)
	}
	if got := varint.Format(); got != pagefile.FormatVarint {
		t.Fatalf("varint index reports format %v", got)
	}

	work := f.workload(80, 10, 200, 17)
	for _, q := range work {
		want := f.oracle.Reachable(q)
		for _, s := range []Strategy{BMBFS, BBFS, EBFS, EDFS} {
			gotFixed, err := fixed.ReachStrategy(q, s)
			if err != nil {
				t.Fatalf("fixed %v %v: %v", s, q, err)
			}
			gotVarint, err := varint.ReachStrategy(q, s)
			if err != nil {
				t.Fatalf("varint %v %v: %v", s, q, err)
			}
			if gotFixed != want || gotVarint != want {
				t.Fatalf("%v %v: fixed=%v varint=%v oracle=%v", s, q, gotFixed, gotVarint, want)
			}
		}
	}

	ctx := context.Background()
	for _, q := range work[:20] {
		seeds := []trajectory.ObjectID{q.Src, q.Dst}
		a, _, err := fixed.ReachableSetFromCounted(ctx, seeds, q.Interval, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := varint.ReachableSetFromCounted(ctx, seeds, q.Interval, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("set sizes differ: fixed %d, varint %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("sets differ at %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

// TestVarintFormatShrinksIndex pins the compression claim: the varint-delta
// layout must occupy meaningfully fewer pages than the fixed-width one.
func TestVarintFormatShrinksIndex(t *testing.T) {
	f := newFixture(t, 60, 500, 33)
	fixed, err := Build(f.g, Params{Format: pagefile.FormatFixed})
	if err != nil {
		t.Fatal(err)
	}
	varint, err := Build(f.g, Params{Format: pagefile.FormatVarint})
	if err != nil {
		t.Fatal(err)
	}
	fp, vp := fixed.Store().NumPages(), varint.Store().NumPages()
	if vp*4 > fp*3 { // require ≥ 25% fewer pages
		t.Fatalf("varint layout saved too little: %d pages vs %d fixed", vp, fp)
	}
	t.Logf("pages: fixed %d, varint %d (%.0f%%)", fp, vp, 100*float64(vp)/float64(fp))
}
