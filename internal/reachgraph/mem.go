// Memory-resident ReachGraph evaluation (§6.4, Table 5a).
//
// The same traversal strategies run directly on the in-memory dn.Graph,
// with no page store and no I/O accounting. This is the configuration the
// paper uses to compare ReachGraph against GRAIL on memory-resident contact
// datasets, and it also provides the CPU-time measurements of Figure 15.
package reachgraph

import (
	"fmt"

	"streach/internal/contact"
	"streach/internal/dn"
	"streach/internal/queries"
	"streach/internal/trajectory"
)

// Mem is a memory-resident ReachGraph over a reduced graph. Record views
// are materialized eagerly at construction, so queries never mutate shared
// state and the engine is safe for fully parallel evaluation.
type Mem struct {
	g           *dn.Graph
	resolutions []int
	recs        []vertexRec // record views, indexed by NodeID
}

// NewMem wraps g for in-memory query evaluation. g must carry bidirectional
// long edges when BM-BFS will be used; NewMem computes them at the given
// resolutions if absent (pass nil resolutions for a DN1-only graph serving
// B-BFS/E-BFS/E-DFS).
func NewMem(g *dn.Graph, resolutions []int) (*Mem, error) {
	if resolutions != nil && (!sameResolutions(g.Resolutions, resolutions) || !g.HasReverseLongs()) {
		if err := g.AugmentBidirectional(resolutions); err != nil {
			return nil, err
		}
	}
	m := &Mem{
		g:           g,
		resolutions: resolutions,
		recs:        make([]vertexRec, len(g.Nodes)),
	}
	for id := range g.Nodes {
		m.materialize(dn.NodeID(id))
	}
	return m, nil
}

// materialize builds the record view of node id at construction time.
func (m *Mem) materialize(id dn.NodeID) {
	nd := &m.g.Nodes[id]
	rec := vertexRec{
		id:      id,
		start:   nd.Start,
		end:     nd.End,
		members: nd.Members,
		out:     plainEdges(nd.Out),
		in:      plainEdges(nd.In),
	}
	for _, L := range m.resolutions {
		if ts := m.g.LongOut(id, L); len(ts) > 0 {
			if rec.longOut == nil {
				rec.longOut = make(map[int][]edge, 2)
			}
			rec.longOut[L] = plainEdges(ts)
		}
		if ss := m.g.LongIn(id, L); len(ss) > 0 {
			if rec.longIn == nil {
				rec.longIn = make(map[int][]edge, 2)
			}
			rec.longIn[L] = plainEdges(ss)
		}
	}
	m.recs[id] = rec
}

// vertex returns the record view of node id. Partition hints are
// meaningless in memory and ignored.
func (m *Mem) vertex(id dn.NodeID, _ int32) (*vertexRec, error) {
	if id < 0 || int(id) >= len(m.recs) {
		return nil, fmt.Errorf("reachgraph: no vertex %d", id)
	}
	return &m.recs[id], nil
}

func plainEdges(ids []dn.NodeID) []edge {
	if len(ids) == 0 {
		return nil
	}
	out := make([]edge, len(ids))
	for i, v := range ids {
		out[i] = edge{node: v, part: -1}
	}
	return out
}

// Reach answers q with BM-BFS.
func (m *Mem) Reach(q queries.Query) (bool, error) { return m.ReachStrategy(q, BMBFS) }

// ReachStrategy answers q with the chosen strategy.
func (m *Mem) ReachStrategy(q queries.Query, s Strategy) (bool, error) {
	ok, _, err := m.ReachStrategyCounted(q, s)
	return ok, err
}

// ReachStrategyCounted is ReachStrategy plus the number of vertex visits.
func (m *Mem) ReachStrategyCounted(q queries.Query, s Strategy) (bool, int, error) {
	if int(q.Src) < 0 || int(q.Src) >= m.g.NumObjects ||
		int(q.Dst) < 0 || int(q.Dst) >= m.g.NumObjects {
		return false, 0, fmt.Errorf("reachgraph: query objects outside [0, %d)", m.g.NumObjects)
	}
	iv := q.Interval.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(m.g.NumTicks - 1)})
	if iv.Len() == 0 {
		return false, 0, nil
	}
	if q.Src == q.Dst {
		return true, 0, nil
	}
	v1 := m.g.NodeOf(q.Src, iv.Lo)
	v2 := m.g.NodeOf(q.Dst, iv.Hi)
	res := m.resolutions
	if s == BBFS || s == EBFS || s == EDFS {
		res = nil
	}
	var visits int
	ok, err := traverse(countingAccess{m, &visits}, s, entry{v1, -1}, entry{v2, -1}, iv, res, m.g.NumTicks)
	return ok, visits, err
}
