// Memory-resident ReachGraph evaluation (§6.4, Table 5a).
//
// The same traversal strategies run directly on the in-memory dn.Graph,
// with no page store and no I/O accounting. This is the configuration the
// paper uses to compare ReachGraph against GRAIL on memory-resident contact
// datasets, and it also provides the CPU-time measurements of Figure 15.
//
// Record views are materialized eagerly and every piece of traversal state
// comes from the pooled scratch, so steady-state point queries perform
// zero heap allocations (asserted by TestHotpathSteadyStateAllocs at the
// module root).
package reachgraph

import (
	"context"
	"fmt"

	"streach/internal/contact"
	"streach/internal/dn"
	"streach/internal/queries"
	"streach/internal/trajectory"
	"streach/internal/visit"
)

// Mem is a memory-resident ReachGraph over a reduced graph. Record views
// are materialized eagerly at construction, so queries never mutate shared
// state and the engine is safe for fully parallel evaluation.
type Mem struct {
	g           *dn.Graph
	resolutions []int
	recs        []vertexRec // record views, indexed by NodeID

	pool *visit.Pool[scratch]
}

// NewMem wraps g for in-memory query evaluation. g must carry bidirectional
// long edges when BM-BFS will be used; NewMem computes them at the given
// resolutions if absent (pass nil resolutions for a DN1-only graph serving
// B-BFS/E-BFS/E-DFS).
func NewMem(g *dn.Graph, resolutions []int) (*Mem, error) {
	if resolutions != nil && (!sameResolutions(g.Resolutions, resolutions) || !g.HasReverseLongs()) {
		if err := g.AugmentBidirectional(resolutions); err != nil {
			return nil, err
		}
	}
	m := &Mem{
		g:           g,
		resolutions: resolutions,
		recs:        make([]vertexRec, len(g.Nodes)),
		pool:        newScratchPool(),
	}
	for id := range g.Nodes {
		m.materialize(dn.NodeID(id))
	}
	return m, nil
}

// materialize builds the record view of node id at construction time.
func (m *Mem) materialize(id dn.NodeID) {
	nd := &m.g.Nodes[id]
	rec := vertexRec{
		id:      id,
		start:   nd.Start,
		end:     nd.End,
		members: nd.Members,
		out:     plainEdges(nd.Out),
		in:      plainEdges(nd.In),
	}
	for _, L := range m.resolutions {
		if ts := m.g.LongOut(id, L); len(ts) > 0 {
			rec.longOut = append(rec.longOut, levelEdges{level: L, edges: plainEdges(ts)})
		}
		if ss := m.g.LongIn(id, L); len(ss) > 0 {
			rec.longIn = append(rec.longIn, levelEdges{level: L, edges: plainEdges(ss)})
		}
	}
	m.recs[id] = rec
}

// vertex returns the record view of node id. Partition hints are
// meaningless in memory and ignored.
func (m *Mem) vertex(id dn.NodeID, _ int32) (*vertexRec, error) {
	if id < 0 || int(id) >= len(m.recs) {
		return nil, fmt.Errorf("reachgraph: no vertex %d", id)
	}
	return &m.recs[id], nil
}

func plainEdges(ids []dn.NodeID) []edge {
	if len(ids) == 0 {
		return nil
	}
	out := make([]edge, len(ids))
	for i, v := range ids {
		out[i] = edge{node: v, part: -1}
	}
	return out
}

// Reach answers q with BM-BFS.
func (m *Mem) Reach(q queries.Query) (bool, error) { return m.ReachStrategy(q, BMBFS) }

// ReachStrategy answers q with the chosen strategy.
func (m *Mem) ReachStrategy(q queries.Query, s Strategy) (bool, error) {
	ok, _, err := m.ReachStrategyCounted(context.Background(), q, s)
	return ok, err
}

// clampInterval intersects iv with the graph's time domain.
func (m *Mem) clampInterval(iv contact.Interval) contact.Interval {
	return iv.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(m.g.NumTicks - 1)})
}

// ReachStrategyCounted is ReachStrategy plus the number of vertex visits.
// The context is observed inside the expansion loops.
func (m *Mem) ReachStrategyCounted(ctx context.Context, q queries.Query, s Strategy) (bool, int, error) {
	if int(q.Src) < 0 || int(q.Src) >= m.g.NumObjects ||
		int(q.Dst) < 0 || int(q.Dst) >= m.g.NumObjects {
		return false, 0, fmt.Errorf("reachgraph: query objects outside [0, %d)", m.g.NumObjects)
	}
	if q.Src == q.Dst && m.clampInterval(q.Interval).Len() > 0 {
		return true, 0, nil
	}
	return m.ReachFromCounted(ctx, []trajectory.ObjectID{q.Src}, q.Dst, q.Interval, s)
}

// ReachFromCounted is the multi-source point query over the in-memory
// graph; see Index.ReachFromCounted.
func (m *Mem) ReachFromCounted(ctx context.Context, seeds []trajectory.ObjectID, dst trajectory.ObjectID, iv contact.Interval, s Strategy) (bool, int, error) {
	if int(dst) < 0 || int(dst) >= m.g.NumObjects {
		return false, 0, fmt.Errorf("reachgraph: destination %d outside [0, %d)", dst, m.g.NumObjects)
	}
	iv = m.clampInterval(iv)
	if iv.Len() == 0 {
		return false, 0, nil
	}
	for _, o := range seeds {
		if o == dst {
			return true, 0, nil
		}
	}
	sc := m.pool.Get()
	defer m.pool.Put(sc)
	sc.reset(len(m.g.Nodes), m.g.NumObjects)
	starts, err := m.seedEntries(sc, seeds, iv.Lo)
	if err != nil {
		return false, 0, err
	}
	v2 := m.g.NodeOf(dst, iv.Hi)
	res := m.resolutions
	if s == BBFS || s == EBFS || s == EDFS {
		res = nil
	}
	ok, err := traverse(ctx, m, sc, s, starts, entry{v2, -1}, iv, res, m.g.NumTicks)
	return ok, sc.visits, err
}

// ReachableSetFromCounted is the native multi-source set primitive over the
// in-memory graph; see Index.ReachableSetFromCounted.
func (m *Mem) ReachableSetFromCounted(ctx context.Context, seeds []trajectory.ObjectID, iv contact.Interval) ([]trajectory.ObjectID, int, error) {
	return m.AppendReachableSetFromCounted(ctx, nil, seeds, iv)
}

// AppendReachableSetFromCounted is ReachableSetFromCounted appending onto
// dst; see Index.AppendReachableSetFromCounted.
func (m *Mem) AppendReachableSetFromCounted(ctx context.Context, dst, seeds []trajectory.ObjectID, iv contact.Interval) ([]trajectory.ObjectID, int, error) {
	iv = m.clampInterval(iv)
	if iv.Len() == 0 {
		return dst, 0, nil
	}
	sc := m.pool.Get()
	defer m.pool.Put(sc)
	sc.reset(len(m.g.Nodes), m.g.NumObjects)
	starts, err := m.seedEntries(sc, seeds, iv.Lo)
	if err != nil {
		return dst, 0, err
	}
	if err := collectForward(ctx, m, sc, starts, iv); err != nil {
		return dst, sc.visits, err
	}
	return append(dst, trajectory.SortDedupObjects(sc.objList)...), sc.visits, nil
}

// AppendArrivalProfileFrom appends to dst the earliest-arrival profile of
// the seed frontier over iv; see Index.AppendArrivalProfileFrom.
func (m *Mem) AppendArrivalProfileFrom(ctx context.Context, dst []queries.ProfileEntry, seeds []trajectory.ObjectID, iv contact.Interval) ([]queries.ProfileEntry, int, error) {
	iv = m.clampInterval(iv)
	if iv.Len() == 0 {
		return dst, 0, nil
	}
	sc := m.pool.Get()
	defer m.pool.Put(sc)
	sc.reset(len(m.g.Nodes), m.g.NumObjects)
	starts, err := m.seedEntries(sc, seeds, iv.Lo)
	if err != nil {
		return dst, 0, err
	}
	if err := arrivalCollect(ctx, m, sc, starts, iv); err != nil {
		return dst, sc.visits, err
	}
	return appendProfileEntries(dst, sc), sc.visits, nil
}

// AppendArrivalProfileSeeds is the per-seed-tick arrival profile over the
// in-memory graph; see Index.AppendArrivalProfileSeeds.
func (m *Mem) AppendArrivalProfileSeeds(ctx context.Context, dst []queries.ProfileEntry, seeds []queries.SeedState, iv contact.Interval) ([]queries.ProfileEntry, int, error) {
	iv = m.clampInterval(iv)
	if iv.Len() == 0 {
		return dst, 0, nil
	}
	sc := m.pool.Get()
	defer m.pool.Put(sc)
	sc.reset(len(m.g.Nodes), m.g.NumObjects)
	for _, s := range seeds {
		if int(s.Obj) < 0 || int(s.Obj) >= m.g.NumObjects {
			return dst, 0, fmt.Errorf("reachgraph: seed %d outside [0, %d)", s.Obj, m.g.NumObjects)
		}
		at := s.Start
		if at < iv.Lo {
			at = iv.Lo
		}
		if at > iv.Hi {
			continue
		}
		if v := m.g.NodeOf(s.Obj, at); v != dn.Invalid {
			sc.tickStarts = append(sc.tickStarts, tickItem{entry{v, -1}, at})
		}
	}
	if err := arrivalCollectTicked(ctx, m, sc, sc.tickStarts, iv); err != nil {
		return dst, sc.visits, err
	}
	return appendProfileEntries(dst, sc), sc.visits, nil
}

// AppendReverseSetFromCounted appends onto dst the deliverer set of the seed
// frontier over iv; see Index.AppendReverseSetFromCounted.
func (m *Mem) AppendReverseSetFromCounted(ctx context.Context, dst, seeds []trajectory.ObjectID, iv contact.Interval) ([]trajectory.ObjectID, int, error) {
	iv = m.clampInterval(iv)
	if iv.Len() == 0 {
		return dst, 0, nil
	}
	sc := m.pool.Get()
	defer m.pool.Put(sc)
	sc.reset(len(m.g.Nodes), m.g.NumObjects)
	starts, err := m.seedEntries(sc, seeds, iv.Hi)
	if err != nil {
		return dst, 0, err
	}
	if err := collectBackward(ctx, m, sc, starts, iv); err != nil {
		return dst, sc.visits, err
	}
	return append(dst, trajectory.SortDedupObjects(sc.objList)...), sc.visits, nil
}

// AppendReverseProfileFrom appends to dst the latest-departure profile of
// the seed frontier over iv; see Index.AppendReverseProfileFrom.
func (m *Mem) AppendReverseProfileFrom(ctx context.Context, dst []queries.ProfileEntry, seeds []trajectory.ObjectID, iv contact.Interval) ([]queries.ProfileEntry, int, error) {
	iv = m.clampInterval(iv)
	if iv.Len() == 0 {
		return dst, 0, nil
	}
	sc := m.pool.Get()
	defer m.pool.Put(sc)
	sc.reset(len(m.g.Nodes), m.g.NumObjects)
	starts, err := m.seedEntries(sc, seeds, iv.Hi)
	if err != nil {
		return dst, 0, err
	}
	if err := departureCollect(ctx, m, sc, starts, iv); err != nil {
		return dst, sc.visits, err
	}
	return appendProfileEntries(dst, sc), sc.visits, nil
}

// seedEntries maps the seed objects to their (deduplicated) vertices at
// tick t, appending them to the scratch start buffer.
func (m *Mem) seedEntries(sc *scratch, seeds []trajectory.ObjectID, t trajectory.Tick) ([]entry, error) {
	for _, o := range seeds {
		if int(o) < 0 || int(o) >= m.g.NumObjects {
			return nil, fmt.Errorf("reachgraph: seed %d outside [0, %d)", o, m.g.NumObjects)
		}
		v := m.g.NodeOf(o, t)
		if v == dn.Invalid || !sc.seedNodes.Visit(int(v)) {
			continue
		}
		sc.starts = append(sc.starts, entry{v, -1})
	}
	return sc.starts, nil
}
