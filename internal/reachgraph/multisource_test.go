package reachgraph

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"streach/internal/contact"
	"streach/internal/trajectory"
)

// TestMultiSourceMatchesOracle drives random seed frontiers through the
// multi-source entry points of both the disk and memory engines and checks
// them against the oracle's multi-source propagation — the contract the
// cross-segment planner depends on.
func TestMultiSourceMatchesOracle(t *testing.T) {
	f := newFixture(t, 45, 300, 33)
	ix, err := Build(f.g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := NewMem(f.g, []int{2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	var positives int
	for trial := 0; trial < 60; trial++ {
		seeds := make([]trajectory.ObjectID, 1+rng.Intn(6))
		for i := range seeds {
			seeds[i] = trajectory.ObjectID(rng.Intn(f.d.NumObjects()))
		}
		dst := trajectory.ObjectID(rng.Intn(f.d.NumObjects()))
		lo := trajectory.Tick(rng.Intn(f.d.NumTicks() - 60))
		iv := contact.Interval{Lo: lo, Hi: lo + trajectory.Tick(20+rng.Intn(120))}

		wantSet := f.oracle.ReachableSetFrom(seeds, iv)
		wantReach, _ := f.oracle.ReachableFromCounted(seeds, dst, iv)
		if wantReach {
			positives++
		}

		gotSet, _, err := ix.ReachableSetFromCounted(ctx, seeds, iv, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDSlices(gotSet, wantSet) {
			t.Fatalf("disk set from %v over %v: got %v, want %v", seeds, iv, gotSet, wantSet)
		}
		memSet, _, err := mem.ReachableSetFromCounted(ctx, seeds, iv)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDSlices(memSet, wantSet) {
			t.Fatalf("mem set from %v over %v: got %v, want %v", seeds, iv, memSet, wantSet)
		}

		for _, s := range []Strategy{BMBFS, BBFS, EBFS, EDFS} {
			got, _, err := ix.ReachFromCounted(ctx, seeds, dst, iv, s, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != wantReach {
				t.Fatalf("%v disk reach from %v to %d over %v: got %v, want %v",
					s, seeds, dst, iv, got, wantReach)
			}
		}
		memGot, _, err := mem.ReachFromCounted(ctx, seeds, dst, iv, BMBFS)
		if err != nil {
			t.Fatal(err)
		}
		if memGot != wantReach {
			t.Fatalf("mem reach from %v to %d over %v: got %v, want %v",
				seeds, dst, iv, memGot, wantReach)
		}
	}
	if positives == 0 {
		t.Fatal("degenerate workload: no positive multi-source queries")
	}
}

// TestSetIsSortedAndDeduped pins the set-primitive output contract.
func TestSetIsSortedAndDeduped(t *testing.T) {
	f := newFixture(t, 30, 200, 5)
	ix, err := Build(f.g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate, unsorted seeds on purpose.
	seeds := []trajectory.ObjectID{7, 3, 7, 3, 12}
	set, _, err := ix.ReachableSetFromCounted(context.Background(), seeds, contact.Interval{Lo: 10, Hi: 90}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(set); i++ {
		if set[i] <= set[i-1] {
			t.Fatalf("set not strictly ascending at %d: %v", i, set)
		}
	}
}

// TestCancelledContextStopsTraversal feeds an already-cancelled context to
// every traversal entry point: the expansion loops observe ctx, so the
// query must return ctx.Err() instead of completing (the hung-query
// guarantee of the serving layer).
func TestCancelledContextStopsTraversal(t *testing.T) {
	f := newFixture(t, 40, 300, 11)
	ix, err := Build(f.g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := NewMem(f.g, []int{2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := f.workload(1, 200, 280, 3)[0]
	q.Dst = q.Src // force src != dst below
	for q.Dst == q.Src {
		q.Dst++
	}
	for _, s := range []Strategy{BMBFS, BBFS, EBFS, EDFS} {
		if _, _, err := ix.ReachStrategyCounted(ctx, q, s, nil); !errors.Is(err, context.Canceled) {
			t.Errorf("disk %v: got %v, want context.Canceled", s, err)
		}
		if _, _, err := mem.ReachStrategyCounted(ctx, q, s); !errors.Is(err, context.Canceled) {
			t.Errorf("mem %v: got %v, want context.Canceled", s, err)
		}
	}
	if _, _, err := ix.ReachableSetFromCounted(ctx, []trajectory.ObjectID{q.Src}, q.Interval, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("disk set: got %v, want context.Canceled", err)
	}
	if _, _, err := mem.ReachableSetFromCounted(ctx, []trajectory.ObjectID{q.Src}, q.Interval); !errors.Is(err, context.Canceled) {
		t.Errorf("mem set: got %v, want context.Canceled", err)
	}
}

func equalIDSlices(a, b []trajectory.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
