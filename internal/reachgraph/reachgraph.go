// Package reachgraph implements the ReachGraph index of §5: the reduced,
// multi-resolution contact-network hyper graph HN placed on disk in
// topologically ordered partitions, with the BM-BFS bidirectional
// multi-resolution traversal of §5.2 plus the B-BFS, E-BFS and E-DFS
// comparison strategies of §6.2.2.
//
// Disk layout (§5.1.3). The vertices of HN are partitioned by iterating in
// topological order: every vertex not yet assigned roots a partition that
// absorbs the unassigned vertices within DN1-distance PartitionDepth of it
// (long edges are ignored while partitioning, preserving temporal locality).
// Each partition is serialized onto consecutive pages, in generation order.
// Vertex records embed the partition ID of every referenced neighbour, so a
// traversal never needs a global vertex→partition map: the only in-memory
// state is the partition catalogue (one BlobRef per partition), mirroring
// the paper's in-memory hash table of Ht locations. A per-object run
// directory on disk implements FindVertex — locating the vertex of object o
// at instant t — in one blob read.
package reachgraph

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"streach/internal/contact"
	"streach/internal/dn"
	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/trajectory"
)

// Params configures index construction.
type Params struct {
	// PartitionDepth is dp: vertices within this DN1 distance of a
	// partition root join its partition. Defaults to 32, the paper's
	// empirical optimum.
	PartitionDepth int
	// Resolutions lists the long-edge levels, ascending powers of two.
	// Nil selects the paper's optimum {2, 4, 8, 16, 32}
	// (HN = DN1 ∪ DN2 ∪ … ∪ DN32); an explicit empty slice builds a
	// DN1-only index with no long edges.
	Resolutions []int
	// PoolPages sizes the store's private LRU buffer pool. Defaults to
	// 64; negative disables caching. Ignored when Pool is set.
	PoolPages int
	// Pool, when non-nil, is a buffer pool shared with other indexes over
	// the same dataset.
	Pool *pagefile.BufferPool
}

func (p *Params) applyDefaults() {
	if p.PartitionDepth <= 0 {
		p.PartitionDepth = 32
	}
	if p.Resolutions == nil {
		p.Resolutions = []int{2, 4, 8, 16, 32}
	}
	if p.PoolPages == 0 {
		p.PoolPages = 64
	}
}

// Index is a disk-resident ReachGraph.
type Index struct {
	params     Params
	store      *pagefile.Store
	numObjects int
	numTicks   int
	numNodes   int

	partRefs []pagefile.BlobRef // partition catalogue (in memory, as in §5.1.3)
	dirRefs  []pagefile.BlobRef // per-object run directory blobs
}

// Build constructs the ReachGraph of the reduced graph g. Long edges at
// params.Resolutions are computed (bidirectionally) if g does not already
// carry them.
func Build(g *dn.Graph, params Params) (*Index, error) {
	params.applyDefaults()
	if len(g.Nodes) == 0 {
		return nil, errors.New("reachgraph: empty graph")
	}
	if !sameResolutions(g.Resolutions, params.Resolutions) || !g.HasReverseLongs() {
		if err := g.AugmentBidirectional(params.Resolutions); err != nil {
			return nil, err
		}
	}
	ix := &Index{
		params:     params,
		store:      pagefile.NewStoreWith(params.Pool, params.PoolPages),
		numObjects: g.NumObjects,
		numTicks:   g.NumTicks,
		numNodes:   len(g.Nodes),
	}

	partOf, parts := partition(g, params.PartitionDepth)

	// Serialize partitions in generation order. A partition blob starts
	// with a record directory — (vertex id, record length) pairs — so a
	// traversal can decode only the vertices it actually visits.
	enc := pagefile.NewEncoder(1 << 14)
	rec := pagefile.NewEncoder(1 << 12)
	for _, members := range parts {
		enc.Reset()
		rec.Reset()
		enc.Uint32(uint32(len(members)))
		for _, id := range members {
			before := rec.Len()
			encodeVertex(rec, g, id, partOf)
			enc.Int32(int32(id))
			enc.Uint32(uint32(rec.Len() - before))
		}
		enc.Raw(rec.Bytes())
		ix.partRefs = append(ix.partRefs, ix.store.AppendBlob(enc.Bytes()))
	}

	// Per-object run directory: triples (end, node, partition), run order.
	ix.dirRefs = make([]pagefile.BlobRef, g.NumObjects)
	for o := 0; o < g.NumObjects; o++ {
		runs := g.RunsOf(trajectory.ObjectID(o))
		enc.Reset()
		enc.Uint32(uint32(len(runs)))
		for _, id := range runs {
			enc.Int32(int32(g.Nodes[id].End))
			enc.Int32(int32(id))
			enc.Int32(partOf[id])
		}
		ix.dirRefs[o] = ix.store.AppendBlob(enc.Bytes())
	}
	return ix, nil
}

func sameResolutions(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// partition assigns every vertex to a partition per §5.1.3 and returns the
// assignment plus the member lists in generation order.
func partition(g *dn.Graph, depth int) (partOf []int32, parts [][]dn.NodeID) {
	n := len(g.Nodes)
	partOf = make([]int32, n)
	for i := range partOf {
		partOf[i] = -1
	}
	type qitem struct {
		id dn.NodeID
		d  int
	}
	queue := make([]qitem, 0, 64)
	for root := 0; root < n; root++ {
		if partOf[root] >= 0 {
			continue
		}
		pid := int32(len(parts))
		members := []dn.NodeID{dn.NodeID(root)}
		partOf[root] = pid
		queue = append(queue[:0], qitem{dn.NodeID(root), 0})
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			if it.d == depth {
				continue
			}
			for _, v := range g.Nodes[it.id].Out {
				if partOf[v] >= 0 {
					continue
				}
				partOf[v] = pid
				members = append(members, v)
				queue = append(queue, qitem{v, it.d + 1})
			}
		}
		parts = append(parts, members)
	}
	return partOf, parts
}

// encodeVertex appends one vertex record. Every referenced neighbour is
// stored as a (node, partition) pair so traversal is self-routing.
func encodeVertex(enc *pagefile.Encoder, g *dn.Graph, id dn.NodeID, partOf []int32) {
	nd := &g.Nodes[id]
	enc.Int32(int32(id))
	enc.Int32(int32(nd.Start))
	enc.Int32(int32(nd.End))
	enc.Uint32(uint32(len(nd.Members)))
	for _, m := range nd.Members {
		enc.Int32(int32(m))
	}
	encodeEdges(enc, nd.Out, partOf)
	encodeEdges(enc, nd.In, partOf)
	// Forward long edges, ascending resolution; only levels with targets.
	fwdLevels := make([]int, 0, len(g.Resolutions))
	for _, L := range g.Resolutions {
		if len(g.LongOut(id, L)) > 0 {
			fwdLevels = append(fwdLevels, L)
		}
	}
	enc.Uint32(uint32(len(fwdLevels)))
	for _, L := range fwdLevels {
		enc.Uint32(uint32(L))
		encodeEdges(enc, g.LongOut(id, L), partOf)
	}
	revLevels := make([]int, 0, len(g.Resolutions))
	for _, L := range g.Resolutions {
		if len(g.LongIn(id, L)) > 0 {
			revLevels = append(revLevels, L)
		}
	}
	enc.Uint32(uint32(len(revLevels)))
	for _, L := range revLevels {
		enc.Uint32(uint32(L))
		encodeEdges(enc, g.LongIn(id, L), partOf)
	}
}

func encodeEdges(enc *pagefile.Encoder, edges []dn.NodeID, partOf []int32) {
	enc.Uint32(uint32(len(edges)))
	for _, v := range edges {
		enc.Int32(int32(v))
		enc.Int32(partOf[v])
	}
}

// edge references a neighbour vertex together with the partition holding it.
type edge struct {
	node dn.NodeID
	part int32
}

// vertexRec is a decoded vertex record.
type vertexRec struct {
	id         dn.NodeID
	start, end trajectory.Tick
	members    []trajectory.ObjectID
	out, in    []edge
	longOut    map[int][]edge // by resolution
	longIn     map[int][]edge
}

func decodeEdges(dec *pagefile.Decoder) []edge {
	n := dec.Uint32()
	if dec.Err() != nil || n == 0 {
		return nil
	}
	out := make([]edge, n)
	for i := range out {
		out[i] = edge{node: dn.NodeID(dec.Int32()), part: dec.Int32()}
	}
	return out
}

func decodeVertex(dec *pagefile.Decoder) *vertexRec {
	v := &vertexRec{
		id:    dn.NodeID(dec.Int32()),
		start: trajectory.Tick(dec.Int32()),
		end:   trajectory.Tick(dec.Int32()),
	}
	nm := dec.Uint32()
	if dec.Err() != nil {
		return v
	}
	v.members = make([]trajectory.ObjectID, nm)
	for i := range v.members {
		v.members[i] = trajectory.ObjectID(dec.Int32())
	}
	v.out = decodeEdges(dec)
	v.in = decodeEdges(dec)
	nf := dec.Uint32()
	if nf > 0 {
		v.longOut = make(map[int][]edge, nf)
		for i := uint32(0); i < nf && dec.Err() == nil; i++ {
			L := int(dec.Uint32())
			v.longOut[L] = decodeEdges(dec)
		}
	}
	nr := dec.Uint32()
	if nr > 0 {
		v.longIn = make(map[int][]edge, nr)
		for i := uint32(0); i < nr && dec.Err() == nil; i++ {
			L := int(dec.Uint32())
			v.longIn[L] = decodeEdges(dec)
		}
	}
	return v
}

// Store exposes the underlying simulated disk.
func (ix *Index) Store() *pagefile.Store { return ix.store }

// Counters returns the store's cumulative I/O totals; per-query accountants
// passed to the query methods sum to consecutive Counters differences.
func (ix *Index) Counters() pagefile.Stats { return ix.store.Counters() }

// ResetCounters zeroes the cumulative totals.
func (ix *Index) ResetCounters() { ix.store.ResetCounters() }

// NumPartitions returns the number of disk partitions.
func (ix *Index) NumPartitions() int { return len(ix.partRefs) }

// NumTicks returns |T| of the indexed graph.
func (ix *Index) NumTicks() int { return ix.numTicks }

// cursor is the per-query working set: buffered partitions (the paper's
// traversal buffer) with raw record slices, decoded lazily on first visit,
// plus the query's I/O accountant. Nothing in a cursor is shared between
// queries, so evaluation runs fully in parallel.
type cursor struct {
	ix    *Index
	acct  *pagefile.Stats
	verts map[dn.NodeID]*vertexRec // decoded records
	raw   map[dn.NodeID][]byte     // undecoded record slices
	parts map[int32]bool
}

func (ix *Index) newCursor(acct *pagefile.Stats) *cursor {
	return &cursor{
		ix:    ix,
		acct:  acct,
		verts: make(map[dn.NodeID]*vertexRec),
		raw:   make(map[dn.NodeID][]byte),
		parts: make(map[int32]bool),
	}
}

// loadPartition reads partition pid and registers its record slices; no
// vertex is decoded until visited.
func (c *cursor) loadPartition(pid int32) error {
	if c.parts[pid] {
		return nil
	}
	c.parts[pid] = true
	if pid < 0 || int(pid) >= len(c.ix.partRefs) {
		return fmt.Errorf("reachgraph: no partition %d", pid)
	}
	data, err := c.ix.store.ReadBlob(c.ix.partRefs[pid], c.acct)
	if err != nil {
		return fmt.Errorf("reachgraph: partition %d: %w", pid, err)
	}
	dec := pagefile.NewDecoder(data)
	n := int(dec.Uint32())
	ids := make([]dn.NodeID, n)
	lens := make([]uint32, n)
	total := 0
	for i := 0; i < n; i++ {
		ids[i] = dn.NodeID(dec.Int32())
		lens[i] = dec.Uint32()
		total += int(lens[i])
	}
	if err := dec.Err(); err != nil {
		return fmt.Errorf("reachgraph: partition %d: %w", pid, err)
	}
	body := data[len(data)-dec.Remaining():]
	if len(body) < total {
		return fmt.Errorf("reachgraph: partition %d truncated (%d < %d)", pid, len(body), total)
	}
	off := 0
	for i := 0; i < n; i++ {
		c.raw[ids[i]] = body[off : off+int(lens[i])]
		off += int(lens[i])
	}
	return nil
}

// vertex returns the record of node id, loading its partition and decoding
// the record on first use.
func (c *cursor) vertex(id dn.NodeID, part int32) (*vertexRec, error) {
	if v, ok := c.verts[id]; ok {
		return v, nil
	}
	if _, ok := c.raw[id]; !ok {
		if err := c.loadPartition(part); err != nil {
			return nil, err
		}
	}
	buf, ok := c.raw[id]
	if !ok {
		return nil, fmt.Errorf("reachgraph: vertex %d missing from partition %d", id, part)
	}
	dec := pagefile.NewDecoder(buf)
	v := decodeVertex(dec)
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("reachgraph: vertex %d: %w", id, err)
	}
	c.verts[id] = v
	return v, nil
}

// findVertex implements FindVertex(Ht(o), o, t): it reads o's run directory
// and returns the (node, partition) of the run covering t.
func (ix *Index) findVertex(o trajectory.ObjectID, t trajectory.Tick, acct *pagefile.Stats) (dn.NodeID, int32, error) {
	if int(o) < 0 || int(o) >= ix.numObjects {
		return dn.Invalid, -1, fmt.Errorf("reachgraph: object %d outside [0, %d)", o, ix.numObjects)
	}
	data, err := ix.store.ReadBlob(ix.dirRefs[o], acct)
	if err != nil {
		return dn.Invalid, -1, fmt.Errorf("reachgraph: directory of object %d: %w", o, err)
	}
	dec := pagefile.NewDecoder(data)
	n := int(dec.Uint32())
	type runEntry struct {
		end  trajectory.Tick
		node dn.NodeID
		part int32
	}
	runs := make([]runEntry, n)
	for i := range runs {
		runs[i] = runEntry{
			end:  trajectory.Tick(dec.Int32()),
			node: dn.NodeID(dec.Int32()),
			part: dec.Int32(),
		}
	}
	if err := dec.Err(); err != nil {
		return dn.Invalid, -1, fmt.Errorf("reachgraph: directory of object %d: %w", o, err)
	}
	i := sort.Search(n, func(i int) bool { return runs[i].end >= t })
	if i == n {
		return dn.Invalid, -1, fmt.Errorf("reachgraph: object %d has no run at tick %d", o, t)
	}
	return runs[i].node, runs[i].part, nil
}

// clampInterval intersects iv with the index's time domain.
func (ix *Index) clampInterval(iv contact.Interval) contact.Interval {
	return iv.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(ix.numTicks - 1)})
}

func (ix *Index) validateQuery(q queries.Query) error {
	if int(q.Src) < 0 || int(q.Src) >= ix.numObjects {
		return fmt.Errorf("reachgraph: source %d outside [0, %d)", q.Src, ix.numObjects)
	}
	if int(q.Dst) < 0 || int(q.Dst) >= ix.numObjects {
		return fmt.Errorf("reachgraph: destination %d outside [0, %d)", q.Dst, ix.numObjects)
	}
	return nil
}

// Reach answers q with the default BM-BFS strategy.
func (ix *Index) Reach(q queries.Query) (bool, error) {
	return ix.ReachStrategy(q, BMBFS)
}

// ReachStrategy answers q with the chosen traversal strategy, charging all
// page reads to the store's cumulative Counters through a query-scoped
// accountant.
func (ix *Index) ReachStrategy(q queries.Query, s Strategy) (bool, error) {
	var acct pagefile.Stats
	ok, _, err := ix.ReachStrategyCounted(context.Background(), q, s, &acct)
	return ok, err
}

// ReachStrategyCounted is ReachStrategy plus the number of vertex visits the
// traversal performed. Page reads are charged to acct (which may be nil) in
// addition to the cumulative counters; one accountant per query keeps
// parallel evaluation exact. The context is observed inside the expansion
// loops, so a cancelled query returns ctx.Err() promptly.
func (ix *Index) ReachStrategyCounted(ctx context.Context, q queries.Query, s Strategy, acct *pagefile.Stats) (bool, int, error) {
	if err := ix.validateQuery(q); err != nil {
		return false, 0, err
	}
	if q.Src == q.Dst && ix.clampInterval(q.Interval).Len() > 0 {
		return true, 0, nil
	}
	return ix.ReachFromCounted(ctx, []trajectory.ObjectID{q.Src}, q.Dst, q.Interval, s, acct)
}

// ReachFromCounted is the multi-source point query: can an item held by any
// of the seeds at the interval start reach dst by its end? It is the
// frontier entry point of the cross-segment planner — the reachable set of
// one time slab becomes the seed set of the next. The traversal is the
// strategy's usual one with every seed vertex injected into the forward
// frontier at iv.Lo.
func (ix *Index) ReachFromCounted(ctx context.Context, seeds []trajectory.ObjectID, dst trajectory.ObjectID, iv contact.Interval, s Strategy, acct *pagefile.Stats) (bool, int, error) {
	if int(dst) < 0 || int(dst) >= ix.numObjects {
		return false, 0, fmt.Errorf("reachgraph: destination %d outside [0, %d)", dst, ix.numObjects)
	}
	iv = ix.clampInterval(iv)
	if iv.Len() == 0 {
		return false, 0, nil
	}
	for _, o := range seeds {
		if o == dst {
			return true, 0, nil
		}
	}
	starts, err := ix.seedEntries(seeds, iv.Lo, acct)
	if err != nil {
		return false, 0, err
	}
	v2, p2, err := ix.findVertex(dst, iv.Hi, acct)
	if err != nil {
		return false, 0, err
	}
	c := ix.newCursor(acct)
	var visits int
	ok, err := traverse(ctx, countingAccess{diskAccess{c}, &visits}, s,
		starts, entry{v2, p2}, iv, ix.params.Resolutions, ix.numTicks)
	return ok, visits, err
}

// ReachableSetFromCounted returns every object reachable from any seed
// during iv (seeds included when the interval overlaps the time domain),
// sorted ascending, plus the number of vertex visits. It is the native set
// primitive: a forward DN1 sweep that collects the members of every run the
// item can enter.
func (ix *Index) ReachableSetFromCounted(ctx context.Context, seeds []trajectory.ObjectID, iv contact.Interval, acct *pagefile.Stats) ([]trajectory.ObjectID, int, error) {
	iv = ix.clampInterval(iv)
	if iv.Len() == 0 {
		return nil, 0, nil
	}
	starts, err := ix.seedEntries(seeds, iv.Lo, acct)
	if err != nil {
		return nil, 0, err
	}
	c := ix.newCursor(acct)
	var visits int
	own, err := collectForward(ctx, countingAccess{diskAccess{c}, &visits}, starts, iv)
	if err != nil {
		return nil, visits, err
	}
	return sortedObjects(own), visits, nil
}

// seedEntries locates the (deduplicated) vertices of the seed objects at
// tick t via the run directory.
func (ix *Index) seedEntries(seeds []trajectory.ObjectID, t trajectory.Tick, acct *pagefile.Stats) ([]entry, error) {
	starts := make([]entry, 0, len(seeds))
	seen := make(map[dn.NodeID]bool, len(seeds))
	for _, o := range seeds {
		v, p, err := ix.findVertex(o, t, acct)
		if err != nil {
			return nil, err
		}
		if !seen[v] {
			seen[v] = true
			starts = append(starts, entry{v, p})
		}
	}
	return starts, nil
}

// sortedObjects flattens an object set into an ascending slice.
func sortedObjects(s objSet) []trajectory.ObjectID {
	out := make([]trajectory.ObjectID, 0, len(s))
	for o := range s {
		out = append(out, o)
	}
	return trajectory.SortDedupObjects(out)
}

// diskAccess adapts a cursor to the traversal's graph-access interface.
type diskAccess struct{ c *cursor }

func (d diskAccess) vertex(id dn.NodeID, part int32) (*vertexRec, error) {
	return d.c.vertex(id, part)
}
