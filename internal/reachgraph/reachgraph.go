// Package reachgraph implements the ReachGraph index of §5: the reduced,
// multi-resolution contact-network hyper graph HN placed on disk in
// topologically ordered partitions, with the BM-BFS bidirectional
// multi-resolution traversal of §5.2 plus the B-BFS, E-BFS and E-DFS
// comparison strategies of §6.2.2.
//
// Disk layout (§5.1.3). The vertices of HN are partitioned by iterating in
// topological order: every vertex not yet assigned roots a partition that
// absorbs the unassigned vertices within DN1-distance PartitionDepth of it
// (long edges are ignored while partitioning, preserving temporal locality).
// Each partition is serialized onto consecutive pages, in generation order.
// Vertex records embed the partition ID of every referenced neighbour, so a
// traversal never needs a global vertex→partition map: the only in-memory
// state is the partition catalogue (one BlobRef per partition), mirroring
// the paper's in-memory hash table of Ht locations. A per-object run
// directory on disk implements FindVertex — locating the vertex of object o
// at instant t — in one blob read.
//
// Every blob begins with a pagefile.Format byte. The default varint-delta
// format stores ticks and counts as varints and ID postings as zig-zag
// deltas, shrinking partitions 2-4x against the fixed-width v1 layout —
// and with them the pages a traversal reads; v1 pages remain decodable.
package reachgraph

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"streach/internal/contact"
	"streach/internal/dn"
	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/trajectory"
	"streach/internal/visit"
)

// Params configures index construction.
type Params struct {
	// PartitionDepth is dp: vertices within this DN1 distance of a
	// partition root join its partition. Defaults to 32, the paper's
	// empirical optimum.
	PartitionDepth int
	// Resolutions lists the long-edge levels, ascending powers of two.
	// Nil selects the paper's optimum {2, 4, 8, 16, 32}
	// (HN = DN1 ∪ DN2 ∪ … ∪ DN32); an explicit empty slice builds a
	// DN1-only index with no long edges.
	Resolutions []int
	// PoolPages sizes the store's private LRU buffer pool. Defaults to
	// 64; negative disables caching. Ignored when Pool is set.
	PoolPages int
	// Pool, when non-nil, is a buffer pool shared with other indexes over
	// the same dataset.
	Pool *pagefile.BufferPool
	// Format selects the on-page record layout; zero means the default
	// (pagefile.FormatVarint). Both formats answer queries identically.
	Format pagefile.Format
	// RecordCacheSlots bounds the decoded-record cache: vertex records
	// parsed from visited pages are retained across queries — the index
	// is immutable once built, so a cached record never goes stale — and
	// evicted clock-wise once the bound is hit. The cache sits above the
	// buffer pool: a record hit skips both the page read and the varint
	// decode. Defaults to 4096 records; negative disables the cache.
	RecordCacheSlots int
}

func (p *Params) applyDefaults() {
	if p.PartitionDepth <= 0 {
		p.PartitionDepth = 32
	}
	if p.Resolutions == nil {
		p.Resolutions = []int{2, 4, 8, 16, 32}
	}
	if p.PoolPages == 0 {
		p.PoolPages = 64
	}
	if p.RecordCacheSlots == 0 {
		p.RecordCacheSlots = 4096
	}
	p.Format = pagefile.NormalizeFormat(p.Format)
}

// Index is a disk-resident ReachGraph.
type Index struct {
	params     Params
	store      *pagefile.Store
	numObjects int
	numTicks   int
	numNodes   int

	partRefs []pagefile.BlobRef // partition catalogue (in memory, as in §5.1.3)
	dirRefs  []pagefile.BlobRef // per-object run directory blobs

	pool   *visit.Pool[scratch] // per-query traversal scratch
	vcache *vertexCache         // decoded records shared across queries
}

// Build constructs the ReachGraph of the reduced graph g. Long edges at
// params.Resolutions are computed (bidirectionally) if g does not already
// carry them.
func Build(g *dn.Graph, params Params) (*Index, error) {
	params.applyDefaults()
	if len(g.Nodes) == 0 {
		return nil, errors.New("reachgraph: empty graph")
	}
	if !sameResolutions(g.Resolutions, params.Resolutions) || !g.HasReverseLongs() {
		if err := g.AugmentBidirectional(params.Resolutions); err != nil {
			return nil, err
		}
	}
	ix := &Index{
		params:     params,
		store:      pagefile.NewStoreWith(params.Pool, params.PoolPages),
		numObjects: g.NumObjects,
		numTicks:   g.NumTicks,
		numNodes:   len(g.Nodes),
		pool:       newScratchPool(),
		vcache:     newVertexCache(params.RecordCacheSlots),
	}

	partOf, parts := partition(g, params.PartitionDepth)

	// Serialize partitions in generation order. A partition blob starts
	// with its format byte and a record directory — (vertex id, record
	// length) pairs — so a traversal can decode only the vertices it
	// actually visits.
	enc := pagefile.NewEncoder(1 << 14)
	rec := pagefile.NewEncoder(1 << 12)
	for _, members := range parts {
		enc.Reset()
		rec.Reset()
		enc.Format(params.Format)
		prevID := int32(0)
		switch params.Format {
		case pagefile.FormatFixed:
			enc.Uint32(uint32(len(members)))
			for _, id := range members {
				before := rec.Len()
				encodeVertex(rec, g, id, partOf, params.Format)
				enc.Int32(int32(id))
				enc.Uint32(uint32(rec.Len() - before))
			}
		default:
			enc.Uvarint(uint64(len(members)))
			for _, id := range members {
				before := rec.Len()
				encodeVertex(rec, g, id, partOf, params.Format)
				enc.Varint(int64(id) - int64(prevID))
				prevID = int32(id)
				enc.Uvarint(uint64(rec.Len() - before))
			}
		}
		enc.Raw(rec.Bytes())
		ix.partRefs = append(ix.partRefs, ix.store.AppendBlob(enc.Bytes()))
	}

	// Per-object run directory: triples (end, node, partition) in run
	// order — ends ascending, so the varint format stores end gaps and
	// node/partition deltas.
	ix.dirRefs = make([]pagefile.BlobRef, g.NumObjects)
	for o := 0; o < g.NumObjects; o++ {
		runs := g.RunsOf(trajectory.ObjectID(o))
		enc.Reset()
		enc.Format(params.Format)
		switch params.Format {
		case pagefile.FormatFixed:
			enc.Uint32(uint32(len(runs)))
			for _, id := range runs {
				enc.Int32(int32(g.Nodes[id].End))
				enc.Int32(int32(id))
				enc.Int32(partOf[id])
			}
		default:
			enc.Uvarint(uint64(len(runs)))
			prevEnd, prevNode, prevPart := int64(0), int64(0), int64(0)
			for _, id := range runs {
				end := int64(g.Nodes[id].End)
				enc.Uvarint(uint64(end - prevEnd)) // ends strictly ascend
				enc.Varint(int64(id) - prevNode)
				enc.Varint(int64(partOf[id]) - prevPart)
				prevEnd, prevNode, prevPart = end, int64(id), int64(partOf[id])
			}
		}
		ix.dirRefs[o] = ix.store.AppendBlob(enc.Bytes())
	}
	return ix, nil
}

func sameResolutions(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// partition assigns every vertex to a partition per §5.1.3 and returns the
// assignment plus the member lists in generation order.
func partition(g *dn.Graph, depth int) (partOf []int32, parts [][]dn.NodeID) {
	n := len(g.Nodes)
	partOf = make([]int32, n)
	for i := range partOf {
		partOf[i] = -1
	}
	type qitem struct {
		id dn.NodeID
		d  int
	}
	queue := make([]qitem, 0, 64)
	for root := 0; root < n; root++ {
		if partOf[root] >= 0 {
			continue
		}
		pid := int32(len(parts))
		members := []dn.NodeID{dn.NodeID(root)}
		partOf[root] = pid
		queue = append(queue[:0], qitem{dn.NodeID(root), 0})
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			if it.d == depth {
				continue
			}
			for _, v := range g.Nodes[it.id].Out {
				if partOf[v] >= 0 {
					continue
				}
				partOf[v] = pid
				members = append(members, v)
				queue = append(queue, qitem{v, it.d + 1})
			}
		}
		parts = append(parts, members)
	}
	return partOf, parts
}

// encodeVertex appends one vertex record. Every referenced neighbour is
// stored as a (node, partition) pair so traversal is self-routing.
func encodeVertex(enc *pagefile.Encoder, g *dn.Graph, id dn.NodeID, partOf []int32, format pagefile.Format) {
	nd := &g.Nodes[id]
	fixed := format == pagefile.FormatFixed
	if fixed {
		enc.Int32(int32(id))
		enc.Int32(int32(nd.Start))
		enc.Int32(int32(nd.End))
		enc.Uint32(uint32(len(nd.Members)))
		for _, m := range nd.Members {
			enc.Int32(int32(m))
		}
	} else {
		enc.Varint(int64(id))
		enc.Uvarint(uint64(nd.Start))
		enc.Uvarint(uint64(nd.End - nd.Start)) // End ≥ Start
		encodeMembersDelta(enc, nd.Members)
	}
	encodeEdges(enc, nd.Out, partOf, format)
	encodeEdges(enc, nd.In, partOf, format)
	// Forward long edges, ascending resolution; only levels with targets.
	encodeLongs(enc, g, partOf, format, g.Resolutions, func(L int) []dn.NodeID { return g.LongOut(id, L) })
	encodeLongs(enc, g, partOf, format, g.Resolutions, func(L int) []dn.NodeID { return g.LongIn(id, L) })
}

// encodeMembersDelta writes a sorted member posting as zig-zag deltas.
func encodeMembersDelta(enc *pagefile.Encoder, members []trajectory.ObjectID) {
	enc.Uvarint(uint64(len(members)))
	prev := int64(0)
	for _, m := range members {
		enc.Varint(int64(m) - prev) // members sorted ascending: small gaps
		prev = int64(m)
	}
}

func encodeLongs(enc *pagefile.Encoder, g *dn.Graph, partOf []int32, format pagefile.Format, resolutions []int, edgesOf func(int) []dn.NodeID) {
	levels := 0
	for _, L := range resolutions {
		if len(edgesOf(L)) > 0 {
			levels++
		}
	}
	if format == pagefile.FormatFixed {
		enc.Uint32(uint32(levels))
	} else {
		enc.Uvarint(uint64(levels))
	}
	for _, L := range resolutions {
		es := edgesOf(L)
		if len(es) == 0 {
			continue
		}
		if format == pagefile.FormatFixed {
			enc.Uint32(uint32(L))
		} else {
			enc.Uvarint(uint64(L))
		}
		encodeEdges(enc, es, partOf, format)
	}
}

func encodeEdges(enc *pagefile.Encoder, edges []dn.NodeID, partOf []int32, format pagefile.Format) {
	if format == pagefile.FormatFixed {
		enc.Uint32(uint32(len(edges)))
		for _, v := range edges {
			enc.Int32(int32(v))
			enc.Int32(partOf[v])
		}
		return
	}
	enc.Uvarint(uint64(len(edges)))
	prevNode, prevPart := int64(0), int64(0)
	for _, v := range edges {
		enc.Varint(int64(v) - prevNode) // neighbours cluster: small deltas
		enc.Varint(int64(partOf[v]) - prevPart)
		prevNode, prevPart = int64(v), int64(partOf[v])
	}
}

// edge references a neighbour vertex together with the partition holding it.
type edge struct {
	node dn.NodeID
	part int32
}

// levelEdges is one long-edge resolution's target list. Records carry at
// most a handful of levels, so a sorted slice beats a map on both decode
// allocations and lookup time.
type levelEdges struct {
	level int
	edges []edge
}

// levelEdgesAt returns the edges at resolution L, or nil.
func levelEdgesAt(ls []levelEdges, L int) []edge {
	for i := range ls {
		if ls[i].level == L {
			return ls[i].edges
		}
	}
	return nil
}

// vertexRec is a decoded vertex record.
type vertexRec struct {
	id         dn.NodeID
	start, end trajectory.Tick
	members    []trajectory.ObjectID
	out, in    []edge
	longOut    []levelEdges // ascending resolution
	longIn     []levelEdges
}

// decodeEdges reads one edge list, validating every target against the
// graph's node-ID space: decoded IDs index the epoch-stamped visited
// arrays directly, so an out-of-range value must surface as a decode
// error (the documented corruption behavior), never as a panic.
func decodeEdges(dec *pagefile.Decoder, format pagefile.Format, numNodes int) []edge {
	if format == pagefile.FormatFixed {
		n := dec.Uint32()
		if dec.Err() != nil || n == 0 {
			return nil
		}
		if uint64(n) > uint64(dec.Remaining()/8) {
			dec.Failf("reachgraph: implausible edge count %d with %d bytes left", n, dec.Remaining())
			return nil
		}
		out := make([]edge, 0, n)
		for i := uint32(0); i < n && dec.Err() == nil; i++ {
			e := edge{node: dn.NodeID(dec.Int32()), part: dec.Int32()}
			if e.node < 0 || int(e.node) >= numNodes {
				dec.Failf("reachgraph: edge target %d outside [0, %d)", e.node, numNodes)
				return nil
			}
			out = append(out, e)
		}
		return out
	}
	n := int(dec.Uvarint())
	if dec.Err() != nil || n == 0 {
		return nil
	}
	if n < 0 || n > dec.Remaining() {
		dec.Failf("reachgraph: implausible edge count %d with %d bytes left", n, dec.Remaining())
		return nil
	}
	out := make([]edge, 0, n)
	prevNode, prevPart := int64(0), int64(0)
	for i := 0; i < n && dec.Err() == nil; i++ {
		prevNode += dec.Varint()
		prevPart += dec.Varint()
		if prevNode < 0 || prevNode >= int64(numNodes) {
			dec.Failf("reachgraph: edge target %d outside [0, %d)", prevNode, numNodes)
			return nil
		}
		out = append(out, edge{node: dn.NodeID(prevNode), part: int32(prevPart)})
	}
	return out
}

func decodeLongs(dec *pagefile.Decoder, format pagefile.Format, numNodes int) []levelEdges {
	var n uint64
	if format == pagefile.FormatFixed {
		n = uint64(dec.Uint32())
	} else {
		n = dec.Uvarint()
	}
	if n == 0 || dec.Err() != nil {
		return nil
	}
	if n > uint64(dec.Remaining()) {
		dec.Failf("reachgraph: implausible level count %d with %d bytes left", n, dec.Remaining())
		return nil
	}
	ls := make([]levelEdges, 0, n)
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		var L int
		if format == pagefile.FormatFixed {
			L = int(dec.Uint32())
		} else {
			L = int(dec.Uvarint())
		}
		ls = append(ls, levelEdges{level: L, edges: decodeEdges(dec, format, numNodes)})
	}
	return ls
}

func decodeVertex(dec *pagefile.Decoder, format pagefile.Format, numNodes, numObjects int) *vertexRec {
	v := &vertexRec{}
	if format == pagefile.FormatFixed {
		v.id = dn.NodeID(dec.Int32())
		v.start = trajectory.Tick(dec.Int32())
		v.end = trajectory.Tick(dec.Int32())
		nm := dec.Uint32()
		if dec.Err() != nil {
			return v
		}
		if uint64(nm) > uint64(dec.Remaining()/4) {
			dec.Failf("reachgraph: implausible member count %d with %d bytes left", nm, dec.Remaining())
			return v
		}
		v.members = make([]trajectory.ObjectID, 0, nm)
		for i := uint32(0); i < nm && dec.Err() == nil; i++ {
			m := trajectory.ObjectID(dec.Int32())
			if m < 0 || int(m) >= numObjects {
				dec.Failf("reachgraph: member %d outside [0, %d)", m, numObjects)
				return v
			}
			v.members = append(v.members, m)
		}
	} else {
		v.id = dn.NodeID(dec.Varint())
		v.start = trajectory.Tick(dec.Uvarint())
		v.end = v.start + trajectory.Tick(dec.Uvarint())
		nm := int(dec.Uvarint())
		if dec.Err() != nil {
			return v
		}
		if nm < 0 || nm > dec.Remaining() {
			dec.Failf("reachgraph: implausible member count %d with %d bytes left", nm, dec.Remaining())
			return v
		}
		v.members = make([]trajectory.ObjectID, 0, nm)
		prev := int64(0)
		for i := 0; i < nm && dec.Err() == nil; i++ {
			prev += dec.Varint()
			if prev < 0 || prev >= int64(numObjects) {
				dec.Failf("reachgraph: member %d outside [0, %d)", prev, numObjects)
				return v
			}
			v.members = append(v.members, trajectory.ObjectID(prev))
		}
	}
	v.out = decodeEdges(dec, format, numNodes)
	v.in = decodeEdges(dec, format, numNodes)
	v.longOut = decodeLongs(dec, format, numNodes)
	v.longIn = decodeLongs(dec, format, numNodes)
	return v
}

// Store exposes the underlying simulated disk.
func (ix *Index) Store() *pagefile.Store { return ix.store }

// DropCache evicts the index's pages from the buffer pool and empties the
// decoded-record cache — the cold-start reset between measurement runs.
func (ix *Index) DropCache() {
	ix.store.DropCache()
	ix.vcache.drop()
}

// Format returns the on-page record layout the index was built with.
func (ix *Index) Format() pagefile.Format { return ix.params.Format }

// Counters returns the store's cumulative I/O totals; per-query accountants
// passed to the query methods sum to consecutive Counters differences.
func (ix *Index) Counters() pagefile.Stats { return ix.store.Counters() }

// ResetCounters zeroes the cumulative totals.
func (ix *Index) ResetCounters() { ix.store.ResetCounters() }

// NumPartitions returns the number of disk partitions.
func (ix *Index) NumPartitions() int { return len(ix.partRefs) }

// NumTicks returns |T| of the indexed graph.
func (ix *Index) NumTicks() int { return ix.numTicks }

// vertexCache retains decoded vertex records across queries. The index
// never changes after Build, so records are immutable and shared freely
// between concurrent traversals; the only mutable state is the admission
// bookkeeping, guarded by one mutex (held for map-sized critical sections
// only — decoding happens outside the lock). Eviction is clock/second
// chance: a hit sets the slot's reference bit, the clock hand clears bits
// until it finds a cold slot to reuse.
type vertexCache struct {
	mu   sync.Mutex
	cap  int
	m    map[dn.NodeID]int32
	keys []dn.NodeID
	recs []*vertexRec
	ref  []bool
	hand int
}

func newVertexCache(slots int) *vertexCache {
	if slots <= 0 {
		return nil
	}
	return &vertexCache{cap: slots, m: make(map[dn.NodeID]int32, slots)}
}

func (vc *vertexCache) get(id dn.NodeID) (*vertexRec, bool) {
	if vc == nil {
		return nil, false
	}
	vc.mu.Lock()
	defer vc.mu.Unlock()
	i, ok := vc.m[id]
	if !ok {
		return nil, false
	}
	vc.ref[i] = true
	return vc.recs[i], true
}

func (vc *vertexCache) put(id dn.NodeID, v *vertexRec) {
	if vc == nil {
		return
	}
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if _, ok := vc.m[id]; ok {
		return
	}
	if len(vc.recs) < vc.cap {
		vc.m[id] = int32(len(vc.recs))
		vc.keys = append(vc.keys, id)
		vc.recs = append(vc.recs, v)
		vc.ref = append(vc.ref, true)
		return
	}
	for vc.ref[vc.hand] {
		vc.ref[vc.hand] = false
		vc.hand = (vc.hand + 1) % len(vc.recs)
	}
	i := vc.hand
	delete(vc.m, vc.keys[i])
	vc.m[id] = int32(i)
	vc.keys[i], vc.recs[i], vc.ref[i] = id, v, true
	vc.hand = (i + 1) % len(vc.recs)
}

// drop empties the cache (cold-start measurements).
func (vc *vertexCache) drop() {
	if vc == nil {
		return
	}
	vc.mu.Lock()
	defer vc.mu.Unlock()
	clear(vc.m)
	vc.keys, vc.recs, vc.ref, vc.hand = vc.keys[:0], vc.recs[:0], vc.ref[:0], 0
}

// cursor is the per-query working set: buffered partitions (the paper's
// traversal buffer) with raw record slices, decoded lazily on first visit,
// plus the query's I/O accountant. The tables are epoch-stamped scratch
// recycled with the rest of the traversal state, so a steady-state query
// re-uses the previous query's arrays. Nothing in a cursor is shared
// between in-flight queries, so evaluation runs fully in parallel.
type cursor struct {
	ix   *Index
	acct *pagefile.Stats

	verts   visit.Table[*vertexRec] // decoded records, by node
	raw     visit.Table[[]byte]     // undecoded record slices, by node
	parts   visit.Set               // partitions already buffered
	dirLens []uint32                // partition directory scratch
	dirIDs  []dn.NodeID
}

func (c *cursor) reset(numNodes, numParts int) {
	c.ix, c.acct = nil, nil
	c.verts.Reset(numNodes)
	c.raw.Reset(numNodes)
	c.parts.Reset(numParts)
}

// loadPartition reads partition pid and registers its record slices; no
// vertex is decoded until visited.
func (c *cursor) loadPartition(pid int32) error {
	if pid < 0 || int(pid) >= len(c.ix.partRefs) {
		return fmt.Errorf("reachgraph: no partition %d", pid)
	}
	if !c.parts.Visit(int(pid)) {
		return nil
	}
	data, err := c.ix.store.ReadBlob(c.ix.partRefs[pid], c.acct)
	if err != nil {
		return fmt.Errorf("reachgraph: partition %d: %w", pid, err)
	}
	dec := pagefile.NewDecoder(data)
	format := dec.Format()
	var n int
	if format == pagefile.FormatFixed {
		n = int(dec.Uint32())
	} else {
		n = int(dec.Uvarint())
	}
	if err := dec.Err(); err != nil {
		return fmt.Errorf("reachgraph: partition %d: %w", pid, err)
	}
	if n < 0 || n > dec.Remaining() {
		return fmt.Errorf("reachgraph: partition %d: implausible record count %d", pid, n)
	}
	if cap(c.dirIDs) < n {
		c.dirIDs = make([]dn.NodeID, n)
		c.dirLens = make([]uint32, n)
	}
	ids, lens := c.dirIDs[:n], c.dirLens[:n]
	total := 0
	prevID := int64(0)
	for i := 0; i < n; i++ {
		if format == pagefile.FormatFixed {
			ids[i] = dn.NodeID(dec.Int32())
			lens[i] = dec.Uint32()
		} else {
			prevID += dec.Varint()
			ids[i] = dn.NodeID(prevID)
			lens[i] = uint32(dec.Uvarint())
		}
		total += int(lens[i])
	}
	if err := dec.Err(); err != nil {
		return fmt.Errorf("reachgraph: partition %d: %w", pid, err)
	}
	body := data[len(data)-dec.Remaining():]
	if len(body) < total {
		return fmt.Errorf("reachgraph: partition %d truncated (%d < %d)", pid, len(body), total)
	}
	off := 0
	for i := 0; i < n; i++ {
		if ids[i] < 0 || int(ids[i]) >= c.ix.numNodes {
			return fmt.Errorf("reachgraph: partition %d names vertex %d outside [0, %d)", pid, ids[i], c.ix.numNodes)
		}
		c.raw.Set(int(ids[i]), body[off:off+int(lens[i])])
		off += int(lens[i])
	}
	return nil
}

// vertex returns the record of node id, loading its partition and decoding
// the record on first use.
func (c *cursor) vertex(id dn.NodeID, part int32) (*vertexRec, error) {
	if id < 0 || int(id) >= c.ix.numNodes {
		return nil, fmt.Errorf("reachgraph: no vertex %d", id)
	}
	if v, ok := c.verts.Get(int(id)); ok {
		return v, nil
	}
	if v, ok := c.ix.vcache.get(id); ok {
		c.verts.Set(int(id), v)
		return v, nil
	}
	if _, ok := c.raw.Get(int(id)); !ok {
		if err := c.loadPartition(part); err != nil {
			return nil, err
		}
	}
	buf, ok := c.raw.Get(int(id))
	if !ok {
		return nil, fmt.Errorf("reachgraph: vertex %d missing from partition %d", id, part)
	}
	dec := pagefile.NewDecoder(buf)
	v := decodeVertex(dec, c.ix.params.Format, c.ix.numNodes, c.ix.numObjects)
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("reachgraph: vertex %d: %w", id, err)
	}
	c.ix.vcache.put(id, v)
	c.verts.Set(int(id), v)
	return v, nil
}

// findVertex implements FindVertex(Ht(o), o, t): it reads o's run directory
// and scans for the (node, partition) of the run covering t. Runs are
// stored in ascending end order; the scan decodes at most the prefix up to
// the hit and allocates nothing.
func (ix *Index) findVertex(o trajectory.ObjectID, t trajectory.Tick, acct *pagefile.Stats) (dn.NodeID, int32, error) {
	if int(o) < 0 || int(o) >= ix.numObjects {
		return dn.Invalid, -1, fmt.Errorf("reachgraph: object %d outside [0, %d)", o, ix.numObjects)
	}
	data, err := ix.store.ReadBlob(ix.dirRefs[o], acct)
	if err != nil {
		return dn.Invalid, -1, fmt.Errorf("reachgraph: directory of object %d: %w", o, err)
	}
	dec := pagefile.NewDecoder(data)
	format := dec.Format()
	var n int
	if format == pagefile.FormatFixed {
		n = int(dec.Uint32())
	} else {
		n = int(dec.Uvarint())
	}
	end, node, part := int64(0), int64(0), int64(0)
	for i := 0; i < n; i++ {
		if format == pagefile.FormatFixed {
			end = int64(dec.Int32())
			node = int64(dec.Int32())
			part = int64(dec.Int32())
		} else {
			end += int64(dec.Uvarint())
			node += dec.Varint()
			part += dec.Varint()
		}
		if dec.Err() != nil {
			break
		}
		if trajectory.Tick(end) >= t {
			if node < 0 || node >= int64(ix.numNodes) {
				return dn.Invalid, -1, fmt.Errorf("reachgraph: directory of object %d names vertex %d outside [0, %d)", o, node, ix.numNodes)
			}
			return dn.NodeID(node), int32(part), nil
		}
	}
	if err := dec.Err(); err != nil {
		return dn.Invalid, -1, fmt.Errorf("reachgraph: directory of object %d: %w", o, err)
	}
	return dn.Invalid, -1, fmt.Errorf("reachgraph: object %d has no run at tick %d", o, t)
}

// clampInterval intersects iv with the index's time domain.
func (ix *Index) clampInterval(iv contact.Interval) contact.Interval {
	return iv.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(ix.numTicks - 1)})
}

func (ix *Index) validateQuery(q queries.Query) error {
	if int(q.Src) < 0 || int(q.Src) >= ix.numObjects {
		return fmt.Errorf("reachgraph: source %d outside [0, %d)", q.Src, ix.numObjects)
	}
	if int(q.Dst) < 0 || int(q.Dst) >= ix.numObjects {
		return fmt.Errorf("reachgraph: destination %d outside [0, %d)", q.Dst, ix.numObjects)
	}
	return nil
}

// Reach answers q with the default BM-BFS strategy.
func (ix *Index) Reach(q queries.Query) (bool, error) {
	return ix.ReachStrategy(q, BMBFS)
}

// ReachStrategy answers q with the chosen traversal strategy, charging all
// page reads to the store's cumulative Counters through a query-scoped
// accountant.
func (ix *Index) ReachStrategy(q queries.Query, s Strategy) (bool, error) {
	var acct pagefile.Stats
	ok, _, err := ix.ReachStrategyCounted(context.Background(), q, s, &acct)
	return ok, err
}

// ReachStrategyCounted is ReachStrategy plus the number of vertex visits the
// traversal performed. Page reads are charged to acct (which may be nil) in
// addition to the cumulative counters; one accountant per query keeps
// parallel evaluation exact. The context is observed inside the expansion
// loops, so a cancelled query returns ctx.Err() promptly.
func (ix *Index) ReachStrategyCounted(ctx context.Context, q queries.Query, s Strategy, acct *pagefile.Stats) (bool, int, error) {
	if err := ix.validateQuery(q); err != nil {
		return false, 0, err
	}
	if q.Src == q.Dst && ix.clampInterval(q.Interval).Len() > 0 {
		return true, 0, nil
	}
	return ix.ReachFromCounted(ctx, []trajectory.ObjectID{q.Src}, q.Dst, q.Interval, s, acct)
}

// ReachFromCounted is the multi-source point query: can an item held by any
// of the seeds at the interval start reach dst by its end? It is the
// frontier entry point of the cross-segment planner — the reachable set of
// one time slab becomes the seed set of the next. The traversal is the
// strategy's usual one with every seed vertex injected into the forward
// frontier at iv.Lo.
func (ix *Index) ReachFromCounted(ctx context.Context, seeds []trajectory.ObjectID, dst trajectory.ObjectID, iv contact.Interval, s Strategy, acct *pagefile.Stats) (bool, int, error) {
	if int(dst) < 0 || int(dst) >= ix.numObjects {
		return false, 0, fmt.Errorf("reachgraph: destination %d outside [0, %d)", dst, ix.numObjects)
	}
	iv = ix.clampInterval(iv)
	if iv.Len() == 0 {
		return false, 0, nil
	}
	for _, o := range seeds {
		if o == dst {
			return true, 0, nil
		}
	}
	sc := ix.pool.Get()
	defer ix.pool.Put(sc)
	sc.reset(ix.numNodes, ix.numObjects)
	sc.cur.reset(ix.numNodes, len(ix.partRefs))
	sc.cur.ix, sc.cur.acct = ix, acct
	starts, err := ix.seedEntries(sc, seeds, iv.Lo, acct)
	if err != nil {
		return false, sc.visits, err
	}
	v2, p2, err := ix.findVertex(dst, iv.Hi, acct)
	if err != nil {
		return false, sc.visits, err
	}
	ok, err := traverse(ctx, &sc.cur, sc, s,
		starts, entry{v2, p2}, iv, ix.params.Resolutions, ix.numTicks)
	return ok, sc.visits, err
}

// ReachableSetFromCounted returns every object reachable from any seed
// during iv (seeds included when the interval overlaps the time domain),
// sorted ascending, plus the number of vertex visits. It is the native set
// primitive: a forward DN1 sweep that collects the members of every run the
// item can enter.
func (ix *Index) ReachableSetFromCounted(ctx context.Context, seeds []trajectory.ObjectID, iv contact.Interval, acct *pagefile.Stats) ([]trajectory.ObjectID, int, error) {
	out, visits, err := ix.AppendReachableSetFromCounted(ctx, nil, seeds, iv, acct)
	return out, visits, err
}

// AppendReachableSetFromCounted is ReachableSetFromCounted appending onto
// dst (whose backing array is reused) — the allocation-free variant the
// cross-segment planner carries its frontier with.
func (ix *Index) AppendReachableSetFromCounted(ctx context.Context, dst, seeds []trajectory.ObjectID, iv contact.Interval, acct *pagefile.Stats) ([]trajectory.ObjectID, int, error) {
	iv = ix.clampInterval(iv)
	if iv.Len() == 0 {
		return dst, 0, nil
	}
	sc := ix.pool.Get()
	defer ix.pool.Put(sc)
	sc.reset(ix.numNodes, ix.numObjects)
	sc.cur.reset(ix.numNodes, len(ix.partRefs))
	sc.cur.ix, sc.cur.acct = ix, acct
	starts, err := ix.seedEntries(sc, seeds, iv.Lo, acct)
	if err != nil {
		return dst, sc.visits, err
	}
	if err := collectForward(ctx, &sc.cur, sc, starts, iv); err != nil {
		return dst, sc.visits, err
	}
	return append(dst, trajectory.SortDedupObjects(sc.objList)...), sc.visits, nil
}

// AppendArrivalProfileFrom appends to dst the earliest-arrival profile of
// the seed frontier over iv: one entry per reachable object (seeds
// included), sorted by object ID, with Arrival the earliest tick the
// object holds the item and Hops always -1 (the run DAG collapses contact
// components, so transfer counts are not derivable — ReachGraph advertises
// arrival-only semantics). The int result is the vertex-visit counter.
func (ix *Index) AppendArrivalProfileFrom(ctx context.Context, dst []queries.ProfileEntry, seeds []trajectory.ObjectID, iv contact.Interval, acct *pagefile.Stats) ([]queries.ProfileEntry, int, error) {
	iv = ix.clampInterval(iv)
	if iv.Len() == 0 {
		return dst, 0, nil
	}
	sc := ix.pool.Get()
	defer ix.pool.Put(sc)
	sc.reset(ix.numNodes, ix.numObjects)
	sc.cur.reset(ix.numNodes, len(ix.partRefs))
	sc.cur.ix, sc.cur.acct = ix, acct
	starts, err := ix.seedEntries(sc, seeds, iv.Lo, acct)
	if err != nil {
		return dst, sc.visits, err
	}
	if err := arrivalCollect(ctx, &sc.cur, sc, starts, iv); err != nil {
		return dst, sc.visits, err
	}
	return appendProfileEntries(dst, sc), sc.visits, nil
}

// AppendArrivalProfileSeeds is AppendArrivalProfileFrom for a frontier of
// seed states: each seed begins holding the item at max(Start, iv.Lo) —
// seeds starting after iv.Hi are ignored. It is the owner-side expansion
// primitive of the scatter-gather shard planner, which hands a whole round
// of boundary discoveries to a shard as one multi-seed sweep. Hop counts
// are -1 as in AppendArrivalProfileFrom; seed Hops values are not
// consulted (the planner is hop-agnostic by contract).
func (ix *Index) AppendArrivalProfileSeeds(ctx context.Context, dst []queries.ProfileEntry, seeds []queries.SeedState, iv contact.Interval, acct *pagefile.Stats) ([]queries.ProfileEntry, int, error) {
	iv = ix.clampInterval(iv)
	if iv.Len() == 0 {
		return dst, 0, nil
	}
	sc := ix.pool.Get()
	defer ix.pool.Put(sc)
	sc.reset(ix.numNodes, ix.numObjects)
	sc.cur.reset(ix.numNodes, len(ix.partRefs))
	sc.cur.ix, sc.cur.acct = ix, acct
	for _, s := range seeds {
		at := s.Start
		if at < iv.Lo {
			at = iv.Lo
		}
		if at > iv.Hi {
			continue
		}
		v, p, err := ix.findVertex(s.Obj, at, acct)
		if err != nil {
			return dst, sc.visits, err
		}
		sc.tickStarts = append(sc.tickStarts, tickItem{entry{v, p}, at})
	}
	if err := arrivalCollectTicked(ctx, &sc.cur, sc, sc.tickStarts, iv); err != nil {
		return dst, sc.visits, err
	}
	return appendProfileEntries(dst, sc), sc.visits, nil
}

// AppendReverseSetFromCounted appends onto dst the deliverer set of the seed
// frontier over iv: every object that, holding the item at iv.Lo, delivers
// it to some seed by iv.Hi (seeds included when the interval overlaps the
// time domain), sorted ascending, plus the vertex-visit counter. It is the
// native backward primitive — collectForward on the time-mirrored graph —
// seeding at the runs covering iv.Hi and walking DN1 in-edges toward iv.Lo.
// The backward cross-segment plan carries its frontier with it: the
// deliverer set of one time slab becomes the seed set of the previous one.
func (ix *Index) AppendReverseSetFromCounted(ctx context.Context, dst, seeds []trajectory.ObjectID, iv contact.Interval, acct *pagefile.Stats) ([]trajectory.ObjectID, int, error) {
	iv = ix.clampInterval(iv)
	if iv.Len() == 0 {
		return dst, 0, nil
	}
	sc := ix.pool.Get()
	defer ix.pool.Put(sc)
	sc.reset(ix.numNodes, ix.numObjects)
	sc.cur.reset(ix.numNodes, len(ix.partRefs))
	sc.cur.ix, sc.cur.acct = ix, acct
	starts, err := ix.seedEntries(sc, seeds, iv.Hi, acct)
	if err != nil {
		return dst, sc.visits, err
	}
	if err := collectBackward(ctx, &sc.cur, sc, starts, iv); err != nil {
		return dst, sc.visits, err
	}
	return append(dst, trajectory.SortDedupObjects(sc.objList)...), sc.visits, nil
}

// AppendReverseProfileFrom appends to dst the latest-departure profile of
// the seed frontier over iv: one entry per deliverer (seeds included),
// sorted by object ID, with Arrival the *latest* tick the object can pick
// the item up and still have it delivered to a seed by iv.Hi, and Hops
// always -1 (see AppendArrivalProfileFrom). The int result is the
// vertex-visit counter.
func (ix *Index) AppendReverseProfileFrom(ctx context.Context, dst []queries.ProfileEntry, seeds []trajectory.ObjectID, iv contact.Interval, acct *pagefile.Stats) ([]queries.ProfileEntry, int, error) {
	iv = ix.clampInterval(iv)
	if iv.Len() == 0 {
		return dst, 0, nil
	}
	sc := ix.pool.Get()
	defer ix.pool.Put(sc)
	sc.reset(ix.numNodes, ix.numObjects)
	sc.cur.reset(ix.numNodes, len(ix.partRefs))
	sc.cur.ix, sc.cur.acct = ix, acct
	starts, err := ix.seedEntries(sc, seeds, iv.Hi, acct)
	if err != nil {
		return dst, sc.visits, err
	}
	if err := departureCollect(ctx, &sc.cur, sc, starts, iv); err != nil {
		return dst, sc.visits, err
	}
	return appendProfileEntries(dst, sc), sc.visits, nil
}

// appendProfileEntries drains a tick-tracking sweep's per-object results
// (earliest arrivals or latest departures) into sorted profile entries.
func appendProfileEntries(dst []queries.ProfileEntry, sc *scratch) []queries.ProfileEntry {
	list := trajectory.SortDedupObjects(sc.objList)
	for _, o := range list {
		arr, _ := sc.objTicks.Get(int(o))
		dst = append(dst, queries.ProfileEntry{Obj: o, Hops: -1, Arrival: trajectory.Tick(arr)})
	}
	return dst
}

// seedEntries locates the (deduplicated) vertices of the seed objects at
// tick t via the run directory, appending them to the scratch start buffer.
func (ix *Index) seedEntries(sc *scratch, seeds []trajectory.ObjectID, t trajectory.Tick, acct *pagefile.Stats) ([]entry, error) {
	for _, o := range seeds {
		v, p, err := ix.findVertex(o, t, acct)
		if err != nil {
			return nil, err
		}
		if sc.seedNodes.Visit(int(v)) {
			sc.starts = append(sc.starts, entry{v, p})
		}
	}
	return sc.starts, nil
}
