package reachgraph

import (
	"testing"

	"streach/internal/contact"
	"streach/internal/dn"
	"streach/internal/mobility"
	"streach/internal/queries"
	"streach/internal/trajectory"
)

// fixture bundles a dataset with its derived structures.
type fixture struct {
	d      *trajectory.Dataset
	net    *contact.Network
	g      *dn.Graph
	oracle *queries.Oracle
}

func newFixture(t testing.TB, objects, ticks int, seed int64) *fixture {
	t.Helper()
	d := mobility.RandomWaypoint(mobility.RWPConfig{
		NumObjects: objects,
		NumTicks:   ticks,
		Seed:       seed,
	})
	net := contact.Extract(d)
	g := dn.Build(net)
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	return &fixture{d: d, net: net, g: g, oracle: queries.NewOracle(net)}
}

func (f *fixture) workload(count, minLen, maxLen int, seed int64) []queries.Query {
	return queries.RandomWorkload(queries.WorkloadConfig{
		NumObjects: f.d.NumObjects(),
		NumTicks:   f.d.NumTicks(),
		Count:      count,
		MinLen:     minLen,
		MaxLen:     maxLen,
		Seed:       seed,
	})
}

func TestBuildEmptyGraph(t *testing.T) {
	if _, err := Build(&dn.Graph{}, Params{}); err == nil {
		t.Fatal("Build on empty graph: want error")
	}
}

func TestAllStrategiesMatchOracle(t *testing.T) {
	f := newFixture(t, 50, 400, 21)
	ix, err := Build(f.g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	work := f.workload(120, 10, 250, 5)
	var pos int
	for _, q := range work {
		want := f.oracle.Reachable(q)
		if want {
			pos++
		}
		for _, s := range []Strategy{BMBFS, BBFS, EBFS, EDFS} {
			got, err := ix.ReachStrategy(q, s)
			if err != nil {
				t.Fatalf("%v %v: %v", s, q, err)
			}
			if got != want {
				t.Fatalf("%v %v: got %v, oracle %v", s, q, got, want)
			}
		}
	}
	if pos == 0 || pos == len(work) {
		t.Fatalf("degenerate workload: %d/%d positive", pos, len(work))
	}
}

func TestMemMatchesDisk(t *testing.T) {
	f := newFixture(t, 40, 300, 22)
	ix, err := Build(f.g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := NewMem(f.g, []int{2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range f.workload(100, 10, 200, 6) {
		for _, s := range []Strategy{BMBFS, BBFS, EDFS} {
			d, err := ix.ReachStrategy(q, s)
			if err != nil {
				t.Fatal(err)
			}
			m, err := mem.ReachStrategy(q, s)
			if err != nil {
				t.Fatal(err)
			}
			if d != m {
				t.Fatalf("%v %v: disk %v, mem %v", s, q, d, m)
			}
		}
	}
}

func TestMemMatchesOracle(t *testing.T) {
	f := newFixture(t, 60, 350, 23)
	mem, err := NewMem(f.g, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range f.workload(150, 5, 300, 7) {
		want := f.oracle.Reachable(q)
		got, err := mem.Reach(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: mem BM-BFS %v, oracle %v", q, got, want)
		}
	}
}

func TestBMBFSReadsLessThanEDFS(t *testing.T) {
	f := newFixture(t, 70, 500, 24)
	ix, err := Build(f.g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	work := f.workload(50, 150, 350, 8)

	measure := func(s Strategy) float64 {
		ix.ResetCounters()
		ix.DropCache()
		for _, q := range work {
			if _, err := ix.ReachStrategy(q, s); err != nil {
				t.Fatal(err)
			}
		}
		return ix.Counters().Normalized()
	}
	bm := measure(BMBFS)
	b := measure(BBFS)
	edfs := measure(EDFS)
	t.Logf("normalized IOs: BM-BFS %.1f, B-BFS %.1f, E-DFS %.1f", bm, b, edfs)
	if bm > edfs {
		t.Errorf("BM-BFS (%.1f) costs more than E-DFS (%.1f)", bm, edfs)
	}
	if b > edfs {
		t.Errorf("B-BFS (%.1f) costs more than E-DFS (%.1f)", b, edfs)
	}
}

func TestPartitionAssignmentComplete(t *testing.T) {
	f := newFixture(t, 30, 200, 25)
	for _, depth := range []int{1, 4, 32} {
		partOf, parts := partition(f.g, depth)
		seen := 0
		for pid, members := range parts {
			for _, id := range members {
				if partOf[id] != int32(pid) {
					t.Fatalf("depth %d: node %d in partition %d but mapped to %d",
						depth, id, pid, partOf[id])
				}
				seen++
			}
		}
		if seen != len(f.g.Nodes) {
			t.Fatalf("depth %d: %d nodes partitioned, want %d", depth, seen, len(f.g.Nodes))
		}
		for id, p := range partOf {
			if p < 0 {
				t.Fatalf("depth %d: node %d unassigned", depth, id)
			}
		}
	}
}

func TestPartitionDepthTradeoff(t *testing.T) {
	f := newFixture(t, 40, 300, 26)
	shallow, err := Build(f.g, Params{PartitionDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Build(f.g, Params{PartitionDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if shallow.NumPartitions() <= deep.NumPartitions() {
		t.Fatalf("partitions: depth 1 → %d, depth 64 → %d; want shallow > deep",
			shallow.NumPartitions(), deep.NumPartitions())
	}
}

func TestQueryValidationAndDegenerates(t *testing.T) {
	f := newFixture(t, 20, 100, 27)
	ix, err := Build(f.g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Reach(queries.Query{Src: -1, Dst: 0, Interval: contact.Interval{Lo: 0, Hi: 9}}); err == nil {
		t.Error("negative source: want error")
	}
	if _, err := ix.Reach(queries.Query{Src: 0, Dst: 999, Interval: contact.Interval{Lo: 0, Hi: 9}}); err == nil {
		t.Error("out-of-range destination: want error")
	}
	got, err := ix.Reach(queries.Query{Src: 0, Dst: 1, Interval: contact.Interval{Lo: 9, Hi: 2}})
	if err != nil || got {
		t.Errorf("empty interval: got (%v, %v)", got, err)
	}
	got, err = ix.Reach(queries.Query{Src: 5, Dst: 5, Interval: contact.Interval{Lo: 0, Hi: 50}})
	if err != nil || !got {
		t.Errorf("self query: got (%v, %v)", got, err)
	}
	// Instantaneous interval: reachable iff same component at that instant.
	q := queries.Query{Src: 0, Dst: 1, Interval: contact.Interval{Lo: 42, Hi: 42}}
	want := f.oracle.Reachable(q)
	got, err = ix.Reach(q)
	if err != nil || got != want {
		t.Errorf("instant query: got (%v, %v), oracle %v", got, err, want)
	}
}

func TestSingleResolutionIndex(t *testing.T) {
	f := newFixture(t, 30, 200, 28)
	ix, err := Build(f.g, Params{Resolutions: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range f.workload(60, 10, 150, 9) {
		want := f.oracle.Reachable(q)
		got, err := ix.Reach(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: got %v, want %v", q, got, want)
		}
	}
}

func TestRejectsBadResolutions(t *testing.T) {
	f := newFixture(t, 10, 50, 29)
	if _, err := Build(f.g, Params{Resolutions: []int{3, 6}}); err == nil {
		t.Fatal("non-power-of-two resolutions: want error")
	}
}
