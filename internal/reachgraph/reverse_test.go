package reachgraph

import (
	"context"
	"reflect"
	"testing"

	"streach/internal/contact"
	"streach/internal/trajectory"
)

// TestReverseSetMatchesOracle validates the backward sweep — disk, memory
// and the dn-level reference walk — against the oracle's time-mirrored
// propagation, for single and multi-seed frontiers.
func TestReverseSetMatchesOracle(t *testing.T) {
	f := newFixture(t, 40, 300, 31)
	ix, err := Build(f.g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMem(f.g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		seeds []trajectory.ObjectID
		iv    contact.Interval
	}{
		{[]trajectory.ObjectID{0}, contact.Interval{Lo: 0, Hi: 299}},
		{[]trajectory.ObjectID{7}, contact.Interval{Lo: 50, Hi: 180}},
		{[]trajectory.ObjectID{13}, contact.Interval{Lo: 120, Hi: 120}},
		{[]trajectory.ObjectID{3, 9, 21}, contact.Interval{Lo: 30, Hi: 240}},
		{[]trajectory.ObjectID{39, 0}, contact.Interval{Lo: 250, Hi: 299}},
	}
	for _, tc := range cases {
		want := f.oracle.ReverseReachableSetFrom(tc.seeds, tc.iv)
		got, _, err := ix.AppendReverseSetFromCounted(ctx, nil, tc.seeds, tc.iv, nil)
		if err != nil {
			t.Fatalf("disk reverse %v over %v: %v", tc.seeds, tc.iv, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("disk reverse %v over %v = %v, oracle %v", tc.seeds, tc.iv, got, want)
		}
		got, _, err = m.AppendReverseSetFromCounted(ctx, nil, tc.seeds, tc.iv)
		if err != nil {
			t.Fatalf("mem reverse %v over %v: %v", tc.seeds, tc.iv, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mem reverse %v over %v = %v, oracle %v", tc.seeds, tc.iv, got, want)
		}
		if ref := f.g.ReverseReach(tc.seeds, tc.iv); !reflect.DeepEqual(ref, want) {
			t.Fatalf("dn.ReverseReach %v over %v = %v, oracle %v", tc.seeds, tc.iv, ref, want)
		}
	}
}

// TestReverseProfileMatchesOracle checks latest-departure ticks against the
// oracle on both engines, including the degenerate empty interval.
func TestReverseProfileMatchesOracle(t *testing.T) {
	f := newFixture(t, 36, 280, 8)
	ix, err := Build(f.g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMem(f.g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, iv := range []contact.Interval{
		{Lo: 0, Hi: 279},
		{Lo: 90, Hi: 200},
		{Lo: 200, Hi: 90}, // empty
	} {
		for _, seed := range []trajectory.ObjectID{2, 17, 35} {
			seeds := []trajectory.ObjectID{seed}
			want := f.oracle.ReverseProfileFrom(seeds, iv)
			got, _, err := ix.AppendReverseProfileFrom(ctx, nil, seeds, iv, nil)
			if err != nil {
				t.Fatalf("disk reverse profile %d over %v: %v", seed, iv, err)
			}
			if len(got) != len(want) {
				t.Fatalf("disk reverse profile %d over %v: %d entries, oracle %d", seed, iv, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("disk reverse profile %d over %v: entry %d = %+v, oracle %+v", seed, iv, i, got[i], want[i])
				}
			}
			memGot, _, err := m.AppendReverseProfileFrom(ctx, nil, seeds, iv)
			if err != nil {
				t.Fatalf("mem reverse profile %d over %v: %v", seed, iv, err)
			}
			if !reflect.DeepEqual(memGot, got) {
				t.Fatalf("mem reverse profile %d over %v diverges from disk", seed, iv)
			}
		}
	}
}
