// Traversal strategies over HN (§5.2, §6.2.2).
//
// BM-BFS is the paper's contribution: a bidirectional BFS where the forward
// sweep covers [t1, mid] and the backward sweep covers [mid, t2]
// (mid = (t1+t2)/2), taking long edges at the highest admissible resolution
// in both directions. The query is answered positively as soon as the
// forward and backward object sets intersect: an object that holds the item
// by mid and can still deliver it to the destination after mid (Theorem 5.3
// and Property 5.2).
//
// Invariants maintained by the expansion rules, which carry the correctness
// proof:
//
//   - Forward: a vertex is visited with an arrival time a within its span
//     and a ≤ mid; all of its member objects hold the item at a. A level-L
//     edge is taken only when its departure boundary is ≥ the arrival time
//     (the item is already present at departure) and its arrival boundary is
//     ≤ mid (the sweep never overshoots the meeting point). Because a
//     level-L edge enumerates *every* vertex reachable at the arrival
//     boundary, skipping intermediate vertices loses no objects: object
//     sets only grow at run boundaries, and every carrier's own run at the
//     boundary is among the targets.
//   - Backward: the exact time-mirror, using the reverse long edges of
//     dn.AugmentBidirectional, whose boundaries are aligned from the end of
//     the time domain.
//
// B-BFS is BM-BFS restricted to resolution DN1; E-BFS and E-DFS are
// unidirectional traversals that ignore vertex members and long edges and
// terminate only on reaching the destination vertex itself (the naïve
// baselines of Figure 13).
//
// All traversal state — visited tables, object sets, frontier queues — is
// a pooled scratch of epoch-stamped arrays over the graph's dense node and
// object ID spaces (internal/visit), so steady-state queries allocate
// nothing: a query checks out one scratch, Reset bumps its epochs in O(1),
// and the backing arrays are recycled through the engine's sync.Pool.
package reachgraph

import (
	"context"

	"streach/internal/contact"
	"streach/internal/dn"
	"streach/internal/trajectory"
	"streach/internal/visit"
)

// Strategy selects a traversal algorithm.
type Strategy int

const (
	// BMBFS is bidirectional multi-resolution BFS (Algorithm 2).
	BMBFS Strategy = iota
	// BBFS is bidirectional BFS at resolution DN1 only.
	BBFS
	// EBFS is unidirectional external BFS over DN1.
	EBFS
	// EDFS is unidirectional external DFS over DN1, the paper's baseline.
	EDFS
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case BMBFS:
		return "BM-BFS"
	case BBFS:
		return "B-BFS"
	case EBFS:
		return "E-BFS"
	case EDFS:
		return "E-DFS"
	}
	return "unknown"
}

// graphAccess abstracts vertex retrieval so the same traversal code runs
// against the disk-resident index (charging I/O) and the memory-resident
// graph (Table 5a). Implementations are passed by pointer, so boxing them
// into the interface costs nothing on the hot path.
type graphAccess interface {
	vertex(id dn.NodeID, part int32) (*vertexRec, error)
}

// entry is a traversal starting point: a vertex and the partition hint that
// locates it (ignored by memory access).
type entry struct {
	node dn.NodeID
	part int32
}

// scratch is the pooled per-query working state of every traversal: the
// visited/arrival tables and frontier queues over node IDs, the per
// direction object sets, and the seed/start buffers. Engines hold one
// visit.Pool of these; a query checks one out, resets it (O(1) epoch
// bumps) and returns it, so steady-state evaluation does not allocate.
type scratch struct {
	visits int // vertex fetches, the expansion counter

	fwTicks, bwTicks visit.Ticks // node → best arrival / injection bound
	fwObjs, bwObjs   visit.Set   // objects collected per direction
	objList          []trajectory.ObjectID
	objTicks         visit.Ticks // object → earliest arrival (arrival sweeps)
	nodes            visit.Set   // visited nodes (unidirectional sweeps)
	seedNodes        visit.Set   // seed-vertex dedup
	fwQueue, bwQueue visit.Deque[tickItem]
	queue            visit.Deque[entry] // unidirectional frontier / stack
	starts           []entry
	tickStarts       []tickItem // per-seed-tick starts (ticked sweeps)

	cur cursor // disk-side record cache; unused by Mem
}

// newScratchPool returns the per-engine pool of traversal scratch.
func newScratchPool() *visit.Pool[scratch] {
	return visit.NewPool(func() *scratch { return new(scratch) })
}

// reset prepares the scratch for one query over a graph of numNodes
// vertices and numObjects objects. The disk cursor is not touched: only
// the disk index resets (and pays for) it, so the memory engine's pools
// never materialize the per-node record tables.
func (sc *scratch) reset(numNodes, numObjects int) {
	sc.visits = 0
	sc.fwTicks.Reset(numNodes)
	sc.bwTicks.Reset(numNodes)
	sc.fwObjs.Reset(numObjects)
	sc.bwObjs.Reset(numObjects)
	sc.objList = sc.objList[:0]
	sc.objTicks.Reset(numObjects)
	sc.nodes.Reset(numNodes)
	sc.seedNodes.Reset(numNodes)
	sc.fwQueue.Reset()
	sc.bwQueue.Reset()
	sc.queue.Reset()
	sc.starts = sc.starts[:0]
	sc.tickStarts = sc.tickStarts[:0]
}

// traverse runs strategy s from the start vertices (source frontier at
// iv.Lo) toward v2 (destination vertex at iv.Hi). A single-source query
// passes one start; the cross-segment planner passes the whole frontier
// carried over from the previous time slab. numTicks is the graph's time
// domain size, needed to mirror reverse long-edge boundaries. The context
// is observed inside every expansion loop, so a cancelled traversal returns
// ctx.Err() promptly.
func traverse(ctx context.Context, g graphAccess, sc *scratch, s Strategy, starts []entry, v2 entry,
	iv contact.Interval, resolutions []int, numTicks int) (bool, error) {

	if v2.node == dn.Invalid {
		return false, nil
	}
	live := starts[:0]
	for _, e := range starts {
		if e.node == dn.Invalid {
			continue
		}
		if e.node == v2.node {
			return true, nil
		}
		live = append(live, e)
	}
	if len(live) == 0 {
		return false, nil
	}
	switch s {
	case BMBFS:
		return bidirectional(ctx, g, sc, live, v2, iv, resolutions, numTicks)
	case BBFS:
		return bidirectional(ctx, g, sc, live, v2, iv, nil, numTicks)
	case EBFS:
		return unidirectional(ctx, g, sc, live, v2, iv, false)
	case EDFS:
		return unidirectional(ctx, g, sc, live, v2, iv, true)
	}
	return false, errUnknownStrategy
}

type strategyError string

func (e strategyError) Error() string { return string(e) }

const errUnknownStrategy = strategyError("reachgraph: unknown traversal strategy")

// addAndMeet inserts the members of a visited vertex into own and reports
// whether any of them is already in other (the OF ∩ OB test of Algorithm 2).
func addAndMeet(own, other *visit.Set, members []trajectory.ObjectID) bool {
	meet := false
	for _, o := range members {
		own.Visit(int(o))
		if other.Has(int(o)) {
			meet = true
		}
	}
	return meet
}

// tickItem is a queue entry: a vertex plus its arrival time (forward) or
// injection bound (backward).
type tickItem struct {
	e entry
	t trajectory.Tick
}

// bidirectional implements BM-BFS (resolutions non-nil) and B-BFS
// (resolutions nil), alternating one dequeue per direction like the
// parallel ProcessQueue calls of Algorithm 2. All forward starts are
// injected at iv.Lo: a multi-source frontier behaves exactly like a source
// whose component already spans the seed set.
func bidirectional(ctx context.Context, g graphAccess, sc *scratch, starts []entry, v2 entry,
	iv contact.Interval, resolutions []int, numTicks int) (bool, error) {

	mid := iv.Lo + trajectory.Tick(iv.Len()/2)
	fw := frontier{queue: &sc.fwQueue, visited: &sc.fwTicks, own: &sc.fwObjs}
	for _, e := range starts {
		fw.queue.PushBack(tickItem{e, iv.Lo})
	}
	bw := frontier{queue: &sc.bwQueue, visited: &sc.bwTicks, own: &sc.bwObjs}
	bw.queue.PushBack(tickItem{v2, iv.Hi})
	for fw.queue.Len() > 0 || bw.queue.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		meet, err := stepForward(g, sc, fw, bw.own, mid, resolutions)
		if err != nil || meet {
			return meet, err
		}
		meet, err = stepBackward(g, sc, bw, fw.own, mid, resolutions, numTicks)
		if err != nil || meet {
			return meet, err
		}
	}
	return false, nil
}

// frontier is one direction's BFS state, views into the query's scratch.
type frontier struct {
	queue   *visit.Deque[tickItem]
	visited *visit.Ticks
	own     *visit.Set
}

// betterForward reports whether arrival a improves on the recorded visit
// (forward wants the earliest arrival).
func (f frontier) betterForward(id dn.NodeID, a trajectory.Tick) bool {
	prev, ok := f.visited.Get(int(id))
	return !ok || int32(a) < prev
}

// betterBackward reports whether bound b improves on the recorded visit
// (backward wants the latest injection bound).
func (f frontier) betterBackward(id dn.NodeID, b trajectory.Tick) bool {
	prev, ok := f.visited.Get(int(id))
	return !ok || int32(b) > prev
}

// stepForward processes one forward queue entry.
func stepForward(g graphAccess, sc *scratch, fw frontier, other *visit.Set, mid trajectory.Tick, resolutions []int) (bool, error) {
	it, ok := fw.queue.PopFront()
	if !ok {
		return false, nil
	}
	if !fw.betterForward(it.e.node, it.t) {
		return false, nil
	}
	fw.visited.Set(int(it.e.node), int32(it.t))
	sc.visits++
	v, err := g.vertex(it.e.node, it.e.part)
	if err != nil {
		return false, err
	}
	if addAndMeet(fw.own, other, v.members) {
		return true, nil
	}
	if v.end >= mid {
		// The vertex spans the meeting point: its members carry the item
		// through mid; no further forward expansion is needed.
		return false, nil
	}
	// Highest admissible resolution first (§5.2): departure must not
	// precede the arrival time and the hop must not overshoot mid.
	for li := len(resolutions) - 1; li >= 0; li-- {
		L := resolutions[li]
		targets := levelEdgesAt(v.longOut, L)
		if len(targets) == 0 {
			continue
		}
		dep, okB := boundary(v, L)
		if !okB || dep < it.t || dep+trajectory.Tick(L) > mid {
			continue
		}
		arr := dep + trajectory.Tick(L)
		for _, e := range targets {
			if fw.betterForward(e.node, arr) {
				fw.queue.PushBack(tickItem{entry{e.node, e.part}, arr})
			}
		}
		return false, nil
	}
	// Fall back to DN1 edges: depart at the span end, arrive one instant
	// later (always ≤ mid here since v.end < mid).
	arr := v.end + 1
	for _, e := range v.out {
		if fw.betterForward(e.node, arr) {
			fw.queue.PushBack(tickItem{entry{e.node, e.part}, arr})
		}
	}
	return false, nil
}

// stepBackward processes one backward queue entry; the time-mirror of
// stepForward.
func stepBackward(g graphAccess, sc *scratch, bw frontier, other *visit.Set, mid trajectory.Tick,
	resolutions []int, numTicks int) (bool, error) {
	it, ok := bw.queue.PopFront()
	if !ok {
		return false, nil
	}
	if !bw.betterBackward(it.e.node, it.t) {
		return false, nil
	}
	bw.visited.Set(int(it.e.node), int32(it.t))
	sc.visits++
	v, err := g.vertex(it.e.node, it.e.part)
	if err != nil {
		return false, err
	}
	if addAndMeet(bw.own, other, v.members) {
		return true, nil
	}
	if v.start <= mid {
		return false, nil
	}
	for li := len(resolutions) - 1; li >= 0; li-- {
		L := resolutions[li]
		sources := levelEdgesAt(v.longIn, L)
		if len(sources) == 0 {
			continue
		}
		arr, okB := revBoundaryOf(v, L, numTicks)
		if !okB || arr > it.t || arr-trajectory.Tick(L) < mid {
			continue
		}
		dep := arr - trajectory.Tick(L)
		for _, e := range sources {
			if bw.betterBackward(e.node, dep) {
				bw.queue.PushBack(tickItem{entry{e.node, e.part}, dep})
			}
		}
		return false, nil
	}
	bound := v.start - 1
	for _, e := range v.in {
		if bw.betterBackward(e.node, bound) {
			bw.queue.PushBack(tickItem{entry{e.node, e.part}, bound})
		}
	}
	return false, nil
}

// unidirectional implements E-BFS and E-DFS: expand DN1 edges from v1,
// terminating only when the destination vertex v2 itself is reached. Vertex
// members and long edges are never consulted, matching the baselines of
// §6.2.2. Edge spans grow strictly along DN1 edges, so a vertex starting
// after iv.Hi cannot lead to v2 and is not expanded; that is the only
// pruning the naïve traversals get. The frontier deque doubles as queue
// (E-BFS) and stack (E-DFS).
func unidirectional(ctx context.Context, g graphAccess, sc *scratch, starts []entry, v2 entry, iv contact.Interval, depthFirst bool) (bool, error) {
	for _, e := range starts {
		if sc.nodes.Visit(int(e.node)) {
			sc.queue.PushBack(e)
		}
	}
	for sc.queue.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		var cur entry
		if depthFirst {
			cur, _ = sc.queue.PopBack()
		} else {
			cur, _ = sc.queue.PopFront()
		}
		if cur.node == v2.node {
			return true, nil
		}
		sc.visits++
		v, err := g.vertex(cur.node, cur.part)
		if err != nil {
			return false, err
		}
		if v.start > iv.Hi {
			continue
		}
		for _, e := range v.out {
			if sc.nodes.Visit(int(e.node)) {
				sc.queue.PushBack(entry{e.node, e.part})
			}
		}
	}
	return false, nil
}

// collectForward sweeps DN1 edges forward from the start vertices and
// records every object holding the item by iv.Hi in sc.fwObjs/sc.objList —
// the native reachable-set primitive behind ReachableSetFromCounted and the
// cross-segment frontier planner. Long edges are not consulted: a set query
// must enumerate every reachable run anyway, so the base resolution is
// already optimal. The entry invariant is that every queued vertex is
// reached with an arrival time inside its span and ≤ iv.Hi, so all of its
// members hold the item; successors depart at span end and arrive one
// instant later, which keeps the invariant because DN1 edges connect
// exactly adjacent runs.
func collectForward(ctx context.Context, g graphAccess, sc *scratch, starts []entry, iv contact.Interval) error {
	for _, e := range starts {
		if e.node == dn.Invalid {
			continue
		}
		if sc.nodes.Visit(int(e.node)) {
			sc.queue.PushBack(e)
		}
	}
	for sc.queue.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		cur, _ := sc.queue.PopFront()
		sc.visits++
		v, err := g.vertex(cur.node, cur.part)
		if err != nil {
			return err
		}
		for _, o := range v.members {
			if sc.fwObjs.Visit(int(o)) {
				sc.objList = append(sc.objList, o)
			}
		}
		if v.end >= iv.Hi {
			// The run outlives the interval: its successors start after
			// iv.Hi and cannot be infected in time.
			continue
		}
		for _, e := range v.out {
			if sc.nodes.Visit(int(e.node)) {
				sc.queue.PushBack(entry{e.node, e.part})
			}
		}
	}
	return nil
}

// arrivalCollect is collectForward tracking earliest arrivals: it sweeps
// DN1 edges forward from the start vertices and records, for every object
// reachable by iv.Hi, the earliest tick it holds the item, in
// sc.objTicks/sc.objList. DN1 edges connect exactly adjacent runs, so a
// run reached over *any* path is entered at its span start (the one tick
// its component inherits carriers from the previous instant); only seed
// runs are entered later, at iv.Lo. Every visited run therefore has a
// single fixed arrival tick — a plain visited set suffices, no
// re-queueing on improvement — and an object's earliest arrival is the
// minimum arrival over the visited runs that contain it. Hop counts are
// not derivable from the run DAG (a run collapses a whole contact
// component), which is why ReachGraph advertises arrival-only semantics.
func arrivalCollect(ctx context.Context, g graphAccess, sc *scratch, starts []entry, iv contact.Interval) error {
	for _, e := range starts {
		if e.node == dn.Invalid {
			continue
		}
		if sc.nodes.Visit(int(e.node)) {
			sc.fwQueue.PushBack(tickItem{e, iv.Lo})
		}
	}
	for sc.fwQueue.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		it, _ := sc.fwQueue.PopFront()
		sc.visits++
		v, err := g.vertex(it.e.node, it.e.part)
		if err != nil {
			return err
		}
		for _, o := range v.members {
			if prev, ok := sc.objTicks.Get(int(o)); !ok || int32(it.t) < prev {
				sc.objTicks.Set(int(o), int32(it.t))
				if !ok {
					sc.objList = append(sc.objList, o)
				}
			}
		}
		if v.end >= iv.Hi {
			// The run outlives the interval: its successors start after
			// iv.Hi and cannot be infected in time.
			continue
		}
		arr := v.end + 1 // successors are adjacent runs covering this tick
		for _, e := range v.out {
			if sc.nodes.Visit(int(e.node)) {
				sc.fwQueue.PushBack(tickItem{entry{e.node, e.part}, arr})
			}
		}
	}
	return nil
}

// arrivalCollectTicked is arrivalCollect for frontiers whose seeds
// activate at their own ticks — the scatter-gather shard planner hands a
// whole round of boundary discoveries to an owner shard as one sweep, each
// seed entering at its best-known arrival. The plain-visited-set argument
// of arrivalCollect no longer holds: a run seeded mid-span can also be
// entered at its span start through an edge from an earlier seed's
// propagation, so the visited set becomes an entry-tick table (sc.fwTicks)
// with re-queueing on improvement. Each run still has at most two
// candidate entry ticks — its span start (identical over every edge path)
// and its minimal seed activation — so a run is expanded at most twice and
// the sweep stays linear. Successor entries are span starts either way,
// which is why a re-entry never cascades: it only tightens the members'
// arrivals.
func arrivalCollectTicked(ctx context.Context, g graphAccess, sc *scratch, starts []tickItem, iv contact.Interval) error {
	push := func(e entry, t trajectory.Tick) {
		if prev, ok := sc.fwTicks.Get(int(e.node)); ok && prev <= int32(t) {
			return
		}
		sc.fwTicks.Set(int(e.node), int32(t))
		sc.fwQueue.PushBack(tickItem{e, t})
	}
	for _, it := range starts {
		if it.e.node != dn.Invalid {
			push(it.e, it.t)
		}
	}
	for sc.fwQueue.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		it, _ := sc.fwQueue.PopFront()
		if cur, _ := sc.fwTicks.Get(int(it.e.node)); cur != int32(it.t) {
			continue // superseded by an earlier entry before expansion
		}
		sc.visits++
		v, err := g.vertex(it.e.node, it.e.part)
		if err != nil {
			return err
		}
		for _, o := range v.members {
			if prev, ok := sc.objTicks.Get(int(o)); !ok || int32(it.t) < prev {
				sc.objTicks.Set(int(o), int32(it.t))
				if !ok {
					sc.objList = append(sc.objList, o)
				}
			}
		}
		if v.end >= iv.Hi {
			// The run outlives the interval: its successors start after
			// iv.Hi and cannot be infected in time.
			continue
		}
		arr := v.end + 1 // successors are adjacent runs covering this tick
		for _, e := range v.out {
			push(entry{e.node, e.part}, arr)
		}
	}
	return nil
}

// collectBackward is the time-mirror of collectForward: it sweeps DN1 edges
// backward from the start vertices (the seed runs at iv.Hi) and records in
// sc.bwObjs/sc.objList every object that, holding the item at iv.Lo, delivers
// it to a seed by iv.Hi — the native reverse-set primitive behind
// AppendReverseSetFromCounted and the backward cross-segment plan. The entry
// invariant mirrors the forward one: every visited run has a hand-over tick
// inside its span and inside iv, so any member holding the item then infects
// the run's whole component — including the member a DN1 in-edge shares with
// the next run, which carries the item forward, by induction up to a seed.
// Predecessors are adjacent runs ending at span start − 1, so a run starting
// at or before iv.Lo is not expanded further: its predecessors end before
// the interval and cannot pick the item up in time.
func collectBackward(ctx context.Context, g graphAccess, sc *scratch, starts []entry, iv contact.Interval) error {
	for _, e := range starts {
		if e.node == dn.Invalid {
			continue
		}
		if sc.nodes.Visit(int(e.node)) {
			sc.queue.PushBack(e)
		}
	}
	for sc.queue.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		cur, _ := sc.queue.PopFront()
		sc.visits++
		v, err := g.vertex(cur.node, cur.part)
		if err != nil {
			return err
		}
		for _, o := range v.members {
			if sc.bwObjs.Visit(int(o)) {
				sc.objList = append(sc.objList, o)
			}
		}
		if v.start <= iv.Lo {
			// The run reaches back to the interval start: its predecessors
			// end before iv.Lo and cannot pick the item up in time.
			continue
		}
		for _, e := range v.in {
			if sc.nodes.Visit(int(e.node)) {
				sc.queue.PushBack(entry{e.node, e.part})
			}
		}
	}
	return nil
}

// departureCollect is collectBackward tracking latest departures: for every
// deliverer it records, in sc.objTicks/sc.objList, the last tick at which the
// object can still pick the item up and have it reach a seed by iv.Hi. DN1
// in-edges come from exactly adjacent runs, so a non-seed run reached over
// *any* backward path is departed at its span end (the one tick its
// component can hand carriers to the next instant); only seed runs depart
// later, at iv.Hi. Every visited run therefore has a single fixed departure
// tick — a plain visited set suffices, no re-queueing on improvement — and
// an object's latest departure is the maximum over the visited runs that
// contain it, mirroring arrivalCollect's earliest-arrival argument.
func departureCollect(ctx context.Context, g graphAccess, sc *scratch, starts []entry, iv contact.Interval) error {
	for _, e := range starts {
		if e.node == dn.Invalid {
			continue
		}
		if sc.nodes.Visit(int(e.node)) {
			sc.bwQueue.PushBack(tickItem{e, iv.Hi})
		}
	}
	for sc.bwQueue.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		it, _ := sc.bwQueue.PopFront()
		sc.visits++
		v, err := g.vertex(it.e.node, it.e.part)
		if err != nil {
			return err
		}
		for _, o := range v.members {
			if prev, ok := sc.objTicks.Get(int(o)); !ok || int32(it.t) > prev {
				sc.objTicks.Set(int(o), int32(it.t))
				if !ok {
					sc.objList = append(sc.objList, o)
				}
			}
		}
		if v.start <= iv.Lo {
			continue
		}
		dep := v.start - 1 // predecessors are adjacent runs ending this tick
		for _, e := range v.in {
			if sc.nodes.Visit(int(e.node)) {
				sc.bwQueue.PushBack(tickItem{entry{e.node, e.part}, dep})
			}
		}
	}
	return nil
}

// boundary mirrors dn.Graph.Boundary on a decoded record: the departure
// time of v's level-L long edges.
func boundary(v *vertexRec, L int) (trajectory.Tick, bool) {
	ta := v.end - v.end%trajectory.Tick(L)
	if ta < v.start {
		return 0, false
	}
	return ta, true
}

// revBoundaryOf mirrors dn.Graph.RevBoundary on a decoded record.
func revBoundaryOf(v *vertexRec, L int, numTicks int) (trajectory.Tick, bool) {
	last := trajectory.Tick(numTicks - 1)
	m := (last - v.start) - (last-v.start)%trajectory.Tick(L)
	tb := last - m
	if tb > v.end {
		return 0, false
	}
	if int(tb) < L {
		return 0, false
	}
	return tb, true
}
