package reachgrid

import (
	"errors"
	"testing"

	"streach/internal/contact"
	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/trajectory"
)

// TestCorruptedStoreSurfacesError flips bytes across the store and checks
// that queries touching the damage report ErrCorruptBlob instead of
// returning wrong answers or panicking.
func TestCorruptedStoreSurfacesError(t *testing.T) {
	d := testDataset(t, 40, 200, 51)
	ix := buildIndex(t, d, Params{PoolPages: -1}) // disable caching: damage must be seen
	work := queries.RandomWorkload(queries.WorkloadConfig{
		NumObjects: d.NumObjects(), NumTicks: d.NumTicks(),
		Count: 30, MinLen: 50, MaxLen: 150, Seed: 53,
	})
	// Corrupt every 7th page.
	var corrupted int
	for p := int64(0); p < ix.Store().NumPages(); p += 7 {
		if err := ix.Store().CorruptPage(p, 13); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no pages corrupted")
	}
	var failures int
	for _, q := range work {
		_, err := ix.Reach(q)
		if err != nil {
			if !errors.Is(err, pagefile.ErrCorruptBlob) {
				t.Fatalf("%v: unexpected error type: %v", q, err)
			}
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("no query hit a corrupted page; corruption pattern too sparse for the test")
	}
	t.Logf("%d/%d queries surfaced corruption", failures, len(work))
}

// TestSPJCorruptionSurfaces does the same through the SPJ path, which reads
// every cell and must therefore always hit the damage.
func TestSPJCorruptionSurfaces(t *testing.T) {
	d := testDataset(t, 30, 120, 57)
	ix := buildIndex(t, d, Params{PoolPages: -1})
	if err := ix.Store().CorruptPage(ix.Store().NumPages()/2, 99); err != nil {
		t.Fatal(err)
	}
	q := queries.Query{Src: 0, Dst: 5, Interval: contact.Interval{Lo: 0, Hi: trajectory.Tick(d.NumTicks() - 1)}}
	if _, err := ix.SPJReach(q); !errors.Is(err, pagefile.ErrCorruptBlob) {
		t.Fatalf("SPJ over corrupted store: err = %v, want ErrCorruptBlob", err)
	}
}
