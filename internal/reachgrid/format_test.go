package reachgrid

import (
	"context"
	"testing"

	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/trajectory"
)

// TestPageFormatsAgree builds the grid in both on-page formats and checks
// guided expansion, SPJ and the set primitive answer identically — the
// layer-level half of the cross-backend dual-format conformance. Position
// reconstruction under the prediction-XOR codec must be bit-exact, so the
// two indexes are interchangeable to the instant.
func TestPageFormatsAgree(t *testing.T) {
	d := testDataset(t, 40, 300, 71)
	fixed := buildIndex(t, d, Params{Format: pagefile.FormatFixed})
	varint := buildIndex(t, d, Params{Format: pagefile.FormatVarint})
	if fixed.Format() != pagefile.FormatFixed || varint.Format() != pagefile.FormatVarint {
		t.Fatalf("formats not preserved: %v, %v", fixed.Format(), varint.Format())
	}

	work := queries.RandomWorkload(queries.WorkloadConfig{
		NumObjects: d.NumObjects(), NumTicks: d.NumTicks(),
		Count: 60, MinLen: 10, MaxLen: 200, Seed: 13,
	})
	for _, q := range work {
		a, err := fixed.Reach(q)
		if err != nil {
			t.Fatalf("fixed %v: %v", q, err)
		}
		b, err := varint.Reach(q)
		if err != nil {
			t.Fatalf("varint %v: %v", q, err)
		}
		if a != b {
			t.Fatalf("%v: fixed=%v varint=%v", q, a, b)
		}
		an, err := fixed.SPJReach(q)
		if err != nil {
			t.Fatalf("fixed spj %v: %v", q, err)
		}
		bn, err := varint.SPJReach(q)
		if err != nil {
			t.Fatalf("varint spj %v: %v", q, err)
		}
		if an != a || bn != b {
			t.Fatalf("%v: spj disagrees (fixed %v/%v, varint %v/%v)", q, a, an, b, bn)
		}
	}

	ctx := context.Background()
	for src := trajectory.ObjectID(0); src < 10; src++ {
		iv := work[src].Interval
		a, _, err := fixed.ReachableSetFrom(ctx, []trajectory.ObjectID{src}, iv, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := varint.ReachableSetFrom(ctx, []trajectory.ObjectID{src}, iv, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("src %d: set sizes differ (%d vs %d)", src, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("src %d: sets differ at %d (%v vs %v)", src, i, a[i], b[i])
			}
		}
	}
}

// TestVarintFormatShrinksIndex pins the compression claim for the grid:
// the prediction-XOR position codec plus delta postings must cut the page
// footprint by at least a quarter.
func TestVarintFormatShrinksIndex(t *testing.T) {
	d := testDataset(t, 60, 400, 29)
	fixed := buildIndex(t, d, Params{Format: pagefile.FormatFixed})
	varint := buildIndex(t, d, Params{Format: pagefile.FormatVarint})
	fp, vp := fixed.Store().NumPages(), varint.Store().NumPages()
	if vp*4 > fp*3 {
		t.Fatalf("varint layout saved too little: %d pages vs %d fixed", vp, fp)
	}
	t.Logf("pages: fixed %d, varint %d (%.0f%%)", fp, vp, 100*float64(vp)/float64(fp))
}
