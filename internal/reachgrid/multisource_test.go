package reachgrid

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"streach/internal/contact"
	"streach/internal/queries"
	"streach/internal/trajectory"
)

// TestMultiSourceMatchesOracle checks the multi-seed guided expansion
// against the oracle's multi-source propagation — the contract the
// cross-segment planner depends on.
func TestMultiSourceMatchesOracle(t *testing.T) {
	d := testDataset(t, 35, 220, 17)
	ix := buildIndex(t, d, Params{})
	oracle := queries.NewOracle(contact.Extract(d))
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	var positives int
	for trial := 0; trial < 40; trial++ {
		seeds := make([]trajectory.ObjectID, 1+rng.Intn(5))
		for i := range seeds {
			seeds[i] = trajectory.ObjectID(rng.Intn(d.NumObjects()))
		}
		dst := trajectory.ObjectID(rng.Intn(d.NumObjects()))
		lo := trajectory.Tick(rng.Intn(d.NumTicks() - 60))
		iv := contact.Interval{Lo: lo, Hi: lo + trajectory.Tick(20+rng.Intn(100))}

		wantSet := oracle.ReachableSetFrom(seeds, iv)
		gotSet, _, err := ix.ReachableSetFrom(ctx, seeds, iv, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotSet) != len(wantSet) {
			t.Fatalf("set from %v over %v: got %v, want %v", seeds, iv, gotSet, wantSet)
		}
		for i := range gotSet {
			if gotSet[i] != wantSet[i] {
				t.Fatalf("set from %v over %v: got %v, want %v", seeds, iv, gotSet, wantSet)
			}
		}

		wantReach, _ := oracle.ReachableFromCounted(seeds, dst, iv)
		if wantReach {
			positives++
		}
		got, _, err := ix.ReachFromCounted(ctx, seeds, dst, iv, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != wantReach {
			t.Fatalf("reach from %v to %d over %v: got %v, want %v", seeds, dst, iv, got, wantReach)
		}
	}
	if positives == 0 {
		t.Fatal("degenerate workload: no positive multi-source queries")
	}
}

// TestCancelledContextStopsSweep feeds an already-cancelled context to the
// guided expansion and the SPJ pipeline: both observe ctx inside their
// instant loops and must return ctx.Err() promptly.
func TestCancelledContextStopsSweep(t *testing.T) {
	d := testDataset(t, 30, 200, 8)
	ix := buildIndex(t, d, Params{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := queries.Query{Src: 0, Dst: 1, Interval: contact.Interval{Lo: 0, Hi: 180}}
	if _, _, err := ix.ReachCounted(ctx, q, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("ReachCounted: got %v, want context.Canceled", err)
	}
	if _, _, err := ix.SPJReachCounted(ctx, q, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("SPJReachCounted: got %v, want context.Canceled", err)
	}
	if _, _, err := ix.ReachableSetFrom(ctx, []trajectory.ObjectID{0}, q.Interval, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("ReachableSetFrom: got %v, want context.Canceled", err)
	}
}
