// Package reachgrid implements the ReachGrid index of §4: a spatiotemporal
// grid over trajectory segments that supports reachability queries by a
// guided, incremental expansion of the contact network.
//
// Layout (§4.1). The time domain is partitioned into buckets of BucketTicks
// instants (the temporal grid T1…Tn); within each bucket a uniform spatial
// grid of CellSize-wide cells partitions the trajectory segments. A cell
// blob stores the full bucket segment of every object that has at least one
// sample inside the cell during the bucket, with positions in timestamp
// order. Blobs are appended bucket by bucket and, within a bucket, in cell
// order — cells of Ci precede cells of Cj for i < j, the placement rule the
// paper derives from early query termination. A per-bucket object directory
// (the paper's external hash table) maps each object to its cell at the
// bucket start so the query source can be located in O(1) page reads.
//
// Every blob begins with a pagefile.Format byte. The default varint-delta
// format stores object postings as deltas and positions under a linear
// extrapolation predictor (bits XOR prediction, uvarint): trajectory
// samples between waypoints are near-linear, so most samples collapse to a
// few bytes while reconstruction stays bit-exact. Fixed-width v1 pages
// remain decodable.
//
// Query processing (§4.2, Algorithm 1). The seed set starts as {source}.
// Sweeping the query interval bucket by bucket, the processor loads the
// cells containing the seeds, prefetches the "potential seed cells" — cells
// within dT of the minimum bounding rectangles of the seeds' remaining
// segments — and joins the buffered segments instant by instant. Objects
// joining a seed's connected component become seeds immediately (the
// recursive restart at t′ of §4.2); the sweep stops as soon as the
// destination is infected. Cells are buffered for the duration of a bucket
// and discarded at its end. All sweep state — seed sets, buffered
// segments, join buffers, the union-find — is pooled per-query scratch of
// epoch-stamped arrays (internal/visit), so steady-state queries reuse it
// wholesale.
package reachgrid

import (
	"context"
	"errors"
	"fmt"

	"streach/internal/contact"
	"streach/internal/geo"
	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
	"streach/internal/visit"
)

// Params configures index construction.
type Params struct {
	// CellSize is the spatial resolution RS: the side length of a grid
	// cell, in the dataset's length unit. Defaults to 1/8 of the
	// environment width.
	CellSize float64
	// BucketTicks is the temporal resolution RT: the number of instants
	// per time bucket. Defaults to 20, the paper's empirical optimum.
	BucketTicks int
	// PoolPages sizes the store's private LRU buffer pool. Defaults to 64
	// pages; negative disables caching. Ignored when Pool is set.
	PoolPages int
	// Pool, when non-nil, is a buffer pool shared with other indexes over
	// the same dataset: all readers draw on one page budget.
	Pool *pagefile.BufferPool
	// Format selects the on-page record layout; zero means the default
	// (pagefile.FormatVarint). Both formats answer queries identically.
	Format pagefile.Format
}

func (p *Params) applyDefaults(env geo.Rect) {
	if p.CellSize <= 0 {
		p.CellSize = env.Width() / 8
	}
	if p.BucketTicks <= 0 {
		p.BucketTicks = 20
	}
	if p.PoolPages == 0 {
		p.PoolPages = 64
	}
	p.Format = pagefile.NormalizeFormat(p.Format)
}

// dirEntriesPerBlob is the number of object→cell entries per directory
// blob; 1000 int32 entries plus the blob header fit one 4 KiB page.
const dirEntriesPerBlob = 1000

// bucketMeta locates one time bucket's blobs on the store.
type bucketMeta struct {
	span     contact.Interval
	cellRefs []pagefile.BlobRef // indexed by cell ID; Null ⇒ empty cell
	dirRefs  []pagefile.BlobRef // object directory, chunks of dirEntriesPerBlob
}

// Index is a disk-resident ReachGrid. The in-memory part is only the blob
// catalogue (a few bytes per cell); all trajectory data lives on the
// simulated store and is charged to the per-query accountant when read.
// The catalogue is immutable after Build, so queries are safe to evaluate
// fully in parallel.
type Index struct {
	params     Params
	store      *pagefile.Store
	grid       geo.Grid
	numObjects int
	numTicks   int
	dT         float64
	buckets    []bucketMeta

	pool *visit.Pool[gridScratch] // per-query sweep scratch
}

// Build constructs the ReachGrid of dataset d.
func Build(d *trajectory.Dataset, params Params) (*Index, error) {
	params.applyDefaults(d.Env)
	if d.NumObjects() == 0 || d.NumTicks() == 0 {
		return nil, errors.New("reachgrid: empty dataset")
	}
	ix := &Index{
		params:     params,
		store:      pagefile.NewStoreWith(params.Pool, params.PoolPages),
		grid:       geo.NewGrid(d.Env, params.CellSize),
		numObjects: d.NumObjects(),
		numTicks:   d.NumTicks(),
		dT:         d.ContactDist,
		pool:       visit.NewPool(func() *gridScratch { return new(gridScratch) }),
	}
	numCells := ix.grid.NumCells()
	enc := pagefile.NewEncoder(4096)
	cellObjs := make([][]trajectory.ObjectID, numCells) // objects per cell, this bucket
	touched := make([]int, 0, 64)
	seen := make(map[int]bool, 16)

	for lo := trajectory.Tick(0); int(lo) < ix.numTicks; lo += trajectory.Tick(params.BucketTicks) {
		hi := lo + trajectory.Tick(params.BucketTicks) - 1
		if int(hi) >= ix.numTicks {
			hi = trajectory.Tick(ix.numTicks - 1)
		}
		meta := bucketMeta{
			span:     contact.Interval{Lo: lo, Hi: hi},
			cellRefs: make([]pagefile.BlobRef, numCells),
		}
		dir := make([]int32, ix.numObjects)

		for i := range d.Trajs {
			tr := &d.Trajs[i]
			o := tr.Object
			dir[o] = int32(ix.grid.CellID(tr.AtClamped(lo)))
			seg := tr.Slice(lo, hi)
			for k := range seen {
				delete(seen, k)
			}
			for _, p := range seg.Pos {
				id := ix.grid.CellID(p)
				if !seen[id] {
					seen[id] = true
					if len(cellObjs[id]) == 0 {
						touched = append(touched, id)
					}
					cellObjs[id] = append(cellObjs[id], o)
				}
			}
		}
		// Directory chunks precede the bucket's cells: the guided sweep
		// always resolves directory entries first, so placing them at the
		// head of the bucket region lets a query flow from the lookup into
		// the ascending cell reads as one sequential run.
		for off := 0; off < len(dir); off += dirEntriesPerBlob {
			end := off + dirEntriesPerBlob
			if end > len(dir) {
				end = len(dir)
			}
			enc.Reset()
			enc.Format(params.Format)
			if params.Format == pagefile.FormatFixed {
				enc.Int32Slice(dir[off:end])
			} else {
				enc.Int32SliceDelta(dir[off:end])
			}
			meta.dirRefs = append(meta.dirRefs, ix.store.AppendBlob(enc.Bytes()))
		}
		// Write cells in ascending cell-ID order for a deterministic,
		// locality-friendly layout.
		sortInts(touched)
		for _, id := range touched {
			enc.Reset()
			enc.Format(params.Format)
			switch params.Format {
			case pagefile.FormatFixed:
				enc.Uint32(uint32(len(cellObjs[id])))
				for _, o := range cellObjs[id] {
					seg := d.Trajs[o].Slice(lo, hi)
					enc.Int32(int32(o))
					enc.Int32(int32(seg.Start))
					enc.Uint32(uint32(len(seg.Pos)))
					for _, p := range seg.Pos {
						enc.Float64(p.X)
						enc.Float64(p.Y)
					}
				}
			default:
				enc.Uvarint(uint64(len(cellObjs[id])))
				prevObj := int64(0)
				for _, o := range cellObjs[id] { // object IDs ascend: small deltas
					seg := d.Trajs[o].Slice(lo, hi)
					enc.Varint(int64(o) - prevObj)
					prevObj = int64(o)
					enc.Uvarint(uint64(seg.Start))
					enc.Uvarint(uint64(len(seg.Pos)))
					encodePositions(enc, seg.Pos)
				}
			}
			meta.cellRefs[id] = ix.store.AppendBlob(enc.Bytes())
			cellObjs[id] = cellObjs[id][:0]
		}
		touched = touched[:0]
		ix.buckets = append(ix.buckets, meta)
	}
	return ix, nil
}

// encodePositions writes a timestamp-ordered sample run under the linear
// extrapolation predictor: the first point is stored verbatim, the second
// against the first, and every later point against 2*prev - prev2 per
// coordinate. Between waypoints trajectories are linear, so the XOR
// residual is a few noise bits and the uvarint stays short; the decoder
// runs the same predictor over already-decoded values, making the round
// trip bit-exact for arbitrary inputs.
func encodePositions(enc *pagefile.Encoder, pos []geo.Point) {
	var px1, py1, px2, py2 float64
	for k, p := range pos {
		switch k {
		case 0:
			enc.Float64(p.X)
			enc.Float64(p.Y)
		case 1:
			enc.Float64Xor(px1, p.X)
			enc.Float64Xor(py1, p.Y)
		default:
			enc.Float64Xor(2*px1-px2, p.X)
			enc.Float64Xor(2*py1-py2, p.Y)
		}
		px2, py2 = px1, py1
		px1, py1 = p.X, p.Y
	}
}

// decodePositions reads cnt predictor-encoded samples; when keep is nil the
// run is decoded and dropped (duplicate objects spanning several cells).
func decodePositions(dec *pagefile.Decoder, cnt int, keep []geo.Point) {
	var px1, py1, px2, py2 float64
	for k := 0; k < cnt; k++ {
		var x, y float64
		switch k {
		case 0:
			x = dec.Float64()
			y = dec.Float64()
		case 1:
			x = dec.Float64Xor(px1)
			y = dec.Float64Xor(py1)
		default:
			x = dec.Float64Xor(2*px1 - px2)
			y = dec.Float64Xor(2*py1 - py2)
		}
		if keep != nil {
			keep[k] = geo.Point{X: x, Y: y}
		}
		px2, py2 = px1, py1
		px1, py1 = x, y
	}
}

// Store exposes the underlying simulated disk (for size and placement
// inspection).
func (ix *Index) Store() *pagefile.Store { return ix.store }

// Format returns the on-page record layout the index was built with.
func (ix *Index) Format() pagefile.Format { return ix.params.Format }

// Counters returns the store's cumulative I/O totals; per-query accountants
// passed to the query methods sum to consecutive Counters differences.
func (ix *Index) Counters() pagefile.Stats { return ix.store.Counters() }

// ResetCounters zeroes the cumulative totals.
func (ix *Index) ResetCounters() { ix.store.ResetCounters() }

// Grid returns the spatial grid geometry.
func (ix *Index) Grid() geo.Grid { return ix.grid }

// NumBuckets returns the number of temporal buckets.
func (ix *Index) NumBuckets() int { return len(ix.buckets) }

// bucketOf returns the bucket index containing tick t.
func (ix *Index) bucketOf(t trajectory.Tick) int { return int(t) / ix.params.BucketTicks }

// clampInterval intersects iv with the index's time domain.
func (ix *Index) clampInterval(iv contact.Interval) contact.Interval {
	return iv.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(ix.numTicks - 1)})
}

// validateQuery rejects object IDs outside the dataset.
func (ix *Index) validateQuery(q queries.Query) error {
	if int(q.Src) < 0 || int(q.Src) >= ix.numObjects {
		return fmt.Errorf("reachgrid: source %d outside [0, %d)", q.Src, ix.numObjects)
	}
	if int(q.Dst) < 0 || int(q.Dst) >= ix.numObjects {
		return fmt.Errorf("reachgrid: destination %d outside [0, %d)", q.Dst, ix.numObjects)
	}
	return nil
}

// Reach answers the reachability query q : Src ⤳ Dst over q.Interval using
// the guided expansion of Algorithm 1. I/O is charged to the store's
// cumulative Counters through a query-scoped accountant (so sequential
// runs spanning blob reads are classified as in the paper's cost model).
func (ix *Index) Reach(q queries.Query) (bool, error) {
	var acct pagefile.Stats
	ok, _, err := ix.ReachCounted(context.Background(), q, &acct)
	return ok, err
}

// ReachCounted is Reach plus the number of objects the guided expansion
// infected (src included) before terminating — the frontier size the facade
// surfaces per query. Page reads are charged to acct (which may be nil) in
// addition to the store's cumulative counters; passing one accountant per
// query keeps evaluation safe to run fully in parallel. The context is
// observed inside the expansion loop (once per instant), so a cancelled
// query returns ctx.Err() promptly instead of sweeping on.
func (ix *Index) ReachCounted(ctx context.Context, q queries.Query, acct *pagefile.Stats) (bool, int, error) {
	if err := ix.validateQuery(q); err != nil {
		return false, 0, err
	}
	return ix.ReachFromCounted(ctx, []trajectory.ObjectID{q.Src}, q.Dst, q.Interval, acct)
}

// ReachFromCounted is the multi-source point query: can an item held by any
// of the seeds at the interval start reach dst by its end? It is the
// frontier entry point of the cross-segment planner — the reachable set of
// one time slab seeds the sweep of the next. Seeds must be valid object
// IDs; the expansion counter includes the seeds.
func (ix *Index) ReachFromCounted(ctx context.Context, seeds []trajectory.ObjectID, dst trajectory.ObjectID, iv contact.Interval, acct *pagefile.Stats) (bool, int, error) {
	if int(dst) < 0 || int(dst) >= ix.numObjects {
		return false, 0, fmt.Errorf("reachgrid: destination %d outside [0, %d)", dst, ix.numObjects)
	}
	iv = ix.clampInterval(iv)
	if iv.Len() == 0 {
		return false, 0, nil
	}
	for _, s := range seeds {
		if s == dst {
			return true, len(seeds), nil
		}
	}
	reached := false
	expanded := len(seeds)
	err := ix.sweep(ctx, seeds, iv, acct, func(o trajectory.ObjectID) bool {
		expanded++
		if o == dst {
			reached = true
			return false
		}
		return true
	})
	return reached, expanded, err
}

// ReachableSet returns every object reachable from src during iv (including
// src), sorted ascending — the batch primitive behind the paper's epidemic
// and watch-list scenarios. The expansion is still guided: only cells near
// the growing seed set are read. Page reads are charged to acct (which may
// be nil).
func (ix *Index) ReachableSet(ctx context.Context, src trajectory.ObjectID, iv contact.Interval, acct *pagefile.Stats) ([]trajectory.ObjectID, error) {
	out, _, err := ix.ReachableSetFrom(ctx, []trajectory.ObjectID{src}, iv, acct)
	return out, err
}

// ReachableSetFrom returns every object reachable from any seed during iv
// (seeds included when the interval overlaps the time domain), sorted
// ascending, plus the expansion counter.
func (ix *Index) ReachableSetFrom(ctx context.Context, seeds []trajectory.ObjectID, iv contact.Interval, acct *pagefile.Stats) ([]trajectory.ObjectID, int, error) {
	out, n, err := ix.AppendReachableSetFrom(ctx, nil, seeds, iv, acct)
	if err != nil {
		return nil, n, err
	}
	return out, n, nil
}

// AppendReachableSetFrom is ReachableSetFrom appending onto dst (whose
// backing array is reused) — the allocation-free variant the cross-segment
// planner carries its frontier with. Only the appended tail is sorted and
// deduplicated.
func (ix *Index) AppendReachableSetFrom(ctx context.Context, dst, seeds []trajectory.ObjectID, iv contact.Interval, acct *pagefile.Stats) ([]trajectory.ObjectID, int, error) {
	iv = ix.clampInterval(iv)
	if iv.Len() == 0 {
		return dst, 0, nil
	}
	base := len(dst)
	dst = append(dst, seeds...)
	err := ix.sweep(ctx, seeds, iv, acct, func(o trajectory.ObjectID) bool {
		dst = append(dst, o)
		return true
	})
	if err != nil {
		return dst[:base], len(dst) - base, err
	}
	tail := trajectory.SortDedupObjects(dst[base:])
	dst = dst[:base+len(tail)]
	return dst, len(tail), nil
}

// gridScratch is the pooled per-query working state of the sweep: the
// seed set, the per-bucket buffered cells and segments, the join and
// union-find buffers. Epoch-stamped arrays make per-bucket resets O(1);
// the joiner's hash buckets persist across queries.
type gridScratch struct {
	seeds     visit.Set // infected objects
	seedList  []trajectory.ObjectID
	loaded    visit.Set                       // cells buffered this bucket
	segs      visit.Table[trajectory.Segment] // object → buffered segment
	segObjs   []trajectory.ObjectID           // objects buffered this bucket
	pts       []geo.Point
	ids       []trajectory.ObjectID
	pending   []int
	fresh     []trajectory.ObjectID
	uf        unionFind
	seedRoots visit.Set
	joiner    *stjoin.Joiner

	// Semantic-sweep state (AppendSemProfileFrom): hop counts, arrivals,
	// the reached-object list and the per-instant pair buffers of the
	// relaxation. Untouched by the boolean sweep.
	hops         visit.Ticks
	arrTicks     visit.Ticks
	reached      []trajectory.ObjectID
	pairA, pairB []trajectory.ObjectID
	deferred     []queries.SeedState   // seeds activating after iv.Lo
	activated    []trajectory.ObjectID // seeds activated this instant

	posPage int64 // disk page just past the last blob read; -1 unknown
	posCell int   // first cell of the current bucket at or past posPage
}

// reset prepares the scratch for one query; the joiner is built lazily the
// first time a scratch serves this index (env and dT are per-index
// constants, and pools are per-index, so a pooled joiner always matches).
func (sc *gridScratch) reset(ix *Index) {
	sc.seeds.Reset(ix.numObjects)
	sc.seedList = sc.seedList[:0]
	sc.uf.ensure(ix.numObjects)
	sc.posPage, sc.posCell = -1, 0
	if sc.joiner == nil {
		sc.joiner = stjoin.NewJoiner(ix.grid.Env(), ix.dT)
	}
}

// resetBucket discards the previous bucket's buffered cells and segments.
// The disk position survives — it is physical, and the next bucket's blobs
// follow the current one's on disk.
func (sc *gridScratch) resetBucket(numObjects, numCells int) {
	sc.loaded.Reset(numCells)
	sc.segs.Reset(numObjects)
	sc.segObjs = sc.segObjs[:0]
	sc.posCell = 0
}

// sweep runs Algorithm 1 from the given seed set, invoking onInfect for
// every object that becomes reachable from a seed (seeds excluded).
// onInfect returning false terminates the sweep early (the paper's
// termination on discovering the destination). All state lives in one
// pooled scratch; page reads are charged to acct. The context is observed
// once per instant.
func (ix *Index) sweep(ctx context.Context, initial []trajectory.ObjectID, iv contact.Interval, acct *pagefile.Stats, onInfect func(trajectory.ObjectID) bool) error {
	if acct == nil {
		// Position tracking (read-through) needs a stream accountant even
		// when the caller does not care about the counts.
		acct = &pagefile.Stats{}
	}
	sc := ix.pool.Get()
	defer ix.pool.Put(sc)
	sc.reset(ix)
	for _, s := range initial {
		if int(s) < 0 || int(s) >= ix.numObjects {
			return fmt.Errorf("reachgrid: seed %d outside [0, %d)", s, ix.numObjects)
		}
		if sc.seeds.Visit(int(s)) {
			sc.seedList = append(sc.seedList, s)
		}
	}

	prevBi := -1
	for bi := ix.bucketOf(iv.Lo); bi <= ix.bucketOf(iv.Hi) && bi < len(ix.buckets); bi++ {
		w := ix.buckets[bi].span.Intersect(iv)
		if w.Len() == 0 {
			continue
		}
		if prevBi >= 0 {
			ix.bridgeBuckets(prevBi, bi, sc, acct)
		}
		prevBi = bi
		sc.resetBucket(ix.numObjects, ix.grid.NumCells())
		// Locate and load the cells of the current seeds (C_{S_i}), then
		// prefetch the potential-seed cells N_i around their MBRs.
		if err := ix.admitSeeds(bi, sc, sc.seedList, w.Lo, w.Hi, acct); err != nil {
			return err
		}
		for t := w.Lo; t <= w.Hi; t++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			// Fixpoint per instant: a new seed at t can infect further
			// objects at the same instant once its cells are loaded
			// (the recursive restart at t′ in §4.2).
			for {
				fresh := ix.infectAt(sc, t)
				if len(fresh) == 0 {
					break
				}
				for _, o := range fresh {
					sc.seedList = append(sc.seedList, o)
					if !onInfect(o) {
						return nil
					}
				}
				if err := ix.admitSeeds(bi, sc, fresh, t, w.Hi, acct); err != nil {
					return err
				}
			}
		}
		// Cells buffered during Ti are discarded at the end of Ti.
	}
	return nil
}

// admitSeeds loads, for every object in objs, the cell containing it at the
// bucket start (via the object directory) and all cells within dT of the
// MBR of its segment over [cur, hi]. Loads happen in two sorted batches —
// first the directory cells of the whole batch, then the neighbourhood
// cells around their MBRs — so directory lookups never interleave with
// cell reads and contiguous cell runs stay sequential on disk.
func (ix *Index) admitSeeds(bi int, sc *gridScratch, objs []trajectory.ObjectID, cur, hi trajectory.Tick, acct *pagefile.Stats) error {
	sc.pending = sc.pending[:0]
	for _, o := range objs {
		if _, ok := sc.segs.Get(int(o)); !ok {
			cell, err := ix.dirLookup(bi, o, sc, acct)
			if err != nil {
				return err
			}
			if cell < 0 || cell >= len(ix.buckets[bi].cellRefs) {
				return fmt.Errorf("reachgrid: directory of bucket %d names cell %d outside [0, %d)", bi, cell, len(ix.buckets[bi].cellRefs))
			}
			sc.pending = append(sc.pending, cell)
		}
	}
	if err := ix.loadCells(bi, sc, acct); err != nil {
		return err
	}
	sc.pending = sc.pending[:0]
	for _, o := range objs {
		seg, ok := sc.segs.Get(int(o))
		if !ok {
			// The directory pointed at a cell that does not contain the
			// object's segment; the layout guarantees this cannot happen.
			return fmt.Errorf("reachgrid: object %d missing from its directory cell in bucket %d", o, bi)
		}
		mbr := segMBR(seg, cur, hi).Expand(ix.dT)
		sc.pending = ix.grid.CellsIntersecting(mbr, sc.pending)
	}
	return ix.loadCells(bi, sc, acct)
}

// readThroughPages is the break-even seek distance: scanning a gap of up
// to SeqCostRatio pages sequentially costs as much as the one random
// access a seek past it would (§6's 1:20 sequential:random cost model),
// and keeping the arm in its run lets the following reads stay sequential
// too — so gaps up to twice the break-even are still worth scanning.
const readThroughPages = 2 * pagefile.SeqCostRatio

// loadCells loads sc.pending in ascending cell order, reading *through*
// small on-disk gaps: when the next wanted blob starts fewer than
// readThroughPages past the sweep's current disk position, the unread
// cells in between (placed in cell order within the bucket) are loaded
// too, turning a seek into a cheaper sequential scan. Extra buffered cells
// never change the sweep's answer — the per-instant fixpoint makes the
// infection set independent of which additional cells are resident — they
// only trade random for sequential I/O.
func (ix *Index) loadCells(bi int, sc *gridScratch, acct *pagefile.Stats) error {
	sortInts(sc.pending)
	refs := ix.buckets[bi].cellRefs
	for _, id := range sc.pending {
		if id >= sc.posCell && !refs[id].Null() && sc.posPage >= 0 &&
			refs[id].Page >= sc.posPage && refs[id].Page-sc.posPage <= readThroughPages {
			for g := sc.posCell; g < id; g++ {
				if err := ix.loadCell(bi, g, sc, acct); err != nil {
					return err
				}
			}
		}
		if err := ix.loadCell(bi, id, sc, acct); err != nil {
			return err
		}
	}
	return nil
}

// bridgeBuckets scans the disk arm across the trailing, unread cells of
// bucket prev when the next bucket's directory is close enough that the
// sequential scan beats the seek. The bytes are discarded — only the arm
// position matters — so read errors in the bridged region are ignored: a
// query must not fail on pages it does not need.
func (ix *Index) bridgeBuckets(prev, next int, sc *gridScratch, acct *pagefile.Stats) {
	if sc.posPage < 0 || len(ix.buckets[next].dirRefs) == 0 {
		return
	}
	target := ix.buckets[next].dirRefs[0].Page
	if target < sc.posPage || target-sc.posPage > readThroughPages {
		return
	}
	refs := ix.buckets[prev].cellRefs
	for g := sc.posCell; g < len(refs); g++ {
		if refs[g].Null() || refs[g].Page < sc.posPage {
			continue
		}
		before, beforeOK := acct.Position()
		if _, err := ix.store.ReadBlob(refs[g], acct); err != nil {
			sc.posPage = -1 // arm position unknown after a failed read
			return
		}
		sc.advancePos(acct, before, beforeOK, g+1)
	}
}

// advancePos syncs the sweep's view of the disk arm with the accountant
// after a blob read, with (before, beforeOK) the accountant position
// snapshotted just before the read and nextCell the first cell of the
// current bucket at or beyond the blob. Only a read that actually moved
// the arm is adopted: a read served entirely by the buffer pool leaves
// the position where it was — crucially, an accountant threaded across
// the per-slab stores of a segmented engine may still carry another
// store's page position, which must not leak into this store's
// read-through decisions.
func (sc *gridScratch) advancePos(acct *pagefile.Stats, before int64, beforeOK bool, nextCell int) {
	after, ok := acct.Position()
	if !ok || (beforeOK && after == before) {
		return
	}
	sc.posPage = after
	sc.posCell = nextCell
}

// infectAt joins the buffered segments at instant t and merges connected
// components; every object in a component that contains a seed becomes a
// seed. It returns the newly infected objects (valid until the next call).
func (ix *Index) infectAt(sc *gridScratch, t trajectory.Tick) []trajectory.ObjectID {
	sc.pts, sc.ids, sc.fresh = sc.pts[:0], sc.ids[:0], sc.fresh[:0]
	for _, o := range sc.segObjs {
		seg, _ := sc.segs.Get(int(o))
		if seg.Covers(t) {
			sc.pts = append(sc.pts, seg.At(t))
			sc.ids = append(sc.ids, o)
		}
	}
	if len(sc.pts) < 2 {
		return nil
	}
	sc.uf.reset(sc.ids)
	sc.joiner.Join(sc.pts, func(a, b int) bool {
		sc.uf.union(int32(sc.ids[a]), int32(sc.ids[b]))
		return true
	})
	sc.seedRoots.Reset(ix.numObjects)
	for _, o := range sc.ids {
		if sc.seeds.Has(int(o)) {
			sc.seedRoots.Visit(int(sc.uf.find(int32(o))))
		}
	}
	for _, o := range sc.ids {
		if !sc.seeds.Has(int(o)) && sc.seedRoots.Has(int(sc.uf.find(int32(o)))) {
			sc.seeds.Visit(int(o))
			sc.fresh = append(sc.fresh, o)
		}
	}
	return sc.fresh
}

// loadCell reads a cell blob (if present and not yet buffered) and registers
// its segments.
func (ix *Index) loadCell(bi, cell int, sc *gridScratch, acct *pagefile.Stats) error {
	if cell < 0 || cell >= len(ix.buckets[bi].cellRefs) {
		return fmt.Errorf("reachgrid: no cell %d in bucket %d", cell, bi)
	}
	if !sc.loaded.Visit(cell) {
		return nil
	}
	ref := ix.buckets[bi].cellRefs[cell]
	if ref.Null() {
		return nil
	}
	before, beforeOK := acct.Position()
	data, err := ix.store.ReadBlob(ref, acct)
	if err != nil {
		return fmt.Errorf("reachgrid: cell %d of bucket %d: %w", cell, bi, err)
	}
	sc.advancePos(acct, before, beforeOK, cell+1)
	dec := pagefile.NewDecoder(data)
	format := dec.Format()
	var n int
	if format == pagefile.FormatFixed {
		n = int(dec.Uint32())
	} else {
		n = int(dec.Uvarint())
	}
	if dec.Err() == nil && (n < 0 || n > dec.Remaining()+1) {
		dec.Failf("reachgrid: implausible object count %d with %d bytes left", n, dec.Remaining())
	}
	prevObj := int64(0)
	for i := 0; i < n && dec.Err() == nil; i++ {
		var o trajectory.ObjectID
		var start trajectory.Tick
		var cnt int
		if format == pagefile.FormatFixed {
			o = trajectory.ObjectID(dec.Int32())
			start = trajectory.Tick(dec.Int32())
			cnt = int(dec.Uint32())
		} else {
			prevObj += dec.Varint()
			o = trajectory.ObjectID(prevObj)
			start = trajectory.Tick(dec.Uvarint())
			cnt = int(dec.Uvarint())
		}
		if dec.Err() != nil {
			break
		}
		if int(o) < 0 || int(o) >= ix.numObjects {
			dec.Failf("reachgrid: cell names object %d outside [0, %d)", o, ix.numObjects)
			break
		}
		if cnt < 0 || cnt > ix.numTicks {
			dec.Failf("reachgrid: implausible sample count %d", cnt)
			break
		}
		if _, dup := sc.segs.Get(int(o)); dup {
			// The object was already decoded from another cell it spans;
			// skip its positions (the predictor stream must still be
			// consumed in the varint format).
			if format == pagefile.FormatFixed {
				dec.Skip(16 * cnt)
			} else {
				decodePositions(dec, cnt, nil)
			}
			continue
		}
		pos := make([]geo.Point, cnt)
		if format == pagefile.FormatFixed {
			for k := range pos {
				pos[k] = geo.Point{X: dec.Float64(), Y: dec.Float64()}
			}
		} else {
			decodePositions(dec, cnt, pos)
		}
		sc.segs.Set(int(o), trajectory.Segment{Object: o, Start: start, Pos: pos})
		sc.segObjs = append(sc.segObjs, o)
	}
	if err := dec.Err(); err != nil {
		return fmt.Errorf("reachgrid: cell %d of bucket %d: %w", cell, bi, err)
	}
	return nil
}

// dirLookup reads the object directory entry of o for bucket bi: the cell
// containing o at the bucket start (one page read, typically a buffer hit
// for subsequent seeds). The entry is extracted from the chunk without
// materializing it: direct offset arithmetic in the fixed format, a delta
// scan in the varint format.
func (ix *Index) dirLookup(bi int, o trajectory.ObjectID, sc *gridScratch, acct *pagefile.Stats) (int, error) {
	chunk := int(o) / dirEntriesPerBlob
	ref := ix.buckets[bi].dirRefs[chunk]
	before, beforeOK := acct.Position()
	data, err := ix.store.ReadBlob(ref, acct)
	if err != nil {
		return 0, fmt.Errorf("reachgrid: directory chunk %d of bucket %d: %w", chunk, bi, err)
	}
	sc.advancePos(acct, before, beforeOK, 0) // chunks precede the cells: the run starts here
	idx := int(o) % dirEntriesPerBlob
	dec := pagefile.NewDecoder(data)
	format := dec.Format()
	var cell int64
	if format == pagefile.FormatFixed {
		n := int(dec.Uint32())
		if dec.Err() == nil && idx >= n {
			return 0, fmt.Errorf("reachgrid: directory chunk %d of bucket %d truncated", chunk, bi)
		}
		dec.Skip(4 * idx)
		cell = int64(dec.Int32())
	} else {
		n := int(dec.Uvarint())
		if dec.Err() == nil && idx >= n {
			return 0, fmt.Errorf("reachgrid: directory chunk %d of bucket %d truncated", chunk, bi)
		}
		for i := 0; i <= idx && dec.Err() == nil; i++ {
			cell += dec.Varint()
		}
	}
	if err := dec.Err(); err != nil {
		return 0, err
	}
	return int(cell), nil
}

// segMBR returns the bounding rectangle of seg's samples within [lo, hi].
func segMBR(seg trajectory.Segment, lo, hi trajectory.Tick) geo.Rect {
	if lo < seg.Start {
		lo = seg.Start
	}
	if hi > seg.End() {
		hi = seg.End()
	}
	r := geo.EmptyRect()
	for t := lo; t <= hi; t++ {
		r = r.ExtendPoint(seg.At(t))
	}
	return r
}

// unionFind is a small union-find over object IDs, reset per instant.
type unionFind struct {
	parent []int32
	size   []int32
}

// ensure sizes the structure for n objects, keeping existing capacity.
func (u *unionFind) ensure(n int) {
	if len(u.parent) < n {
		u.parent = make([]int32, n)
		u.size = make([]int32, n)
	}
}

// reset prepares the structure for the given participants.
func (u *unionFind) reset(ids []trajectory.ObjectID) {
	for _, o := range ids {
		u.parent[o] = int32(o)
		u.size[o] = 1
	}
}

func (u *unionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

func sortInts(s []int) {
	// Insertion sort: cell lists per bucket are short and nearly sorted
	// (objects are scanned in ID order over a locality-preserving grid).
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}
