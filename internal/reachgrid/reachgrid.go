// Package reachgrid implements the ReachGrid index of §4: a spatiotemporal
// grid over trajectory segments that supports reachability queries by a
// guided, incremental expansion of the contact network.
//
// Layout (§4.1). The time domain is partitioned into buckets of BucketTicks
// instants (the temporal grid T1…Tn); within each bucket a uniform spatial
// grid of CellSize-wide cells partitions the trajectory segments. A cell
// blob stores the full bucket segment of every object that has at least one
// sample inside the cell during the bucket, with positions in timestamp
// order. Blobs are appended bucket by bucket and, within a bucket, in cell
// order — cells of Ci precede cells of Cj for i < j, the placement rule the
// paper derives from early query termination. A per-bucket object directory
// (the paper's external hash table) maps each object to its cell at the
// bucket start so the query source can be located in O(1) page reads.
//
// Query processing (§4.2, Algorithm 1). The seed set starts as {source}.
// Sweeping the query interval bucket by bucket, the processor loads the
// cells containing the seeds, prefetches the "potential seed cells" — cells
// within dT of the minimum bounding rectangles of the seeds' remaining
// segments — and joins the buffered segments instant by instant. Objects
// joining a seed's connected component become seeds immediately (the
// recursive restart at t′ of §4.2); the sweep stops as soon as the
// destination is infected. Cells are buffered for the duration of a bucket
// and discarded at its end.
package reachgrid

import (
	"context"
	"errors"
	"fmt"

	"streach/internal/contact"
	"streach/internal/geo"
	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// Params configures index construction.
type Params struct {
	// CellSize is the spatial resolution RS: the side length of a grid
	// cell, in the dataset's length unit. Defaults to 1/8 of the
	// environment width.
	CellSize float64
	// BucketTicks is the temporal resolution RT: the number of instants
	// per time bucket. Defaults to 20, the paper's empirical optimum.
	BucketTicks int
	// PoolPages sizes the store's private LRU buffer pool. Defaults to 64
	// pages; negative disables caching. Ignored when Pool is set.
	PoolPages int
	// Pool, when non-nil, is a buffer pool shared with other indexes over
	// the same dataset: all readers draw on one page budget.
	Pool *pagefile.BufferPool
}

func (p *Params) applyDefaults(env geo.Rect) {
	if p.CellSize <= 0 {
		p.CellSize = env.Width() / 8
	}
	if p.BucketTicks <= 0 {
		p.BucketTicks = 20
	}
	if p.PoolPages == 0 {
		p.PoolPages = 64
	}
}

// dirEntriesPerBlob is the number of object→cell entries per directory
// blob; 1000 int32 entries plus the blob header fit one 4 KiB page.
const dirEntriesPerBlob = 1000

// bucketMeta locates one time bucket's blobs on the store.
type bucketMeta struct {
	span     contact.Interval
	cellRefs []pagefile.BlobRef // indexed by cell ID; Null ⇒ empty cell
	dirRefs  []pagefile.BlobRef // object directory, chunks of dirEntriesPerBlob
}

// Index is a disk-resident ReachGrid. The in-memory part is only the blob
// catalogue (a few bytes per cell); all trajectory data lives on the
// simulated store and is charged to the per-query accountant when read.
// The catalogue is immutable after Build, so queries are safe to evaluate
// fully in parallel.
type Index struct {
	params     Params
	store      *pagefile.Store
	grid       geo.Grid
	numObjects int
	numTicks   int
	dT         float64
	buckets    []bucketMeta
}

// Build constructs the ReachGrid of dataset d.
func Build(d *trajectory.Dataset, params Params) (*Index, error) {
	params.applyDefaults(d.Env)
	if d.NumObjects() == 0 || d.NumTicks() == 0 {
		return nil, errors.New("reachgrid: empty dataset")
	}
	ix := &Index{
		params:     params,
		store:      pagefile.NewStoreWith(params.Pool, params.PoolPages),
		grid:       geo.NewGrid(d.Env, params.CellSize),
		numObjects: d.NumObjects(),
		numTicks:   d.NumTicks(),
		dT:         d.ContactDist,
	}
	numCells := ix.grid.NumCells()
	enc := pagefile.NewEncoder(4096)
	cellObjs := make([][]trajectory.ObjectID, numCells) // objects per cell, this bucket
	touched := make([]int, 0, 64)
	seen := make(map[int]bool, 16)

	for lo := trajectory.Tick(0); int(lo) < ix.numTicks; lo += trajectory.Tick(params.BucketTicks) {
		hi := lo + trajectory.Tick(params.BucketTicks) - 1
		if int(hi) >= ix.numTicks {
			hi = trajectory.Tick(ix.numTicks - 1)
		}
		meta := bucketMeta{
			span:     contact.Interval{Lo: lo, Hi: hi},
			cellRefs: make([]pagefile.BlobRef, numCells),
		}
		dir := make([]int32, ix.numObjects)

		for i := range d.Trajs {
			tr := &d.Trajs[i]
			o := tr.Object
			dir[o] = int32(ix.grid.CellID(tr.AtClamped(lo)))
			seg := tr.Slice(lo, hi)
			for k := range seen {
				delete(seen, k)
			}
			for _, p := range seg.Pos {
				id := ix.grid.CellID(p)
				if !seen[id] {
					seen[id] = true
					if len(cellObjs[id]) == 0 {
						touched = append(touched, id)
					}
					cellObjs[id] = append(cellObjs[id], o)
				}
			}
		}
		// Write cells in ascending cell-ID order for a deterministic,
		// locality-friendly layout.
		sortInts(touched)
		for _, id := range touched {
			enc.Reset()
			enc.Uint32(uint32(len(cellObjs[id])))
			for _, o := range cellObjs[id] {
				seg := d.Trajs[o].Slice(lo, hi)
				enc.Int32(int32(o))
				enc.Int32(int32(seg.Start))
				enc.Uint32(uint32(len(seg.Pos)))
				for _, p := range seg.Pos {
					enc.Float64(p.X)
					enc.Float64(p.Y)
				}
			}
			meta.cellRefs[id] = ix.store.AppendBlob(enc.Bytes())
			cellObjs[id] = cellObjs[id][:0]
		}
		touched = touched[:0]
		// Directory chunks follow the bucket's cells.
		for off := 0; off < len(dir); off += dirEntriesPerBlob {
			end := off + dirEntriesPerBlob
			if end > len(dir) {
				end = len(dir)
			}
			enc.Reset()
			enc.Int32Slice(dir[off:end])
			meta.dirRefs = append(meta.dirRefs, ix.store.AppendBlob(enc.Bytes()))
		}
		ix.buckets = append(ix.buckets, meta)
	}
	return ix, nil
}

// Store exposes the underlying simulated disk (for size and placement
// inspection).
func (ix *Index) Store() *pagefile.Store { return ix.store }

// Counters returns the store's cumulative I/O totals; per-query accountants
// passed to the query methods sum to consecutive Counters differences.
func (ix *Index) Counters() pagefile.Stats { return ix.store.Counters() }

// ResetCounters zeroes the cumulative totals.
func (ix *Index) ResetCounters() { ix.store.ResetCounters() }

// Grid returns the spatial grid geometry.
func (ix *Index) Grid() geo.Grid { return ix.grid }

// NumBuckets returns the number of temporal buckets.
func (ix *Index) NumBuckets() int { return len(ix.buckets) }

// bucketOf returns the bucket index containing tick t.
func (ix *Index) bucketOf(t trajectory.Tick) int { return int(t) / ix.params.BucketTicks }

// clampInterval intersects iv with the index's time domain.
func (ix *Index) clampInterval(iv contact.Interval) contact.Interval {
	return iv.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(ix.numTicks - 1)})
}

// validateQuery rejects object IDs outside the dataset.
func (ix *Index) validateQuery(q queries.Query) error {
	if int(q.Src) < 0 || int(q.Src) >= ix.numObjects {
		return fmt.Errorf("reachgrid: source %d outside [0, %d)", q.Src, ix.numObjects)
	}
	if int(q.Dst) < 0 || int(q.Dst) >= ix.numObjects {
		return fmt.Errorf("reachgrid: destination %d outside [0, %d)", q.Dst, ix.numObjects)
	}
	return nil
}

// Reach answers the reachability query q : Src ⤳ Dst over q.Interval using
// the guided expansion of Algorithm 1. I/O is charged to the store's
// cumulative Counters through a query-scoped accountant (so sequential
// runs spanning blob reads are classified as in the paper's cost model).
func (ix *Index) Reach(q queries.Query) (bool, error) {
	var acct pagefile.Stats
	ok, _, err := ix.ReachCounted(context.Background(), q, &acct)
	return ok, err
}

// ReachCounted is Reach plus the number of objects the guided expansion
// infected (src included) before terminating — the frontier size the facade
// surfaces per query. Page reads are charged to acct (which may be nil) in
// addition to the store's cumulative counters; passing one accountant per
// query keeps evaluation safe to run fully in parallel. The context is
// observed inside the expansion loop (once per instant), so a cancelled
// query returns ctx.Err() promptly instead of sweeping on.
func (ix *Index) ReachCounted(ctx context.Context, q queries.Query, acct *pagefile.Stats) (bool, int, error) {
	if err := ix.validateQuery(q); err != nil {
		return false, 0, err
	}
	return ix.ReachFromCounted(ctx, []trajectory.ObjectID{q.Src}, q.Dst, q.Interval, acct)
}

// ReachFromCounted is the multi-source point query: can an item held by any
// of the seeds at the interval start reach dst by its end? It is the
// frontier entry point of the cross-segment planner — the reachable set of
// one time slab seeds the sweep of the next. Seeds must be valid object
// IDs; the expansion counter includes the seeds.
func (ix *Index) ReachFromCounted(ctx context.Context, seeds []trajectory.ObjectID, dst trajectory.ObjectID, iv contact.Interval, acct *pagefile.Stats) (bool, int, error) {
	if int(dst) < 0 || int(dst) >= ix.numObjects {
		return false, 0, fmt.Errorf("reachgrid: destination %d outside [0, %d)", dst, ix.numObjects)
	}
	iv = ix.clampInterval(iv)
	if iv.Len() == 0 {
		return false, 0, nil
	}
	for _, s := range seeds {
		if s == dst {
			return true, len(seeds), nil
		}
	}
	reached := false
	expanded := len(seeds)
	err := ix.sweep(ctx, seeds, iv, acct, func(o trajectory.ObjectID) bool {
		expanded++
		if o == dst {
			reached = true
			return false
		}
		return true
	})
	return reached, expanded, err
}

// ReachableSet returns every object reachable from src during iv (including
// src), sorted ascending — the batch primitive behind the paper's epidemic
// and watch-list scenarios. The expansion is still guided: only cells near
// the growing seed set are read. Page reads are charged to acct (which may
// be nil).
func (ix *Index) ReachableSet(ctx context.Context, src trajectory.ObjectID, iv contact.Interval, acct *pagefile.Stats) ([]trajectory.ObjectID, error) {
	out, _, err := ix.ReachableSetFrom(ctx, []trajectory.ObjectID{src}, iv, acct)
	return out, err
}

// ReachableSetFrom returns every object reachable from any seed during iv
// (seeds included when the interval overlaps the time domain), sorted
// ascending, plus the expansion counter.
func (ix *Index) ReachableSetFrom(ctx context.Context, seeds []trajectory.ObjectID, iv contact.Interval, acct *pagefile.Stats) ([]trajectory.ObjectID, int, error) {
	iv = ix.clampInterval(iv)
	if iv.Len() == 0 {
		return nil, 0, nil
	}
	out := append([]trajectory.ObjectID(nil), seeds...)
	err := ix.sweep(ctx, seeds, iv, acct, func(o trajectory.ObjectID) bool {
		out = append(out, o)
		return true
	})
	if err != nil {
		return nil, len(out), err
	}
	out = trajectory.SortDedupObjects(out)
	return out, len(out), nil
}

// bucketState is the per-bucket working set of the sweep: the decoded cells
// (the paper's buffered cells, discarded at bucket end) and the segments of
// the objects they contain.
type bucketState struct {
	loaded map[int]bool
	segs   map[trajectory.ObjectID]trajectory.Segment
}

// sweep runs Algorithm 1 from the given seed set, invoking onInfect for
// every object that becomes reachable from a seed (seeds excluded).
// onInfect returning false terminates the sweep early (the paper's
// termination on discovering the destination). All state is per-query; page
// reads are charged to acct. The context is observed once per instant.
func (ix *Index) sweep(ctx context.Context, initial []trajectory.ObjectID, iv contact.Interval, acct *pagefile.Stats, onInfect func(trajectory.ObjectID) bool) error {
	seeds := make([]bool, ix.numObjects)
	seedList := make([]trajectory.ObjectID, 0, len(initial))
	for _, s := range initial {
		if int(s) < 0 || int(s) >= ix.numObjects {
			return fmt.Errorf("reachgrid: seed %d outside [0, %d)", s, ix.numObjects)
		}
		if !seeds[s] {
			seeds[s] = true
			seedList = append(seedList, s)
		}
	}

	joiner := stjoin.NewJoiner(ix.grid.Env(), ix.dT)
	uf := newUnionFind(ix.numObjects)
	cellsBuf := make([]int, 0, 16)

	for bi := ix.bucketOf(iv.Lo); bi <= ix.bucketOf(iv.Hi) && bi < len(ix.buckets); bi++ {
		w := ix.buckets[bi].span.Intersect(iv)
		if w.Len() == 0 {
			continue
		}
		st := &bucketState{
			loaded: make(map[int]bool),
			segs:   make(map[trajectory.ObjectID]trajectory.Segment),
		}
		// Locate and load the cells of the current seeds (C_{S_i}), then
		// prefetch the potential-seed cells N_i around their MBRs.
		if err := ix.admitSeeds(bi, st, seedList, w.Lo, w.Hi, cellsBuf, acct); err != nil {
			return err
		}
		for t := w.Lo; t <= w.Hi; t++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			// Fixpoint per instant: a new seed at t can infect further
			// objects at the same instant once its cells are loaded
			// (the recursive restart at t′ in §4.2).
			for {
				fresh := ix.infectAt(st, seeds, t, joiner, uf)
				if len(fresh) == 0 {
					break
				}
				for _, o := range fresh {
					seedList = append(seedList, o)
					if !onInfect(o) {
						return nil
					}
				}
				if err := ix.admitSeeds(bi, st, fresh, t, w.Hi, cellsBuf, acct); err != nil {
					return err
				}
			}
		}
		// Cells buffered during Ti are discarded at the end of Ti.
	}
	return nil
}

// admitSeeds loads, for every object in objs, the cell containing it at the
// bucket start (via the object directory) and all cells within dT of the
// MBR of its segment over [cur, hi]. The neighbourhood cells of the whole
// batch are loaded in ascending cell order: cells are placed in that order
// on disk, so contiguous neighbourhoods cost sequential rather than random
// reads.
func (ix *Index) admitSeeds(bi int, st *bucketState, objs []trajectory.ObjectID, cur, hi trajectory.Tick, cellsBuf []int, acct *pagefile.Stats) error {
	pending := cellsBuf[:0]
	for _, o := range objs {
		if _, ok := st.segs[o]; !ok {
			cell, err := ix.dirLookup(bi, o, acct)
			if err != nil {
				return err
			}
			if err := ix.loadCell(bi, cell, st, acct); err != nil {
				return err
			}
		}
		seg, ok := st.segs[o]
		if !ok {
			// The directory pointed at a cell that does not contain the
			// object's segment; the layout guarantees this cannot happen.
			return fmt.Errorf("reachgrid: object %d missing from its directory cell in bucket %d", o, bi)
		}
		mbr := segMBR(seg, cur, hi).Expand(ix.dT)
		pending = ix.grid.CellsIntersecting(mbr, pending)
	}
	sortInts(pending)
	for _, id := range pending {
		if err := ix.loadCell(bi, id, st, acct); err != nil {
			return err
		}
	}
	return nil
}

// infectAt joins the buffered segments at instant t and merges connected
// components; every object in a component that contains a seed becomes a
// seed. It returns the newly infected objects.
func (ix *Index) infectAt(st *bucketState, seeds []bool, t trajectory.Tick, joiner *stjoin.Joiner, uf *unionFind) []trajectory.ObjectID {
	pts := make([]geo.Point, 0, len(st.segs))
	ids := make([]trajectory.ObjectID, 0, len(st.segs))
	for o, seg := range st.segs {
		if seg.Covers(t) {
			pts = append(pts, seg.At(t))
			ids = append(ids, o)
		}
	}
	if len(pts) < 2 {
		return nil
	}
	uf.reset(ids)
	joiner.Join(pts, func(a, b int) bool {
		uf.union(int32(ids[a]), int32(ids[b]))
		return true
	})
	seedRoots := make(map[int32]bool, 4)
	for _, o := range ids {
		if seeds[o] {
			seedRoots[uf.find(int32(o))] = true
		}
	}
	var fresh []trajectory.ObjectID
	for _, o := range ids {
		if !seeds[o] && seedRoots[uf.find(int32(o))] {
			seeds[o] = true
			fresh = append(fresh, o)
		}
	}
	return fresh
}

// loadCell reads a cell blob (if present and not yet buffered) and registers
// its segments.
func (ix *Index) loadCell(bi, cell int, st *bucketState, acct *pagefile.Stats) error {
	if st.loaded[cell] {
		return nil
	}
	st.loaded[cell] = true
	ref := ix.buckets[bi].cellRefs[cell]
	if ref.Null() {
		return nil
	}
	data, err := ix.store.ReadBlob(ref, acct)
	if err != nil {
		return fmt.Errorf("reachgrid: cell %d of bucket %d: %w", cell, bi, err)
	}
	dec := pagefile.NewDecoder(data)
	n := dec.Uint32()
	for i := uint32(0); i < n; i++ {
		o := trajectory.ObjectID(dec.Int32())
		start := trajectory.Tick(dec.Int32())
		cnt := dec.Uint32()
		if dec.Err() != nil {
			break
		}
		if _, dup := st.segs[o]; dup {
			// The object was already decoded from another cell it spans;
			// skip its positions.
			for k := uint32(0); k < cnt; k++ {
				dec.Float64()
				dec.Float64()
			}
			continue
		}
		pos := make([]geo.Point, cnt)
		for k := range pos {
			pos[k] = geo.Point{X: dec.Float64(), Y: dec.Float64()}
		}
		st.segs[o] = trajectory.Segment{Object: o, Start: start, Pos: pos}
	}
	if err := dec.Err(); err != nil {
		return fmt.Errorf("reachgrid: cell %d of bucket %d: %w", cell, bi, err)
	}
	return nil
}

// dirLookup reads the object directory entry of o for bucket bi: the cell
// containing o at the bucket start (one page read, typically a buffer hit
// for subsequent seeds).
func (ix *Index) dirLookup(bi int, o trajectory.ObjectID, acct *pagefile.Stats) (int, error) {
	chunk := int(o) / dirEntriesPerBlob
	data, err := ix.store.ReadBlob(ix.buckets[bi].dirRefs[chunk], acct)
	if err != nil {
		return 0, fmt.Errorf("reachgrid: directory chunk %d of bucket %d: %w", chunk, bi, err)
	}
	dec := pagefile.NewDecoder(data)
	cells := dec.Int32Slice()
	if err := dec.Err(); err != nil {
		return 0, err
	}
	idx := int(o) % dirEntriesPerBlob
	if idx >= len(cells) {
		return 0, fmt.Errorf("reachgrid: directory chunk %d of bucket %d truncated", chunk, bi)
	}
	return int(cells[idx]), nil
}

// segMBR returns the bounding rectangle of seg's samples within [lo, hi].
func segMBR(seg trajectory.Segment, lo, hi trajectory.Tick) geo.Rect {
	if lo < seg.Start {
		lo = seg.Start
	}
	if hi > seg.End() {
		hi = seg.End()
	}
	r := geo.EmptyRect()
	for t := lo; t <= hi; t++ {
		r = r.ExtendPoint(seg.At(t))
	}
	return r
}

// unionFind is a small union-find over object IDs, reset per instant.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	return &unionFind{parent: make([]int32, n), size: make([]int32, n)}
}

// reset prepares the structure for the given participants.
func (u *unionFind) reset(ids []trajectory.ObjectID) {
	for _, o := range ids {
		u.parent[o] = int32(o)
		u.size[o] = 1
	}
}

func (u *unionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

func sortInts(s []int) {
	// Insertion sort: cell lists per bucket are short and nearly sorted
	// (objects are scanned in ID order over a locality-preserving grid).
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}
