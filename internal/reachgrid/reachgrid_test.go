package reachgrid

import (
	"context"
	"sort"
	"testing"

	"streach/internal/contact"
	"streach/internal/geo"
	"streach/internal/mobility"
	"streach/internal/queries"
	"streach/internal/trajectory"
)

func testDataset(t *testing.T, objects, ticks int, seed int64) *trajectory.Dataset {
	t.Helper()
	d := mobility.RandomWaypoint(mobility.RWPConfig{
		NumObjects: objects,
		NumTicks:   ticks,
		Seed:       seed,
	})
	if err := d.Validate(); err != nil {
		t.Fatalf("dataset invalid: %v", err)
	}
	return d
}

func buildIndex(t *testing.T, d *trajectory.Dataset, p Params) *Index {
	t.Helper()
	ix, err := Build(d, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix
}

func TestBuildEmptyDataset(t *testing.T) {
	_, err := Build(&trajectory.Dataset{Env: geo.NewRect(geo.Point{}, geo.Point{X: 1, Y: 1})}, Params{})
	if err == nil {
		t.Fatal("Build on empty dataset: want error")
	}
}

func TestReachMatchesOracle(t *testing.T) {
	d := testDataset(t, 60, 400, 1)
	ix := buildIndex(t, d, Params{})
	net := contact.Extract(d)
	oracle := queries.NewOracle(net)
	work := queries.RandomWorkload(queries.WorkloadConfig{
		NumObjects: d.NumObjects(),
		NumTicks:   d.NumTicks(),
		Count:      120,
		MinLen:     20,
		MaxLen:     200,
		Seed:       7,
	})
	var pos int
	for _, q := range work {
		want := oracle.Reachable(q)
		got, err := ix.Reach(q)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if got != want {
			t.Fatalf("%v: ReachGrid = %v, oracle = %v", q, got, want)
		}
		if want {
			pos++
		}
	}
	if pos == 0 || pos == len(work) {
		t.Fatalf("degenerate workload: %d/%d positive", pos, len(work))
	}
}

func TestSPJMatchesOracle(t *testing.T) {
	d := testDataset(t, 50, 300, 2)
	ix := buildIndex(t, d, Params{})
	oracle := queries.NewOracle(contact.Extract(d))
	work := queries.RandomWorkload(queries.WorkloadConfig{
		NumObjects: d.NumObjects(),
		NumTicks:   d.NumTicks(),
		Count:      60,
		MinLen:     20,
		MaxLen:     150,
		Seed:       3,
	})
	for _, q := range work {
		want := oracle.Reachable(q)
		got, err := ix.SPJReach(q)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if got != want {
			t.Fatalf("%v: SPJ = %v, oracle = %v", q, got, want)
		}
	}
}

func TestReachableSetMatchesOracle(t *testing.T) {
	d := testDataset(t, 40, 250, 4)
	ix := buildIndex(t, d, Params{})
	oracle := queries.NewOracle(contact.Extract(d))
	for src := trajectory.ObjectID(0); src < 10; src++ {
		iv := contact.Interval{Lo: trajectory.Tick(5 * src), Hi: trajectory.Tick(5*src) + 120}
		want := oracle.ReachableSet(src, iv)
		got, err := ix.ReachableSet(context.Background(), src, iv, nil)
		if err != nil {
			t.Fatalf("src %d: %v", src, err)
		}
		sortObjs(want)
		sortObjs(got)
		if !equalObjs(got, want) {
			t.Fatalf("src %d over %v: got %v, want %v", src, iv, got, want)
		}
	}
}

// TestGuidedExpansionReadsFewerPages checks the locality invariant at any
// scale: the guided expansion never touches more pages than SPJ's
// read-everything pipeline.
func TestGuidedExpansionReadsFewerPages(t *testing.T) {
	d := testDataset(t, 80, 400, 5)
	ix := buildIndex(t, d, Params{})
	work := queries.RandomWorkload(queries.WorkloadConfig{
		NumObjects: d.NumObjects(),
		NumTicks:   d.NumTicks(),
		Count:      40,
		MinLen:     50,
		MaxLen:     200,
		Seed:       9,
	})
	pages := func(run func(queries.Query) (bool, error)) int64 {
		ix.ResetCounters()
		ix.Store().DropCache()
		for _, q := range work {
			if _, err := run(q); err != nil {
				t.Fatal(err)
			}
		}
		c := ix.Counters()
		return c.RandomReads + c.SequentialReads
	}
	guided := pages(ix.Reach)
	naive := pages(ix.SPJReach)
	if guided >= naive {
		t.Fatalf("guided expansion read %d pages, SPJ %d", guided, naive)
	}
	t.Logf("pages read: guided %d vs SPJ %d", guided, naive)
}

// TestGuidedExpansionBeatsSPJ checks the §6.1.2 headline in its regime:
// enough objects that a bucket's full contents dwarf the query's
// neighbourhood, with the interval scaled so the infection wavefront does
// not saturate the environment (the paper's standard intervals occupy ~30%
// of the environment side at its scale).
func TestGuidedExpansionBeatsSPJ(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a 1200-object dataset")
	}
	d := testDataset(t, 1200, 800, 5)
	ix := buildIndex(t, d, Params{CellSize: d.Env.Width() / 4})
	work := queries.RandomWorkload(queries.WorkloadConfig{
		NumObjects: d.NumObjects(),
		NumTicks:   d.NumTicks(),
		Count:      25,
		MinLen:     80,
		MaxLen:     90,
		Seed:       9,
	})
	measure := func(run func(queries.Query) (bool, error)) float64 {
		ix.ResetCounters()
		ix.Store().DropCache()
		for _, q := range work {
			if _, err := run(q); err != nil {
				t.Fatal(err)
			}
		}
		return ix.Counters().Normalized()
	}
	guided := measure(ix.Reach)
	naive := measure(ix.SPJReach)
	if guided >= naive {
		t.Fatalf("guided expansion (%.1f IOs) not cheaper than SPJ (%.1f IOs)", guided, naive)
	}
	t.Logf("guided %.1f vs SPJ %.1f normalized IOs (%.0f%% saved)",
		guided, naive, 100*(1-guided/naive))
}

func TestQueryValidation(t *testing.T) {
	d := testDataset(t, 10, 50, 6)
	ix := buildIndex(t, d, Params{})
	cases := []queries.Query{
		{Src: -1, Dst: 1, Interval: contact.Interval{Lo: 0, Hi: 10}},
		{Src: 0, Dst: 99, Interval: contact.Interval{Lo: 0, Hi: 10}},
	}
	for _, q := range cases {
		if _, err := ix.Reach(q); err == nil {
			t.Errorf("%v: want validation error", q)
		}
		if _, err := ix.SPJReach(q); err == nil {
			t.Errorf("%v: want SPJ validation error", q)
		}
	}
	if _, err := ix.ReachableSet(context.Background(), -3, contact.Interval{Lo: 0, Hi: 5}, nil); err == nil {
		t.Error("ReachableSet(-3): want validation error")
	}
}

func TestDegenerateIntervals(t *testing.T) {
	d := testDataset(t, 10, 50, 6)
	ix := buildIndex(t, d, Params{})

	// Empty interval: nothing reachable.
	got, err := ix.Reach(queries.Query{Src: 0, Dst: 1, Interval: contact.Interval{Lo: 10, Hi: 5}})
	if err != nil || got {
		t.Fatalf("empty interval: got (%v, %v), want (false, nil)", got, err)
	}
	// Self reachability over a valid interval.
	got, err = ix.Reach(queries.Query{Src: 3, Dst: 3, Interval: contact.Interval{Lo: 0, Hi: 5}})
	if err != nil || !got {
		t.Fatalf("self query: got (%v, %v), want (true, nil)", got, err)
	}
	// Interval entirely outside the time domain is clamped to empty.
	got, err = ix.Reach(queries.Query{Src: 0, Dst: 1, Interval: contact.Interval{Lo: 1000, Hi: 2000}})
	if err != nil || got {
		t.Fatalf("out-of-domain interval: got (%v, %v), want (false, nil)", got, err)
	}
	// Interval partially outside is clamped, not rejected.
	if _, err = ix.Reach(queries.Query{Src: 0, Dst: 1, Interval: contact.Interval{Lo: 40, Hi: 400}}); err != nil {
		t.Fatalf("clamped interval: %v", err)
	}
}

func TestResolutionAffectsLayout(t *testing.T) {
	d := testDataset(t, 30, 200, 8)
	coarse := buildIndex(t, d, Params{CellSize: d.Env.Width(), BucketTicks: 100})
	fine := buildIndex(t, d, Params{CellSize: d.Env.Width() / 16, BucketTicks: 5})
	if coarse.NumBuckets() >= fine.NumBuckets() {
		t.Fatalf("buckets: coarse %d, fine %d", coarse.NumBuckets(), fine.NumBuckets())
	}
	// Finer grids replicate boundary-crossing segments, so the fine index
	// must not be smaller than the coarse one.
	if fine.Store().SizeBytes() < coarse.Store().SizeBytes() {
		t.Fatalf("fine index (%d B) smaller than coarse (%d B)",
			fine.Store().SizeBytes(), coarse.Store().SizeBytes())
	}
}

func TestEarlyTerminationSavesIO(t *testing.T) {
	d := testDataset(t, 80, 600, 10)
	ix := buildIndex(t, d, Params{})
	oracle := queries.NewOracle(contact.Extract(d))

	// Find a query that is answered early in a long interval.
	work := queries.RandomWorkload(queries.WorkloadConfig{
		NumObjects: d.NumObjects(),
		NumTicks:   d.NumTicks(),
		Count:      200,
		MinLen:     500,
		MaxLen:     550,
		Seed:       11,
	})
	for _, q := range work {
		when, ok := oracle.EarliestReach(q)
		if !ok || when > q.Interval.Lo+60 {
			continue
		}
		longQ := q
		shortQ := q
		shortQ.Interval.Hi = when + 10

		ix.ResetCounters()
		ix.Store().DropCache()
		if _, err := ix.Reach(longQ); err != nil {
			t.Fatal(err)
		}
		long := ix.Counters().Normalized()

		ix.ResetCounters()
		ix.Store().DropCache()
		if _, err := ix.Reach(shortQ); err != nil {
			t.Fatal(err)
		}
		short := ix.Counters().Normalized()

		// Early termination means the long query must not read much more
		// than the short one (it stops at the same discovery instant; it
		// may touch one extra directory page).
		if long > short*1.5+4 {
			t.Fatalf("no early termination: long interval cost %.1f, prefix cost %.1f", long, short)
		}
		return
	}
	t.Skip("no early-positive query found in workload")
}

func sortObjs(s []trajectory.ObjectID) {
	sort.Slice(s, func(i, k int) bool { return s[i] < s[k] })
}

func equalObjs(a, b []trajectory.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
