// Temporal-semantics evaluation over the ReachGrid layout: the guided
// sweep of Algorithm 1 with the per-instant union-find replaced by a hop
// relaxation. The grid sees the actual contact pairs of every instant (it
// joins the buffered segments directly), so unlike the run-DAG backends it
// can natively count inter-object transfers: at each instant the pair list
// is relaxed to fixpoint, giving every object its multi-source BFS
// distance from the current carriers — exactly the oracle's transfer
// semantics. Cell loading stays guided: only the cells around already
// reached objects are admitted, and newly reached objects admit theirs
// within the same instant's fixpoint loop.
package reachgrid

import (
	"context"
	"fmt"
	"sort"

	"streach/internal/contact"
	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/trajectory"
)

// SemProfileFrom returns the propagation profile of the seed frontier over
// iv; see AppendSemProfileFrom.
func (ix *Index) SemProfileFrom(ctx context.Context, seeds []queries.SeedState, iv contact.Interval, budget int32, earlyDst trajectory.ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, error) {
	return ix.AppendSemProfileFrom(ctx, nil, seeds, iv, budget, earlyDst, acct)
}

// AppendSemProfileFrom appends to dst the propagation profile of the seed
// frontier over iv: for every object reachable under the transfer budget
// (budget < 0 means unbounded), its minimal transfer count and earliest
// arrival tick, sorted by object ID. Seeds enter at max(Start, iv.Lo) with
// their recorded hop counts (seeds beyond the budget or starting after
// iv.Hi are ignored; out-of-range seed IDs are an error). When earlyDst is
// a valid object the sweep stops as soon as earlyDst becomes reachable —
// the profile is then partial but earlyDst's entry is exact. The int
// result is the number of objects reached. Page reads are charged to acct
// (which may be nil).
func (ix *Index) AppendSemProfileFrom(ctx context.Context, dst []queries.ProfileEntry, seeds []queries.SeedState, iv contact.Interval, budget int32, earlyDst trajectory.ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, error) {
	if acct == nil {
		acct = &pagefile.Stats{}
	}
	iv = ix.clampInterval(iv)
	if iv.Len() == 0 {
		return dst, 0, nil
	}
	if budget < 0 || budget > queries.UnboundedHops {
		budget = queries.UnboundedHops
	}
	sc := ix.pool.Get()
	defer ix.pool.Put(sc)
	sc.reset(ix)
	sc.hops.Reset(ix.numObjects)
	sc.arrTicks.Reset(ix.numObjects)
	sc.reached = sc.reached[:0]
	sc.deferred = sc.deferred[:0]
	for _, s := range seeds {
		if int(s.Obj) < 0 || int(s.Obj) >= ix.numObjects {
			return dst, 0, fmt.Errorf("reachgrid: seed %d outside [0, %d)", s.Obj, ix.numObjects)
		}
		if s.Hops < 0 || s.Hops > budget || s.Start > iv.Hi {
			continue
		}
		if s.Start > iv.Lo {
			sc.deferred = append(sc.deferred, s)
			continue
		}
		if prev, ok := sc.hops.Get(int(s.Obj)); !ok {
			sc.hops.Set(int(s.Obj), s.Hops)
			sc.arrTicks.Set(int(s.Obj), int32(iv.Lo))
			sc.reached = append(sc.reached, s.Obj)
		} else if s.Hops < prev {
			sc.hops.Set(int(s.Obj), s.Hops)
		}
	}
	if len(sc.reached) == 0 && len(sc.deferred) == 0 {
		return dst, 0, nil
	}
	sort.Slice(sc.deferred, func(i, j int) bool { return sc.deferred[i].Start < sc.deferred[j].Start })
	dstReached := func() bool {
		if int(earlyDst) < 0 || int(earlyDst) >= ix.numObjects {
			return false
		}
		_, ok := sc.hops.Get(int(earlyDst))
		return ok
	}
	if !dstReached() {
		if err := ix.semSweep(ctx, sc, iv, budget, dstReached, acct); err != nil {
			return dst, len(sc.reached), err
		}
	}
	return appendSemEntries(dst, sc), len(sc.reached), nil
}

// semSweep is the guided bucket walk of Algorithm 1 driving relaxAt
// instead of infectAt. Deferred seeds (sc.deferred, ascending by Start)
// join the carriers — and admit their cells — as the walk reaches their
// activation ticks; an early-stopped sweep records the leftovers'
// activations after the walk, exactly like the oracle. stop is polled
// after every relaxation fixpoint.
func (ix *Index) semSweep(ctx context.Context, sc *gridScratch, iv contact.Interval, budget int32, stop func() bool, acct *pagefile.Stats) error {
	di := 0
	defer func() {
		for ; di < len(sc.deferred); di++ {
			s := sc.deferred[di]
			if _, ok := sc.hops.Get(int(s.Obj)); !ok {
				sc.hops.Set(int(s.Obj), s.Hops)
				sc.arrTicks.Set(int(s.Obj), int32(s.Start))
				sc.reached = append(sc.reached, s.Obj)
			}
		}
	}()
	prevBi := -1
	for bi := ix.bucketOf(iv.Lo); bi <= ix.bucketOf(iv.Hi) && bi < len(ix.buckets); bi++ {
		w := ix.buckets[bi].span.Intersect(iv)
		if w.Len() == 0 {
			continue
		}
		if prevBi >= 0 {
			ix.bridgeBuckets(prevBi, bi, sc, acct)
		}
		prevBi = bi
		sc.resetBucket(ix.numObjects, ix.grid.NumCells())
		if err := ix.admitSeeds(bi, sc, sc.reached, w.Lo, w.Hi, acct); err != nil {
			return err
		}
		for t := w.Lo; t <= w.Hi; t++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if di < len(sc.deferred) && sc.deferred[di].Start <= t {
				sc.activated = sc.activated[:0]
				for ; di < len(sc.deferred) && sc.deferred[di].Start <= t; di++ {
					s := sc.deferred[di]
					if prev, ok := sc.hops.Get(int(s.Obj)); !ok {
						sc.hops.Set(int(s.Obj), s.Hops)
						sc.arrTicks.Set(int(s.Obj), int32(s.Start))
						sc.reached = append(sc.reached, s.Obj)
						sc.activated = append(sc.activated, s.Obj)
					} else if s.Hops < prev {
						sc.hops.Set(int(s.Obj), s.Hops)
					}
				}
				if len(sc.activated) > 0 {
					if err := ix.admitSeeds(bi, sc, sc.activated, t, w.Hi, acct); err != nil {
						return err
					}
				}
			}
			// Fixpoint per instant, exactly like the boolean sweep: a
			// newly reached object's cells are admitted and the instant is
			// relaxed again, so chains through just-loaded cells resolve
			// within their own tick. stop is polled only once the instant
			// is fully relaxed, keeping early-terminated hop counts exact
			// at the termination tick.
			for {
				fresh := ix.relaxAt(sc, t, budget)
				if len(fresh) == 0 {
					break
				}
				sc.reached = append(sc.reached, fresh...)
				if err := ix.admitSeeds(bi, sc, fresh, t, w.Hi, acct); err != nil {
					return err
				}
			}
			if stop() {
				return nil
			}
		}
	}
	return nil
}

// relaxAt joins the buffered segments at instant t and relaxes the contact
// pairs to fixpoint: every object's hop count becomes the minimal number
// of transfers from the current carriers, capped by the budget. It returns
// the objects newly reached at t (valid until the next call); hop
// improvements to already reached objects propagate within the same
// fixpoint but are not reported.
func (ix *Index) relaxAt(sc *gridScratch, t trajectory.Tick, budget int32) []trajectory.ObjectID {
	sc.pts, sc.ids, sc.fresh = sc.pts[:0], sc.ids[:0], sc.fresh[:0]
	for _, o := range sc.segObjs {
		seg, _ := sc.segs.Get(int(o))
		if seg.Covers(t) {
			sc.pts = append(sc.pts, seg.At(t))
			sc.ids = append(sc.ids, o)
		}
	}
	if len(sc.pts) < 2 {
		return nil
	}
	sc.pairA, sc.pairB = sc.pairA[:0], sc.pairB[:0]
	sc.joiner.Join(sc.pts, func(a, b int) bool {
		sc.pairA = append(sc.pairA, sc.ids[a])
		sc.pairB = append(sc.pairB, sc.ids[b])
		return true
	})
	for changed := true; changed; {
		changed = false
		for i := range sc.pairA {
			if sc.relaxEdge(sc.pairA[i], sc.pairB[i], t, budget) {
				changed = true
			}
			if sc.relaxEdge(sc.pairB[i], sc.pairA[i], t, budget) {
				changed = true
			}
		}
	}
	return sc.fresh
}

// relaxEdge propagates one directed transfer from → to, reporting whether
// it improved to's hop count. Newly reached objects are collected in
// sc.fresh with their arrival stamped at t.
func (sc *gridScratch) relaxEdge(from, to trajectory.ObjectID, t trajectory.Tick, budget int32) bool {
	hf, ok := sc.hops.Get(int(from))
	if !ok || hf >= budget {
		return false
	}
	if ht, ok := sc.hops.Get(int(to)); ok && ht <= hf+1 {
		return false
	} else if !ok {
		sc.arrTicks.Set(int(to), int32(t))
		sc.fresh = append(sc.fresh, to)
	}
	sc.hops.Set(int(to), hf+1)
	return true
}

// appendSemEntries drains a semantic sweep's tables into sorted profile
// entries.
func appendSemEntries(dst []queries.ProfileEntry, sc *gridScratch) []queries.ProfileEntry {
	list := trajectory.SortDedupObjects(sc.reached)
	for _, o := range list {
		h, _ := sc.hops.Get(int(o))
		arr, _ := sc.arrTicks.Get(int(o))
		dst = append(dst, queries.ProfileEntry{Obj: o, Hops: h, Arrival: trajectory.Tick(arr)})
	}
	return dst
}
