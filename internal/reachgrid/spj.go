// SPJ is the naïve baseline of §6.1.2: materialize the contact network C′
// relevant to the query interval by retrieving *all* trajectory segments
// that overlap it, then traverse C′ to verify reachability. It shares the
// ReachGrid store and layout, so the two approaches are compared on
// identical data placement — the difference measured is purely the guided
// expansion.
package reachgrid

import (
	"context"
	"fmt"

	"streach/internal/geo"
	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// SPJReach answers q by the full spatiotemporal-join pipeline: every cell of
// every bucket overlapping the query interval is read from disk, the
// per-instant contact graph is built by joining all buffered segments, and
// the item is propagated until the destination is found or the interval is
// exhausted.
func (ix *Index) SPJReach(q queries.Query) (bool, error) {
	var acct pagefile.Stats
	ok, _, err := ix.SPJReachCounted(context.Background(), q, &acct)
	return ok, err
}

// SPJReachCounted is SPJReach plus the number of objects infected during
// propagation (src included). Page reads are charged to acct (which may be
// nil); all traversal state is per-query. The context is observed once per
// instant of the join sweep.
func (ix *Index) SPJReachCounted(ctx context.Context, q queries.Query, acct *pagefile.Stats) (bool, int, error) {
	if err := ix.validateQuery(q); err != nil {
		return false, 0, err
	}
	iv := ix.clampInterval(q.Interval)
	if iv.Len() == 0 {
		return false, 0, nil
	}
	if q.Src == q.Dst {
		return true, 1, nil
	}
	expanded := 1 // src

	joiner := stjoin.NewJoiner(ix.grid.Env(), ix.dT)
	uf := newUnionFind(ix.numObjects)
	seeds := make([]bool, ix.numObjects)
	seeds[q.Src] = true

	for bi := ix.bucketOf(iv.Lo); bi <= ix.bucketOf(iv.Hi) && bi < len(ix.buckets); bi++ {
		w := ix.buckets[bi].span.Intersect(iv)
		if w.Len() == 0 {
			continue
		}
		// Retrieve the entire bucket: every cell, in placement order
		// (mostly sequential reads — SPJ's one redeeming quality).
		st := &bucketState{
			loaded: make(map[int]bool),
			segs:   make(map[trajectory.ObjectID]trajectory.Segment),
		}
		for cell := 0; cell < ix.grid.NumCells(); cell++ {
			if err := ix.loadCell(bi, cell, st, acct); err != nil {
				return false, expanded, fmt.Errorf("spj: %w", err)
			}
		}
		pts := make([]geo.Point, 0, len(st.segs))
		ids := make([]trajectory.ObjectID, 0, len(st.segs))
		for t := w.Lo; t <= w.Hi; t++ {
			if err := ctx.Err(); err != nil {
				return false, expanded, err
			}
			pts, ids = pts[:0], ids[:0]
			for o, seg := range st.segs {
				if seg.Covers(t) {
					pts = append(pts, seg.At(t))
					ids = append(ids, o)
				}
			}
			if len(pts) < 2 {
				continue
			}
			uf.reset(ids)
			joiner.Join(pts, func(a, b int) bool {
				uf.union(int32(ids[a]), int32(ids[b]))
				return true
			})
			seedRoots := make(map[int32]bool, 8)
			for _, o := range ids {
				if seeds[o] {
					seedRoots[uf.find(int32(o))] = true
				}
			}
			for _, o := range ids {
				if !seeds[o] && seedRoots[uf.find(int32(o))] {
					seeds[o] = true
					expanded++
					if o == q.Dst {
						return true, expanded, nil
					}
				}
			}
		}
	}
	return false, expanded, nil
}
