// SPJ is the naïve baseline of §6.1.2: materialize the contact network C′
// relevant to the query interval by retrieving *all* trajectory segments
// that overlap it, then traverse C′ to verify reachability. It shares the
// ReachGrid store and layout, so the two approaches are compared on
// identical data placement — the difference measured is purely the guided
// expansion. It also shares the pooled sweep scratch, so the comparison
// holds on CPU cost as well.
package reachgrid

import (
	"context"
	"fmt"

	"streach/internal/pagefile"
	"streach/internal/queries"
)

// SPJReach answers q by the full spatiotemporal-join pipeline: every cell of
// every bucket overlapping the query interval is read from disk, the
// per-instant contact graph is built by joining all buffered segments, and
// the item is propagated until the destination is found or the interval is
// exhausted.
func (ix *Index) SPJReach(q queries.Query) (bool, error) {
	var acct pagefile.Stats
	ok, _, err := ix.SPJReachCounted(context.Background(), q, &acct)
	return ok, err
}

// SPJReachCounted is SPJReach plus the number of objects infected during
// propagation (src included). Page reads are charged to acct (which may be
// nil); all traversal state is pooled per-query scratch. The context is
// observed once per instant of the join sweep.
func (ix *Index) SPJReachCounted(ctx context.Context, q queries.Query, acct *pagefile.Stats) (bool, int, error) {
	if err := ix.validateQuery(q); err != nil {
		return false, 0, err
	}
	iv := ix.clampInterval(q.Interval)
	if iv.Len() == 0 {
		return false, 0, nil
	}
	if q.Src == q.Dst {
		return true, 1, nil
	}
	expanded := 1 // src
	if acct == nil {
		acct = &pagefile.Stats{}
	}

	sc := ix.pool.Get()
	defer ix.pool.Put(sc)
	sc.reset(ix)
	sc.seeds.Visit(int(q.Src))

	for bi := ix.bucketOf(iv.Lo); bi <= ix.bucketOf(iv.Hi) && bi < len(ix.buckets); bi++ {
		w := ix.buckets[bi].span.Intersect(iv)
		if w.Len() == 0 {
			continue
		}
		// Retrieve the entire bucket: every cell, in placement order
		// (mostly sequential reads — SPJ's one redeeming quality).
		sc.resetBucket(ix.numObjects, ix.grid.NumCells())
		for cell := 0; cell < ix.grid.NumCells(); cell++ {
			if err := ix.loadCell(bi, cell, sc, acct); err != nil {
				return false, expanded, fmt.Errorf("spj: %w", err)
			}
		}
		for t := w.Lo; t <= w.Hi; t++ {
			if err := ctx.Err(); err != nil {
				return false, expanded, err
			}
			sc.pts, sc.ids = sc.pts[:0], sc.ids[:0]
			for _, o := range sc.segObjs {
				seg, _ := sc.segs.Get(int(o))
				if seg.Covers(t) {
					sc.pts = append(sc.pts, seg.At(t))
					sc.ids = append(sc.ids, o)
				}
			}
			if len(sc.pts) < 2 {
				continue
			}
			sc.uf.reset(sc.ids)
			sc.joiner.Join(sc.pts, func(a, b int) bool {
				sc.uf.union(int32(sc.ids[a]), int32(sc.ids[b]))
				return true
			})
			sc.seedRoots.Reset(ix.numObjects)
			for _, o := range sc.ids {
				if sc.seeds.Has(int(o)) {
					sc.seedRoots.Visit(int(sc.uf.find(int32(o))))
				}
			}
			for _, o := range sc.ids {
				if !sc.seeds.Has(int(o)) && sc.seedRoots.Has(int(sc.uf.find(int32(o)))) {
					sc.seeds.Visit(int(o))
					expanded++
					if o == q.Dst {
						return true, expanded, nil
					}
				}
			}
		}
	}
	return false, expanded, nil
}
