// Package roadnet provides a synthetic urban road network and shortest-path
// routing over it.
//
// The paper's VN datasets were produced by the Brinkhoff generator on the
// San Francisco road network, which is not available offline. The relevant
// property for the paper's experiments (§6.3) is that network-constrained
// objects occupy a small, strongly non-uniform portion of the environment,
// concentrating contacts along shared road segments. SyntheticCity
// reproduces that property with a jittered grid of streets overlaid with a
// sparse set of high-speed arterial rings/axes; vehicles route along
// shortest paths, so popular arterials carry disproportionate traffic just
// as in a real city.
package roadnet

import (
	"container/heap"
	"fmt"
	"math/rand"

	"streach/internal/geo"
)

// NodeID identifies an intersection.
type NodeID int32

// Edge is a directed road segment to a neighbouring intersection.
type Edge struct {
	To     NodeID
	Length float64 // metres
}

// Network is a directed road graph. All streets are represented in both
// directions; Length is the Euclidean distance between endpoints.
type Network struct {
	Nodes []geo.Point
	Adj   [][]Edge
	env   geo.Rect
}

// NumNodes returns the number of intersections.
func (n *Network) NumNodes() int { return len(n.Nodes) }

// Env returns the bounding rectangle of the network.
func (n *Network) Env() geo.Rect { return n.env }

// RandomNode returns a uniformly random intersection.
func (n *Network) RandomNode(rng *rand.Rand) NodeID {
	return NodeID(rng.Intn(len(n.Nodes)))
}

// SyntheticCity generates a connected city-like road network covering env:
// a gx×gy grid of intersections with jittered positions and randomly
// removed side streets. removeFrac is the fraction of non-boundary grid
// edges deleted (0 ≤ removeFrac < 1); deletions that would disconnect the
// network are skipped.
func SyntheticCity(rng *rand.Rand, env geo.Rect, gx, gy int, removeFrac float64) *Network {
	if gx < 2 {
		gx = 2
	}
	if gy < 2 {
		gy = 2
	}
	n := &Network{env: env}
	dx := env.Width() / float64(gx-1)
	dy := env.Height() / float64(gy-1)
	jx, jy := dx*0.25, dy*0.25
	for y := 0; y < gy; y++ {
		for x := 0; x < gx; x++ {
			p := geo.Point{
				X: env.Min.X + float64(x)*dx,
				Y: env.Min.Y + float64(y)*dy,
			}
			// Keep boundary nodes on the boundary so the network spans env.
			if x > 0 && x < gx-1 {
				p.X += (rng.Float64()*2 - 1) * jx
			}
			if y > 0 && y < gy-1 {
				p.Y += (rng.Float64()*2 - 1) * jy
			}
			n.Nodes = append(n.Nodes, env.Clamp(p))
		}
	}
	n.Adj = make([][]Edge, len(n.Nodes))

	id := func(x, y int) NodeID { return NodeID(y*gx + x) }
	var edges []gridEdge
	for y := 0; y < gy; y++ {
		for x := 0; x < gx; x++ {
			if x+1 < gx {
				edges = append(edges, gridEdge{id(x, y), id(x+1, y)})
			}
			if y+1 < gy {
				edges = append(edges, gridEdge{id(x, y), id(x, y+1)})
			}
		}
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	// Decide which edges to keep: start with all, then greedily remove up to
	// removeFrac of them while preserving connectivity (checked with a
	// union-find rebuilt over the kept set).
	keep := make([]bool, len(edges))
	for i := range keep {
		keep[i] = true
	}
	toRemove := int(removeFrac * float64(len(edges)))
	removed := 0
	for i := 0; i < len(edges) && removed < toRemove; i++ {
		keep[i] = false
		if connectedUnder(len(n.Nodes), edges, keep) {
			removed++
		} else {
			keep[i] = true
		}
	}
	for i, e := range edges {
		if !keep[i] {
			continue
		}
		l := n.Nodes[e.a].Dist(n.Nodes[e.b])
		n.Adj[e.a] = append(n.Adj[e.a], Edge{To: e.b, Length: l})
		n.Adj[e.b] = append(n.Adj[e.b], Edge{To: e.a, Length: l})
	}
	return n
}

type gridEdge struct{ a, b NodeID }

func connectedUnder(numNodes int, edges []gridEdge, keep []bool) bool {
	parent := make([]int32, numNodes)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := numNodes
	for i, e := range edges {
		if !keep[i] {
			continue
		}
		ra, rb := find(int32(e.a)), find(int32(e.b))
		if ra != rb {
			parent[ra] = rb
			comps--
		}
	}
	return comps == 1
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// Router computes shortest paths on a network, reusing its internal arrays
// across calls. A Router is not safe for concurrent use.
type Router struct {
	net    *Network
	dist   []float64
	prev   []NodeID
	marked []int32
	epoch  int32
}

// NewRouter returns a router over net.
func NewRouter(net *Network) *Router {
	n := net.NumNodes()
	return &Router{
		net:    net,
		dist:   make([]float64, n),
		prev:   make([]NodeID, n),
		marked: make([]int32, n),
	}
}

// ShortestPath returns the node sequence of a shortest path from src to dst
// (inclusive of both). It returns an error when no path exists, which cannot
// happen for networks built by SyntheticCity.
func (r *Router) ShortestPath(src, dst NodeID) ([]NodeID, error) {
	if src == dst {
		return []NodeID{src}, nil
	}
	r.epoch++
	r.dist[src] = 0
	r.prev[src] = src
	r.marked[src] = r.epoch
	q := pq{{node: src, dist: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.node == dst {
			break
		}
		if it.dist > r.dist[it.node] {
			continue // stale entry
		}
		for _, e := range r.net.Adj[it.node] {
			nd := it.dist + e.Length
			if r.marked[e.To] != r.epoch || nd < r.dist[e.To] {
				r.marked[e.To] = r.epoch
				r.dist[e.To] = nd
				r.prev[e.To] = it.node
				heap.Push(&q, pqItem{node: e.To, dist: nd})
			}
		}
	}
	if r.marked[dst] != r.epoch {
		return nil, fmt.Errorf("roadnet: no path from %d to %d", src, dst)
	}
	var path []NodeID
	for at := dst; ; at = r.prev[at] {
		path = append(path, at)
		if at == src {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// Walker advances along the polyline of a routed path at arbitrary step
// lengths; the vehicle generator samples it once per tick.
type Walker struct {
	net     *Network
	path    []NodeID
	seg     int     // index of the current polyline segment (path[seg] → path[seg+1])
	segDist float64 // distance already travelled along the current segment
}

// NewWalker returns a walker positioned at the start of path. The path must
// contain at least one node.
func NewWalker(net *Network, path []NodeID) *Walker {
	return &Walker{net: net, path: path}
}

// Pos returns the current position.
func (w *Walker) Pos() geo.Point {
	if w.seg >= len(w.path)-1 {
		return w.net.Nodes[w.path[len(w.path)-1]]
	}
	a := w.net.Nodes[w.path[w.seg]]
	b := w.net.Nodes[w.path[w.seg+1]]
	l := a.Dist(b)
	if l == 0 {
		return a
	}
	return a.Lerp(b, w.segDist/l)
}

// Done reports whether the walker has reached the end of the path.
func (w *Walker) Done() bool { return w.seg >= len(w.path)-1 }

// Advance moves d metres along the path, stopping at the final node. It
// returns the distance actually travelled.
func (w *Walker) Advance(d float64) float64 {
	travelled := 0.0
	for d > 0 && !w.Done() {
		a := w.net.Nodes[w.path[w.seg]]
		b := w.net.Nodes[w.path[w.seg+1]]
		remain := a.Dist(b) - w.segDist
		if d < remain {
			w.segDist += d
			travelled += d
			return travelled
		}
		travelled += remain
		d -= remain
		w.seg++
		w.segDist = 0
	}
	return travelled
}
