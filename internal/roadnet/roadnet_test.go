package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"streach/internal/geo"
)

func testNet(t *testing.T, seed int64, gx, gy int, removeFrac float64) *Network {
	t.Helper()
	env := geo.NewRect(geo.Point{}, geo.Point{X: 5000, Y: 5000})
	return SyntheticCity(rand.New(rand.NewSource(seed)), env, gx, gy, removeFrac)
}

func TestSyntheticCityShape(t *testing.T) {
	n := testNet(t, 1, 8, 6, 0.2)
	if n.NumNodes() != 48 {
		t.Fatalf("NumNodes = %d, want 48", n.NumNodes())
	}
	for i, p := range n.Nodes {
		if !n.Env().Contains(p) {
			t.Fatalf("node %d at %v escapes the environment", i, p)
		}
	}
	// Every node keeps at least one incident street (connectivity implies it).
	for i, adj := range n.Adj {
		if len(adj) == 0 {
			t.Fatalf("node %d is isolated", i)
		}
	}
}

func TestSyntheticCitySymmetricEdges(t *testing.T) {
	n := testNet(t, 2, 6, 6, 0.3)
	for a, adj := range n.Adj {
		for _, e := range adj {
			found := false
			for _, back := range n.Adj[e.To] {
				if back.To == NodeID(a) && back.Length == e.Length {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d→%d has no symmetric counterpart", a, e.To)
			}
		}
	}
}

func TestSyntheticCityConnected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		n := testNet(t, seed, 10, 10, 0.35)
		// BFS from node 0 must reach every node.
		seen := make([]bool, n.NumNodes())
		queue := []NodeID{0}
		seen[0] = true
		count := 1
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range n.Adj[v] {
				if !seen[e.To] {
					seen[e.To] = true
					count++
					queue = append(queue, e.To)
				}
			}
		}
		if count != n.NumNodes() {
			t.Fatalf("seed %d: network disconnected (%d of %d reachable)", seed, count, n.NumNodes())
		}
	}
}

func TestShortestPathTrivial(t *testing.T) {
	n := testNet(t, 3, 5, 5, 0)
	r := NewRouter(n)
	p, err := r.ShortestPath(7, 7)
	if err != nil || len(p) != 1 || p[0] != 7 {
		t.Fatalf("self path = %v, %v", p, err)
	}
}

func pathLength(n *Network, path []NodeID) float64 {
	var l float64
	for i := 0; i+1 < len(path); i++ {
		l += n.Nodes[path[i]].Dist(n.Nodes[path[i+1]])
	}
	return l
}

func TestShortestPathIsOptimalOnGrid(t *testing.T) {
	// On a full grid with no jitter-independent shortcuts, compare Dijkstra
	// against a brute-force Bellman-Ford distance computation.
	n := testNet(t, 4, 6, 6, 0.25)
	r := NewRouter(n)
	const src = NodeID(0)

	dist := make([]float64, n.NumNodes())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < n.NumNodes(); iter++ {
		for v := range n.Adj {
			for _, e := range n.Adj[v] {
				if nd := dist[v] + e.Length; nd < dist[e.To] {
					dist[e.To] = nd
				}
			}
		}
	}

	for dst := NodeID(0); int(dst) < n.NumNodes(); dst++ {
		p, err := r.ShortestPath(src, dst)
		if err != nil {
			t.Fatalf("no path to %d: %v", dst, err)
		}
		if p[0] != src || p[len(p)-1] != dst {
			t.Fatalf("path endpoints wrong: %v", p)
		}
		got := pathLength(n, p)
		if math.Abs(got-dist[dst]) > 1e-6 {
			t.Fatalf("path to %d has length %.3f, optimum %.3f", dst, got, dist[dst])
		}
		// Consecutive path nodes must be road neighbours.
		for i := 0; i+1 < len(p); i++ {
			ok := false
			for _, e := range n.Adj[p[i]] {
				if e.To == p[i+1] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("path %v uses non-edge %d→%d", p, p[i], p[i+1])
			}
		}
	}
}

func TestRouterReuse(t *testing.T) {
	n := testNet(t, 5, 8, 8, 0.2)
	r := NewRouter(n)
	rng := rand.New(rand.NewSource(6))
	// Repeated queries must not interfere (epoch-based resets).
	for i := 0; i < 50; i++ {
		src, dst := n.RandomNode(rng), n.RandomNode(rng)
		p1, err1 := r.ShortestPath(src, dst)
		p2, err2 := r.ShortestPath(src, dst)
		if err1 != nil || err2 != nil {
			t.Fatalf("unexpected error: %v / %v", err1, err2)
		}
		if math.Abs(pathLength(n, p1)-pathLength(n, p2)) > 1e-9 {
			t.Fatalf("router state leaked between queries: %v vs %v", p1, p2)
		}
	}
}

func TestWalker(t *testing.T) {
	n := &Network{
		Nodes: []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}},
		Adj: [][]Edge{
			{{To: 1, Length: 10}},
			{{To: 0, Length: 10}, {To: 2, Length: 10}},
			{{To: 1, Length: 10}},
		},
		env: geo.NewRect(geo.Point{}, geo.Point{X: 10, Y: 10}),
	}
	w := NewWalker(n, []NodeID{0, 1, 2})
	if w.Pos() != (geo.Point{X: 0, Y: 0}) {
		t.Fatalf("start pos = %v", w.Pos())
	}
	if got := w.Advance(5); got != 5 {
		t.Fatalf("Advance(5) travelled %v", got)
	}
	if w.Pos() != (geo.Point{X: 5, Y: 0}) {
		t.Fatalf("pos after 5 = %v", w.Pos())
	}
	// Cross the corner.
	if got := w.Advance(8); got != 8 {
		t.Fatalf("Advance(8) travelled %v", got)
	}
	if w.Pos() != (geo.Point{X: 10, Y: 3}) {
		t.Fatalf("pos after corner = %v", w.Pos())
	}
	// Run past the end: travel is truncated.
	got := w.Advance(100)
	if math.Abs(got-7) > 1e-9 {
		t.Fatalf("Advance(100) travelled %v, want 7", got)
	}
	if !w.Done() {
		t.Error("walker should be done")
	}
	if w.Pos() != (geo.Point{X: 10, Y: 10}) {
		t.Fatalf("final pos = %v", w.Pos())
	}
	if w.Advance(1) != 0 {
		t.Error("advancing a done walker should travel 0")
	}
}

func TestWalkerSingleNodePath(t *testing.T) {
	n := &Network{Nodes: []geo.Point{{X: 3, Y: 4}}, Adj: [][]Edge{nil}}
	w := NewWalker(n, []NodeID{0})
	if !w.Done() || w.Pos() != (geo.Point{X: 3, Y: 4}) {
		t.Error("single-node walker should be done at the node")
	}
}
