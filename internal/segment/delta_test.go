package segment

import (
	"testing"

	"streach/internal/contact"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// netLog returns a log sealing slabs into their plain slab-local networks
// and counting builds, pre-filled with total rolling-pattern instants.
func netLog(t *testing.T, numObjects, width, total int) (*Log[*contact.Network], *int) {
	t.Helper()
	builds := new(int)
	log := NewLog(numObjects, width, func(span contact.Interval, net *contact.Network) (*contact.Network, error) {
		*builds++
		return net, nil
	})
	for tk := trajectory.Tick(0); int(tk) < total; tk++ {
		if _, _, err := log.AddInstant(pairsAt(numObjects, tk)); err != nil {
			t.Fatal(err)
		}
	}
	return log, builds
}

func ev(tick trajectory.Tick, a, b trajectory.ObjectID) contact.Event {
	return contact.Event{Tick: tick, A: a, B: b}
}

func retr(tick trajectory.Tick, a, b trajectory.ObjectID) contact.Event {
	return contact.Event{Tick: tick, A: a, B: b, Retract: true}
}

// TestDeltaLateAndRetract drives late adds and retractions into sealed
// slabs and the tail, asserting overlays, counters, point lookups, and the
// cumulative snapshot all reflect the corrections immediately.
func TestDeltaLateAndRetract(t *testing.T) {
	const numObjects, width, total = 8, 16, 40 // 2 sealed slabs + 8-tick tail
	log, _ := netLog(t, numObjects, width, total)

	// Pair (0,7) never occurs in the rolling pattern; (0,1) is active at
	// even ticks. Late-add the former at a sealed tick and in the tail,
	// retract the latter at a sealed tick, and mix in a duplicate + a miss.
	res, err := log.IngestEvents([]contact.Event{
		ev(5, 0, 7),     // late add, slab 0
		ev(35, 7, 0),    // late add, tail (normalized to (0,7))
		retr(6, 0, 1),   // retraction, slab 0
		ev(4, 0, 1),     // duplicate: already active at tick 4
		retr(20, 0, 7),  // miss: never active at tick 20
		retr(100, 2, 3), // miss: beyond the frontier, must not advance time
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Late != 2 || res.Retracted != 1 || res.Duplicates != 1 || res.RetractMisses != 2 {
		t.Fatalf("ApplyResult = %+v, want late 2, retracted 1, dup 1, misses 2", res)
	}
	if res.Frontier != 0 || len(res.Sealed) != 0 {
		t.Fatalf("no frontier work expected, got %+v", res)
	}
	wantChanged := []contact.Interval{{Lo: 5, Hi: 6}, {Lo: 35, Hi: 35}}
	if len(res.Changed) != 2 || res.Changed[0] != wantChanged[0] || res.Changed[1] != wantChanged[1] {
		t.Fatalf("Changed = %v, want %v", res.Changed, wantChanged)
	}
	if got := log.NumTicks(); got != total {
		t.Fatalf("NumTicks = %d after pure corrections, want %d", got, total)
	}

	if d := log.DeltaDepth(); d != 2 { // tail events are absorbed, not pending
		t.Fatalf("DeltaDepth = %d, want 2", d)
	}
	if d := log.DirtySlabs(); d != 1 {
		t.Fatalf("DirtySlabs = %d, want 1", d)
	}
	c := log.Counters()
	if c.LateApplied != 2 || c.Retractions != 1 || c.Duplicates != 1 || c.RetractMisses != 2 {
		t.Fatalf("Counters = %+v", c)
	}

	for _, check := range []struct {
		a, b trajectory.ObjectID
		tick trajectory.Tick
		want bool
	}{
		{0, 7, 5, true},    // late add visible in sealed slab
		{0, 7, 35, true},   // late add visible in tail
		{0, 1, 6, false},   // (0,1) was active at tick 6 (even), retracted above
		{0, 1, 4, true},    // duplicate left the instant intact
		{0, 7, 4, false},   // neighbouring tick untouched
		{2, 3, 100, false}, // beyond the domain
	} {
		if got := log.ActiveAt(check.a, check.b, check.tick); got != check.want {
			t.Fatalf("ActiveAt(%d,%d,%d) = %v, want %v", check.a, check.b, check.tick, got, check.want)
		}
	}
	// The retraction must not leak onto another even tick.
	if !log.ActiveAt(0, 1, 8) {
		t.Fatal("retraction leaked onto another tick")
	}

	// View: slab 0 dirty with overlay, slab 1 clean, tail patched.
	slabs, _, tailNet, numTicks := log.View()
	if numTicks != total || len(slabs) != 2 {
		t.Fatalf("View: %d slabs over %d ticks", len(slabs), numTicks)
	}
	if slabs[0].Overlay == nil || slabs[0].Pending != 2 {
		t.Fatalf("slab 0 overlay missing (pending %d)", slabs[0].Pending)
	}
	if slabs[1].Overlay != nil || slabs[1].Pending != 0 {
		t.Fatal("slab 1 should be clean")
	}
	hasPair := func(net *contact.Network, tk trajectory.Tick, pr stjoin.Pair) bool {
		for _, q := range net.PairsAt(tk) {
			if q == pr {
				return true
			}
		}
		return false
	}
	if !hasPair(slabs[0].Overlay, 5, stjoin.MakePair(0, 7)) {
		t.Fatal("overlay misses the late add")
	}
	if hasPair(slabs[0].Value, 5, stjoin.MakePair(0, 7)) {
		t.Fatal("sealed value mutated before compaction")
	}
	if !hasPair(tailNet, 35-32, stjoin.MakePair(0, 7)) {
		t.Fatal("tail view misses the late add")
	}

	// Snapshot agrees with ground truth: the rolling pattern with the
	// three corrections applied.
	want := contact.NewBuilder(numObjects)
	for tk := trajectory.Tick(0); int(tk) < total; tk++ {
		pairs := pairsAt(numObjects, tk)
		switch tk {
		case 5, 35:
			pairs = append(pairs, stjoin.MakePair(0, 7))
		case 6:
			kept := pairs[:0]
			for _, pr := range pairs {
				if pr != stjoin.MakePair(0, 1) {
					kept = append(kept, pr)
				}
			}
			pairs = kept
		}
		want.AddInstant(pairs)
	}
	if !sameNetwork(log.Snapshot(), want.Network()) {
		t.Fatal("Snapshot disagrees with patched ground truth")
	}
}

func TestDeltaCompaction(t *testing.T) {
	const numObjects, width, total = 8, 16, 48 // 3 sealed slabs, empty tail
	log, builds := netLog(t, numObjects, width, total)
	*builds = 0

	if _, err := log.IngestEvents([]contact.Event{
		ev(2, 0, 7), ev(3, 0, 7), // slab 0: depth 2
		ev(20, 0, 7), // slab 1: depth 1
	}, 0); err != nil {
		t.Fatal(err)
	}

	// Threshold 2 compacts only slab 0.
	n, err := log.IngestEvents([]contact.Event{ev(21, 0, 7)}, 2) // slab 1 now depth 2
	if err != nil {
		t.Fatal(err)
	}
	if n.Compacted != 2 {
		t.Fatalf("threshold pass compacted %d slabs, want 2", n.Compacted)
	}
	if *builds != 2 {
		t.Fatalf("%d rebuilds, want 2", *builds)
	}
	if log.DeltaDepth() != 0 || log.DirtySlabs() != 0 {
		t.Fatalf("depth %d dirty %d after compaction", log.DeltaDepth(), log.DirtySlabs())
	}
	// The rebuilt sealed value now contains the correction directly.
	slabs, _, _, _ := log.View()
	if slabs[0].Overlay != nil {
		t.Fatal("slab 0 still has an overlay")
	}
	found := false
	for _, q := range slabs[0].Value.PairsAt(2) {
		if q == stjoin.MakePair(0, 7) {
			found = true
		}
	}
	if !found {
		t.Fatal("compacted sealed value misses the late add")
	}
	if got := log.Counters().Compactions; got != 2 {
		t.Fatalf("Compactions counter = %d, want 2", got)
	}

	// Manual Compact on a clean log is a no-op.
	if n, err := log.Compact(); err != nil || n != 0 {
		t.Fatalf("clean Compact = (%d, %v)", n, err)
	}
	// Dirty again, manual Compact sweeps regardless of depth.
	if _, err := log.IngestEvents([]contact.Event{ev(40, 0, 7)}, 0); err != nil {
		t.Fatal(err)
	}
	if n, err := log.Compact(); err != nil || n != 1 {
		t.Fatalf("manual Compact = (%d, %v), want (1, nil)", n, err)
	}
	if !log.ActiveAt(0, 7, 40) {
		t.Fatal("correction lost across compaction")
	}
}

// TestEventFrontierGap ingests an event beyond the frontier: the clock
// pads forward with empty instants (sealing slabs as it crosses widths)
// and the instant lands at its tick.
func TestEventFrontierGap(t *testing.T) {
	const numObjects, width = 4, 8
	log := NewLog(numObjects, width, func(span contact.Interval, net *contact.Network) (*contact.Network, error) {
		return net, nil
	})
	res, err := log.IngestEvents([]contact.Event{ev(19, 0, 1), ev(19, 0, 1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if log.NumTicks() != 20 || log.NumSealed() != 2 {
		t.Fatalf("NumTicks %d NumSealed %d, want 20 and 2", log.NumTicks(), log.NumSealed())
	}
	if res.Frontier != 1 || res.Duplicates != 1 || len(res.Sealed) != 2 {
		t.Fatalf("res = %+v", res)
	}
	if len(res.Changed) != 1 || res.Changed[0] != (contact.Interval{Lo: 0, Hi: 19}) {
		t.Fatalf("Changed = %v, want one [0,19] interval", res.Changed)
	}
	if !log.ActiveAt(0, 1, 19) || log.ActiveAt(0, 1, 18) {
		t.Fatal("frontier-gap event misplaced")
	}

	// AdvanceTo pads the quiet feed; already-covered is a no-op.
	if _, err := log.AdvanceTo(25); err != nil {
		t.Fatal(err)
	}
	if log.NumTicks() != 25 {
		t.Fatalf("NumTicks = %d after AdvanceTo(25)", log.NumTicks())
	}
	if _, err := log.AdvanceTo(10); err != nil || log.NumTicks() != 25 {
		t.Fatal("AdvanceTo must never rewind")
	}
}

// TestEventFastPathMatchesAddInstant pins the in-order equivalence: a feed
// delivered as frontier event batches builds the identical log to the same
// feed delivered via AddInstant.
func TestEventFastPathMatchesAddInstant(t *testing.T) {
	const numObjects, width, total = 8, 16, 40
	build := func(span contact.Interval, net *contact.Network) (*contact.Network, error) {
		return net, nil
	}
	byInstant := NewLog(numObjects, width, build)
	byEvents := NewLog(numObjects, width, build)
	for tk := trajectory.Tick(0); int(tk) < total; tk++ {
		pairs := pairsAt(numObjects, tk)
		if _, _, err := byInstant.AddInstant(pairs); err != nil {
			t.Fatal(err)
		}
		evs := make([]contact.Event, len(pairs))
		for i, pr := range pairs {
			evs[i] = ev(tk, pr.A, pr.B)
		}
		res, err := byEvents.IngestEvents(evs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Frontier != len(pairs) || res.Late != 0 || res.Duplicates != 0 {
			t.Fatalf("tick %d: res = %+v", tk, res)
		}
	}
	if byEvents.NumSealed() != byInstant.NumSealed() {
		t.Fatalf("sealed %d vs %d", byEvents.NumSealed(), byInstant.NumSealed())
	}
	if !sameNetwork(byEvents.Snapshot(), byInstant.Snapshot()) {
		t.Fatal("event-fed log diverged from instant-fed log")
	}
}

// TestSealAbsorbsTailLateEvents: late events landing in the open tail are
// folded in at seal time, so the sealed slab is born clean.
func TestSealAbsorbsTailLateEvents(t *testing.T) {
	const numObjects, width = 4, 8
	log, _ := netLog(t, numObjects, width, 4) // tail holds ticks 0..3
	if _, err := log.IngestEvents([]contact.Event{ev(1, 0, 3)}, 0); err != nil {
		t.Fatal(err)
	}
	if log.DeltaDepth() != 0 {
		t.Fatal("tail-late events must not count as sealed-slab delta depth")
	}
	// Fill to the seal.
	for tk := trajectory.Tick(4); int(tk) < width; tk++ {
		if _, _, err := log.AddInstant(pairsAt(numObjects, tk)); err != nil {
			t.Fatal(err)
		}
	}
	slabs, _, _, _ := log.View()
	if len(slabs) != 1 || slabs[0].Overlay != nil || slabs[0].Pending != 0 {
		t.Fatalf("slab not born clean: %d slabs, pending %d", len(slabs), slabs[0].Pending)
	}
	found := false
	for _, q := range slabs[0].Value.PairsAt(1) {
		if q == stjoin.MakePair(0, 3) {
			found = true
		}
	}
	if !found {
		t.Fatal("sealed value lost the tail-late event")
	}
	if !log.ActiveAt(0, 3, 1) {
		t.Fatal("ActiveAt lost the absorbed event")
	}
}
