// Package segment partitions the time axis of a contact dataset into
// fixed-width slabs, the substrate of the time-sliced index architecture:
// every slab carries its own (immutable, independently built) index segment
// and a query walks only the segments overlapping its interval, carrying
// the reachable frontier from slab to slab.
//
// The package has two halves:
//
//   - Layout is pure slab arithmetic — which slab holds a tick, which slabs
//     overlap an interval, what span a slab covers. Batch segmentation
//     (splitting a frozen dataset) is Layout plus contact.Network.Window /
//     trajectory.Dataset.Window.
//   - Log is the streaming half, shaped like an LSM tree: appends go to one
//     mutable in-memory tail segment (an incremental contact.Builder over
//     the current slab only); when the tail's slab closes it is sealed —
//     flushed through a build callback into an immutable per-slab value
//     (typically a disk-resident index segment) — and a fresh tail opens.
//     Appends therefore cost O(instant) and never rebuild history, and
//     queries see sealed segments plus a snapshot of the small tail.
//
// Log is safe for one appender running concurrently with any number of
// readers: sealed values are immutable once published and View hands out
// consistent snapshots.
package segment

import (
	"fmt"
	"sync"

	"streach/internal/contact"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// DefaultWidth is the slab width used when a caller passes no explicit
// width: wide enough that typical query intervals (the paper's 150-350
// instants) span only a few slabs, narrow enough that a tail rebuild or a
// single slab index stays small.
const DefaultWidth = 128

// Width returns w defaulted.
func Width(w int) int {
	if w <= 0 {
		return DefaultWidth
	}
	return w
}

// Layout describes the slab partitioning of a time domain: slab i covers
// ticks [i*Width, (i+1)*Width) intersected with [0, NumTicks). The final
// slab may be partial.
type Layout struct {
	Width    int
	NumTicks int
}

// NewLayout returns the layout of numTicks instants in slabs of width
// ticks (defaulted via Width).
func NewLayout(width, numTicks int) Layout {
	return Layout{Width: Width(width), NumTicks: numTicks}
}

// NumSlabs returns the number of slabs covering the time domain.
func (l Layout) NumSlabs() int {
	if l.NumTicks <= 0 {
		return 0
	}
	return (l.NumTicks + l.Width - 1) / l.Width
}

// SlabOf returns the index of the slab containing tick t (which must be in
// [0, NumTicks)).
func (l Layout) SlabOf(t trajectory.Tick) int { return int(t) / l.Width }

// Span returns the tick interval of slab i, clipped to the time domain.
func (l Layout) Span(i int) contact.Interval {
	lo := trajectory.Tick(i * l.Width)
	hi := lo + trajectory.Tick(l.Width) - 1
	if int(hi) >= l.NumTicks {
		hi = trajectory.Tick(l.NumTicks - 1)
	}
	return contact.Interval{Lo: lo, Hi: hi}
}

// Overlapping returns the index range [first, last] of slabs overlapping
// iv, or ok=false when the (clamped) interval is empty.
func (l Layout) Overlapping(iv contact.Interval) (first, last int, ok bool) {
	iv = iv.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(l.NumTicks - 1)})
	if l.NumTicks <= 0 || iv.Len() == 0 {
		return 0, 0, false
	}
	return l.SlabOf(iv.Lo), l.SlabOf(iv.Hi), true
}

// Sealed is one immutable sealed segment: the slab's global tick span plus
// the value the build callback produced for it (an index, an engine core,
// a plain network — whatever the caller segments into).
type Sealed[S any] struct {
	Span  contact.Interval
	Value S
}

// BuildFunc flushes one closed slab into its sealed value. span is the
// slab's global tick interval; net is the slab-local contact network (its
// ticks re-based to [0, span.Len())). Builds run under the log's lock —
// appends and seals are serialized with each other, never with readers.
type BuildFunc[S any] func(span contact.Interval, net *contact.Network) (S, error)

// Log is the streaming segment log: sealed (immutable) segments plus one
// mutable tail absorbing appends, sealed LSM-style when its slab closes.
type Log[S any] struct {
	width int
	build BuildFunc[S]

	mu        sync.Mutex
	sealed    []Sealed[S]
	tail      *contact.Builder // slab-local: tick 0 of the builder is tailStart
	tailStart trajectory.Tick
	tailNet   *contact.Network // cached tail snapshot, nil when dirty
	full      *contact.Builder // cumulative network, for Snapshot
}

// NewLog returns an empty log for numObjects objects with the given slab
// width (defaulted via Width); build flushes each closed slab.
func NewLog[S any](numObjects, width int, build BuildFunc[S]) *Log[S] {
	return &Log[S]{
		width: Width(width),
		build: build,
		tail:  contact.NewBuilder(numObjects),
		full:  contact.NewBuilder(numObjects),
	}
}

// Width returns the slab width.
func (l *Log[S]) Width() int { return l.width }

// NumTicks returns the number of instants appended so far.
func (l *Log[S]) NumTicks() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.tailStart) + l.tail.NumTicks()
}

// NumSealed returns the number of sealed segments.
func (l *Log[S]) NumSealed() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sealed)
}

// AddInstant appends the contact pairs active at the next instant to the
// tail. When the append closes the tail's slab, the slab is sealed: its
// local network is flushed through the build callback and a fresh tail
// opens; sealed reports that a seal happened and span is the sealed
// slab's global tick interval (callers invalidating derived state — query
// caches, watchers — key off it). A build error leaves the tail un-sealed
// — the instant itself is retained and the time axis stays intact — and
// is returned to the appender; the next append retries the seal over the
// (now wider) tail, so a transient build failure merely widens that one
// sealed slab.
func (l *Log[S]) AddInstant(pairs []stjoin.Pair) (sealed bool, span contact.Interval, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tail.AddInstant(pairs)
	l.full.AddInstant(pairs)
	l.tailNet = nil
	if l.tail.NumTicks() < l.width {
		return false, contact.Interval{}, nil
	}
	// Seal the whole tail. Normally that is exactly one slab; after a
	// failed build it can be wider — the span always matches the sealed
	// network, so the planner's slab walk stays exact.
	net := l.tail.Network()
	span = contact.Interval{
		Lo: l.tailStart,
		Hi: l.tailStart + trajectory.Tick(net.NumTicks) - 1,
	}
	value, err := l.build(span, net)
	if err != nil {
		return false, contact.Interval{}, fmt.Errorf("segment: seal slab %v: %w", span, err)
	}
	l.sealed = append(l.sealed, Sealed[S]{Span: span, Value: value})
	l.tailStart += trajectory.Tick(net.NumTicks)
	l.tail = contact.NewBuilder(l.full.NumObjects())
	return true, span, nil
}

// View returns a consistent snapshot for one query: the sealed segments,
// the tail's span and slab-local network (nil when the tail is empty), and
// the total tick count. The sealed slice and tail network are immutable —
// the reader may use them lock-free for the whole query.
func (l *Log[S]) View() (sealed []Sealed[S], tailSpan contact.Interval, tailNet *contact.Network, numTicks int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	numTicks = int(l.tailStart) + l.tail.NumTicks()
	if l.tail.NumTicks() > 0 {
		if l.tailNet == nil {
			l.tailNet = l.tail.Network()
		}
		tailNet = l.tailNet
		tailSpan = contact.Interval{
			Lo: l.tailStart,
			Hi: l.tailStart + trajectory.Tick(l.tail.NumTicks()) - 1,
		}
	}
	return l.sealed, tailSpan, tailNet, numTicks
}

// Snapshot returns the cumulative contact network over every instant
// appended so far (the same network a ContactStream snapshot would give),
// for validation against ground truth.
func (l *Log[S]) Snapshot() *contact.Network {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.full.Network()
}
