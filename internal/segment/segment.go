// Package segment partitions the time axis of a contact dataset into
// fixed-width slabs, the substrate of the time-sliced index architecture:
// every slab carries its own (immutable, independently built) index segment
// and a query walks only the segments overlapping its interval, carrying
// the reachable frontier from slab to slab.
//
// The package has two halves:
//
//   - Layout is pure slab arithmetic — which slab holds a tick, which slabs
//     overlap an interval, what span a slab covers. Batch segmentation
//     (splitting a frozen dataset) is Layout plus contact.Network.Window /
//     trajectory.Dataset.Window.
//   - Log is the streaming half, shaped like an LSM tree: appends go to one
//     mutable in-memory tail segment (an incremental contact.Builder over
//     the current slab only); when the tail's slab closes it is sealed —
//     flushed through a build callback into an immutable per-slab value
//     (typically a disk-resident index segment) — and a fresh tail opens.
//     Appends therefore cost O(instant) and never rebuild history, and
//     queries see sealed segments plus a snapshot of the small tail.
//
// Real feeds are not append-only, so each sealed slab also carries a
// delta log: late contact events and retractions targeting an already-
// sealed tick are buffered against the slab as an effective overlay
// network, which readers consult instead of the (now stale) sealed value.
// Answers are exact immediately; the sealed index itself is only rebuilt
// when a compaction pass (manual Compact or a per-ingest threshold) folds
// the deltas in through the same build callback and swaps the value under
// the log's mutex, invisible to in-flight readers holding a View.
//
// Log is safe for one appender running concurrently with any number of
// readers: sealed values and overlay networks are immutable once published
// and View hands out consistent snapshots.
package segment

import (
	"fmt"
	"sort"
	"sync"

	"streach/internal/contact"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

// DefaultWidth is the slab width used when a caller passes no explicit
// width: wide enough that typical query intervals (the paper's 150-350
// instants) span only a few slabs, narrow enough that a tail rebuild or a
// single slab index stays small.
const DefaultWidth = 128

// Width returns w defaulted.
func Width(w int) int {
	if w <= 0 {
		return DefaultWidth
	}
	return w
}

// Layout describes the slab partitioning of a time domain: slab i covers
// ticks [i*Width, (i+1)*Width) intersected with [0, NumTicks). The final
// slab may be partial.
type Layout struct {
	Width    int
	NumTicks int
}

// NewLayout returns the layout of numTicks instants in slabs of width
// ticks (defaulted via Width).
func NewLayout(width, numTicks int) Layout {
	return Layout{Width: Width(width), NumTicks: numTicks}
}

// NumSlabs returns the number of slabs covering the time domain.
func (l Layout) NumSlabs() int {
	if l.NumTicks <= 0 {
		return 0
	}
	return (l.NumTicks + l.Width - 1) / l.Width
}

// SlabOf returns the index of the slab containing tick t (which must be in
// [0, NumTicks)).
func (l Layout) SlabOf(t trajectory.Tick) int { return int(t) / l.Width }

// Span returns the tick interval of slab i, clipped to the time domain.
func (l Layout) Span(i int) contact.Interval {
	lo := trajectory.Tick(i * l.Width)
	hi := lo + trajectory.Tick(l.Width) - 1
	if int(hi) >= l.NumTicks {
		hi = trajectory.Tick(l.NumTicks - 1)
	}
	return contact.Interval{Lo: lo, Hi: hi}
}

// Overlapping returns the index range [first, last] of slabs overlapping
// iv, or ok=false when the (clamped) interval is empty.
func (l Layout) Overlapping(iv contact.Interval) (first, last int, ok bool) {
	iv = iv.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(l.NumTicks - 1)})
	if l.NumTicks <= 0 || iv.Len() == 0 {
		return 0, 0, false
	}
	return l.SlabOf(iv.Lo), l.SlabOf(iv.Hi), true
}

// Sealed is one immutable sealed segment: the slab's global tick span plus
// the value the build callback produced for it (an index, an engine core,
// a plain network — whatever the caller segments into).
type Sealed[S any] struct {
	Span  contact.Interval
	Value S
}

// BuildFunc flushes one closed slab into its sealed value. span is the
// slab's global tick interval; net is the slab-local contact network (its
// ticks re-based to [0, span.Len())). Builds run under the log's lock —
// appends and seals are serialized with each other, never with readers.
type BuildFunc[S any] func(span contact.Interval, net *contact.Network) (S, error)

// slabDelta is the mutable correction state riding alongside one sealed
// segment. base is the slab-local network the sealed value was built from;
// events are the effective late/retraction events accepted since, and
// patched is base with events folded in (nil when the slab is clean). A
// compaction rebuilds the sealed value from patched and resets the delta.
type slabDelta struct {
	base    *contact.Network
	patched *contact.Network
	events  []contact.Event
}

// Counters are the log's cumulative ingest-anomaly and maintenance
// counters, monotone over the log's lifetime.
type Counters struct {
	// LateApplied counts contact adds accepted at a tick behind the
	// frontier; Retractions counts removals of previously live instants.
	LateApplied, Retractions int64
	// Duplicates counts adds of already-present contact instants;
	// RetractMisses counts retractions that matched nothing.
	Duplicates, RetractMisses int64
	// Compactions counts dirty slabs rebuilt through the build callback.
	Compactions int64
}

// SlabView is one sealed segment as seen by a reader. When late events are
// pending against the slab, Overlay is the slab-local network with those
// events folded in — the sealed Value is stale and the reader must answer
// from Overlay instead; Pending is the delta-log depth. A clean slab has a
// nil Overlay.
type SlabView[S any] struct {
	Span    contact.Interval
	Value   S
	Overlay *contact.Network
	Pending int
}

// ApplyResult reports what one ingest batch did to the log.
type ApplyResult struct {
	// Frontier counts contact instants applied at (or beyond) the
	// frontier; Late counts instants applied behind it.
	Frontier, Late int
	// Retracted, Duplicates and RetractMisses mirror the Counters fields,
	// scoped to this batch.
	Retracted, Duplicates, RetractMisses int
	// Sealed lists the spans of slabs sealed by this batch, Changed the
	// (merged, ascending) tick intervals whose contact content changed —
	// the invalidation set for any cache derived from query answers.
	Sealed, Changed []contact.Interval
	// Compacted counts slabs re-sealed by the batch's threshold policy.
	Compacted int
}

// Log is the streaming segment log: sealed (immutable) segments plus one
// mutable tail absorbing appends, sealed LSM-style when its slab closes,
// with per-slab delta logs buffering out-of-order corrections.
type Log[S any] struct {
	numObjects int
	width      int
	build      BuildFunc[S]

	mu        sync.Mutex
	sealed    []Sealed[S]
	deltas    []slabDelta      // parallel to sealed
	tail      *contact.Builder // slab-local: tick 0 of the builder is tailStart
	tailStart trajectory.Tick
	tailNet   *contact.Network // cached raw tail snapshot, nil when dirty
	// Late events within the tail's span cannot be inserted into the
	// append-only Builder, so they overlay it just like a slab delta:
	// tailPatched caches tailNet with tailEvents folded in. The overlay is
	// absorbed at seal time — slabs are born clean.
	tailEvents  []contact.Event
	tailPatched *contact.Network
	fullNet     *contact.Network // cached Snapshot, nil when dirty
	pairScratch []stjoin.Pair
	counters    Counters
}

// NewLog returns an empty log for numObjects objects with the given slab
// width (defaulted via Width); build flushes each closed slab.
func NewLog[S any](numObjects, width int, build BuildFunc[S]) *Log[S] {
	return &Log[S]{
		numObjects: numObjects,
		width:      Width(width),
		build:      build,
		tail:       contact.NewBuilder(numObjects),
	}
}

// Width returns the slab width.
func (l *Log[S]) Width() int { return l.width }

// NumTicks returns the number of instants appended so far.
func (l *Log[S]) NumTicks() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.numTicksLocked()
}

func (l *Log[S]) numTicksLocked() int {
	return int(l.tailStart) + l.tail.NumTicks()
}

// NumSealed returns the number of sealed segments.
func (l *Log[S]) NumSealed() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sealed)
}

// DeltaDepth returns the number of effective late/retraction events
// pending against sealed slabs — the work a full Compact would fold in.
func (l *Log[S]) DeltaDepth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := range l.deltas {
		n += len(l.deltas[i].events)
	}
	return n
}

// DirtySlabs returns the number of sealed slabs with pending deltas.
func (l *Log[S]) DirtySlabs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := range l.deltas {
		if len(l.deltas[i].events) > 0 {
			n++
		}
	}
	return n
}

// Counters returns the cumulative ingest/maintenance counters.
func (l *Log[S]) Counters() Counters {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counters
}

// AddInstant appends the contact pairs active at the next instant to the
// tail. When the append closes the tail's slab, the slab is sealed: its
// local network is flushed through the build callback and a fresh tail
// opens; sealed reports that a seal happened and span is the sealed
// slab's global tick interval (callers invalidating derived state — query
// caches, watchers — key off it). A build error leaves the tail un-sealed
// — the instant itself is retained and the time axis stays intact — and
// is returned to the appender; the next append retries the seal over the
// (now wider) tail, so a transient build failure merely widens that one
// sealed slab.
func (l *Log[S]) AddInstant(pairs []stjoin.Pair) (sealed bool, span contact.Interval, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var res ApplyResult
	_, err = l.appendInstantLocked(pairs, &res)
	if len(res.Sealed) > 0 {
		return true, res.Sealed[0], err
	}
	return false, contact.Interval{}, err
}

// AdvanceTo pads the time domain with empty instants until it holds at
// least numTicks instants — the clock half of ingestion, decoupled from
// contact arrival so a quiet feed still moves the frontier.
func (l *Log[S]) AdvanceTo(numTicks int) (ApplyResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var res ApplyResult
	for l.numTicksLocked() < numTicks {
		if _, err := l.appendInstantLocked(nil, &res); err != nil {
			return res, err
		}
	}
	return res, nil
}

// appendInstantLocked appends one frontier instant and seals the tail's
// slab if the append closed it, accumulating the outcome into res.
// applied is the number of distinct contact pairs at the new instant.
func (l *Log[S]) appendInstantLocked(pairs []stjoin.Pair, res *ApplyResult) (applied int, err error) {
	t := l.tailStart + trajectory.Tick(l.tail.NumTicks())
	l.tail.AddInstant(pairs)
	applied = l.tail.ActivePairs()
	l.tailNet, l.tailPatched, l.fullNet = nil, nil, nil
	res.Changed = appendChangedTick(res.Changed, t)
	if l.tail.NumTicks() < l.width {
		return applied, nil
	}
	// Seal the whole tail — with any late events already folded in, so the
	// slab is born clean. Normally that is exactly one slab; after a failed
	// build it can be wider — the span always matches the sealed network,
	// so the planner's slab walk stays exact.
	net := l.tailEffectiveLocked()
	span := contact.Interval{
		Lo: l.tailStart,
		Hi: l.tailStart + trajectory.Tick(net.NumTicks) - 1,
	}
	value, err := l.build(span, net)
	if err != nil {
		return applied, fmt.Errorf("segment: seal slab %v: %w", span, err)
	}
	l.sealed = append(l.sealed, Sealed[S]{Span: span, Value: value})
	l.deltas = append(l.deltas, slabDelta{base: net})
	l.tailStart += trajectory.Tick(net.NumTicks)
	l.tail = contact.NewBuilder(l.numObjects)
	l.tailEvents, l.tailNet, l.tailPatched = nil, nil, nil
	res.Sealed = append(res.Sealed, span)
	return applied, nil
}

// IngestEvents folds a batch of contact events — frontier appends, late
// adds, retractions, in any tick order — into the log. When
// compactThreshold > 0, any slab whose delta log reaches that depth is
// re-sealed before returning. An error (a failed seal or compaction
// build) may leave the batch partially applied; the returned ApplyResult
// reflects exactly what was applied, and the log remains consistent —
// dirty slabs keep answering exactly through their overlays.
func (l *Log[S]) IngestEvents(events []contact.Event, compactThreshold int) (ApplyResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var res ApplyResult
	if len(events) == 0 {
		return res, nil
	}

	// Fast path: the common in-order feed — every event an add at the
	// frontier tick — is a single Builder append, no sorting or grouping.
	frontier := trajectory.Tick(l.numTicksLocked())
	fast := true
	for _, ev := range events {
		if ev.Retract || ev.Tick != frontier {
			fast = false
			break
		}
	}
	if fast {
		l.pairScratch = l.pairScratch[:0]
		for _, ev := range events {
			l.pairScratch = append(l.pairScratch, stjoin.MakePair(ev.A, ev.B))
		}
		applied, err := l.appendInstantLocked(l.pairScratch, &res)
		res.Frontier = applied
		res.Duplicates = len(events) - applied
		l.counters.Duplicates += int64(res.Duplicates)
		return res, err
	}

	sorted := make([]contact.Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Tick < sorted[j].Tick })
	var err error
	for i := 0; i < len(sorted) && err == nil; {
		j := i
		for j < len(sorted) && sorted[j].Tick == sorted[i].Tick {
			j++
		}
		t, group := sorted[i].Tick, sorted[i:j]
		switch {
		case int(t) >= l.numTicksLocked():
			err = l.applyFrontierGroupLocked(t, group, &res)
		case t >= l.tailStart:
			l.applyTailLateLocked(t, group, &res)
		default:
			l.applySlabLateLocked(t, group, &res)
		}
		i = j
	}
	l.counters.LateApplied += int64(res.Late)
	l.counters.Retractions += int64(res.Retracted)
	l.counters.Duplicates += int64(res.Duplicates)
	l.counters.RetractMisses += int64(res.RetractMisses)
	if err != nil {
		return res, err
	}
	if compactThreshold > 0 {
		n, cerr := l.compactLocked(compactThreshold)
		res.Compacted = n
		err = cerr
	}
	return res, err
}

// applyFrontierGroupLocked applies one tick's worth of events at or beyond
// the frontier: the time domain is padded with empty instants up to t,
// then the group's surviving pair set becomes instant t. Pure-retraction
// groups are all misses and never advance the clock.
func (l *Log[S]) applyFrontierGroupLocked(t trajectory.Tick, group []contact.Event, res *ApplyResult) error {
	set := make(map[stjoin.Pair]bool, len(group))
	anyAdd := false
	for _, ev := range group {
		pr := stjoin.MakePair(ev.A, ev.B)
		switch {
		case !ev.Retract && set[pr]:
			res.Duplicates++
		case !ev.Retract:
			set[pr] = true
			anyAdd = true
			res.Frontier++
		case set[pr]:
			delete(set, pr)
			res.Retracted++
		default:
			res.RetractMisses++
		}
	}
	if !anyAdd {
		return nil
	}
	for trajectory.Tick(l.numTicksLocked()) < t {
		if _, err := l.appendInstantLocked(nil, res); err != nil {
			return err
		}
	}
	l.pairScratch = l.pairScratch[:0]
	for pr := range set {
		l.pairScratch = append(l.pairScratch, pr)
	}
	_, err := l.appendInstantLocked(l.pairScratch, res)
	return err
}

// applyTailLateLocked applies one tick's worth of late events landing in
// the mutable tail's span by extending the tail overlay.
func (l *Log[S]) applyTailLateLocked(t trajectory.Tick, group []contact.Event, res *ApplyResult) {
	local := make([]contact.Event, len(group))
	for i, ev := range group {
		ev.Tick -= l.tailStart
		local[i] = ev
	}
	patched, kept, counts := l.tailEffectiveLocked().ApplyEvents(local)
	res.Late += counts.Applied
	res.Retracted += counts.Retracted
	res.Duplicates += counts.Duplicates
	res.RetractMisses += counts.Misses
	if len(kept) == 0 {
		return
	}
	l.tailEvents = append(l.tailEvents, kept...)
	l.tailPatched = patched
	l.fullNet = nil
	res.Changed = appendChangedTick(res.Changed, t)
}

// applySlabLateLocked applies one tick's worth of late events landing in a
// sealed slab by extending that slab's delta log and overlay.
func (l *Log[S]) applySlabLateLocked(t trajectory.Tick, group []contact.Event, res *ApplyResult) {
	i := sort.Search(len(l.sealed), func(i int) bool { return l.sealed[i].Span.Hi >= t })
	d := &l.deltas[i]
	span := l.sealed[i].Span
	local := make([]contact.Event, len(group))
	for k, ev := range group {
		ev.Tick -= span.Lo
		local[k] = ev
	}
	base := d.patched
	if base == nil {
		base = d.base
	}
	patched, kept, counts := base.ApplyEvents(local)
	res.Late += counts.Applied
	res.Retracted += counts.Retracted
	res.Duplicates += counts.Duplicates
	res.RetractMisses += counts.Misses
	if len(kept) == 0 {
		return
	}
	d.patched = patched
	d.events = append(d.events, kept...)
	l.fullNet = nil
	res.Changed = appendChangedTick(res.Changed, t)
}

// Compact re-seals every dirty slab: each overlay network is flushed
// through the build callback and the sealed value swapped in place under
// the log's mutex — in-flight readers keep their (still-correct) overlay
// views; new Views see the clean rebuilt slab. Returns the number of slabs
// compacted. On a build error the failing slab keeps its delta log and
// stays exact through its overlay; already-compacted slabs stay compacted.
func (l *Log[S]) Compact() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compactLocked(0)
}

// compactLocked re-seals dirty slabs whose delta depth is at least
// threshold (threshold <= 0 means every dirty slab).
func (l *Log[S]) compactLocked(threshold int) (int, error) {
	n := 0
	for i := range l.deltas {
		d := &l.deltas[i]
		if len(d.events) == 0 || len(d.events) < threshold {
			continue
		}
		value, err := l.build(l.sealed[i].Span, d.patched)
		if err != nil {
			return n, fmt.Errorf("segment: compact slab %v: %w", l.sealed[i].Span, err)
		}
		l.sealed[i].Value = value
		d.base, d.patched, d.events = d.patched, nil, nil
		l.counters.Compactions++
		n++
	}
	return n, nil
}

// ActiveAt reports whether the contact (a, b) is live at tick t in the
// log's current effective (delta-patched) state.
func (l *Log[S]) ActiveAt(a, b trajectory.ObjectID, t trajectory.Tick) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if t < 0 || int(t) >= l.numTicksLocked() {
		return false
	}
	pr := stjoin.MakePair(a, b)
	var net *contact.Network
	var local trajectory.Tick
	if t >= l.tailStart {
		net, local = l.tailEffectiveLocked(), t-l.tailStart
	} else {
		i := sort.Search(len(l.sealed), func(i int) bool { return l.sealed[i].Span.Hi >= t })
		if net = l.deltas[i].patched; net == nil {
			net = l.deltas[i].base
		}
		local = t - l.sealed[i].Span.Lo
	}
	for _, q := range net.PairsAt(local) {
		if q == pr {
			return true
		}
	}
	return false
}

// tailEffectiveLocked returns the tail's slab-local network with any
// pending tail-late events folded in, caching both layers.
func (l *Log[S]) tailEffectiveLocked() *contact.Network {
	if l.tailNet == nil {
		l.tailNet = l.tail.Network()
	}
	if len(l.tailEvents) == 0 {
		return l.tailNet
	}
	if l.tailPatched == nil {
		l.tailPatched, _, _ = l.tailNet.ApplyEvents(l.tailEvents)
	}
	return l.tailPatched
}

// View returns a consistent snapshot for one query: the sealed segments
// (with delta overlays where slabs are dirty), the tail's span and
// slab-local effective network (nil when the tail is empty), and the total
// tick count. The returned slice is the reader's own; slab values and
// networks are immutable — the reader may use them lock-free for the whole
// query even across a concurrent compaction.
func (l *Log[S]) View() (slabs []SlabView[S], tailSpan contact.Interval, tailNet *contact.Network, numTicks int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	numTicks = l.numTicksLocked()
	slabs = make([]SlabView[S], len(l.sealed))
	for i, s := range l.sealed {
		slabs[i] = SlabView[S]{Span: s.Span, Value: s.Value}
		if d := &l.deltas[i]; len(d.events) > 0 {
			slabs[i].Overlay = d.patched
			slabs[i].Pending = len(d.events)
		}
	}
	if l.tail.NumTicks() > 0 {
		tailNet = l.tailEffectiveLocked()
		tailSpan = contact.Interval{
			Lo: l.tailStart,
			Hi: l.tailStart + trajectory.Tick(l.tail.NumTicks()) - 1,
		}
	}
	return slabs, tailSpan, tailNet, numTicks
}

// Snapshot returns the cumulative effective contact network over every
// instant appended so far — sealed slabs (delta-patched) concatenated with
// the tail — for validation against ground truth and whole-domain
// semantic evaluation. Contacts spanning slab boundaries appear split;
// per-instant content is identical to an unsegmented build.
func (l *Log[S]) Snapshot() *contact.Network {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fullNet != nil {
		return l.fullNet
	}
	var all []contact.Contact
	for i, s := range l.sealed {
		net := l.deltas[i].patched
		if net == nil {
			net = l.deltas[i].base
		}
		for _, c := range net.Contacts {
			c.Validity.Lo += s.Span.Lo
			c.Validity.Hi += s.Span.Lo
			all = append(all, c)
		}
	}
	if l.tail.NumTicks() > 0 {
		for _, c := range l.tailEffectiveLocked().Contacts {
			c.Validity.Lo += l.tailStart
			c.Validity.Hi += l.tailStart
			all = append(all, c)
		}
	}
	l.fullNet = contact.FromContacts(l.numObjects, l.numTicksLocked(), all)
	return l.fullNet
}

// appendChangedTick extends ivs (kept merged and ascending — ticks arrive
// in ascending order within a batch) with tick t.
func appendChangedTick(ivs []contact.Interval, t trajectory.Tick) []contact.Interval {
	if n := len(ivs); n > 0 {
		last := &ivs[n-1]
		if t <= last.Hi {
			return ivs
		}
		if last.Hi+1 == t {
			last.Hi = t
			return ivs
		}
	}
	return append(ivs, contact.Interval{Lo: t, Hi: t})
}
