package segment

import (
	"errors"
	"testing"

	"streach/internal/contact"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
)

func TestLayoutArithmetic(t *testing.T) {
	l := NewLayout(50, 230)
	if got := l.NumSlabs(); got != 5 {
		t.Fatalf("NumSlabs = %d, want 5", got)
	}
	// Spans must tile [0, NumTicks) exactly.
	expect := trajectory.Tick(0)
	for i := 0; i < l.NumSlabs(); i++ {
		sp := l.Span(i)
		if sp.Lo != expect {
			t.Fatalf("slab %d starts at %d, want %d", i, sp.Lo, expect)
		}
		if sp.Len() == 0 {
			t.Fatalf("slab %d empty", i)
		}
		for tk := sp.Lo; tk <= sp.Hi; tk++ {
			if l.SlabOf(tk) != i {
				t.Fatalf("SlabOf(%d) = %d, want %d", tk, l.SlabOf(tk), i)
			}
		}
		expect = sp.Hi + 1
	}
	if int(expect) != l.NumTicks {
		t.Fatalf("slabs end at %d, want %d", expect, l.NumTicks)
	}
	if sp := l.Span(4); sp.Hi != 229 {
		t.Fatalf("final slab ends at %d, want 229 (partial slab)", sp.Hi)
	}

	first, last, ok := l.Overlapping(contact.Interval{Lo: 60, Hi: 149})
	if !ok || first != 1 || last != 2 {
		t.Fatalf("Overlapping([60,149]) = %d..%d ok=%v, want 1..2", first, last, ok)
	}
	if _, _, ok := l.Overlapping(contact.Interval{Lo: 400, Hi: 500}); ok {
		t.Fatal("Overlapping past the domain should report none")
	}
	if _, _, ok := l.Overlapping(contact.Interval{Lo: 10, Hi: 5}); ok {
		t.Fatal("empty interval should overlap nothing")
	}

	if w := NewLayout(0, 10).Width; w != DefaultWidth {
		t.Fatalf("zero width defaulted to %d, want %d", w, DefaultWidth)
	}
}

// pairsAt synthesizes a deterministic rolling contact pattern: object i
// touches i+1 when (t+i) is even.
func pairsAt(numObjects int, t trajectory.Tick) []stjoin.Pair {
	var out []stjoin.Pair
	for i := 0; i+1 < numObjects; i++ {
		if (int(t)+i)%2 == 0 {
			out = append(out, stjoin.MakePair(trajectory.ObjectID(i), trajectory.ObjectID(i+1)))
		}
	}
	return out
}

// TestLogSealLifecycle drives the tail → sealed lifecycle and asserts the
// sealed slab networks equal the corresponding windows of the cumulative
// snapshot — the defining equivalence of the LSM-style log.
func TestLogSealLifecycle(t *testing.T) {
	const numObjects, width, total = 8, 16, 80
	log := NewLog(numObjects, width, func(span contact.Interval, net *contact.Network) (*contact.Network, error) {
		if net.NumTicks != span.Len() {
			t.Fatalf("slab %v sealed with %d ticks", span, net.NumTicks)
		}
		return net, nil
	})
	for tk := trajectory.Tick(0); tk < total; tk++ {
		wantSealed := int(tk) / width
		if got := log.NumSealed(); got != wantSealed {
			t.Fatalf("before tick %d: %d sealed, want %d", tk, got, wantSealed)
		}
		sealed, span, err := log.AddInstant(pairsAt(numObjects, tk))
		if err != nil {
			t.Fatal(err)
		}
		if wantSeal := int(tk)%width == width-1; sealed != wantSeal {
			t.Fatalf("tick %d: sealed = %v, want %v", tk, sealed, wantSeal)
		}
		if sealed {
			want := contact.Interval{Lo: tk - trajectory.Tick(width) + 1, Hi: tk}
			if span != want {
				t.Fatalf("tick %d: sealed span %v, want %v", tk, span, want)
			}
		}
	}
	if got := log.NumSealed(); got != total/width {
		t.Fatalf("%d sealed after %d ticks, want %d", got, total, total/width)
	}
	if got := log.NumTicks(); got != total {
		t.Fatalf("NumTicks = %d, want %d", got, total)
	}

	full := log.Snapshot()
	sealed, tailSpan, tailNet, numTicks := log.View()
	if numTicks != total {
		t.Fatalf("View numTicks = %d, want %d", numTicks, total)
	}
	if tailNet != nil {
		t.Fatalf("tail should be empty right after a seal, has span %v", tailSpan)
	}
	for i, s := range sealed {
		wantSpan := contact.Interval{Lo: trajectory.Tick(i * width), Hi: trajectory.Tick((i+1)*width) - 1}
		if s.Span != wantSpan {
			t.Fatalf("sealed %d span %v, want %v", i, s.Span, wantSpan)
		}
		win := full.Window(s.Span.Lo, s.Span.Hi)
		if !sameNetwork(s.Value, win) {
			t.Fatalf("sealed slab %d disagrees with Window(%v) of the snapshot", i, s.Span)
		}
	}

	// A partial tail: per-instant pairs of the tail view must match the
	// cumulative network.
	if sealed, _, err := log.AddInstant(pairsAt(numObjects, total)); err != nil || sealed {
		t.Fatalf("partial append sealed=%v err=%v", sealed, err)
	}
	_, tailSpan, tailNet, numTicks = log.View()
	if numTicks != total+1 || tailNet == nil {
		t.Fatalf("tail missing after partial append (numTicks %d)", numTicks)
	}
	if tailSpan.Lo != total || tailSpan.Hi != total {
		t.Fatalf("tail span %v, want [%d, %d]", tailSpan, total, total)
	}
	win := log.Snapshot().Window(tailSpan.Lo, tailSpan.Hi)
	if !sameNetwork(tailNet, win) {
		t.Fatal("tail network disagrees with the snapshot window")
	}
}

// TestLogBuildErrorSurfaces pins the failed-seal contract: the error is
// surfaced, no instant is lost, the time axis never shifts, and a later
// successful build seals one widened slab covering the backlog.
func TestLogBuildErrorSurfaces(t *testing.T) {
	boom := errors.New("boom")
	failures := 3
	log := NewLog(4, 4, func(span contact.Interval, net *contact.Network) (int, error) {
		if span.Lo > 0 && failures > 0 { // the first slab seals cleanly
			failures--
			return 0, boom
		}
		if span.Len() != net.NumTicks {
			t.Fatalf("sealed span %v over %d-tick network", span, net.NumTicks)
		}
		return net.NumTicks, nil
	})
	// Ticks 0..3 seal slab [0, 3]; ticks 4..6 fill the next tail.
	for tk := trajectory.Tick(0); tk < 7; tk++ {
		if _, _, err := log.AddInstant(nil); err != nil {
			t.Fatalf("tick %d: %v", tk, err)
		}
	}
	// Ticks 7..9 each trigger a seal attempt that fails; every instant
	// must still be retained and the error surfaced, with no time shift.
	for tk := trajectory.Tick(7); tk < 10; tk++ {
		if sealed, _, err := log.AddInstant(nil); !errors.Is(err, boom) || sealed {
			t.Fatalf("tick %d: got sealed=%v err=%v, want boom", tk, sealed, err)
		}
		if got := log.NumTicks(); got != int(tk)+1 {
			t.Fatalf("tick %d retained %d instants, want %d", tk, got, tk+1)
		}
	}
	// The next append succeeds and seals one widened slab [4, 10].
	sealedNow, span, err := log.AddInstant(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sealedNow || span != (contact.Interval{Lo: 4, Hi: 10}) {
		t.Fatalf("recovery append sealed=%v span %v, want sealed [4, 10]", sealedNow, span)
	}
	sealed, _, _, numTicks := log.View()
	if numTicks != 11 {
		t.Fatalf("NumTicks = %d, want 11", numTicks)
	}
	if len(sealed) != 2 {
		t.Fatalf("%d sealed slabs, want 2", len(sealed))
	}
	if want := (contact.Interval{Lo: 4, Hi: 10}); sealed[1].Span != want {
		t.Fatalf("widened slab span %v, want %v", sealed[1].Span, want)
	}
	if sealed[1].Value != 7 {
		t.Fatalf("widened slab sealed %d ticks, want 7", sealed[1].Value)
	}
}

// sameNetwork compares two networks by their per-instant contact pairs.
func sameNetwork(a, b *contact.Network) bool {
	if a.NumObjects != b.NumObjects || a.NumTicks != b.NumTicks {
		return false
	}
	for tk := trajectory.Tick(0); int(tk) < a.NumTicks; tk++ {
		pa, pb := a.PairsAt(tk), b.PairsAt(tk)
		if len(pa) != len(pb) {
			return false
		}
		seen := make(map[stjoin.Pair]bool, len(pa))
		for _, p := range pa {
			seen[p] = true
		}
		for _, p := range pb {
			if !seen[p] {
				return false
			}
		}
	}
	return true
}
