// Admission control: a concurrency limiter with a bounded wait queue plus
// per-client token-bucket quotas. The limiter keeps the engine's working
// set at a fixed number of in-flight evaluations — queries beyond it wait
// in a bounded queue, and when the queue is full the request is rejected
// immediately with 503 + Retry-After instead of piling latency onto every
// other client (load shedding). Quotas bound each client's sustained query
// rate independently of global capacity, so one hot client cannot starve
// the rest; violations answer 429 + Retry-After.

package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// admissionError is a typed rejection carrying the HTTP mapping.
type admissionError struct {
	code       string
	status     int
	message    string
	retryAfter time.Duration
}

func (e *admissionError) Error() string { return fmt.Sprintf("%s: %s", e.code, e.message) }

// tokenBucket is one client's quota state; refill is lazy on take.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// admission combines the global concurrency limiter with per-client
// quotas.
type admission struct {
	// sem has maxInFlight slots; holding one admits an evaluation.
	sem         chan struct{}
	maxInFlight int
	// maxQueue bounds how many acquisitions may block waiting for a slot.
	maxQueue int
	waiting  atomic.Int64
	inFlight atomic.Int64

	rejectedQueue atomic.Int64
	rejectedQuota atomic.Int64

	// rate/burst configure the per-client buckets; rate <= 0 disables
	// quotas. now is replaceable for tests.
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	clients map[string]*tokenBucket
}

func newAdmission(maxInFlight, maxQueue int, clientQPS float64, clientBurst int) *admission {
	burst := float64(clientBurst)
	if burst <= 0 {
		burst = clientQPS * 2
		if burst < 1 {
			burst = 1
		}
	}
	return &admission{
		sem:         make(chan struct{}, maxInFlight),
		maxInFlight: maxInFlight,
		maxQueue:    maxQueue,
		rate:        clientQPS,
		burst:       burst,
		now:         time.Now,
		clients:     make(map[string]*tokenBucket),
	}
}

// acquire admits one evaluation for client, blocking in the bounded queue
// when all slots are busy. It returns a release func on success and an
// *admissionError (queue-full, quota) or ctx.Err() on rejection. Capacity
// (an evaluation slot or a queue position) is reserved before the quota
// token is debited, so a request shed with 503 never also consumes the
// client's quota.
func (a *admission) acquire(ctx context.Context, client string) (release func(), err error) {
	queued := false
	select {
	case a.sem <- struct{}{}:
	default:
		// All slots busy: join the bounded wait queue or shed. The bound
		// is enforced on the post-increment value, so concurrent arrivals
		// cannot race past it.
		if int(a.waiting.Add(1)) > a.maxQueue {
			a.waiting.Add(-1)
			a.rejectedQueue.Add(1)
			return nil, &admissionError{
				code:   CodeOverloaded,
				status: 503,
				message: fmt.Sprintf("%d queries in flight and %d queued; try again shortly",
					a.maxInFlight, a.maxQueue),
				retryAfter: time.Second,
			}
		}
		queued = true
	}
	if retryAfter, ok := a.takeToken(client); !ok {
		if queued {
			a.waiting.Add(-1)
		} else {
			<-a.sem
		}
		a.rejectedQuota.Add(1)
		return nil, &admissionError{
			code:       CodeQuota,
			status:     429,
			message:    fmt.Sprintf("client %q exceeded its query rate (%g/s)", client, a.rate),
			retryAfter: retryAfter,
		}
	}
	if queued {
		select {
		case a.sem <- struct{}{}:
			a.waiting.Add(-1)
		case <-ctx.Done():
			a.waiting.Add(-1)
			return nil, ctx.Err()
		}
	}
	a.inFlight.Add(1)
	return func() {
		a.inFlight.Add(-1)
		<-a.sem
	}, nil
}

// takeToken debits one token from client's bucket, reporting the wait
// until the next token when the bucket is empty.
func (a *admission) takeToken(client string) (retryAfter time.Duration, ok bool) {
	if a.rate <= 0 {
		return 0, true
	}
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b, found := a.clients[client]
	if !found {
		b = &tokenBucket{tokens: a.burst, last: now}
		a.clients[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * a.rate
	if b.tokens > a.burst {
		b.tokens = a.burst
	}
	b.last = now
	if b.tokens < 1 {
		deficit := 1 - b.tokens
		return time.Duration(deficit / a.rate * float64(time.Second)), false
	}
	b.tokens--
	return 0, true
}
