package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestAdmissionQueueShed fills every slot and the whole wait queue, then
// checks the next request is shed immediately with the overload rejection
// rather than queued.
func TestAdmissionQueueShed(t *testing.T) {
	a := newAdmission(1, 1, 0, 0)
	release, err := a.acquire(context.Background(), "c")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	// Occupy the single queue slot with a blocked acquisition.
	queued := make(chan struct{})
	go func() {
		rel, err := a.acquire(context.Background(), "c")
		if err != nil {
			t.Errorf("queued acquire: %v", err)
		} else {
			rel()
		}
		close(queued)
	}()
	waitFor(t, func() bool { return a.waiting.Load() == 1 })

	_, err = a.acquire(context.Background(), "c")
	var adErr *admissionError
	if !errors.As(err, &adErr) || adErr.code != CodeOverloaded {
		t.Fatalf("over-queue acquire returned %v, want overloaded rejection", err)
	}
	if adErr.status != 503 || adErr.retryAfter <= 0 {
		t.Errorf("overload rejection carries status=%d retryAfter=%v", adErr.status, adErr.retryAfter)
	}
	if a.rejectedQueue.Load() != 1 {
		t.Errorf("rejectedQueue = %d, want 1", a.rejectedQueue.Load())
	}

	release() // lets the queued acquisition through
	<-queued
	if got := a.inFlight.Load(); got != 0 {
		t.Errorf("inFlight = %d after all releases, want 0", got)
	}
}

// TestAdmissionQueueCancel checks a queued request honours its context.
func TestAdmissionQueueCancel(t *testing.T) {
	a := newAdmission(1, 4, 0, 0)
	release, err := a.acquire(context.Background(), "c")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx, "c")
		done <- err
	}()
	waitFor(t, func() bool { return a.waiting.Load() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued acquire returned %v, want context.Canceled", err)
	}
	if a.waiting.Load() != 0 {
		t.Errorf("waiting = %d after cancellation, want 0", a.waiting.Load())
	}
}

// TestAdmissionQuota drains one client's token bucket with a frozen clock
// and checks the 429 rejection and its retry hint, then that time refills
// the bucket and that other clients are unaffected.
func TestAdmissionQuota(t *testing.T) {
	a := newAdmission(8, 8, 2, 1) // 2 qps, burst 1
	now := time.Unix(1000, 0)
	a.now = func() time.Time { return now }

	release, err := a.acquire(context.Background(), "hot")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	release()

	_, err = a.acquire(context.Background(), "hot")
	var adErr *admissionError
	if !errors.As(err, &adErr) || adErr.code != CodeQuota {
		t.Fatalf("second immediate acquire returned %v, want quota rejection", err)
	}
	if adErr.status != 429 {
		t.Errorf("quota rejection status = %d, want 429", adErr.status)
	}
	// Bucket empty, refill 2/s: the next token is 500ms away.
	if adErr.retryAfter <= 0 || adErr.retryAfter > 500*time.Millisecond {
		t.Errorf("quota retryAfter = %v, want in (0, 500ms]", adErr.retryAfter)
	}
	if a.rejectedQuota.Load() != 1 {
		t.Errorf("rejectedQuota = %d, want 1", a.rejectedQuota.Load())
	}

	// Another client has its own bucket.
	if rel, err := a.acquire(context.Background(), "cold"); err != nil {
		t.Fatalf("distinct client throttled by the hot client's bucket: %v", err)
	} else {
		rel()
	}

	// Half a second later the hot client has a token again.
	now = now.Add(500 * time.Millisecond)
	if rel, err := a.acquire(context.Background(), "hot"); err != nil {
		t.Fatalf("acquire after refill window: %v", err)
	} else {
		rel()
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
