// The query-result cache. Results are keyed on (backend, query kind, src,
// dst, interval, semantics parameters) and tagged with the query's tick
// interval; invalidation is interval-overlap driven — when new data lands
// at tick t (a LiveEngine ingest) or a slab [lo, hi] seals, exactly the
// entries whose interval overlaps the changed ticks are dropped. Because a
// reachability answer over [lo, hi] depends only on contacts within
// [lo, hi], entries outside the changed range remain provably fresh; over
// a frozen dataset no invalidation ever happens and the cache is always
// valid.

package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"streach"
)

// queryKind discriminates the cacheable query classes within one key space.
type queryKind uint8

const (
	kindReachable queryKind = iota + 1
	kindSet
	kindArrival
	kindTopK
)

// cacheKey identifies one cacheable query exactly. All fields participate
// in equality; fields irrelevant to a kind stay zero.
type cacheKey struct {
	backend      string
	kind         queryKind
	src, dst     streach.ObjectID
	lo, hi       streach.Tick
	maxHops      int
	trackArrival bool
	k            int
	decay        float64
}

// interval returns the tick range the cached answer depends on.
func (k cacheKey) interval() streach.Interval {
	return streach.Interval{Lo: k.lo, Hi: k.hi}
}

type cacheEntry struct {
	key   cacheKey
	value any
}

// resultCache is a mutex-guarded LRU over cacheKey with interval-overlap
// invalidation. The value is the fully rendered response payload; hits
// serve it without touching the engine.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front: most recently used; values are *cacheEntry
	entries map[cacheKey]*list.Element

	hits, misses, invalidated, evicted atomic.Int64
}

// newResultCache returns a cache holding at most capacity entries; a
// non-positive capacity disables caching (every get misses, puts drop).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[cacheKey]*list.Element),
	}
}

func (c *resultCache) enabled() bool { return c.cap > 0 }

// get returns the cached value for k, marking it most recently used.
func (c *resultCache) get(k cacheKey) (any, bool) {
	if !c.enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).value, true
}

// put stores v under k, evicting the least recently used entry when full.
func (c *resultCache) put(k cacheKey, v any) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).value = v
		c.lru.MoveToFront(el)
		return
	}
	c.entries[k] = c.lru.PushFront(&cacheEntry{key: k, value: v})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evicted.Add(1)
	}
}

// invalidateOverlapping drops exactly the entries whose interval overlaps
// iv — the set of cached answers the changed ticks can affect — and
// returns how many were dropped. The scan is O(entries); at serving-cache
// sizes (thousands of entries) that is microseconds per ingested instant.
func (c *resultCache) invalidateOverlapping(iv streach.Interval) int {
	if !c.enabled() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.interval().Overlaps(iv) {
			c.lru.Remove(el)
			delete(c.entries, e.key)
			dropped++
		}
		el = next
	}
	c.invalidated.Add(int64(dropped))
	return dropped
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// hitRate returns hits / (hits + misses), 0 before any lookup.
func (c *resultCache) hitRate() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
