// The query-result cache. Results are keyed on (backend, query kind, src,
// dst, interval, semantics parameters) and tagged with the query's tick
// interval; invalidation is interval-overlap driven — when new data lands
// at tick t (a LiveEngine ingest) or a slab [lo, hi] seals, exactly the
// entries whose interval overlaps the changed ticks are dropped. Because a
// reachability answer over [lo, hi] depends only on contacts within
// [lo, hi], entries outside the changed range remain provably fresh; over
// a frozen dataset no invalidation ever happens and the cache is always
// valid.

package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"streach"
)

// queryKind discriminates the cacheable query classes within one key space.
type queryKind uint8

const (
	kindReachable queryKind = iota + 1
	kindSet
	kindArrival
	kindTopK
)

// cacheKey identifies one cacheable query exactly. All fields participate
// in equality; fields irrelevant to a kind stay zero.
type cacheKey struct {
	backend  string
	kind     queryKind
	src, dst streach.ObjectID
	lo, hi   streach.Tick
	// sem is the full semantics block of a point query (hop bound, arrival
	// tracking, contact predicates, probability). Semantics is comparable,
	// so distinct filtered/probabilistic parameterizations can never collide
	// on one cache slot.
	sem   streach.Semantics
	k     int
	decay float64
}

// interval returns the tick range the cached answer depends on.
func (k cacheKey) interval() streach.Interval {
	return streach.Interval{Lo: k.lo, Hi: k.hi}
}

type cacheEntry struct {
	key   cacheKey
	value any
}

// invalLogCap bounds how many recent invalidations the cache remembers for
// freshness checks; versions older than the log's reach are treated as
// unverifiable and their puts are conservatively dropped.
const invalLogCap = 256

// invalRecord is one logged invalidation: the version it produced and the
// tick interval it covered.
type invalRecord struct {
	ver uint64
	iv  streach.Interval
}

// resultCache is a mutex-guarded LRU over cacheKey with interval-overlap
// invalidation. The value is the fully rendered response payload; hits
// serve it without touching the engine.
//
// Handlers evaluate outside the cache lock, so an ingest can land between
// the engine evaluation and the put; inserting the pre-ingest result then
// would serve it stale until the next overlapping invalidation (forever,
// when no future tick overlaps the entry's interval again). To close that
// race the cache is versioned: every invalidation bumps ver and is logged,
// handlers capture version() before evaluating and store through
// putFresh, which discards the value if an invalidation overlapping its
// interval occurred since the captured version.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front: most recently used; values are *cacheEntry
	entries map[cacheKey]*list.Element

	ver      uint64        // bumped on every invalidation, under mu
	invalLog []invalRecord // most recent invalidations, oldest first, under mu

	hits, misses, invalidated, evicted, staleDrops atomic.Int64
}

// newResultCache returns a cache holding at most capacity entries; a
// non-positive capacity disables caching (every get misses, puts drop).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[cacheKey]*list.Element),
	}
}

func (c *resultCache) enabled() bool { return c.cap > 0 }

// get returns the cached value for k, marking it most recently used.
func (c *resultCache) get(k cacheKey) (any, bool) {
	if !c.enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).value, true
}

// put stores v under k, evicting the least recently used entry when full.
func (c *resultCache) put(k cacheKey, v any) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(k, v)
}

// version returns the current invalidation version, to be captured before
// an evaluation and handed to putFresh.
func (c *resultCache) version() uint64 {
	if !c.enabled() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ver
}

// putFresh stores v under k only if no invalidation overlapping k's
// interval occurred since version ver was read; a discarded stale value
// reports false.
func (c *resultCache) putFresh(k cacheKey, v any, ver uint64) bool {
	if !c.enabled() {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.staleSince(k, ver) {
		c.staleDrops.Add(1)
		return false
	}
	c.putLocked(k, v)
	return true
}

// staleSince reports whether an invalidation overlapping k's interval
// landed after version ver was read. When the log no longer reaches back
// to ver the answer is conservatively true.
func (c *resultCache) staleSince(k cacheKey, ver uint64) bool {
	if c.ver == ver {
		return false
	}
	// Each bump appends exactly one record, so the log covers the versions
	// (invalLog[0].ver-1, c.ver]; ver outside that range is unverifiable.
	if len(c.invalLog) == 0 || c.invalLog[0].ver > ver+1 {
		return true
	}
	for i := len(c.invalLog) - 1; i >= 0; i-- {
		rec := c.invalLog[i]
		if rec.ver <= ver {
			break
		}
		if k.interval().Overlaps(rec.iv) {
			return true
		}
	}
	return false
}

func (c *resultCache) putLocked(k cacheKey, v any) {
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).value = v
		c.lru.MoveToFront(el)
		return
	}
	c.entries[k] = c.lru.PushFront(&cacheEntry{key: k, value: v})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evicted.Add(1)
	}
}

// invalidateOverlapping drops exactly the entries whose interval overlaps
// iv — the set of cached answers the changed ticks can affect — and
// returns how many were dropped. The scan is O(entries); at serving-cache
// sizes (thousands of entries) that is microseconds per ingested instant.
func (c *resultCache) invalidateOverlapping(iv streach.Interval) int {
	if !c.enabled() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.interval().Overlaps(iv) {
			c.lru.Remove(el)
			delete(c.entries, e.key)
			dropped++
		}
		el = next
	}
	c.invalidated.Add(int64(dropped))
	c.ver++
	c.invalLog = append(c.invalLog, invalRecord{ver: c.ver, iv: iv})
	if len(c.invalLog) > invalLogCap {
		c.invalLog = append(c.invalLog[:0], c.invalLog[len(c.invalLog)-invalLogCap:]...)
	}
	return dropped
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// hitRate returns hits / (hits + misses), 0 before any lookup.
func (c *resultCache) hitRate() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
