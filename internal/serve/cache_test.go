package serve

import (
	"testing"

	"streach"
)

func key(kind queryKind, src, dst int, lo, hi int) cacheKey {
	return cacheKey{
		backend: "test", kind: kind,
		src: streach.ObjectID(src), dst: streach.ObjectID(dst),
		lo: streach.Tick(lo), hi: streach.Tick(hi),
	}
}

// TestCacheInvalidateOverlappingExact pins the invalidation contract: an
// ingest at tick range iv drops exactly the entries whose interval
// overlaps iv, nothing more.
func TestCacheInvalidateOverlappingExact(t *testing.T) {
	c := newResultCache(16)
	early := key(kindReachable, 1, 2, 0, 10)
	late := key(kindReachable, 1, 2, 20, 30)
	spanning := key(kindSet, 3, 0, 5, 25)
	for _, k := range []cacheKey{early, late, spanning} {
		c.put(k, "v")
	}

	if dropped := c.invalidateOverlapping(streach.NewInterval(12, 18)); dropped != 1 {
		t.Fatalf("invalidate [12,18] dropped %d entries, want 1 (the spanning one)", dropped)
	}
	if _, ok := c.get(spanning); ok {
		t.Error("entry [5,25] survived an overlapping invalidation")
	}
	if _, ok := c.get(early); !ok {
		t.Error("entry [0,10] dropped by a non-overlapping invalidation")
	}
	if _, ok := c.get(late); !ok {
		t.Error("entry [20,30] dropped by a non-overlapping invalidation")
	}

	// A single-tick ingest at the boundary drops the touching entry.
	if dropped := c.invalidateOverlapping(streach.NewInterval(10, 10)); dropped != 1 {
		t.Fatalf("invalidate [10,10] dropped %d entries, want 1", dropped)
	}
	if _, ok := c.get(early); ok {
		t.Error("entry [0,10] survived invalidation at its boundary tick")
	}
	if got := c.invalidated.Load(); got != 2 {
		t.Errorf("invalidated counter = %d, want 2", got)
	}
}

// TestCachePutFreshDiscardsStale pins the evaluate-then-put race contract:
// a result computed before an overlapping invalidation must not enter the
// cache, while non-overlapping invalidations don't block the put.
func TestCachePutFreshDiscardsStale(t *testing.T) {
	c := newResultCache(16)
	k := key(kindReachable, 1, 2, 0, 10)

	// An ingest at the entry's upper-bound tick lands between evaluation
	// (version captured) and the put: the stale result must be discarded.
	ver := c.version()
	c.invalidateOverlapping(streach.NewInterval(10, 10))
	if c.putFresh(k, "stale", ver) {
		t.Error("putFresh stored a result evaluated before an overlapping invalidation")
	}
	if _, ok := c.get(k); ok {
		t.Error("stale result is served from the cache")
	}
	if c.staleDrops.Load() != 1 {
		t.Errorf("staleDrops = %d, want 1", c.staleDrops.Load())
	}

	// A non-overlapping invalidation in the window doesn't poison the put.
	ver = c.version()
	c.invalidateOverlapping(streach.NewInterval(50, 50))
	if !c.putFresh(k, "fresh", ver) {
		t.Error("putFresh dropped a result despite only non-overlapping invalidations")
	}
	if v, ok := c.get(k); !ok || v != "fresh" {
		t.Errorf("cache holds %v, want the fresh result", v)
	}

	// No invalidation at all: the plain fast path.
	k2 := key(kindReachable, 3, 4, 0, 10)
	if !c.putFresh(k2, "v", c.version()) {
		t.Error("putFresh dropped a result with no intervening invalidation")
	}
}

// TestCachePutFreshLogOverflow checks that a version older than the
// invalidation log's reach is treated as unverifiable: the put is
// conservatively dropped even though no logged record overlaps.
func TestCachePutFreshLogOverflow(t *testing.T) {
	c := newResultCache(16)
	k := key(kindReachable, 1, 2, 0, 10)
	ver := c.version()
	for i := 0; i < invalLogCap+8; i++ {
		c.invalidateOverlapping(streach.NewInterval(100, 100)) // never overlaps k
	}
	if c.putFresh(k, "v", ver) {
		t.Error("putFresh trusted a version the invalidation log no longer covers")
	}
	// A freshly captured version is verifiable again.
	if !c.putFresh(k, "v", c.version()) {
		t.Error("putFresh dropped a result captured after the overflow")
	}
}

// TestCacheKeySemanticsDistinct ensures semantics parameters participate in
// the key: the same (src, dst, interval) under different hop bounds or k
// must not collide.
func TestCacheKeySemanticsDistinct(t *testing.T) {
	c := newResultCache(16)
	a := key(kindReachable, 1, 2, 0, 10)
	b := a
	b.sem.MaxHops = 3
	c.put(a, "unbounded")
	c.put(b, "bounded")
	if v, _ := c.get(a); v != "unbounded" {
		t.Errorf("unbounded key returned %v", v)
	}
	if v, _ := c.get(b); v != "bounded" {
		t.Errorf("hop-bounded key returned %v", v)
	}
	// The §7 extension parameters must be just as distinguishing.
	d := a
	d.sem.MinDuration = 5
	e := a
	e.sem.Prob, e.sem.ProbThreshold = 0.7, 0.3
	c.put(d, "filtered")
	c.put(e, "probabilistic")
	if v, _ := c.get(a); v != "unbounded" {
		t.Errorf("plain key collided with an extension key: %v", v)
	}
	if v, _ := c.get(d); v != "filtered" {
		t.Errorf("min-duration key returned %v", v)
	}
	if v, _ := c.get(e); v != "probabilistic" {
		t.Errorf("probabilistic key returned %v", v)
	}
}

// TestCacheLRUEviction checks capacity enforcement evicts the least
// recently used entry.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	k1, k2, k3 := key(kindReachable, 1, 0, 0, 1), key(kindReachable, 2, 0, 0, 1), key(kindReachable, 3, 0, 0, 1)
	c.put(k1, 1)
	c.put(k2, 2)
	c.get(k1) // k1 becomes most recently used; k2 is now the LRU victim
	c.put(k3, 3)
	if _, ok := c.get(k2); ok {
		t.Error("LRU victim k2 still cached after overflow")
	}
	if _, ok := c.get(k1); !ok {
		t.Error("recently used k1 evicted instead of the LRU victim")
	}
	if c.evicted.Load() != 1 {
		t.Errorf("evicted counter = %d, want 1", c.evicted.Load())
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

// TestCacheDisabled checks a non-positive capacity turns the cache off
// entirely.
func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	k := key(kindReachable, 1, 2, 0, 10)
	c.put(k, "v")
	if _, ok := c.get(k); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.invalidateOverlapping(streach.NewInterval(0, 100)) != 0 {
		t.Error("disabled cache reported invalidations")
	}
}
