// Structured JSON errors. Every failure path of the HTTP surface — bad
// input, overload, quota, shutdown, cancellation, engine errors — answers
// with one envelope shape so clients never have to parse empty bodies or
// free-text: {"error": {"code": ..., "message": ..., "retry_after_ms": …}}.
// Retryable conditions additionally carry a Retry-After header.

package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// Error codes of the serving API.
const (
	// CodeBadRequest: malformed JSON, unknown fields, or invalid query
	// parameters (status 400).
	CodeBadRequest = "bad_request"
	// CodeNotFound: unknown route (status 404).
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: wrong HTTP method for the route (status 405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeQuota: the per-client token bucket is empty (status 429,
	// Retry-After set).
	CodeQuota = "quota_exceeded"
	// CodeOverloaded: the admission queue is full (status 503, Retry-After
	// set).
	CodeOverloaded = "overloaded"
	// CodeShuttingDown: the server is draining and rejects new work
	// (status 503).
	CodeShuttingDown = "shutting_down"
	// CodeCanceled: the client went away mid-evaluation; the traversal was
	// cancelled through its context (status 499, the de-facto
	// client-closed-request code).
	CodeCanceled = "canceled"
	// CodeNotLive: a live-only endpoint (/v1/ingest) on a frozen dataset
	// (status 501).
	CodeNotLive = "not_live"
	// CodeBeyondHorizon: an ingest event adds a contact at a tick at or
	// past frontier + Options.IngestHorizon; the batch is rejected whole
	// (status 400).
	CodeBeyondHorizon = "beyond_horizon"
	// CodeRetractMiss: an ingest event retracts a contact instant the feed
	// never ingested (or already retracted); the batch is rejected whole
	// (status 409).
	CodeRetractMiss = "retract_miss"
	// CodeInternal: the engine failed (status 500).
	CodeInternal = "internal"
)

// StatusClientClosedRequest is nginx's 499: the client closed the
// connection before the response was written. The status is best-effort —
// the client is gone — but it keeps access logs and metrics honest.
const StatusClientClosedRequest = 499

// APIError is the wire form of one serving-layer failure.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS suggests when to retry, for quota and overload
	// rejections; absent otherwise.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrorEnvelope wraps an APIError the way every error response carries it.
type ErrorEnvelope struct {
	Error APIError `json:"error"`
}

// writeError emits the envelope with the given status; a positive
// retryAfter additionally sets the Retry-After header (whole seconds,
// rounded up, minimum 1).
func writeError(w http.ResponseWriter, status int, code, message string, retryAfter time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(status)
	env := ErrorEnvelope{Error: APIError{Code: code, Message: message}}
	if retryAfter > 0 {
		env.Error.RetryAfterMS = retryAfter.Milliseconds()
	}
	json.NewEncoder(w).Encode(env)
}
