// Prometheus-style metrics over stdlib only: atomic counters and fixed-
// bucket latency histograms rendered in the text exposition format at
// /metrics. The endpoint consolidates three layers — per-endpoint HTTP
// counters/histograms maintained here, the serve-layer cache and admission
// counters, and the engine's own accountants surfaced through
// Engine.Stats() (IO totals, buffer-pool hit/miss/evict, segment counts) —
// so one scrape observes the whole serving stack.

package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBounds are the histogram bucket upper bounds in seconds,
// log-spaced from 50µs to 10s — point queries land in the low buckets,
// set/top-k sweeps and overload queueing in the high ones.
var latencyBounds = []float64{
	.00005, .0001, .00025, .0005, .001, .0025, .005, .01,
	.025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram with atomic cells.
type histogram struct {
	buckets  []atomic.Int64 // len(latencyBounds)+1; last is +Inf
	count    atomic.Int64
	sumNanos atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]atomic.Int64, len(latencyBounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	secs := d.Seconds()
	i := sort.SearchFloat64s(latencyBounds, secs)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// endpointMetrics is one endpoint's request counters by status code plus
// its latency histogram.
type endpointMetrics struct {
	mu      sync.Mutex
	byCode  map[int]*atomic.Int64
	latency *histogram
}

func newEndpointMetrics() *endpointMetrics {
	return &endpointMetrics{byCode: make(map[int]*atomic.Int64), latency: newHistogram()}
}

func (m *endpointMetrics) record(code int, d time.Duration) {
	m.mu.Lock()
	c, ok := m.byCode[code]
	if !ok {
		c = new(atomic.Int64)
		m.byCode[code] = c
	}
	m.mu.Unlock()
	c.Add(1)
	m.latency.observe(d)
}

// codes snapshots the per-status counters in sorted order.
func (m *endpointMetrics) codes() (codes []int, counts []int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for code := range m.byCode {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		counts = append(counts, m.byCode[code].Load())
	}
	return codes, counts
}

// metricsSet is the server's metric registry, keyed by endpoint label.
type metricsSet struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics

	ingestedTicks atomic.Int64
	sealedEvents  atomic.Int64
}

func newMetricsSet() *metricsSet {
	return &metricsSet{endpoints: make(map[string]*endpointMetrics)}
}

func (s *metricsSet) endpoint(name string) *endpointMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.endpoints[name]
	if !ok {
		m = newEndpointMetrics()
		s.endpoints[name] = m
	}
	return m
}

func (s *metricsSet) endpointNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.endpoints))
	for name := range s.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// writeMetrics renders the whole serving stack in the Prometheus text
// exposition format.
func (srv *Server) writeMetrics(w io.Writer) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP streachd_requests_total Requests served, by endpoint and status code.\n")
	p("# TYPE streachd_requests_total counter\n")
	for _, name := range srv.met.endpointNames() {
		codes, counts := srv.met.endpoint(name).codes()
		for i, code := range codes {
			p("streachd_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, code, counts[i])
		}
	}

	p("# HELP streachd_request_duration_seconds Request latency, by endpoint.\n")
	p("# TYPE streachd_request_duration_seconds histogram\n")
	for _, name := range srv.met.endpointNames() {
		h := srv.met.endpoint(name).latency
		var cum int64
		for i, bound := range latencyBounds {
			cum += h.buckets[i].Load()
			p("streachd_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		cum += h.buckets[len(latencyBounds)].Load()
		p("streachd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		p("streachd_request_duration_seconds_sum{endpoint=%q} %g\n",
			name, time.Duration(h.sumNanos.Load()).Seconds())
		p("streachd_request_duration_seconds_count{endpoint=%q} %d\n", name, h.count.Load())
	}

	p("# HELP streachd_in_flight Queries currently evaluating.\n")
	p("# TYPE streachd_in_flight gauge\n")
	p("streachd_in_flight %d\n", srv.adm.inFlight.Load())
	p("# HELP streachd_admission_waiting Queries waiting for an evaluation slot.\n")
	p("# TYPE streachd_admission_waiting gauge\n")
	p("streachd_admission_waiting %d\n", srv.adm.waiting.Load())
	p("# HELP streachd_admission_rejected_total Requests shed, by reason.\n")
	p("# TYPE streachd_admission_rejected_total counter\n")
	p("streachd_admission_rejected_total{reason=\"queue_full\"} %d\n", srv.adm.rejectedQueue.Load())
	p("streachd_admission_rejected_total{reason=\"quota\"} %d\n", srv.adm.rejectedQuota.Load())

	p("# HELP streachd_cache_entries Query-result cache occupancy.\n")
	p("# TYPE streachd_cache_entries gauge\n")
	p("streachd_cache_entries %d\n", srv.cache.len())
	p("# HELP streachd_cache_events_total Query-result cache events.\n")
	p("# TYPE streachd_cache_events_total counter\n")
	p("streachd_cache_events_total{event=\"hit\"} %d\n", srv.cache.hits.Load())
	p("streachd_cache_events_total{event=\"miss\"} %d\n", srv.cache.misses.Load())
	p("streachd_cache_events_total{event=\"invalidated\"} %d\n", srv.cache.invalidated.Load())
	p("streachd_cache_events_total{event=\"evicted\"} %d\n", srv.cache.evicted.Load())
	p("streachd_cache_events_total{event=\"stale_put\"} %d\n", srv.cache.staleDrops.Load())
	p("# HELP streachd_cache_hit_ratio Cache hits over lookups.\n")
	p("# TYPE streachd_cache_hit_ratio gauge\n")
	p("streachd_cache_hit_ratio %g\n", srv.cache.hitRate())

	st := srv.eng.Stats()
	p("# HELP streachd_engine_io_reads_total Simulated disk page reads, by kind.\n")
	p("# TYPE streachd_engine_io_reads_total counter\n")
	p("streachd_engine_io_reads_total{kind=\"random\"} %d\n", st.IO.RandomReads)
	p("streachd_engine_io_reads_total{kind=\"sequential\"} %d\n", st.IO.SequentialReads)
	p("# HELP streachd_engine_io_normalized_total The paper's normalized I/O metric (random + sequential/20).\n")
	p("# TYPE streachd_engine_io_normalized_total counter\n")
	p("streachd_engine_io_normalized_total %g\n", st.IO.Normalized)
	p("# HELP streachd_engine_index_bytes Simulated on-disk index size.\n")
	p("# TYPE streachd_engine_index_bytes gauge\n")
	p("streachd_engine_index_bytes %d\n", st.IndexBytes)
	p("# HELP streachd_engine_ticks Time-domain instants visible to queries.\n")
	p("# TYPE streachd_engine_ticks gauge\n")
	p("streachd_engine_ticks %d\n", st.NumTicks)
	if st.HasPool {
		p("# HELP streachd_pool_events_total Buffer-pool events.\n")
		p("# TYPE streachd_pool_events_total counter\n")
		p("streachd_pool_events_total{event=\"hit\"} %d\n", st.Pool.Hits)
		p("streachd_pool_events_total{event=\"miss\"} %d\n", st.Pool.Misses)
		p("streachd_pool_events_total{event=\"eviction\"} %d\n", st.Pool.Evictions)
		p("# HELP streachd_pool_hit_ratio Buffer-pool hits over lookups.\n")
		p("# TYPE streachd_pool_hit_ratio gauge\n")
		p("streachd_pool_hit_ratio %g\n", st.Pool.HitRate())
	}
	if srv.live != nil {
		p("# HELP streachd_sealed_segments Immutable sealed segments of the live engine.\n")
		p("# TYPE streachd_sealed_segments gauge\n")
		p("streachd_sealed_segments %d\n", st.SealedSegments)
		p("# HELP streachd_ingested_ticks_total Feed instants ingested through /v1/ingest since the server started (preload instants are not counted).\n")
		p("# TYPE streachd_ingested_ticks_total counter\n")
		p("streachd_ingested_ticks_total %d\n", srv.met.ingestedTicks.Load())
		p("# HELP streachd_seal_events_total Segment seals observed since start.\n")
		p("# TYPE streachd_seal_events_total counter\n")
		p("streachd_seal_events_total %d\n", srv.met.sealedEvents.Load())
		p("# HELP streachd_delta_events Late/retraction events pending against sealed segments (delta-log depth).\n")
		p("# TYPE streachd_delta_events gauge\n")
		p("streachd_delta_events %d\n", st.DeltaEvents)
		p("# HELP streachd_dirty_segments Sealed segments carrying pending delta-log events.\n")
		p("# TYPE streachd_dirty_segments gauge\n")
		p("streachd_dirty_segments %d\n", st.DirtySegments)
		p("# HELP streachd_late_events_total Contact adds accepted behind the ingest frontier.\n")
		p("# TYPE streachd_late_events_total counter\n")
		p("streachd_late_events_total %d\n", st.LateEvents)
		p("# HELP streachd_retractions_total Contact instants retracted.\n")
		p("# TYPE streachd_retractions_total counter\n")
		p("streachd_retractions_total %d\n", st.Retractions)
		p("# HELP streachd_compactions_total Dirty segments re-sealed with their deltas folded in.\n")
		p("# TYPE streachd_compactions_total counter\n")
		p("streachd_compactions_total %d\n", st.Compactions)
	}
}
