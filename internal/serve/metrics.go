// Prometheus-style metrics over stdlib only: atomic counters and fixed-
// bucket latency histograms rendered in the text exposition format at
// /metrics. The endpoint consolidates three layers — per-endpoint HTTP
// counters/histograms maintained here, the serve-layer cache and admission
// counters, and the engine's own accountants surfaced through
// Engine.Stats() (IO totals, buffer-pool hit/miss/evict, segment counts) —
// so one scrape observes the whole serving stack.

package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBounds are the histogram bucket upper bounds in seconds,
// log-spaced from 50µs to 10s — point queries land in the low buckets,
// set/top-k sweeps and overload queueing in the high ones.
var latencyBounds = []float64{
	.00005, .0001, .00025, .0005, .001, .0025, .005, .01,
	.025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// expandedBounds bucket the contact-list entries one query evaluation
// expanded. The 0 bucket catches meets proven from the seeds alone (the
// bidirectional planner's best case); the top buckets catch saturated
// long-interval sweeps.
var expandedBounds = []float64{
	0, 1, 2, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000, 50000, 100000,
}

// histogram is a fixed-bucket histogram with atomic cells. sum carries
// nanoseconds for latency histograms and expanded-contact counts for
// expansion histograms.
type histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histogram) observe(value float64, raw int64) {
	i := sort.SearchFloat64s(h.bounds, value)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(raw)
}

func (h *histogram) observeDuration(d time.Duration) { h.observe(d.Seconds(), int64(d)) }

func (h *histogram) observeCount(n int) { h.observe(float64(n), int64(n)) }

// endpointMetrics is one endpoint's request counters by status code plus
// its latency histogram.
type endpointMetrics struct {
	mu      sync.Mutex
	byCode  map[int]*atomic.Int64
	latency *histogram
}

func newEndpointMetrics() *endpointMetrics {
	return &endpointMetrics{byCode: make(map[int]*atomic.Int64), latency: newHistogram(latencyBounds)}
}

func (m *endpointMetrics) record(code int, d time.Duration) {
	m.mu.Lock()
	c, ok := m.byCode[code]
	if !ok {
		c = new(atomic.Int64)
		m.byCode[code] = c
	}
	m.mu.Unlock()
	c.Add(1)
	m.latency.observeDuration(d)
}

// codes snapshots the per-status counters in sorted order.
func (m *endpointMetrics) codes() (codes []int, counts []int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for code := range m.byCode {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		counts = append(counts, m.byCode[code].Load())
	}
	return codes, counts
}

// metricsSet is the server's metric registry, keyed by endpoint label.
type metricsSet struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics

	// expanded histograms the contact-list entries each fresh evaluation
	// expanded, per query endpoint. Cache hits expand nothing and are not
	// observed, so the ratio of forward to bidirectional expansion work
	// survives any cache hit rate.
	expandedMu sync.Mutex
	expanded   map[string]*histogram

	ingestedTicks atomic.Int64
	sealedEvents  atomic.Int64

	// filteredQueries and probabilisticQueries count fresh point-query
	// evaluations using the §7 extensions (cache hits are not observed).
	filteredQueries      atomic.Int64
	probabilisticQueries atomic.Int64
}

func newMetricsSet() *metricsSet {
	return &metricsSet{
		endpoints: make(map[string]*endpointMetrics),
		expanded:  make(map[string]*histogram),
	}
}

// observeExpanded records the expanded-contact count of one fresh query
// evaluation against the endpoint's histogram.
func (s *metricsSet) observeExpanded(name string, n int) {
	s.expandedMu.Lock()
	h, ok := s.expanded[name]
	if !ok {
		h = newHistogram(expandedBounds)
		s.expanded[name] = h
	}
	s.expandedMu.Unlock()
	h.observeCount(n)
}

func (s *metricsSet) expandedNames() []string {
	s.expandedMu.Lock()
	defer s.expandedMu.Unlock()
	names := make([]string, 0, len(s.expanded))
	for name := range s.expanded {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (s *metricsSet) expandedHistogram(name string) *histogram {
	s.expandedMu.Lock()
	defer s.expandedMu.Unlock()
	return s.expanded[name]
}

func (s *metricsSet) endpoint(name string) *endpointMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.endpoints[name]
	if !ok {
		m = newEndpointMetrics()
		s.endpoints[name] = m
	}
	return m
}

func (s *metricsSet) endpointNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.endpoints))
	for name := range s.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// writeMetrics renders the whole serving stack in the Prometheus text
// exposition format.
func (srv *Server) writeMetrics(w io.Writer) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP streachd_requests_total Requests served, by endpoint and status code.\n")
	p("# TYPE streachd_requests_total counter\n")
	for _, name := range srv.met.endpointNames() {
		codes, counts := srv.met.endpoint(name).codes()
		for i, code := range codes {
			p("streachd_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, code, counts[i])
		}
	}

	p("# HELP streachd_request_duration_seconds Request latency, by endpoint.\n")
	p("# TYPE streachd_request_duration_seconds histogram\n")
	for _, name := range srv.met.endpointNames() {
		h := srv.met.endpoint(name).latency
		var cum int64
		for i, bound := range latencyBounds {
			cum += h.buckets[i].Load()
			p("streachd_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		cum += h.buckets[len(latencyBounds)].Load()
		p("streachd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		p("streachd_request_duration_seconds_sum{endpoint=%q} %g\n",
			name, time.Duration(h.sum.Load()).Seconds())
		p("streachd_request_duration_seconds_count{endpoint=%q} %d\n", name, h.count.Load())
	}

	p("# HELP streachd_expanded_contacts Contact-list entries expanded per fresh query evaluation, by endpoint (cache hits not observed).\n")
	p("# TYPE streachd_expanded_contacts histogram\n")
	for _, name := range srv.met.expandedNames() {
		h := srv.met.expandedHistogram(name)
		var cum int64
		for i, bound := range expandedBounds {
			cum += h.buckets[i].Load()
			p("streachd_expanded_contacts_bucket{endpoint=%q,le=%q} %d\n",
				name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		cum += h.buckets[len(expandedBounds)].Load()
		p("streachd_expanded_contacts_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		p("streachd_expanded_contacts_sum{endpoint=%q} %d\n", name, h.sum.Load())
		p("streachd_expanded_contacts_count{endpoint=%q} %d\n", name, h.count.Load())
	}

	p("# HELP streachd_semantic_queries_total Fresh point-query evaluations using the §7 extensions, by class (cache hits not observed).\n")
	p("# TYPE streachd_semantic_queries_total counter\n")
	p("streachd_semantic_queries_total{class=\"filtered\"} %d\n", srv.met.filteredQueries.Load())
	p("streachd_semantic_queries_total{class=\"probabilistic\"} %d\n", srv.met.probabilisticQueries.Load())

	p("# HELP streachd_in_flight Queries currently evaluating.\n")
	p("# TYPE streachd_in_flight gauge\n")
	p("streachd_in_flight %d\n", srv.adm.inFlight.Load())
	p("# HELP streachd_admission_waiting Queries waiting for an evaluation slot.\n")
	p("# TYPE streachd_admission_waiting gauge\n")
	p("streachd_admission_waiting %d\n", srv.adm.waiting.Load())
	p("# HELP streachd_admission_rejected_total Requests shed, by reason.\n")
	p("# TYPE streachd_admission_rejected_total counter\n")
	p("streachd_admission_rejected_total{reason=\"queue_full\"} %d\n", srv.adm.rejectedQueue.Load())
	p("streachd_admission_rejected_total{reason=\"quota\"} %d\n", srv.adm.rejectedQuota.Load())

	p("# HELP streachd_cache_entries Query-result cache occupancy.\n")
	p("# TYPE streachd_cache_entries gauge\n")
	p("streachd_cache_entries %d\n", srv.cache.len())
	p("# HELP streachd_cache_events_total Query-result cache events.\n")
	p("# TYPE streachd_cache_events_total counter\n")
	p("streachd_cache_events_total{event=\"hit\"} %d\n", srv.cache.hits.Load())
	p("streachd_cache_events_total{event=\"miss\"} %d\n", srv.cache.misses.Load())
	p("streachd_cache_events_total{event=\"invalidated\"} %d\n", srv.cache.invalidated.Load())
	p("streachd_cache_events_total{event=\"evicted\"} %d\n", srv.cache.evicted.Load())
	p("streachd_cache_events_total{event=\"stale_put\"} %d\n", srv.cache.staleDrops.Load())
	p("# HELP streachd_cache_hit_ratio Cache hits over lookups.\n")
	p("# TYPE streachd_cache_hit_ratio gauge\n")
	p("streachd_cache_hit_ratio %g\n", srv.cache.hitRate())

	st := srv.eng.Stats()
	p("# HELP streachd_engine_io_reads_total Simulated disk page reads, by kind.\n")
	p("# TYPE streachd_engine_io_reads_total counter\n")
	p("streachd_engine_io_reads_total{kind=\"random\"} %d\n", st.IO.RandomReads)
	p("streachd_engine_io_reads_total{kind=\"sequential\"} %d\n", st.IO.SequentialReads)
	p("# HELP streachd_engine_io_normalized_total The paper's normalized I/O metric (random + sequential/20).\n")
	p("# TYPE streachd_engine_io_normalized_total counter\n")
	p("streachd_engine_io_normalized_total %g\n", st.IO.Normalized)
	p("# HELP streachd_engine_index_bytes Simulated on-disk index size.\n")
	p("# TYPE streachd_engine_index_bytes gauge\n")
	p("streachd_engine_index_bytes %d\n", st.IndexBytes)
	p("# HELP streachd_engine_ticks Time-domain instants visible to queries.\n")
	p("# TYPE streachd_engine_ticks gauge\n")
	p("streachd_engine_ticks %d\n", st.NumTicks)
	if st.HasPool {
		p("# HELP streachd_pool_events_total Buffer-pool events.\n")
		p("# TYPE streachd_pool_events_total counter\n")
		p("streachd_pool_events_total{event=\"hit\"} %d\n", st.Pool.Hits)
		p("streachd_pool_events_total{event=\"miss\"} %d\n", st.Pool.Misses)
		p("streachd_pool_events_total{event=\"eviction\"} %d\n", st.Pool.Evictions)
		p("# HELP streachd_pool_hit_ratio Buffer-pool hits over lookups.\n")
		p("# TYPE streachd_pool_hit_ratio gauge\n")
		p("streachd_pool_hit_ratio %g\n", st.Pool.HitRate())
	}
	if st.Shards > 0 {
		p("# HELP streachd_shards Shard count of the partitioned engine.\n")
		p("# TYPE streachd_shards gauge\n")
		p("streachd_shards{partitioner=%q} %d\n", st.Partitioner, st.Shards)
		p("# HELP streachd_cross_shard_ratio Fraction of contacts crossing the shard cut (static partition quality).\n")
		p("# TYPE streachd_cross_shard_ratio gauge\n")
		p("streachd_cross_shard_ratio %g\n", st.CrossShardRatio)
		p("# HELP streachd_cross_shard_frontier_total Boundary objects handed across the shard cut by scatter-gather queries.\n")
		p("# TYPE streachd_cross_shard_frontier_total counter\n")
		p("streachd_cross_shard_frontier_total %d\n", st.CrossShardFrontier)
		p("# HELP streachd_shard_objects Objects owned, by shard.\n")
		p("# TYPE streachd_shard_objects gauge\n")
		for _, sh := range st.ShardDetails {
			p("streachd_shard_objects{shard=\"%d\"} %d\n", sh.Shard, sh.Objects)
		}
		p("# HELP streachd_shard_contacts Sub-network contacts (cross-shard contacts counted on both sides), by shard.\n")
		p("# TYPE streachd_shard_contacts gauge\n")
		for _, sh := range st.ShardDetails {
			p("streachd_shard_contacts{shard=\"%d\"} %d\n", sh.Shard, sh.Contacts)
		}
		p("# HELP streachd_shard_index_bytes Simulated on-disk index size, by shard.\n")
		p("# TYPE streachd_shard_index_bytes gauge\n")
		for _, sh := range st.ShardDetails {
			p("streachd_shard_index_bytes{shard=\"%d\"} %d\n", sh.Shard, sh.IndexBytes)
		}
		p("# HELP streachd_shard_io_normalized_total Normalized simulated I/O, by shard.\n")
		p("# TYPE streachd_shard_io_normalized_total counter\n")
		for _, sh := range st.ShardDetails {
			p("streachd_shard_io_normalized_total{shard=\"%d\"} %g\n", sh.Shard, sh.IO.Normalized)
		}
	}
	if srv.live != nil {
		p("# HELP streachd_sealed_segments Immutable sealed segments of the live engine.\n")
		p("# TYPE streachd_sealed_segments gauge\n")
		p("streachd_sealed_segments %d\n", st.SealedSegments)
		p("# HELP streachd_ingested_ticks_total Feed instants ingested through /v1/ingest since the server started (preload instants are not counted).\n")
		p("# TYPE streachd_ingested_ticks_total counter\n")
		p("streachd_ingested_ticks_total %d\n", srv.met.ingestedTicks.Load())
		p("# HELP streachd_seal_events_total Segment seals observed since start.\n")
		p("# TYPE streachd_seal_events_total counter\n")
		p("streachd_seal_events_total %d\n", srv.met.sealedEvents.Load())
		p("# HELP streachd_delta_events Late/retraction events pending against sealed segments (delta-log depth).\n")
		p("# TYPE streachd_delta_events gauge\n")
		p("streachd_delta_events %d\n", st.DeltaEvents)
		p("# HELP streachd_dirty_segments Sealed segments carrying pending delta-log events.\n")
		p("# TYPE streachd_dirty_segments gauge\n")
		p("streachd_dirty_segments %d\n", st.DirtySegments)
		p("# HELP streachd_late_events_total Contact adds accepted behind the ingest frontier.\n")
		p("# TYPE streachd_late_events_total counter\n")
		p("streachd_late_events_total %d\n", st.LateEvents)
		p("# HELP streachd_retractions_total Contact instants retracted.\n")
		p("# TYPE streachd_retractions_total counter\n")
		p("streachd_retractions_total %d\n", st.Retractions)
		p("# HELP streachd_compactions_total Dirty segments re-sealed with their deltas folded in.\n")
		p("# TYPE streachd_compactions_total counter\n")
		p("streachd_compactions_total %d\n", st.Compactions)
	}
}
