package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"streach"
)

func postReachable(t *testing.T, url, body string) (int, reachableResponse) {
	t.Helper()
	resp := post(t, url+"/v1/reachable", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, reachableResponse{}
	}
	var out reachableResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode reachable response: %v", err)
	}
	return resp.StatusCode, out
}

// TestReachableFilteredAndProbabilistic drives the §7 extension fields
// through the wire surface: filtered queries answer, probabilistic queries
// report a prob consistent with p^hops, parameterizations get distinct
// cache slots, and inconsistent parameters are the client's fault (400).
func TestReachableFilteredAndProbabilistic(t *testing.T) {
	_, eng, ts := newFrozenServer(t, Config{})

	// Find a reachable pair to exercise the positive paths.
	var src, dst, from, to int
	found := false
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: 30, NumTicks: 120, Count: 40, MinLen: 40, MaxLen: 100, Seed: 5,
	})
	for _, q := range work {
		r, err := eng.Reachable(t.Context(), q)
		if err != nil {
			t.Fatal(err)
		}
		if r.Reachable && q.Src != q.Dst {
			src, dst = int(q.Src), int(q.Dst)
			from, to = int(q.Interval.Lo), int(q.Interval.Hi)
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no reachable pair in the probe workload")
	}

	// Plain, filtered and probabilistic versions of the same point query
	// must occupy distinct cache slots.
	plainBody := fmt.Sprintf(`{"src":%d,"dst":%d,"from":%d,"to":%d}`, src, dst, from, to)
	code, plain := postReachable(t, ts.URL, plainBody)
	if code != 200 || !plain.Reachable {
		t.Fatalf("plain query: status %d, reachable %v", code, plain.Reachable)
	}
	if plain.Prob != 0 {
		t.Fatalf("plain query reported prob %v", plain.Prob)
	}

	code, filt := postReachable(t, ts.URL,
		fmt.Sprintf(`{"src":%d,"dst":%d,"from":%d,"to":%d,"min_duration":1}`, src, dst, from, to))
	if code != 200 {
		t.Fatalf("filtered query: status %d", code)
	}
	_ = filt

	code, prob := postReachable(t, ts.URL,
		fmt.Sprintf(`{"src":%d,"dst":%d,"from":%d,"to":%d,"prob":0.7,"prob_threshold":0.1}`, src, dst, from, to))
	if code != 200 {
		t.Fatalf("probabilistic query: status %d", code)
	}
	if prob.Reachable {
		want := 1.0
		for i := 0; i < prob.Hops; i++ {
			want *= 0.7
		}
		if diff := prob.Prob - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("prob %v inconsistent with 0.7^%d = %v", prob.Prob, prob.Hops, want)
		}
	}

	// A repeat of the plain query must hit the plain slot, not a filtered
	// or probabilistic one.
	code, again := postReachable(t, ts.URL, plainBody)
	if code != 200 || !again.Cached {
		t.Fatalf("plain repeat: status %d, cached %v", code, again.Cached)
	}
	if again.Prob != plain.Prob || again.Hops != plain.Hops {
		t.Fatal("plain repeat served an extension query's cached answer")
	}

	// Monte-Carlo selection: never native, prob in [0, 1], seed-stable.
	mcBody := fmt.Sprintf(`{"src":%d,"dst":%d,"from":%d,"to":%d,"prob":0.5,"mc_trials":200,"mc_seed":7,"no_cache":true}`,
		src, dst, from, to)
	code, mc1 := postReachable(t, ts.URL, mcBody)
	if code != 200 {
		t.Fatalf("monte-carlo query: status %d", code)
	}
	if mc1.Native {
		t.Fatal("monte-carlo answer claimed native evaluation")
	}
	if mc1.Prob < 0 || mc1.Prob > 1 {
		t.Fatalf("monte-carlo estimate %v outside [0, 1]", mc1.Prob)
	}
	_, mc2 := postReachable(t, ts.URL, mcBody)
	if mc1.Prob != mc2.Prob {
		t.Fatalf("seeded monte-carlo not reproducible: %v vs %v", mc1.Prob, mc2.Prob)
	}

	// Inconsistent parameters are client errors, not server failures.
	for _, bad := range []string{
		fmt.Sprintf(`{"src":%d,"dst":%d,"from":%d,"to":%d,"prob":1.5}`, src, dst, from, to),
		fmt.Sprintf(`{"src":%d,"dst":%d,"from":%d,"to":%d,"prob_threshold":0.5}`, src, dst, from, to),
		fmt.Sprintf(`{"src":%d,"dst":%d,"from":%d,"to":%d,"mc_trials":10}`, src, dst, from, to),
		fmt.Sprintf(`{"src":%d,"dst":%d,"from":%d,"to":%d,"min_duration":-1}`, src, dst, from, to),
		fmt.Sprintf(`{"src":%d,"dst":%d,"from":%d,"to":%d,"filter_id":"serve-test-unregistered"}`, src, dst, from, to),
	} {
		resp := post(t, ts.URL+"/v1/reachable", bad)
		apiErr := decodeErr(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status %d (%+v), want 400", bad, resp.StatusCode, apiErr)
		}
	}
}
