// Package serve is the network serving layer over streach engines: an
// HTTP/JSON surface (stdlib net/http only) exposing reachability,
// reachable-set (NDJSON streaming), earliest-arrival, top-k and live
// ingest endpoints, behind a query-result cache with ingest/seal
// invalidation, admission control (concurrency limiter with a bounded
// wait queue plus per-client token-bucket quotas) and Prometheus-style
// metrics. cmd/streachd wires it to a listener and signals;
// cmd/streachload drives it under sustained load.
//
// The boolean point-query path stays on the engines' zero-allocation
// steady state: the serve layer calls Engine.Reachable directly and all
// additional allocation happens at the HTTP/JSON boundary (request
// decode, response encode) or in the result cache.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"streach"
)

// Config tunes a Server. The zero value serves with a 4096-entry cache,
// 2×GOMAXPROCS in-flight queries, a 64-deep wait queue and no per-client
// quotas.
type Config struct {
	// Dataset labels the served dataset in /v1/stats and load reports.
	Dataset string
	// CacheEntries caps the query-result cache; 0 selects 4096, negative
	// disables caching.
	CacheEntries int
	// MaxInFlight bounds concurrently evaluating queries; 0 selects
	// 2×GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds queries waiting for an evaluation slot; beyond it
	// requests are shed with 503. 0 selects 64.
	MaxQueue int
	// ClientQPS is the per-client sustained query rate (token-bucket
	// refill); 0 disables quotas. ClientBurst is the bucket size (0:
	// 2×ClientQPS, minimum 1). Clients are identified by the X-Client-ID
	// header, falling back to the remote IP.
	ClientQPS   float64
	ClientBurst int
	// QueryTimeout bounds one evaluation; 0 means no server-side timeout
	// (the client's context still cancels).
	QueryTimeout time.Duration
	// SetChunk is the NDJSON chunk size of /v1/reachable-set; 0 selects
	// 512 objects per line.
	SetChunk int
}

// Server is the HTTP serving layer over one Engine. Create with New, use
// as an http.Handler, and drive lifecycle with Serve/BeginDrain.
type Server struct {
	eng   streach.Engine
	live  *streach.LiveEngine // non-nil when eng is live: enables /v1/ingest
	cfg   Config
	cache *resultCache
	adm   *admission
	met   *metricsSet
	mux   *http.ServeMux
	start time.Time

	numObjects          int
	envWidth, envHeight float64

	// ingestMu serializes /v1/ingest bodies: LiveEngine appends must not
	// run concurrently.
	ingestMu sync.Mutex

	drainMu  sync.Mutex
	draining bool
}

// New returns a Server over eng. When eng is a *streach.LiveEngine the
// ingest endpoint is enabled and the engine's ingest/seal hooks are
// registered to invalidate the result cache — exactly the cached entries
// whose interval overlaps newly ingested ticks are dropped, so no stale
// answer is ever served across an ingest or a segment seal.
func New(eng streach.Engine, cfg Config) *Server {
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 4096
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.SetChunk <= 0 {
		cfg.SetChunk = 512
	}
	s := &Server{
		eng:        eng,
		cfg:        cfg,
		cache:      newResultCache(cfg.CacheEntries),
		adm:        newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.ClientQPS, cfg.ClientBurst),
		met:        newMetricsSet(),
		start:      time.Now(),
		numObjects: eng.Stats().NumObjects,
	}
	if le, ok := eng.(*streach.LiveEngine); ok {
		s.live = le
		le.OnIngest(func(iv streach.Interval) {
			// Changed contact content in iv — a frontier instant, a late
			// add, a retraction — can only change answers whose interval
			// overlaps iv; drop exactly those.
			s.cache.invalidateOverlapping(iv)
		})
		le.OnSegmentSeal(func(streach.Interval) {
			// Per-tick ingest invalidation already dropped everything the
			// sealed slab could affect; the seal itself is only counted.
			s.met.sealedEvents.Add(1)
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/reachable", s.instrument("reachable", true, s.handleReachable))
	mux.HandleFunc("/v1/reachable-set", s.instrument("reachable-set", true, s.handleReachableSet))
	mux.HandleFunc("/v1/earliest-arrival", s.instrument("earliest-arrival", true, s.handleEarliestArrival))
	mux.HandleFunc("/v1/topk", s.instrument("topk", true, s.handleTopK))
	mux.HandleFunc("/v1/ingest", s.instrument("ingest", true, s.handleIngest))
	mux.HandleFunc("/v1/stats", s.instrument("stats", false, s.handleStats))
	mux.HandleFunc("/metrics", s.instrument("metrics", false, s.handleMetrics))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no route %s", r.URL.Path), 0)
	})
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// BeginDrain switches the server into shutdown mode: every subsequent
// request is rejected with 503 shutting_down while in-flight evaluations
// run to completion.
func (s *Server) BeginDrain() {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
}

func (s *Server) isDraining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// Serve accepts on l until ctx is cancelled, then drains: new work is
// rejected with 503, in-flight queries finish, and the server exits
// within grace (in-flight work still running at the deadline is
// abandoned). This is the lifecycle cmd/streachd runs under SIGTERM.
func (s *Server) Serve(ctx context.Context, l net.Listener, grace time.Duration) error {
	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close()
		return fmt.Errorf("serve: drain exceeded %v: %w", grace, err)
	}
	return nil
}

// statusRecorder captures the status code an endpoint wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so NDJSON streaming works
// through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// clientID identifies the requester for quota accounting.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// instrument wraps an endpoint with drain rejection, method enforcement,
// admission control (when admit is set) and metrics recording.
func (s *Server) instrument(name string, admit bool, h http.HandlerFunc) http.HandlerFunc {
	wantMethod := http.MethodPost
	if !admit { // stats, metrics
		wantMethod = http.MethodGet
	}
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if rec.status == 0 {
				rec.status = http.StatusOK
			}
			s.met.endpoint(name).record(rec.status, time.Since(start))
		}()
		if r.Method != wantMethod {
			writeError(rec, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
				fmt.Sprintf("%s needs %s", r.URL.Path, wantMethod), 0)
			return
		}
		if s.isDraining() {
			writeError(rec, http.StatusServiceUnavailable, CodeShuttingDown,
				"server is draining; no new work accepted", 0)
			return
		}
		if admit {
			release, err := s.adm.acquire(r.Context(), clientID(r))
			if err != nil {
				var adErr *admissionError
				switch {
				case errors.As(err, &adErr):
					writeError(rec, adErr.status, adErr.code, adErr.message, adErr.retryAfter)
				default: // client context cancelled while queued
					writeError(rec, StatusClientClosedRequest, CodeCanceled,
						"request cancelled while queued for admission", 0)
				}
				return
			}
			defer release()
		}
		h(rec, r)
	}
}

// queryCtx applies the configured per-query timeout.
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	}
	return r.Context(), func() {}
}

// decode parses the request body strictly (unknown fields are a 400).
func decode(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("malformed request body: %w", err)
	}
	return nil
}

// writeEngineError maps an evaluation error onto the envelope: semantics
// validation failures (inconsistent probabilistic parameters, unregistered
// filter IDs) are the client's fault (400), context cancellation (client
// gone or timeout) is 499/504, anything else 500.
func writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, streach.ErrBadSemantics):
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
	case errors.Is(err, context.Canceled):
		writeError(w, StatusClientClosedRequest, CodeCanceled, "query cancelled: "+err.Error(), 0)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, CodeCanceled, "query exceeded the server's time budget", 0)
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error(), 0)
	}
}

// ioJSON is the wire form of streach.IOStats.
type ioJSON struct {
	RandomReads     int64   `json:"random_reads"`
	SequentialReads int64   `json:"sequential_reads"`
	BufferHits      int64   `json:"buffer_hits"`
	Normalized      float64 `json:"normalized"`
}

func ioOf(s streach.IOStats) ioJSON {
	return ioJSON{
		RandomReads:     s.RandomReads,
		SequentialReads: s.SequentialReads,
		BufferHits:      s.BufferHits,
		Normalized:      s.Normalized,
	}
}

// intervalRequest is the common (src, from, to) triple; validate reports
// 400-class problems.
func (s *Server) validateObject(field string, id int) error {
	if id < 0 || id >= s.numObjects {
		return fmt.Errorf("%s %d outside [0, %d)", field, id, s.numObjects)
	}
	return nil
}

func validateInterval(from, to int) error {
	if from < 0 || to < from {
		return fmt.Errorf("interval [%d, %d] is not a valid tick range", from, to)
	}
	return nil
}

// --- /v1/reachable ---

type reachableRequest struct {
	Src          int  `json:"src"`
	Dst          int  `json:"dst"`
	From         int  `json:"from"`
	To           int  `json:"to"`
	MaxHops      int  `json:"max_hops,omitempty"`
	TrackArrival bool `json:"track_arrival,omitempty"`
	// Contact predicates (§7 filtered reachability): propagation uses only
	// contacts of at least min_duration ticks, closest approach at most
	// max_weight metres, accepted by the registered predicate filter_id.
	MinDuration int     `json:"min_duration,omitempty"`
	MaxWeight   float64 `json:"max_weight,omitempty"`
	FilterID    string  `json:"filter_id,omitempty"`
	// Probabilistic reachability (§7 uncertain contacts): per-contact
	// transmission probability, reachability threshold τ, and the optional
	// seeded Monte-Carlo estimator (mc_trials > 0 selects it).
	Prob          float64 `json:"prob,omitempty"`
	ProbThreshold float64 `json:"prob_threshold,omitempty"`
	MCTrials      int     `json:"mc_trials,omitempty"`
	MCSeed        int64   `json:"mc_seed,omitempty"`
	NoCache       bool    `json:"no_cache,omitempty"`
}

type reachableResponse struct {
	Reachable bool `json:"reachable"`
	Arrival   int  `json:"arrival"`
	Hops      int  `json:"hops"`
	// Prob is the best-path probability (exact) or the Monte-Carlo
	// reliability estimate; omitted on non-probabilistic queries.
	Prob      float64 `json:"prob,omitempty"`
	Native    bool    `json:"native"`
	Expanded  int     `json:"expanded"`
	LatencyUS float64 `json:"latency_us"`
	IO        ioJSON  `json:"io"`
	Cached    bool    `json:"cached"`
}

func (s *Server) handleReachable(w http.ResponseWriter, r *http.Request) {
	var req reachableRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	if err := errors.Join(
		s.validateObject("src", req.Src), s.validateObject("dst", req.Dst),
		validateInterval(req.From, req.To),
	); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	if req.MaxHops < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "max_hops must be non-negative", 0)
		return
	}
	sem := streach.Semantics{
		MaxHops:       req.MaxHops,
		TrackArrival:  req.TrackArrival,
		MinDuration:   req.MinDuration,
		MaxWeight:     req.MaxWeight,
		FilterID:      req.FilterID,
		Prob:          req.Prob,
		ProbThreshold: req.ProbThreshold,
		MCTrials:      req.MCTrials,
		MCSeed:        req.MCSeed,
	}
	key := cacheKey{
		backend: s.eng.Name(), kind: kindReachable,
		src: streach.ObjectID(req.Src), dst: streach.ObjectID(req.Dst),
		lo: streach.Tick(req.From), hi: streach.Tick(req.To),
		sem: sem,
	}
	if !req.NoCache {
		if v, ok := s.cache.get(key); ok {
			resp := v.(reachableResponse)
			resp.Cached = true
			writeJSON(w, resp)
			return
		}
	}
	ver := s.cache.version()
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	res, err := s.eng.Reachable(ctx, streach.Query{
		Src:       streach.ObjectID(req.Src),
		Dst:       streach.ObjectID(req.Dst),
		Interval:  streach.NewInterval(streach.Tick(req.From), streach.Tick(req.To)),
		Semantics: sem,
	})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	s.met.observeExpanded("reachable", res.Expanded)
	if sem.Filter().Active() {
		s.met.filteredQueries.Add(1)
	}
	if sem.Prob > 0 {
		s.met.probabilisticQueries.Add(1)
	}
	resp := reachableResponse{
		Reachable: res.Reachable,
		Arrival:   int(res.Arrival),
		Hops:      res.Hops,
		Prob:      res.Prob,
		Native:    res.Native,
		Expanded:  res.Expanded,
		LatencyUS: float64(res.Latency) / float64(time.Microsecond),
		IO:        ioOf(res.IO),
	}
	if !req.NoCache {
		s.cache.putFresh(key, resp, ver)
	}
	writeJSON(w, resp)
}

// --- /v1/reachable-set (NDJSON streaming) ---

type setRequest struct {
	Src     int  `json:"src"`
	From    int  `json:"from"`
	To      int  `json:"to"`
	NoCache bool `json:"no_cache,omitempty"`
}

type setHeader struct {
	Src    int  `json:"src"`
	From   int  `json:"from"`
	To     int  `json:"to"`
	Cached bool `json:"cached"`
}

type setChunk struct {
	Objects []int `json:"objects"`
}

type setTrailer struct {
	Done      bool    `json:"done"`
	Count     int     `json:"count"`
	Expanded  int     `json:"expanded"`
	LatencyUS float64 `json:"latency_us"`
	IO        ioJSON  `json:"io"`
}

// cachedSet is the cache value of a reachable-set query.
type cachedSet struct {
	objects []streach.ObjectID
	trailer setTrailer
}

func (s *Server) handleReachableSet(w http.ResponseWriter, r *http.Request) {
	var req setRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	if err := errors.Join(
		s.validateObject("src", req.Src), validateInterval(req.From, req.To),
	); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	key := cacheKey{
		backend: s.eng.Name(), kind: kindSet,
		src: streach.ObjectID(req.Src),
		lo:  streach.Tick(req.From), hi: streach.Tick(req.To),
	}
	var (
		objects []streach.ObjectID
		trailer setTrailer
		cached  bool
	)
	if !req.NoCache {
		if v, ok := s.cache.get(key); ok {
			cs := v.(cachedSet)
			objects, trailer, cached = cs.objects, cs.trailer, true
		}
	}
	if !cached {
		ver := s.cache.version()
		ctx, cancel := s.queryCtx(r)
		res, err := s.eng.ReachableSet(ctx, streach.ObjectID(req.Src),
			streach.NewInterval(streach.Tick(req.From), streach.Tick(req.To)))
		cancel()
		if err != nil {
			writeEngineError(w, err)
			return
		}
		s.met.observeExpanded("reachable-set", res.Expanded)
		objects = res.Objects
		trailer = setTrailer{
			Done:      true,
			Count:     len(res.Objects),
			Expanded:  res.Expanded,
			LatencyUS: float64(res.Latency) / float64(time.Microsecond),
			IO:        ioOf(res.IO),
		}
		if !req.NoCache {
			s.cache.putFresh(key, cachedSet{objects: objects, trailer: trailer}, ver)
		}
	}

	// Stream: one header line, the set in fixed-size chunks, one trailer.
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(setHeader{Src: req.Src, From: req.From, To: req.To, Cached: cached})
	flush()
	chunk := make([]int, 0, s.cfg.SetChunk)
	for i, obj := range objects {
		chunk = append(chunk, int(obj))
		if len(chunk) == s.cfg.SetChunk || i == len(objects)-1 {
			enc.Encode(setChunk{Objects: chunk})
			flush()
			chunk = chunk[:0]
		}
	}
	enc.Encode(trailer)
	flush()
}

// --- /v1/earliest-arrival ---

type arrivalRequest struct {
	Src     int  `json:"src"`
	Dst     int  `json:"dst"`
	From    int  `json:"from"`
	To      int  `json:"to"`
	NoCache bool `json:"no_cache,omitempty"`
}

type arrivalResponse struct {
	Reachable bool    `json:"reachable"`
	Arrival   int     `json:"arrival"`
	Hops      int     `json:"hops"`
	Native    bool    `json:"native"`
	Expanded  int     `json:"expanded"`
	LatencyUS float64 `json:"latency_us"`
	IO        ioJSON  `json:"io"`
	Cached    bool    `json:"cached"`
}

func (s *Server) handleEarliestArrival(w http.ResponseWriter, r *http.Request) {
	var req arrivalRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	if err := errors.Join(
		s.validateObject("src", req.Src), s.validateObject("dst", req.Dst),
		validateInterval(req.From, req.To),
	); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	key := cacheKey{
		backend: s.eng.Name(), kind: kindArrival,
		src: streach.ObjectID(req.Src), dst: streach.ObjectID(req.Dst),
		lo: streach.Tick(req.From), hi: streach.Tick(req.To),
	}
	if !req.NoCache {
		if v, ok := s.cache.get(key); ok {
			resp := v.(arrivalResponse)
			resp.Cached = true
			writeJSON(w, resp)
			return
		}
	}
	ver := s.cache.version()
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	res, err := s.eng.EarliestArrival(ctx, streach.ObjectID(req.Src), streach.ObjectID(req.Dst),
		streach.NewInterval(streach.Tick(req.From), streach.Tick(req.To)))
	if err != nil {
		writeEngineError(w, err)
		return
	}
	s.met.observeExpanded("earliest-arrival", res.Expanded)
	resp := arrivalResponse{
		Reachable: res.Reachable,
		Arrival:   int(res.Arrival),
		Hops:      res.Hops,
		Native:    res.Native,
		Expanded:  res.Expanded,
		LatencyUS: float64(res.Latency) / float64(time.Microsecond),
		IO:        ioOf(res.IO),
	}
	if !req.NoCache {
		s.cache.putFresh(key, resp, ver)
	}
	writeJSON(w, resp)
}

// --- /v1/topk ---

type topKRequest struct {
	Src     int     `json:"src"`
	From    int     `json:"from"`
	To      int     `json:"to"`
	K       int     `json:"k"`
	Decay   float64 `json:"decay"`
	NoCache bool    `json:"no_cache,omitempty"`
}

type rankedJSON struct {
	Object  int     `json:"object"`
	Hops    int     `json:"hops"`
	Arrival int     `json:"arrival"`
	Weight  float64 `json:"weight"`
}

type topKResponse struct {
	Items     []rankedJSON `json:"items"`
	Native    bool         `json:"native"`
	Expanded  int          `json:"expanded"`
	LatencyUS float64      `json:"latency_us"`
	IO        ioJSON       `json:"io"`
	Cached    bool         `json:"cached"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topKRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	if err := errors.Join(
		s.validateObject("src", req.Src), validateInterval(req.From, req.To),
	); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	if req.K <= 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "k must be positive", 0)
		return
	}
	if !(req.Decay > 0 && req.Decay <= 1) {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "decay must be in (0, 1]", 0)
		return
	}
	key := cacheKey{
		backend: s.eng.Name(), kind: kindTopK,
		src: streach.ObjectID(req.Src),
		lo:  streach.Tick(req.From), hi: streach.Tick(req.To),
		k: req.K, decay: req.Decay,
	}
	if !req.NoCache {
		if v, ok := s.cache.get(key); ok {
			resp := v.(topKResponse)
			resp.Cached = true
			writeJSON(w, resp)
			return
		}
	}
	ver := s.cache.version()
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	res, err := s.eng.TopKReachable(ctx, streach.ObjectID(req.Src),
		streach.NewInterval(streach.Tick(req.From), streach.Tick(req.To)), req.K, req.Decay)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	s.met.observeExpanded("topk", res.Expanded)
	items := make([]rankedJSON, len(res.Items))
	for i, it := range res.Items {
		items[i] = rankedJSON{
			Object: int(it.Object), Hops: it.Hops, Arrival: int(it.Arrival), Weight: it.Weight,
		}
	}
	resp := topKResponse{
		Items:     items,
		Native:    res.Native,
		Expanded:  res.Expanded,
		LatencyUS: float64(res.Latency) / float64(time.Microsecond),
		IO:        ioOf(res.IO),
	}
	if !req.NoCache {
		s.cache.putFresh(key, resp, ver)
	}
	writeJSON(w, resp)
}

// --- /v1/ingest ---

type ingestRequest struct {
	// Instants holds one position list per feed instant; Instants[t][o]
	// is [x, y] of object o — the v1 positional form, which can only
	// append in tick order.
	Instants [][][2]float64 `json:"instants"`
	// Events is the v2 event form: contact adds and retractions at any
	// tick. Exactly one of Instants and Events must be present.
	Events []ingestEvent `json:"events"`
}

// ingestEvent is the wire form of streach.ContactEvent.
type ingestEvent struct {
	Tick    int  `json:"tick"`
	A       int  `json:"a"`
	B       int  `json:"b"`
	Retract bool `json:"retract,omitempty"`
}

// ingestReportJSON is the wire form of streach.IngestReport, returned for
// event-form ingests.
type ingestReportJSON struct {
	Applied       int      `json:"applied"`
	Late          int      `json:"late"`
	Retracted     int      `json:"retracted"`
	Duplicates    int      `json:"duplicates,omitempty"`
	RetractMisses int      `json:"retract_misses,omitempty"`
	Compacted     int      `json:"compacted,omitempty"`
	Sealed        [][2]int `json:"sealed,omitempty"`
}

type ingestResponse struct {
	Ticks          int               `json:"ticks"`
	SealedSegments int               `json:"sealed_segments"`
	Report         *ingestReportJSON `json:"report,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.live == nil {
		writeError(w, http.StatusNotImplemented, CodeNotLive,
			fmt.Sprintf("backend %q serves a frozen dataset; ingest needs a live engine", s.eng.Name()), 0)
		return
	}
	var req ingestRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	switch {
	case len(req.Instants) > 0 && len(req.Events) > 0:
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"body carries both instants and events; send exactly one form", 0)
		return
	case len(req.Instants) == 0 && len(req.Events) == 0:
		writeError(w, http.StatusBadRequest, CodeBadRequest, "no instants or events in ingest body", 0)
		return
	case len(req.Events) > 0:
		s.ingestEvents(w, req.Events)
		return
	}
	// Validate every instant before applying any, so a malformed body is
	// rejected whole instead of leaving earlier instants silently ingested.
	for t, inst := range req.Instants {
		if len(inst) != s.numObjects {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("instant %d carries %d positions, want %d; nothing ingested", t, len(inst), s.numObjects), 0)
			return
		}
	}
	positions := make([]streach.Point, s.numObjects)
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	for t, inst := range req.Instants {
		for o, xy := range inst {
			positions[o] = streach.Point{X: xy[0], Y: xy[1]}
		}
		if err := s.live.AddInstant(positions); err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal,
				fmt.Sprintf("ingest instant %d: %v (%d of %d instants applied)", t, err, t, len(req.Instants)), 0)
			return
		}
	}
	s.met.ingestedTicks.Add(int64(len(req.Instants)))
	writeJSON(w, ingestResponse{
		Ticks:          s.live.NumTicks(),
		SealedSegments: s.live.NumSealedSegments(),
	})
}

// ingestEvents is the event-form half of /v1/ingest. Everything is
// validated before anything applies — structural problems are 400s, a
// retraction of a contact instant the feed does not currently hold is a
// 409 retract_miss (the wire contract is stricter than LiveEngine.Ingest,
// which counts misses and proceeds: a client retracting blind is a bug
// worth surfacing; note an add and its retraction therefore cannot share
// one batch). Ticks at or past the ingest horizon are a 400
// beyond_horizon.
func (s *Server) ingestEvents(w http.ResponseWriter, events []ingestEvent) {
	for i, ev := range events {
		switch {
		case ev.A < 0 || ev.A >= s.numObjects || ev.B < 0 || ev.B >= s.numObjects:
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("event %d: object outside [0, %d); nothing ingested", i, s.numObjects), 0)
			return
		case ev.A == ev.B:
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("event %d: self-contact of object %d; nothing ingested", i, ev.A), 0)
			return
		case ev.Tick < 0:
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("event %d: negative tick; nothing ingested", i), 0)
			return
		}
	}
	evs := make([]streach.ContactEvent, len(events))
	for i, ev := range events {
		evs[i] = streach.ContactEvent{
			Tick:    streach.Tick(ev.Tick),
			A:       streach.ObjectID(ev.A),
			B:       streach.ObjectID(ev.B),
			Retract: ev.Retract,
		}
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	for i, ev := range evs {
		if ev.Retract && !s.live.ContactActiveAt(ev.A, ev.B, ev.Tick) {
			writeError(w, http.StatusConflict, CodeRetractMiss,
				fmt.Sprintf("event %d retracts contact (%d, %d) at tick %d, which is not ingested; nothing ingested",
					i, ev.A, ev.B, ev.Tick), 0)
			return
		}
	}
	before := s.live.NumTicks()
	rep, err := s.live.Ingest(evs)
	if err != nil {
		switch {
		case errors.Is(err, streach.ErrIngestHorizon):
			writeError(w, http.StatusBadRequest, CodeBeyondHorizon, err.Error()+"; nothing ingested", 0)
		case errors.Is(err, streach.ErrBadEvent):
			writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error()+"; nothing ingested", 0)
		default:
			writeError(w, http.StatusInternalServerError, CodeInternal, err.Error(), 0)
		}
		return
	}
	s.met.ingestedTicks.Add(int64(s.live.NumTicks() - before))
	report := &ingestReportJSON{
		Applied:       rep.Applied,
		Late:          rep.Late,
		Retracted:     rep.Retracted,
		Duplicates:    rep.Duplicates,
		RetractMisses: rep.RetractMisses,
		Compacted:     rep.Compacted,
	}
	for _, sp := range rep.Sealed {
		report.Sealed = append(report.Sealed, [2]int{int(sp.Lo), int(sp.Hi)})
	}
	writeJSON(w, ingestResponse{
		Ticks:          s.live.NumTicks(),
		SealedSegments: s.live.NumSealedSegments(),
		Report:         report,
	})
}

// --- /v1/stats ---

type poolJSON struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

type engineJSON struct {
	NumObjects     int   `json:"num_objects"`
	NumTicks       int   `json:"num_ticks"`
	IndexBytes     int64 `json:"index_bytes"`
	Segments       int   `json:"segments,omitempty"`
	SealedSegments int   `json:"sealed_segments,omitempty"`
	// The live delta-log and out-of-order ingest counters; always present
	// (zero on frozen backends) so monitors can rely on the fields.
	DeltaEvents   int       `json:"delta_events"`
	DirtySegments int       `json:"dirty_segments"`
	LateEvents    int64     `json:"late_events"`
	Retractions   int64     `json:"retractions"`
	Compactions   int64     `json:"compactions"`
	IO            ioJSON    `json:"io"`
	Pool          *poolJSON `json:"pool,omitempty"`
	// Sharding topology and scatter-gather traffic; present only on
	// "shard:*" backends (Shards > 0).
	Shards             int         `json:"shards,omitempty"`
	Partitioner        string      `json:"partitioner,omitempty"`
	CrossShardRatio    float64     `json:"cross_shard_ratio,omitempty"`
	CrossShardFrontier int64       `json:"cross_shard_frontier,omitempty"`
	ShardDetails       []shardJSON `json:"shard_details,omitempty"`
}

// shardJSON is the wire form of streach.ShardStats.
type shardJSON struct {
	Shard      int    `json:"shard"`
	Objects    int    `json:"objects"`
	Contacts   int    `json:"contacts"`
	IndexBytes int64  `json:"index_bytes"`
	IO         ioJSON `json:"io"`
}

type cacheJSON struct {
	Entries     int     `json:"entries"`
	Capacity    int     `json:"capacity"`
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Invalidated int64   `json:"invalidated"`
	Evicted     int64   `json:"evicted"`
	StalePuts   int64   `json:"stale_puts"`
	HitRate     float64 `json:"hit_rate"`
}

type admissionJSON struct {
	InFlight         int64   `json:"in_flight"`
	Waiting          int64   `json:"waiting"`
	MaxInFlight      int     `json:"max_in_flight"`
	MaxQueue         int     `json:"max_queue"`
	RejectedOverload int64   `json:"rejected_overload"`
	RejectedQuota    int64   `json:"rejected_quota"`
	ClientQPS        float64 `json:"client_qps,omitempty"`
}

// expandedBucketJSON is one cumulative histogram cell: observations ≤ LE.
type expandedBucketJSON struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// expandedJSON is one endpoint's expanded-contacts histogram: how many
// contact-list entries fresh evaluations expanded (cache hits excluded).
type expandedJSON struct {
	Count   int64                `json:"count"`
	Total   int64                `json:"total"`
	Mean    float64              `json:"mean"`
	Buckets []expandedBucketJSON `json:"buckets"`
}

type statsResponse struct {
	Backend   string        `json:"backend"`
	Dataset   string        `json:"dataset,omitempty"`
	Live      bool          `json:"live"`
	UptimeSec float64       `json:"uptime_sec"`
	EnvWidth  float64       `json:"env_width,omitempty"`
	EnvHeight float64       `json:"env_height,omitempty"`
	Engine    engineJSON    `json:"engine"`
	Cache     cacheJSON     `json:"cache"`
	Admission admissionJSON `json:"admission"`
	// ExpandedContacts is keyed by query endpoint; absent until the first
	// fresh evaluation has been observed.
	ExpandedContacts map[string]expandedJSON `json:"expanded_contacts,omitempty"`
}

// envDims is set by cmd/streachd via SetEnv for load generators that need
// to synthesize plausible ingest positions.
func (s *Server) SetEnv(env streach.Rect) {
	s.envWidth, s.envHeight = env.Width(), env.Height()
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	ej := engineJSON{
		NumObjects:     st.NumObjects,
		NumTicks:       st.NumTicks,
		IndexBytes:     st.IndexBytes,
		Segments:       st.Segments,
		SealedSegments: st.SealedSegments,
		DeltaEvents:    st.DeltaEvents,
		DirtySegments:  st.DirtySegments,
		LateEvents:     st.LateEvents,
		Retractions:    st.Retractions,
		Compactions:    st.Compactions,
		IO:             ioOf(st.IO),
	}
	if st.HasPool {
		ej.Pool = &poolJSON{
			Hits:      st.Pool.Hits,
			Misses:    st.Pool.Misses,
			Evictions: st.Pool.Evictions,
			HitRate:   st.Pool.HitRate(),
		}
	}
	if st.Shards > 0 {
		ej.Shards = st.Shards
		ej.Partitioner = st.Partitioner
		ej.CrossShardRatio = st.CrossShardRatio
		ej.CrossShardFrontier = st.CrossShardFrontier
		for _, sh := range st.ShardDetails {
			ej.ShardDetails = append(ej.ShardDetails, shardJSON{
				Shard:      sh.Shard,
				Objects:    sh.Objects,
				Contacts:   sh.Contacts,
				IndexBytes: sh.IndexBytes,
				IO:         ioOf(sh.IO),
			})
		}
	}
	var expanded map[string]expandedJSON
	if names := s.met.expandedNames(); len(names) > 0 {
		expanded = make(map[string]expandedJSON, len(names))
		for _, name := range names {
			h := s.met.expandedHistogram(name)
			ex := expandedJSON{Count: h.count.Load(), Total: h.sum.Load()}
			if ex.Count > 0 {
				ex.Mean = float64(ex.Total) / float64(ex.Count)
			}
			var cum int64
			for i, bound := range expandedBounds {
				cum += h.buckets[i].Load()
				ex.Buckets = append(ex.Buckets, expandedBucketJSON{LE: bound, Count: cum})
			}
			expanded[name] = ex
		}
	}
	writeJSON(w, statsResponse{
		Backend:   s.eng.Name(),
		Dataset:   s.cfg.Dataset,
		Live:      s.live != nil,
		UptimeSec: time.Since(s.start).Seconds(),
		EnvWidth:  s.envWidth,
		EnvHeight: s.envHeight,
		Engine:    ej,
		Cache: cacheJSON{
			Entries:     s.cache.len(),
			Capacity:    s.cfg.CacheEntries,
			Hits:        s.cache.hits.Load(),
			Misses:      s.cache.misses.Load(),
			Invalidated: s.cache.invalidated.Load(),
			Evicted:     s.cache.evicted.Load(),
			StalePuts:   s.cache.staleDrops.Load(),
			HitRate:     s.cache.hitRate(),
		},
		Admission: admissionJSON{
			InFlight:         s.adm.inFlight.Load(),
			Waiting:          s.adm.waiting.Load(),
			MaxInFlight:      s.adm.maxInFlight,
			MaxQueue:         s.adm.maxQueue,
			RejectedOverload: s.adm.rejectedQueue.Load(),
			RejectedQuota:    s.adm.rejectedQuota.Load(),
			ClientQPS:        s.adm.rate,
		},
		ExpandedContacts: expanded,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.writeMetrics(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
