package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"streach"
)

// testDataset is the small frozen workload shared by the HTTP tests.
func testDataset() *streach.Dataset {
	return streach.GenerateRandomWaypoint(streach.RWPOptions{NumObjects: 30, NumTicks: 120, Seed: 11})
}

func newFrozenServer(t *testing.T, cfg Config) (*Server, streach.Engine, *httptest.Server) {
	t.Helper()
	eng, err := streach.Open("oracle", testDataset(), streach.Options{})
	if err != nil {
		t.Fatalf("open oracle: %v", err)
	}
	s := New(eng, cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, eng, ts
}

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeErr(t *testing.T, resp *http.Response) APIError {
	t.Helper()
	defer resp.Body.Close()
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error response is not the envelope: %v", err)
	}
	return env.Error
}

// TestStructuredErrors drives every client-visible failure path and checks
// each answers the one JSON envelope shape with the right code and status.
func TestStructuredErrors(t *testing.T) {
	_, _, ts := newFrozenServer(t, Config{})

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"wrong method", http.MethodGet, "/v1/reachable", "", 405, CodeMethodNotAllowed},
		{"stats wrong method", http.MethodPost, "/v1/stats", "{}", 405, CodeMethodNotAllowed},
		{"unknown route", http.MethodPost, "/v1/nope", "{}", 404, CodeNotFound},
		{"malformed json", http.MethodPost, "/v1/reachable", "{", 400, CodeBadRequest},
		{"unknown field", http.MethodPost, "/v1/reachable", `{"src":1,"dst":2,"from":0,"to":9,"bogus":1}`, 400, CodeBadRequest},
		{"src out of range", http.MethodPost, "/v1/reachable", `{"src":999,"dst":2,"from":0,"to":9}`, 400, CodeBadRequest},
		{"negative src", http.MethodPost, "/v1/reachable", `{"src":-1,"dst":2,"from":0,"to":9}`, 400, CodeBadRequest},
		{"inverted interval", http.MethodPost, "/v1/reachable", `{"src":1,"dst":2,"from":9,"to":0}`, 400, CodeBadRequest},
		{"negative max_hops", http.MethodPost, "/v1/reachable", `{"src":1,"dst":2,"from":0,"to":9,"max_hops":-2}`, 400, CodeBadRequest},
		{"set bad src", http.MethodPost, "/v1/reachable-set", `{"src":999,"from":0,"to":9}`, 400, CodeBadRequest},
		{"arrival bad interval", http.MethodPost, "/v1/earliest-arrival", `{"src":1,"dst":2,"from":-5,"to":9}`, 400, CodeBadRequest},
		{"topk zero k", http.MethodPost, "/v1/topk", `{"src":1,"from":0,"to":9,"k":0,"decay":0.5}`, 400, CodeBadRequest},
		{"topk bad decay", http.MethodPost, "/v1/topk", `{"src":1,"from":0,"to":9,"k":3,"decay":1.5}`, 400, CodeBadRequest},
		{"ingest on frozen", http.MethodPost, "/v1/ingest", `{"instants":[[[0,0]]]}`, 501, CodeNotLive},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			apiErr := decodeErr(t, resp)
			if apiErr.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", apiErr.Code, tc.wantCode)
			}
			if apiErr.Message == "" {
				t.Error("error message is empty")
			}
		})
	}
}

// TestQuotaRejection exhausts a client's token bucket and checks the 429
// carries both the JSON retry hint and the Retry-After header.
func TestQuotaRejection(t *testing.T) {
	_, _, ts := newFrozenServer(t, Config{ClientQPS: 0.001, ClientBurst: 1})
	body := `{"src":1,"dst":2,"from":0,"to":9}`

	req := func() *http.Response {
		r, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/reachable", strings.NewReader(body))
		r.Header.Set("X-Client-ID", "greedy")
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	first := req()
	first.Body.Close()
	if first.StatusCode != 200 {
		t.Fatalf("first request status = %d", first.StatusCode)
	}
	second := req()
	if second.StatusCode != 429 {
		t.Fatalf("second request status = %d, want 429", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Error("429 is missing the Retry-After header")
	}
	apiErr := decodeErr(t, second)
	if apiErr.Code != CodeQuota || apiErr.RetryAfterMS <= 0 {
		t.Errorf("quota error = %+v", apiErr)
	}
}

// TestReachableMatchesEngineAndCaches compares HTTP answers against direct
// engine evaluation and checks the repeat-query cache path.
func TestReachableMatchesEngineAndCaches(t *testing.T) {
	_, eng, ts := newFrozenServer(t, Config{})
	ctx := context.Background()

	for src := 0; src < 6; src++ {
		dst := (src + 7) % 30
		want, err := eng.Reachable(ctx, streach.Query{
			Src: streach.ObjectID(src), Dst: streach.ObjectID(dst),
			Interval: streach.NewInterval(0, 100),
		})
		if err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf(`{"src":%d,"dst":%d,"from":0,"to":100}`, src, dst)

		var got reachableResponse
		resp := post(t, ts.URL+"/v1/reachable", body)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if got.Reachable != want.Reachable {
			t.Errorf("%d⤳%d: HTTP says %v, engine says %v", src, dst, got.Reachable, want.Reachable)
		}
		if got.Cached {
			t.Errorf("%d⤳%d: first evaluation claims a cache hit", src, dst)
		}

		var again reachableResponse
		resp = post(t, ts.URL+"/v1/reachable", body)
		json.NewDecoder(resp.Body).Decode(&again)
		resp.Body.Close()
		if !again.Cached {
			t.Errorf("%d⤳%d: repeat query missed the cache", src, dst)
		}
		if again.Reachable != got.Reachable {
			t.Errorf("%d⤳%d: cached answer differs", src, dst)
		}
	}
}

// TestReachableSetNDJSON parses the streamed response — header line,
// chunked object lines, trailer — and checks the union matches the
// engine's set.
func TestReachableSetNDJSON(t *testing.T) {
	_, eng, ts := newFrozenServer(t, Config{SetChunk: 4})

	want, err := eng.ReachableSet(context.Background(), 3, streach.NewInterval(0, 119))
	if err != nil {
		t.Fatal(err)
	}

	resp := post(t, ts.URL+"/v1/reachable-set", `{"src":3,"from":0,"to":119}`)
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)

	if !sc.Scan() {
		t.Fatal("no header line")
	}
	var hdr setHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header line: %v", err)
	}
	if hdr.Src != 3 || hdr.Cached {
		t.Errorf("header = %+v", hdr)
	}

	var objects []int
	var trailer setTrailer
	chunkLines := 0
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatalf("trailer line: %v", err)
			}
			break
		}
		var chunk setChunk
		if err := json.Unmarshal(line, &chunk); err != nil {
			t.Fatalf("chunk line: %v", err)
		}
		if len(chunk.Objects) > 4 {
			t.Errorf("chunk carries %d objects, configured max is 4", len(chunk.Objects))
		}
		objects = append(objects, chunk.Objects...)
		chunkLines++
	}
	if !trailer.Done {
		t.Fatal("stream ended without a done trailer")
	}
	if trailer.Count != len(want.Objects) || len(objects) != len(want.Objects) {
		t.Fatalf("streamed %d objects (trailer says %d), engine says %d",
			len(objects), trailer.Count, len(want.Objects))
	}
	for i, o := range want.Objects {
		if objects[i] != int(o) {
			t.Fatalf("object[%d] = %d, want %d", i, objects[i], o)
		}
	}
	if len(want.Objects) > 4 && chunkLines < 2 {
		t.Errorf("set of %d objects streamed in %d chunk lines, want > 1", len(want.Objects), chunkLines)
	}
}

// TestLiveNoStaleReads is the staleness regression: cache a negative
// answer, ingest a contact that flips it, and check the re-query sees the
// new truth — while a non-overlapping cached entry survives untouched.
func TestLiveNoStaleReads(t *testing.T) {
	env := streach.Rect{Min: streach.Point{X: 0, Y: 0}, Max: streach.Point{X: 1000, Y: 1000}}
	le, err := streach.NewLiveEngine("oracle", 2, env, 10, streach.Options{SegmentTicks: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := New(le, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Five instants with the two objects far apart: no contact.
	far := `[[0,0],[900,900]]`
	instants := strings.Repeat(far+",", 4) + far
	resp := post(t, ts.URL+"/v1/ingest", `{"instants":[`+instants+`]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("ingest status %d: %+v", resp.StatusCode, decodeErr(t, resp))
	}
	var ing ingestResponse
	json.NewDecoder(resp.Body).Decode(&ing)
	resp.Body.Close()
	if ing.Ticks != 5 || ing.SealedSegments != 1 {
		t.Fatalf("after preload: %+v, want 5 ticks / 1 sealed segment", ing)
	}

	query := func(body string) reachableResponse {
		resp := post(t, ts.URL+"/v1/reachable", body)
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("query status %d", resp.StatusCode)
		}
		var r reachableResponse
		json.NewDecoder(resp.Body).Decode(&r)
		return r
	}

	q := `{"src":0,"dst":1,"from":0,"to":9}`
	if r := query(q); r.Reachable {
		t.Fatal("objects 900m apart with dT=10 report a contact")
	}
	if r := query(q); !r.Cached || r.Reachable {
		t.Fatalf("repeat query: %+v, want cached negative", r)
	}
	// A future-window entry that the upcoming ingest must NOT touch.
	future := `{"src":0,"dst":1,"from":20,"to":30}`
	query(future)

	// Tick 5: the objects meet. The ingest hook must drop the cached
	// [0,9] answer.
	resp = post(t, ts.URL+"/v1/ingest", `{"instants":[[[500,500],[502,500]]]}`)
	resp.Body.Close()

	r := query(q)
	if r.Cached {
		t.Fatal("stale read: cached answer served across an answer-flipping ingest")
	}
	if !r.Reachable {
		t.Fatal("re-query after the contact still answers unreachable")
	}
	if rf := query(future); !rf.Cached {
		t.Error("non-overlapping cached entry [20,30] was dropped by an ingest at tick 5")
	}
}

// stubEngine is a controllable Engine for lifecycle tests: Reachable
// blocks until release is closed (observing ctx).
type stubEngine struct {
	entered chan struct{}
	release chan struct{}
}

func (e *stubEngine) Name() string { return "stub" }
func (e *stubEngine) Reachable(ctx context.Context, q streach.Query) (streach.Result, error) {
	if e.entered != nil {
		select {
		case e.entered <- struct{}{}:
		default:
		}
	}
	if e.release != nil {
		select {
		case <-e.release:
		case <-ctx.Done():
			return streach.Result{}, ctx.Err()
		}
	}
	return streach.Result{Query: q, Reachable: true, Arrival: -1, Hops: -1}, nil
}
func (e *stubEngine) ReachableSet(context.Context, streach.ObjectID, streach.Interval) (streach.SetResult, error) {
	return streach.SetResult{}, nil
}
func (e *stubEngine) EarliestArrival(context.Context, streach.ObjectID, streach.ObjectID, streach.Interval) (streach.ArrivalResult, error) {
	return streach.ArrivalResult{}, nil
}
func (e *stubEngine) TopKReachable(context.Context, streach.ObjectID, streach.Interval, int, float64) (streach.TopKResult, error) {
	return streach.TopKResult{}, nil
}
func (e *stubEngine) IndexBytes() int64         { return 0 }
func (e *stubEngine) IOTotals() streach.IOStats { return streach.IOStats{} }
func (e *stubEngine) Stats() streach.EngineStats {
	return streach.EngineStats{Backend: "stub", NumObjects: 8, NumTicks: 100}
}

// TestOverloadShedding saturates a 1-slot, 1-queue server with blocking
// queries and checks the third request is shed with 503 + Retry-After.
func TestOverloadShedding(t *testing.T) {
	stub := &stubEngine{entered: make(chan struct{}, 2), release: make(chan struct{})}
	s := New(stub, Config{MaxInFlight: 1, MaxQueue: 1, CacheEntries: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := `{"src":1,"dst":2,"from":0,"to":9}`

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/reachable", "application/json", strings.NewReader(body))
			if err != nil {
				results <- -1
				return
			}
			resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	// One request inside the engine, one in the admission queue.
	<-stub.entered
	waitFor(t, func() bool { return s.adm.waiting.Load() == 1 })

	resp := post(t, ts.URL+"/v1/reachable", body)
	if resp.StatusCode != 503 {
		t.Fatalf("third request status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 overload is missing the Retry-After header")
	}
	if apiErr := decodeErr(t, resp); apiErr.Code != CodeOverloaded {
		t.Errorf("code = %q, want %q", apiErr.Code, CodeOverloaded)
	}

	close(stub.release)
	for i := 0; i < 2; i++ {
		if code := <-results; code != 200 {
			t.Errorf("held request finished with status %d", code)
		}
	}
}

// TestGracefulShutdown runs the Serve lifecycle: cancel the context while
// a query is in flight, check new work is rejected as shutting_down, the
// in-flight query completes, and Serve returns within the grace period.
func TestGracefulShutdown(t *testing.T) {
	stub := &stubEngine{entered: make(chan struct{}, 1), release: make(chan struct{})}
	s := New(stub, Config{CacheEntries: -1})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln, 5*time.Second) }()

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/reachable",
			"application/json", strings.NewReader(`{"src":1,"dst":2,"from":0,"to":9}`))
		if err != nil {
			inflight <- -1
			return
		}
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-stub.entered

	cancel()
	waitFor(t, func() bool { return s.isDraining() })

	// New work is rejected with the shutdown envelope.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/reachable", strings.NewReader(`{"src":1,"dst":2,"from":0,"to":9}`))
	s.ServeHTTP(rec, req)
	if rec.Code != 503 {
		t.Fatalf("request during drain: status %d, want 503", rec.Code)
	}
	var env ErrorEnvelope
	json.Unmarshal(rec.Body.Bytes(), &env)
	if env.Error.Code != CodeShuttingDown {
		t.Errorf("drain rejection code = %q, want %q", env.Error.Code, CodeShuttingDown)
	}

	// The in-flight query still completes, then Serve exits cleanly.
	close(stub.release)
	if code := <-inflight; code != 200 {
		t.Errorf("in-flight request finished with status %d, want 200", code)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("Serve returned %v, want nil after a clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not exit after the drain")
	}
}

// TestEngineErrorMapping pins writeEngineError's status mapping for
// cancellation, timeout and plain failure.
func TestEngineErrorMapping(t *testing.T) {
	cases := []struct {
		err        error
		wantStatus int
		wantCode   string
	}{
		{context.Canceled, StatusClientClosedRequest, CodeCanceled},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, CodeCanceled},
		{fmt.Errorf("disk on fire"), http.StatusInternalServerError, CodeInternal},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeEngineError(rec, tc.err)
		if rec.Code != tc.wantStatus {
			t.Errorf("%v: status %d, want %d", tc.err, rec.Code, tc.wantStatus)
		}
		var env ErrorEnvelope
		json.Unmarshal(rec.Body.Bytes(), &env)
		if env.Error.Code != tc.wantCode {
			t.Errorf("%v: code %q, want %q", tc.err, env.Error.Code, tc.wantCode)
		}
	}
}

// TestMetricsEndpoint scrapes /metrics after traffic and spot-checks the
// exposition.
func TestMetricsEndpoint(t *testing.T) {
	_, _, ts := newFrozenServer(t, Config{})
	post(t, ts.URL+"/v1/reachable", `{"src":1,"dst":2,"from":0,"to":9}`).Body.Close()
	post(t, ts.URL+"/v1/reachable", `{"src":1,"dst":2,"from":0,"to":9}`).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		`streachd_requests_total{endpoint="reachable",code="200"} 2`,
		`streachd_cache_events_total{event="hit"} 1`,
		`streachd_cache_events_total{event="miss"} 1`,
		"streachd_request_duration_seconds_bucket",
		"streachd_engine_ticks 120",
		// One fresh evaluation and one cache hit: the expanded-contacts
		// histogram must count exactly the fresh one.
		`streachd_expanded_contacts_bucket{endpoint="reachable",le="+Inf"} 1`,
		`streachd_expanded_contacts_count{endpoint="reachable"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}

	// The same histogram surfaces in /v1/stats.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	ex, ok := st.ExpandedContacts["reachable"]
	if !ok {
		t.Fatalf("stats carry no expanded_contacts for reachable: %+v", st.ExpandedContacts)
	}
	if ex.Count != 1 || len(ex.Buckets) != len(expandedBounds) {
		t.Errorf("expanded_contacts[reachable] = %+v, want count 1 with %d buckets", ex, len(expandedBounds))
	}
}

// TestStatsEndpoint checks the /v1/stats JSON carries the fields load
// generators depend on.
func TestStatsEndpoint(t *testing.T) {
	_, _, ts := newFrozenServer(t, Config{Dataset: "RWP30"})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Backend != "oracle" || st.Dataset != "RWP30" || st.Live {
		t.Errorf("stats header = %+v", st)
	}
	if st.Engine.NumObjects != 30 || st.Engine.NumTicks != 120 {
		t.Errorf("engine dims = %d×%d", st.Engine.NumObjects, st.Engine.NumTicks)
	}
	if st.Admission.MaxInFlight <= 0 || st.Cache.Capacity != 4096 {
		t.Errorf("defaults not applied: %+v", st)
	}
}

// newLiveEventServer spins up a live engine with a contact between objects
// 2 and 3 at ticks 45 and 49 (so NumTicks is 50 and six 8-tick slabs are
// sealed) behind a serving stack, for the event-ingest wire tests.
func newLiveEventServer(t *testing.T) (*streach.LiveEngine, *httptest.Server) {
	t.Helper()
	env := streach.Rect{Min: streach.Point{X: 0, Y: 0}, Max: streach.Point{X: 1000, Y: 1000}}
	le, err := streach.NewLiveEngine("oracle", 4, env, 10,
		streach.Options{SegmentTicks: 8, IngestHorizon: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := le.Ingest([]streach.ContactEvent{
		{Tick: 45, A: 2, B: 3},
		{Tick: 49, A: 2, B: 3},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(le, Config{}))
	t.Cleanup(ts.Close)
	return le, ts
}

// TestIngestEventErrors drives the failure paths of the event form of
// /v1/ingest: structural problems and horizon overruns are 400s, blind
// retractions are 409s, and in every case nothing is ingested.
func TestIngestEventErrors(t *testing.T) {
	le, ts := newLiveEventServer(t)

	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"both forms", `{"instants":[[[0,0],[1,1],[2,2],[3,3]]],"events":[{"tick":0,"a":0,"b":1}]}`, 400, CodeBadRequest},
		{"neither form", `{}`, 400, CodeBadRequest},
		{"object out of range", `{"events":[{"tick":0,"a":0,"b":9}]}`, 400, CodeBadRequest},
		{"negative object", `{"events":[{"tick":0,"a":-1,"b":1}]}`, 400, CodeBadRequest},
		{"self contact", `{"events":[{"tick":0,"a":2,"b":2}]}`, 400, CodeBadRequest},
		{"negative tick", `{"events":[{"tick":-1,"a":0,"b":1}]}`, 400, CodeBadRequest},
		{"beyond horizon", `{"events":[{"tick":10000,"a":0,"b":1}]}`, 400, CodeBeyondHorizon},
		{"good then beyond horizon rejects whole batch",
			`{"events":[{"tick":0,"a":0,"b":1},{"tick":10000,"a":0,"b":1}]}`, 400, CodeBeyondHorizon},
		{"retract of nonexistent", `{"events":[{"tick":45,"a":0,"b":1,"retract":true}]}`, 409, CodeRetractMiss},
		{"good then blind retract rejects whole batch",
			`{"events":[{"tick":0,"a":0,"b":1},{"tick":3,"a":0,"b":1,"retract":true}]}`, 409, CodeRetractMiss},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, ts.URL+"/v1/ingest", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			apiErr := decodeErr(t, resp)
			if apiErr.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", apiErr.Code, tc.wantCode)
			}
			if apiErr.Message == "" {
				t.Error("error message is empty")
			}
		})
	}
	st := le.Stats()
	if st.NumTicks != 50 || st.DeltaEvents != 0 || st.LateEvents != 0 {
		t.Fatalf("rejected batches touched the engine: %+v", st)
	}
	if le.ContactActiveAt(0, 1, 0) {
		t.Fatal("rejected batch partially applied")
	}
}

// TestLiveEventStaleness is the out-of-order staleness regression: a late
// add and its retraction at tick 15 must each invalidate exactly the
// cached entries whose intervals cover tick 15 — flipping the covered
// answer both ways — while every non-overlapping entry keeps serving from
// cache, and the delta-log depth is visible in /v1/stats until Compact
// folds it away.
func TestLiveEventStaleness(t *testing.T) {
	le, ts := newLiveEventServer(t)

	query := func(body string) reachableResponse {
		resp := post(t, ts.URL+"/v1/reachable", body)
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("query %s: status %d", body, resp.StatusCode)
		}
		var r reachableResponse
		json.NewDecoder(resp.Body).Decode(&r)
		return r
	}
	warm := func(body string, wantReachable bool) {
		t.Helper()
		if r := query(body); r.Reachable != wantReachable {
			t.Fatalf("warm %s: reachable = %v, want %v", body, r.Reachable, wantReachable)
		}
		if r := query(body); !r.Cached {
			t.Fatalf("warm %s: repeat query missed the cache", body)
		}
	}
	ingest := func(body string) *ingestReportJSON {
		t.Helper()
		resp := post(t, ts.URL+"/v1/ingest", body)
		if resp.StatusCode != 200 {
			t.Fatalf("ingest status %d: %+v", resp.StatusCode, decodeErr(t, resp))
		}
		var ing ingestResponse
		json.NewDecoder(resp.Body).Decode(&ing)
		resp.Body.Close()
		if ing.Report == nil {
			t.Fatalf("event ingest returned no report")
		}
		return ing.Report
	}
	stats := func() statsResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st statsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	covered := `{"src":0,"dst":1,"from":10,"to":20}`  // covers tick 15
	disjoint := `{"src":0,"dst":1,"from":30,"to":40}` // does not
	other := `{"src":2,"dst":3,"from":40,"to":49}`    // different pair, preloaded contact
	warm(covered, false)
	warm(disjoint, false)
	warm(other, true)

	// Late add into sealed slab [8, 15].
	if rep := ingest(`{"events":[{"tick":15,"a":0,"b":1}]}`); rep.Late != 1 || rep.Applied != 0 {
		t.Fatalf("late add report = %+v", rep)
	}
	if r := query(covered); r.Cached || !r.Reachable {
		t.Fatalf("after late add: %+v, want fresh reachable answer", r)
	}
	if r := query(disjoint); !r.Cached {
		t.Error("disjoint entry [30,40] dropped by an ingest at tick 15")
	}
	if r := query(other); !r.Cached {
		t.Error("other-pair entry [40,49] dropped by an ingest at tick 15")
	}

	// Retract it again: same invalidation footprint, answer flips back.
	if rep := ingest(`{"events":[{"tick":15,"a":0,"b":1,"retract":true}]}`); rep.Retracted != 1 {
		t.Fatalf("retraction report = %+v", rep)
	}
	if r := query(covered); r.Cached || r.Reachable {
		t.Fatalf("after retraction: %+v, want fresh unreachable answer", r)
	}
	if r := query(disjoint); !r.Cached {
		t.Error("disjoint entry dropped by the retraction")
	}

	st := stats()
	if st.Engine.DeltaEvents != 2 || st.Engine.DirtySegments != 1 {
		t.Errorf("delta log in stats = %d events / %d dirty, want 2 / 1",
			st.Engine.DeltaEvents, st.Engine.DirtySegments)
	}
	if st.Engine.LateEvents != 1 || st.Engine.Retractions != 1 {
		t.Errorf("counters = %d late / %d retractions, want 1 / 1",
			st.Engine.LateEvents, st.Engine.Retractions)
	}
	// Exactly the covered entry was invalidated — twice — and no put was
	// discarded as stale.
	if st.Cache.Invalidated != 2 || st.Cache.StalePuts != 0 {
		t.Errorf("cache counters = %d invalidated / %d stale puts, want 2 / 0",
			st.Cache.Invalidated, st.Cache.StalePuts)
	}

	// Compaction folds the deltas into re-sealed slabs without touching
	// answers or surviving cache entries.
	if n, err := le.Compact(); err != nil || n != 1 {
		t.Fatalf("Compact() = %d, %v, want 1 dirty slab rebuilt", n, err)
	}
	st = stats()
	if st.Engine.DeltaEvents != 0 || st.Engine.DirtySegments != 0 || st.Engine.Compactions != 1 {
		t.Errorf("post-compact stats = %+v", st.Engine)
	}
	if r := query(disjoint); !r.Cached {
		t.Error("compaction dropped a cached entry")
	}
	if r := query(covered); r.Reachable {
		t.Error("compaction changed an answer")
	}
}
