// Package shard partitions the object population of a contact dataset into
// K shards, the spatial analogue of the time slabs in internal/segment: a
// partitioner assigns every object to exactly one owning shard, and the
// contact network splits into per-shard sub-networks a coordinator engine
// can index and expand independently, exchanging only the frontier objects
// that cross a shard cut.
//
// Two partitioners are provided. Hash spreads objects uniformly (a mixing
// hash over the object ID), the baseline with no locality. Spatial performs
// a grid cut: each object is snapped to its dominant cell — the geo.Grid
// cell its trajectory occupies most often — and the cells are walked in
// Z-order (Morton order), cutting the ordered population into K runs of
// near-equal object count only at cell boundaries. The space-filling curve
// keeps the 2×2 cell quads around any grid corner contiguous in the walk,
// so a mobility cluster straddling cell boundaries still lands in one
// shard; contacts are overwhelmingly local (the contact threshold is tens
// of metres while cells span hundreds), so under clustered mobility the
// cut keeps most contacts shard-internal.
//
// The split duplicates every cross-shard contact into both endpoint shards:
// shard s's sub-network holds exactly the contacts incident to at least one
// s-owned object, so a shard-local expansion is complete for every
// propagation step leaving or entering its territory, and the coordinator
// only ever needs to hand over infected boundary objects, never edges. The
// fraction of contacts duplicated this way (CrossRatio) is the partition
// quality metric: 1-1/K for a uniform random cut, near zero for a spatial
// cut of well-clustered mobility.
package shard

import (
	"fmt"
	"sort"

	"streach/internal/contact"
	"streach/internal/geo"
	"streach/internal/trajectory"
)

// Assignment maps every object of a dataset to its owning shard.
type Assignment struct {
	// K is the shard count; Partitioner the name of the scheme that
	// produced the assignment ("hash" or "spatial").
	K           int
	Partitioner string

	owner []int32 // object ID → shard in [0, K)
}

// Owner returns the shard owning object o.
func (a *Assignment) Owner(o trajectory.ObjectID) int { return int(a.owner[o]) }

// NumObjects returns the size of the assigned ID space.
func (a *Assignment) NumObjects() int { return len(a.owner) }

// Objects returns the number of objects owned by shard s.
func (a *Assignment) Objects(s int) int {
	n := 0
	for _, w := range a.owner {
		if int(w) == s {
			n++
		}
	}
	return n
}

// Hash assigns numObjects objects to k shards by a mixing hash of the
// object ID — the locality-free baseline partitioner. Deterministic.
func Hash(numObjects, k int) (*Assignment, error) {
	if err := validate(numObjects, k); err != nil {
		return nil, err
	}
	owner := make([]int32, numObjects)
	for o := range owner {
		owner[o] = int32(mix64(uint64(o)) % uint64(k))
	}
	return &Assignment{K: k, Partitioner: "hash", owner: owner}, nil
}

// mix64 is the SplitMix64 finalizer, scattering consecutive IDs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Spatial assigns the objects of d to k shards by grid cut: every object is
// snapped to the geo.Grid cell its trajectory occupies most often (its
// dominant cell), the population is ordered by dominant cell along a
// Z-order curve, and the ordering is cut into k runs of near-equal object
// count — only ever between cells, so the objects of one cell always share
// a shard. Deterministic.
func Spatial(d *trajectory.Dataset, k int) (*Assignment, error) {
	if err := validate(len(d.Trajs), k); err != nil {
		return nil, err
	}
	grid := spatialGrid(d.Env, k)
	numCells := grid.NumCells()
	zOrder := make([]int64, numCells)
	for c := range zOrder {
		cx, cy := grid.IDToCell(c)
		zOrder[c] = int64(morton2(uint32(cx), uint32(cy)))
	}

	// Dominant cell per object: the most-visited cell, lowest ID on ties.
	dom := make([]int32, len(d.Trajs))
	counts := make([]int32, numCells)
	for o, tr := range d.Trajs {
		clear(counts)
		for _, p := range tr.Pos {
			counts[grid.CellID(p)]++
		}
		best := 0
		for c := 1; c < numCells; c++ {
			if counts[c] > counts[best] {
				best = c
			}
		}
		dom[o] = int32(best)
	}

	// Cut the cell-ordered population into k runs of near-equal count,
	// closing a run only at cell boundaries: per-cell populations are
	// walked along the Z-order curve and a shard closes once it holds its
	// fair share of the objects still unassigned.
	order := make([]trajectory.ObjectID, len(d.Trajs))
	for o := range order {
		order[o] = trajectory.ObjectID(o)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if za, zb := zOrder[dom[a]], zOrder[dom[b]]; za != zb {
			return za < zb
		}
		return a < b
	})
	owner := make([]int32, len(d.Trajs))
	shard, taken, remaining := 0, 0, len(d.Trajs)
	for i := 0; i < len(order); {
		j := i
		for j < len(order) && dom[order[j]] == dom[order[i]] {
			j++
		}
		cell := j - i
		target := (remaining + (k - shard) - 1) / (k - shard)
		if shard < k-1 && taken > 0 && taken+cell > target {
			remaining -= taken
			shard, taken = shard+1, 0
		}
		for ; i < j; i++ {
			owner[order[i]] = int32(shard)
		}
		taken += cell
	}
	return &Assignment{K: k, Partitioner: "spatial", owner: owner}, nil
}

// morton2 interleaves the bits of two 16-bit cell coordinates into their
// Z-order curve position.
func morton2(x, y uint32) uint64 {
	return spread1(x) | spread1(y)<<1
}

// spread1 spaces the low 16 bits of v one position apart.
func spread1(v uint32) uint64 {
	x := uint64(v & 0xffff)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// spatialGrid returns the snapping grid of a k-way cut: roughly 4k cells,
// coarse enough that a mobility cluster usually fits one cell, fine enough
// that the cell-boundary cut stays balanced.
func spatialGrid(env geo.Rect, k int) geo.Grid {
	g := 2
	for g*g < 4*k {
		g++
	}
	side := env.Width()
	if env.Height() > side {
		side = env.Height()
	}
	if side <= 0 {
		side = 1
	}
	return geo.NewGrid(env, side/float64(g))
}

func validate(numObjects, k int) error {
	if numObjects <= 0 {
		return fmt.Errorf("shard: no objects to assign")
	}
	if k < 1 {
		return fmt.Errorf("shard: shard count %d < 1", k)
	}
	if k > numObjects {
		return fmt.Errorf("shard: %d shards exceed %d objects", k, numObjects)
	}
	return nil
}

// Split is the outcome of cutting one contact network along an assignment.
type Split struct {
	// Parts[s] is shard s's sub-network: every contact incident to at
	// least one s-owned object, over the full (global) object ID space and
	// tick domain — no remapping, so frontiers exchange global IDs.
	Parts []*contact.Network
	// CrossContacts counts the contacts whose endpoints live on different
	// shards (each duplicated into both endpoint shards); TotalContacts is
	// the undivided network's contact count.
	CrossContacts int
	TotalContacts int
}

// CrossRatio returns the fraction of contacts crossing the shard cut — the
// partition quality metric (0 for a perfectly local cut, 1-1/K expected
// for a uniform random one).
func (sp *Split) CrossRatio() float64 {
	if sp.TotalContacts == 0 {
		return 0
	}
	return float64(sp.CrossContacts) / float64(sp.TotalContacts)
}

// Cut splits net along the assignment: contacts with both endpoints in one
// shard go to that shard alone; cross-shard contacts are duplicated into
// both endpoint shards, so every shard's sub-network is complete for
// propagation steps touching its objects.
func Cut(net *contact.Network, a *Assignment) *Split {
	parts := make([][]contact.Contact, a.K)
	cross := 0
	for _, c := range net.Contacts {
		sa, sb := a.owner[c.A], a.owner[c.B]
		parts[sa] = append(parts[sa], c)
		if sb != sa {
			parts[sb] = append(parts[sb], c)
			cross++
		}
	}
	sp := &Split{
		Parts:         make([]*contact.Network, a.K),
		CrossContacts: cross,
		TotalContacts: len(net.Contacts),
	}
	for s := range sp.Parts {
		sp.Parts[s] = contact.FromContacts(net.NumObjects, net.NumTicks, parts[s])
	}
	return sp
}

// Merge reassembles the effective whole-population network from per-shard
// sub-networks, deduplicating the contacts the cut stored twice — the
// inverse of Cut, used by sharded live engines to snapshot their feed.
func Merge(parts []*contact.Network, numObjects, numTicks int) *contact.Network {
	var all []contact.Contact
	for _, p := range parts {
		all = append(all, p.Contacts...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Validity.Lo != b.Validity.Lo {
			return a.Validity.Lo < b.Validity.Lo
		}
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.Validity.Hi < b.Validity.Hi
	})
	dedup := all[:0]
	for i, c := range all {
		if i > 0 && c == all[i-1] {
			continue
		}
		dedup = append(dedup, c)
	}
	return contact.FromContacts(numObjects, numTicks, dedup)
}
