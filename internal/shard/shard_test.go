package shard

import (
	"testing"

	"streach/internal/contact"
	"streach/internal/geo"
	"streach/internal/trajectory"
)

func TestHashBalanceAndDeterminism(t *testing.T) {
	const n, k = 1000, 4
	a, err := Hash(n, k)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != k || a.Partitioner != "hash" || a.NumObjects() != n {
		t.Fatalf("assignment header %+v", a)
	}
	total := 0
	for s := 0; s < k; s++ {
		c := a.Objects(s)
		total += c
		// SplitMix64 spreads 1000 IDs over 4 shards well within ±30%.
		if c < n/k*7/10 || c > n/k*13/10 {
			t.Errorf("shard %d owns %d objects, want ~%d", s, c, n/k)
		}
	}
	if total != n {
		t.Errorf("shards own %d objects in total, want %d", total, n)
	}
	b, _ := Hash(n, k)
	for o := trajectory.ObjectID(0); int(o) < n; o++ {
		if a.Owner(o) != b.Owner(o) {
			t.Fatalf("hash assignment not deterministic at object %d", o)
		}
	}
}

func TestHashValidation(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{0, 1}, {10, 0}, {10, -2}, {3, 4}} {
		if _, err := Hash(tc.n, tc.k); err == nil {
			t.Errorf("Hash(%d, %d) accepted", tc.n, tc.k)
		}
	}
}

// clusteredDataset parks each object on one of four well-separated home
// points, so every object's dominant cell is unambiguous.
func clusteredDataset(n int) *trajectory.Dataset {
	homes := []geo.Point{{X: 100, Y: 100}, {X: 900, Y: 100}, {X: 100, Y: 900}, {X: 900, Y: 900}}
	d := &trajectory.Dataset{
		Env:         geo.NewRect(geo.Point{}, geo.Point{X: 1000, Y: 1000}),
		TickSeconds: 1,
		ContactDist: 25,
	}
	for o := 0; o < n; o++ {
		home := homes[o%len(homes)]
		pos := make([]geo.Point, 8)
		for i := range pos {
			pos[i] = geo.Point{X: home.X + float64(i%3), Y: home.Y + float64(i%2)}
		}
		d.Trajs = append(d.Trajs, trajectory.Trajectory{Object: trajectory.ObjectID(o), Pos: pos})
	}
	return d
}

func TestSpatialKeepsClustersTogether(t *testing.T) {
	d := clusteredDataset(80)
	a, err := Spatial(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Partitioner != "spatial" {
		t.Fatalf("partitioner %q", a.Partitioner)
	}
	// Objects sharing a home (o%4) must share a shard: the cut never splits
	// a cell, and each home cluster fits one cell of the snapping grid.
	for o := 4; o < 80; o++ {
		if a.Owner(trajectory.ObjectID(o)) != a.Owner(trajectory.ObjectID(o%4)) {
			t.Fatalf("objects %d and %d share home %d but not shard", o, o%4, o%4)
		}
	}
	// Four equal clusters into four shards: perfectly balanced.
	for s := 0; s < 4; s++ {
		if got := a.Objects(s); got != 20 {
			t.Errorf("shard %d owns %d objects, want 20", s, got)
		}
	}
	b, _ := Spatial(d, 4)
	for o := trajectory.ObjectID(0); int(o) < 80; o++ {
		if a.Owner(o) != b.Owner(o) {
			t.Fatalf("spatial assignment not deterministic at object %d", o)
		}
	}
}

func TestCutAndMergeRoundTrip(t *testing.T) {
	const n, ticks = 12, 10
	contacts := []contact.Contact{
		{A: 0, B: 1, Validity: contact.Interval{Lo: 0, Hi: 2}},
		{A: 0, B: 11, Validity: contact.Interval{Lo: 1, Hi: 1}},
		{A: 2, B: 3, Validity: contact.Interval{Lo: 3, Hi: 5}},
		{A: 4, B: 9, Validity: contact.Interval{Lo: 4, Hi: 9}},
		{A: 7, B: 8, Validity: contact.Interval{Lo: 0, Hi: 9}},
	}
	net := contact.FromContacts(n, ticks, contacts)
	a, err := Hash(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	sp := Cut(net, a)
	if len(sp.Parts) != 3 {
		t.Fatalf("parts = %d", len(sp.Parts))
	}
	if sp.TotalContacts != len(net.Contacts) {
		t.Errorf("TotalContacts = %d, want %d", sp.TotalContacts, len(net.Contacts))
	}
	// Every contact lands in its endpoints' shards — cross ones in both.
	wantCross := 0
	for _, c := range net.Contacts {
		sa, sb := a.Owner(c.A), a.Owner(c.B)
		if !hasContact(sp.Parts[sa], c) {
			t.Errorf("contact %v missing from owner shard %d", c, sa)
		}
		if sb != sa {
			wantCross++
			if !hasContact(sp.Parts[sb], c) {
				t.Errorf("cross contact %v missing from shard %d", c, sb)
			}
		}
	}
	if sp.CrossContacts != wantCross {
		t.Errorf("CrossContacts = %d, want %d", sp.CrossContacts, wantCross)
	}
	if r := sp.CrossRatio(); r != float64(wantCross)/float64(len(net.Contacts)) {
		t.Errorf("CrossRatio = %v", r)
	}
	// Each part holds exactly the contacts incident to its objects.
	for s, p := range sp.Parts {
		if p.NumObjects != n || p.NumTicks != ticks {
			t.Errorf("part %d dims %dx%d, want global %dx%d", s, p.NumObjects, p.NumTicks, n, ticks)
		}
		for _, c := range p.Contacts {
			if a.Owner(c.A) != s && a.Owner(c.B) != s {
				t.Errorf("part %d holds foreign contact %v", s, c)
			}
		}
	}
	merged := Merge(sp.Parts, n, ticks)
	if len(merged.Contacts) != len(net.Contacts) {
		t.Fatalf("merge produced %d contacts, want %d", len(merged.Contacts), len(net.Contacts))
	}
	for _, c := range net.Contacts {
		if !hasContact(merged, c) {
			t.Errorf("merge lost contact %v", c)
		}
	}
}

func hasContact(net *contact.Network, c contact.Contact) bool {
	for _, x := range net.Contacts {
		if x == c {
			return true
		}
	}
	return false
}
