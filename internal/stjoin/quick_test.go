package stjoin

import (
	"sort"
	"testing"
	"testing/quick"

	"streach/internal/geo"
)

// TestQuickJoinMatchesBruteForce compares the grid-hash join against the
// O(n²) scan for arbitrary point clouds, including points outside the
// nominal environment (the joiner clamps them into boundary cells).
func TestQuickJoinMatchesBruteForce(t *testing.T) {
	env := geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100})
	f := func(raw []uint16, dtRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		dT := 1 + float64(dtRaw%40)
		pts := make([]geo.Point, len(raw)/2)
		for i := range pts {
			pts[i] = geo.Point{
				X: float64(raw[2*i]%120) - 10, // some points outside env
				Y: float64(raw[2*i+1]%120) - 10,
			}
		}
		j := NewJoiner(env, dT)
		var got [][2]int
		j.Join(pts, func(a, b int) bool {
			got = append(got, [2]int{a, b})
			return true
		})
		var want [][2]int
		for a := 0; a < len(pts); a++ {
			for b := a + 1; b < len(pts); b++ {
				if pts[a].Dist2(pts[b]) <= dT*dT {
					want = append(want, [2]int{a, b})
				}
			}
		}
		sortPairs(got)
		sortPairs(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func sortPairs(ps [][2]int) {
	sort.Slice(ps, func(i, k int) bool {
		if ps[i][0] != ps[k][0] {
			return ps[i][0] < ps[k][0]
		}
		return ps[i][1] < ps[k][1]
	})
}
