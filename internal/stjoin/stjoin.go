// Package stjoin implements the spatiotemporal join primitives of §4: given
// object positions at a time instant, find all pairs within the contact
// threshold dT. Contact extraction (offline) and ReachGrid's seed expansion
// (online) are both built on the per-instant grid-hash join provided here,
// swept over time exactly like the Closest-Point-of-Approach join of
// Arumugam & Jermaine that the paper adopts.
package stjoin

import (
	"streach/internal/geo"
	"streach/internal/trajectory"
)

// Joiner finds all point pairs within a fixed distance threshold using a
// uniform bucket grid whose cells are at least dT wide, so matching pairs
// always fall in the same or an adjacent cell. A Joiner allocates its
// buckets once and is reused across time instants; it is not safe for
// concurrent use.
type Joiner struct {
	env    geo.Rect
	dT     float64
	dT2    float64
	nx, ny int
	cellW  float64
	cellH  float64

	buckets [][]int32 // point indices per cell, cleared lazily via touched
	touched []int32   // cells used by the current Join call
}

// NewJoiner returns a joiner for points inside env with threshold dT > 0.
func NewJoiner(env geo.Rect, dT float64) *Joiner {
	if dT <= 0 {
		dT = 1
	}
	nx := int(env.Width() / dT)
	if nx < 1 {
		nx = 1
	}
	ny := int(env.Height() / dT)
	if ny < 1 {
		ny = 1
	}
	return &Joiner{
		env:     env,
		dT:      dT,
		dT2:     dT * dT,
		nx:      nx,
		ny:      ny,
		cellW:   env.Width() / float64(nx),
		cellH:   env.Height() / float64(ny),
		buckets: make([][]int32, nx*ny),
		touched: make([]int32, 0, 64),
	}
}

func (j *Joiner) cellOf(p geo.Point) (int, int) {
	cx := int((p.X - j.env.Min.X) / j.cellW)
	cy := int((p.Y - j.env.Min.Y) / j.cellH)
	if cx < 0 {
		cx = 0
	} else if cx >= j.nx {
		cx = j.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= j.ny {
		cy = j.ny - 1
	}
	return cx, cy
}

// Join emits every unordered pair (a, b), a < b, of indices into pts whose
// points are within dT of each other. emit returning false aborts the join
// early (used for first-match queries). The order of emitted pairs is
// deterministic for a fixed input.
func (j *Joiner) Join(pts []geo.Point, emit func(a, b int) bool) {
	defer j.clear()
	for i, p := range pts {
		cx, cy := j.cellOf(p)
		id := cy*j.nx + cx
		if len(j.buckets[id]) == 0 {
			j.touched = append(j.touched, int32(id))
		}
		j.buckets[id] = append(j.buckets[id], int32(i))
	}
	for _, id := range j.touched {
		cx, cy := int(id)%j.nx, int(id)/j.nx
		bucket := j.buckets[id]
		// Pairs within the cell.
		for x := 0; x < len(bucket); x++ {
			for y := x + 1; y < len(bucket); y++ {
				if !j.tryEmit(pts, bucket[x], bucket[y], emit) {
					return
				}
			}
		}
		// Pairs with forward neighbour cells (E, NW, N, NE) so each
		// neighbouring pair of cells is examined exactly once.
		for _, d := range [4][2]int{{1, 0}, {-1, 1}, {0, 1}, {1, 1}} {
			nxc, nyc := cx+d[0], cy+d[1]
			if nxc < 0 || nxc >= j.nx || nyc < 0 || nyc >= j.ny {
				continue
			}
			other := j.buckets[nyc*j.nx+nxc]
			for _, a := range bucket {
				for _, b := range other {
					if !j.tryEmit(pts, a, b, emit) {
						return
					}
				}
			}
		}
	}
}

func (j *Joiner) tryEmit(pts []geo.Point, a, b int32, emit func(a, b int) bool) bool {
	if pts[a].Dist2(pts[b]) > j.dT2 {
		return true
	}
	if a > b {
		a, b = b, a
	}
	return emit(int(a), int(b))
}

func (j *Joiner) clear() {
	for _, id := range j.touched {
		j.buckets[id] = j.buckets[id][:0]
	}
	j.touched = j.touched[:0]
}

// Pair is an unordered object pair with A < B.
type Pair struct {
	A, B trajectory.ObjectID
}

// MakePair normalizes (a, b) into a Pair.
func MakePair(a, b trajectory.ObjectID) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// InstantPairs returns all contact pairs of dataset d at tick t, using j
// (which must have been built with d.Env and d.ContactDist). The result is
// freshly allocated; pairs are unique.
func InstantPairs(j *Joiner, d *trajectory.Dataset, t trajectory.Tick) []Pair {
	pts := make([]geo.Point, d.NumObjects())
	ids := make([]trajectory.ObjectID, d.NumObjects())
	for i := range d.Trajs {
		pts[i] = d.Trajs[i].AtClamped(t)
		ids[i] = d.Trajs[i].Object
	}
	var out []Pair
	j.Join(pts, func(a, b int) bool {
		out = append(out, MakePair(ids[a], ids[b]))
		return true
	})
	return out
}

// SweepJoin sweeps the ticks of [lo, hi] in increasing order and joins the
// provided segments at every instant, emitting (objA, objB, t) for each pair
// of distinct objects within dT at tick t. Segments that do not cover a tick
// are skipped at that tick. emit returning false aborts the sweep — the
// early-termination behaviour Algorithm 1 relies on. Multiple segments of
// the same object are tolerated (duplicates are suppressed per instant).
func SweepJoin(j *Joiner, segs []trajectory.Segment, lo, hi trajectory.Tick,
	emit func(a, b trajectory.ObjectID, t trajectory.Tick) bool) {

	pts := make([]geo.Point, 0, len(segs))
	ids := make([]trajectory.ObjectID, 0, len(segs))
	present := make(map[trajectory.ObjectID]bool, len(segs))
	for t := lo; t <= hi; t++ {
		pts, ids = pts[:0], ids[:0]
		for k := range present {
			delete(present, k)
		}
		for i := range segs {
			if !segs[i].Covers(t) || present[segs[i].Object] {
				continue
			}
			present[segs[i].Object] = true
			pts = append(pts, segs[i].At(t))
			ids = append(ids, segs[i].Object)
		}
		stop := false
		j.Join(pts, func(a, b int) bool {
			if ids[a] == ids[b] {
				return true
			}
			if !emit(ids[a], ids[b], t) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}
