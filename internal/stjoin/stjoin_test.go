package stjoin

import (
	"math/rand"
	"sort"
	"testing"

	"streach/internal/geo"
	"streach/internal/trajectory"
)

func bruteForcePairs(pts []geo.Point, dT float64) map[[2]int]bool {
	out := make(map[[2]int]bool)
	for i := range pts {
		for k := i + 1; k < len(pts); k++ {
			if pts[i].Dist(pts[k]) <= dT {
				out[[2]int{i, k}] = true
			}
		}
	}
	return out
}

func TestJoinMatchesBruteForce(t *testing.T) {
	env := geo.NewRect(geo.Point{}, geo.Point{X: 1000, Y: 800})
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		dT := 5 + rng.Float64()*100
		j := NewJoiner(env, dT)
		n := 1 + rng.Intn(200)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 800}
		}
		want := bruteForcePairs(pts, dT)
		got := make(map[[2]int]bool)
		j.Join(pts, func(a, b int) bool {
			key := [2]int{a, b}
			if got[key] {
				t.Fatalf("duplicate pair %v", key)
			}
			got[key] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d (dT=%.1f, n=%d): got %d pairs, want %d", trial, dT, n, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("missing pair %v", k)
			}
		}
	}
}

func TestJoinEarlyStop(t *testing.T) {
	env := geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100})
	j := NewJoiner(env, 50)
	pts := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}
	calls := 0
	j.Join(pts, func(a, b int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
	// The joiner must be reusable after an aborted join.
	total := 0
	j.Join(pts, func(a, b int) bool { total++; return true })
	if total != 6 {
		t.Fatalf("join after abort found %d pairs, want 6", total)
	}
}

func TestJoinerReuseIsClean(t *testing.T) {
	env := geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100})
	j := NewJoiner(env, 10)
	a := []geo.Point{{X: 5, Y: 5}, {X: 6, Y: 6}}
	count := 0
	j.Join(a, func(int, int) bool { count++; return true })
	if count != 1 {
		t.Fatalf("first join = %d pairs", count)
	}
	// A second call with far-apart points must see none of the first call's
	// points.
	b := []geo.Point{{X: 90, Y: 90}}
	count = 0
	j.Join(b, func(int, int) bool { count++; return true })
	if count != 0 {
		t.Fatalf("stale state: %d pairs", count)
	}
}

func TestJoinTinyEnvironment(t *testing.T) {
	// dT larger than the environment: single bucket, all pairs compared.
	env := geo.NewRect(geo.Point{}, geo.Point{X: 10, Y: 10})
	j := NewJoiner(env, 100)
	pts := []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 10}, {X: 5, Y: 5}}
	count := 0
	j.Join(pts, func(int, int) bool { count++; return true })
	if count != 3 {
		t.Fatalf("got %d pairs, want 3", count)
	}
}

func TestMakePair(t *testing.T) {
	if MakePair(5, 2) != (Pair{A: 2, B: 5}) {
		t.Error("MakePair should normalize order")
	}
	if MakePair(2, 5) != (Pair{A: 2, B: 5}) {
		t.Error("MakePair changed ordered input")
	}
}

func TestInstantPairs(t *testing.T) {
	d := &trajectory.Dataset{
		Name:        "t",
		Env:         geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100}),
		TickSeconds: 1,
		ContactDist: 10,
		Trajs: []trajectory.Trajectory{
			{Object: 0, Pos: []geo.Point{{X: 0, Y: 0}, {X: 50, Y: 50}}},
			{Object: 1, Pos: []geo.Point{{X: 5, Y: 0}, {X: 90, Y: 90}}},
			{Object: 2, Pos: []geo.Point{{X: 90, Y: 90}, {X: 55, Y: 50}}},
		},
	}
	j := NewJoiner(d.Env, d.ContactDist)
	p0 := InstantPairs(j, d, 0)
	if len(p0) != 1 || p0[0] != (Pair{A: 0, B: 1}) {
		t.Fatalf("t=0 pairs = %v", p0)
	}
	p1 := InstantPairs(j, d, 1)
	if len(p1) != 1 || p1[0] != (Pair{A: 0, B: 2}) {
		t.Fatalf("t=1 pairs = %v", p1)
	}
}

func TestSweepJoinOrderAndEarlyStop(t *testing.T) {
	env := geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100})
	j := NewJoiner(env, 5)
	// Object 0 stays at origin; object 1 arrives at tick 2; object 2 at tick 4.
	segs := []trajectory.Segment{
		{Object: 0, Start: 0, Pos: []geo.Point{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 0, Y: 0}, {X: 0, Y: 0}, {X: 0, Y: 0}}},
		{Object: 1, Start: 0, Pos: []geo.Point{{X: 50, Y: 0}, {X: 25, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 0}}},
		{Object: 2, Start: 0, Pos: []geo.Point{{X: 0, Y: 50}, {X: 0, Y: 40}, {X: 0, Y: 30}, {X: 0, Y: 15}, {X: 0, Y: 3}}},
	}
	type hit struct {
		a, b trajectory.ObjectID
		t    trajectory.Tick
	}
	var hits []hit
	SweepJoin(j, segs, 0, 4, func(a, b trajectory.ObjectID, tk trajectory.Tick) bool {
		hits = append(hits, hit{a, b, tk})
		return true
	})
	// Ticks must be non-decreasing, and the first contact is 0-1 at tick 2.
	if len(hits) == 0 {
		t.Fatal("no contacts found")
	}
	if !sort.SliceIsSorted(hits, func(i, k int) bool { return hits[i].t < hits[k].t }) {
		t.Fatalf("hits out of time order: %v", hits)
	}
	first := hits[0]
	if MakePair(first.a, first.b) != (Pair{A: 0, B: 1}) || first.t != 2 {
		t.Fatalf("first contact = %+v, want 0-1@2", first)
	}
	// Early stop after the first hit.
	count := 0
	SweepJoin(j, segs, 0, 4, func(a, b trajectory.ObjectID, tk trajectory.Tick) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop ignored: %d emissions", count)
	}
}

func TestSweepJoinSkipsUncoveredTicksAndDuplicates(t *testing.T) {
	env := geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100})
	j := NewJoiner(env, 5)
	segs := []trajectory.Segment{
		{Object: 0, Start: 0, Pos: []geo.Point{{X: 0, Y: 0}, {X: 0, Y: 0}}},
		// Object 1 appears only at ticks 3-4, colocated with object 0's
		// position — but object 0's segment has ended, so no contact.
		{Object: 1, Start: 3, Pos: []geo.Point{{X: 0, Y: 0}, {X: 0, Y: 0}}},
		// Duplicate segment for object 0 (an object can be stored in
		// multiple grid cells); must not produce a self-contact.
		{Object: 0, Start: 0, Pos: []geo.Point{{X: 0, Y: 0}, {X: 0, Y: 0}}},
	}
	SweepJoin(j, segs, 0, 4, func(a, b trajectory.ObjectID, tk trajectory.Tick) bool {
		t.Fatalf("unexpected contact %d-%d@%d", a, b, tk)
		return true
	})
}

func BenchmarkJoin1000(b *testing.B) {
	env := geo.NewRect(geo.Point{}, geo.Point{X: 3162, Y: 3162}) // 10 km², 100/km²
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, 1000)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 3162, Y: rng.Float64() * 3162}
	}
	j := NewJoiner(env, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Join(pts, func(int, int) bool { return true })
	}
}
