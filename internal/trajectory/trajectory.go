// Package trajectory defines the moving-object trajectory model of the
// paper's §3–§4: a trajectory is a sequence of (position, timestamp) pairs
// sampled at a fixed tick; a segment is the restriction of a trajectory to a
// time window.
//
// Time is discrete throughout streach. A tick index ("instant") is an int32;
// the mapping from ticks to wall-clock durations (6 s for RWP datasets, 5 s
// for VN datasets, per §6) is metadata carried by Dataset.
package trajectory

import (
	"fmt"
	"slices"
	"sort"

	"streach/internal/geo"
)

// ObjectID identifies a moving object within a dataset. IDs are dense and
// start at 0, which lets most per-object state live in slices.
type ObjectID int32

// Tick is a discrete time instant.
type Tick int32

// Sample is one recorded (position, time) pair of a trajectory.
type Sample struct {
	T Tick
	P geo.Point
}

// Trajectory is the full movement history of one object: samples at every
// tick in [Start, Start+len(Pos)). Storing one position per tick (rather
// than sparse samples) matches the paper's TEN formulation, where every
// object has a vertex at every instant.
type Trajectory struct {
	Object ObjectID
	Start  Tick
	Pos    []geo.Point
}

// End returns the last tick covered by the trajectory, or Start-1 when the
// trajectory is empty.
func (tr *Trajectory) End() Tick { return tr.Start + Tick(len(tr.Pos)) - 1 }

// Len returns the number of samples.
func (tr *Trajectory) Len() int { return len(tr.Pos) }

// Covers reports whether the trajectory has a sample at tick t.
func (tr *Trajectory) Covers(t Tick) bool { return t >= tr.Start && t <= tr.End() }

// At returns the position at tick t. It panics when t is not covered;
// callers are expected to check Covers or clamp with AtClamped.
func (tr *Trajectory) At(t Tick) geo.Point {
	if !tr.Covers(t) {
		panic(fmt.Sprintf("trajectory %d: tick %d outside [%d, %d]",
			tr.Object, t, tr.Start, tr.End()))
	}
	return tr.Pos[t-tr.Start]
}

// AtClamped returns the position at tick t, clamping t to the covered range.
// Objects are assumed stationary before their first and after their last
// sample, the standard convention for historical trajectory archives.
func (tr *Trajectory) AtClamped(t Tick) geo.Point {
	if t < tr.Start {
		t = tr.Start
	}
	if t > tr.End() {
		t = tr.End()
	}
	return tr.Pos[t-tr.Start]
}

// MBR returns the minimum bounding rectangle of the samples in [lo, hi]
// (clamped to the covered range). ReachGrid expands these MBRs by dT to find
// potential-seed cells (§4.2).
func (tr *Trajectory) MBR(lo, hi Tick) geo.Rect {
	if lo < tr.Start {
		lo = tr.Start
	}
	if hi > tr.End() {
		hi = tr.End()
	}
	r := geo.EmptyRect()
	for t := lo; t <= hi; t++ {
		r = r.ExtendPoint(tr.Pos[t-tr.Start])
	}
	return r
}

// Segment is a view of a trajectory restricted to a time window, the
// r_i(w) of §4. It shares the backing array of its parent trajectory.
type Segment struct {
	Object ObjectID
	Start  Tick
	Pos    []geo.Point
}

// Slice returns the segment of tr covering [lo, hi] ∩ [Start, End]. The
// returned segment may be empty.
func (tr *Trajectory) Slice(lo, hi Tick) Segment {
	if lo < tr.Start {
		lo = tr.Start
	}
	if hi > tr.End() {
		hi = tr.End()
	}
	if hi < lo {
		return Segment{Object: tr.Object, Start: lo}
	}
	return Segment{
		Object: tr.Object,
		Start:  lo,
		Pos:    tr.Pos[lo-tr.Start : hi-tr.Start+1],
	}
}

// End returns the last tick covered by the segment.
func (s Segment) End() Tick { return s.Start + Tick(len(s.Pos)) - 1 }

// Len returns the number of samples in the segment.
func (s Segment) Len() int { return len(s.Pos) }

// At returns the position at tick t, which must be covered.
func (s Segment) At(t Tick) geo.Point { return s.Pos[t-s.Start] }

// Covers reports whether the segment has a sample at tick t.
func (s Segment) Covers(t Tick) bool { return t >= s.Start && t <= s.End() }

// MBR returns the minimum bounding rectangle of all samples in the segment.
func (s Segment) MBR() geo.Rect {
	r := geo.EmptyRect()
	for _, p := range s.Pos {
		r = r.ExtendPoint(p)
	}
	return r
}

// Dataset is a complete contact dataset: the trajectories of all objects
// over a common time domain, plus the metadata needed to interpret them.
type Dataset struct {
	// Name identifies the dataset in experiment output (e.g. "RWP200").
	Name string
	// Env is the spatial environment E.
	Env geo.Rect
	// TickSeconds is the wall-clock duration of one tick.
	TickSeconds float64
	// ContactDist is the contact threshold dT in metres.
	ContactDist float64
	// Trajs holds one trajectory per object, indexed by ObjectID.
	Trajs []Trajectory
}

// NumObjects returns |O|.
func (d *Dataset) NumObjects() int { return len(d.Trajs) }

// NumTicks returns |T|: the number of instants in the common time domain.
// All generators produce aligned trajectories (Start = 0, equal length); for
// safety this returns the maximal covered tick + 1.
func (d *Dataset) NumTicks() int {
	end := Tick(-1)
	for i := range d.Trajs {
		if e := d.Trajs[i].End(); e > end {
			end = e
		}
	}
	return int(end) + 1
}

// Traj returns the trajectory of object id.
func (d *Dataset) Traj(id ObjectID) *Trajectory { return &d.Trajs[id] }

// Window returns a view of the dataset restricted to the ticks [lo, hi],
// re-based so the window starts at tick 0. Trajectory positions share the
// parent's backing arrays (windows are read-only views); objects whose
// samples do not fully cover the window keep their clamped sub-range, with
// the stationary-before/after convention of AtClamped applying as usual.
// This is the trajectory-side extraction primitive behind time-sliced index
// segments.
func (d *Dataset) Window(lo, hi Tick) *Dataset {
	if lo < 0 {
		lo = 0
	}
	if last := Tick(d.NumTicks()) - 1; hi > last {
		hi = last
	}
	w := &Dataset{
		Name:        fmt.Sprintf("%s[%d,%d]", d.Name, lo, hi),
		Env:         d.Env,
		TickSeconds: d.TickSeconds,
		ContactDist: d.ContactDist,
		Trajs:       make([]Trajectory, len(d.Trajs)),
	}
	for i := range d.Trajs {
		seg := d.Trajs[i].Slice(lo, hi)
		if len(seg.Pos) == 0 {
			// The trajectory misses the window entirely. It must not
			// Cover any window instant — a covered sample would fabricate
			// contacts the full dataset never had — so its span is placed
			// before tick 0 (Start -1, End -1). AtClamped still answers
			// with the nearest archived position, matching the
			// stationary-outside-coverage convention.
			w.Trajs[i] = Trajectory{
				Object: d.Trajs[i].Object,
				Start:  -1,
				Pos:    []geo.Point{d.Trajs[i].AtClamped(lo)},
			}
			continue
		}
		w.Trajs[i] = Trajectory{
			Object: d.Trajs[i].Object,
			Start:  seg.Start - lo,
			Pos:    seg.Pos,
		}
	}
	return w
}

// SizeBytes estimates the raw size of the dataset as stored on disk: one
// 16-byte (x, y) pair per object per tick, the figure reported in Table 2.
func (d *Dataset) SizeBytes() int64 {
	var n int64
	for i := range d.Trajs {
		n += int64(len(d.Trajs[i].Pos)) * 16
	}
	return n
}

// Validate checks internal consistency: dense object IDs, samples inside a
// non-empty environment, positive tick duration and contact distance. Index
// builders call it before construction so corrupt inputs fail fast.
func (d *Dataset) Validate() error {
	if d.Env.IsEmpty() {
		return fmt.Errorf("trajectory: dataset %q has empty environment", d.Name)
	}
	if d.TickSeconds <= 0 {
		return fmt.Errorf("trajectory: dataset %q has non-positive tick duration", d.Name)
	}
	if d.ContactDist <= 0 {
		return fmt.Errorf("trajectory: dataset %q has non-positive contact distance", d.Name)
	}
	for i := range d.Trajs {
		tr := &d.Trajs[i]
		if tr.Object != ObjectID(i) {
			return fmt.Errorf("trajectory: dataset %q object %d stored at index %d", d.Name, tr.Object, i)
		}
		if len(tr.Pos) == 0 {
			return fmt.Errorf("trajectory: dataset %q object %d has no samples", d.Name, i)
		}
		for _, p := range tr.Pos {
			if !d.Env.Contains(p) {
				return fmt.Errorf("trajectory: dataset %q object %d leaves environment at %v", d.Name, i, p)
			}
		}
	}
	return nil
}

// Interpolate returns a copy of tr densified by an integer factor: each
// original step [t, t+1] is split into factor sub-steps with linearly
// interpolated positions. This reproduces the paper's treatment of the
// Beijing dataset, whose 1-minute GPS fixes were "interpolated to reflect
// the locations for every five seconds" (§6).
func Interpolate(tr *Trajectory, factor int) Trajectory {
	if factor < 1 {
		factor = 1
	}
	if len(tr.Pos) == 0 || factor == 1 {
		out := Trajectory{Object: tr.Object, Start: tr.Start, Pos: make([]geo.Point, len(tr.Pos))}
		copy(out.Pos, tr.Pos)
		return out
	}
	n := (len(tr.Pos)-1)*factor + 1
	pos := make([]geo.Point, 0, n)
	for i := 0; i < len(tr.Pos)-1; i++ {
		a, b := tr.Pos[i], tr.Pos[i+1]
		for k := 0; k < factor; k++ {
			pos = append(pos, a.Lerp(b, float64(k)/float64(factor)))
		}
	}
	pos = append(pos, tr.Pos[len(tr.Pos)-1])
	return Trajectory{Object: tr.Object, Start: tr.Start * Tick(factor), Pos: pos}
}

// SortDedupObjects sorts ids ascending and removes duplicates in place —
// the one normalization every reachable-set answer in the module goes
// through, keeping set results identical across backends. slices.Sort
// rather than sort.Slice: the planners normalize a frontier per slab, and
// the interface boxing plus reflect-based swapper of sort.Slice would put
// two heap allocations on that per-slab path.
func SortDedupObjects(ids []ObjectID) []ObjectID {
	slices.Sort(ids)
	w := 0
	for i, o := range ids {
		if i == 0 || o != ids[w-1] {
			ids[w] = o
			w++
		}
	}
	return ids[:w]
}

// SortSamplesByTime sorts a slice of samples by timestamp; the ReachGrid
// layout stores cell contents in this order so query processing can stop
// scanning a cell as soon as the sweep passes the query interval (§4.1).
func SortSamplesByTime(samples []Sample) {
	sort.Slice(samples, func(i, j int) bool { return samples[i].T < samples[j].T })
}
