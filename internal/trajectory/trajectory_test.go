package trajectory

import (
	"math/rand"
	"testing"

	"streach/internal/geo"
)

func lineTraj(id ObjectID, start Tick, n int) Trajectory {
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: float64(i), Y: 2 * float64(i)}
	}
	return Trajectory{Object: id, Start: start, Pos: pos}
}

func TestTrajectoryBasics(t *testing.T) {
	tr := lineTraj(3, 10, 5)
	if tr.End() != 14 {
		t.Fatalf("End = %d, want 14", tr.End())
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d, want 5", tr.Len())
	}
	if !tr.Covers(10) || !tr.Covers(14) || tr.Covers(9) || tr.Covers(15) {
		t.Error("Covers boundaries wrong")
	}
	if got := tr.At(12); got != (geo.Point{X: 2, Y: 4}) {
		t.Errorf("At(12) = %v", got)
	}
}

func TestAtPanicsOutsideRange(t *testing.T) {
	tr := lineTraj(0, 0, 3)
	defer func() {
		if recover() == nil {
			t.Error("At outside range should panic")
		}
	}()
	tr.At(5)
}

func TestAtClamped(t *testing.T) {
	tr := lineTraj(0, 5, 3) // ticks 5..7
	if got := tr.AtClamped(0); got != tr.Pos[0] {
		t.Errorf("AtClamped before start = %v", got)
	}
	if got := tr.AtClamped(99); got != tr.Pos[2] {
		t.Errorf("AtClamped after end = %v", got)
	}
	if got := tr.AtClamped(6); got != tr.Pos[1] {
		t.Errorf("AtClamped inside = %v", got)
	}
}

func TestEmptyTrajectoryEnd(t *testing.T) {
	tr := Trajectory{Object: 0, Start: 4}
	if tr.End() != 3 {
		t.Errorf("empty End = %d, want 3", tr.End())
	}
	if tr.Covers(4) {
		t.Error("empty trajectory covers nothing")
	}
}

func TestMBR(t *testing.T) {
	tr := lineTraj(0, 0, 10)
	r := tr.MBR(2, 4)
	want := geo.NewRect(geo.Point{X: 2, Y: 4}, geo.Point{X: 4, Y: 8})
	if r != want {
		t.Errorf("MBR = %+v, want %+v", r, want)
	}
	// Clamped window.
	r = tr.MBR(-5, 100)
	want = geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 9, Y: 18})
	if r != want {
		t.Errorf("clamped MBR = %+v, want %+v", r, want)
	}
	if !tr.MBR(50, 60).IsEmpty() {
		t.Error("MBR of disjoint window should be empty")
	}
}

func TestSlice(t *testing.T) {
	tr := lineTraj(7, 10, 10) // ticks 10..19
	s := tr.Slice(12, 15)
	if s.Object != 7 || s.Start != 12 || s.Len() != 4 || s.End() != 15 {
		t.Fatalf("Slice = %+v", s)
	}
	if got := s.At(13); got != tr.At(13) {
		t.Errorf("segment At(13) = %v, want %v", got, tr.At(13))
	}
	if !s.Covers(15) || s.Covers(16) {
		t.Error("segment Covers wrong")
	}
	// Clamped.
	s = tr.Slice(0, 11)
	if s.Start != 10 || s.End() != 11 {
		t.Errorf("clamped Slice = %+v", s)
	}
	// Disjoint → empty.
	s = tr.Slice(100, 200)
	if s.Len() != 0 {
		t.Errorf("disjoint Slice has %d samples", s.Len())
	}
}

func TestSegmentMBRMatchesTrajectoryMBR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pos := make([]geo.Point, 50)
	for i := range pos {
		pos[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	tr := Trajectory{Object: 0, Start: 0, Pos: pos}
	for trial := 0; trial < 50; trial++ {
		lo := Tick(rng.Intn(50))
		hi := lo + Tick(rng.Intn(50))
		if got, want := tr.Slice(lo, hi).MBR(), tr.MBR(lo, hi); got != want {
			t.Fatalf("segment MBR %+v != trajectory MBR %+v for [%d,%d]", got, want, lo, hi)
		}
	}
}

func newTestDataset(n, ticks int) *Dataset {
	d := &Dataset{
		Name:        "test",
		Env:         geo.NewRect(geo.Point{}, geo.Point{X: 1000, Y: 1000}),
		TickSeconds: 6,
		ContactDist: 25,
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		pos := make([]geo.Point, ticks)
		for k := range pos {
			pos[k] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
		d.Trajs = append(d.Trajs, Trajectory{Object: ObjectID(i), Pos: pos})
	}
	return d
}

func TestDatasetAccessors(t *testing.T) {
	d := newTestDataset(4, 30)
	if d.NumObjects() != 4 {
		t.Errorf("NumObjects = %d", d.NumObjects())
	}
	if d.NumTicks() != 30 {
		t.Errorf("NumTicks = %d", d.NumTicks())
	}
	if d.Traj(2).Object != 2 {
		t.Error("Traj(2) wrong object")
	}
	if got, want := d.SizeBytes(), int64(4*30*16); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
}

func TestDatasetValidate(t *testing.T) {
	d := newTestDataset(3, 10)
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}

	bad := newTestDataset(3, 10)
	bad.Env = geo.EmptyRect()
	if bad.Validate() == nil {
		t.Error("empty environment accepted")
	}

	bad = newTestDataset(3, 10)
	bad.TickSeconds = 0
	if bad.Validate() == nil {
		t.Error("zero tick duration accepted")
	}

	bad = newTestDataset(3, 10)
	bad.ContactDist = -1
	if bad.Validate() == nil {
		t.Error("negative contact distance accepted")
	}

	bad = newTestDataset(3, 10)
	bad.Trajs[1].Object = 9
	if bad.Validate() == nil {
		t.Error("misindexed object accepted")
	}

	bad = newTestDataset(3, 10)
	bad.Trajs[0].Pos = nil
	if bad.Validate() == nil {
		t.Error("empty trajectory accepted")
	}

	bad = newTestDataset(3, 10)
	bad.Trajs[2].Pos[5] = geo.Point{X: -99, Y: 0}
	if bad.Validate() == nil {
		t.Error("escaping object accepted")
	}
}

func TestInterpolate(t *testing.T) {
	tr := Trajectory{Object: 1, Start: 0, Pos: []geo.Point{{X: 0, Y: 0}, {X: 12, Y: 0}, {X: 12, Y: 12}}}
	out := Interpolate(&tr, 12)
	if out.Len() != 25 {
		t.Fatalf("interpolated Len = %d, want 25", out.Len())
	}
	if out.Pos[0] != tr.Pos[0] || out.Pos[12] != tr.Pos[1] || out.Pos[24] != tr.Pos[2] {
		t.Error("interpolation endpoints wrong")
	}
	if got := out.Pos[6]; got != (geo.Point{X: 6, Y: 0}) {
		t.Errorf("midpoint = %v, want (6,0)", got)
	}
	// factor 1 and invalid factor copy the input.
	same := Interpolate(&tr, 1)
	if same.Len() != tr.Len() {
		t.Error("factor-1 interpolation changed length")
	}
	same.Pos[0] = geo.Point{X: 99}
	if tr.Pos[0].X == 99 {
		t.Error("Interpolate must copy, not alias")
	}
	zero := Interpolate(&tr, 0)
	if zero.Len() != tr.Len() {
		t.Error("factor-0 interpolation should behave like factor 1")
	}
}

func TestSortSamplesByTime(t *testing.T) {
	s := []Sample{{T: 3}, {T: 1}, {T: 2}}
	SortSamplesByTime(s)
	for i, want := range []Tick{1, 2, 3} {
		if s[i].T != want {
			t.Fatalf("sorted order wrong: %v", s)
		}
	}
}

// TestWindowMissedTrajectoryCoversNothing guards the windowed-extraction
// contract for partial trajectories: an object whose samples all precede
// (or follow) the window must not Cover any window instant — a covered
// pinned sample would fabricate contacts the full dataset never had — while
// AtClamped still answers with its nearest archived position.
func TestWindowMissedTrajectoryCoversNothing(t *testing.T) {
	d := &Dataset{
		Name:        "partial",
		Env:         geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100}),
		TickSeconds: 1,
		ContactDist: 10,
		Trajs: []Trajectory{
			{Object: 0, Start: 0, Pos: make([]geo.Point, 100)}, // covers [0, 99]
			{Object: 1, Start: 0, Pos: make([]geo.Point, 40)},  // covers [0, 39]
		},
	}
	w := d.Window(60, 99)
	if w.NumTicks() != 40 {
		t.Fatalf("window NumTicks = %d, want 40", w.NumTicks())
	}
	for tk := Tick(0); tk < 40; tk++ {
		if w.Trajs[1].Covers(tk) {
			t.Fatalf("missed trajectory covers window tick %d", tk)
		}
		if !w.Trajs[0].Covers(tk) {
			t.Fatalf("full trajectory misses window tick %d", tk)
		}
	}
	// AtClamped still pins the absent object at its last archived position.
	if got, want := w.Trajs[1].AtClamped(0), d.Trajs[1].Pos[39]; got != want {
		t.Fatalf("AtClamped = %v, want %v", got, want)
	}
}
